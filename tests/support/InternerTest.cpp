//===----------------------------------------------------------------------===//
// Tests for the hash-consed interning pool (support/Interner.h): id
// stability, collision fallback to full equality, statistics, and the
// intern-then-mutate integrity check.
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include <gtest/gtest.h>
#include <string>

using namespace canvas;
using namespace canvas::support;

namespace {

struct StringHasher {
  uint64_t operator()(const std::string &S) const {
    return hashBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
  }
};

/// Every value hashes to the same bucket: the pool must still hand out
/// distinct ids for distinct values via the equality fallback.
struct CollidingHasher {
  uint64_t operator()(const std::string &) const { return 42; }
};

/// Hashes only the first character, so "ab" and "ax" collide while
/// still being cheap to distinguish via operator==.
struct FirstCharHasher {
  uint64_t operator()(const std::string &S) const {
    return S.empty() ? 0 : hashMix(static_cast<uint8_t>(S[0]));
  }
};

TEST(InternerTest, EqualValuesShareOneId) {
  InternPool<std::string, StringHasher> Pool;
  InternId A = Pool.intern("iterator");
  InternId B = Pool.intern("set");
  InternId C = Pool.intern("iterator");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.size(), 2u);
  EXPECT_EQ(Pool.get(A), "iterator");
  EXPECT_EQ(Pool.get(B), "set");
}

TEST(InternerTest, IdsAreDenseInFirstInternOrder) {
  InternPool<std::string, StringHasher> Pool;
  EXPECT_EQ(Pool.intern("a"), 0u);
  EXPECT_EQ(Pool.intern("b"), 1u);
  EXPECT_EQ(Pool.intern("a"), 0u);
  EXPECT_EQ(Pool.intern("c"), 2u);
}

TEST(InternerTest, StatsCountHitsAndMisses) {
  InternPool<std::string, StringHasher> Pool;
  Pool.intern("x");
  Pool.intern("x");
  Pool.intern("y");
  Pool.intern("x");
  EXPECT_EQ(Pool.stats().Misses, 2u);
  EXPECT_EQ(Pool.stats().Hits, 2u);
  EXPECT_EQ(Pool.stats().Collisions, 0u);
}

TEST(InternerTest, FullHashCollisionsFallBackToEquality) {
  InternPool<std::string, CollidingHasher> Pool;
  InternId A = Pool.intern("alpha");
  InternId B = Pool.intern("beta");
  InternId C = Pool.intern("gamma");
  EXPECT_NE(A, B);
  EXPECT_NE(B, C);
  EXPECT_EQ(Pool.size(), 3u);
  // Re-interning scans the shared bucket: every prior entry that is not
  // equal counts as a collision, then the hit is found.
  InternId B2 = Pool.intern("beta");
  EXPECT_EQ(B, B2);
  EXPECT_GT(Pool.stats().Collisions, 0u);
  EXPECT_EQ(Pool.stats().Hits, 1u);
}

TEST(InternerTest, PartialCollisionKeepsIdsDistinct) {
  InternPool<std::string, FirstCharHasher> Pool;
  InternId A = Pool.intern("ab");
  InternId B = Pool.intern("ax"); // Same hash, different value.
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.get(A), "ab");
  EXPECT_EQ(Pool.get(B), "ax");
  EXPECT_EQ(Pool.stats().Collisions, 1u);
}

TEST(InternerTest, VerifyIntegrityAcceptsWellBehavedPool) {
  InternPool<std::string, StringHasher> Pool;
  Pool.intern("one");
  Pool.intern("two");
  Pool.intern("one");
  EXPECT_TRUE(Pool.verifyIntegrity());
}

TEST(InternerTest, VerifyIntegrityCatchesInternThenMutate) {
  InternPool<std::string, StringHasher> Pool;
  InternId Id = Pool.intern("frozen");
  // Deliberate misuse: mutate the interned value behind the pool's
  // back. Every id the pool handed out is now suspect; the integrity
  // sweep must notice.
  const_cast<std::string &>(Pool.get(Id)) = "thawed";
  EXPECT_FALSE(Pool.verifyIntegrity());
}

TEST(InternerTest, HashHelpersAreStable) {
  // The hash helpers feed persistent memo keys within one run; basic
  // sanity: deterministic, and sensitive to every byte.
  uint8_t A[] = {1, 2, 3};
  uint8_t B[] = {1, 2, 4};
  EXPECT_EQ(hashBytes(A, 3), hashBytes(A, 3));
  EXPECT_NE(hashBytes(A, 3), hashBytes(B, 3));
  EXPECT_NE(hashMix(0), hashMix(1));
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

} // namespace
