#include "support/Lexer.h"

#include <gtest/gtest.h>

using namespace canvas;

namespace {

std::vector<Token> lexOK(const char *Src) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = lexSource(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Ts;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto Ts = lexOK("");
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_TRUE(Ts[0].is(TokenKind::End));
}

TEST(LexerTest, IdentifiersAndPunctuation) {
  auto Ts = lexOK("i.set == v");
  ASSERT_EQ(Ts.size(), 6u);
  EXPECT_TRUE(Ts[0].isKeyword("i"));
  EXPECT_TRUE(Ts[1].isPunct("."));
  EXPECT_TRUE(Ts[2].isKeyword("set"));
  EXPECT_TRUE(Ts[3].isPunct("=="));
  EXPECT_TRUE(Ts[4].isKeyword("v"));
}

TEST(LexerTest, TwoCharPunctuatorsBindTightly) {
  auto Ts = lexOK("!= && || == =");
  EXPECT_TRUE(Ts[0].isPunct("!="));
  EXPECT_TRUE(Ts[1].isPunct("&&"));
  EXPECT_TRUE(Ts[2].isPunct("||"));
  EXPECT_TRUE(Ts[3].isPunct("=="));
  EXPECT_TRUE(Ts[4].isPunct("="));
}

TEST(LexerTest, LineAndBlockComments) {
  auto Ts = lexOK("a // comment == b\n/* c\n d */ e");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "e");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  DiagnosticEngine Diags;
  lexSource("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StringLiterals) {
  auto Ts = lexOK("log(\"hello world\")");
  ASSERT_EQ(Ts.size(), 5u);
  EXPECT_TRUE(Ts[2].is(TokenKind::String));
  EXPECT_EQ(Ts[2].Text, "hello world");
}

TEST(LexerTest, Numbers) {
  auto Ts = lexOK("x 42 y");
  EXPECT_TRUE(Ts[1].is(TokenKind::Number));
  EXPECT_EQ(Ts[1].Text, "42");
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Ts = lexOK("a\n  b");
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[0].Loc.Col, 1u);
  EXPECT_EQ(Ts[1].Loc.Line, 2u);
  EXPECT_EQ(Ts[1].Loc.Col, 3u);
}

TEST(LexerTest, UnknownCharacterReportedAndSkipped) {
  DiagnosticEngine Diags;
  auto Ts = lexSource("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Ts.size(), 3u); // a, b, End.
}

TEST(DiagnosticsTest, RendersKindAndLocation) {
  DiagnosticEngine Diags;
  Diags.error({3, 7}, "bad thing");
  Diags.warning({1, 1}, "odd thing");
  Diags.note(SourceLoc(), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string S = Diags.str();
  EXPECT_NE(S.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(S.find("1:1: warning: odd thing"), std::string::npos);
  EXPECT_NE(S.find("<unknown>: note: context"), std::string::npos);
}

} // namespace
