//===----------------------------------------------------------------------===//
// Tests for the per-fixpoint bump arena: bump/alignment behavior, the
// reset-reuse contract (rewinding keeps blocks mapped and hands the
// same memory back out), budget charging per block mapping, and
// cross-worker isolation. The reuse and isolation tests double as
// ASan/TSan regression tests — tools/ci.sh runs this suite under
// sanitizers, where a write past a recycled block or a data race
// between two workers' arenas turns into a hard failure.
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include "support/Budget.h"

#include <cstring>
#include <gtest/gtest.h>
#include <set>
#include <thread>
#include <vector>

using namespace canvas;
using namespace canvas::support;

namespace {

TEST(ArenaTest, BumpAllocationsAreDistinctAndAligned) {
  Arena A;
  std::set<void *> Seen;
  for (int I = 0; I != 100; ++I) {
    void *P = A.allocate(24);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % alignof(std::max_align_t), 0u);
    EXPECT_TRUE(Seen.insert(P).second) << "allocation returned twice";
    std::memset(P, 0xab, 24);
  }
  EXPECT_EQ(A.numAllocations(), 100u);
  EXPECT_GE(A.bytesUsed(), 100u * 24);
}

TEST(ArenaTest, RespectsRequestedAlignment) {
  Arena A;
  A.allocate(1, 1); // Misalign the bump pointer.
  for (size_t Align : {2u, 4u, 8u, 16u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u) << Align;
    A.allocate(1, 1);
  }
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena A(nullptr, /*BlockBytes=*/256);
  uint64_t *Big = A.allocateArray<uint64_t>(1024); // 8KB > block size.
  ASSERT_NE(Big, nullptr);
  for (int I = 0; I != 1024; ++I)
    Big[I] = I;
  EXPECT_GE(A.bytesMapped(), 1024u * sizeof(uint64_t));
}

TEST(ArenaTest, ResetReusesMappedBlocksWithoutNewMappings) {
  Arena A(nullptr, /*BlockBytes=*/512);
  // Fill several blocks.
  for (int I = 0; I != 64; ++I)
    std::memset(A.allocate(64), 0x11, 64);
  const size_t Mapped = A.bytesMapped();
  const size_t NumBlocks = A.numBlocks();
  ASSERT_GT(NumBlocks, 1u);

  // Reset + refill the same volume: every byte must come from the
  // already-mapped blocks (ASan flags any stale-pointer overlap bug in
  // the recycling path).
  for (int Round = 0; Round != 3; ++Round) {
    A.reset();
    EXPECT_EQ(A.bytesUsed(), 0u);
    for (int I = 0; I != 64; ++I)
      std::memset(A.allocate(64), 0x22 + Round, 64);
    EXPECT_EQ(A.bytesMapped(), Mapped) << "reset round mapped fresh blocks";
    EXPECT_EQ(A.numBlocks(), NumBlocks);
  }
}

TEST(ArenaTest, ReleaseDropsMappingsAndAllocationStillWorks) {
  Arena A(nullptr, /*BlockBytes=*/256);
  A.allocate(1000);
  ASSERT_GT(A.bytesMapped(), 0u);
  A.release();
  EXPECT_EQ(A.bytesMapped(), 0u);
  std::memset(A.allocate(128), 0x7f, 128);
  EXPECT_GT(A.bytesMapped(), 0u);
}

TEST(ArenaTest, BudgetChargedPerBlockNotPerBump) {
  CancelToken Tok;
  Arena A(&Tok, /*BlockBytes=*/1024);
  for (int I = 0; I != 8; ++I)
    A.allocate(64); // All fit one block.
  const uint64_t AfterOneBlock = Tok.spend().AllocBytes;
  EXPECT_GE(AfterOneBlock, 1024u);
  EXPECT_LT(AfterOneBlock, 2048u) << "bumps must not be charged separately";

  A.allocate(2048); // Forces a second (oversized) mapping.
  EXPECT_GT(Tok.spend().AllocBytes, AfterOneBlock);

  // Reset-reuse performs zero fresh mappings, so zero new charges.
  const uint64_t BeforeReset = Tok.spend().AllocBytes;
  A.reset();
  for (int I = 0; I != 8; ++I)
    A.allocate(64);
  EXPECT_EQ(Tok.spend().AllocBytes, BeforeReset);
}

TEST(ArenaTest, AllocationBudgetCeilingBoundsArenaGrowth) {
  StageBudget B;
  B.MaxAllocBytes = 4096;
  CancelToken Tok(B, "arena-test");
  Arena A(&Tok, /*BlockBytes=*/1024);
  EXPECT_THROW(
      {
        for (int I = 0; I != 64; ++I)
          A.allocate(512);
      },
      CertifyError);
}

// Cross-worker isolation: the certification fan-out gives every worker
// its own engine and thus its own arena. Concurrent allocate / write /
// reset cycles on distinct arenas must never observe each other's
// bytes — under TSan this is the regression test for any accidentally
// shared mutable state creeping into Arena.
TEST(ArenaTest, CrossWorkerArenasAreIsolated) {
  constexpr int kWorkers = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> Threads;
  std::vector<uint64_t> Sums(kWorkers, 0);
  for (int W = 0; W != kWorkers; ++W)
    Threads.emplace_back([W, &Sums] {
      Arena A(nullptr, /*BlockBytes=*/512);
      uint64_t Sum = 0;
      for (int Round = 0; Round != kRounds; ++Round) {
        A.reset();
        const unsigned Count = 16 + (W * 7 + Round) % 48;
        uint64_t *Vals = A.allocateArray<uint64_t>(Count);
        for (unsigned I = 0; I != Count; ++I)
          Vals[I] = static_cast<uint64_t>(W + 1) * 1000003u + Round * 31u + I;
        // Re-read after more traffic from this arena only.
        uint64_t *More = A.allocateArray<uint64_t>(Count);
        for (unsigned I = 0; I != Count; ++I)
          More[I] = ~Vals[I];
        for (unsigned I = 0; I != Count; ++I) {
          ASSERT_EQ(Vals[I],
                    static_cast<uint64_t>(W + 1) * 1000003u + Round * 31u + I);
          Sum += Vals[I];
        }
      }
      Sums[W] = Sum;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int W = 0; W != kWorkers; ++W) {
    uint64_t Expect = 0;
    for (int Round = 0; Round != kRounds; ++Round) {
      const unsigned Count = 16 + (W * 7 + Round) % 48;
      for (unsigned I = 0; I != Count; ++I)
        Expect += static_cast<uint64_t>(W + 1) * 1000003u + Round * 31u + I;
    }
    EXPECT_EQ(Sums[W], Expect) << "worker " << W;
  }
}

} // namespace
