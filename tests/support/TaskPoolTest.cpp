//===----------------------------------------------------------------------===//
// Tests for the bounded task pool behind the certification fan-out
// (support/TaskPool.h): slot-indexed results, the lowest-index
// exception contract, and the inline serial path.
//===----------------------------------------------------------------------===//

#include "support/TaskPool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>

using namespace canvas;
using namespace canvas::support;

namespace {

std::vector<std::function<void()>> fillSlots(std::vector<int> &Slots) {
  std::vector<std::function<void()>> Tasks;
  for (size_t I = 0; I != Slots.size(); ++I)
    Tasks.push_back([&Slots, I] { Slots[I] = static_cast<int>(I) * 10; });
  return Tasks;
}

TEST(TaskPoolTest, WorkerBoundIsNeverZero) {
  EXPECT_GE(TaskPool(0).workers(), 1u);
  EXPECT_EQ(TaskPool(1).workers(), 1u);
  EXPECT_EQ(TaskPool(7).workers(), 7u);
}

TEST(TaskPoolTest, EveryTaskRunsExactlyOnce) {
  for (unsigned Workers : {1u, 2u, 4u, 16u}) {
    TaskPool Pool(Workers);
    std::atomic<int> Runs{0};
    std::vector<std::function<void()>> Tasks;
    for (int I = 0; I != 100; ++I)
      Tasks.push_back([&Runs] { Runs.fetch_add(1); });
    Pool.runAll(Tasks);
    EXPECT_EQ(Runs.load(), 100) << "workers=" << Workers;
  }
}

TEST(TaskPoolTest, SlotResultsAreIndependentOfWorkerCount) {
  std::vector<int> Serial(17, -1), Parallel(17, -1);
  TaskPool(1).runAll(fillSlots(Serial));
  TaskPool(4).runAll(fillSlots(Parallel));
  EXPECT_EQ(Serial, Parallel);
}

TEST(TaskPoolTest, EmptyTaskListIsANoOp) {
  TaskPool Pool(4);
  Pool.runAll({});
}

TEST(TaskPoolTest, LowestIndexedExceptionWins) {
  // Tasks 3 and 7 both throw; regardless of scheduling, the caller must
  // see task 3's exception.
  for (unsigned Workers : {1u, 4u}) {
    TaskPool Pool(Workers);
    std::vector<std::function<void()>> Tasks;
    for (int I = 0; I != 10; ++I)
      Tasks.push_back([I] {
        if (I == 3 || I == 7)
          throw std::runtime_error("task " + std::to_string(I));
      });
    try {
      Pool.runAll(Tasks);
      FAIL() << "expected an exception (workers=" << Workers << ")";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "task 3") << "workers=" << Workers;
    }
  }
}

TEST(TaskPoolTest, ParallelRunDrainsAllTasksDespiteFailure) {
  // In the parallel configuration every task is attempted even when an
  // earlier one throws, so independent per-method analyses are not
  // abandoned by an unrelated failure.
  TaskPool Pool(3);
  std::atomic<int> Runs{0};
  std::vector<std::function<void()>> Tasks;
  for (int I = 0; I != 12; ++I)
    Tasks.push_back([&Runs, I] {
      Runs.fetch_add(1);
      if (I == 0)
        throw std::runtime_error("boom");
    });
  EXPECT_THROW(Pool.runAll(Tasks), std::runtime_error);
  EXPECT_EQ(Runs.load(), 12);
}

} // namespace
