#include "easl/Parser.h"

#include "easl/Builtins.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::easl;

namespace {

Spec parseOK(const char *Src) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return S;
}

TEST(EaslParserTest, ParsesEmptyClass) {
  Spec S = parseOK("class Version { }");
  ASSERT_EQ(S.Classes.size(), 1u);
  EXPECT_EQ(S.Classes[0].Name, "Version");
  EXPECT_TRUE(S.Classes[0].Fields.empty());
  EXPECT_TRUE(S.Classes[0].Methods.empty());
}

TEST(EaslParserTest, ParsesFieldsAndMethods) {
  Spec S = parseOK(R"(
    class A { }
    class B {
      A f;
      B() { f = new A(); }
      void m() { }
      A get() { return f; }
    }
  )");
  const ClassDecl *B = S.findClass("B");
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B->Fields.size(), 1u);
  EXPECT_EQ(B->Fields[0].Type, "A");
  ASSERT_NE(B->constructor(), nullptr);
  ASSERT_NE(B->findMethod("m"), nullptr);
  const MethodDecl *Get = B->findMethod("get");
  ASSERT_NE(Get, nullptr);
  EXPECT_EQ(Get->ReturnType, "A");
}

TEST(EaslParserTest, ParsesRequiresWithComparison) {
  Spec S = parseOK(R"(
    class A {
      A next;
      void m(A other) { requires (next == other.next); }
    }
  )");
  const MethodDecl *M = S.findClass("A")->findMethod("m");
  ASSERT_EQ(M->Body.size(), 1u);
  const auto *Req = dyn_cast<RequiresStmt>(M->Body[0].get());
  ASSERT_NE(Req, nullptr);
  const auto *Cmp = dyn_cast<CompareExpr>(Req->Cond.get());
  ASSERT_NE(Cmp, nullptr);
  EXPECT_FALSE(Cmp->Negated);
  EXPECT_EQ(Cmp->Lhs.str(), "next");
  EXPECT_EQ(Cmp->Rhs.str(), "other.next");
}

TEST(EaslParserTest, ParsesBooleanOperators) {
  Spec S = parseOK(R"(
    class A {
      A f;
      void m(A x) { requires (f == x && !(f != x) || true); }
    }
  )");
  const MethodDecl *M = S.findClass("A")->findMethod("m");
  const auto *Req = cast<RequiresStmt>(M->Body[0].get());
  EXPECT_EQ(Req->Cond->getKind(), Expr::Kind::Or);
}

TEST(EaslParserTest, ParsesNewWithArguments) {
  Spec S = parseOK(R"(
    class A { A peer; A(A p) { peer = p; } }
    class B {
      A make(A x) { return new A(x); }
    }
  )");
  const MethodDecl *M = S.findClass("B")->findMethod("make");
  const auto *Ret = cast<ReturnStmt>(M->Body[0].get());
  EXPECT_TRUE(Ret->Value.isNew());
  EXPECT_EQ(Ret->Value.NewType, "A");
  ASSERT_EQ(Ret->Value.Args.size(), 1u);
  EXPECT_EQ(Ret->Value.Args[0].str(), "x");
}

TEST(EaslParserTest, ReportsSyntaxError) {
  DiagnosticEngine Diags;
  parseSpec("class { }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(EaslParserTest, SkipsComments) {
  Spec S = parseOK(R"(
    // line comment
    class A { /* block
                 comment */ }
  )");
  EXPECT_EQ(S.Classes.size(), 1u);
}

TEST(EaslCheckerTest, AcceptsCMPSpec) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(cmpSpecSource(), Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(checkSpec(S, Diags)) << Diags.str();
}

TEST(EaslCheckerTest, AcceptsAllBuiltinSpecs) {
  for (const char *Src : {cmpSpecSource(), grpSpecSource(), impSpecSource(),
                          aopSpecSource()}) {
    DiagnosticEngine Diags;
    Spec S = parseSpec(Src, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    EXPECT_TRUE(checkSpec(S, Diags)) << Diags.str();
  }
}

TEST(EaslCheckerTest, RejectsUnknownFieldType) {
  DiagnosticEngine Diags;
  Spec S = parseSpec("class A { Bogus f; }", Diags);
  EXPECT_FALSE(checkSpec(S, Diags));
}

TEST(EaslCheckerTest, RejectsDuplicateClass) {
  DiagnosticEngine Diags;
  Spec S = parseSpec("class A { } class A { }", Diags);
  EXPECT_FALSE(checkSpec(S, Diags));
}

TEST(EaslCheckerTest, RejectsUnresolvedPath) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(R"(
    class A {
      A f;
      void m() { f = nosuch; }
    }
  )", Diags);
  EXPECT_FALSE(checkSpec(S, Diags));
}

TEST(EaslCheckerTest, RejectsTypeMismatchedAssignment) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(R"(
    class A { }
    class B {
      A f;
      B other;
      void m() { f = other; }
    }
  )", Diags);
  EXPECT_FALSE(checkSpec(S, Diags));
}

TEST(EaslCheckerTest, WarnsOnLateRequires) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(R"(
    class A {
      A f;
      void m(A x) { f = x; requires (f == x); }
    }
  )", Diags);
  EXPECT_TRUE(checkSpec(S, Diags));
  bool SawWarning = false;
  for (const Diagnostic &D : Diags.diagnostics())
    SawWarning |= D.Kind == DiagKind::Warning;
  EXPECT_TRUE(SawWarning);
}

TEST(EaslCheckerTest, RejectsCtorArgumentCountMismatch) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(R"(
    class A { A peer; A(A p) { peer = p; } }
    class B {
      A m() { return new A(); }
    }
  )", Diags);
  EXPECT_FALSE(checkSpec(S, Diags));
}

TEST(MethodScopeTest, ResolvesImplicitThisField) {
  Spec S = parseOK(R"(
    class V { }
    class A {
      V f;
      void m(V p) { }
    }
  )");
  const ClassDecl *A = S.findClass("A");
  MethodScope Scope(S, *A, *A->findMethod("m"));
  std::string Type;
  EXPECT_EQ(Scope.classifyRoot("this", Type), MethodScope::RootKind::This);
  EXPECT_EQ(Type, "A");
  EXPECT_EQ(Scope.classifyRoot("p", Type), MethodScope::RootKind::Param);
  EXPECT_EQ(Type, "V");
  EXPECT_EQ(Scope.classifyRoot("f", Type),
            MethodScope::RootKind::ImplicitThisField);
  EXPECT_EQ(Type, "V");
  EXPECT_EQ(Scope.classifyRoot("zzz", Type), MethodScope::RootKind::Unknown);
}

} // namespace
