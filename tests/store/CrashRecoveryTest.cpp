//===----------------------------------------------------------------------===//
// Crash-safety harness: inject a fault (exception or torn short write)
// at every probe inside the commit protocol and at the recovery pass's
// journal compaction, then reopen the store and demand the invariant —
// the key reads back as exactly the pre-state or exactly the
// post-state, byte-for-byte, never a torn hybrid.
//===----------------------------------------------------------------------===//

#include "store/CertStore.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace canvas;
using namespace canvas::store;

namespace fs = std::filesystem;

namespace {

// put() walks four store-commit probes in order: the journal intent
// append, the temp-file write, the pre-rename crash point, and the
// journal completion append. Probe 5 never fires (clean run).
constexpr unsigned ProbesPerPut = 4;

StoreEntry makeEntry(uint32_t Slices) {
  StoreEntry E;
  E.InputHash = 0xFEEDBEEF12345678ull;
  E.Unit = "A::m";
  E.Engine = "scmp-intra";
  E.HasSummary = true;
  E.Slices = Slices;
  core::CheckRecord C;
  C.Method = E.Unit;
  C.Loc.Line = 3;
  C.What = "i.next() requires !P0(this)";
  C.Outcome = core::CheckOutcome::Safe;
  E.Checks.push_back(C);
  cert::Certificate Cert;
  Cert.Kind = cert::CertKind::BoolIntra;
  Cert.Unit = E.Unit;
  Cert.Claims.push_back({0, core::CheckOutcome::Safe});
  Cert.Payload = {1, 2, 3, static_cast<uint8_t>(Slices)};
  Cert.seal();
  E.HasCert = true;
  E.Cert = Cert;
  E.CertHash = Cert.ContentHash;
  return E;
}

class CrashRecoveryTest : public ::testing::TestWithParam<support::FaultKind> {
protected:
  void SetUp() override { support::clearFaultPlan(); }
  void TearDown() override { support::clearFaultPlan(); }

  std::string freshDir(const std::string &Tag) {
    // Per-process dir: the ShortWrite/Throw param instances run as
    // parallel ctest processes and would race on a shared path.
    std::string Dir = ::testing::TempDir() + "/crash-recovery-" + Tag + "-" +
                      std::to_string(static_cast<long>(::getpid()));
    fs::remove_all(Dir);
    return Dir;
  }
};

TEST_P(CrashRecoveryTest, FirstPutAtEveryProbeIsPreOrPostState) {
  const support::FaultKind Kind = GetParam();
  const StoreEntry E = makeEntry(1);
  const std::vector<uint8_t> Frame = CertStore::frameEntry(E);

  for (unsigned N = 1; N <= ProbesPerPut + 1; ++N) {
    const std::string Dir = freshDir("first-" + std::to_string(N));
    bool Threw = false;
    {
      CertStore St(Dir, StoreMode::ReadWrite);
      support::setFaultPlan({"store-commit", N, Kind});
      try {
        St.put(E);
      } catch (const CertifyError &) {
        Threw = true;
      }
      support::clearFaultPlan();
    }
    // The reopened store must answer with nothing (pre-state) or the
    // exact committed bytes (post-state) — recovery swallows whatever
    // the simulated crash left behind.
    CertStore Re(Dir, StoreMode::ReadWrite);
    std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
    if (Got)
      EXPECT_EQ(CertStore::frameEntry(*Got), Frame) << "probe " << N;
    else
      EXPECT_TRUE(Threw) << "probe " << N
                         << ": put claimed success but the entry is gone";
    EXPECT_EQ(Re.stats().Quarantined, 0u) << "probe " << N;
    // A fresh put on the recovered store must succeed: a crash never
    // bricks the store.
    if (!Got) {
      Re.put(E);
      ASSERT_TRUE(Re.get(E.InputHash, E.Unit));
    }
    fs::remove_all(Dir);
    if (!Threw) {
      EXPECT_EQ(N, ProbesPerPut + 1) << "probe " << N << " did not fire";
      break;
    }
  }
}

TEST_P(CrashRecoveryTest, OverwriteAtEveryProbeIsOldOrNewNeverTorn) {
  const support::FaultKind Kind = GetParam();
  const StoreEntry Old = makeEntry(1);
  const StoreEntry New = makeEntry(2);
  const std::vector<uint8_t> OldFrame = CertStore::frameEntry(Old);
  const std::vector<uint8_t> NewFrame = CertStore::frameEntry(New);
  ASSERT_NE(OldFrame, NewFrame);

  for (unsigned N = 1; N <= ProbesPerPut + 1; ++N) {
    const std::string Dir = freshDir("overwrite-" + std::to_string(N));
    bool Threw = false;
    {
      CertStore St(Dir, StoreMode::ReadWrite);
      St.put(Old);
      support::setFaultPlan({"store-commit", N, Kind});
      try {
        St.put(New);
      } catch (const CertifyError &) {
        Threw = true;
      }
      support::clearFaultPlan();
    }
    CertStore Re(Dir, StoreMode::ReadWrite);
    std::unique_ptr<StoreEntry> Got = Re.get(Old.InputHash, Old.Unit);
    ASSERT_TRUE(Got) << "probe " << N << ": overwrite crash lost the entry";
    const std::vector<uint8_t> GotFrame = CertStore::frameEntry(*Got);
    EXPECT_TRUE(GotFrame == OldFrame || GotFrame == NewFrame)
        << "probe " << N << ": torn state";
    if (!Threw) {
      EXPECT_EQ(GotFrame, NewFrame) << "probe " << N;
    }
    EXPECT_EQ(Re.stats().Quarantined, 0u) << "probe " << N;
    fs::remove_all(Dir);
    if (!Threw)
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, CrashRecoveryTest,
                         ::testing::Values(support::FaultKind::Throw,
                                           support::FaultKind::ShortWrite),
                         [](const ::testing::TestParamInfo<support::FaultKind>
                                &Info) {
                           return Info.param == support::FaultKind::Throw
                                      ? "Throw"
                                      : "ShortWrite";
                         });

TEST(CrashRecoveryCompactionTest, TornJournalCompactionRecoversOnReopen) {
  support::clearFaultPlan();
  const std::string Dir =
      ::testing::TempDir() + "/crash-recovery-compaction-" +
      std::to_string(static_cast<long>(::getpid()));
  fs::remove_all(Dir);
  const StoreEntry E = makeEntry(1);
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
  }
  // Probe 2 of store-recover is the journal compaction write; tearing
  // it makes the open itself fail (the simulated crash point).
  support::setFaultPlan(
      {"store-recover", 2, support::FaultKind::ShortWrite});
  EXPECT_THROW(CertStore(Dir, StoreMode::ReadWrite), CertifyError);
  support::clearFaultPlan();
  // The next open sweeps the torn journal.tmp fragment and serves the
  // committed entry untouched.
  CertStore Re(Dir, StoreMode::ReadWrite);
  std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
  ASSERT_TRUE(Got);
  EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(E));
  EXPECT_FALSE(fs::exists(Dir + "/journal.tmp"));
  fs::remove_all(Dir);
}

TEST(CrashRecoveryCompactionTest, ThrowingRecoverProbeFailsOpenCleanly) {
  support::clearFaultPlan();
  const std::string Dir = ::testing::TempDir() + "/crash-recovery-throw-" +
                          std::to_string(static_cast<long>(::getpid()));
  fs::remove_all(Dir);
  const StoreEntry E = makeEntry(1);
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
  }
  support::setFaultPlan({"store-recover", 1, support::FaultKind::Throw});
  EXPECT_THROW(CertStore(Dir, StoreMode::ReadWrite), CertifyError);
  support::clearFaultPlan();
  CertStore Re(Dir, StoreMode::ReadWrite);
  ASSERT_TRUE(Re.get(E.InputHash, E.Unit));
  fs::remove_all(Dir);
}

} // namespace
