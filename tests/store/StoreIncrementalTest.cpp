//===----------------------------------------------------------------------===//
// End-to-end incremental re-certification through core::Certifier: warm
// runs answered entirely from the persistent store with byte-identical
// reports, one-method edits re-analyzing only the edited method,
// checker-gated rejection of tampered entries, and verdict stability
// under every injected store fault.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"

#include "easl/Builtins.h"
#include "store/CertStore.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace canvas;
using namespace canvas::core;

namespace fs = std::filesystem;

namespace {

/// Two methods with no call edge: main carries a real violation (add
/// between iterator and next, so the stored entry includes a witness
/// the gate must replay), other is clean.
const char *TwoMethods = R"(
  class M {
    void main() {
      Set v = new Set();
      Iterator i = v.iterator();
      v.add();
      i.next();
    }
    void other() {
      Set w = new Set();
      Iterator j = w.iterator();
      j.next();
    }
  }
)";

/// TwoMethods with main() edited and other() untouched — on the same
/// line, so other()'s source positions (part of its key: a served
/// entry replays recorded locations verbatim) do not shift.
const char *TwoMethodsMainEdited = R"(
  class M {
    void main() {
      Set v = new Set();
      Iterator i = v.iterator();
      v.add(); v.add();
      i.next();
    }
    void other() {
      Set w = new Set();
      Iterator j = w.iterator();
      j.next();
    }
  }
)";

CertificationReport run(const char *Client, const CertifierOptions &Opts,
                        EngineKind K = EngineKind::SCMPIntra) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags, wp::DerivationOptions{}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  CertificationReport R = C.certifySource(Client, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

class StoreIncrementalTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::clearFaultPlan();
    // Per-process dir: parallel ctest processes race on a shared path.
    Dir = ::testing::TempDir() + "/store-incremental-" +
          std::to_string(static_cast<long>(::getpid()));
    fs::remove_all(Dir);
    Opts.StorePath = Dir;
  }
  void TearDown() override {
    support::clearFaultPlan();
    fs::remove_all(Dir);
  }

  std::string Dir;
  CertifierOptions Opts;
};

TEST_F(StoreIncrementalTest, WarmRunIsByteIdenticalAndFullyServed) {
  CertificationReport Cold = run(TwoMethods, Opts);
  EXPECT_TRUE(Cold.Store.Enabled);
  EXPECT_EQ(Cold.Store.Hits, 0u);
  EXPECT_GE(Cold.Store.Misses, 2u);
  EXPECT_EQ(Cold.Store.Writes, Cold.Store.Misses);
  EXPECT_FALSE(Cold.Degraded);
  EXPECT_GT(Cold.numChecks(), 0u);

  CertificationReport Warm = run(TwoMethods, Opts);
  // Everything answered from the store: zero engine invocations.
  EXPECT_EQ(Warm.Store.Misses, 0u);
  EXPECT_EQ(Warm.Store.Hits, Cold.Store.Misses);
  EXPECT_EQ(Warm.Store.Writes, 0u);
  EXPECT_EQ(Warm.Store.Rejected, 0u);
  // The report — verdicts, witnesses, slicing lines, everything the
  // renderer prints — is byte-identical to the cold run.
  EXPECT_EQ(Warm.str(), Cold.str());
}

TEST_F(StoreIncrementalTest, EditingOneMethodReanalyzesOnlyIt) {
  CertificationReport Cold = run(TwoMethods, Opts);
  ASSERT_GE(Cold.Store.Writes, 2u);

  CertificationReport Edited = run(TwoMethodsMainEdited, Opts);
  // other() is untouched: served from the store. main() re-keys: one
  // engine run, one fresh commit (the stale entry stays until GC'd —
  // it can never be served again, its key is dead).
  EXPECT_EQ(Edited.Store.Hits, 1u);
  EXPECT_EQ(Edited.Store.Misses, 1u);
  EXPECT_EQ(Edited.Store.Writes, 1u);
  EXPECT_FALSE(Edited.Degraded);
}

TEST_F(StoreIncrementalTest, TamperedEntryIsRejectedAndReanalyzed) {
  CertificationReport Cold = run(TwoMethods, Opts);
  ASSERT_GE(Cold.Store.Writes, 2u);

  // Tamper with one entry out-of-band: flip its first check's verdict
  // while leaving the certificate (and thus the CRC frame) internally
  // consistent — a hostile store trying to launder a wrong verdict
  // past the frame validation.
  {
    store::CertStore St(Dir, store::StoreMode::ReadWrite);
    std::vector<store::StoreEntry> All = St.listEntries();
    ASSERT_FALSE(All.empty());
    store::StoreEntry E = All[0];
    ASSERT_FALSE(E.Checks.empty());
    E.Checks[0].Outcome = E.Checks[0].Outcome == CheckOutcome::Safe
                              ? CheckOutcome::Potential
                              : CheckOutcome::Safe;
    E.Checks[0].Witness = core::WitnessTrace{};
    St.put(E);
  }

  CertificationReport Warm = run(TwoMethods, Opts);
  // The checker gate refuses the tampered entry (claims no longer match
  // the verdict vector), evicts it, and re-analyzes — the report stays
  // byte-identical to the cold run.
  EXPECT_EQ(Warm.Store.Rejected, 1u);
  EXPECT_EQ(Warm.Store.Misses, 1u);
  EXPECT_EQ(Warm.Store.Hits, Cold.Store.Misses - 1);
  bool SawInvalid = false;
  for (const store::StoreIncident &I : Warm.Store.Incidents)
    SawInvalid |= I.Kind == "StoreEntryInvalid";
  EXPECT_TRUE(SawInvalid);
  EXPECT_EQ(Warm.str(), Cold.str());

  // And the re-committed entry serves cleanly afterwards.
  CertificationReport Again = run(TwoMethods, Opts);
  EXPECT_EQ(Again.Store.Rejected, 0u);
  EXPECT_EQ(Again.Store.Misses, 0u);
  EXPECT_EQ(Again.str(), Cold.str());
}

TEST_F(StoreIncrementalTest, InjectedStoreFaultsNeverChangeVerdicts) {
  CertifierOptions Storeless;
  const CertificationReport Baseline = run(TwoMethods, Storeless);

  struct Case {
    const char *Site;
    support::FaultKind Kind;
  };
  const Case Cases[] = {
      {"store-open", support::FaultKind::Throw},
      {"store-recover", support::FaultKind::Throw},
      {"store-read", support::FaultKind::Throw},
      {"store-commit", support::FaultKind::Throw},
      {"store-commit", support::FaultKind::ShortWrite},
      {"store-recover", support::FaultKind::ShortWrite},
  };
  for (const Case &C : Cases) {
    const std::string CaseDir =
        Dir + "-fault-" + C.Site +
        (C.Kind == support::FaultKind::ShortWrite ? "-short" : "-throw");
    fs::remove_all(CaseDir);
    CertifierOptions FOpts;
    FOpts.StorePath = CaseDir;
    support::setFaultPlan({C.Site, 1, C.Kind});
    CertificationReport R = run(TwoMethods, FOpts);
    support::clearFaultPlan();
    // Whatever the store fault, certification degrades to re-analysis:
    // same verdicts, never Degraded, never a crash.
    EXPECT_FALSE(R.Degraded) << C.Site;
    EXPECT_EQ(R.str(), Baseline.str()) << C.Site;
    fs::remove_all(CaseDir);
  }
}

TEST_F(StoreIncrementalTest, ReadOnlyStoreServesButNeverWrites) {
  CertificationReport Cold = run(TwoMethods, Opts);
  ASSERT_GE(Cold.Store.Writes, 2u);

  CertifierOptions RoOpts = Opts;
  RoOpts.StoreMode = store::StoreMode::ReadOnly;
  CertificationReport Warm = run(TwoMethods, RoOpts);
  EXPECT_TRUE(Warm.Store.ReadOnly);
  EXPECT_EQ(Warm.Store.Misses, 0u);
  EXPECT_EQ(Warm.Store.Hits, Cold.Store.Misses);
  EXPECT_EQ(Warm.Store.Writes, 0u);
  EXPECT_EQ(Warm.str(), Cold.str());

  // A read-only open of a missing store is an incident, not a failure:
  // the run proceeds storeless with identical verdicts.
  CertifierOptions MissingOpts;
  MissingOpts.StorePath = Dir + "-nonexistent";
  MissingOpts.StoreMode = store::StoreMode::ReadOnly;
  CertificationReport NoStore = run(TwoMethods, MissingOpts);
  // Enabled records that a store was *requested*; the failed open shows
  // up as a StoreIO incident and zero activity.
  EXPECT_TRUE(NoStore.Store.Enabled);
  EXPECT_EQ(NoStore.Store.Hits + NoStore.Store.Writes, 0u);
  bool SawIO = false;
  for (const store::StoreIncident &I : NoStore.Store.Incidents)
    SawIO |= I.Kind == "StoreIO";
  EXPECT_TRUE(SawIO);
  EXPECT_EQ(NoStore.str(), Cold.str());
}

TEST_F(StoreIncrementalTest, InterproceduralUnitHitsAndInvalidates) {
  const char *Client = R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )";
  CertificationReport Cold = run(Client, Opts, EngineKind::SCMPInterproc);
  EXPECT_EQ(Cold.Store.Misses, 1u);
  EXPECT_EQ(Cold.Store.Writes, 1u);

  CertificationReport Warm = run(Client, Opts, EngineKind::SCMPInterproc);
  EXPECT_EQ(Warm.Store.Hits, 1u);
  EXPECT_EQ(Warm.Store.Misses, 0u);
  EXPECT_EQ(Warm.str(), Cold.str());

  // Editing any method re-keys the whole-program unit.
  const char *Edited = R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); s.add(); }
    }
  )";
  CertificationReport After = run(Edited, Opts, EngineKind::SCMPInterproc);
  EXPECT_EQ(After.Store.Hits, 0u);
  EXPECT_EQ(After.Store.Misses, 1u);
}

TEST_F(StoreIncrementalTest, PointsToCouplesEveryMethodToTheProgram) {
  CertifierOptions PtOpts = Opts;
  PtOpts.PointsTo = true;
  CertificationReport Cold = run(TwoMethods, PtOpts);
  ASSERT_GE(Cold.Store.Writes, 2u);

  CertificationReport Warm = run(TwoMethods, PtOpts);
  EXPECT_EQ(Warm.Store.Misses, 0u);
  EXPECT_EQ(Warm.str(), Cold.str());

  // Under the whole-program points-to refinement any edit can change
  // any method's verdict, so a one-method edit re-keys everything.
  CertificationReport After = run(TwoMethodsMainEdited, PtOpts);
  EXPECT_EQ(After.Store.Hits, 0u);
  EXPECT_EQ(After.Store.Misses, Cold.Store.Misses);
}

} // namespace
