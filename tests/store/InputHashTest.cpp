//===----------------------------------------------------------------------===//
// Input hashing for the persistent certificate store: determinism,
// context separation, and the incremental property — a local edit
// re-keys exactly the edited method plus every (transitive) caller,
// and nothing else.
//===----------------------------------------------------------------------===//

#include "store/InputHash.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::store;

namespace {

struct Built {
  cj::Program Prog;
  easl::Spec Spec;
  cj::ClientCFG CFG;
};

Built build(const char *ClientSrc) {
  Built B;
  B.Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  B.Prog = cj::parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  B.CFG = cj::buildCFG(B.Prog, B.Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return B;
}

constexpr uint64_t Ctx = 0xABCDEF0123456789ull;

/// Two methods with no call edge between them: the independence
/// baseline.
const char *TwoIndependent = R"(
  class M {
    void main() {
      Set v = new Set();
      v.add();
    }
    void other() {
      Set w = new Set();
      Iterator i = w.iterator();
      i.next();
    }
  }
)";

/// TwoIndependent with main() edited in place — same lines, same
/// columns for everything else, so other()'s recorded source positions
/// (part of its key) are untouched.
const char *TwoIndependentMainEdited = R"(
  class M {
    void main() {
      Set v = new Set();
      v.add(); v.add();
    }
    void other() {
      Set w = new Set();
      Iterator i = w.iterator();
      i.next();
    }
  }
)";

/// main -> mutate call edge: the propagation baseline.
const char *CallerCallee = R"(
  class M {
    void main() {
      Set v = new Set();
      Iterator i = v.iterator();
      mutate(v);
      i.next();
    }
    void mutate(Set s) { s.add(); }
  }
)";

TEST(InputHashTest, SameSourceSameHashes) {
  Built A = build(TwoIndependent);
  Built B = build(TwoIndependent);
  std::map<std::string, uint64_t> HA = methodInputHashes(A.CFG, Ctx);
  EXPECT_EQ(HA, methodInputHashes(B.CFG, Ctx));
  ASSERT_TRUE(HA.count("M::main"));
  ASSERT_TRUE(HA.count("M::other"));
  EXPECT_NE(HA.at("M::main"), HA.at("M::other"));
  EXPECT_EQ(programInputHash(A.CFG, Ctx), programInputHash(B.CFG, Ctx));
}

TEST(InputHashTest, ContextSeparatesOtherwiseIdenticalPrograms) {
  Built A = build(TwoIndependent);
  std::map<std::string, uint64_t> H1 = methodInputHashes(A.CFG, Ctx);
  std::map<std::string, uint64_t> H2 = methodInputHashes(A.CFG, Ctx + 1);
  ASSERT_EQ(H1.size(), H2.size());
  for (const auto &[Method, Hash] : H1)
    EXPECT_NE(Hash, H2.at(Method)) << Method;
  EXPECT_NE(programInputHash(A.CFG, Ctx), programInputHash(A.CFG, Ctx + 1));
  // Every context ingredient separates: spec hash, engine, options.
  EXPECT_NE(contextFingerprint(1, "abs", "scmp-intra", "v1:..."),
            contextFingerprint(2, "abs", "scmp-intra", "v1:..."));
  EXPECT_NE(contextFingerprint(1, "abs", "scmp-intra", "v1:..."),
            contextFingerprint(1, "abs", "scmp-interproc", "v1:..."));
  EXPECT_NE(contextFingerprint(1, "abs", "scmp-intra", "v1:pt0"),
            contextFingerprint(1, "abs", "scmp-intra", "v1:pt1"));
}

TEST(InputHashTest, LocalEditChangesOnlyTheEditedMethod) {
  Built A = build(TwoIndependent);
  // Edit main() only (no call edges exist), without shifting other()'s
  // source positions — locations are deliberately part of a method's
  // key (a served entry replays its recorded locations verbatim):
  // other() keeps its key even though the program hash changes.
  Built B = build(TwoIndependentMainEdited);
  std::map<std::string, uint64_t> HA = methodInputHashes(A.CFG, Ctx);
  std::map<std::string, uint64_t> HB = methodInputHashes(B.CFG, Ctx);
  EXPECT_NE(HA.at("M::main"), HB.at("M::main"));
  EXPECT_EQ(HA.at("M::other"), HB.at("M::other"));
  EXPECT_NE(programInputHash(A.CFG, Ctx), programInputHash(B.CFG, Ctx));
}

TEST(InputHashTest, CallerTracksCalleeEdit) {
  Built A = build(CallerCallee);
  // Edit mutate() only: its own key changes AND main()'s key changes
  // (main's analysis descends into the callee's body), though the
  // textual main() is untouched.
  Built B = build(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); s.add(); }
    }
  )");
  std::map<std::string, uint64_t> HA = methodInputHashes(A.CFG, Ctx);
  std::map<std::string, uint64_t> HB = methodInputHashes(B.CFG, Ctx);
  ASSERT_TRUE(HA.count("M::mutate"));
  EXPECT_NE(HA.at("M::mutate"), HB.at("M::mutate"));
  EXPECT_NE(HA.at("M::main"), HB.at("M::main"));
}

TEST(InputHashTest, MutualRecursionIsDeterministicAndEditsPropagate) {
  const char *Rec = R"(
    class M {
      void main() {
        Set v = new Set();
        ping(v);
      }
      void ping(Set s) {
        if (*) { pong(s); }
      }
      void pong(Set s) {
        s.add();
        if (*) { ping(s); }
      }
    }
  )";
  Built A = build(Rec);
  Built B = build(Rec);
  EXPECT_EQ(methodInputHashes(A.CFG, Ctx), methodInputHashes(B.CFG, Ctx));
  // Edit inside the cycle: every member of the cycle (and main, the
  // caller above it) re-keys.
  Built C = build(R"(
    class M {
      void main() {
        Set v = new Set();
        ping(v);
      }
      void ping(Set s) {
        if (*) { pong(s); }
      }
      void pong(Set s) {
        s.add();
        s.add();
        if (*) { ping(s); }
      }
    }
  )");
  std::map<std::string, uint64_t> HA = methodInputHashes(A.CFG, Ctx);
  std::map<std::string, uint64_t> HC = methodInputHashes(C.CFG, Ctx);
  EXPECT_NE(HA.at("M::pong"), HC.at("M::pong"));
  EXPECT_NE(HA.at("M::ping"), HC.at("M::ping"));
  EXPECT_NE(HA.at("M::main"), HC.at("M::main"));
}

} // namespace
