//===----------------------------------------------------------------------===//
// Store-level tests for the crash-safe persistent certificate store:
// record framing (roundtrip, CRC, hostile-input fuzzing), the recovery
// pass (torn journals, stray temps, corrupt entries), eviction, and
// the read-only mode. The checker gate above the store is covered by
// StoreIncrementalTest; here the embedded certificates only need to be
// content-hash-consistent.
//===----------------------------------------------------------------------===//

#include "store/CertStore.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <unistd.h>

using namespace canvas;
using namespace canvas::store;

namespace fs = std::filesystem;

namespace {

class CertStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::clearFaultPlan();
    // Per-process dir: ctest runs each test as its own process, in
    // parallel, and a shared path races on remove_all.
    Dir = ::testing::TempDir() + "/cert-store-test-" +
          std::to_string(static_cast<long>(::getpid()));
    fs::remove_all(Dir);
  }
  void TearDown() override {
    support::clearFaultPlan();
    fs::remove_all(Dir);
  }

  std::string Dir;
};

/// A representative entry: summary, a proven check, a flagged check
/// with a multi-step witness, and a sealed (hash-consistent)
/// certificate.
StoreEntry makeEntry(uint64_t InputHash = 0x1122334455667788ull,
                     const std::string &Unit = "A::m") {
  StoreEntry E;
  E.InputHash = InputHash;
  E.Unit = Unit;
  E.Engine = "scmp-intra";
  E.HasSummary = true;
  E.Slices = 3;

  core::CheckRecord Safe;
  Safe.Method = Unit;
  Safe.Loc.Line = 4;
  Safe.Loc.Col = 7;
  Safe.What = "i.next() requires !P0(this)";
  Safe.ReqLoc.Line = 12;
  Safe.ReqLoc.Col = 3;
  Safe.Outcome = core::CheckOutcome::Safe;
  E.Checks.push_back(Safe);

  core::CheckRecord Flagged = Safe;
  Flagged.Loc.Line = 9;
  Flagged.Outcome = core::CheckOutcome::Potential;
  Flagged.Witness.SeedFact = "i.defVer != i.set.ver";
  core::WitnessStep S1;
  S1.K = core::WitnessStep::Kind::Step;
  S1.Method = Unit;
  S1.Edge = 2;
  S1.Loc.Line = 5;
  S1.ActionText = "v.add()";
  S1.Fact = "may be 1";
  core::WitnessStep S2 = S1;
  S2.K = core::WitnessStep::Kind::Check;
  S2.Edge = 3;
  Flagged.Witness.Steps = {S1, S2};
  E.Checks.push_back(Flagged);

  cert::Certificate C;
  C.Kind = cert::CertKind::BoolIntra;
  C.Unit = Unit;
  C.Claims.push_back({0, core::CheckOutcome::Safe});
  C.Payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  C.RawEntries = 8;
  C.StoredEntries = 5;
  C.seal();
  E.HasCert = true;
  E.Cert = C;
  E.CertHash = C.ContentHash;
  return E;
}

void writeBytes(const std::string &File, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(File, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

TEST_F(CertStoreTest, FrameRoundtripPreservesEveryField) {
  const StoreEntry E = makeEntry();
  const std::vector<uint8_t> Frame = CertStore::frameEntry(E);
  StoreEntry Out;
  std::string Error;
  ASSERT_TRUE(CertStore::parseFrame(Frame, Out, Error)) << Error;
  EXPECT_EQ(Out.InputHash, E.InputHash);
  EXPECT_EQ(Out.Unit, E.Unit);
  EXPECT_EQ(Out.Engine, E.Engine);
  EXPECT_TRUE(Out.HasSummary);
  EXPECT_EQ(Out.Slices, 3u);
  ASSERT_EQ(Out.Checks.size(), 2u);
  EXPECT_EQ(Out.Checks[0].Outcome, core::CheckOutcome::Safe);
  EXPECT_EQ(Out.Checks[1].Witness.Steps.size(), 2u);
  EXPECT_EQ(Out.Checks[1].Witness.Steps[1].K, core::WitnessStep::Kind::Check);
  EXPECT_EQ(Out.Checks[1].Witness.SeedFact, "i.defVer != i.set.ver");
  EXPECT_TRUE(Out.HasCert);
  EXPECT_EQ(Out.CertHash, E.Cert.ContentHash);
  EXPECT_EQ(Out.Cert.Payload, E.Cert.Payload);
  // Re-framing the parsed entry is byte-identical: the codec is
  // canonical, which the crash-recovery tests rely on for state
  // comparison.
  EXPECT_EQ(CertStore::frameEntry(Out), Frame);
}

TEST_F(CertStoreTest, Crc32MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  const char *V = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const uint8_t *>(V), std::strlen(V)),
            0xCBF43926u);
}

TEST_F(CertStoreTest, EntryFileNameSeparatesKeys) {
  const std::string A = CertStore::entryFileName(1, "A::m");
  EXPECT_EQ(A, CertStore::entryFileName(1, "A::m"));
  EXPECT_NE(A, CertStore::entryFileName(2, "A::m"));
  EXPECT_NE(A, CertStore::entryFileName(1, "A::n"));
  EXPECT_EQ(A.substr(A.size() - 5), ".cert");
}

TEST_F(CertStoreTest, PutGetAcrossReopen) {
  const StoreEntry E = makeEntry();
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
    EXPECT_EQ(St.stats().Writes, 1u);
    std::unique_ptr<StoreEntry> Got = St.get(E.InputHash, E.Unit);
    ASSERT_TRUE(Got);
    EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(E));
  }
  CertStore Re(Dir, StoreMode::ReadWrite);
  std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
  ASSERT_TRUE(Got);
  EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(E));
  EXPECT_FALSE(Re.get(E.InputHash + 1, E.Unit));
}

TEST_F(CertStoreTest, CorruptEntryQuarantinedOnOpen) {
  const StoreEntry E = makeEntry();
  std::string File;
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
    File = Dir + "/entries/" + CertStore::entryFileName(E.InputHash, E.Unit);
  }
  // Flip one payload byte: the CRC catches it on the next open.
  {
    std::fstream F(File, std::ios::binary | std::ios::in | std::ios::out);
    F.seekp(20);
    F.put('\x5A');
  }
  CertStore Re(Dir, StoreMode::ReadWrite);
  EXPECT_EQ(Re.stats().Quarantined, 1u);
  EXPECT_FALSE(fs::exists(File));
  EXPECT_FALSE(fs::is_empty(Dir + "/quarantine"));
  EXPECT_FALSE(Re.get(E.InputHash, E.Unit));
  bool Saw = false;
  for (const StoreIncident &I : Re.takeIncidents())
    Saw |= I.Kind == "StoreQuarantine";
  EXPECT_TRUE(Saw);
}

TEST_F(CertStoreTest, TruncatedEntryQuarantinedOnOpen) {
  const StoreEntry E = makeEntry();
  std::string File;
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
    File = Dir + "/entries/" + CertStore::entryFileName(E.InputHash, E.Unit);
  }
  std::vector<uint8_t> Frame = CertStore::frameEntry(E);
  Frame.resize(Frame.size() / 2);
  writeBytes(File, Frame);
  CertStore Re(Dir, StoreMode::ReadWrite);
  EXPECT_EQ(Re.stats().Quarantined, 1u);
  EXPECT_FALSE(Re.get(E.InputHash, E.Unit));
}

TEST_F(CertStoreTest, StrayTempsRemovedOnOpen) {
  { CertStore St(Dir, StoreMode::ReadWrite); }
  writeBytes(Dir + "/entries/aaaa.cert.tmp3", {1, 2, 3});
  writeBytes(Dir + "/journal.tmp", {4, 5});
  CertStore Re(Dir, StoreMode::ReadWrite);
  EXPECT_EQ(Re.stats().TempsRemoved, 1u);
  EXPECT_FALSE(fs::exists(Dir + "/entries/aaaa.cert.tmp3"));
  EXPECT_FALSE(fs::exists(Dir + "/journal.tmp"));
}

TEST_F(CertStoreTest, TornJournalTailDiscarded) {
  const StoreEntry E = makeEntry();
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
  }
  {
    // An uncommitted intent plus a torn (newline-less) fragment: what a
    // crash mid-append leaves behind.
    std::ofstream J(Dir + "/journal.log", std::ios::binary | std::ios::app);
    J << "B some-file.cert\n";
    J << "B half-writ";
  }
  CertStore Re(Dir, StoreMode::ReadWrite);
  EXPECT_EQ(Re.stats().JournalRecovered, 1u);
  std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
  ASSERT_TRUE(Got);
  bool Saw = false;
  for (const StoreIncident &I : Re.takeIncidents())
    Saw |= I.Kind == "StoreRecover";
  EXPECT_TRUE(Saw);
}

TEST_F(CertStoreTest, EvictQuarantinesTheEntry) {
  const StoreEntry E = makeEntry();
  CertStore St(Dir, StoreMode::ReadWrite);
  St.put(E);
  St.evict(E.InputHash, E.Unit, "checker gate refused it");
  EXPECT_FALSE(St.get(E.InputHash, E.Unit));
  EXPECT_EQ(St.stats().Quarantined, 1u);
  // Evicting a missing key is a no-op, not an error.
  St.evict(E.InputHash, E.Unit, "again");
  EXPECT_EQ(St.stats().Quarantined, 1u);
}

TEST_F(CertStoreTest, KeyMismatchQuarantinedOnGet) {
  const StoreEntry E = makeEntry();
  { CertStore St(Dir, StoreMode::ReadWrite); }
  // A valid frame parked under the wrong file name: a hostile rename
  // trying to answer a different input hash with stale evidence.
  writeBytes(Dir + "/entries/" +
                 CertStore::entryFileName(E.InputHash + 1, E.Unit),
             CertStore::frameEntry(E));
  CertStore St(Dir, StoreMode::ReadWrite);
  EXPECT_FALSE(St.get(E.InputHash + 1, E.Unit));
  EXPECT_EQ(St.stats().Quarantined, 1u);
}

TEST_F(CertStoreTest, ReadOnlyServesButNeverMutates) {
  const StoreEntry E = makeEntry();
  std::string CorruptFile;
  {
    CertStore St(Dir, StoreMode::ReadWrite);
    St.put(E);
    const StoreEntry F = makeEntry(0x9999, "B::n");
    St.put(F);
    CorruptFile =
        Dir + "/entries/" + CertStore::entryFileName(F.InputHash, F.Unit);
  }
  writeBytes(CorruptFile, {1, 2, 3, 4});
  CertStore Ro(Dir, StoreMode::ReadOnly);
  // The invalid entry is skipped, not moved: read-only means no disk
  // mutation at all.
  EXPECT_EQ(Ro.stats().Quarantined, 0u);
  EXPECT_EQ(Ro.stats().SkippedInvalid, 1u);
  EXPECT_TRUE(fs::exists(CorruptFile));
  ASSERT_TRUE(Ro.get(E.InputHash, E.Unit));
  EXPECT_THROW(Ro.put(E), CertifyError);
  Ro.evict(E.InputHash, E.Unit, "ignored");
  EXPECT_TRUE(Ro.get(E.InputHash, E.Unit));
}

TEST_F(CertStoreTest, ReadOnlyOpenOfMissingStoreThrows) {
  EXPECT_THROW(CertStore(Dir, StoreMode::ReadOnly), CertifyError);
}

TEST_F(CertStoreTest, ListEntriesSortedByUnitThenHash) {
  CertStore St(Dir, StoreMode::ReadWrite);
  St.put(makeEntry(7, "B::x"));
  St.put(makeEntry(9, "A::y"));
  St.put(makeEntry(3, "A::y"));
  std::vector<StoreEntry> All = St.listEntries();
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(All[0].Unit, "A::y");
  EXPECT_EQ(All[0].InputHash, 3u);
  EXPECT_EQ(All[1].Unit, "A::y");
  EXPECT_EQ(All[1].InputHash, 9u);
  EXPECT_EQ(All[2].Unit, "B::x");
}

TEST_F(CertStoreTest, FramingFuzzNeverCrashesOrFalselyAccepts) {
  // Seeded, so a failure reproduces. Three hostile shapes: random
  // mutations of a valid frame, random truncations/extensions, and
  // pure garbage. parseFrame must return false or a coherent entry —
  // never crash, never accept a frame whose CRC does not match.
  std::mt19937 Rng(0xC0FFEE);
  const std::vector<uint8_t> Valid = CertStore::frameEntry(makeEntry());
  for (int Iter = 0; Iter != 300; ++Iter) {
    std::vector<uint8_t> Bytes;
    const int Shape = static_cast<int>(Rng() % 3);
    if (Shape == 0) {
      Bytes = Valid;
      const size_t Flips = 1 + Rng() % 8;
      for (size_t F = 0; F != Flips; ++F)
        Bytes[Rng() % Bytes.size()] ^= static_cast<uint8_t>(1 + Rng() % 255);
    } else if (Shape == 1) {
      Bytes = Valid;
      Bytes.resize(Rng() % (Valid.size() + 32));
    } else {
      Bytes.resize(Rng() % 128);
      for (uint8_t &B : Bytes)
        B = static_cast<uint8_t>(Rng());
    }
    StoreEntry Out;
    std::string Error;
    if (CertStore::parseFrame(Bytes, Out, Error)) {
      // Acceptance is only legitimate when the frame really is intact.
      ASSERT_GE(Bytes.size(), 16u);
      EXPECT_EQ(crc32(Bytes.data() + 16, Bytes.size() - 16),
                crc32(Valid.data() + 16, Valid.size() - 16));
    } else {
      EXPECT_FALSE(Error.empty());
    }
  }
}

TEST_F(CertStoreTest, HostileEntryFilesNeverBreakOpen) {
  // The same corpus written into entries/: the recovery sweep must
  // quarantine every undecodable file and keep the store usable.
  std::mt19937 Rng(0xFEEDFACE);
  { CertStore St(Dir, StoreMode::ReadWrite); }
  const std::vector<uint8_t> Valid = CertStore::frameEntry(makeEntry());
  for (int I = 0; I != 20; ++I) {
    std::vector<uint8_t> Bytes = Valid;
    Bytes.resize(Rng() % (Valid.size() + 16));
    for (size_t F = 0; F != 4 && !Bytes.empty(); ++F)
      Bytes[Rng() % Bytes.size()] ^= static_cast<uint8_t>(1 + Rng() % 255);
    writeBytes(Dir + "/entries/fuzz" + std::to_string(I) + ".cert", Bytes);
  }
  CertStore Re(Dir, StoreMode::ReadWrite);
  const StoreEntry E = makeEntry();
  Re.put(E);
  ASSERT_TRUE(Re.get(E.InputHash, E.Unit));
}

} // namespace
