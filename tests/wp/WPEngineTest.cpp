//===----------------------------------------------------------------------===//
// Direct tests of the symbolic weakest-precondition engine (Section 4.1
// rule 3): alias case-splits on field updates, fresh-handle resolution,
// constructor inlining, and conditionals.
//===----------------------------------------------------------------------===//

#include "wp/WPEngine.h"

#include "easl/Builtins.h"
#include "easl/Parser.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::wp;

namespace {

class WPEngineCMPTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  }

  /// WP of Post across ClassName::MethodName, rendered.
  std::string wpOf(const char *ClassName, const char *MethodName,
                   FormulaRef Post) {
    DiagnosticEngine Diags;
    WPEngine Engine(Spec, Diags);
    const easl::ClassDecl *C = Spec.findClass(ClassName);
    FormulaRef Pre =
        MethodName == std::string("new")
            ? Engine.wpConstructorCall(*C, std::move(Post))
            : Engine.wpMethodCall(*C, *C->findMethod(MethodName),
                                  std::move(Post));
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    return Pre->str();
  }

  static Path iter(const char *V) { return Path::var(V, "Iterator"); }
  static Path set(const char *V) { return Path::var(V, "Set"); }

  /// stale(q) == q.defVer != q.set.ver.
  static FormulaRef stale(const char *V) {
    return Formula::ne(iter(V).withField("defVer"),
                       iter(V).withField("set").withField("ver"));
  }

  easl::Spec Spec;
};

TEST_F(WPEngineCMPTest, AddMakesIteratorsOfReceiverStale) {
  // WP(v.add(), stale(q)) == stale(q) || q.set == this.
  std::string Pre = wpOf("Set", "add", stale("q"));
  // DNF the result to compare structurally.
  DiagnosticEngine Diags;
  WPEngine Engine(Spec, Diags);
  const easl::ClassDecl *C = Spec.findClass("Set");
  FormulaRef PreF = Engine.wpMethodCall(*C, *C->findMethod("add"),
                                        stale("q"));
  auto DNF = toDNF(PreF);
  ASSERT_EQ(DNF.size(), 2u) << Pre;
  std::set<std::string> Ds;
  for (const Conjunction &D : DNF)
    Ds.insert(conjunctionStr(D));
  EXPECT_TRUE(Ds.count("q.set == this")) << Pre;
  EXPECT_TRUE(Ds.count("q.defVer != q.set.ver")) << Pre;
}

TEST_F(WPEngineCMPTest, NextIsPure) {
  // next() mutates nothing: WP is the postcondition itself.
  EXPECT_EQ(wpOf("Iterator", "next", stale("q")), stale("q")->str());
}

TEST_F(WPEngineCMPTest, IteratorReturnsFreshObject) {
  // WP(ret == q) across iterator() is false: the result is fresh.
  FormulaRef Post = Formula::eq(iter("ret"), iter("q"));
  EXPECT_EQ(wpOf("Set", "iterator", Post), "false");
}

TEST_F(WPEngineCMPTest, FreshIteratorIsNotStale) {
  FormulaRef Post = Formula::ne(
      iter("ret").withField("defVer"),
      iter("ret").withField("set").withField("ver"));
  EXPECT_EQ(wpOf("Set", "iterator", Post), "false");
}

TEST_F(WPEngineCMPTest, FreshIteratorRangesOverReceiver) {
  // WP(ret.set == z) across iterator() == (this == z).
  FormulaRef Post = Formula::eq(iter("ret").withField("set"), set("z"));
  EXPECT_EQ(wpOf("Set", "iterator", Post), "this == z");
}

TEST_F(WPEngineCMPTest, NewSetDiffersFromEverySet) {
  FormulaRef Post = Formula::eq(set("ret"), set("z"));
  EXPECT_EQ(wpOf("Set", "new", Post), "false");
}

TEST_F(WPEngineCMPTest, RemoveUsesAliasCaseSplit) {
  // WP(this.remove(), stale(q)) mentions the mutx condition
  // (q != this && q.set == this.set) — the alias case split.
  DiagnosticEngine Diags;
  WPEngine Engine(Spec, Diags);
  const easl::ClassDecl *C = Spec.findClass("Iterator");
  FormulaRef Pre = Engine.wpMethodCall(*C, *C->findMethod("remove"),
                                       stale("q"));
  auto DNF = toDNF(Pre);
  bool FoundMutx = false;
  for (const Conjunction &D : DNF)
    FoundMutx |= conjunctionStr(D).find("q.set == this.set") !=
                 std::string::npos;
  EXPECT_TRUE(FoundMutx) << Pre->str();
}

TEST_F(WPEngineCMPTest, TranslateMethodCondition) {
  DiagnosticEngine Diags;
  WPEngine Engine(Spec, Diags);
  const easl::ClassDecl *C = Spec.findClass("Iterator");
  const easl::MethodDecl *Next = C->findMethod("next");
  const auto *Req =
      dyn_cast<easl::RequiresStmt>(Next->Body.front().get());
  ASSERT_NE(Req, nullptr);
  FormulaRef F = Engine.translateMethodCondition(*C, *Next, *Req->Cond);
  EXPECT_EQ(F->str(), "this.defVer == this.set.ver");
}

TEST(WPEngineTest, ConditionalBodiesSplitTheWP) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(R"(
    class A {
      A f;
      A g;
      void m(A x) {
        if (f == x) { f = x; } else { g = x; }
      }
    }
  )", Diags);
  ASSERT_TRUE(easl::checkSpec(S, Diags)) << Diags.str();
  wp::WPEngine Engine(S, Diags);
  const easl::ClassDecl *A = S.findClass("A");
  // Post: this.g == q. On the then-branch g is untouched; on the
  // else-branch g == x afterwards.
  FormulaRef Post = Formula::eq(Path::var("this", "A").withField("g"),
                                Path::var("q", "A"));
  FormulaRef Pre = Engine.wpMethodCall(*A, *A->findMethod("m"), Post);
  auto DNF = toDNF(Pre);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  std::set<std::string> Ds;
  for (const Conjunction &D : DNF)
    Ds.insert(conjunctionStr(D));
  // then: f == x (cond) && g == q; else: f != x && x == q.
  EXPECT_TRUE(Ds.count("q == this.g && this.f == x")) << Pre->str();
  EXPECT_TRUE(Ds.count("q == x && this.f != x")) << Pre->str();
}

TEST(WPEngineTest, GRPTraverseWP) {
  easl::Spec S = easl::parseBuiltinSpec(easl::grpSpecSource());
  DiagnosticEngine Diags;
  wp::WPEngine Engine(S, Diags);
  const easl::ClassDecl *G = S.findClass("Graph");
  // invalid(t) after g.traverse() <=> t.graph == this || invalid(t).
  Path T = Path::var("t", "Traversal");
  FormulaRef Post = Formula::ne(T.withField("grant"),
                                T.withField("graph").withField("owner"));
  FormulaRef Pre =
      Engine.wpMethodCall(*G, *G->findMethod("traverse"), Post);
  auto DNF = toDNF(Pre);
  std::set<std::string> Ds;
  for (const Conjunction &D : DNF)
    Ds.insert(conjunctionStr(D));
  EXPECT_TRUE(Ds.count("t.graph == this")) << Pre->str();
  EXPECT_TRUE(Ds.count("t.grant != t.graph.owner")) << Pre->str();
}

} // namespace
