#include "wp/MutationRestricted.h"

#include "easl/Builtins.h"
#include "easl/Parser.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::wp;

namespace {

TEST(MutationRestrictedTest, CMPIsNotMutationRestricted) {
  // Section 6 remark: CMP is *not* mutation-restricted (defVer = set.ver
  // in remove() mutates a field with a non-fresh value), yet the
  // derivation converges for it anyway.
  easl::Spec S = easl::parseBuiltinSpec(easl::cmpSpecSource());
  SpecClassification C = classifySpec(S);
  EXPECT_TRUE(C.AliasBased);
  EXPECT_TRUE(C.TypeGraphAcyclic);
  EXPECT_FALSE(C.RestrictedMutation) << C.str();
  EXPECT_FALSE(C.mutationRestricted());
}

TEST(MutationRestrictedTest, GRPIsMutationRestrictedButNotMutationFree) {
  easl::Spec S = easl::parseBuiltinSpec(easl::grpSpecSource());
  SpecClassification C = classifySpec(S);
  EXPECT_TRUE(C.mutationRestricted()) << C.str();
  // Traversal's constructor re-issues g.owner, so Graph.owner is mutable.
  EXPECT_FALSE(C.MutationFree);
}

TEST(MutationRestrictedTest, IMPAndAOPAreMutationFree) {
  for (const char *Src : {easl::impSpecSource(), easl::aopSpecSource()}) {
    easl::Spec S = easl::parseBuiltinSpec(Src);
    SpecClassification C = classifySpec(S);
    EXPECT_TRUE(C.mutationRestricted()) << C.str();
    EXPECT_TRUE(C.MutationFree) << C.str();
  }
}

TEST(MutationRestrictedTest, NonAliasRequiresDetected) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(R"(
    class A {
      A f;
      void m(A x) { requires (f != x); }
    }
  )", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  SpecClassification C = classifySpec(S);
  EXPECT_FALSE(C.AliasBased);
  EXPECT_FALSE(C.mutationRestricted());
}

TEST(MutationRestrictedTest, CyclicTypeGraphDetected) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(R"(
    class A { B next; }
    class B { A back; }
  )", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  SpecClassification C = classifySpec(S);
  EXPECT_FALSE(C.TypeGraphAcyclic);
}

TEST(MutationRestrictedTest, SelfLoopTypeGraphDetected) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec("class A { A next; }", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  SpecClassification C = classifySpec(S);
  EXPECT_FALSE(C.TypeGraphAcyclic);
}

TEST(MutationRestrictedTest, DisjunctiveRequiresIsNotAliasBased) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(R"(
    class A {
      A f;
      A g;
      void m(A x) { requires (f == x || g == x); }
    }
  )", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  SpecClassification C = classifySpec(S);
  EXPECT_FALSE(C.AliasBased);
}

TEST(MutationRestrictedTest, ConjunctiveAliasRequiresIsAliasBased) {
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(R"(
    class A {
      A f;
      A g;
      void m(A x) { requires (f == x && g == x); }
    }
  )", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  SpecClassification C = classifySpec(S);
  EXPECT_TRUE(C.AliasBased);
}

TEST(MutationRestrictedTest, StrRendersVerdicts) {
  easl::Spec S = easl::parseBuiltinSpec(easl::cmpSpecSource());
  std::string Out = classifySpec(S).str();
  EXPECT_NE(Out.find("mutation-restricted: no"), std::string::npos);
}

} // namespace
