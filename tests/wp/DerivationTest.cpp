//===----------------------------------------------------------------------===//
// Tests that the automatic abstraction derivation reproduces the paper's
// Fig. 4 (instrumentation predicates) and Fig. 5 (method abstractions)
// for CMP, and converges for the Section 2.2 problems.
//===----------------------------------------------------------------------===//

#include "wp/Abstraction.h"

#include "easl/Builtins.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

using namespace canvas;
using namespace canvas::wp;

namespace {

// The paper's CMP predicate bodies (Fig. 4) in canonical slot naming.
const char *StaleBody = "$p0.defVer != $p0.set.ver";
const char *IterofBody = "$p0.set == $p1";
const char *MutxBody = "$p0 != $p1 && $p0.set == $p1.set";
const char *SameBody = "$p0 == $p1";

class CMPDerivationTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Spec = new easl::Spec(easl::parseBuiltinSpec(easl::cmpSpecSource()));
    DiagnosticEngine Diags;
    Abs = new DerivedAbstraction(deriveAbstraction(*Spec, Diags));
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  }
  static void TearDownTestSuite() {
    delete Abs;
    delete Spec;
    Abs = nullptr;
    Spec = nullptr;
  }

  /// Index of the family whose body renders as \p Body, or -1.
  static int familyByBody(const std::string &Body) {
    for (size_t I = 0; I != Abs->Families.size(); ++I)
      if (conjunctionStr(Abs->Families[I].Body) == Body)
        return static_cast<int>(I);
    return -1;
  }

  static std::string displayName(const std::string &Body) {
    int I = familyByBody(Body);
    return I < 0 ? "<none>" : Abs->Families[I].DisplayName;
  }

  /// Finds the (unique) rule for the given target family/ret pattern.
  static const UpdateRule *findRule(const MethodAbstraction &M,
                                    const std::string &Body,
                                    std::vector<bool> RetSlots) {
    int Fam = familyByBody(Body);
    for (const UpdateRule &R : M.Rules)
      if (R.Family == Fam && R.RetSlots == RetSlots)
        return &R;
    return nullptr;
  }

  static std::set<std::string> sourceStrings(const UpdateRule &R) {
    std::set<std::string> Out;
    for (const PredApp &App : R.Sources)
      Out.insert(App.str(Abs->Families));
    return Out;
  }

  static easl::Spec *Spec;
  static DerivedAbstraction *Abs;
};

easl::Spec *CMPDerivationTest::Spec = nullptr;
DerivedAbstraction *CMPDerivationTest::Abs = nullptr;

TEST_F(CMPDerivationTest, ConvergesToExactlyTheFigure4Predicates) {
  EXPECT_TRUE(Abs->Converged);
  ASSERT_EQ(Abs->Families.size(), 4u) << Abs->str();
  EXPECT_NE(familyByBody(StaleBody), -1);
  EXPECT_NE(familyByBody(IterofBody), -1);
  EXPECT_NE(familyByBody(MutxBody), -1);
  EXPECT_NE(familyByBody(SameBody), -1);
}

TEST_F(CMPDerivationTest, PredicateFamilyTypes) {
  const PredicateFamily &Stale = Abs->Families[familyByBody(StaleBody)];
  EXPECT_EQ(Stale.VarTypes, (std::vector<std::string>{"Iterator"}));
  const PredicateFamily &Iterof = Abs->Families[familyByBody(IterofBody)];
  EXPECT_EQ(Iterof.VarTypes, (std::vector<std::string>{"Iterator", "Set"}));
  const PredicateFamily &Mutx = Abs->Families[familyByBody(MutxBody)];
  EXPECT_EQ(Mutx.VarTypes, (std::vector<std::string>{"Iterator", "Iterator"}));
  const PredicateFamily &Same = Abs->Families[familyByBody(SameBody)];
  EXPECT_EQ(Same.VarTypes, (std::vector<std::string>{"Set", "Set"}));
}

TEST_F(CMPDerivationTest, NextRequiresStaleFalse) {
  const MethodAbstraction *Next = Abs->findMethod("Iterator", "next");
  ASSERT_NE(Next, nullptr);
  ASSERT_EQ(Next->RequiresFalse.size(), 1u);
  EXPECT_EQ(Next->RequiresFalse[0].first.str(Abs->Families),
            displayName(StaleBody) + "(this)");
  // next() mutates nothing: every rule is an identity.
  for (const UpdateRule &R : Next->Rules)
    EXPECT_TRUE(R.IsIdentity) << R.str(Abs->Families);
}

TEST_F(CMPDerivationTest, AddRule_StaleBecomesStaleOrIterof) {
  // Fig. 5: v.add():  stale_k := stale_k || iterof_{k,v}.
  const MethodAbstraction *Add = Abs->findMethod("Set", "add");
  ASSERT_NE(Add, nullptr);
  const UpdateRule *R = findRule(*Add, StaleBody, {false});
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->ConstantTrue);
  EXPECT_EQ(sourceStrings(*R),
            (std::set<std::string>{displayName(StaleBody) + "($q0)",
                                   displayName(IterofBody) + "($q0, this)"}));
}

TEST_F(CMPDerivationTest, RemoveRule_StaleBecomesStaleOrMutx) {
  // Fig. 5: i.remove():  stale_j := stale_j || mutx_{j,i}; requires
  // !stale_i.
  const MethodAbstraction *Remove = Abs->findMethod("Iterator", "remove");
  ASSERT_NE(Remove, nullptr);
  ASSERT_EQ(Remove->RequiresFalse.size(), 1u);
  EXPECT_EQ(Remove->RequiresFalse[0].first.str(Abs->Families),
            displayName(StaleBody) + "(this)");

  const UpdateRule *R = findRule(*Remove, StaleBody, {false});
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->ConstantTrue);
  EXPECT_EQ(sourceStrings(*R),
            (std::set<std::string>{displayName(StaleBody) + "($q0)",
                                   displayName(MutxBody) + "($q0, this)"}));
}

TEST_F(CMPDerivationTest, IteratorRules_MatchFigure5) {
  // Fig. 5: i = v.iterator():
  //   iterof_{i,z} := same_{v,z};  mutx_{i,k} := iterof_{k,v};
  //   stale_i := 0.
  const MethodAbstraction *It = Abs->findMethod("Set", "iterator");
  ASSERT_NE(It, nullptr);

  const UpdateRule *StaleRet = findRule(*It, StaleBody, {true});
  ASSERT_NE(StaleRet, nullptr);
  EXPECT_FALSE(StaleRet->ConstantTrue);
  EXPECT_TRUE(StaleRet->Sources.empty()) << StaleRet->str(Abs->Families);

  const UpdateRule *IterofRet = findRule(*It, IterofBody, {true, false});
  ASSERT_NE(IterofRet, nullptr);
  EXPECT_EQ(sourceStrings(*IterofRet),
            (std::set<std::string>{displayName(SameBody) + "($q1, this)"}));

  const UpdateRule *MutxRet = findRule(*It, MutxBody, {true, false});
  ASSERT_NE(MutxRet, nullptr);
  EXPECT_EQ(sourceStrings(*MutxRet),
            (std::set<std::string>{displayName(IterofBody) + "($q1, this)"}));

  // Predicates over pre-existing iterators are unaffected.
  const UpdateRule *StaleQ = findRule(*It, StaleBody, {false});
  ASSERT_NE(StaleQ, nullptr);
  EXPECT_TRUE(StaleQ->IsIdentity);
}

TEST_F(CMPDerivationTest, NewSetRules_MatchFigure5) {
  // Fig. 5: v = new Set(): same_{v,z} := 0 (z != v), iterof_{k,v} := 0.
  const MethodAbstraction *New = Abs->findMethod("Set", "new");
  ASSERT_NE(New, nullptr);
  EXPECT_FALSE(New->HasThis);
  EXPECT_TRUE(New->ReturnsValue);

  const UpdateRule *SameRet = findRule(*New, SameBody, {true, false});
  ASSERT_NE(SameRet, nullptr);
  EXPECT_FALSE(SameRet->ConstantTrue);
  EXPECT_TRUE(SameRet->Sources.empty());

  const UpdateRule *IterofRet = findRule(*New, IterofBody, {false, true});
  ASSERT_NE(IterofRet, nullptr);
  EXPECT_TRUE(IterofRet->Sources.empty());

  const UpdateRule *StaleQ = findRule(*New, StaleBody, {false});
  ASSERT_NE(StaleQ, nullptr);
  EXPECT_TRUE(StaleQ->IsIdentity);
}

TEST_F(CMPDerivationTest, RequiresClausesOnlyOnNextAndRemove) {
  for (const MethodAbstraction &M : Abs->Methods) {
    bool ShouldRequire = M.ClassName == "Iterator" &&
                         (M.MethodName == "next" || M.MethodName == "remove");
    EXPECT_EQ(!M.RequiresFalse.empty(), ShouldRequire)
        << M.ClassName << "::" << M.MethodName;
  }
}

TEST_F(CMPDerivationTest, RendersFigure4And5Analogue) {
  std::string Rendered = Abs->str();
  EXPECT_NE(Rendered.find("Instrumentation predicate families:"),
            std::string::npos);
  EXPECT_NE(Rendered.find(StaleBody), std::string::npos);
  EXPECT_NE(Rendered.find("Iterator::remove"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Other Section 2.2 problems
//===----------------------------------------------------------------------===//

DerivedAbstraction derive(const char *Src) {
  easl::Spec S = easl::parseBuiltinSpec(Src);
  DiagnosticEngine Diags;
  DerivedAbstraction A = deriveAbstraction(S, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return A;
}

TEST(DerivationTest, GRPConvergesWithStaleLikePredicates) {
  DerivedAbstraction A = derive(easl::grpSpecSource());
  EXPECT_TRUE(A.Converged);
  // invalid(t), traverses(t,g), same(g,g') — the CMP shape minus mutx
  // (GRP has no remove()-like selective invalidation).
  std::set<std::string> Bodies;
  for (const PredicateFamily &F : A.Families)
    Bodies.insert(conjunctionStr(F.Body));
  EXPECT_TRUE(Bodies.count("$p0.grant != $p0.graph.owner")) << A.str();
  // traverses(t, g) canonicalizes with the Graph slot first.
  EXPECT_TRUE(Bodies.count("$p0 == $p1.graph")) << A.str();
}

TEST(DerivationTest, GRPTraverseInvalidatesOtherTraversals) {
  DerivedAbstraction A = derive(easl::grpSpecSource());
  const MethodAbstraction *T = A.findMethod("Graph", "traverse");
  ASSERT_NE(T, nullptr);
  // invalid(q) := invalid(q) || traverses(q, this).
  bool Found = false;
  for (const UpdateRule &R : T->Rules) {
    if (R.IsIdentity || R.RetSlots != std::vector<bool>{false})
      continue;
    if (conjunctionStr(A.Families[R.Family].Body) ==
        "$p0.grant != $p0.graph.owner") {
      EXPECT_EQ(R.Sources.size(), 2u) << R.str(A.Families);
      Found = true;
    }
  }
  EXPECT_TRUE(Found) << A.str();
}

TEST(DerivationTest, IMPConverges) {
  DerivedAbstraction A = derive(easl::impSpecSource());
  EXPECT_TRUE(A.Converged);
  const MethodAbstraction *Combine = A.findMethod("Widget", "combine");
  ASSERT_NE(Combine, nullptr);
  ASSERT_EQ(Combine->RequiresFalse.size(), 1u);
}

TEST(DerivationTest, IMPNewFactoryDiffersFromAllFactories) {
  DerivedAbstraction A = derive(easl::impSpecSource());
  const MethodAbstraction *New = A.findMethod("Factory", "new");
  ASSERT_NE(New, nullptr);
  // difffac(ret, q) := 1 — a fresh factory differs from every existing
  // one.
  bool FoundConstTrue = false;
  for (const UpdateRule &R : New->Rules)
    FoundConstTrue |= R.ConstantTrue;
  EXPECT_TRUE(FoundConstTrue) << A.str();
}

TEST(DerivationTest, AOPConvergesWithTwoRequires) {
  DerivedAbstraction A = derive(easl::aopSpecSource());
  EXPECT_TRUE(A.Converged);
  const MethodAbstraction *AddEdge = A.findMethod("GraphA", "addEdge");
  ASSERT_NE(AddEdge, nullptr);
  EXPECT_EQ(AddEdge->RequiresFalse.size(), 2u);
}

TEST(DerivationTest, AblationWithoutCCSimplifierGrowsPredicateSet) {
  // DESIGN.md decision 1: without congruence-closure simplification the
  // derived predicate set is strictly larger (or the derivation fails to
  // converge) because redundant literals are not eliminated.
  easl::Spec S = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  DerivationOptions Opts;
  Opts.SimplifyWithCC = false;
  DerivedAbstraction A = deriveAbstraction(S, Opts, Diags);
  EXPECT_TRUE(A.Families.size() > 4 || !A.Converged) << A.str();
}

TEST(DerivationTest, CountsWPComputations) {
  DerivedAbstraction A = derive(easl::cmpSpecSource());
  EXPECT_GT(A.NumWPComputations, 0u);
}

} // namespace
