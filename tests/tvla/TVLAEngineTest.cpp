//===----------------------------------------------------------------------===//
// Tests for the first-order certification engine (Section 5), in both
// the relational and the independent-attribute configuration.
//===----------------------------------------------------------------------===//

#include "tvla/Certify.h"

#include "client/Parser.h"
#include "easl/Builtins.h"
#include "tvp/Program.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::tvla;

namespace {

TVLAResult run(const char *ClientSrc, bool Relational,
               const char *SpecSrc = nullptr) {
  easl::Spec Spec =
      easl::parseBuiltinSpec(SpecSrc ? SpecSrc : easl::cmpSpecSource());
  DiagnosticEngine Diags;
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program Prog = cj::parseProgram(ClientSrc, Diags);
  cj::ClientCFG CFG = cj::buildCFG(Prog, Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return certifyWithTVLA(Spec, Abs, *CFG.mainCFG(), Relational, Diags);
}

std::vector<bp::CheckOutcome> outcomes(const TVLAResult &R) {
  std::vector<bp::CheckOutcome> O;
  for (const auto &C : R.Checks)
    O.push_back(C.Outcome);
  return O;
}

class TVLAModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(TVLAModeTest, Fig3Verdicts) {
  TVLAResult R = run(R"(
    class Fig3 {
      void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (*) { i2.next(); }
        if (*) { i3.next(); }
        v.add();
        if (*) { i1.next(); }
      }
    }
  )", GetParam());
  auto O = outcomes(R);
  ASSERT_EQ(O.size(), 5u);
  EXPECT_EQ(O[0], bp::CheckOutcome::Safe);
  EXPECT_EQ(O[1], bp::CheckOutcome::Safe);
  EXPECT_EQ(O[2], bp::CheckOutcome::Definite);
  EXPECT_EQ(O[3], bp::CheckOutcome::Safe); // No false alarm at i3 (Fig. 8).
  EXPECT_EQ(O[4], bp::CheckOutcome::Definite);
}

TEST_P(TVLAModeTest, VersionedLoopCertified) {
  TVLAResult R = run(R"(
    class Loop {
      void main() {
        Set s = new Set();
        while (*) {
          s.add();
          Iterator i = s.iterator();
          while (*) { i.next(); }
        }
      }
    }
  )", GetParam());
  for (bp::CheckOutcome O : outcomes(R))
    EXPECT_EQ(O, bp::CheckOutcome::Safe);
}

TEST_P(TVLAModeTest, SummarizedStaleIteratorsStaySummarized) {
  // Iterators abandoned in a loop accumulate into a summary node; the
  // live iterator must stay distinguished and verified.
  TVLAResult R = run(R"(
    class Churn {
      void main() {
        Set s = new Set();
        Iterator live = s.iterator();
        while (*) {
          Iterator dead = s.iterator();
        }
        live.next();
      }
    }
  )", GetParam());
  auto O = outcomes(R);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], bp::CheckOutcome::Safe);
}

TEST_P(TVLAModeTest, HavocIsConservative) {
  TVLAResult R = run(R"(
    class Nully {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (*) { i = null; }
        s.add();
        i.next();
      }
    }
  )", GetParam());
  auto O = outcomes(R);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_NE(O[0], bp::CheckOutcome::Safe);
}

TEST_P(TVLAModeTest, GRPClient) {
  TVLAResult R = run(R"(
    class T {
      void main() {
        Graph g = new Graph();
        Traversal t1 = g.traverse();
        Traversal t2 = g.traverse();
        t2.visitNext();
        t1.visitNext();
      }
    }
  )", GetParam(), easl::grpSpecSource());
  auto O = outcomes(R);
  ASSERT_EQ(O.size(), 2u);
  EXPECT_EQ(O[0], bp::CheckOutcome::Safe);
  EXPECT_EQ(O[1], bp::CheckOutcome::Definite);
}

TEST_P(TVLAModeTest, UnreachableChecksReported) {
  TVLAResult R = run(R"(
    class Dead {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        return;
        i.next();
      }
    }
  )", GetParam());
  auto O = outcomes(R);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], bp::CheckOutcome::Unreachable);
}

INSTANTIATE_TEST_SUITE_P(BothModes, TVLAModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "Relational" : "Independent";
                         });

TEST(TVLAEngineTest, RelationalTracksMultipleStructures) {
  TVLAResult Rel = run(R"(
    class Branchy {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (*) { s.add(); }
        i.next();
      }
    }
  )", /*Relational=*/true);
  // After the branch the relational engine holds two structures.
  EXPECT_GE(Rel.MaxStructuresPerPoint, 2u);
  ASSERT_EQ(Rel.Checks.size(), 1u);
  EXPECT_EQ(Rel.Checks[0].Outcome, bp::CheckOutcome::Potential);
}

TEST(TVLAEngineTest, IndependentKeepsOneStructure) {
  TVLAResult Ind = run(R"(
    class Branchy {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (*) { s.add(); }
        i.next();
      }
    }
  )", /*Relational=*/false);
  EXPECT_EQ(Ind.MaxStructuresPerPoint, 1u);
  ASSERT_EQ(Ind.Checks.size(), 1u);
  EXPECT_EQ(Ind.Checks[0].Outcome, bp::CheckOutcome::Potential);
}

TVLAResult runWithOptions(const char *ClientSrc, const TVLAOptions &Opts) {
  easl::Spec Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program Prog = cj::parseProgram(ClientSrc, Diags);
  cj::ClientCFG CFG = cj::buildCFG(Prog, Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return certifyWithTVLA(Spec, Abs, *CFG.mainCFG(), Opts, Diags);
}

// A client whose relational structure sets genuinely grow: two
// iterators refreshed under branches inside a shared loop.
constexpr const char *LoopyClient = R"(
  class Loopy {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      Iterator j = s.iterator();
      while (*) {
        i.next();
        if (*) { i = s.iterator(); }
        j.next();
        if (*) { j = s.iterator(); s.add(); }
      }
      i.next();
      j.next();
    }
  }
)";

TEST(TVLAEngineTest, RelationalReportsInternerAndCacheStats) {
  TVLAOptions Opts;
  Opts.Relational = true;
  TVLAResult R = runWithOptions(LoopyClient, Opts);
  // The loop revisits program points, so transfers repeat on already-
  // seen structures and the (StructId, edge) memo must pay off.
  EXPECT_GT(R.InternedStructures, 0u);
  EXPECT_GT(R.TransferCacheMisses, 0u);
  EXPECT_GT(R.TransferCacheHits, 0u);
  // Every distinct structure was admitted once: the pool can't be
  // larger than the number of transfer results plus the initial one.
  EXPECT_LE(R.InternedStructures, R.TransferCacheMisses + 1);
}

TEST(TVLAEngineTest, IndependentReportsNoInternerStats) {
  TVLAOptions Opts;
  Opts.Relational = false;
  TVLAResult R = runWithOptions(LoopyClient, Opts);
  EXPECT_EQ(R.InternedStructures, 0u);
  EXPECT_EQ(R.TransferCacheHits, 0u);
  EXPECT_EQ(R.TransferCacheMisses, 0u);
}

TEST(TVLAEngineTest, RepeatedRunsAreDeterministic) {
  TVLAOptions Opts;
  Opts.Relational = true;
  TVLAResult A = runWithOptions(LoopyClient, Opts);
  TVLAResult B = runWithOptions(LoopyClient, Opts);
  ASSERT_EQ(A.Checks.size(), B.Checks.size());
  for (size_t I = 0; I != A.Checks.size(); ++I) {
    EXPECT_EQ(A.Checks[I].Outcome, B.Checks[I].Outcome);
    EXPECT_EQ(A.Checks[I].What, B.Checks[I].What);
  }
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.InternedStructures, B.InternedStructures);
  EXPECT_EQ(A.TransferCacheHits, B.TransferCacheHits);
  EXPECT_EQ(A.TransferCacheMisses, B.TransferCacheMisses);
}

// Regression for the structure-cap path: joining the overflow structure
// into a resident victim changes the victim's canonical identity, and
// the per-point set must be re-keyed under the joined structure's new
// identity (the old code left the stale identity in the set, so the
// joined structure was never re-transferred). With a tiny cap the
// fixpoint must still terminate, keep the check count, and only lose
// precision relative to the uncapped run — never report Safe where the
// uncapped engine flags.
TEST(TVLAEngineTest, TinyStructureCapStaysSoundAndTerminates) {
  TVLAOptions Uncapped;
  Uncapped.Relational = true;
  TVLAResult Ref = runWithOptions(LoopyClient, Uncapped);

  for (unsigned Cap : {1u, 2u, 3u}) {
    TVLAOptions Capped;
    Capped.Relational = true;
    Capped.MaxStructuresPerPoint = Cap;
    TVLAResult R = runWithOptions(LoopyClient, Capped);
    EXPECT_LE(R.MaxStructuresPerPoint, Cap) << "cap=" << Cap;
    ASSERT_EQ(R.Checks.size(), Ref.Checks.size()) << "cap=" << Cap;
    for (size_t I = 0; I != R.Checks.size(); ++I) {
      if (R.Checks[I].Outcome == bp::CheckOutcome::Safe) {
        EXPECT_EQ(Ref.Checks[I].Outcome, bp::CheckOutcome::Safe)
            << "cap=" << Cap << " check=" << R.Checks[I].What;
      }
    }
  }
}

// The capped engine must converge to the same verdicts every time even
// though the cap path interns fresh join results mid-fixpoint.
TEST(TVLAEngineTest, CapPathIsDeterministic) {
  TVLAOptions Opts;
  Opts.Relational = true;
  Opts.MaxStructuresPerPoint = 2;
  TVLAResult A = runWithOptions(LoopyClient, Opts);
  TVLAResult B = runWithOptions(LoopyClient, Opts);
  ASSERT_EQ(A.Checks.size(), B.Checks.size());
  for (size_t I = 0; I != A.Checks.size(); ++I)
    EXPECT_EQ(A.Checks[I].Outcome, B.Checks[I].Outcome);
  EXPECT_EQ(A.Iterations, B.Iterations);
}

TEST(TVPTest, RendersTranslations) {
  easl::Spec Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  std::string Std = tvp::renderStandardTranslation();
  EXPECT_NE(Std.find("pt$x(o) := pt$y(o)"), std::string::npos);
  std::string Spec11 = tvp::renderSpecializedTranslation(Abs);
  EXPECT_NE(Spec11.find("Fig. 10"), std::string::npos);
  EXPECT_NE(Spec11.find("pt$this"), std::string::npos) << Spec11;
}

} // namespace
