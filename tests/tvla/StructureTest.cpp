#include "tvla/Structure.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::tvla;

namespace {

/// A small vocabulary: one type pred, two var preds, one unary and one
/// binary instrumentation pred.
class StructureTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
    DiagnosticEngine Diags;
    Abs = wp::deriveAbstraction(Spec, Diags);
    Prog = cj::parseProgram(R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          Iterator j = v.iterator();
        }
      }
    )", Diags);
    CFG = cj::buildCFG(Prog, Spec, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    Vocab = tvp::buildVocabulary(Abs, *CFG.mainCFG(), Diags);
  }

  easl::Spec Spec;
  wp::DerivedAbstraction Abs;
  cj::Program Prog;
  cj::ClientCFG CFG;
  tvp::Vocabulary Vocab;
};

TEST_F(StructureTest, VocabularyHasExpectedPredicates) {
  EXPECT_GE(Vocab.findTypePred("Iterator"), 0);
  EXPECT_GE(Vocab.findTypePred("Set"), 0);
  EXPECT_GE(Vocab.findVarPred("i"), 0);
  EXPECT_GE(Vocab.findVarPred("v"), 0);
  EXPECT_LT(Vocab.findVarPred("nosuch"), 0);
  // All four CMP families have arity <= 2.
  for (int F = 0; F != 4; ++F)
    EXPECT_GE(Vocab.findInstrPred(F), 0) << Vocab.str();
}

TEST_F(StructureTest, AddNodeExtendsAllPredicates) {
  Structure S(Vocab);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  EXPECT_EQ(S.numNodes(), 2u);
  int IterType = Vocab.findTypePred("Iterator");
  EXPECT_EQ(S.unary(IterType, A), Kleene::False);
  S.setUnary(IterType, A, Kleene::True);
  EXPECT_EQ(S.unary(IterType, A), Kleene::True);
  EXPECT_EQ(S.unary(IterType, B), Kleene::False);
}

TEST_F(StructureTest, NodeEqRespectsSummary) {
  Structure S(Vocab);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  EXPECT_EQ(S.nodeEq(A, B), Kleene::False);
  EXPECT_EQ(S.nodeEq(A, A), Kleene::True);
  S.setSummary(A, true);
  EXPECT_EQ(S.nodeEq(A, A), Kleene::Half);
}

TEST_F(StructureTest, BlurMergesIndistinguishableNodes) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  // Two unpointed iterators with identical unary values merge.
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.blur(Vocab);
  ASSERT_EQ(S.numNodes(), 1u);
  EXPECT_TRUE(S.isSummary(0));
}

TEST_F(StructureTest, BlurKeepsDistinguishedNodesApart) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.setUnary(PtI, A, Kleene::True); // i points to A only.
  S.blur(Vocab);
  EXPECT_EQ(S.numNodes(), 2u);
  EXPECT_FALSE(S.isSummary(0));
  EXPECT_FALSE(S.isSummary(1));
}

TEST_F(StructureTest, BlurJoinsBinaryValues) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  int Mutx = -1;
  for (size_t P = 0; P != Vocab.Preds.size(); ++P)
    if (Vocab.Preds[P].K == tvp::Pred::Kind::Instr &&
        Vocab.Preds[P].Arity == 2 &&
        Abs.Families[Vocab.Preds[P].Family].VarTypes[0] == "Iterator")
      Mutx = static_cast<int>(P);
  ASSERT_GE(Mutx, 0);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  unsigned C = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.setUnary(IterType, C, Kleene::True);
  S.setBinary(Mutx, A, C, Kleene::True);
  S.setBinary(Mutx, B, C, Kleene::False);
  S.blur(Vocab);
  // A, B, C merge into one summary node; mutx joins 1 and 0 to 1/2.
  ASSERT_EQ(S.numNodes(), 1u);
  EXPECT_EQ(S.binary(Mutx, 0, 0), Kleene::Half);
}

TEST_F(StructureTest, CanonicalStrIsStableUnderNodeOrder) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");

  Structure S1(Vocab);
  unsigned A1 = S1.addNode();
  unsigned B1 = S1.addNode();
  S1.setUnary(IterType, A1, Kleene::True);
  S1.setUnary(IterType, B1, Kleene::True);
  S1.setUnary(PtI, A1, Kleene::True);

  Structure S2(Vocab);
  unsigned A2 = S2.addNode();
  unsigned B2 = S2.addNode();
  S2.setUnary(IterType, A2, Kleene::True);
  S2.setUnary(IterType, B2, Kleene::True);
  S2.setUnary(PtI, B2, Kleene::True); // Same shape, different node order.

  S1.blur(Vocab);
  S2.blur(Vocab);
  EXPECT_EQ(S1.canonicalStr(Vocab), S2.canonicalStr(Vocab));
}

TEST_F(StructureTest, JoinUnionsUniversesByKey) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");
  int PtJ = Vocab.findVarPred("j");

  Structure S1(Vocab);
  unsigned A = S1.addNode();
  S1.setUnary(IterType, A, Kleene::True);
  S1.setUnary(PtI, A, Kleene::True);
  S1.blur(Vocab);

  Structure S2(Vocab);
  unsigned B = S2.addNode();
  S2.setUnary(IterType, B, Kleene::True);
  S2.setUnary(PtJ, B, Kleene::True);
  S2.blur(Vocab);

  EXPECT_TRUE(S1.joinWith(S2, Vocab));
  EXPECT_EQ(S1.numNodes(), 2u);
  // Joining again changes nothing (idempotent).
  EXPECT_FALSE(S1.joinWith(S2, Vocab));
}

} // namespace
