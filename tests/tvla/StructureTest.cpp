#include "tvla/Structure.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::tvla;

namespace {

/// A small vocabulary: one type pred, two var preds, one unary and one
/// binary instrumentation pred.
class StructureTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
    DiagnosticEngine Diags;
    Abs = wp::deriveAbstraction(Spec, Diags);
    Prog = cj::parseProgram(R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          Iterator j = v.iterator();
        }
      }
    )", Diags);
    CFG = cj::buildCFG(Prog, Spec, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    Vocab = tvp::buildVocabulary(Abs, *CFG.mainCFG(), Diags);
  }

  easl::Spec Spec;
  wp::DerivedAbstraction Abs;
  cj::Program Prog;
  cj::ClientCFG CFG;
  tvp::Vocabulary Vocab;
};

TEST_F(StructureTest, VocabularyHasExpectedPredicates) {
  EXPECT_GE(Vocab.findTypePred("Iterator"), 0);
  EXPECT_GE(Vocab.findTypePred("Set"), 0);
  EXPECT_GE(Vocab.findVarPred("i"), 0);
  EXPECT_GE(Vocab.findVarPred("v"), 0);
  EXPECT_LT(Vocab.findVarPred("nosuch"), 0);
  // All four CMP families have arity <= 2.
  for (int F = 0; F != 4; ++F)
    EXPECT_GE(Vocab.findInstrPred(F), 0) << Vocab.str();
}

TEST_F(StructureTest, AddNodeExtendsAllPredicates) {
  Structure S(Vocab);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  EXPECT_EQ(S.numNodes(), 2u);
  int IterType = Vocab.findTypePred("Iterator");
  EXPECT_EQ(S.unary(IterType, A), Kleene::False);
  S.setUnary(IterType, A, Kleene::True);
  EXPECT_EQ(S.unary(IterType, A), Kleene::True);
  EXPECT_EQ(S.unary(IterType, B), Kleene::False);
}

TEST_F(StructureTest, NodeEqRespectsSummary) {
  Structure S(Vocab);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  EXPECT_EQ(S.nodeEq(A, B), Kleene::False);
  EXPECT_EQ(S.nodeEq(A, A), Kleene::True);
  S.setSummary(A, true);
  EXPECT_EQ(S.nodeEq(A, A), Kleene::Half);
}

TEST_F(StructureTest, BlurMergesIndistinguishableNodes) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  // Two unpointed iterators with identical unary values merge.
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.blur(Vocab);
  ASSERT_EQ(S.numNodes(), 1u);
  EXPECT_TRUE(S.isSummary(0));
}

TEST_F(StructureTest, BlurKeepsDistinguishedNodesApart) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.setUnary(PtI, A, Kleene::True); // i points to A only.
  S.blur(Vocab);
  EXPECT_EQ(S.numNodes(), 2u);
  EXPECT_FALSE(S.isSummary(0));
  EXPECT_FALSE(S.isSummary(1));
}

TEST_F(StructureTest, BlurJoinsBinaryValues) {
  Structure S(Vocab);
  int IterType = Vocab.findTypePred("Iterator");
  int Mutx = -1;
  for (size_t P = 0; P != Vocab.Preds.size(); ++P)
    if (Vocab.Preds[P].K == tvp::Pred::Kind::Instr &&
        Vocab.Preds[P].Arity == 2 &&
        Abs.Families[Vocab.Preds[P].Family].VarTypes[0] == "Iterator")
      Mutx = static_cast<int>(P);
  ASSERT_GE(Mutx, 0);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  unsigned C = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.setUnary(IterType, C, Kleene::True);
  S.setBinary(Mutx, A, C, Kleene::True);
  S.setBinary(Mutx, B, C, Kleene::False);
  S.blur(Vocab);
  // A, B, C merge into one summary node; mutx joins 1 and 0 to 1/2.
  ASSERT_EQ(S.numNodes(), 1u);
  EXPECT_EQ(S.binary(Mutx, 0, 0), Kleene::Half);
}

TEST_F(StructureTest, CanonicalStrIsStableUnderNodeOrder) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");

  Structure S1(Vocab);
  unsigned A1 = S1.addNode();
  unsigned B1 = S1.addNode();
  S1.setUnary(IterType, A1, Kleene::True);
  S1.setUnary(IterType, B1, Kleene::True);
  S1.setUnary(PtI, A1, Kleene::True);

  Structure S2(Vocab);
  unsigned A2 = S2.addNode();
  unsigned B2 = S2.addNode();
  S2.setUnary(IterType, A2, Kleene::True);
  S2.setUnary(IterType, B2, Kleene::True);
  S2.setUnary(PtI, B2, Kleene::True); // Same shape, different node order.

  S1.blur(Vocab);
  S2.blur(Vocab);
  EXPECT_EQ(S1.canonicalStr(Vocab), S2.canonicalStr(Vocab));
}

TEST_F(StructureTest, JoinUnionsUniversesByKey) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");
  int PtJ = Vocab.findVarPred("j");

  Structure S1(Vocab);
  unsigned A = S1.addNode();
  S1.setUnary(IterType, A, Kleene::True);
  S1.setUnary(PtI, A, Kleene::True);
  S1.blur(Vocab);

  Structure S2(Vocab);
  unsigned B = S2.addNode();
  S2.setUnary(IterType, B, Kleene::True);
  S2.setUnary(PtJ, B, Kleene::True);
  S2.blur(Vocab);

  EXPECT_TRUE(S1.joinWith(S2, Vocab));
  EXPECT_EQ(S1.numNodes(), 2u);
  // Joining again changes nothing (idempotent).
  EXPECT_FALSE(S1.joinWith(S2, Vocab));
}

// Regression: points-to smoothing (True -> Half on a var predicate
// definite at two individuals) changes canonical keys, and two nodes
// can coincide on every abstraction predicate afterwards. joinWith must
// re-blur so the result is canonical, instead of leaving duplicate-key
// nodes behind a stale identity.
TEST_F(StructureTest, JoinReblursWhenSmoothingCollapsesKeys) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");
  int PtJ = Vocab.findVarPred("j");

  // S1: one iterator X definitely pointed to by i.
  Structure S1(Vocab);
  unsigned X = S1.addNode();
  S1.setUnary(IterType, X, Kleene::True);
  S1.setUnary(PtI, X, Kleene::True);
  S1.blur(Vocab);

  // S2: Z definitely pointed to by both i and j, and W maybe pointed to
  // by i. After the universe union i is definite at X and Z, so
  // smoothing turns both to 1/2 — and X's key collapses onto W's.
  Structure S2(Vocab);
  unsigned Z = S2.addNode();
  unsigned W = S2.addNode();
  S2.setUnary(IterType, Z, Kleene::True);
  S2.setUnary(PtI, Z, Kleene::True);
  S2.setUnary(PtJ, Z, Kleene::True);
  S2.setUnary(IterType, W, Kleene::True);
  S2.setUnary(PtI, W, Kleene::Half);
  S2.blur(Vocab);

  EXPECT_TRUE(S1.joinWith(S2, Vocab));
  EXPECT_TRUE(S1.isCanonical(Vocab));
  // X and W became indistinguishable and must have merged into one
  // summary node; Z (also pointed to by j) stays distinct.
  ASSERT_EQ(S1.numNodes(), 2u);
  unsigned Merged = S1.unary(PtJ, 0) == Kleene::False ? 0 : 1;
  EXPECT_TRUE(S1.isSummary(Merged));
  EXPECT_EQ(S1.unary(PtI, Merged), Kleene::Half);
}

// Regression: a receiver with duplicate canonical keys (not yet
// re-blurred) used to have all but one of the duplicates silently
// dropped from the key-to-node map, losing their bindings. joinWith
// now blurs such inputs first.
TEST_F(StructureTest, JoinBlursDuplicateKeyReceiverInsteadOfDropping) {
  int IterType = Vocab.findTypePred("Iterator");
  int Mutx = -1;
  for (size_t P = 0; P != Vocab.Preds.size(); ++P)
    if (Vocab.Preds[P].K == tvp::Pred::Kind::Instr &&
        Vocab.Preds[P].Arity == 2 &&
        Abs.Families[Vocab.Preds[P].Family].VarTypes[0] == "Iterator")
      Mutx = static_cast<int>(P);
  ASSERT_GE(Mutx, 0);

  // Two same-key iterator nodes, only one carrying a definite binary
  // binding: dropping either node loses information.
  Structure S(Vocab);
  unsigned A = S.addNode();
  unsigned B = S.addNode();
  S.setUnary(IterType, A, Kleene::True);
  S.setUnary(IterType, B, Kleene::True);
  S.setBinary(Mutx, A, A, Kleene::True);

  Structure Empty(Vocab);
  S.joinWith(Empty, Vocab);
  EXPECT_TRUE(S.isCanonical(Vocab));
  // A and B merged into one summary node; the half-true binding
  // survives as 1/2 (True at (A,A) joined with False elsewhere).
  ASSERT_EQ(S.numNodes(), 1u);
  EXPECT_TRUE(S.isSummary(0));
  EXPECT_EQ(S.binary(Mutx, 0, 0), Kleene::Half);
}

// Same hole on the argument side: a duplicate-key argument must
// contribute all of its nodes' information, not just the map winner's.
TEST_F(StructureTest, JoinBlursDuplicateKeyArgument) {
  int IterType = Vocab.findTypePred("Iterator");

  Structure S(Vocab);
  unsigned X = S.addNode();
  S.setUnary(IterType, X, Kleene::True);
  S.blur(Vocab);

  Structure O(Vocab);
  unsigned A = O.addNode();
  unsigned B = O.addNode();
  O.setUnary(IterType, A, Kleene::True);
  O.setUnary(IterType, B, Kleene::True);
  // Deliberately not blurred: duplicate keys.

  Structure OBefore = O;
  EXPECT_TRUE(S.joinWith(O, Vocab));
  EXPECT_TRUE(S.isCanonical(Vocab));
  ASSERT_EQ(S.numNodes(), 1u);
  // The argument's duplicate nodes represent >= 2 individuals, so the
  // joined node must be a summary.
  EXPECT_TRUE(S.isSummary(0));
  // The argument itself is untouched (joinWith copies before blurring).
  EXPECT_EQ(O.numNodes(), OBefore.numNodes());
}

// The relational engine identifies canonical structures by raw
// structural hash + equality; both must agree with the canonicalStr
// reference identity on blurred structures.
TEST_F(StructureTest, StructuralHashAgreesWithCanonicalStr) {
  int IterType = Vocab.findTypePred("Iterator");
  int PtI = Vocab.findVarPred("i");

  Structure S1(Vocab);
  unsigned A1 = S1.addNode();
  unsigned B1 = S1.addNode();
  S1.setUnary(IterType, A1, Kleene::True);
  S1.setUnary(IterType, B1, Kleene::True);
  S1.setUnary(PtI, A1, Kleene::True);

  Structure S2(Vocab);
  unsigned A2 = S2.addNode();
  unsigned B2 = S2.addNode();
  S2.setUnary(IterType, A2, Kleene::True);
  S2.setUnary(IterType, B2, Kleene::True);
  S2.setUnary(PtI, B2, Kleene::True); // Same shape, different node order.

  S1.blur(Vocab);
  S2.blur(Vocab);
  ASSERT_EQ(S1.canonicalStr(Vocab), S2.canonicalStr(Vocab));
  EXPECT_TRUE(S1 == S2);
  EXPECT_EQ(S1.structuralHash(), S2.structuralHash());

  // Any semantic difference shows up in all three identities.
  S2.setSummary(0, true);
  EXPECT_NE(S1.canonicalStr(Vocab), S2.canonicalStr(Vocab));
  EXPECT_FALSE(S1 == S2);
  EXPECT_NE(S1.structuralHash(), S2.structuralHash());
}

} // namespace
