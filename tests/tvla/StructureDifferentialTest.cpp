//===----------------------------------------------------------------------===//
// Differential tests for the packed 2-bit Structure representation:
// the same operation sequences are replayed against a map-based
// reference model (the shape of the representation the packed layout
// replaced) and against both memory backends (heap words and
// support::Arena scratch words), asserting every observable read,
// canonical rendering, and structural hash agrees. The arena-detach
// test doubles as an ASan use-after-reset regression: a copy that kept
// pointing into arena words would read recycled memory here.
//===----------------------------------------------------------------------===//

#include "tvla/Structure.h"

#include "client/Parser.h"
#include "easl/Builtins.h"
#include "support/Arena.h"

#include <gtest/gtest.h>
#include <map>
#include <random>

using namespace canvas;
using namespace canvas::tvla;

namespace {

/// The map-based reference model: one entry per (pred, tuple), exactly
/// the old per-structure map representation. Unset entries read False,
/// matching Structure's all-zero initialization.
struct RefModel {
  unsigned NumNodes = 0;
  std::vector<bool> Summary;
  std::map<std::pair<int, unsigned>, Kleene> Unary;
  std::map<std::tuple<int, unsigned, unsigned>, Kleene> Binary;

  unsigned addNode() {
    Summary.push_back(false);
    return NumNodes++;
  }
  Kleene unary(int P, unsigned N) const {
    auto It = Unary.find({P, N});
    return It == Unary.end() ? Kleene::False : It->second;
  }
  Kleene binary(int P, unsigned A, unsigned B) const {
    auto It = Binary.find({P, A, B});
    return It == Binary.end() ? Kleene::False : It->second;
  }
};

class StructureDifferentialTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
    DiagnosticEngine Diags;
    Abs = wp::deriveAbstraction(Spec, Diags);
    Prog = cj::parseProgram(R"(
      class M {
        void main() {
          Set v = new Set();
          Set w = new Set();
          Iterator i = v.iterator();
          Iterator j = w.iterator();
        }
      }
    )", Diags);
    CFG = cj::buildCFG(Prog, Spec, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    Vocab = tvp::buildVocabulary(Abs, *CFG.mainCFG(), Diags);
  }

  /// Replays \p Ops pseudo-random predicate writes into \p S and the
  /// reference model, then checks every entry of every predicate.
  void replayAndCompare(Structure &S, unsigned Seed, unsigned Nodes,
                        unsigned Ops) {
    RefModel Ref;
    for (unsigned I = 0; I != Nodes; ++I) {
      S.addNode();
      Ref.addNode();
    }
    std::mt19937 Rng(Seed);
    const Kleene Vals[] = {Kleene::False, Kleene::True, Kleene::Half};
    const int NumPreds = static_cast<int>(Vocab.Preds.size());
    for (unsigned Op = 0; Op != Ops; ++Op) {
      const int P = static_cast<int>(Rng() % NumPreds);
      const Kleene V = Vals[Rng() % 3];
      const unsigned A = Rng() % Nodes;
      if (Vocab.Preds[P].Arity == 1) {
        S.setUnary(P, A, V);
        Ref.Unary[{P, A}] = V;
      } else {
        const unsigned B = Rng() % Nodes;
        S.setBinary(P, A, B, V);
        Ref.Binary[{P, A, B}] = V;
      }
      if (Op % 7 == 0) {
        const bool Sum = Rng() & 1;
        S.setSummary(A, Sum);
        Ref.Summary[A] = Sum;
      }
    }
    ASSERT_EQ(S.numNodes(), Ref.NumNodes);
    for (unsigned N = 0; N != Nodes; ++N)
      EXPECT_EQ(S.isSummary(N), Ref.Summary[N]) << "summary node " << N;
    for (int P = 0; P != NumPreds; ++P)
      for (unsigned A = 0; A != Nodes; ++A) {
        if (Vocab.Preds[P].Arity == 1) {
          EXPECT_EQ(S.unary(P, A), Ref.unary(P, A)) << "pred " << P;
        } else {
          for (unsigned B = 0; B != Nodes; ++B)
            EXPECT_EQ(S.binary(P, A, B), Ref.binary(P, A, B)) << "pred " << P;
        }
      }
  }

  /// A deterministic pseudo-random structure for backend comparisons.
  void fill(Structure &S, unsigned Seed, unsigned Nodes) {
    S.resizeNodes(Nodes);
    std::mt19937 Rng(Seed);
    const Kleene Vals[] = {Kleene::False, Kleene::True, Kleene::Half};
    const int NumPreds = static_cast<int>(Vocab.Preds.size());
    for (int P = 0; P != NumPreds; ++P)
      for (unsigned A = 0; A != Nodes; ++A) {
        if (Vocab.Preds[P].Arity == 1)
          S.setUnary(P, A, Vals[Rng() % 3]);
        else
          for (unsigned B = 0; B != Nodes; ++B)
            S.setBinary(P, A, B, Vals[Rng() % 3]);
      }
  }

  easl::Spec Spec;
  wp::DerivedAbstraction Abs;
  cj::Program Prog;
  cj::ClientCFG CFG;
  tvp::Vocabulary Vocab;
};

TEST_F(StructureDifferentialTest, HeapBackendMatchesMapReference) {
  for (unsigned Seed : {1u, 2u, 3u, 4u}) {
    Structure S(Vocab);
    replayAndCompare(S, Seed, /*Nodes=*/5, /*Ops=*/400);
  }
}

TEST_F(StructureDifferentialTest, ArenaBackendMatchesMapReference) {
  support::Arena Scratch;
  for (unsigned Seed : {1u, 2u, 3u, 4u}) {
    Scratch.reset();
    Structure S(Vocab, Scratch);
    replayAndCompare(S, Seed, /*Nodes=*/5, /*Ops=*/400);
  }
}

TEST_F(StructureDifferentialTest, BackendsAgreeAfterBlurAndJoin) {
  support::Arena Scratch;
  for (unsigned Seed = 10; Seed != 16; ++Seed) {
    Structure Heap(Vocab);
    Structure InArena(Vocab, Scratch);
    fill(Heap, Seed, 4);
    fill(InArena, Seed, 4);

    Heap.blur(Vocab);
    InArena.blur(Vocab);
    EXPECT_EQ(Heap.canonicalStr(Vocab), InArena.canonicalStr(Vocab));
    EXPECT_EQ(Heap.structuralHash(), InArena.structuralHash());
    EXPECT_TRUE(Heap == InArena);

    // Join each with a second structure, on both backends.
    Structure OtherH(Vocab);
    Structure OtherA(Vocab, Scratch);
    fill(OtherH, Seed + 100, 3);
    fill(OtherA, Seed + 100, 3);
    OtherH.blur(Vocab);
    OtherA.blur(Vocab);
    const bool ChangedH = Heap.joinWith(OtherH, Vocab);
    const bool ChangedA = InArena.joinWith(OtherA, Vocab);
    EXPECT_EQ(ChangedH, ChangedA);
    EXPECT_EQ(Heap.canonicalStr(Vocab), InArena.canonicalStr(Vocab));
    EXPECT_EQ(Heap.structuralHash(), InArena.structuralHash());
  }
}

TEST_F(StructureDifferentialTest, CopyDetachesFromArenaBeforeReset) {
  support::Arena Scratch;
  Structure S(Vocab, Scratch);
  fill(S, 42, 4);
  S.blur(Vocab);
  const std::string Before = S.canonicalStr(Vocab);
  const uint64_t HashBefore = S.structuralHash();

  Structure Kept(S); // Plain copy: must own heap words.
  Scratch.reset();
  // Stomp the recycled arena memory with unrelated scratch structures.
  for (int I = 0; I != 8; ++I) {
    Structure Garbage(Vocab, Scratch);
    fill(Garbage, 1000 + I, 5);
  }
  EXPECT_EQ(Kept.canonicalStr(Vocab), Before);
  EXPECT_EQ(Kept.structuralHash(), HashBefore);

  // Assignment into a heap structure detaches the same way.
  Structure Assigned(Vocab);
  {
    Structure S2(Vocab, Scratch);
    fill(S2, 42, 4);
    S2.blur(Vocab);
    Assigned = S2;
  }
  Scratch.reset();
  for (int I = 0; I != 8; ++I) {
    Structure Garbage(Vocab, Scratch);
    fill(Garbage, 2000 + I, 5);
  }
  EXPECT_EQ(Assigned.canonicalStr(Vocab), Before);
  EXPECT_EQ(Assigned.structuralHash(), HashBefore);
}

} // namespace
