//===----------------------------------------------------------------------===//
// Tests for the generic IFDS tabulation solver and witness
// reconstruction over small synthetic exploded problems (no boolean
// programs involved): reachability, call/return matching precision,
// genuine-entry gating, recursion termination, and shortest-trace
// shape.
//===----------------------------------------------------------------------===//

#include "ifds/Solver.h"
#include "ifds/Witness.h"

#include <gtest/gtest.h>

#include <map>

using namespace canvas;
using namespace canvas::ifds;

namespace {

/// A table-driven problem: per-proc edge flow tables, identity
/// call/return translation (fact f in the caller corresponds to fact f
/// in the callee), Lambda-only call-to-return bypass.
class TableProblem : public Problem {
public:
  struct Proc {
    ProcView View;
    /// Normal[edge][fact] -> facts; a missing fact maps to {} (kill).
    std::vector<std::map<int, std::vector<int>>> Normal;
  };

  std::vector<Proc> Ps;
  int Entry = 0;
  int NFacts = 2;

  int numProcs() const override { return static_cast<int>(Ps.size()); }
  const ProcView &proc(int P) const override { return Ps[P].View; }
  int entryProc() const override { return Entry; }
  int numFacts(int) const override { return NFacts; }

  void initialFacts(std::vector<int> &Out) const override {
    Out.push_back(LambdaFact);
  }

  void flowNormal(int P, int Edge, int Fact,
                  std::vector<int> &Out) const override {
    const auto &Table = Ps[P].Normal[Edge];
    auto It = Table.find(Fact);
    if (It != Table.end())
      Out = It->second;
  }

  void flowCall(int, int, int Fact, std::vector<int> &Out) const override {
    Out.push_back(Fact); // Identity renaming.
  }

  void flowCallToReturn(int, int, int Fact,
                        std::vector<int> &Out) const override {
    if (Fact == LambdaFact)
      Out.push_back(LambdaFact);
  }

  void flowSummary(int, int, int Fact, int CalleeEntryFact,
                   int CalleeExitFact, std::vector<int> &Out) const override {
    // Identity translation both ways: the summary applies when the
    // caller holds exactly the fact the callee was entered with.
    if (Fact == CalleeEntryFact)
      Out.push_back(CalleeExitFact);
  }
};

/// Identity edge: Lambda -> Lambda, f -> f for all facts < NFacts.
std::map<int, std::vector<int>> identity(int NFacts) {
  std::map<int, std::vector<int>> T;
  for (int F = 0; F != NFacts; ++F)
    T[F] = {F};
  return T;
}

TEST(IFDSSolverTest, IntraproceduralGenAndKill) {
  TableProblem Prob;
  TableProblem::Proc P;
  P.View.Entry = 0;
  P.View.Exit = 3;
  P.View.NumNodes = 4;
  P.View.Edges = {{0, 1, -1}, {1, 2, -1}, {2, 3, -1}};
  P.Normal.resize(3, identity(2));
  P.Normal[0][0] = {0, 1}; // gen f from Lambda
  P.Normal[2][1] = {};     // kill f
  Prob.Ps.push_back(P);

  Solver S(Prob);
  S.solve();
  EXPECT_TRUE(S.reached(0, 1, 1));
  EXPECT_TRUE(S.reached(0, 2, 1));
  EXPECT_FALSE(S.reached(0, 3, 1));
  EXPECT_TRUE(S.reached(0, 3, 0));
  EXPECT_GT(S.stats().ExplodedNodes, 0u);
}

/// Two calls to the same callee with a kill between them: a
/// call/return-mismatched path would smuggle the fact past the kill.
TEST(IFDSSolverTest, CallReturnMatchingIsExact) {
  TableProblem Prob;
  TableProblem::Proc Main;
  Main.View.Entry = 0;
  Main.View.Exit = 4;
  Main.View.NumNodes = 5;
  Main.View.Edges = {
      {0, 1, -1}, // gen f
      {1, 2, 1},  // call p
      {2, 3, -1}, // kill f
      {3, 4, 1},  // call p
  };
  Main.Normal.resize(4, identity(2));
  Main.Normal[0][0] = {0, 1};
  Main.Normal[2][1] = {};
  Prob.Ps.push_back(Main);

  TableProblem::Proc Callee;
  Callee.View.Entry = 0;
  Callee.View.Exit = 1;
  Callee.View.NumNodes = 2;
  Callee.View.Edges = {{0, 1, -1}};
  Callee.Normal.resize(1, identity(2));
  Prob.Ps.push_back(Callee);

  Solver S(Prob);
  S.solve();
  EXPECT_TRUE(S.reached(0, 2, 1));  // survives the first call
  EXPECT_FALSE(S.reached(0, 3, 1)); // killed
  EXPECT_FALSE(S.reached(0, 4, 1)); // must NOT resurface via the callee
  EXPECT_TRUE(S.reached(0, 4, 0));
}

/// The solver tabulates every callee entry fact for summary reuse, but
/// reached() only reports facts fed by a genuine calling context.
TEST(IFDSSolverTest, GenuineEntryGating) {
  TableProblem Prob;
  TableProblem::Proc Main;
  Main.View.Entry = 0;
  Main.View.Exit = 1;
  Main.View.NumNodes = 2;
  Main.View.Edges = {{0, 1, 1}}; // call p; f never holds in main
  Main.Normal.resize(1, identity(2));
  Prob.Ps.push_back(Main);

  TableProblem::Proc Callee;
  Callee.View.Entry = 0;
  Callee.View.Exit = 1;
  Callee.View.NumNodes = 2;
  Callee.View.Edges = {{0, 1, -1}};
  Callee.Normal.resize(1, identity(2));
  Prob.Ps.push_back(Callee);

  Solver S(Prob);
  S.solve();
  EXPECT_TRUE(S.genuineEntry(1, 0));
  EXPECT_FALSE(S.genuineEntry(1, 1));
  // The (entry f -> exit f) summary exists for reuse, but f is not
  // genuinely reachable in the callee.
  EXPECT_NE(S.findPathEdge(1, 1, 1, 1), -1);
  EXPECT_FALSE(S.reached(1, 1, 1));
  EXPECT_TRUE(S.reached(1, 1, 0));
}

TEST(IFDSSolverTest, RecursionTerminates) {
  TableProblem Prob;
  TableProblem::Proc Main;
  Main.View.Entry = 0;
  Main.View.Exit = 1;
  Main.View.NumNodes = 2;
  Main.View.Edges = {{0, 1, 1}};
  Main.Normal.resize(1, identity(2));
  Prob.Ps.push_back(Main);

  TableProblem::Proc Rec;
  Rec.View.Entry = 0;
  Rec.View.Exit = 1;
  Rec.View.NumNodes = 2;
  Rec.View.Edges = {
      {0, 1, 1},  // recurse
      {0, 1, -1}, // base case: gen f
  };
  Rec.Normal.resize(2, identity(2));
  Rec.Normal[1][0] = {0, 1};
  Prob.Ps.push_back(Rec);

  Solver S(Prob);
  S.solve();
  EXPECT_TRUE(S.reached(1, 1, 1)); // f at the callee exit
  EXPECT_TRUE(S.reached(0, 1, 1)); // flows back out to main
}

TEST(IFDSSolverTest, WitnessIsShortestPath) {
  TableProblem Prob;
  TableProblem::Proc P;
  P.View.Entry = 0;
  P.View.Exit = 3;
  P.View.NumNodes = 4;
  P.View.Edges = {{0, 1, -1}, {1, 2, -1}, {2, 3, -1}};
  P.Normal.resize(3, identity(2));
  P.Normal[0][0] = {0, 1}; // early gen
  P.Normal[1][0] = {0, 1}; // late gen (same target node 2)
  Prob.Ps.push_back(P);

  Solver S(Prob);
  S.solve();
  WitnessBuilder WB(S);
  std::vector<TraceStep> Steps;
  int Seed = -1;
  ASSERT_TRUE(WB.reconstruct(0, 2, 1, Steps, Seed));
  EXPECT_EQ(Seed, LambdaFact);
  // Shortest realization: two edges, 0->1 then 1->2, ending in f.
  ASSERT_EQ(Steps.size(), 2u);
  EXPECT_EQ(Steps[0].CFGEdge, 0);
  EXPECT_EQ(Steps[1].CFGEdge, 1);
  EXPECT_EQ(Steps[1].Fact, 1);
  for (const TraceStep &T : Steps)
    EXPECT_EQ(T.K, TraceStep::Kind::Step);
}

TEST(IFDSSolverTest, InterproceduralWitnessHasMatchedCallReturn) {
  TableProblem Prob;
  TableProblem::Proc Main;
  Main.View.Entry = 0;
  Main.View.Exit = 2;
  Main.View.NumNodes = 3;
  Main.View.Edges = {{0, 1, 1}, {1, 2, -1}};
  Main.Normal.resize(2, identity(2));
  Prob.Ps.push_back(Main);

  TableProblem::Proc Gen;
  Gen.View.Entry = 0;
  Gen.View.Exit = 1;
  Gen.View.NumNodes = 2;
  Gen.View.Edges = {{0, 1, -1}};
  Gen.Normal.resize(1, identity(2));
  Gen.Normal[0][0] = {0, 1}; // the callee gens f
  Prob.Ps.push_back(Gen);

  Solver S(Prob);
  S.solve();
  ASSERT_TRUE(S.reached(0, 1, 1)); // f holds after the call returns

  WitnessBuilder WB(S);
  std::vector<TraceStep> Steps;
  int Seed = -1;
  ASSERT_TRUE(WB.reconstruct(0, 1, 1, Steps, Seed));
  ASSERT_EQ(Steps.size(), 3u);
  EXPECT_EQ(Steps[0].K, TraceStep::Kind::Call);
  EXPECT_EQ(Steps[0].Callee, 1);
  EXPECT_EQ(Steps[1].K, TraceStep::Kind::Step);
  EXPECT_EQ(Steps[1].Proc, 1);
  EXPECT_EQ(Steps[1].Fact, 1);
  EXPECT_EQ(Steps[2].K, TraceStep::Kind::Return);
  EXPECT_EQ(Steps[2].Proc, 0);
  EXPECT_EQ(Steps[2].CFGEdge, Steps[0].CFGEdge);
  EXPECT_EQ(Steps[2].Fact, 1);
}

} // namespace
