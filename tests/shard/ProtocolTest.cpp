//===----------------------------------------------------------------------===//
// The pipe protocol: framing round-trips over a real pipe, CRC and
// truncation corruption is rejected as a torn frame, and a closed pipe
// with zero pending bytes is a clean EOF — the distinction the driver's
// crash/requeue logic keys on.
//===----------------------------------------------------------------------===//

#include "shard/Protocol.h"

#include <gtest/gtest.h>

#include <unistd.h>

using namespace canvas;
using namespace canvas::shard;

namespace {

struct Pipe {
  int Fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(Fds), 0); }
  ~Pipe() {
    closeRead();
    closeWrite();
  }
  int readFd() const { return Fds[0]; }
  int writeFd() const { return Fds[1]; }
  void closeRead() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    Fds[0] = -1;
  }
  void closeWrite() {
    if (Fds[1] >= 0)
      ::close(Fds[1]);
    Fds[1] = -1;
  }
};

TaskMsg sampleTask() {
  TaskMsg T;
  T.Index = 7;
  T.Name = "gen-0007";
  T.Source = "class G { void main() { Set s = new Set(); } }\n";
  T.Retry = 1;
  return T;
}

ResultMsg sampleResult() {
  ResultMsg R;
  R.Index = 7;
  R.Name = "gen-0007";
  R.ReportText = "G::main 1:1: check: verified\n1 check(s)\n";
  R.DiagText = "warning: something\n";
  R.ParseFailed = 0;
  R.Degraded = 1;
  R.Checks = 3;
  R.Flagged = 1;
  R.WorkerPid = 4242;
  R.Micros = 123456789ull;
  R.StoreHits = 2;
  R.StoreMisses = 1;
  R.StoreRejected = 0;
  R.StoreQuarantined = 0;
  R.StoreWrites = 1;
  R.Methods.push_back({"G::main", 2, 1});
  R.Methods.push_back({"G::helper", 1, 0});
  return R;
}

/// Reads all bytes until EOF (test-side raw capture for corruption).
std::vector<uint8_t> drain(int Fd) {
  std::vector<uint8_t> Out;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      return Out;
    Out.insert(Out.end(), Buf, Buf + N);
  }
}

bool writeRaw(int Fd, const std::vector<uint8_t> &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

TEST(ShardProtocolTest, TaskRoundTripsOverPipe) {
  const TaskMsg T = sampleTask();
  Pipe P;
  ASSERT_TRUE(writeFrame(P.writeFd(), MsgType::Task, encodeTask(T)));
  P.closeWrite();

  MsgType Type;
  std::vector<uint8_t> Payload;
  bool AtEof = false;
  std::string Error;
  ASSERT_TRUE(readFrame(P.readFd(), Type, Payload, AtEof, Error)) << Error;
  EXPECT_EQ(Type, MsgType::Task);
  TaskMsg Got;
  ASSERT_TRUE(decodeTask(Payload, Got, Error)) << Error;
  EXPECT_EQ(Got.Index, T.Index);
  EXPECT_EQ(Got.Name, T.Name);
  EXPECT_EQ(Got.Source, T.Source);
  EXPECT_EQ(Got.Retry, T.Retry);

  // The stream is now at a clean EOF.
  EXPECT_FALSE(readFrame(P.readFd(), Type, Payload, AtEof, Error));
  EXPECT_TRUE(AtEof);
}

TEST(ShardProtocolTest, ResultRoundTripsWithEveryField) {
  const ResultMsg R = sampleResult();
  Pipe P;
  ASSERT_TRUE(writeFrame(P.writeFd(), MsgType::Result, encodeResult(R)));
  P.closeWrite();

  MsgType Type;
  std::vector<uint8_t> Payload;
  bool AtEof = false;
  std::string Error;
  ASSERT_TRUE(readFrame(P.readFd(), Type, Payload, AtEof, Error)) << Error;
  EXPECT_EQ(Type, MsgType::Result);
  ResultMsg Got;
  ASSERT_TRUE(decodeResult(Payload, Got, Error)) << Error;
  EXPECT_EQ(Got.Index, R.Index);
  EXPECT_EQ(Got.Name, R.Name);
  EXPECT_EQ(Got.ReportText, R.ReportText);
  EXPECT_EQ(Got.DiagText, R.DiagText);
  EXPECT_EQ(Got.ParseFailed, R.ParseFailed);
  EXPECT_EQ(Got.Degraded, R.Degraded);
  EXPECT_EQ(Got.Checks, R.Checks);
  EXPECT_EQ(Got.Flagged, R.Flagged);
  EXPECT_EQ(Got.WorkerPid, R.WorkerPid);
  EXPECT_EQ(Got.Micros, R.Micros);
  EXPECT_EQ(Got.StoreHits, R.StoreHits);
  EXPECT_EQ(Got.StoreWrites, R.StoreWrites);
  ASSERT_EQ(Got.Methods.size(), R.Methods.size());
  for (size_t I = 0; I != R.Methods.size(); ++I) {
    EXPECT_EQ(Got.Methods[I].Method, R.Methods[I].Method);
    EXPECT_EQ(Got.Methods[I].Checks, R.Methods[I].Checks);
    EXPECT_EQ(Got.Methods[I].Flagged, R.Methods[I].Flagged);
  }
}

TEST(ShardProtocolTest, CorruptedPayloadFailsCrcNotEof) {
  Pipe Cap;
  ASSERT_TRUE(writeFrame(Cap.writeFd(), MsgType::Task,
                         encodeTask(sampleTask())));
  Cap.closeWrite();
  std::vector<uint8_t> Raw = drain(Cap.readFd());
  ASSERT_FALSE(Raw.empty());
  Raw.back() ^= 0xFF; // Flip a payload byte; the header stays intact.

  Pipe P;
  ASSERT_TRUE(writeRaw(P.writeFd(), Raw));
  P.closeWrite();
  MsgType Type;
  std::vector<uint8_t> Payload;
  bool AtEof = false;
  std::string Error;
  EXPECT_FALSE(readFrame(P.readFd(), Type, Payload, AtEof, Error));
  EXPECT_FALSE(AtEof);
  EXPECT_NE(Error.find("CRC"), std::string::npos) << Error;
}

TEST(ShardProtocolTest, CorruptedMagicRejected) {
  Pipe Cap;
  ASSERT_TRUE(writeFrame(Cap.writeFd(), MsgType::Task,
                         encodeTask(sampleTask())));
  Cap.closeWrite();
  std::vector<uint8_t> Raw = drain(Cap.readFd());
  Raw[0] ^= 0xFF;

  Pipe P;
  ASSERT_TRUE(writeRaw(P.writeFd(), Raw));
  P.closeWrite();
  MsgType Type;
  std::vector<uint8_t> Payload;
  bool AtEof = false;
  std::string Error;
  EXPECT_FALSE(readFrame(P.readFd(), Type, Payload, AtEof, Error));
  EXPECT_FALSE(AtEof);
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(ShardProtocolTest, TruncationIsTornFrameNotCleanEof) {
  Pipe Cap;
  ASSERT_TRUE(writeFrame(Cap.writeFd(), MsgType::Task,
                         encodeTask(sampleTask())));
  Cap.closeWrite();
  std::vector<uint8_t> Raw = drain(Cap.readFd());

  // Truncate inside the header and inside the payload: both must be
  // torn frames (the driver treats them as a worker crash), never EOF.
  for (size_t Keep : {size_t(1), size_t(9), Raw.size() - 3}) {
    Pipe P;
    ASSERT_TRUE(writeRaw(
        P.writeFd(), std::vector<uint8_t>(Raw.begin(), Raw.begin() + Keep)));
    P.closeWrite();
    MsgType Type;
    std::vector<uint8_t> Payload;
    bool AtEof = false;
    std::string Error;
    EXPECT_FALSE(readFrame(P.readFd(), Type, Payload, AtEof, Error));
    EXPECT_FALSE(AtEof) << "keep=" << Keep;
    EXPECT_FALSE(Error.empty()) << "keep=" << Keep;
  }
}

TEST(ShardProtocolTest, MalformedPayloadRejectedByDecoder) {
  std::vector<uint8_t> Payload = encodeTask(sampleTask());
  Payload.push_back(0); // Trailing garbage: Reader::done() must refuse.
  TaskMsg T;
  std::string Error;
  EXPECT_FALSE(decodeTask(Payload, T, Error));

  std::vector<uint8_t> Short = encodeResult(sampleResult());
  Short.resize(Short.size() / 2);
  ResultMsg R;
  EXPECT_FALSE(decodeResult(Short, R, Error));
}

} // namespace
