//===----------------------------------------------------------------------===//
// The tentpole contract: the merged report of a sharded run is
// byte-identical to the serial run at EVERY shard count; a worker
// killed mid-shard has its task requeued exactly once and the report is
// still identical; a client whose worker dies twice is marked degraded
// in place — never silently dropped. Workers are real processes (this
// test binary re-executed with --worker; see ShardTestMain.cpp).
//===----------------------------------------------------------------------===//

#include "easl/Builtins.h"
#include "easl/Parser.h"
#include "shard/Corpus.h"
#include "shard/Driver.h"
#include "support/Subprocess.h"
#include "wp/Abstraction.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include <unistd.h>

using namespace canvas;
using namespace canvas::shard;

namespace fs = std::filesystem;

namespace {

class ShardDeterminismTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "/shard-det-" +
          std::to_string(static_cast<long>(::getpid()));
    fs::remove_all(Dir);
    std::string Error;
    ASSERT_TRUE(generateCorpus(Dir + "/corpus", 12, 5, Error)) << Error;
    ASSERT_TRUE(loadCorpus(Dir + "/corpus", Corpus, Error)) << Error;

    DiagnosticEngine Diags;
    easl::Spec S = easl::parseSpec(easl::cmpSpecSource(), Diags);
    ASSERT_TRUE(easl::checkSpec(S, Diags)) << Diags.str();
    wp::DerivedAbstraction Abs = wp::deriveAbstraction(S, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    estimateCosts(Corpus, S, Abs);

    Opts.WorkerExe = support::selfExecutablePath();
    ASSERT_FALSE(Opts.WorkerExe.empty());
    Opts.Stream = true;
  }
  void TearDown() override { fs::remove_all(Dir); }

  std::string Dir;
  std::vector<CorpusClient> Corpus;
  DriverOptions Opts;
};

TEST_F(ShardDeterminismTest, CostEstimatesSpreadTheCorpus) {
  std::set<uint64_t> Distinct;
  for (const CorpusClient &C : Corpus) {
    EXPECT_GE(C.Cost, 1u);
    Distinct.insert(C.Cost);
  }
  // The generator spans sizes; identical costs across the board would
  // make the largest-first schedule meaningless.
  EXPECT_GT(Distinct.size(), 3u);
}

TEST_F(ShardDeterminismTest, CorpusGenerationIsDeterministicInTheSeed) {
  std::string Error;
  ASSERT_TRUE(generateCorpus(Dir + "/again", 12, 5, Error)) << Error;
  std::vector<CorpusClient> Again;
  ASSERT_TRUE(loadCorpus(Dir + "/again", Again, Error)) << Error;
  ASSERT_EQ(Again.size(), Corpus.size());
  for (size_t I = 0; I != Corpus.size(); ++I) {
    EXPECT_EQ(Again[I].Name, Corpus[I].Name);
    EXPECT_EQ(Again[I].Source, Corpus[I].Source);
  }
  ASSERT_TRUE(generateCorpus(Dir + "/other", 12, 6, Error)) << Error;
  std::vector<CorpusClient> Other;
  ASSERT_TRUE(loadCorpus(Dir + "/other", Other, Error)) << Error;
  bool AnyDiffers = false;
  for (size_t I = 0; I != Corpus.size(); ++I)
    AnyDiffers |= Other[I].Source != Corpus[I].Source;
  EXPECT_TRUE(AnyDiffers);
}

TEST_F(ShardDeterminismTest, MergedReportByteIdenticalAtEveryShardCount) {
  std::ostringstream SerialMerged, SerialStream;
  ShardRunStats SerialStats;
  std::string Error;
  ASSERT_TRUE(runSerial(Corpus, Opts, SerialMerged, SerialStream, SerialStats,
                        Error))
      << Error;
  const std::string Reference = SerialMerged.str();
  ASSERT_FALSE(Reference.empty());
  // Every client owns a section, in corpus order.
  size_t Pos = 0;
  for (const CorpusClient &C : Corpus) {
    Pos = Reference.find("=== " + C.Name + " ===\n", Pos);
    ASSERT_NE(Pos, std::string::npos) << C.Name;
  }

  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    DriverOptions O = Opts;
    O.Shards = Shards;
    std::ostringstream Merged, Stream;
    ShardRunStats Stats;
    ASSERT_TRUE(runSharded(Corpus, O, Merged, Stream, Stats, Error))
        << "shards=" << Shards << ": " << Error;
    EXPECT_EQ(Merged.str(), Reference) << "shards=" << Shards;
    EXPECT_EQ(Stats.Clients, Corpus.size());
    EXPECT_EQ(Stats.Requeues, 0u);
    EXPECT_EQ(Stats.CrashedClients, 0u);
    // One summary JSONL row per client landed on the stream.
    size_t Rows = 0;
    std::istringstream In(Stream.str());
    for (std::string Line; std::getline(In, Line);)
      if (Line.find("\"micros\":") != std::string::npos)
        ++Rows;
    EXPECT_EQ(Rows, Corpus.size()) << "shards=" << Shards;
  }
}

TEST_F(ShardDeterminismTest, KilledWorkerRequeuesOnceAndReportIsIdentical) {
  std::ostringstream SerialMerged, SerialStream;
  ShardRunStats SerialStats;
  std::string Error;
  ASSERT_TRUE(runSerial(Corpus, Opts, SerialMerged, SerialStream, SerialStats,
                        Error))
      << Error;

  DriverOptions O = Opts;
  O.Shards = 2;
  // The worker handed gen-0003 _exit(42)s before certifying — first
  // attempt only, so the requeued task succeeds on a fresh worker.
  O.WorkerEnv.push_back("CANVAS_SHARD_CRASH_AT=gen-0003");
  std::ostringstream Merged, Stream;
  ShardRunStats Stats;
  ASSERT_TRUE(runSharded(Corpus, O, Merged, Stream, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Requeues, 1u);
  EXPECT_EQ(Stats.WorkerRespawns, 1u);
  EXPECT_EQ(Stats.CrashedClients, 0u);
  EXPECT_EQ(Merged.str(), SerialMerged.str());
}

TEST_F(ShardDeterminismTest, TwiceKilledClientIsDegradedNeverDropped) {
  DriverOptions O = Opts;
  O.Shards = 2;
  O.WorkerEnv.push_back("CANVAS_SHARD_CRASH_AT=gen-0005:always");
  std::ostringstream Merged, Stream;
  ShardRunStats Stats;
  std::string Error;
  ASSERT_TRUE(runSharded(Corpus, O, Merged, Stream, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Requeues, 1u);
  EXPECT_EQ(Stats.CrashedClients, 1u);
  EXPECT_GE(Stats.DegradedClients, 1u);
  const std::string Out = Merged.str();
  EXPECT_NE(Out.find(crashedSection("gen-0005")), std::string::npos);
  // Every other client still reports normally, in order.
  size_t Pos = 0;
  for (const CorpusClient &C : Corpus) {
    Pos = Out.find("=== " + C.Name + " ===\n", Pos);
    ASSERT_NE(Pos, std::string::npos) << C.Name;
  }
  EXPECT_NE(Stream.str().find("\"status\":\"crashed\""), std::string::npos);
}

} // namespace
