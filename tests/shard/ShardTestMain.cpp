//===----------------------------------------------------------------------===//
// Custom gtest main: the shard driver tests spawn worker processes by
// re-executing THIS binary with --worker, so the sharded pipeline under
// test is the real fork/exec/pipe path, not an in-process simulation.
// (Separate CMake target without gtest_main to keep main() unique.)
//===----------------------------------------------------------------------===//

#include "shard/Worker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    canvas::shard::WorkerOptions WO;
    for (int I = 2; I < argc; ++I)
      if (!canvas::shard::parseWorkerFlag(argv[I], WO)) {
        std::fprintf(stderr, "shard_test --worker: unknown flag '%s'\n",
                     argv[I]);
        return 2;
      }
    return canvas::shard::workerMain(WO);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
