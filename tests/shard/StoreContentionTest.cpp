//===----------------------------------------------------------------------===//
// Concurrent shared use of one CertStore root — the tentpole's locking
// contract. Two threads with their own instances hammer one root
// (instances serialize through the flock on LOCK); two processes hammer
// one root while one of them crash-dies at every store-commit probe
// (fork + _exit, so the kernel really does reclaim a dead holder's
// lock). After every storm: reopen recovers, zero quarantined entries,
// every committed entry reads back byte-exact.
//===----------------------------------------------------------------------===//

#include "store/CertStore.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace canvas;
using namespace canvas::store;

namespace fs = std::filesystem;

namespace {

StoreEntry makeEntry(const std::string &Unit, uint32_t Salt) {
  StoreEntry E;
  E.InputHash = 0xC0FFEE0000ull + Salt;
  E.Unit = Unit;
  E.Engine = "scmp-intra";
  core::CheckRecord C;
  C.Method = Unit;
  C.Loc.Line = static_cast<int>(Salt);
  C.What = "i.next() requires !P0(this)";
  C.Outcome = core::CheckOutcome::Safe;
  E.Checks.push_back(C);
  cert::Certificate Cert;
  Cert.Kind = cert::CertKind::BoolIntra;
  Cert.Unit = Unit;
  Cert.Claims.push_back({0, core::CheckOutcome::Safe});
  Cert.Payload = {9, 8, 7, static_cast<uint8_t>(Salt)};
  Cert.seal();
  E.HasCert = true;
  E.Cert = Cert;
  E.CertHash = Cert.ContentHash;
  return E;
}

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/shard-store-" + Tag + "-" +
                    std::to_string(static_cast<long>(::getpid()));
  fs::remove_all(Dir);
  return Dir;
}

TEST(StoreContentionTest, TwoThreadsOwnInstancesOneRootAllCommitsLand) {
  const std::string Dir = freshDir("threads");
  constexpr unsigned PerThread = 12;

  auto Hammer = [&Dir](unsigned Tid) {
    // Own instance per thread: the class is not thread-safe, the ROOT
    // is — instances serialize through the file lock.
    CertStore St(Dir, StoreMode::ReadWrite);
    for (unsigned I = 0; I != PerThread; ++I)
      St.put(makeEntry("T" + std::to_string(Tid) + "::m" + std::to_string(I),
                       Tid * 100 + I));
  };
  std::thread A(Hammer, 1), B(Hammer, 2);
  A.join();
  B.join();

  CertStore Re(Dir, StoreMode::ReadWrite);
  EXPECT_EQ(Re.stats().Quarantined, 0u);
  for (unsigned Tid = 1; Tid <= 2; ++Tid)
    for (unsigned I = 0; I != PerThread; ++I) {
      const StoreEntry E =
          makeEntry("T" + std::to_string(Tid) + "::m" + std::to_string(I),
                    Tid * 100 + I);
      std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
      ASSERT_TRUE(Got) << E.Unit;
      EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(E))
          << E.Unit;
    }
  fs::remove_all(Dir);
}

// put() walks four store-commit probes (journal intent, temp write,
// pre-rename, journal completion); probe 5 is the clean run. At every
// one, a CHILD PROCESS dies mid-commit (_exit, no unwind, flock
// reclaimed by the kernel) while the parent keeps committing through
// its own instance. The store must end with the parent's entries
// intact, the child's entry atomically present-or-absent, and nothing
// quarantined.
TEST(StoreContentionTest, ProcessCrashMidCommitAtEveryProbeNeverCorrupts) {
  constexpr unsigned ProbesPerPut = 4;
  for (unsigned Probe = 1; Probe <= ProbesPerPut + 1; ++Probe) {
    const std::string Dir = freshDir("crash-" + std::to_string(Probe));
    const StoreEntry ChildE = makeEntry("Child::m", 7);
    {
      // Lay the store down before forking so both sides open an
      // existing root.
      CertStore St(Dir, StoreMode::ReadWrite);
    }

    pid_t Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: crash-die at the probe. No gtest, no unwinding past the
      // catch — _exit leaves whatever bytes the torn write produced.
      support::setFaultPlan(
          {"store-commit", Probe, support::FaultKind::ShortWrite});
      try {
        CertStore St(Dir, StoreMode::ReadWrite);
        St.put(ChildE);
      } catch (...) {
        ::_exit(42);
      }
      ::_exit(0);
    }

    // Parent: hammer the same root while the child crashes.
    {
      CertStore St(Dir, StoreMode::ReadWrite);
      for (unsigned I = 0; I != 6; ++I)
        St.put(makeEntry("Parent::m" + std::to_string(I), I));
    }
    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    const int Code = WEXITSTATUS(Status);
    EXPECT_TRUE(Code == 0 || Code == 42) << "probe " << Probe;

    CertStore Re(Dir, StoreMode::ReadWrite);
    EXPECT_EQ(Re.stats().Quarantined, 0u) << "probe " << Probe;
    for (unsigned I = 0; I != 6; ++I) {
      const StoreEntry E = makeEntry("Parent::m" + std::to_string(I), I);
      std::unique_ptr<StoreEntry> Got = Re.get(E.InputHash, E.Unit);
      ASSERT_TRUE(Got) << "probe " << Probe << " parent entry " << I;
      EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(E));
    }
    std::unique_ptr<StoreEntry> Got = Re.get(ChildE.InputHash, ChildE.Unit);
    if (Got)
      EXPECT_EQ(CertStore::frameEntry(*Got), CertStore::frameEntry(ChildE))
          << "probe " << Probe;
    else
      EXPECT_NE(Code, 0) << "probe " << Probe
                         << ": child claimed success but the entry is gone";
    // The recovered store still accepts commits.
    Re.put(makeEntry("After::m", 99));
    EXPECT_TRUE(Re.get(makeEntry("After::m", 99).InputHash, "After::m"));
    fs::remove_all(Dir);
  }
}

} // namespace
