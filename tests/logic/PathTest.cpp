#include "logic/Path.h"

#include <gtest/gtest.h>

using namespace canvas;

namespace {

TEST(PathTest, RendersDottedForm) {
  Path P = Path::var("i", "Iterator").withField("set").withField("ver");
  EXPECT_EQ(P.str(), "i.set.ver");
  EXPECT_EQ(P.rootType(), "Iterator");
  EXPECT_EQ(P.length(), 2u);
}

TEST(PathTest, FreshHandlesRenderWithMarker) {
  Path P = Path::fresh(3, "Version");
  EXPECT_EQ(P.str(), "%new3");
  EXPECT_TRUE(P.isFreshRooted());
}

TEST(PathTest, ParentAndLastField) {
  Path P = Path::var("i", "Iterator").withField("set").withField("ver");
  EXPECT_EQ(P.parent().str(), "i.set");
  EXPECT_EQ(P.lastField(), "ver");
}

TEST(PathTest, StartsWith) {
  Path Base = Path::var("i", "Iterator");
  Path P = Base.withField("set").withField("ver");
  EXPECT_TRUE(P.startsWith(Base));
  EXPECT_TRUE(P.startsWith(Base.withField("set")));
  EXPECT_TRUE(P.startsWith(P));
  EXPECT_FALSE(P.startsWith(Base.withField("defVer")));
  EXPECT_FALSE(P.startsWith(Path::var("j", "Iterator")));
  EXPECT_FALSE(Base.startsWith(P));
}

TEST(PathTest, StartsWithDistinguishesFreshFromVar) {
  Path V = Path::var("%new0", "Set");
  Path F = Path::fresh(0, "Set");
  EXPECT_FALSE(V.startsWith(F));
  EXPECT_FALSE(F.startsWith(V));
  EXPECT_TRUE(F.startsWith(F));
}

TEST(PathTest, ReplacePrefix) {
  Path P = Path::var("i", "Iterator").withField("set").withField("ver");
  Path Repl = Path::var("v", "Set");
  Path Out = P.replacePrefix(Path::var("i", "Iterator").withField("set"), Repl);
  EXPECT_EQ(Out.str(), "v.ver");

  Path Out2 = P.replacePrefix(Path::var("i", "Iterator"),
                              Path::var("j", "Iterator"));
  EXPECT_EQ(Out2.str(), "j.set.ver");
}

TEST(PathTest, CompareIsLexicographic) {
  Path A = Path::var("i", "Iterator");
  Path B = Path::var("i", "Iterator").withField("set");
  Path C = Path::var("j", "Iterator");
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_LT(A, C);
  EXPECT_FALSE(A < A);
}

TEST(PathTest, EqualityIncludesRootKind) {
  EXPECT_EQ(Path::var("x", "T"), Path::var("x", "T"));
  EXPECT_NE(Path::fresh(0, "T"), Path::fresh(1, "T"));
  EXPECT_NE(Path::var("%new0", "T"), Path::fresh(0, "T"));
}

} // namespace
