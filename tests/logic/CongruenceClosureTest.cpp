#include "logic/CongruenceClosure.h"

#include <gtest/gtest.h>

using namespace canvas;

namespace {

Path V(const char *Name) { return Path::var(Name, "T"); }
Literal Eq(Path A, Path B) { return Literal(false, std::move(A), std::move(B)); }
Literal Ne(Path A, Path B) { return Literal(true, std::move(A), std::move(B)); }

TEST(CongruenceClosureTest, TransitivityOfEquality) {
  CongruenceClosure CC;
  CC.assume(Eq(V("a"), V("b")));
  CC.assume(Eq(V("b"), V("c")));
  EXPECT_TRUE(CC.provesEqual(V("a"), V("c")));
  EXPECT_FALSE(CC.provesEqual(V("a"), V("d")));
}

TEST(CongruenceClosureTest, CongruencePropagatesThroughFields) {
  CongruenceClosure CC;
  CC.assume(Eq(V("i"), V("j")));
  EXPECT_TRUE(CC.provesEqual(V("i").withField("set"), V("j").withField("set")));
  EXPECT_TRUE(CC.provesEqual(V("i").withField("set").withField("ver"),
                             V("j").withField("set").withField("ver")));
}

TEST(CongruenceClosureTest, CongruenceOnLaterCreatedTerms) {
  // Terms first mentioned after the merge still land in the right class.
  CongruenceClosure CC;
  CC.assume(Eq(V("x").withField("f"), V("y")));
  CC.assume(Eq(V("x"), V("z")));
  EXPECT_TRUE(CC.provesEqual(V("z").withField("f"), V("y")));
}

TEST(CongruenceClosureTest, DisequalityMakesInconsistent) {
  CongruenceClosure CC;
  CC.assume(Eq(V("a"), V("b")));
  CC.assume(Ne(V("a"), V("b")));
  EXPECT_FALSE(CC.isConsistent());
}

TEST(CongruenceClosureTest, CongruenceDrivenInconsistency) {
  CongruenceClosure CC;
  CC.assume(Eq(V("i"), V("j")));
  CC.assume(Ne(V("i").withField("set"), V("j").withField("set")));
  EXPECT_FALSE(CC.isConsistent());
}

TEST(CongruenceClosureTest, DisequalitiesDoNotMerge) {
  CongruenceClosure CC;
  CC.assume(Ne(V("a"), V("b")));
  CC.assume(Ne(V("b"), V("c")));
  EXPECT_TRUE(CC.isConsistent());
  EXPECT_FALSE(CC.provesEqual(V("a"), V("c")));
}

TEST(ConjunctionImpliesTest, EqualityEntailment) {
  Conjunction A{Eq(V("a"), V("b")), Eq(V("b"), V("c"))};
  EXPECT_TRUE(conjunctionImplies(A, Eq(V("a"), V("c"))));
  EXPECT_FALSE(conjunctionImplies(A, Eq(V("a"), V("d"))));
}

TEST(ConjunctionImpliesTest, DisequalityEntailment) {
  // a != b and b == c entail a != c.
  Conjunction A{Ne(V("a"), V("b")), Eq(V("b"), V("c"))};
  EXPECT_TRUE(conjunctionImplies(A, Ne(V("a"), V("c"))));
  EXPECT_FALSE(conjunctionImplies(A, Ne(V("b"), V("c"))));
}

TEST(ConjunctionImpliesTest, InconsistentAssumptionsEntailAnything) {
  Conjunction A{Eq(V("a"), V("b")), Ne(V("a"), V("b"))};
  EXPECT_TRUE(conjunctionImplies(A, Eq(V("x"), V("y"))));
}

TEST(ConjunctionImpliesTest, ThePaperStaleSimplification) {
  // Under the remove() precondition this.defVer == this.set.ver, the
  // disjunct (q != this && q.defVer != q.set.ver) entails q != this:
  // if q == this, congruence forces q.defVer == q.set.ver.
  Path QDef = V("q").withField("defVer");
  Path QVer = V("q").withField("set").withField("ver");
  Path TDef = V("this").withField("defVer");
  Path TVer = V("this").withField("set").withField("ver");
  Conjunction Assume{Ne(QDef, QVer), Eq(TDef, TVer)};
  EXPECT_TRUE(conjunctionImplies(Assume, Ne(V("q"), V("this"))));
}

TEST(SimplifyDisjunctTest, DropsEntailedLiterals) {
  Conjunction C{Eq(V("a"), V("b")), Eq(V("b"), V("c")), Eq(V("a"), V("c"))};
  ASSERT_TRUE(simplifyDisjunct(C, Conjunction()));
  EXPECT_EQ(C.size(), 2u);
}

TEST(SimplifyDisjunctTest, ReportsInconsistencyWithContext) {
  Conjunction C{Ne(V("a"), V("b"))};
  Conjunction Context{Eq(V("a"), V("b"))};
  EXPECT_FALSE(simplifyDisjunct(C, Context));
}

TEST(SimplifyDisjunctTest, UsesContextToDropLiterals) {
  // Context a == b lets the literal a == b be dropped from the disjunct.
  Conjunction C{Eq(V("a"), V("b")), Ne(V("c"), V("d"))};
  Conjunction Context{Eq(V("a"), V("b"))};
  ASSERT_TRUE(simplifyDisjunct(C, Context));
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].str(), "c != d");
}

TEST(SimplifyDisjunctTest, PaperRemoveCase) {
  // The WP disjunct (q != this && stale(q)) under the remove()
  // precondition simplifies to stale(q) alone — this is what makes the
  // derived update formula match Fig. 5.
  Path QDef = V("q").withField("defVer");
  Path QVer = V("q").withField("set").withField("ver");
  Path TDef = V("this").withField("defVer");
  Path TVer = V("this").withField("set").withField("ver");
  Conjunction C{Ne(V("q"), V("this")), Ne(QDef, QVer)};
  Conjunction Context{Eq(TDef, TVer)};
  ASSERT_TRUE(simplifyDisjunct(C, Context));
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].str(), "q.defVer != q.set.ver");
}

} // namespace
