#include "logic/Formula.h"

#include <gtest/gtest.h>

using namespace canvas;

namespace {

Path V(const char *Name) { return Path::var(Name, "T"); }

TEST(FormulaTest, EqOfIdenticalPathsFoldsToTrue) {
  EXPECT_TRUE(Formula::eq(V("x"), V("x"))->isTrue());
  EXPECT_TRUE(Formula::ne(V("x"), V("x"))->isFalse());
}

TEST(FormulaTest, EqCanonicalizesOperandOrder) {
  FormulaRef A = Formula::eq(V("x"), V("y"));
  FormulaRef B = Formula::eq(V("y"), V("x"));
  EXPECT_EQ(A->str(), B->str());
}

TEST(FormulaTest, DoubleNegationCancels) {
  FormulaRef E = Formula::eq(V("x"), V("y"));
  EXPECT_EQ(Formula::notOf(Formula::notOf(E))->str(), E->str());
}

TEST(FormulaTest, AndOrConstantFolding) {
  FormulaRef E = Formula::eq(V("x"), V("y"));
  EXPECT_EQ(Formula::andOf(E, Formula::getTrue())->str(), E->str());
  EXPECT_TRUE(Formula::andOf(E, Formula::getFalse())->isFalse());
  EXPECT_EQ(Formula::orOf(E, Formula::getFalse())->str(), E->str());
  EXPECT_TRUE(Formula::orOf(E, Formula::getTrue())->isTrue());
}

TEST(FormulaTest, NestedConjunctionsFlatten) {
  FormulaRef E1 = Formula::eq(V("a"), V("b"));
  FormulaRef E2 = Formula::eq(V("c"), V("d"));
  FormulaRef E3 = Formula::eq(V("e"), V("f"));
  FormulaRef Nested = Formula::andOf(E1, Formula::andOf(E2, E3));
  ASSERT_EQ(Nested->getKind(), Formula::Kind::And);
  EXPECT_EQ(Nested->operands().size(), 3u);
}

TEST(FormulaTest, DuplicateOperandsMerge) {
  FormulaRef E = Formula::eq(V("a"), V("b"));
  FormulaRef F = Formula::andOf(E, E);
  EXPECT_EQ(F->str(), E->str());
}

TEST(FormulaTest, StrRendersNeAtoms) {
  FormulaRef F = Formula::ne(V("a"), V("b"));
  EXPECT_EQ(F->str(), "a != b");
}

TEST(DNFTest, AtomIsSingleton) {
  auto D = toDNF(Formula::eq(V("a"), V("b")));
  ASSERT_EQ(D.size(), 1u);
  ASSERT_EQ(D[0].size(), 1u);
  EXPECT_EQ(D[0][0].str(), "a == b");
}

TEST(DNFTest, TrueAndFalse) {
  auto T = toDNF(Formula::getTrue());
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].empty());
  EXPECT_TRUE(toDNF(Formula::getFalse()).empty());
}

TEST(DNFTest, DistributesAndOverOr) {
  // (a==b || c==d) && e==f  =>  two disjuncts.
  FormulaRef F = Formula::andOf(
      Formula::orOf(Formula::eq(V("a"), V("b")), Formula::eq(V("c"), V("d"))),
      Formula::eq(V("e"), V("f")));
  auto D = toDNF(F);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D[0].size(), 2u);
  EXPECT_EQ(D[1].size(), 2u);
}

TEST(DNFTest, NegationPushesInward) {
  // !(a==b && c==d) => a!=b || c!=d.
  FormulaRef F = Formula::notOf(Formula::andOf(Formula::eq(V("a"), V("b")),
                                               Formula::eq(V("c"), V("d"))));
  auto D = toDNF(F);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_TRUE(D[0][0].Negated);
  EXPECT_TRUE(D[1][0].Negated);
}

TEST(DNFTest, DropsContradictoryDisjuncts) {
  FormulaRef E = Formula::eq(V("a"), V("b"));
  FormulaRef F = Formula::andOf(E, Formula::notOf(E));
  EXPECT_TRUE(toDNF(F).empty());
}

TEST(DNFTest, RoundTripThroughFromDNF) {
  FormulaRef F = Formula::orOf(
      Formula::andOf(Formula::eq(V("a"), V("b")), Formula::ne(V("c"), V("d"))),
      Formula::eq(V("e"), V("f")));
  EXPECT_EQ(fromDNF(toDNF(F))->str(), F->str());
}

TEST(ConjunctionTest, NormalizeSortsAndDedupes) {
  Conjunction C;
  C.emplace_back(false, V("c"), V("d"));
  C.emplace_back(false, V("a"), V("b"));
  C.emplace_back(false, V("a"), V("b"));
  EXPECT_TRUE(normalizeConjunction(C));
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(conjunctionStr(C), "a == b && c == d");
}

TEST(ConjunctionTest, NormalizeDetectsComplementaryPair) {
  Conjunction C;
  C.emplace_back(false, V("a"), V("b"));
  C.emplace_back(true, V("a"), V("b"));
  EXPECT_FALSE(normalizeConjunction(C));
}

TEST(ConjunctionTest, NormalizeDropsReflexiveEquality) {
  Conjunction C;
  C.emplace_back(false, V("a"), V("a"));
  EXPECT_TRUE(normalizeConjunction(C));
  EXPECT_TRUE(C.empty());
  EXPECT_EQ(conjunctionStr(C), "true");
}

TEST(ConjunctionTest, NormalizeDetectsReflexiveDisequality) {
  Conjunction C;
  C.emplace_back(true, V("a"), V("a"));
  EXPECT_FALSE(normalizeConjunction(C));
}

TEST(LiteralTest, ConstructorOrdersOperands) {
  Literal L(false, V("z"), V("a"));
  EXPECT_EQ(L.str(), "a == z");
}

} // namespace
