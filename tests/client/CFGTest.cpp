#include "client/CFG.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::cj;

namespace {

struct Built {
  Program Prog;
  easl::Spec Spec;
  ClientCFG CFG;
};

Built build(const char *ClientSrc, bool ExpectErrors = false) {
  Built B;
  B.Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  B.Prog = parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  B.CFG = buildCFG(B.Prog, B.Spec, Diags);
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.str();
  return B;
}

std::vector<Action::Kind> actionKinds(const CFGMethod &M) {
  std::vector<Action::Kind> Ks;
  for (const CFGEdge &E : M.Edges)
    if (E.Act.K != Action::Kind::Nop)
      Ks.push_back(E.Act.K);
  return Ks;
}

TEST(CFGTest, StraightLineLowering) {
  Built B = build(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        i.next();
        Iterator j = i;
      }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(actionKinds(*Main),
            (std::vector<Action::Kind>{
                Action::Kind::AllocComp, Action::Kind::CompCall,
                Action::Kind::CompCall, Action::Kind::Copy}));
  EXPECT_FALSE(Main->HasHeapComponentRefs);
  // v, i, j are the component variables.
  EXPECT_EQ(Main->CompVars.size(), 3u);
}

TEST(CFGTest, BranchesAndLoopsCreateDiamonds) {
  Built B = build(R"(
    class M {
      void main() {
        Set v = new Set();
        if (*) { v.add(); }
        while (*) { v.add(); }
      }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  int Adds = 0;
  for (const CFGEdge &E : Main->Edges)
    Adds += E.Act.K == Action::Kind::CompCall && E.Act.Callee == "add";
  EXPECT_EQ(Adds, 2);
  // The loop introduces a back edge: some edge goes to a lower node id.
  bool HasBackEdge = false;
  for (const CFGEdge &E : Main->Edges)
    HasBackEdge |= E.To < E.From;
  EXPECT_TRUE(HasBackEdge);
}

TEST(CFGTest, HeapStoreSetsFlagAndLoadsHavoc) {
  Built B = build(R"(
    class Holder { Set s; }
    class M {
      void main() {
        Holder h = new Holder();
        Set v = new Set();
        h.s = v;
        Set w = h.s;
      }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  EXPECT_TRUE(Main->HasHeapComponentRefs);
  bool SawHavoc = false;
  for (const CFGEdge &E : Main->Edges)
    SawHavoc |= E.Act.K == Action::Kind::Havoc && E.Act.Lhs == "w";
  EXPECT_TRUE(SawHavoc);
}

TEST(CFGTest, ComponentCallOnHeapReceiverIsOpaque) {
  Built B = build(R"(
    class Holder { Set s; }
    class M {
      void main() {
        Holder h = new Holder();
        h.s.add();
      }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  bool SawOpaque = false;
  for (const CFGEdge &E : Main->Edges)
    SawOpaque |= E.Act.K == Action::Kind::OpaqueEffect;
  EXPECT_TRUE(SawOpaque);
  EXPECT_TRUE(Main->HasHeapComponentRefs);
}

TEST(CFGTest, ClientCallResolved) {
  Built B = build(R"(
    class M {
      void main() {
        Set v = new Set();
        process(v);
      }
      void process(Set s) { s.add(); }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  const Action *CallAct = nullptr;
  for (const CFGEdge &E : Main->Edges)
    if (E.Act.K == Action::Kind::ClientCall)
      CallAct = &E.Act;
  ASSERT_NE(CallAct, nullptr);
  EXPECT_EQ(CallAct->Callee, "M::process");
  ASSERT_EQ(CallAct->Args.size(), 1u);
  EXPECT_EQ(CallAct->Args[0], "v");
  ASSERT_NE(CallAct->CalleeMethod, nullptr);
}

TEST(CFGTest, ReturnOfComponentBindsRetVar) {
  Built B = build(R"(
    class M {
      void main() { }
      Iterator fresh(Set s) { return s.iterator(); }
    }
  )");
  const CFGMethod *Fresh = B.CFG.findMethod("M", "fresh");
  ASSERT_NE(Fresh, nullptr);
  bool HasRet = false;
  for (const auto &[V, T] : Fresh->CompVars)
    HasRet |= V == "$ret" && T == "Iterator";
  EXPECT_TRUE(HasRet);
  bool SawRetCall = false;
  for (const CFGEdge &E : Fresh->Edges)
    SawRetCall |= E.Act.K == Action::Kind::CompCall && E.Act.Lhs == "$ret";
  EXPECT_TRUE(SawRetCall);
}

TEST(CFGTest, UnknownComponentMethodIsError) {
  build(R"(
    class M {
      void main() {
        Set v = new Set();
        v.frobnicate();
      }
    }
  )", /*ExpectErrors=*/true);
}

TEST(CFGTest, WrongArityComponentCallIsError) {
  build(R"(
    class M {
      void main() {
        Set v = new Set();
        v.add(v);
      }
    }
  )", /*ExpectErrors=*/true);
}

TEST(CFGTest, RedeclarationWithDifferentTypeIsError) {
  build(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator v = null;
      }
    }
  )", /*ExpectErrors=*/true);
}

TEST(CFGTest, NullAssignmentHavocsComponentVar) {
  Built B = build(R"(
    class M {
      void main() {
        Iterator i = null;
      }
    }
  )");
  const CFGMethod *Main = B.CFG.mainCFG();
  EXPECT_EQ(actionKinds(*Main),
            (std::vector<Action::Kind>{Action::Kind::Havoc}));
}

TEST(CFGTest, StrRendersActions) {
  Built B = build(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
      }
    }
  )");
  std::string S = B.CFG.mainCFG()->str();
  EXPECT_NE(S.find("v = new Set()"), std::string::npos) << S;
  EXPECT_NE(S.find("i = v.iterator()"), std::string::npos) << S;
}

} // namespace
