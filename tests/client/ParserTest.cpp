#include "client/Parser.h"

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::cj;

namespace {

Program parseOK(const char *Src) {
  DiagnosticEngine Diags;
  Program P = parseProgram(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

TEST(CJParserTest, ParsesClassWithFieldsAndMethods) {
  Program P = parseOK(R"(
    class Worklist {
      Set s;
      void addItem() { s.add(); }
      Set unprocessedItems() { return s; }
    }
  )");
  const CClass *C = P.findClass("Worklist");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Fields.size(), 1u);
  EXPECT_EQ(C->Methods.size(), 2u);
}

TEST(CJParserTest, ParsesDeclWithInit) {
  Program P = parseOK(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
      }
    }
  )");
  const CMethod *Main = P.mainMethod();
  ASSERT_NE(Main, nullptr);
  ASSERT_EQ(Main->Body.size(), 2u);
  const auto *D0 = dyn_cast<DeclStmt>(Main->Body[0].get());
  ASSERT_NE(D0, nullptr);
  EXPECT_EQ(D0->Type, "Set");
  EXPECT_EQ(D0->Name, "v");
  ASSERT_NE(D0->Init, nullptr);
  EXPECT_EQ(D0->Init->getKind(), CExpr::Kind::New);

  const auto *D1 = cast<DeclStmt>(Main->Body[1].get());
  const auto *Call = dyn_cast<CallExpr>(D1->Init.get());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->methodName(), "iterator");
  EXPECT_EQ(Call->receiver().str(), "v");
}

TEST(CJParserTest, ParsesNondeterministicControlFlow) {
  Program P = parseOK(R"(
    class M {
      void main() {
        while (*) {
          if (*) { m(); } else { m(); }
        }
      }
      void m() { }
    }
  )");
  const CMethod *Main = P.mainMethod();
  ASSERT_EQ(Main->Body.size(), 1u);
  EXPECT_EQ(Main->Body[0]->getKind(), CStmt::Kind::While);
}

TEST(CJParserTest, RejectsConcreteConditions) {
  DiagnosticEngine Diags;
  parseProgram("class M { void main() { if (x) { } } }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(CJParserTest, ParsesElseIfChain) {
  Program P = parseOK(R"(
    class M {
      void main() {
        if (*) { } else if (*) { } else { }
      }
    }
  )");
  const auto *If = cast<IfStmt>(P.mainMethod()->Body[0].get());
  ASSERT_EQ(If->Else.size(), 1u);
  EXPECT_EQ(If->Else[0]->getKind(), CStmt::Kind::If);
}

TEST(CJParserTest, StringLiteralArgumentsBecomeNull) {
  Program P = parseOK(R"(
    class M {
      void main() { log("hello"); }
      void log(Object msg) { }
    }
  )");
  const auto *E = cast<ExprStmt>(P.mainMethod()->Body[0].get());
  const auto *Call = cast<CallExpr>(E->E.get());
  ASSERT_EQ(Call->Args.size(), 1u);
  EXPECT_EQ(Call->Args[0]->getKind(), CExpr::Kind::Null);
}

TEST(CJParserTest, SkipsModifiers) {
  Program P = parseOK(R"(
    public class M {
      private Set s;
      public static void main() { }
    }
  )");
  EXPECT_NE(P.findClass("M"), nullptr);
  EXPECT_NE(P.mainMethod(), nullptr);
}

TEST(CJParserTest, ParsesReturnForms) {
  Program P = parseOK(R"(
    class M {
      Set get() { return s; }
      void stop() { return; }
      Set s;
      void main() { }
    }
  )");
  const CClass *C = P.findClass("M");
  const auto *Get = cast<ReturnStmt>(C->findMethod("get")->Body[0].get());
  EXPECT_NE(Get->Value, nullptr);
  const auto *Stop = cast<ReturnStmt>(C->findMethod("stop")->Body[0].get());
  EXPECT_EQ(Stop->Value, nullptr);
}

TEST(CJParserTest, FieldAssignmentParses) {
  Program P = parseOK(R"(
    class M {
      Set s;
      void main() { this.s = new Set(); s = null; }
    }
  )");
  const CMethod *Main = P.mainMethod();
  ASSERT_EQ(Main->Body.size(), 2u);
  EXPECT_EQ(Main->Body[0]->getKind(), CStmt::Kind::Assign);
}

} // namespace
