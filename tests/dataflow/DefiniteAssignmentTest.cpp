//===----------------------------------------------------------------------===//
// Tests for the Stage-0 definite-assignment lint: diamond and loop
// patterns, parameter initialization, copy-source uses, unreachable
// code, and the requires-bearing flag with precise source locations.
//===----------------------------------------------------------------------===//

#include "dataflow/DefiniteAssignment.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;
using canvas::dftest::lineOf;

namespace {

DefiniteAssignmentResult runLint(Client &C, const char *ClassName,
                                 const char *MethodName,
                                 const wp::DerivedAbstraction *Abs) {
  const cj::CFGMethod &M = C.method(ClassName, MethodName);
  CFGInfo Info(M);
  return analyzeDefiniteAssignment(M, Info, Abs);
}

TEST(DefiniteAssignmentTest, DiamondOneBranchFlagsUse) {
  const char *Src = R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i;
        if (*) { i = s.iterator(); }
        i.next();
      }
    }
  )";
  Client C(Src);
  wp::DerivedAbstraction Abs = C.derive();
  DefiniteAssignmentResult R = runLint(C, "C", "main", &Abs);

  ASSERT_EQ(R.Uses.size(), 1u);
  EXPECT_EQ(R.Uses[0].Var, "i");
  EXPECT_EQ(R.Uses[0].Loc.Line, lineOf(Src, "i.next()"));
  EXPECT_TRUE(R.Uses[0].RequiresBearing); // next() carries a requires.
  EXPECT_NE(R.Uses[0].ActionText.find("next"), std::string::npos);
}

TEST(DefiniteAssignmentTest, BothBranchesAssignIsClean) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i;
        if (*) { i = s.iterator(); } else { i = s.iterator(); }
        i.next();
      }
    }
  )");
  wp::DerivedAbstraction Abs = C.derive();
  EXPECT_TRUE(runLint(C, "C", "main", &Abs).clean());
}

TEST(DefiniteAssignmentTest, LoopFirstIterationUse) {
  const char *Src = R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i;
        while (*) {
          i.next();
          i = s.iterator();
        }
      }
    }
  )";
  Client C(Src);
  wp::DerivedAbstraction Abs = C.derive();
  DefiniteAssignmentResult R = runLint(C, "C", "main", &Abs);
  ASSERT_EQ(R.Uses.size(), 1u);
  EXPECT_EQ(R.Uses[0].Var, "i");
  EXPECT_EQ(R.Uses[0].Loc.Line, lineOf(Src, "i.next()"));
}

TEST(DefiniteAssignmentTest, AssignmentBeforeLoopIsClean) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        while (*) {
          i.next();
          i = s.iterator();
        }
      }
    }
  )");
  wp::DerivedAbstraction Abs = C.derive();
  EXPECT_TRUE(runLint(C, "C", "main", &Abs).clean());
}

TEST(DefiniteAssignmentTest, ParametersCountAsInitialized) {
  Client C(R"(
    class C {
      void helper(Iterator i) {
        i.next();
      }
    }
  )");
  wp::DerivedAbstraction Abs = C.derive();
  EXPECT_TRUE(runLint(C, "C", "helper", &Abs).clean());
}

TEST(DefiniteAssignmentTest, CopySourceUseIsNotRequiresBearing) {
  const char *Src = R"(
    class C {
      void main() {
        Iterator i;
        Iterator j = i;
      }
    }
  )";
  Client C(Src);
  wp::DerivedAbstraction Abs = C.derive();
  DefiniteAssignmentResult R = runLint(C, "C", "main", &Abs);
  ASSERT_EQ(R.Uses.size(), 1u);
  EXPECT_EQ(R.Uses[0].Var, "i");
  EXPECT_FALSE(R.Uses[0].RequiresBearing);
  EXPECT_EQ(R.Uses[0].Loc.Line, lineOf(Src, "Iterator j = i;"));
}

TEST(DefiniteAssignmentTest, UnreachableUseIsNotReported) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i;
        return;
        i.next();
      }
    }
  )");
  wp::DerivedAbstraction Abs = C.derive();
  EXPECT_TRUE(runLint(C, "C", "main", &Abs).clean());
}

TEST(DefiniteAssignmentTest, NonRequiresCallStillFlagged) {
  // iterator() has no requires clause, but the use is still reported —
  // with the flag off.
  const char *Src = R"(
    class C {
      void main() {
        Set s;
        Iterator i = s.iterator();
      }
    }
  )";
  Client C(Src);
  wp::DerivedAbstraction Abs = C.derive();
  DefiniteAssignmentResult R = runLint(C, "C", "main", &Abs);
  ASSERT_EQ(R.Uses.size(), 1u);
  EXPECT_EQ(R.Uses[0].Var, "s");
  EXPECT_FALSE(R.Uses[0].RequiresBearing);
}

} // namespace
