//===----------------------------------------------------------------------===//
// Tests for the monotone dataflow framework: CFG adjacency and
// reverse-post-order numbering, the priority worklist solver in both
// directions, unreachable-edge pruning, and the def/use helpers.
//===----------------------------------------------------------------------===//

#include "dataflow/Dataflow.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;

namespace {

const char *DiamondClient = R"(
  class C {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      if (*) { i.next(); } else { s.add(); }
      i.next();
    }
  }
)";

const char *DeadTailClient = R"(
  class C {
    void main() {
      Set s = new Set();
      return;
      s.add();
    }
  }
)";

/// Minimum number of edges from the boundary node: a min-join lattice
/// exercising the solver with a non-bit-vector state.
struct DistanceProblem {
  using State = int;
  State boundary() const { return 0; }
  bool join(State &Dst, const State &Src) const {
    if (Src < Dst) {
      Dst = Src;
      return true;
    }
    return false;
  }
  State transfer(const cj::CFGEdge &, const State &In) const { return In + 1; }
};

TEST(CFGInfoTest, RPOIsATopologicalLikeOrder) {
  Client C(DiamondClient);
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);

  EXPECT_EQ(Info.rpoNumber(M.Entry), 0);
  EXPECT_EQ(Info.numReachable(), static_cast<unsigned>(M.NumNodes));

  // RPO numbers of reachable nodes are a permutation of 0..N-1.
  std::set<int> Seen;
  for (int N = 0; N != M.NumNodes; ++N) {
    ASSERT_TRUE(Info.reachable(N));
    EXPECT_TRUE(Seen.insert(Info.rpoNumber(N)).second);
  }
  EXPECT_EQ(*Seen.rbegin(), M.NumNodes - 1);

  // Succ/pred adjacency is consistent with the edge list.
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const auto &Succ = Info.succEdges(M.Edges[E].From);
    const auto &Pred = Info.predEdges(M.Edges[E].To);
    EXPECT_NE(std::find(Succ.begin(), Succ.end(), static_cast<int>(E)),
              Succ.end());
    EXPECT_NE(std::find(Pred.begin(), Pred.end(), static_cast<int>(E)),
              Pred.end());
  }
}

TEST(CFGInfoTest, CodeAfterReturnIsUnreachable) {
  Client C(DeadTailClient);
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);
  EXPECT_LT(Info.numReachable(), static_cast<unsigned>(M.NumNodes));
  EXPECT_TRUE(Info.reachable(M.Entry));
  EXPECT_TRUE(Info.reachable(M.Exit));
}

TEST(PruneTest, RemovesOnlyUnreachableEdges) {
  Client C(DeadTailClient);
  cj::CFGMethod M = C.method("C", "main"); // Working copy.
  size_t EdgesBefore = M.Edges.size();

  // The dead tail contains the s.add() call.
  bool HadDeadCall = false;
  CFGInfo Before(M);
  for (const cj::CFGEdge &E : M.Edges)
    if (E.Act.K == cj::Action::Kind::CompCall && !Before.reachable(E.From))
      HadDeadCall = true;
  ASSERT_TRUE(HadDeadCall);

  std::vector<int> OrigEdgeIndex;
  PruneStats Stats = pruneUnreachableEdges(M, OrigEdgeIndex);
  EXPECT_GT(Stats.EdgesRemoved, 0u);
  EXPECT_GT(Stats.NodesUnreachable, 0u);
  EXPECT_EQ(M.Edges.size() + Stats.EdgesRemoved, EdgesBefore);
  ASSERT_EQ(OrigEdgeIndex.size(), M.Edges.size());

  // The mapping is strictly increasing and every survivor is reachable.
  CFGInfo After(M);
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    if (E) {
      EXPECT_LT(OrigEdgeIndex[E - 1], OrigEdgeIndex[E]);
    }
    EXPECT_TRUE(After.reachable(M.Edges[E].From));
  }
  // The dead s.add() call did not survive.
  for (const cj::CFGEdge &E : M.Edges)
    EXPECT_NE(E.Act.Callee, "add");
}

TEST(SolverTest, ForwardDistanceOnDiamond) {
  Client C(DiamondClient);
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);
  SolveResult<DistanceProblem> R = solve(Info, DistanceProblem{}, Direction::Forward);

  ASSERT_TRUE(R.reached(M.Entry));
  EXPECT_EQ(*R.States[M.Entry], 0);
  for (int N = 0; N != M.NumNodes; ++N)
    ASSERT_TRUE(R.reached(N)) << "node " << N;
  // The exit's shortest path crosses the whole method.
  EXPECT_GT(*R.States[M.Exit], 0);
  // Distances along each edge differ by at most one (shortest-path
  // triangle inequality).
  for (const cj::CFGEdge &E : M.Edges)
    EXPECT_LE(*R.States[E.To], *R.States[E.From] + 1);
}

TEST(SolverTest, BackwardDistanceToExit) {
  Client C(DiamondClient);
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);
  SolveResult<DistanceProblem> R =
      solve(Info, DistanceProblem{}, Direction::Backward);

  ASSERT_TRUE(R.reached(M.Exit));
  EXPECT_EQ(*R.States[M.Exit], 0);
  ASSERT_TRUE(R.reached(M.Entry));
  EXPECT_GT(*R.States[M.Entry], 0);
  for (const cj::CFGEdge &E : M.Edges)
    EXPECT_LE(*R.States[E.From], *R.States[E.To] + 1);
}

TEST(SolverTest, LoopConverges) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        while (*) { s.add(); }
        Iterator i = s.iterator();
        i.next();
      }
    }
  )");
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);
  SolveResult<DistanceProblem> R = solve(Info, DistanceProblem{}, Direction::Forward);
  for (int N = 0; N != M.NumNodes; ++N)
    ASSERT_TRUE(R.reached(N));
  // With RPO priorities a reducible loop needs few node visits.
  EXPECT_LE(R.NodeVisits, 3u * static_cast<unsigned>(M.NumNodes));
}

TEST(SolverTest, CheckSolutionAcceptsFixpointAndRejectsTampering) {
  Client C(DiamondClient);
  const cj::CFGMethod &M = C.method("C", "main");
  CFGInfo Info(M);
  DistanceProblem P;
  for (Direction Dir : {Direction::Forward, Direction::Backward}) {
    SolveResult<DistanceProblem> R = solve(Info, P, Dir);
    std::string Why;
    EXPECT_TRUE(checkSolution(Info, P, Dir, R, &Why)) << Why;

    // The check certifies post-fixpoints, not the least one: in this
    // min-join lattice a smaller distance over-approximates, so
    // shifting every non-boundary node down by one still verifies.
    // Claiming a *longer* distance than derivable under-approximates
    // and must be caught by closure on the shortest-path edge.
    int Boundary = Dir == Direction::Forward ? M.Entry : M.Exit;
    SolveResult<DistanceProblem> Weak = R;
    for (int N = 0; N != M.NumNodes; ++N)
      if (N != Boundary)
        *Weak.States[N] -= 1;
    EXPECT_TRUE(checkSolution(Info, P, Dir, Weak, &Why)) << Why;

    SolveResult<DistanceProblem> Lie = R;
    *Lie.States[Boundary == M.Entry ? M.Exit : M.Entry] += 2;
    EXPECT_FALSE(checkSolution(Info, P, Dir, Lie, &Why));
    EXPECT_FALSE(Why.empty());

    // An uncovered boundary is rejected even with closure intact.
    SolveResult<DistanceProblem> Bad = R;
    *Bad.States[Boundary] = 5;
    EXPECT_FALSE(checkSolution(Info, P, Dir, Bad, &Why));

    // A missing annotation on a flowed-into node is rejected.
    SolveResult<DistanceProblem> Gap = R;
    Gap.States[Boundary == M.Entry ? M.Exit : M.Entry].reset();
    EXPECT_FALSE(checkSolution(Info, P, Dir, Gap, &Why));
  }
}

TEST(HelpersTest, DefsAndUsesOfActions) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        j.next();
      }
    }
  )");
  const cj::CFGMethod &M = C.method("C", "main");
  CompVarMap Vars(M);
  EXPECT_GE(Vars.size(), 3u);
  EXPECT_GE(Vars.index("s"), 0);
  EXPECT_EQ(Vars.type(Vars.index("s")), "Set");
  EXPECT_EQ(Vars.index("nonexistent"), -1);

  std::set<std::string> Defs, Uses;
  for (const cj::CFGEdge &E : M.Edges) {
    if (const std::string *D = actionDef(E.Act))
      Defs.insert(*D);
    forEachActionUse(E.Act, [&](const std::string &U) { Uses.insert(U); });
  }
  EXPECT_TRUE(Defs.count("s"));
  EXPECT_TRUE(Defs.count("i"));
  EXPECT_TRUE(Defs.count("j"));
  EXPECT_TRUE(Uses.count("s")); // iterator() receiver.
  EXPECT_TRUE(Uses.count("i")); // copy source.
  EXPECT_TRUE(Uses.count("j")); // next() receiver.
}

TEST(HelpersTest, JoinUnionReportsChange) {
  BitVector A{false, true, false};
  BitVector B{true, true, false};
  EXPECT_TRUE(joinUnion(A, B));
  EXPECT_EQ(A, (BitVector{true, true, false}));
  EXPECT_FALSE(joinUnion(A, B));
}

} // namespace
