//===----------------------------------------------------------------------===//
// Tests for the whole-program Andersen points-to analysis: constraint
// generation, the round-robin solver and its single-pass closure
// validator, call-graph reachability, the instance-relatedness groups
// that justify alias-refined slicing, the escape lattice, and the
// budget/fault-injection hooks.
//===----------------------------------------------------------------------===//

#include "dataflow/PointsTo.h"

#include "dataflow/Escape.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;
using canvas::dftest::lineOf;

namespace {

/// Object index of the CompAlloc site on 1-based \p Line, or -1.
int allocAt(const PTSystem &Sys, unsigned Line) {
  for (size_t I = 0; I != Sys.Objects.size(); ++I)
    if (Sys.Objects[I].K == PTObject::Kind::CompAlloc &&
        Sys.Objects[I].Loc.Line == Line)
      return static_cast<int>(I);
  return -1;
}

unsigned countKind(const PTSystem &Sys, PTObject::Kind K) {
  unsigned N = 0;
  for (const PTObject &O : Sys.Objects)
    N += O.K == K;
  return N;
}

const char *SimpleClient = R"(
  class C {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      i.next();
    }
  }
)";

TEST(PointsToTest, GeneratesCoreUniverse) {
  Client C(SimpleClient);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);

  ASSERT_FALSE(Sys.Objects.empty());
  EXPECT_EQ(Sys.Objects[0].K, PTObject::Kind::Unknown);
  EXPECT_EQ(countKind(Sys, PTObject::Kind::CompAlloc), 1u);
  EXPECT_EQ(countKind(Sys, PTObject::Kind::CompDerived), 1u);
  EXPECT_EQ(countKind(Sys, PTObject::Kind::MainContext), 1u);
  EXPECT_TRUE(Sys.HasMain);
  EXPECT_EQ(Sys.MainName, "C::main");

  EXPECT_GE(Sys.nodeOf("C::main", "s"), 0);
  EXPECT_GE(Sys.nodeOf("C::main", "i"), 0);
  EXPECT_EQ(Sys.nodeOf("C::main", "nope"), -1);
  EXPECT_EQ(Sys.nodeOf("C::other", "s"), -1);
}

TEST(PointsToTest, SolvedSolutionIsClosedAndTamperedOneIsNot) {
  Client C(SimpleClient);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);
  PointsToSolution Sol = solveConstraints(Sys);
  EXPECT_GE(Sol.Iterations, 1u);

  int SNode = Sys.nodeOf("C::main", "s");
  int SObj = allocAt(Sys, lineOf(SimpleClient, "new Set()"));
  ASSERT_GE(SNode, 0);
  ASSERT_GE(SObj, 0);
  EXPECT_TRUE(Sol.pts(SNode).count(SObj));

  std::string Why;
  EXPECT_TRUE(checkSolutionClosed(Sys, Sol, Why)) << Why;

  // Hiding the allocation site from its variable breaks closure.
  PointsToSolution Tampered = Sol;
  Tampered.VarPts[SNode].erase(SObj);
  EXPECT_FALSE(checkSolutionClosed(Sys, Tampered, Why));
  EXPECT_FALSE(Why.empty());

  // So does a solution over the wrong node universe.
  PointsToSolution Short = Sol;
  Short.VarPts.pop_back();
  EXPECT_FALSE(checkSolutionClosed(Sys, Short, Why));

  // And one whose sets name objects that do not exist.
  PointsToSolution Rogue = Sol;
  Rogue.VarPts[SNode].insert(static_cast<int>(Sys.Objects.size()) + 7);
  EXPECT_FALSE(checkSolutionClosed(Sys, Rogue, Why));
}

TEST(PointsToTest, CopyPropagatesAndRelates) {
  const char *Src = R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        j.next();
      }
    }
  )";
  Client C(Src);
  PointsToResult R = analyzePointsTo(C.Prog, C.Spec);

  int INode = R.Sys.nodeOf("C::main", "i");
  int JNode = R.Sys.nodeOf("C::main", "j");
  ASSERT_GE(INode, 0);
  ASSERT_GE(JNode, 0);
  for (int Obj : R.Sol.pts(INode))
    EXPECT_TRUE(R.Sol.pts(JNode).count(Obj));

  const MethodAliasInfo *A = R.aliasFor("C::main");
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(A->related("i", "j"));
  EXPECT_TRUE(A->related("s", "i"));
}

TEST(PointsToTest, HeapFlowIsFieldSensitive) {
  const char *Src = R"(
    class Holder {
      Set a;
      Set b;
    }
    class C {
      void main() {
        Holder h = new Holder();
        Set s1 = new Set();
        Set s2 = new Set();
        h.a = s1;
        h.b = s2;
        Set x = h.a;
        x.add();
      }
    }
  )";
  Client C(Src);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);
  PointsToSolution Sol = solveConstraints(Sys);

  int XNode = Sys.nodeOf("C::main", "x");
  int S1Obj = allocAt(Sys, lineOf(Src, "Set s1"));
  int S2Obj = allocAt(Sys, lineOf(Src, "Set s2"));
  ASSERT_GE(XNode, 0);
  ASSERT_GE(S1Obj, 0);
  ASSERT_GE(S2Obj, 0);

  // x reads field a only: it sees s1's instance, never s2's.
  EXPECT_TRUE(Sol.pts(XNode).count(S1Obj));
  EXPECT_FALSE(Sol.pts(XNode).count(S2Obj));
}

TEST(PointsToTest, MainParametersComeFromTheUnknownWorld) {
  const char *Src = R"(
    class C {
      void main(Set s) {
        Iterator i = s.iterator();
        i.next();
      }
    }
  )";
  Client C(Src);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);
  PointsToSolution Sol = solveConstraints(Sys);
  int SNode = Sys.nodeOf("C::main", "s");
  ASSERT_GE(SNode, 0);
  // The driver supplies main's arguments: object 0 is in the set.
  EXPECT_TRUE(Sol.pts(SNode).count(0));
}

TEST(PointsToTest, ReachabilityFollowsResolvedCalls) {
  const char *Src = R"(
    class C {
      void main() {
        Set s = new Set();
        grow(s);
      }
      void grow(Set w) { w.add(); }
      void orphan() {
        Set t = new Set();
        t.add();
      }
    }
  )";
  Client C(Src);
  PointsToResult R = analyzePointsTo(C.Prog, C.Spec);

  EXPECT_TRUE(R.Reachable.count("C::main"));
  EXPECT_TRUE(R.Reachable.count("C::grow"));
  EXPECT_FALSE(R.Reachable.count("C::orphan"));
  EXPECT_EQ(R.Stats.ReachableMethods, 2u);
  EXPECT_EQ(R.Stats.TotalMethods, 3u);

  // Alias partitions exist for reachable methods only: an unreachable
  // method is never refined from its (empty) entry points-to sets.
  EXPECT_NE(R.aliasFor("C::grow"), nullptr);
  EXPECT_EQ(R.aliasFor("C::orphan"), nullptr);

  // The callee's parameter sees the caller's allocation site.
  int WNode = R.Sys.nodeOf("C::grow", "w");
  int SObj = allocAt(R.Sys, lineOf(Src, "Set s"));
  ASSERT_GE(WNode, 0);
  ASSERT_GE(SObj, 0);
  EXPECT_TRUE(R.Sol.pts(WNode).count(SObj));
}

TEST(PointsToTest, AliasGroupsSplitHeapPipelines) {
  const char *Src = R"(
    class Stash {
      Set s;
    }
    class C {
      void main() {
        Stash u = new Stash();
        Stash v = new Stash();
        Set s1 = new Set();
        Set s2 = new Set();
        u.s = s1;
        v.s = s2;
        Iterator i1 = s1.iterator();
        Iterator i2 = s2.iterator();
        i1.next();
        i2.next();
      }
    }
  )";
  Client C(Src);
  PointsToResult R = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = R.aliasFor("C::main");
  ASSERT_NE(A, nullptr);

  // Each pipeline stays a group of its own even though both Sets rest
  // in the heap: the two Stash instances are distinct allocation sites.
  EXPECT_TRUE(A->related("s1", "i1"));
  EXPECT_TRUE(A->related("s2", "i2"));
  EXPECT_FALSE(A->related("s1", "s2"));
  EXPECT_FALSE(A->related("i1", "i2"));
  EXPECT_FALSE(A->related("s1", "i2"));
}

TEST(PointsToTest, SharedStashMergesPipelines) {
  const char *Src = R"(
    class Stash {
      Set s;
    }
    class C {
      void main() {
        Stash u = new Stash();
        Set s1 = new Set();
        Set s2 = new Set();
        u.s = s1;
        u.s = s2;
        Iterator i1 = s1.iterator();
        Iterator i2 = s2.iterator();
        Set x = u.s;
        Iterator j = x.iterator();
        i1.next();
        i2.next();
        j.next();
      }
    }
  )";
  Client C(Src);
  PointsToResult R = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = R.aliasFor("C::main");
  ASSERT_NE(A, nullptr);

  // x may denote either instance, so it relates both pipelines — and
  // through it they relate each other.
  EXPECT_TRUE(A->related("x", "s1"));
  EXPECT_TRUE(A->related("x", "s2"));
  EXPECT_TRUE(A->related("s1", "s2"));
}

TEST(PointsToTest, EscapeLatticeClassifiesSites) {
  const char *Src = R"(
    class Holder {
      Set s;
    }
    class C {
      void main() {
        Set loc = new Set();
        Iterator i = loc.iterator();
        i.next();
        Set esc = new Set();
        grow(esc);
        Holder h = new Holder();
        Set heap = new Set();
        h.s = heap;
      }
      void grow(Set w) { w.add(); }
    }
  )";
  Client C(Src);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);
  PointsToSolution Sol = solveConstraints(Sys);
  EscapeResult E = classifyEscapes(Sys, Sol);

  int Loc = allocAt(Sys, lineOf(Src, "Set loc"));
  int Esc = allocAt(Sys, lineOf(Src, "Set esc"));
  int Heap = allocAt(Sys, lineOf(Src, "Set heap"));
  ASSERT_GE(Loc, 0);
  ASSERT_GE(Esc, 0);
  ASSERT_GE(Heap, 0);

  EXPECT_EQ(E.Sites.at(Loc), EscapeClass::MethodLocal);
  EXPECT_EQ(E.Sites.at(Esc), EscapeClass::ArgEscaping);
  EXPECT_EQ(E.Sites.at(Heap), EscapeClass::HeapEscaping);
  EXPECT_EQ(E.NumLocal, 1u);
  EXPECT_EQ(E.NumArg, 1u);
  EXPECT_EQ(E.NumHeap, 1u);

  EXPECT_STREQ(escapeClassName(EscapeClass::MethodLocal), "method-local");
  EXPECT_STREQ(escapeClassName(EscapeClass::ArgEscaping), "arg-escaping");
  EXPECT_STREQ(escapeClassName(EscapeClass::HeapEscaping), "heap-escaping");
}

TEST(PointsToTest, SolverHonorsIterationBudget) {
  Client C(SimpleClient);
  PTSystem Sys = generateConstraints(C.Prog, C.Spec);
  support::StageBudget B;
  B.MaxIterations = 1;
  support::CancelToken Tok(B, "points-to");
  try {
    solveConstraints(Sys, &Tok);
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::BudgetIterations);
  }
}

TEST(PointsToTest, InjectedFaultFiresAtTheProbeSite) {
  Client C(SimpleClient);
  support::setFaultPlan({"points-to", 1, support::FaultKind::Throw});
  try {
    analyzePointsTo(C.Prog, C.Spec);
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::InjectedFault);
  }
  support::clearFaultPlan();
  // The fired plan stays disarmed: the next analysis is clean.
  PointsToResult R = analyzePointsTo(C.Prog, C.Spec);
  EXPECT_GT(R.Stats.Constraints, 0u);
}

} // namespace
