//===----------------------------------------------------------------------===//
// Tests for component liveness and dead-store elimination: dead copy
// removal, copy-chain liveness, retained-variable computation, and the
// guarantee that call actions survive even when their results die.
//===----------------------------------------------------------------------===//

#include "dataflow/Liveness.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;

namespace {

struct DSERun {
  cj::CFGMethod M;
  DeadStoreStats Stats;
  std::vector<std::string> Retained;

  DSERun(Client &C, const char *ClassName, const char *MethodName,
         bool KeepCallResults = false)
      : M(C.method(ClassName, MethodName)) {
    CFGInfo Info(M);
    LivenessResult L = analyzeLiveness(M, Info, false);
    Stats = eliminateDeadStores(M, L, KeepCallResults, Retained);
  }

  bool retains(const char *V) const {
    return std::find(Retained.begin(), Retained.end(), V) != Retained.end();
  }
  unsigned nops() const {
    unsigned N = 0;
    for (const cj::CFGEdge &E : M.Edges)
      N += E.Act.K == cj::Action::Kind::Nop;
    return N;
  }
};

TEST(LivenessTest, DeadCopyIsRemoved) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        i.next();
      }
    }
  )");
  DSERun R(C, "C", "main");
  EXPECT_EQ(R.Stats.StoresRemoved, 1u); // j = i.
  EXPECT_TRUE(R.retains("s"));
  EXPECT_TRUE(R.retains("i"));
  EXPECT_FALSE(R.retains("j"));
  EXPECT_EQ(R.Stats.VarsDropped, 1u);
}

TEST(LivenessTest, CopyChainStaysLiveWhenUsed) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        j.next();
      }
    }
  )");
  DSERun R(C, "C", "main");
  EXPECT_EQ(R.Stats.StoresRemoved, 0u);
  EXPECT_TRUE(R.retains("i"));
  EXPECT_TRUE(R.retains("j"));
  EXPECT_EQ(R.Stats.VarsDropped, 0u);
}

TEST(LivenessTest, DeadCallResultKeepsCallDropsVariable) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
      }
    }
  )");
  DSERun R(C, "C", "main");
  // The iterator() call must survive (it could carry requires checks),
  // but its never-used result variable is dropped from instantiation.
  EXPECT_EQ(R.Stats.StoresRemoved, 0u);
  bool HasIteratorCall = false;
  for (const cj::CFGEdge &E : R.M.Edges)
    HasIteratorCall |= E.Act.Callee == "iterator";
  EXPECT_TRUE(HasIteratorCall);
  EXPECT_TRUE(R.retains("s"));
  EXPECT_FALSE(R.retains("i"));
  EXPECT_EQ(R.Stats.VarsDropped, 1u);
}

TEST(LivenessTest, KeepCallResultsRetainsDeadResults) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
      }
    }
  )");
  DSERun R(C, "C", "main", /*KeepCallResults=*/true);
  EXPECT_TRUE(R.retains("i"));
  EXPECT_EQ(R.Stats.VarsDropped, 0u);
}

TEST(LivenessTest, OverwrittenBeforeUseIsDead) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        j = s.iterator();
        j.next();
      }
    }
  )");
  DSERun R(C, "C", "main");
  // j = i is overwritten by the second iterator() before any use.
  EXPECT_EQ(R.Stats.StoresRemoved, 1u);
  EXPECT_FALSE(R.retains("i"));
}

TEST(LivenessTest, LoopUseKeepsStoreLive) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        while (*) { j.next(); }
      }
    }
  )");
  DSERun R(C, "C", "main");
  EXPECT_EQ(R.Stats.StoresRemoved, 0u);
  EXPECT_TRUE(R.retains("j"));
  EXPECT_TRUE(R.retains("i"));
}

} // namespace
