//===----------------------------------------------------------------------===//
// Tests for instance slicing: independent pipelines split, copies and
// cross-variable calls merge, parameters group together, and the Stage-0
// gates force a single slice.
//===----------------------------------------------------------------------===//

#include "dataflow/Slicing.h"

#include "dataflow/Liveness.h"
#include "dataflow/PointsTo.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;

namespace {

/// Runs liveness + DSE to get the retained set, then slices it.
struct SliceRun {
  cj::CFGMethod M;
  std::vector<std::string> Retained;
  SliceResult R;

  SliceRun(Client &C, const char *ClassName, const char *MethodName,
           bool HasUninitUses = false, bool AbsReadsRetSources = false,
           const MethodAliasInfo *Alias = nullptr)
      : M(C.method(ClassName, MethodName)) {
    CFGInfo Info(M);
    LivenessResult L = analyzeLiveness(M, Info, false);
    eliminateDeadStores(M, L, false, Retained);
    R = computeSlices(M, Retained, HasUninitUses, AbsReadsRetSources, Alias);
  }

  /// Index of the slice containing \p V, or -1.
  int sliceOf(const char *V) const {
    for (size_t S = 0; S != R.Slices.size(); ++S)
      for (const std::string &Member : R.Slices[S])
        if (Member == V)
          return static_cast<int>(S);
    return -1;
  }
};

const char *TwoPipelines = R"(
  class C {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      Set t = new Set();
      Iterator j = t.iterator();
      i.next();
      j.next();
    }
  }
)";

TEST(SlicingTest, IndependentPipelinesSplit) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 2u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
  EXPECT_EQ(S.sliceOf("s"), S.sliceOf("i"));
  EXPECT_EQ(S.sliceOf("t"), S.sliceOf("j"));
  EXPECT_NE(S.sliceOf("s"), S.sliceOf("t"));
}

TEST(SlicingTest, CopyMergesSlices) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Set t = new Set();
        Iterator j = t.iterator();
        j = i;
        j.next();
      }
    }
  )");
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, CrossVariableCallMergesReceiverAndArgument) {
  Client C(R"(
    class C {
      void main() {
        Factory f = new Factory();
        Widget a = f.make();
        Factory g = new Factory();
        Widget b = g.make();
        a.combine(b);
      }
    }
  )",
           easl::impSpecSource());
  SliceRun S(C, "C", "main");
  // combine(b) relates a and b, transitively joining both factories.
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, SeparateFactoriesSplitWithoutCombine) {
  Client C(R"(
    class C {
      void main() {
        Factory f = new Factory();
        Widget a = f.make();
        Factory g = new Factory();
        Widget b = g.make();
        a.combine(a);
        b.combine(b);
      }
    }
  )",
           easl::impSpecSource());
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 2u);
  EXPECT_EQ(S.sliceOf("f"), S.sliceOf("a"));
  EXPECT_EQ(S.sliceOf("g"), S.sliceOf("b"));
  EXPECT_NE(S.sliceOf("a"), S.sliceOf("b"));
}

TEST(SlicingTest, ParametersShareASlice) {
  Client C(R"(
    class C {
      void helper(Set s, Set t) {
        Iterator i = s.iterator();
        Iterator j = t.iterator();
        i.next();
        j.next();
      }
    }
  )");
  SliceRun S(C, "C", "helper");
  // s and t may alias at entry, so the parameter group keeps both
  // pipelines together.
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, UninitUsesForceSingleSlice) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main", /*HasUninitUses=*/true);
  ASSERT_EQ(S.R.Slices.size(), 1u);
  ASSERT_NE(S.R.ForcedSingleReason, nullptr);
  EXPECT_NE(std::string(S.R.ForcedSingleReason).find("uninitialized"),
            std::string::npos);
}

TEST(SlicingTest, RetSourcesForceSingleSlice) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main", false, /*AbsReadsRetSources=*/true);
  ASSERT_EQ(S.R.Slices.size(), 1u);
  ASSERT_NE(S.R.ForcedSingleReason, nullptr);
}

//===----------------------------------------------------------------------===//
// Table-driven coverage of every force-off gate: each row names the
// gate, the client (or flag) that trips it, and the reason fragment the
// slicer must report alongside its single slice.
//===----------------------------------------------------------------------===//

const char *HeapStoreClient = R"(
  class Holder {
    Set s;
  }
  class C {
    void main() {
      Holder h = new Holder();
      Set a = new Set();
      h.s = a;
      Iterator i = a.iterator();
      i.next();
      Set b = new Set();
      Iterator j = b.iterator();
      j.next();
    }
  }
)";

const char *HeapLoadClient = R"(
  class Holder {
    Set s;
  }
  class C {
    void main() {
      Holder h = new Holder();
      Set a = new Set();
      h.s = a;
      Set x = h.s;
      x.add();
    }
  }
)";

// "b = null" lowers to havoc(b) without any heap component reference,
// so it trips the havoc gate, not the heap gate.
const char *NullHavocClient = R"(
  class C {
    void main() {
      Set a = new Set();
      Iterator i = a.iterator();
      i.next();
      Set b = new Set();
      b = null;
      b.add();
      Set c = new Set();
      Iterator j = c.iterator();
      j.next();
    }
  }
)";

struct GateCase {
  const char *Name;
  const char *Source; ///< nullptr: the TwoPipelines client.
  bool HasUninitUses;
  bool AbsReadsRetSources;
  const char *ReasonFragment;
};

TEST(SlicingTest, EveryForceOffGateReportsItsReason) {
  const GateCase Cases[] = {
      {"uninit-uses", nullptr, true, false, "uninitialized"},
      {"ret-sources", nullptr, false, true, "ret"},
      {"heap-store", HeapStoreClient, false, false, "heap"},
      {"heap-load", HeapLoadClient, false, false, "heap"},
      {"null-havoc", NullHavocClient, false, false, "havocked"},
  };
  for (const GateCase &G : Cases) {
    Client C(G.Source ? G.Source : TwoPipelines);
    SliceRun S(C, "C", "main", G.HasUninitUses, G.AbsReadsRetSources);
    ASSERT_EQ(S.R.Slices.size(), 1u) << G.Name;
    ASSERT_NE(S.R.ForcedSingleReason, nullptr) << G.Name;
    EXPECT_NE(std::string(S.R.ForcedSingleReason).find(G.ReasonFragment),
              std::string::npos)
        << G.Name << ": " << S.R.ForcedSingleReason;
    // Forced-off still covers every retained variable.
    EXPECT_EQ(S.R.Slices[0].size(), S.Retained.size()) << G.Name;
  }
}

//===----------------------------------------------------------------------===//
// The "$ret" merge: the return slot joins the parameter group exactly
// when some edge assigns it.
//===----------------------------------------------------------------------===//

// Slices the method over ALL its component variables (no dead-store
// elimination first) — a never-read "$ret" would otherwise be dropped
// from the retained set before computeSlices sees it.
SliceResult sliceAllVars(const cj::CFGMethod &M) {
  std::vector<std::string> Retained;
  for (const auto &[Name, Type] : M.CompVars)
    Retained.push_back(Name);
  return computeSlices(M, Retained, false, false, nullptr);
}

int sliceIn(const SliceResult &R, const char *V) {
  for (size_t S = 0; S != R.Slices.size(); ++S)
    for (const std::string &Member : R.Slices[S])
      if (Member == V)
        return static_cast<int>(S);
  return -1;
}

TEST(SlicingTest, ReturnSlotJoinsParamsWhenAssigned) {
  Client C(R"(
    class C {
      Set pick(Set s, Set t) {
        Iterator i = s.iterator();
        i.next();
        return s;
      }
    }
  )");
  cj::CFGMethod M = C.method("C", "pick");
  SliceResult R = sliceAllVars(M);
  ASSERT_EQ(R.Slices.size(), 1u);
  EXPECT_EQ(sliceIn(R, "$ret"), sliceIn(R, "s"));
}

TEST(SlicingTest, UnassignedReturnSlotStaysApartFromParams) {
  // A Set-returning method with no return statement: "$ret" is retained
  // (it is a component variable) but no action ever defines it, so it
  // must not be glued to the parameter group.
  Client C(R"(
    class C {
      Set sink(Set s, Set t) {
        Iterator i = s.iterator();
        i.next();
        t.add();
      }
    }
  )");
  cj::CFGMethod M = C.method("C", "sink");
  SliceResult R = sliceAllVars(M);
  ASSERT_NE(sliceIn(R, "$ret"), -1);
  EXPECT_NE(sliceIn(R, "$ret"), sliceIn(R, "s"));
  EXPECT_EQ(sliceIn(R, "s"), sliceIn(R, "t")); // Params still co-slice.
  EXPECT_EQ(R.Slices.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Alias-refined slicing: a whole-program MethodAliasInfo replaces the
// heap/havoc gates and the syntactic merges.
//===----------------------------------------------------------------------===//

TEST(SlicingTest, AliasInfoLiftsTheHeapGate) {
  Client C(HeapStoreClient);
  PointsToResult PT = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = PT.aliasFor("C::main");
  ASSERT_NE(A, nullptr);

  // Unrefined: the heap store forces one slice. Refined: the points-to
  // groups prove the two pipelines independent.
  SliceRun Plain(C, "C", "main");
  ASSERT_EQ(Plain.R.Slices.size(), 1u);
  ASSERT_NE(Plain.R.ForcedSingleReason, nullptr);

  SliceRun Refined(C, "C", "main", false, false, A);
  EXPECT_EQ(Refined.R.ForcedSingleReason, nullptr);
  ASSERT_EQ(Refined.R.Slices.size(), 2u);
  EXPECT_EQ(Refined.sliceOf("a"), Refined.sliceOf("i"));
  EXPECT_EQ(Refined.sliceOf("b"), Refined.sliceOf("j"));
  EXPECT_NE(Refined.sliceOf("a"), Refined.sliceOf("b"));
}

TEST(SlicingTest, AliasInfoKeepsHeapRelatedVariablesTogether) {
  // One Stash shared by both Sets: the points-to groups must keep the
  // pipelines merged even under refinement.
  const char *Src = R"(
    class Stash {
      Set s;
    }
    class C {
      void main() {
        Stash u = new Stash();
        Set a = new Set();
        Set b = new Set();
        u.s = a;
        u.s = b;
        Set x = u.s;
        x.add();
        Iterator i = a.iterator();
        Iterator j = b.iterator();
        i.next();
        j.next();
      }
    }
  )";
  Client C(Src);
  PointsToResult PT = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = PT.aliasFor("C::main");
  ASSERT_NE(A, nullptr);
  SliceRun Refined(C, "C", "main", false, false, A);
  EXPECT_EQ(Refined.R.Slices.size(), 1u);
}

TEST(SlicingTest, UninitGateSurvivesAliasRefinement) {
  Client C(HeapStoreClient);
  PointsToResult PT = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = PT.aliasFor("C::main");
  ASSERT_NE(A, nullptr);
  SliceRun S(C, "C", "main", /*HasUninitUses=*/true, false, A);
  ASSERT_EQ(S.R.Slices.size(), 1u);
  ASSERT_NE(S.R.ForcedSingleReason, nullptr);
  EXPECT_NE(std::string(S.R.ForcedSingleReason).find("uninitialized"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// SliceCostModel: the acceptance gate on alias-refined partitions.
//===----------------------------------------------------------------------===//

/// The cmp spec's instrumentation families: stale(Iterator),
/// mutx(Iterator, Iterator), same(Iterator, Set).
SliceCostModel cmpCostModel() {
  SliceCostModel Cost;
  Cost.FamilySlotTypes = {
      {"Iterator"}, {"Iterator", "Iterator"}, {"Iterator", "Set"}};
  return Cost;
}

TEST(SlicingTest, CostModelProjectsBoolVarCounts) {
  SliceCostModel Cost = cmpCostModel();
  // One pipeline: 1 stale + 0 mutx (diagonal folds) + 1 same.
  EXPECT_EQ(Cost.projectedBoolVars({{"s", "Set"}, {"i", "Iterator"}}), 2.0);
  // Four pipelines: 4 stale + 4·3 mutx + 4·4 same.
  std::vector<std::pair<std::string, std::string>> Four;
  for (int K = 0; K != 4; ++K) {
    Four.push_back({"s" + std::to_string(K), "Set"});
    Four.push_back({"i" + std::to_string(K), "Iterator"});
  }
  EXPECT_EQ(Cost.projectedBoolVars(Four), 32.0);
  // Unknown types and wider families contribute nothing.
  Cost.FamilySlotTypes.push_back({"A", "B", "C"});
  EXPECT_EQ(Cost.projectedBoolVars({{"x", "Widget"}}), 0.0);
}

TEST(SlicingTest, CostGateRefusesSmallAliasPartition) {
  // Two 2-variable pipelines: the partition is sound, but the projected
  // reduction (8² − 2·2² = 56) is below one extra slice's overhead.
  Client C(HeapStoreClient);
  PointsToResult PT = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = PT.aliasFor("C::main");
  ASSERT_NE(A, nullptr);
  cj::CFGMethod M = C.method("C", "main");
  CFGInfo Info(M);
  LivenessResult L = analyzeLiveness(M, Info, false);
  std::vector<std::string> Retained;
  eliminateDeadStores(M, L, false, Retained);

  SliceCostModel Cost = cmpCostModel();
  SliceResult R = computeSlices(M, Retained, false, false, A, &Cost);
  ASSERT_EQ(R.Slices.size(), 1u);
  ASSERT_NE(R.ForcedSingleReason, nullptr);
  EXPECT_NE(std::string(R.ForcedSingleReason).find("overhead"),
            std::string::npos);

  // Without the cost model the same partition is accepted.
  SliceResult Ungated = computeSlices(M, Retained, false, false, A);
  EXPECT_EQ(Ungated.Slices.size(), 2u);
}

TEST(SlicingTest, CostGateAcceptsLargeAliasPartition) {
  // Four 2-variable pipelines: 32² − 4·2² = 1008 ≥ 3·256 clears the
  // gate, so the partition survives with the cost model attached.
  Client C(R"(
    class Holder {
      Set s;
    }
    class C {
      void main() {
        Holder h1 = new Holder();
        Holder h2 = new Holder();
        Holder h3 = new Holder();
        Holder h4 = new Holder();
        Set a = new Set();
        Set b = new Set();
        Set c = new Set();
        Set d = new Set();
        h1.s = a;
        h2.s = b;
        h3.s = c;
        h4.s = d;
        Iterator i = a.iterator();
        Iterator j = b.iterator();
        Iterator k = c.iterator();
        Iterator l = d.iterator();
        i.next();
        j.next();
        k.next();
        l.next();
      }
    }
  )");
  PointsToResult PT = analyzePointsTo(C.Prog, C.Spec);
  const MethodAliasInfo *A = PT.aliasFor("C::main");
  ASSERT_NE(A, nullptr);
  cj::CFGMethod M = C.method("C", "main");
  CFGInfo Info(M);
  LivenessResult L = analyzeLiveness(M, Info, false);
  std::vector<std::string> Retained;
  eliminateDeadStores(M, L, false, Retained);

  SliceCostModel Cost = cmpCostModel();
  SliceResult R = computeSlices(M, Retained, false, false, A, &Cost);
  EXPECT_EQ(R.ForcedSingleReason, nullptr);
  EXPECT_EQ(R.Slices.size(), 4u);
}

TEST(SlicingTest, EmptyRetainedYieldsNoSlices) {
  Client C(R"(
    class C {
      void main() { }
    }
  )");
  SliceRun S(C, "C", "main");
  EXPECT_TRUE(S.Retained.empty());
  EXPECT_TRUE(S.R.Slices.empty());
}

} // namespace
