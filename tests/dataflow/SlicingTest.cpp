//===----------------------------------------------------------------------===//
// Tests for instance slicing: independent pipelines split, copies and
// cross-variable calls merge, parameters group together, and the Stage-0
// gates force a single slice.
//===----------------------------------------------------------------------===//

#include "dataflow/Slicing.h"

#include "dataflow/Liveness.h"

#include "ClientHelper.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::dataflow;
using canvas::dftest::Client;

namespace {

/// Runs liveness + DSE to get the retained set, then slices it.
struct SliceRun {
  cj::CFGMethod M;
  std::vector<std::string> Retained;
  SliceResult R;

  SliceRun(Client &C, const char *ClassName, const char *MethodName,
           bool HasUninitUses = false, bool AbsReadsRetSources = false)
      : M(C.method(ClassName, MethodName)) {
    CFGInfo Info(M);
    LivenessResult L = analyzeLiveness(M, Info, false);
    eliminateDeadStores(M, L, false, Retained);
    R = computeSlices(M, Retained, HasUninitUses, AbsReadsRetSources);
  }

  /// Index of the slice containing \p V, or -1.
  int sliceOf(const char *V) const {
    for (size_t S = 0; S != R.Slices.size(); ++S)
      for (const std::string &Member : R.Slices[S])
        if (Member == V)
          return static_cast<int>(S);
    return -1;
  }
};

const char *TwoPipelines = R"(
  class C {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      Set t = new Set();
      Iterator j = t.iterator();
      i.next();
      j.next();
    }
  }
)";

TEST(SlicingTest, IndependentPipelinesSplit) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 2u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
  EXPECT_EQ(S.sliceOf("s"), S.sliceOf("i"));
  EXPECT_EQ(S.sliceOf("t"), S.sliceOf("j"));
  EXPECT_NE(S.sliceOf("s"), S.sliceOf("t"));
}

TEST(SlicingTest, CopyMergesSlices) {
  Client C(R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Set t = new Set();
        Iterator j = t.iterator();
        j = i;
        j.next();
      }
    }
  )");
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, CrossVariableCallMergesReceiverAndArgument) {
  Client C(R"(
    class C {
      void main() {
        Factory f = new Factory();
        Widget a = f.make();
        Factory g = new Factory();
        Widget b = g.make();
        a.combine(b);
      }
    }
  )",
           easl::impSpecSource());
  SliceRun S(C, "C", "main");
  // combine(b) relates a and b, transitively joining both factories.
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, SeparateFactoriesSplitWithoutCombine) {
  Client C(R"(
    class C {
      void main() {
        Factory f = new Factory();
        Widget a = f.make();
        Factory g = new Factory();
        Widget b = g.make();
        a.combine(a);
        b.combine(b);
      }
    }
  )",
           easl::impSpecSource());
  SliceRun S(C, "C", "main");
  ASSERT_EQ(S.R.Slices.size(), 2u);
  EXPECT_EQ(S.sliceOf("f"), S.sliceOf("a"));
  EXPECT_EQ(S.sliceOf("g"), S.sliceOf("b"));
  EXPECT_NE(S.sliceOf("a"), S.sliceOf("b"));
}

TEST(SlicingTest, ParametersShareASlice) {
  Client C(R"(
    class C {
      void helper(Set s, Set t) {
        Iterator i = s.iterator();
        Iterator j = t.iterator();
        i.next();
        j.next();
      }
    }
  )");
  SliceRun S(C, "C", "helper");
  // s and t may alias at entry, so the parameter group keeps both
  // pipelines together.
  ASSERT_EQ(S.R.Slices.size(), 1u);
  EXPECT_EQ(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, UninitUsesForceSingleSlice) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main", /*HasUninitUses=*/true);
  ASSERT_EQ(S.R.Slices.size(), 1u);
  ASSERT_NE(S.R.ForcedSingleReason, nullptr);
  EXPECT_NE(std::string(S.R.ForcedSingleReason).find("uninitialized"),
            std::string::npos);
}

TEST(SlicingTest, RetSourcesForceSingleSlice) {
  Client C(TwoPipelines);
  SliceRun S(C, "C", "main", false, /*AbsReadsRetSources=*/true);
  ASSERT_EQ(S.R.Slices.size(), 1u);
  ASSERT_NE(S.R.ForcedSingleReason, nullptr);
}

TEST(SlicingTest, EmptyRetainedYieldsNoSlices) {
  Client C(R"(
    class C {
      void main() { }
    }
  )");
  SliceRun S(C, "C", "main");
  EXPECT_TRUE(S.Retained.empty());
  EXPECT_TRUE(S.R.Slices.empty());
}

} // namespace
