//===----------------------------------------------------------------------===//
// Shared helper for the dataflow tests: parses a CJ client against a
// built-in spec and exposes its CFG methods.
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TESTS_DATAFLOW_CLIENTHELPER_H
#define CANVAS_TESTS_DATAFLOW_CLIENTHELPER_H

#include "client/CFG.h"
#include "client/Parser.h"
#include "easl/Builtins.h"
#include "easl/Parser.h"
#include "wp/Abstraction.h"

#include <gtest/gtest.h>

#include <cstring>

namespace canvas {
namespace dftest {

struct Client {
  DiagnosticEngine Diags;
  easl::Spec Spec;
  cj::Program Prog;
  cj::ClientCFG CFG;

  explicit Client(const char *Src, const char *SpecSrc = nullptr) {
    Spec = easl::parseSpec(SpecSrc ? SpecSrc : easl::cmpSpecSource(), Diags);
    Prog = cj::parseProgram(Src, Diags);
    CFG = cj::buildCFG(Prog, Spec, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  }

  const cj::CFGMethod &method(const char *ClassName, const char *MethodName) {
    const cj::CFGMethod *M = CFG.findMethod(ClassName, MethodName);
    EXPECT_NE(M, nullptr) << ClassName << "::" << MethodName << " not found";
    return *M;
  }

  wp::DerivedAbstraction derive() {
    wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    return Abs;
  }
};

/// 1-based line of the first occurrence of \p Needle in \p Src.
inline unsigned lineOf(const char *Src, const char *Needle) {
  const char *P = std::strstr(Src, Needle);
  EXPECT_NE(P, nullptr) << "needle '" << Needle << "' not in source";
  if (!P)
    return 0;
  unsigned Line = 1;
  for (const char *C = Src; C != P; ++C)
    Line += *C == '\n';
  return Line;
}

} // namespace dftest
} // namespace canvas

#endif // CANVAS_TESTS_DATAFLOW_CLIENTHELPER_H
