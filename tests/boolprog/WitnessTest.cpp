//===----------------------------------------------------------------------===//
// Tests for witness traces: every Potential verdict of the
// interprocedural IFDS engine and the sliced intraprocedural engine
// carries a call/return-matched evidence path, and the concrete replay
// checker (core/Replay.h) validates each one — either the requires
// clause concretely fails along the trace, or the trace crosses a
// nondeterministic choice that explains the may-alarm.
//===----------------------------------------------------------------------===//

#include "boolprog/Interprocedural.h"

#include "client/Parser.h"
#include "core/Certifier.h"
#include "core/Replay.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::bp;

namespace {

struct Run {
  easl::Spec Spec;
  cj::Program Prog;
  wp::DerivedAbstraction Abs;
  cj::ClientCFG CFG;
  InterResult R;
};

std::unique_ptr<Run> analyze(const char *ClientSrc) {
  auto Out = std::make_unique<Run>();
  Out->Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  Out->Prog = cj::parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Out->Abs = wp::deriveAbstraction(Out->Spec, Diags);
  Out->CFG = cj::buildCFG(Out->Prog, Out->Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  const cj::CFGMethod *Main = Out->CFG.mainCFG();
  EXPECT_NE(Main, nullptr);
  Out->R = analyzeInterproc(Out->Abs, Out->CFG, *Main, Diags);
  return Out;
}

/// The witness of every flagged check must be structurally valid and
/// replay-validated against the concrete interpreter.
void expectValidWitness(const easl::Spec &Spec, const cj::ClientCFG &CFG,
                        const core::CheckRecord &C) {
  ASSERT_FALSE(C.Witness.empty())
      << C.Method << " " << C.What << ": flagged without a witness";
  EXPECT_TRUE(C.Witness.callReturnMatched()) << C.Witness.str();
  EXPECT_EQ(C.Witness.Steps.back().K, core::WitnessStep::Kind::Check);
  EXPECT_TRUE(C.Witness.Steps.back().Loc.isValid());
  core::ReplayResult RR = core::replayWitness(Spec, CFG, C);
  EXPECT_FALSE(RR.Malformed) << RR.Detail << "\n" << C.Witness.str();
  EXPECT_TRUE(RR.validated()) << RR.Detail << "\n" << C.Witness.str();
}

unsigned validateAllFlagged(const Run &R) {
  unsigned N = 0;
  for (const core::CheckRecord &C : R.R.Checks)
    if (C.Outcome == CheckOutcome::Potential ||
        C.Outcome == CheckOutcome::Definite) {
      expectValidWitness(R.Spec, R.CFG, C);
      ++N;
    }
  return N;
}

TEST(WitnessTest, DirectViolationReplaysConcretely) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        v.add();
        i.next();
      }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
  // This particular trace needs no nondeterminism: the clause fails
  // concretely on replay.
  for (const core::CheckRecord &C : R->R.Checks)
    if (C.Outcome == CheckOutcome::Potential) {
      EXPECT_TRUE(core::replayWitness(R->Spec, R->CFG, C).Violated);
    }
}

TEST(WitnessTest, CalleeMutationWitnessDescendsIntoCallee) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )");
  ASSERT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
  const core::CheckRecord *Flagged = nullptr;
  for (const core::CheckRecord &C : R->R.Checks)
    if (C.Outcome == CheckOutcome::Potential)
      Flagged = &C;
  ASSERT_NE(Flagged, nullptr);
  // The story enters mutate() and comes back: Call and Return steps
  // bracketing the s.add() step, then the flagged check.
  bool SawCall = false, SawReturn = false, SawCalleeStep = false;
  for (const core::WitnessStep &S : Flagged->Witness.Steps) {
    SawCall |= S.K == core::WitnessStep::Kind::Call;
    SawReturn |= S.K == core::WitnessStep::Kind::Return;
    SawCalleeStep |= S.K == core::WitnessStep::Kind::Step &&
                     S.Method == "M::mutate";
  }
  EXPECT_TRUE(SawCall && SawReturn && SawCalleeStep)
      << Flagged->Witness.str();
}

TEST(WitnessTest, RecursionWitnessReplays) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        rec(v);
        i.next();
      }
      void rec(Set s) {
        if (*) { s.add(); rec(s); }
      }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
}

TEST(WitnessTest, MutualRecursionWitnessReplays) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        a(v);
        i.next();
      }
      void a(Set s) { if (*) { b(s); } }
      void b(Set t) { t.add(); if (*) { a(t); } }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
}

TEST(WitnessTest, GhostAliasingAcrossCallReplays) {
  // The callee mutates through one formal while the caller's iterator
  // watches the same object through the other: the callee-side fact
  // lives on ghost variables and must translate back at the return.
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        touch(v, v);
        i.next();
      }
      void touch(Set a, Set b) { a.add(); }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
}

TEST(WitnessTest, SafeProgramsCarryNoWitnesses) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        i.next();
        noop(v);
        i.next();
      }
      void noop(Set s) { }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 0u) << R->R.str();
  for (const core::CheckRecord &C : R->R.Checks)
    EXPECT_TRUE(C.Witness.empty());
}

TEST(WitnessTest, WorklistBugWitnessReplays) {
  auto R = analyze(R"(
    class Make {
      void main() {
        Set work = new Set();
        Iterator i = work.iterator();
        while (*) {
          i.next();
          processItem(work);
        }
      }
      void processItem(Set s) {
        if (*) { s.add(); }
      }
    }
  )");
  EXPECT_EQ(validateAllFlagged(*R), 1u) << R->R.str();
}

//===--------------------------------------------------------------------===//
// Certifier integration: the sliced intraprocedural path attaches
// witnesses remapped onto the original (untransformed) CFG.
//===--------------------------------------------------------------------===//

void validateCertifierReport(core::EngineKind Engine, const char *ClientSrc,
                             unsigned ExpectFlagged) {
  DiagnosticEngine Diags;
  core::Certifier Cert(easl::cmpSpecSource(), Engine, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  cj::Program Prog = cj::parseProgram(ClientSrc, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  core::CertificationReport Report = Cert.certify(Prog, Diags);
  cj::ClientCFG CFG = cj::buildCFG(Prog, Cert.spec(), Diags);
  unsigned Flagged = 0;
  for (const core::CheckRecord &C : Report.Checks)
    if (C.Outcome == core::CheckOutcome::Potential ||
        C.Outcome == core::CheckOutcome::Definite) {
      expectValidWitness(Cert.spec(), CFG, C);
      ++Flagged;
    }
  EXPECT_EQ(Flagged, ExpectFlagged) << Report.str();
}

TEST(WitnessTest, SlicedIntraCertifierWitnessReplays) {
  // Two independent iterator/set pairs force the pre-analysis to slice;
  // only the second pair is buggy.
  validateCertifierReport(core::EngineKind::SCMPIntra, R"(
    class M {
      void main() {
        Set a = new Set();
        Iterator i = a.iterator();
        i.next();
        Set b = new Set();
        Iterator j = b.iterator();
        b.add();
        j.next();
      }
    }
  )",
                          1);
}

TEST(WitnessTest, IntraClientCallWitnessCrossesNondet) {
  // The intraprocedural engine summarizes client calls as clobbers; the
  // witness crosses the call as a plain step and the replay checker
  // accepts it as a nondeterministic choice.
  validateCertifierReport(core::EngineKind::SCMPIntra, R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        helper(v);
        i.next();
      }
      void helper(Set s) { }
    }
  )",
                          1);
}

TEST(WitnessTest, InterprocCertifierWitnessReplays) {
  validateCertifierReport(core::EngineKind::SCMPInterproc, R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )",
                          1);
}

} // namespace
