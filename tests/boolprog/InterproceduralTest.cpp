//===----------------------------------------------------------------------===//
// Tests for the context-sensitive interprocedural SCMP analysis
// (Section 8), including the ghost-variable mechanism that tracks callee
// effects on caller-local iterators.
//===----------------------------------------------------------------------===//

#include "boolprog/Interprocedural.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::bp;

namespace {

struct Run {
  easl::Spec Spec;
  cj::Program Prog;
  wp::DerivedAbstraction Abs;
  cj::ClientCFG CFG;
  InterResult R;
};

std::unique_ptr<Run> analyze(const char *ClientSrc) {
  auto Out = std::make_unique<Run>();
  Out->Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  Out->Prog = cj::parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Out->Abs = wp::deriveAbstraction(Out->Spec, Diags);
  Out->CFG = cj::buildCFG(Out->Prog, Out->Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  const cj::CFGMethod *Main = Out->CFG.mainCFG();
  EXPECT_NE(Main, nullptr);
  Out->R = analyzeInterproc(Out->Abs, Out->CFG, *Main, Diags);
  return Out;
}

/// Outcome of the unique check whose text contains \p Fragment.
CheckOutcome outcomeOf(const Run &R, const std::string &Fragment) {
  const core::CheckRecord *Found = nullptr;
  for (const auto &C : R.R.Checks)
    if (C.What.find(Fragment) != std::string::npos) {
      EXPECT_EQ(Found, nullptr) << "ambiguous fragment " << Fragment;
      Found = &C;
    }
  EXPECT_NE(Found, nullptr) << "no check matching " << Fragment << "\n"
                            << R.R.str();
  return Found ? Found->Outcome : CheckOutcome::Unreachable;
}

TEST(InterprocTest, CalleeInvalidatesCallerIteratorThroughAlias) {
  // The ghost-variable scenario: mutate(s) bumps the version of the
  // collection the caller's iterator ranges over.
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Potential);
}

TEST(InterprocTest, CalleeOnOtherCollectionIsHarmless) {
  // Context sensitivity: the same callee invoked on an unrelated
  // collection must not invalidate the iterator.
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Set w = new Set();
        Iterator i = v.iterator();
        mutate(w);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Safe);
}

TEST(InterprocTest, PureCalleePreservesFacts) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        noop(v);
        i.next();
      }
      void noop(Set s) { }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Safe);
}

TEST(InterprocTest, IteratorReturnedFromCallee) {
  // $ret mapping: the callee creates the iterator.
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = fresh(v);
        i.next();
        v.add();
        i.next();
      }
      Iterator fresh(Set s) { return s.iterator(); }
    }
  )");
  ASSERT_EQ(R->R.Checks.size(), 2u) << R->R.str();
  EXPECT_EQ(R->R.Checks[0].Outcome, CheckOutcome::Safe);
  EXPECT_EQ(R->R.Checks[1].Outcome, CheckOutcome::Potential);
}

TEST(InterprocTest, ChecksInsideCalleeUseCallingContext) {
  // use(i) is safe from the first call site, unsafe from the second.
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        use(i);
        v.add();
        use(i);
      }
      void use(Iterator it) { it.next(); }
    }
  )");
  // One check inside use(); joined over both contexts it is Potential.
  EXPECT_EQ(outcomeOf(*R, "it.next()"), CheckOutcome::Potential);
}

TEST(InterprocTest, SafeInAllContextsStaysSafe) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Set w = new Set();
        Iterator i = v.iterator();
        Iterator j = w.iterator();
        use(i);
        use(j);
      }
      void use(Iterator it) { it.next(); }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "it.next()"), CheckOutcome::Safe);
}

TEST(InterprocTest, TransitiveCallChain) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        outer(v);
        i.next();
      }
      void outer(Set s) { inner(s); }
      void inner(Set t) { t.add(); }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Potential);
}

TEST(InterprocTest, RecursionTerminatesAndIsSound) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        rec(v);
        i.next();
      }
      void rec(Set s) {
        if (*) { s.add(); rec(s); }
      }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Potential);
}

TEST(InterprocTest, RecursionWithoutMutationStaysSafe) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        rec(v);
        i.next();
      }
      void rec(Set s) {
        if (*) { rec(s); }
      }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Safe);
}

TEST(InterprocTest, UncalledMethodsAreNotReported) {
  auto R = analyze(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        i.next();
      }
      void dead(Iterator it) { it.next(); }
    }
  )");
  for (const auto &C : R->R.Checks)
    EXPECT_EQ(C.Method, "M::main") << R->R.str();
}

TEST(InterprocTest, WorklistProgramCertifies) {
  // An SCMP-friendly rendering of the paper's Fig. 1 worklist pattern:
  // the iterator is re-created after each batch of additions.
  auto R = analyze(R"(
    class Make {
      void main() {
        Set work = new Set();
        seed(work);
        while (*) {
          Iterator i = work.iterator();
          while (*) {
            i.next();
          }
          grow(work);
        }
      }
      void seed(Set s) { s.add(); }
      void grow(Set s) { s.add(); }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Safe) << R->R.str();
}

TEST(InterprocTest, WorklistBugDetected) {
  // The buggy version of Fig. 1: the callee grows the worklist while the
  // iterator is live.
  auto R = analyze(R"(
    class Make {
      void main() {
        Set work = new Set();
        Iterator i = work.iterator();
        while (*) {
          i.next();
          processItem(work);
        }
      }
      void processItem(Set s) {
        if (*) { s.add(); }
      }
    }
  )");
  EXPECT_EQ(outcomeOf(*R, "i.next()"), CheckOutcome::Potential)
      << R->R.str();
}

} // namespace
