//===----------------------------------------------------------------------===//
// End-to-end tests of the SCMP specialized certifier (Section 4): client
// source -> CFG -> boolean program -> possible-value analysis -> checks.
//===----------------------------------------------------------------------===//

#include "boolprog/Analysis.h"

#include "client/Parser.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::bp;

namespace {

/// Certifies the main() method of \p ClientSrc against \p SpecSrc and
/// returns (program, result).
struct Certified {
  cj::Program Prog;
  easl::Spec Spec;
  wp::DerivedAbstraction Abs;
  cj::ClientCFG CFG;
  BooleanProgram BP;
  IntraResult Result;
};

std::unique_ptr<Certified> certify(const char *SpecSrc,
                                   const char *ClientSrc) {
  auto C = std::make_unique<Certified>();
  C->Spec = easl::parseBuiltinSpec(SpecSrc);
  DiagnosticEngine Diags;
  C->Prog = cj::parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  C->Abs = wp::deriveAbstraction(C->Spec, Diags);
  C->CFG = cj::buildCFG(C->Prog, C->Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  const cj::CFGMethod *Main = C->CFG.mainCFG();
  EXPECT_NE(Main, nullptr);
  C->BP = buildBooleanProgram(C->Abs, *Main, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  C->Result = analyzeIntraproc(C->BP);
  return C;
}

/// Outcomes of all checks in CFG-edge order.
std::vector<CheckOutcome> outcomes(const Certified &C) {
  return C.Result.CheckResults;
}

TEST(SCMPCertifierTest, Figure3Client) {
  // The running example of Fig. 3: errors at the i2 and the final i1
  // next(), no false alarm at i3.
  auto C = certify(easl::cmpSpecSource(), R"(
    class Fig3 {
      void main() {
        Set v = new Set();
        Iterator i1 = v.iterator();
        Iterator i2 = v.iterator();
        Iterator i3 = i1;
        i1.next();
        i1.remove();
        if (*) { i2.next(); }
        if (*) { i3.next(); }
        v.add();
        if (*) { i1.next(); }
      }
    }
  )");
  auto O = outcomes(*C);
  // Checks in order: i1.next(), i1.remove(), i2.next(), i3.next(),
  // i1.next().
  ASSERT_EQ(O.size(), 5u) << C->Result.reportStr(C->BP);
  EXPECT_EQ(O[0], CheckOutcome::Safe);     // i1.next()
  EXPECT_EQ(O[1], CheckOutcome::Safe);     // i1.remove()
  EXPECT_EQ(O[2], CheckOutcome::Definite); // i2.next(): CME
  EXPECT_EQ(O[3], CheckOutcome::Safe);     // i3.next(): NOT a false alarm
  EXPECT_EQ(O[4], CheckOutcome::Definite); // i1.next() after add: CME
}

TEST(SCMPCertifierTest, VersionedLoopIsCertified) {
  // The Section 3 example that defeats allocation-site-based analyses:
  // each outer iteration re-creates the iterator after the add.
  auto C = certify(easl::cmpSpecSource(), R"(
    class Loop {
      void main() {
        Set s = new Set();
        while (*) {
          s.add();
          Iterator i = s.iterator();
          while (*) { i.next(); }
        }
      }
    }
  )");
  for (CheckOutcome O : outcomes(*C))
    EXPECT_EQ(O, CheckOutcome::Safe) << C->Result.reportStr(C->BP);
}

TEST(SCMPCertifierTest, AddInvalidatesIterator) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Bad {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Definite);
}

TEST(SCMPCertifierTest, BranchDependentViolationIsPotential) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Branchy {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        if (*) { s.add(); }
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Potential);
}

TEST(SCMPCertifierTest, IndependentCollectionsDoNotInterfere) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class TwoSets {
      void main() {
        Set s = new Set();
        Set t = new Set();
        Iterator i = s.iterator();
        t.add();
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);
}

TEST(SCMPCertifierTest, RemoveThroughIteratorKeepsItValid) {
  // Updating via the iterator refreshes both versions: i remains usable,
  // but a second iterator is invalidated.
  auto C = certify(easl::cmpSpecSource(), R"(
    class RemoveOK {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = s.iterator();
        i.remove();
        i.next();
        j.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);     // i.remove()
  EXPECT_EQ(O[1], CheckOutcome::Safe);     // i.next()
  EXPECT_EQ(O[2], CheckOutcome::Definite); // j.next()
}

TEST(SCMPCertifierTest, CopyAliasingIsTracked) {
  // j = i: removing through j invalidates neither j nor i.
  auto C = certify(easl::cmpSpecSource(), R"(
    class CopyAlias {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator j = i;
        j.remove();
        i.next();
        j.next();
      }
    }
  )");
  for (CheckOutcome O : outcomes(*C))
    EXPECT_EQ(O, CheckOutcome::Safe) << C->Result.reportStr(C->BP);
}

TEST(SCMPCertifierTest, NullIteratorIsConservativelyFlagged) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Nully {
      void main() {
        Set s = new Set();
        Iterator i = null;
        if (*) { i = s.iterator(); }
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Potential);
}

TEST(SCMPCertifierTest, ReassignedIteratorVariableIsFresh) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Reassign {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i = s.iterator();
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);
}

TEST(SCMPCertifierTest, UnreachableCheckReported) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Dead {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        return;
        i.next();
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0], CheckOutcome::Unreachable);
}

TEST(SCMPCertifierTest, GRPClient) {
  auto C = certify(easl::grpSpecSource(), R"(
    class Traversals {
      void main() {
        Graph g = new Graph();
        Traversal t1 = g.traverse();
        t1.visitNext();
        Traversal t2 = g.traverse();
        t2.visitNext();
        if (*) { t1.visitNext(); }
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);     // t1 before t2 exists
  EXPECT_EQ(O[1], CheckOutcome::Safe);     // t2 is the active traversal
  EXPECT_EQ(O[2], CheckOutcome::Definite); // t1 was preempted
}

TEST(SCMPCertifierTest, IMPClient) {
  auto C = certify(easl::impSpecSource(), R"(
    class Widgets {
      void main() {
        Factory f1 = new Factory();
        Factory f2 = new Factory();
        Widget a = f1.make();
        Widget b = f1.make();
        Widget c = f2.make();
        a.combine(b);
        if (*) { a.combine(c); }
      }
    }
  )");
  auto O = outcomes(*C);
  ASSERT_EQ(O.size(), 2u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);     // same factory
  EXPECT_EQ(O[1], CheckOutcome::Definite); // cross-factory combine
}

TEST(SCMPCertifierTest, AOPClient) {
  auto C = certify(easl::aopSpecSource(), R"(
    class Graphs {
      void main() {
        GraphA g = new GraphA();
        GraphA h = new GraphA();
        Vertex u = g.newVertex();
        Vertex v = g.newVertex();
        Vertex w = h.newVertex();
        g.addEdge(u, v);
        if (*) { g.addEdge(u, w); }
      }
    }
  )");
  auto O = outcomes(*C);
  // addEdge has two requires each: 4 checks total.
  ASSERT_EQ(O.size(), 4u);
  EXPECT_EQ(O[0], CheckOutcome::Safe);
  EXPECT_EQ(O[1], CheckOutcome::Safe);
  EXPECT_EQ(O[2], CheckOutcome::Safe);     // u belongs to g
  EXPECT_EQ(O[3], CheckOutcome::Definite); // w is alien
}

TEST(SCMPCertifierTest, BooleanProgramRenders) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Tiny {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
      }
    }
  )");
  std::string S = C->BP.str();
  EXPECT_NE(S.find("Boolean program"), std::string::npos);
  EXPECT_NE(S.find("i.set == s"), std::string::npos) << S;
}

// A method with no iterator variables instantiates a zero-variable
// boolean program whose packed states are all zero-width and hence
// permanently disengaged. The fixpoint must still terminate on a loop
// (it once requeued forever, treating "disengaged" as "first visit")
// and must still know which nodes were reached.
TEST(SCMPCertifierTest, ZeroVariableProgramWithLoopTerminates) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class ZeroVar {
      void main() {
        Set s = new Set();
        while (*) { s.add(); }
      }
    }
  )");
  EXPECT_TRUE(C->BP.Vars.empty());
  const cj::CFGMethod *Main = C->CFG.mainCFG();
  EXPECT_TRUE(C->Result.reachable(Main->Entry));
  EXPECT_TRUE(C->Result.reachable(Main->Exit));
}

TEST(SCMPCertifierTest, StateRendersFigure8Style) {
  auto C = certify(easl::cmpSpecSource(), R"(
    class Tiny {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
      }
    }
  )");
  const cj::CFGMethod *Main = C->CFG.mainCFG();
  std::string S = C->Result.stateStr(C->BP, Main->Exit);
  EXPECT_NE(S.find("= {"), std::string::npos) << S;
}

} // namespace
