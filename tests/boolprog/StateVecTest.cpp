//===----------------------------------------------------------------------===//
// Differential tests for the packed StateVec representation: every
// operation is mirrored against the unpacked std::vector<ValueSet>
// model (the representation the 2-bit lanes replaced) and must agree
// on every read, join result, and change bit — across the inline /
// heap buffer boundary at 64 variables.
//===----------------------------------------------------------------------===//

#include "boolprog/StateVec.h"

#include <gtest/gtest.h>
#include <random>
#include <vector>

using namespace canvas;
using namespace canvas::bp;

namespace {

ValueSet randomVS(std::mt19937 &Rng) {
  return static_cast<ValueSet>(Rng() % 4);
}

TEST(StateVecTest, DefaultIsDisengagedUnreachableMarker) {
  StateVec S;
  EXPECT_FALSE(S.engaged());
  EXPECT_EQ(S.size(), 0u);
  StateVec T(3, ValueSet::Both);
  EXPECT_TRUE(T.engaged());
  EXPECT_NE(S, T);
}

TEST(StateVecTest, FillConstructorMatchesReference) {
  for (unsigned NV : {1u, 31u, 32u, 33u, 64u, 65u, 200u}) {
    for (ValueSet Fill :
         {ValueSet::Bottom, ValueSet::Zero, ValueSet::One, ValueSet::Both}) {
      StateVec S(NV, Fill);
      ASSERT_EQ(S.size(), NV);
      for (unsigned V = 0; V != NV; ++V)
        ASSERT_EQ(S.get(V), Fill) << NV << " vars, var " << V;
    }
  }
}

TEST(StateVecTest, RandomWritesMatchVectorReference) {
  for (unsigned NV : {7u, 32u, 63u, 64u, 65u, 130u}) {
    std::mt19937 Rng(NV);
    StateVec S(NV, ValueSet::Bottom);
    std::vector<ValueSet> Ref(NV, ValueSet::Bottom);
    for (int Op = 0; Op != 500; ++Op) {
      const unsigned V = Rng() % NV;
      const ValueSet Val = randomVS(Rng);
      S.set(V, Val);
      Ref[V] = Val;
    }
    EXPECT_EQ(S.unpack(), Ref);
    EXPECT_EQ(S, StateVec::pack(Ref));
  }
}

TEST(StateVecTest, JoinMatchesPerVariableReference) {
  for (unsigned NV : {5u, 64u, 65u, 100u}) {
    std::mt19937 Rng(NV * 7 + 1);
    for (int Trial = 0; Trial != 20; ++Trial) {
      std::vector<ValueSet> RA(NV), RB(NV);
      for (unsigned V = 0; V != NV; ++V) {
        RA[V] = randomVS(Rng);
        RB[V] = randomVS(Rng);
      }
      StateVec A = StateVec::pack(RA);
      const StateVec B = StateVec::pack(RB);

      std::vector<ValueSet> RJ(NV);
      bool RefChanged = false;
      for (unsigned V = 0; V != NV; ++V) {
        RJ[V] = vsJoin(RA[V], RB[V]);
        RefChanged |= RJ[V] != RA[V];
      }
      EXPECT_EQ(A.joinWith(B), RefChanged);
      EXPECT_EQ(A.unpack(), RJ);
      // Idempotent: joining again never reports change.
      EXPECT_FALSE(A.joinWith(B));
    }
  }
}

TEST(StateVecTest, EqualityIsExactAcrossBufferBoundary) {
  for (unsigned NV : {64u, 65u}) {
    StateVec A(NV, ValueSet::Both);
    StateVec B(NV, ValueSet::Both);
    EXPECT_EQ(A, B);
    B.set(NV - 1, ValueSet::One);
    EXPECT_NE(A, B);
    B.set(NV - 1, ValueSet::Both);
    EXPECT_EQ(A, B);
  }
  // Different sizes never compare equal, even all-bottom.
  EXPECT_NE(StateVec(64, ValueSet::Bottom), StateVec(65, ValueSet::Bottom));
}

TEST(StateVecTest, CopyAndMoveSemantics) {
  std::mt19937 Rng(99);
  std::vector<ValueSet> Ref(100);
  for (ValueSet &V : Ref)
    V = randomVS(Rng);
  StateVec A = StateVec::pack(Ref);
  StateVec Copy(A);
  EXPECT_EQ(Copy, A);
  Copy.set(0, vsJoin(Ref[0], ValueSet::Both));
  EXPECT_EQ(A.unpack(), Ref) << "copy must not share its buffer";

  StateVec Moved(std::move(Copy));
  EXPECT_FALSE(Copy.engaged()); // NOLINT: moved-from is disengaged.
  EXPECT_EQ(Moved.size(), 100u);

  StateVec Assigned;
  Assigned = A;
  EXPECT_EQ(Assigned, A);
  Assigned = StateVec(); // Back to unreachable.
  EXPECT_FALSE(Assigned.engaged());
}

} // namespace
