//===----------------------------------------------------------------------===//
// Tests for the independent certificate checker: every analyzer-
// produced certificate must be accepted, and every seeded single-field
// tamper mutation (dropped annotation entry, weakened state, deleted
// path edge, flipped genuine pair, flipped claim, corrupted byte) must
// be rejected.
//===----------------------------------------------------------------------===//

#include "cert/Checker.h"

#include "cert/Emit.h"
#include "client/CFG.h"
#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "tvla/Transfer.h"

#include <gtest/gtest.h>

#include <memory>

using namespace canvas;
using namespace canvas::core;

namespace {

const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      Iterator i2 = v.iterator();
      Iterator i3 = i1;
      i1.next();
      i1.remove();
      if (*) { i2.next(); }
      if (*) { i3.next(); }
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

/// One certified run with everything the independent checker needs kept
/// alive: the certifier (spec + abstraction), the parsed program, and
/// the client CFG built from the same trusted inputs.
struct CertRun {
  std::unique_ptr<Certifier> C;
  std::unique_ptr<cj::Program> P;
  cj::ClientCFG CFG;
  CertificationReport R;

  cert::Checker checker() const {
    return cert::Checker(C->spec(), C->abstraction(), CFG);
  }
};

CertRun makeRun(EngineKind K, const char *Client = Fig3Client,
            bool CheckInSupervisor = false) {
  CertRun Ru;
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.EmitCertificates = true;
  Opts.CheckCertificates = CheckInSupervisor;
  Ru.C = std::make_unique<Certifier>(easl::cmpSpecSource(), K, Diags,
                                     wp::DerivationOptions{}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Ru.P = std::make_unique<cj::Program>(cj::parseProgram(Client, Diags));
  Ru.CFG = cj::buildCFG(*Ru.P, Ru.C->spec(), Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Ru.R = Ru.C->certify(*Ru.P, Diags);
  return Ru;
}

uint32_t rdU32(const std::vector<uint8_t> &B, size_t P) {
  return static_cast<uint32_t>(B[P]) | (static_cast<uint32_t>(B[P + 1]) << 8) |
         (static_cast<uint32_t>(B[P + 2]) << 16) |
         (static_cast<uint32_t>(B[P + 3]) << 24);
}

void wrU32(std::vector<uint8_t> &B, size_t P, uint32_t V) {
  B[P] = static_cast<uint8_t>(V & 0xff);
  B[P + 1] = static_cast<uint8_t>((V >> 8) & 0xff);
  B[P + 2] = static_cast<uint8_t>((V >> 16) & 0xff);
  B[P + 3] = static_cast<uint8_t>((V >> 24) & 0xff);
}

void expectRejected(const CertRun &Ru, const cert::Certificate &C,
                    const char *What) {
  cert::CheckResult CR = Ru.checker().check(C);
  EXPECT_FALSE(CR.Valid) << What;
  EXPECT_FALSE(CR.Reason.empty()) << What;
}

//===----------------------------------------------------------------------===//
// Acceptance
//===----------------------------------------------------------------------===//

TEST(CertCheckerTest, AcceptsEveryAnalyzerProducedCertificate) {
  for (EngineKind K :
       {EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
        EngineKind::GenericAllocSite, EngineKind::TVLAIndependent,
        EngineKind::TVLARelational}) {
    CertRun Ru = makeRun(K);
    EXPECT_FALSE(Ru.R.Degraded) << engineName(K);
    ASSERT_FALSE(Ru.R.Certificates.empty()) << engineName(K);
    EXPECT_EQ(Ru.R.CertStats.Count, Ru.R.Certificates.size());
    EXPECT_GT(Ru.R.CertStats.Bytes, 0u);
    for (const cert::Certificate &C : Ru.R.Certificates) {
      cert::CheckResult CR = Ru.checker().check(C);
      EXPECT_TRUE(CR.Valid)
          << engineName(K) << " " << C.Unit << ": " << CR.Reason;
    }
  }
}

TEST(CertCheckerTest, SupervisorSelfCheckPasses) {
  for (EngineKind K : {EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
                       EngineKind::TVLARelational}) {
    CertRun Ru = makeRun(K, Fig3Client, /*CheckInSupervisor=*/true);
    EXPECT_FALSE(Ru.R.Degraded) << engineName(K);
    EXPECT_TRUE(Ru.R.CertStats.Checked) << engineName(K);
    EXPECT_GT(Ru.R.CertStats.CheckMicros, 0.0) << engineName(K);
  }
}

// A set with no iterators yields a zero-variable boolean program (or,
// under pre-analysis, a zero-variable slice) whose zero-width states
// are permanently disengaged. Emission and checking must agree on the
// coverage tags instead of leaning on engagement: this client once
// looped the analyzer forever, and its stored certificates were
// rejected ("entry node not covered") and quarantined.
TEST(CertCheckerTest, ZeroVariableSliceCertificateAccepted) {
  const char *Client = R"(
    class Mixed {
      void main() {
        Set s0 = new Set();
        Iterator i = s0.iterator();
        while (*) { i.next(); }
        Set s1 = new Set();
        s1.add();
      }
    }
  )";
  CertRun Ru = makeRun(EngineKind::SCMPIntra, Client);
  ASSERT_FALSE(Ru.R.Certificates.empty());
  for (const cert::Certificate &C : Ru.R.Certificates) {
    cert::CheckResult CR = Ru.checker().check(C);
    EXPECT_TRUE(CR.Valid) << C.Unit << ": " << CR.Reason;
  }
}

TEST(CertCheckerTest, RoundTrippedCertificatesStillVerify) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  std::vector<uint8_t> Blob = cert::serializeCertificates(Ru.R.Certificates);
  std::vector<cert::Certificate> Parsed;
  std::string Error;
  ASSERT_TRUE(cert::parseCertificates(Blob, Parsed, Error)) << Error;
  EXPECT_EQ(cert::serializeCertificates(Parsed), Blob);
  for (const cert::Certificate &C : Parsed) {
    cert::CheckResult CR = Ru.checker().check(C);
    EXPECT_TRUE(CR.Valid) << C.Unit << ": " << CR.Reason;
  }
}

TEST(CertCheckerTest, PruningStoresStrictlyFewerEntries) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  ASSERT_FALSE(Ru.R.Certificates.empty());
  const cert::Certificate &C = Ru.R.Certificates[0];
  EXPECT_EQ(C.Kind, cert::CertKind::BoolIntra);
  // Fig3::main has straight-line runs, so the ACC reconstruction rule
  // must prune at least one per-point state.
  EXPECT_LT(C.StoredEntries, C.RawEntries);
}

//===----------------------------------------------------------------------===//
// Tamper mutants: boolean-program intraprocedural
//===----------------------------------------------------------------------===//

/// Byte offset of each node's tag in a BoolIntra payload.
std::vector<size_t> boolIntraTagOffsets(const std::vector<uint8_t> &P) {
  uint32_t NumNodes = rdU32(P, 0);
  uint32_t NumVars = rdU32(P, 4);
  std::vector<size_t> Off(NumNodes);
  size_t Pos = 13; // NumNodes, NumVars, NumChecks, AssumeChecksPass.
  for (uint32_t N = 0; N != NumNodes; ++N) {
    Off[N] = Pos;
    uint8_t Tag = P[Pos++];
    if (Tag == 1)
      Pos += NumVars;
  }
  return Off;
}

TEST(CertTamperTest, BoolIntraDroppedEntryAnnotationRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  ASSERT_FALSE(Ru.R.Certificates.empty());
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::BoolIntra);
  const cj::CFGMethod *M = Ru.CFG.findMethod("Fig3", "main");
  ASSERT_NE(M, nullptr);

  std::vector<size_t> Off = boolIntraTagOffsets(C.Payload);
  uint32_t NumVars = rdU32(C.Payload, 4);
  ASSERT_GT(NumVars, 0u);
  size_t EntryTag = Off[M->Entry];
  ASSERT_EQ(C.Payload[EntryTag], 1u); // The entry is always stored.
  C.Payload[EntryTag] = 0;
  C.Payload.erase(C.Payload.begin() + static_cast<long>(EntryTag) + 1,
                  C.Payload.begin() + static_cast<long>(EntryTag) + 1 +
                      NumVars);
  C.seal();
  expectRejected(Ru, C, "dropped entry annotation");
}

TEST(CertTamperTest, BoolIntraWeakenedStateRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::BoolIntra);
  const cj::CFGMethod *M = Ru.CFG.findMethod("Fig3", "main");
  ASSERT_NE(M, nullptr);

  // Shrink the entry state's first variable from Both to One: the
  // annotation no longer covers the engine's initial fact.
  std::vector<size_t> Off = boolIntraTagOffsets(C.Payload);
  size_t FirstVar = Off[M->Entry] + 1;
  ASSERT_EQ(C.Payload[FirstVar], 3u); // ValueSet::Both at entry.
  C.Payload[FirstVar] = 2;            // ValueSet::One.
  C.seal();
  expectRejected(Ru, C, "weakened entry state");
}

TEST(CertTamperTest, BoolIntraFlippedClaimRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::BoolIntra);
  size_t SafeIdx = C.Claims.size();
  for (size_t I = 0; I != C.Claims.size(); ++I)
    if (C.Claims[I].Outcome == CheckOutcome::Safe)
      SafeIdx = I;
  ASSERT_LT(SafeIdx, C.Claims.size()) << "expected a Safe claim on Fig3";
  C.Claims[SafeIdx].Outcome = CheckOutcome::Unreachable;
  C.seal();
  expectRejected(Ru, C, "Safe claim flipped to Unreachable");
}

TEST(CertTamperTest, CorruptedByteWithoutResealRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPIntra);
  cert::Certificate C = Ru.R.Certificates[0];
  C.Payload[C.Payload.size() / 2] ^= 0x20; // No re-seal: hash mismatch.
  expectRejected(Ru, C, "corrupted payload byte");
}

//===----------------------------------------------------------------------===//
// Tamper mutants: interprocedural IFDS
//===----------------------------------------------------------------------===//

TEST(CertTamperTest, IfdsDeletedPathEdgeRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPInterproc);
  ASSERT_EQ(Ru.R.Certificates.size(), 1u);
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::Ifds);

  uint32_t NumPE = rdU32(C.Payload, 8);
  ASSERT_GT(NumPE, 0u);
  size_t Last = 12 + 16 * static_cast<size_t>(NumPE - 1);
  C.Payload.erase(C.Payload.begin() + static_cast<long>(Last),
                  C.Payload.begin() + static_cast<long>(Last) + 16);
  wrU32(C.Payload, 8, NumPE - 1);
  C.seal();
  expectRejected(Ru, C, "deleted path edge");
}

TEST(CertTamperTest, IfdsDeletedGenuinePairRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPInterproc);
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::Ifds);

  uint32_t NumPE = rdU32(C.Payload, 8);
  size_t GenPos = 12 + 16 * static_cast<size_t>(NumPE);
  uint32_t NumGenuine = rdU32(C.Payload, GenPos);
  ASSERT_GT(NumGenuine, 0u); // main() is always genuine.
  C.Payload.erase(C.Payload.end() - 8, C.Payload.end());
  wrU32(C.Payload, GenPos, NumGenuine - 1);
  C.seal();
  expectRejected(Ru, C, "deleted genuine pair");
}

TEST(CertTamperTest, IfdsFlippedClaimRejected) {
  CertRun Ru = makeRun(EngineKind::SCMPInterproc);
  cert::Certificate C = Ru.R.Certificates[0];
  size_t SafeIdx = C.Claims.size();
  for (size_t I = 0; I != C.Claims.size(); ++I)
    if (C.Claims[I].Outcome == CheckOutcome::Safe)
      SafeIdx = I;
  ASSERT_LT(SafeIdx, C.Claims.size());
  C.Claims[SafeIdx].Outcome = CheckOutcome::Unreachable;
  C.seal();
  expectRejected(Ru, C, "IFDS Safe claim flipped to Unreachable");
}

//===----------------------------------------------------------------------===//
// Tamper mutants: TVLA
//===----------------------------------------------------------------------===//

TEST(CertTamperTest, TvlaDroppedEntryStructuresRejected) {
  CertRun Ru = makeRun(EngineKind::TVLARelational);
  ASSERT_FALSE(Ru.R.Certificates.empty());
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::TvlaRelational);
  const cj::CFGMethod *M = Ru.CFG.findMethod("Fig3", "main");
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(C.Unit, M->name());

  DiagnosticEngine Quiet;
  tvla::Transfer T(Ru.C->abstraction(), *M, Quiet);
  const tvp::Vocabulary &V = T.vocabulary();

  // Structurally rewrite the payload with the entry point's structure
  // set emptied: the empty initial structure is no longer covered.
  cert::Reader R(C.Payload);
  cert::Writer W;
  W.u8(R.u8());
  uint32_t NumNodes = R.u32(), NumPreds = R.u32(), NumChecks = R.u32();
  ASSERT_EQ(NumPreds, V.Preds.size());
  W.u32(NumNodes);
  W.u32(NumPreds);
  W.u32(NumChecks);
  uint32_t NumUnique = R.u32();
  W.u32(NumUnique);
  for (uint32_t I = 0; I != NumUnique; ++I) {
    tvla::Structure S(V);
    std::string Error;
    ASSERT_TRUE(cert::readStructure(R, V, S, Error)) << Error;
    cert::writeStructure(W, S, V);
  }
  for (uint32_t N = 0; N != NumNodes; ++N) {
    uint8_t Tag = R.u8();
    if (N == static_cast<uint32_t>(M->Entry)) {
      ASSERT_EQ(Tag, 1);
      uint32_t Count = R.u32();
      ASSERT_GT(Count, 0u);
      for (uint32_t I = 0; I != Count; ++I)
        (void)R.u32();
      W.u8(1);
      W.u32(0);
      continue;
    }
    W.u8(Tag);
    if (Tag == 1) {
      uint32_t Count = R.u32();
      W.u32(Count);
      for (uint32_t I = 0; I != Count; ++I)
        W.u32(R.u32());
    }
  }
  ASSERT_TRUE(R.done());
  C.Payload = W.take();
  C.seal();
  expectRejected(Ru, C, "dropped TVLA entry structures");
}

TEST(CertTamperTest, TvlaFlippedClaimRejected) {
  CertRun Ru = makeRun(EngineKind::TVLARelational);
  cert::Certificate C = Ru.R.Certificates[0];
  size_t SafeIdx = C.Claims.size();
  for (size_t I = 0; I != C.Claims.size(); ++I)
    if (C.Claims[I].Outcome == CheckOutcome::Safe)
      SafeIdx = I;
  ASSERT_LT(SafeIdx, C.Claims.size());
  C.Claims[SafeIdx].Outcome = CheckOutcome::Unreachable;
  C.seal();
  expectRejected(Ru, C, "TVLA Safe claim flipped to Unreachable");
}

//===----------------------------------------------------------------------===//
// Tamper mutants: allocation-site baseline
//===----------------------------------------------------------------------===//

TEST(CertTamperTest, AllocSiteDroppedSiteRejected) {
  CertRun Ru = makeRun(EngineKind::GenericAllocSite);
  ASSERT_FALSE(Ru.R.Certificates.empty());
  cert::Certificate C = Ru.R.Certificates[0];
  ASSERT_EQ(C.Kind, cert::CertKind::AllocSite);

  size_t Pos = 4;                         // NumNodes.
  uint32_t MultiCount = rdU32(C.Payload, Pos);
  Pos += 4 + 4 * static_cast<size_t>(MultiCount);
  uint32_t NumSites = rdU32(C.Payload, Pos);
  ASSERT_GT(NumSites, 0u);
  size_t Last = Pos + 4 + 12 * static_cast<size_t>(NumSites - 1);
  C.Payload.erase(C.Payload.begin() + static_cast<long>(Last),
                  C.Payload.begin() + static_cast<long>(Last) + 12);
  wrU32(C.Payload, Pos, NumSites - 1);
  C.seal();
  expectRejected(Ru, C, "dropped obligation site");
}

TEST(CertTamperTest, AllocSiteFlaggedSiteClaimedSafeRejected) {
  CertRun Ru = makeRun(EngineKind::GenericAllocSite);
  // The generic baseline cannot verify Fig3 (Section 3): at least one
  // obligation is flagged, so some site index has no Safe claim.
  ASSERT_GT(Ru.R.numFlagged(), 0u);
  cert::Certificate C = Ru.R.Certificates[0];

  size_t Pos = 4;
  uint32_t MultiCount = rdU32(C.Payload, Pos);
  Pos += 4 + 4 * static_cast<size_t>(MultiCount);
  uint32_t NumSites = rdU32(C.Payload, Pos);
  uint32_t Flagged = NumSites;
  for (uint32_t I = 0; I != NumSites; ++I) {
    bool Claimed = false;
    for (const cert::Claim &Cl : C.Claims)
      Claimed |= Cl.Check == I;
    if (!Claimed) {
      Flagged = I;
      break;
    }
  }
  ASSERT_LT(Flagged, NumSites);
  C.Claims.push_back({Flagged, CheckOutcome::Safe});
  C.seal();
  expectRejected(Ru, C, "flagged site claimed Safe");
}

} // namespace
