//===----------------------------------------------------------------------===//
// Tests for SlicePartition certificates: the SCMPIntra engine certifies
// sliceable methods per-slice and emits one certificate carrying the
// partition, the per-slice annotations, the must-assigned gate, and (in
// points-to mode) the whole-program solution. The independent checker
// must accept every analyzer-produced certificate and reject every
// tampered one — moved variables, shrunken points-to sets, inflated
// must-assigned annotations, flipped modes and claims.
//===----------------------------------------------------------------------===//

#include "cert/Checker.h"

#include "cert/Emit.h"
#include "client/CFG.h"
#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

#include <memory>

using namespace canvas;
using namespace canvas::core;

namespace {

// Four independent pipelines, locals only: sliceable by the syntactic
// (mode-0) gates alone.
const char *PipelinesClient = R"(
  class Pipelines {
    void main() {
      Set a = new Set();
      Iterator ia = a.iterator();
      Set b = new Set();
      Iterator ib = b.iterator();
      while (*) { ia.next(); }
      ib.next();
      if (*) { b.add(); }
      ib.next();
    }
  }
)";

// Four heap-stashed pipelines: the syntactic gates force a single
// slice, so only points-to (mode-1) evidence can justify a partition —
// and four independent pipelines give the partition a projected boolvar
// reduction big enough to clear the SliceCostModel overhead gate.
const char *StashedPairsClient = R"(
  class Stash {
    Set s;
  }
  class Pairs {
    void main() {
      Stash u = new Stash();
      Stash v = new Stash();
      Stash w = new Stash();
      Stash x = new Stash();
      Set s1 = new Set();
      Set s2 = new Set();
      Set s3 = new Set();
      Set s4 = new Set();
      u.s = s1;
      v.s = s2;
      w.s = s3;
      x.s = s4;
      Iterator i1 = s1.iterator();
      Iterator i2 = s2.iterator();
      Iterator i3 = s3.iterator();
      Iterator i4 = s4.iterator();
      while (*) { i1.next(); if (*) { i1.remove(); } }
      i2.next();
      if (*) { s2.add(); }
      if (*) { i2.next(); }
      while (*) { i3.next(); }
      if (*) { s3.add(); }
      i4.next();
      if (*) { i4.remove(); }
    }
  }
)";

struct CertRun {
  std::unique_ptr<Certifier> C;
  std::unique_ptr<cj::Program> P;
  cj::ClientCFG CFG;
  CertificationReport R;

  cert::Checker checker() const {
    return cert::Checker(C->spec(), C->abstraction(), CFG);
  }
};

CertRun makeRun(const char *Client, bool PointsTo,
                bool CheckInSupervisor = true) {
  CertRun Ru;
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.PointsTo = PointsTo;
  Opts.EmitCertificates = true;
  Opts.CheckCertificates = CheckInSupervisor;
  Ru.C = std::make_unique<Certifier>(easl::cmpSpecSource(),
                                     EngineKind::SCMPIntra, Diags,
                                     wp::DerivationOptions{}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Ru.P = std::make_unique<cj::Program>(cj::parseProgram(Client, Diags));
  Ru.CFG = cj::buildCFG(*Ru.P, Ru.C->spec(), Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Ru.R = Ru.C->certify(*Ru.P, Diags);
  return Ru;
}

const cert::Certificate *findPartition(const CertificationReport &R) {
  for (const cert::Certificate &C : R.Certificates)
    if (C.Kind == cert::CertKind::SlicePartition)
      return &C;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Structural payload codec for tamper tests: mirrors the layout
// cert::emitSlicePartition writes (see src/cert/Emit.cpp).
//===----------------------------------------------------------------------===//

struct SP {
  uint8_t Mode = 0;
  uint8_t Assume = 0;
  uint32_t NumNodes = 0;
  uint32_t NumCompVars = 0;
  struct DANode {
    bool Covered = false;
    std::vector<uint32_t> Must;
  };
  std::vector<DANode> DA;
  struct Slice {
    std::vector<std::string> Vars;
    uint32_t BPVars = 0;
    uint32_t BPChecks = 0;
    /// Per node: the tag plus, for tag 1, the stored state bytes.
    std::vector<std::vector<uint8_t>> Nodes;
  };
  std::vector<Slice> Slices;
  std::vector<std::vector<uint32_t>> Pts; ///< Mode 1 only.
  struct FieldEntry {
    uint32_t Obj = 0;
    std::string Field;
    std::vector<uint32_t> Set;
  };
  std::vector<FieldEntry> Fields; ///< Mode 1 only.
};

SP parseSP(const std::vector<uint8_t> &Payload) {
  SP S;
  cert::Reader R(Payload);
  S.Mode = R.u8();
  S.Assume = R.u8();
  S.NumNodes = R.u32();
  S.NumCompVars = R.u32();
  S.DA.resize(S.NumNodes);
  for (uint32_t N = 0; N != S.NumNodes; ++N) {
    if (!R.u8())
      continue;
    S.DA[N].Covered = true;
    uint32_t K = R.u32();
    for (uint32_t I = 0; I != K; ++I)
      S.DA[N].Must.push_back(R.u32());
  }
  S.Slices.resize(R.u32());
  for (SP::Slice &Sl : S.Slices) {
    uint32_t Len = R.u32();
    for (uint32_t I = 0; I != Len; ++I)
      Sl.Vars.push_back(R.str());
    Sl.BPVars = R.u32();
    Sl.BPChecks = R.u32();
    Sl.Nodes.resize(S.NumNodes);
    for (uint32_t N = 0; N != S.NumNodes; ++N) {
      uint8_t Tag = R.u8();
      Sl.Nodes[N].push_back(Tag);
      if (Tag == 1)
        for (uint32_t V = 0; V != Sl.BPVars; ++V)
          Sl.Nodes[N].push_back(R.u8());
    }
  }
  if (S.Mode == 1) {
    S.Pts.resize(R.u32());
    for (std::vector<uint32_t> &Set : S.Pts) {
      uint32_t K = R.u32();
      for (uint32_t I = 0; I != K; ++I)
        Set.push_back(R.u32());
    }
    S.Fields.resize(R.u32());
    for (SP::FieldEntry &F : S.Fields) {
      F.Obj = R.u32();
      F.Field = R.str();
      uint32_t K = R.u32();
      for (uint32_t I = 0; I != K; ++I)
        F.Set.push_back(R.u32());
    }
  }
  EXPECT_TRUE(R.done()) << "parseSP did not consume the whole payload";
  return S;
}

std::vector<uint8_t> buildSP(const SP &S) {
  cert::Writer W;
  W.u8(S.Mode);
  W.u8(S.Assume);
  W.u32(S.NumNodes);
  W.u32(S.NumCompVars);
  for (const SP::DANode &N : S.DA) {
    if (!N.Covered) {
      W.u8(0);
      continue;
    }
    W.u8(1);
    W.u32(static_cast<uint32_t>(N.Must.size()));
    for (uint32_t V : N.Must)
      W.u32(V);
  }
  W.u32(static_cast<uint32_t>(S.Slices.size()));
  for (const SP::Slice &Sl : S.Slices) {
    W.u32(static_cast<uint32_t>(Sl.Vars.size()));
    for (const std::string &V : Sl.Vars)
      W.str(V);
    W.u32(Sl.BPVars);
    W.u32(Sl.BPChecks);
    for (const std::vector<uint8_t> &N : Sl.Nodes)
      for (uint8_t B : N)
        W.u8(B);
  }
  if (S.Mode == 1) {
    W.u32(static_cast<uint32_t>(S.Pts.size()));
    for (const std::vector<uint32_t> &Set : S.Pts) {
      W.u32(static_cast<uint32_t>(Set.size()));
      for (uint32_t O : Set)
        W.u32(O);
    }
    W.u32(static_cast<uint32_t>(S.Fields.size()));
    for (const SP::FieldEntry &F : S.Fields) {
      W.u32(F.Obj);
      W.str(F.Field);
      W.u32(static_cast<uint32_t>(F.Set.size()));
      for (uint32_t O : F.Set)
        W.u32(O);
    }
  }
  return W.take();
}

void expectRejected(const CertRun &Ru, const cert::Certificate &C,
                    const char *What, const char *ReasonFragment = nullptr) {
  cert::CheckResult CR = Ru.checker().check(C);
  EXPECT_FALSE(CR.Valid) << What;
  EXPECT_FALSE(CR.Reason.empty()) << What;
  if (ReasonFragment) {
    EXPECT_NE(CR.Reason.find(ReasonFragment), std::string::npos)
        << What << ": " << CR.Reason;
  }
}

//===----------------------------------------------------------------------===//
// Acceptance
//===----------------------------------------------------------------------===//

TEST(SlicePartitionTest, SyntacticSlicesEmitAcceptedMode0Certificate) {
  CertRun Ru = makeRun(PipelinesClient, /*PointsTo=*/false);
  EXPECT_FALSE(Ru.R.Degraded) << Ru.R.str();
  EXPECT_TRUE(Ru.R.CertStats.Checked);
  const cert::Certificate *C = findPartition(Ru.R);
  ASSERT_NE(C, nullptr) << "pipelines client did not certify per-slice";

  SP S = parseSP(C->Payload);
  EXPECT_EQ(S.Mode, 0u);
  EXPECT_GE(S.Slices.size(), 2u);
  EXPECT_TRUE(S.Pts.empty());

  cert::CheckResult CR = Ru.checker().check(*C);
  EXPECT_TRUE(CR.Valid) << CR.Reason;
  EXPECT_GT(Ru.R.Pre.SliceRuns, 1u);
}

TEST(SlicePartitionTest, HeapClientNeedsPointsToForAPartition) {
  // Without points-to the heap stores force a single slice and the
  // method falls back to a plain BoolIntra certificate.
  CertRun Plain = makeRun(StashedPairsClient, /*PointsTo=*/false);
  EXPECT_EQ(findPartition(Plain.R), nullptr);
  ASSERT_FALSE(Plain.R.SliceSummaries.empty());
  EXPECT_EQ(Plain.R.SliceSummaries[0].Slices, 1u);
  EXPECT_NE(Plain.R.SliceSummaries[0].ForcedSingleReason.find("heap"),
            std::string::npos);

  // With it, the partition certifies and carries mode-1 evidence.
  CertRun Pt = makeRun(StashedPairsClient, /*PointsTo=*/true);
  EXPECT_FALSE(Pt.R.Degraded) << Pt.R.str();
  const cert::Certificate *C = findPartition(Pt.R);
  ASSERT_NE(C, nullptr);
  SP S = parseSP(C->Payload);
  EXPECT_EQ(S.Mode, 1u);
  EXPECT_EQ(S.Slices.size(), 4u);
  EXPECT_FALSE(S.Pts.empty());

  cert::CheckResult CR = Pt.checker().check(*C);
  EXPECT_TRUE(CR.Valid) << CR.Reason;

  // Both runs agree on every verdict: slicing is verdict-preserving.
  ASSERT_EQ(Plain.R.Checks.size(), Pt.R.Checks.size());
  for (size_t I = 0; I != Plain.R.Checks.size(); ++I)
    EXPECT_EQ(Plain.R.Checks[I].Outcome, Pt.R.Checks[I].Outcome) << I;
}

TEST(SlicePartitionTest, SurvivesSerializationRoundTrip) {
  CertRun Ru = makeRun(StashedPairsClient, /*PointsTo=*/true);
  ASSERT_NE(findPartition(Ru.R), nullptr);
  std::vector<uint8_t> Blob = cert::serializeCertificates(Ru.R.Certificates);
  std::vector<cert::Certificate> Parsed;
  std::string Error;
  ASSERT_TRUE(cert::parseCertificates(Blob, Parsed, Error)) << Error;
  for (const cert::Certificate &C : Parsed) {
    cert::CheckResult CR = Ru.checker().check(C);
    EXPECT_TRUE(CR.Valid) << C.Unit << ": " << CR.Reason;
  }
}

//===----------------------------------------------------------------------===//
// Tamper mutants
//===----------------------------------------------------------------------===//

TEST(SlicePartitionTamperTest, MovedVariableAcrossSlicesRejected) {
  CertRun Ru = makeRun(StashedPairsClient, /*PointsTo=*/true);
  cert::Certificate C = *findPartition(Ru.R);
  SP S = parseSP(C.Payload);
  ASSERT_EQ(S.Slices.size(), 4u);

  // Swap s1 and s2 between the slices: each pipeline's set now sits
  // apart from its iterator, splitting a may-interfere group.
  auto Swap = [&](const std::string &A, const std::string &B) {
    for (SP::Slice &Sl : S.Slices)
      for (std::string &V : Sl.Vars) {
        if (V == A)
          V = B;
        else if (V == B)
          V = A;
      }
  };
  Swap("s1", "s2");
  C.Payload = buildSP(S);
  C.seal();
  expectRejected(Ru, C, "variable moved across slices");
}

TEST(SlicePartitionTamperTest, ShrunkenPointsToSetRejected) {
  CertRun Ru = makeRun(StashedPairsClient, /*PointsTo=*/true);
  cert::Certificate C = *findPartition(Ru.R);
  SP S = parseSP(C.Payload);
  ASSERT_EQ(S.Mode, 1u);

  // Hide an alias by dropping one element of the first non-empty
  // points-to set: the solution is no longer closed under the
  // regenerated constraints.
  bool Shrunk = false;
  for (std::vector<uint32_t> &Set : S.Pts)
    if (!Set.empty()) {
      Set.pop_back();
      Shrunk = true;
      break;
    }
  ASSERT_TRUE(Shrunk);
  C.Payload = buildSP(S);
  C.seal();
  expectRejected(Ru, C, "shrunken points-to set", "not closed");
}

TEST(SlicePartitionTamperTest, InflatedMustAssignedAnnotationRejected) {
  CertRun Ru = makeRun(PipelinesClient, /*PointsTo=*/false);
  cert::Certificate C = *findPartition(Ru.R);
  const cj::CFGMethod *M = Ru.CFG.findMethod("Pipelines", "main");
  ASSERT_NE(M, nullptr);

  // main() has no parameters, so claiming any variable assigned at
  // entry overclaims what the environment provides.
  SP S = parseSP(C.Payload);
  ASSERT_TRUE(S.DA[M->Entry].Covered);
  ASSERT_TRUE(S.DA[M->Entry].Must.empty());
  S.DA[M->Entry].Must.push_back(0);
  C.Payload = buildSP(S);
  C.seal();
  expectRejected(Ru, C, "inflated entry must-assigned set", "parameters");
}

TEST(SlicePartitionTamperTest, OutOfRangeMustAssignedVariableRejected) {
  CertRun Ru = makeRun(PipelinesClient, /*PointsTo=*/false);
  cert::Certificate C = *findPartition(Ru.R);
  SP S = parseSP(C.Payload);
  bool Poisoned = false;
  for (SP::DANode &N : S.DA)
    if (N.Covered && !N.Must.empty()) {
      N.Must[0] = 0xfffffff0u;
      Poisoned = true;
      break;
    }
  ASSERT_TRUE(Poisoned);
  C.Payload = buildSP(S);
  C.seal();
  expectRejected(Ru, C, "out-of-range must-assigned variable");
}

TEST(SlicePartitionTamperTest, StrippedPointsToEvidenceRejected) {
  CertRun Ru = makeRun(StashedPairsClient, /*PointsTo=*/true);
  cert::Certificate C = *findPartition(Ru.R);
  SP S = parseSP(C.Payload);
  ASSERT_EQ(S.Mode, 1u);

  // Claim the partition needs no evidence: mode 0 re-imposes the
  // syntactic gates, and this client's heap stores trip them.
  S.Mode = 0;
  S.Pts.clear();
  S.Fields.clear();
  C.Payload = buildSP(S);
  C.seal();
  expectRejected(Ru, C, "mode flipped to 0", "heap");
}

TEST(SlicePartitionTamperTest, FlippedClaimRejected) {
  CertRun Ru = makeRun(PipelinesClient, /*PointsTo=*/false);
  cert::Certificate C = *findPartition(Ru.R);
  size_t SafeIdx = C.Claims.size();
  for (size_t I = 0; I != C.Claims.size(); ++I)
    if (C.Claims[I].Outcome == CheckOutcome::Safe)
      SafeIdx = I;
  ASSERT_LT(SafeIdx, C.Claims.size()) << "expected a Safe claim";
  C.Claims[SafeIdx].Outcome = CheckOutcome::Unreachable;
  C.seal();
  expectRejected(Ru, C, "Safe claim flipped to Unreachable");
}

TEST(SlicePartitionTamperTest, CorruptedByteWithoutResealRejected) {
  CertRun Ru = makeRun(StashedPairsClient, /*PointsTo=*/true);
  cert::Certificate C = *findPartition(Ru.R);
  C.Payload[C.Payload.size() / 2] ^= 0x40;
  expectRejected(Ru, C, "corrupted payload byte");
}

} // namespace
