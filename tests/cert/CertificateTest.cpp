//===----------------------------------------------------------------------===//
// Tests for the proof-carrying certificate container format: bounds-
// checked codecs, deterministic serialization, content hashing, and
// hostile-input rejection.
//===----------------------------------------------------------------------===//

#include "cert/Certificate.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::cert;

namespace {

Certificate sample() {
  Certificate C;
  C.Kind = CertKind::BoolIntra;
  C.Unit = "Fig3::main";
  C.Claims.push_back({0, core::CheckOutcome::Safe});
  C.Claims.push_back({3, core::CheckOutcome::Unreachable});
  C.Payload = {1, 2, 3, 4, 0xff, 0};
  C.RawEntries = 12;
  C.StoredEntries = 5;
  C.seal();
  return C;
}

TEST(CertificateTest, WriterReaderPrimitivesRoundTrip) {
  Writer W;
  W.u8(0xab);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.i32(-42);
  W.str("hello");
  W.bytes({9, 8, 7});
  std::vector<uint8_t> Buf = W.take();

  Reader R(Buf);
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.i32(), -42);
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.bytes(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(R.done());
}

TEST(CertificateTest, ReaderLatchesFailureOnTruncation) {
  Writer W;
  W.u32(7);
  std::vector<uint8_t> Buf = W.take();
  Buf.pop_back();

  Reader R(Buf);
  (void)R.u32();
  EXPECT_TRUE(R.failed());
  EXPECT_FALSE(R.done());
  // Further reads stay failed instead of reading out of bounds.
  (void)R.u8();
  EXPECT_TRUE(R.failed());
}

TEST(CertificateTest, DoneRequiresFullConsumption) {
  Writer W;
  W.u32(1);
  W.u32(2);
  std::vector<uint8_t> Buf = W.take();
  Reader R(Buf);
  (void)R.u32();
  EXPECT_FALSE(R.done()); // Trailing bytes remain.
  (void)R.u32();
  EXPECT_TRUE(R.done());
}

TEST(CertificateTest, FnvIsDeterministic) {
  std::vector<uint8_t> A = {1, 2, 3};
  EXPECT_EQ(fnv1a(A.data(), A.size()), fnv1a(A.data(), A.size()));
  std::vector<uint8_t> B = {1, 2, 4};
  EXPECT_NE(fnv1a(A.data(), A.size()), fnv1a(B.data(), B.size()));
}

TEST(CertificateTest, SealStampsAConsistentHash) {
  Certificate C = sample();
  EXPECT_EQ(C.ContentHash, C.computeHash());
  uint64_t H = C.ContentHash;
  C.Payload[0] ^= 1;
  EXPECT_NE(C.computeHash(), H);
  C.seal();
  EXPECT_EQ(C.ContentHash, C.computeHash());
}

TEST(CertificateTest, ContainerRoundTripPreservesEveryField) {
  std::vector<Certificate> Certs = {sample()};
  Certs.push_back(sample());
  Certs[1].Kind = CertKind::Ifds;
  Certs[1].Unit = "";
  Certs[1].seal();

  std::vector<uint8_t> Blob = serializeCertificates(Certs);
  std::vector<Certificate> Out;
  std::string Error;
  ASSERT_TRUE(parseCertificates(Blob, Out, Error)) << Error;
  ASSERT_EQ(Out.size(), 2u);
  for (size_t I = 0; I != 2; ++I) {
    EXPECT_EQ(Out[I].Kind, Certs[I].Kind);
    EXPECT_EQ(Out[I].Unit, Certs[I].Unit);
    ASSERT_EQ(Out[I].Claims.size(), Certs[I].Claims.size());
    for (size_t J = 0; J != Out[I].Claims.size(); ++J) {
      EXPECT_EQ(Out[I].Claims[J].Check, Certs[I].Claims[J].Check);
      EXPECT_EQ(Out[I].Claims[J].Outcome, Certs[I].Claims[J].Outcome);
    }
    EXPECT_EQ(Out[I].Payload, Certs[I].Payload);
    EXPECT_EQ(Out[I].RawEntries, Certs[I].RawEntries);
    EXPECT_EQ(Out[I].StoredEntries, Certs[I].StoredEntries);
    EXPECT_EQ(Out[I].ContentHash, Certs[I].ContentHash);
  }
}

TEST(CertificateTest, ReserializationIsByteIdentical) {
  std::vector<Certificate> Certs = {sample()};
  std::vector<uint8_t> Blob = serializeCertificates(Certs);
  std::vector<Certificate> Out;
  std::string Error;
  ASSERT_TRUE(parseCertificates(Blob, Out, Error)) << Error;
  EXPECT_EQ(serializeCertificates(Out), Blob);
}

TEST(CertificateTest, BytesMatchesSerializedLength) {
  std::vector<Certificate> Certs = {sample()};
  std::vector<uint8_t> Blob = serializeCertificates(Certs);
  // Container = 5-byte magic + u32 count + the one record.
  EXPECT_EQ(Blob.size(), 5u + 4u + Certs[0].bytes());
}

TEST(CertificateTest, ParseRejectsBadMagic) {
  std::vector<uint8_t> Blob = serializeCertificates({sample()});
  Blob[0] ^= 1;
  std::vector<Certificate> Out;
  std::string Error;
  EXPECT_FALSE(parseCertificates(Blob, Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(CertificateTest, ParseRejectsTamperedPayload) {
  std::vector<Certificate> Certs = {sample()};
  std::vector<uint8_t> Blob = serializeCertificates(Certs);
  // Flip one payload byte inside the record: the content hash no
  // longer matches and the container parse must fail.
  Blob[Blob.size() - 10] ^= 0x40;
  std::vector<Certificate> Out;
  std::string Error;
  EXPECT_FALSE(parseCertificates(Blob, Out, Error));
  EXPECT_NE(Error.find("hash"), std::string::npos) << Error;
}

TEST(CertificateTest, ParseRejectsTruncationAndTrailingBytes) {
  std::vector<uint8_t> Blob = serializeCertificates({sample()});
  std::vector<Certificate> Out;
  std::string Error;

  std::vector<uint8_t> Short(Blob.begin(), Blob.end() - 1);
  EXPECT_FALSE(parseCertificates(Short, Out, Error));

  std::vector<uint8_t> Long = Blob;
  Long.push_back(0);
  Out.clear();
  EXPECT_FALSE(parseCertificates(Long, Out, Error));
}

TEST(CertificateTest, ParseRejectsUnknownKind) {
  Certificate C = sample();
  C.Kind = static_cast<CertKind>(9);
  C.seal();
  std::vector<uint8_t> Blob = serializeCertificates({C});
  std::vector<Certificate> Out;
  std::string Error;
  EXPECT_FALSE(parseCertificates(Blob, Out, Error));
}

TEST(CertificateTest, KindNamesAreStable) {
  EXPECT_STREQ(certKindName(CertKind::BoolIntra), "bool-intra");
  EXPECT_STREQ(certKindName(CertKind::Ifds), "ifds");
  EXPECT_STREQ(certKindName(CertKind::TvlaIndependent), "tvla-independent");
  EXPECT_STREQ(certKindName(CertKind::TvlaRelational), "tvla-relational");
  EXPECT_STREQ(certKindName(CertKind::AllocSite), "alloc-site");
}

} // namespace
