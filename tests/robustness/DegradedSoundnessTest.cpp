//===----------------------------------------------------------------------===//
// Degraded-soundness check: degradation may lose precision, never
// soundness. Whatever a full-budget run flags as unproven (Potential or
// Definite) must also be flagged — at the same client locations — by
// any degraded run of the same certification, down to the lint-only
// floor.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace canvas;
using namespace canvas::core;

namespace {

const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      Iterator i2 = v.iterator();
      Iterator i3 = i1;
      i1.next();
      i1.remove();
      if (*) { i2.next(); }
      if (*) { i3.next(); }
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

const char *VersionedLoopClient = R"(
  class Loop {
    void main() {
      Set s = new Set();
      while (*) {
        s.add();
        Iterator i = s.iterator();
        while (*) { i.next(); }
      }
    }
  }
)";

CertificationReport certifyWith(EngineKind K, const CertifierOptions &Opts,
                                const char *Client) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags, {}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return C.certifySource(Client, Diags);
}

/// Client locations ("line:col") of the unproven verdicts.
std::set<std::string> flaggedLocs(const CertificationReport &R) {
  std::set<std::string> Out;
  for (const CheckVerdict &C : R.Checks)
    if (C.Outcome == CheckOutcome::Potential ||
        C.Outcome == CheckOutcome::Definite)
      Out.insert(C.Loc.str());
  return Out;
}

bool isSubset(const std::set<std::string> &A,
              const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (!B.count(X))
      return false;
  return true;
}

void expectDegradedCovers(EngineKind Requested, const CertifierOptions &Opts,
                          const char *Client) {
  CertificationReport Full = certifyWith(Requested, {}, Client);
  ASSERT_FALSE(Full.Degraded);
  CertificationReport Degraded = certifyWith(Requested, Opts, Client);
  ASSERT_TRUE(Degraded.Degraded) << Degraded.str();
  EXPECT_TRUE(isSubset(flaggedLocs(Full), flaggedLocs(Degraded)))
      << "full run flags:\n"
      << Full.str() << "\ndegraded run flags:\n"
      << Degraded.str();
}

TEST(RobustnessSoundnessTest, LintFloorCoversFullRunFlags) {
  CertifierOptions Floor;
  Floor.Budget.MaxIterations = 1; // Exhausts every rung.
  for (EngineKind K :
       {EngineKind::TVLARelational, EngineKind::SCMPInterproc,
        EngineKind::SCMPIntra}) {
    expectDegradedCovers(K, Floor, Fig3Client);
    expectDegradedCovers(K, Floor, VersionedLoopClient);
  }
}

TEST(RobustnessSoundnessTest, OneRungDownCoversFullRunFlags) {
  CertifierOptions OneDown;
  OneDown.EngineBudgets[EngineKind::TVLARelational].MaxIterations = 1;
  expectDegradedCovers(EngineKind::TVLARelational, OneDown, Fig3Client);
}

TEST(RobustnessSoundnessTest, FaultDegradationCoversFullRunFlags) {
  support::clearFaultPlan();
  CertificationReport Full =
      certifyWith(EngineKind::SCMPInterproc, {}, Fig3Client);
  ASSERT_FALSE(Full.Degraded);

  support::setFaultPlan({"ifds.solve", 1, support::FaultKind::Throw});
  CertificationReport Degraded =
      certifyWith(EngineKind::SCMPInterproc, {}, Fig3Client);
  support::clearFaultPlan();
  ASSERT_TRUE(Degraded.Degraded);
  EXPECT_EQ(Degraded.EffectiveEngine, "scmp-intra");
  EXPECT_TRUE(isSubset(flaggedLocs(Full), flaggedLocs(Degraded)))
      << Full.str() << Degraded.str();
}

TEST(RobustnessSoundnessTest, FloorEnumeratesAllObligations) {
  // The floor flags every obligation the precise engines reason about:
  // its flagged set is the whole obligation set.
  CertifierOptions Floor;
  Floor.Budget.MaxIterations = 1;
  CertificationReport Full =
      certifyWith(EngineKind::TVLARelational, {}, Fig3Client);
  CertificationReport FloorR =
      certifyWith(EngineKind::TVLARelational, Floor, Fig3Client);
  EXPECT_EQ(FloorR.numChecks(), Full.numChecks());
  EXPECT_EQ(FloorR.numFlagged(), FloorR.numChecks());
}

} // namespace
