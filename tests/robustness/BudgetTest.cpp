//===----------------------------------------------------------------------===//
// Tests for the per-stage resource budgets (support/Budget.h) and the
// certification supervisor's degradation ladder: exhausting any
// engine's budget must step down the ladder (never abort), and the
// floor is a Stage-0 lint-only report with every obligation Potential.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;
using support::CancelToken;
using support::StageBudget;

namespace {

const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      Iterator i2 = v.iterator();
      Iterator i3 = i1;
      i1.next();
      i1.remove();
      if (*) { i2.next(); }
      if (*) { i3.next(); }
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

CertificationReport certifyWith(EngineKind K, const CertifierOptions &Opts,
                                const char *Client = Fig3Client) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags, {}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return C.certifySource(Client, Diags);
}

TEST(RobustnessBudgetTest, UnlimitedTokenNeverThrows) {
  CancelToken Tok;
  for (int I = 0; I != 10000; ++I)
    Tok.tick();
  Tok.noteStructures(1u << 20);
  Tok.addAllocation(uint64_t(1) << 40);
  EXPECT_EQ(Tok.spend().Iterations, 10000u);
  EXPECT_EQ(Tok.spend().PeakStructures, 1u << 20);
}

TEST(RobustnessBudgetTest, IterationCeilingThrows) {
  StageBudget B;
  B.MaxIterations = 3;
  CancelToken Tok(B, "test");
  Tok.tick();
  Tok.tick();
  Tok.tick();
  try {
    Tok.tick();
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::BudgetIterations);
    EXPECT_EQ(E.stage(), "test");
    EXPECT_TRUE(isBudgetError(E.kind()));
  }
}

TEST(RobustnessBudgetTest, StructureCeilingThrowsAndTracksPeak) {
  StageBudget B;
  B.MaxStructures = 10;
  CancelToken Tok(B, "test");
  Tok.noteStructures(7);
  EXPECT_EQ(Tok.spend().PeakStructures, 7u);
  EXPECT_THROW(Tok.noteStructures(11), CertifyError);
}

TEST(RobustnessBudgetTest, AllocationCeilingThrows) {
  StageBudget B;
  B.MaxAllocBytes = 100;
  CancelToken Tok(B, "test");
  Tok.addAllocation(60);
  try {
    Tok.addAllocation(60);
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::BudgetAllocation);
  }
}

TEST(RobustnessBudgetTest, DeadlineThrowsOnTick) {
  StageBudget B;
  B.DeadlineMicros = 0.001; // Sub-nanosecond: any tick is past due.
  CancelToken Tok(B, "test");
  try {
    // The clock must advance past 1ns eventually.
    for (int I = 0; I != 1000000; ++I)
      Tok.tick();
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::BudgetDeadline);
  }
}

TEST(RobustnessBudgetTest, UnbudgetedRunIsNotDegraded) {
  CertificationReport R = certifyWith(EngineKind::SCMPIntra, {});
  EXPECT_FALSE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "scmp-intra");
  ASSERT_EQ(R.Stages.size(), 1u);
  EXPECT_TRUE(R.Stages[0].Completed);
  EXPECT_GT(R.Stages[0].Spend.Iterations, 0u);
  EXPECT_EQ(R.numChecks(), 5u);
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
  for (const CheckVerdict &C : R.Checks)
    EXPECT_FALSE(C.Degraded);
}

TEST(RobustnessBudgetTest, TVLABudgetExhaustionDegradesDownLadder) {
  CertifierOptions Opts;
  Opts.EngineBudgets[EngineKind::TVLARelational].MaxIterations = 1;
  CertificationReport R = certifyWith(EngineKind::TVLARelational, Opts);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "tvla-independent") << R.str();
  ASSERT_GE(R.Stages.size(), 2u);
  EXPECT_FALSE(R.Stages[0].Completed);
  EXPECT_NE(R.Stages[0].FailReason.find("budget-iterations"),
            std::string::npos)
      << R.Stages[0].FailReason;
  EXPECT_TRUE(R.Stages.back().Completed);
  // Unproven verdicts carry the degradation marker; Safe stays clean.
  EXPECT_EQ(R.numChecks(), 5u);
  for (const CheckVerdict &C : R.Checks) {
    bool Unproven = C.Outcome == CheckOutcome::Potential ||
                    C.Outcome == CheckOutcome::Definite;
    EXPECT_EQ(C.Degraded, Unproven) << C.What;
    if (C.Degraded) {
      EXPECT_NE(C.DegradeNote.find("tvla-relational"), std::string::npos);
    }
  }
}

TEST(RobustnessBudgetTest, InterprocDeadlineDegradesToIntra) {
  CertifierOptions Opts;
  Opts.EngineBudgets[EngineKind::SCMPInterproc].DeadlineMicros = 0.001;
  CertificationReport R = certifyWith(EngineKind::SCMPInterproc, Opts);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "scmp-intra") << R.str();
  // The intraprocedural fallback still certifies Fig. 3 fully.
  EXPECT_EQ(R.numChecks(), 5u);
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
}

TEST(RobustnessBudgetTest, GlobalBudgetExhaustsEveryRungToLintFloor) {
  CertifierOptions Opts;
  Opts.Budget.MaxIterations = 1; // Too small for any engine's fixpoint.
  CertificationReport R = certifyWith(EngineKind::TVLARelational, Opts);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "lint-only") << R.str();
  // Every rung was attempted and none completed.
  EXPECT_GE(R.Stages.size(), 4u);
  for (const StageAttempt &A : R.Stages)
    EXPECT_FALSE(A.Completed) << A.Engine;
  // The floor reports every obligation, conservatively Potential.
  EXPECT_EQ(R.numChecks(), 5u) << R.str();
  for (const CheckVerdict &C : R.Checks) {
    EXPECT_EQ(C.Outcome, CheckOutcome::Potential);
    EXPECT_TRUE(C.Degraded);
    EXPECT_FALSE(C.DegradeNote.empty());
  }
  EXPECT_NE(R.str().find("engine degraded"), std::string::npos);
}

TEST(RobustnessBudgetTest, DegradeOffPropagatesBudgetError) {
  CertifierOptions Opts;
  Opts.Degrade = false;
  Opts.Budget.MaxIterations = 1;
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {}, Opts);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_THROW(C.certifySource(Fig3Client, Diags), CertifyError);
}

TEST(RobustnessBudgetTest, MissingMainSkipsInterprocRung) {
  const char *NoMain = R"(
    class C {
      void helper() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
      }
    }
  )";
  CertificationReport R =
      certifyWith(EngineKind::SCMPInterproc, {}, NoMain);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "scmp-intra") << R.str();
  ASSERT_GE(R.Stages.size(), 2u);
  EXPECT_FALSE(R.Stages[0].Completed);
  EXPECT_NE(R.Stages[0].FailReason.find("main()"), std::string::npos);
}

TEST(RobustnessBudgetTest, SpendIsReportedPerStage) {
  CertificationReport R = certifyWith(EngineKind::TVLARelational, {});
  ASSERT_EQ(R.Stages.size(), 1u);
  EXPECT_TRUE(R.Stages[0].Completed);
  EXPECT_GT(R.Stages[0].Spend.Iterations, 0u);
  EXPECT_GT(R.Stages[0].Spend.Micros, 0.0);
  EXPECT_GT(R.Stages[0].Spend.PeakStructures, 0u);
}

} // namespace
