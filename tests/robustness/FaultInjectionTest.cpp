//===----------------------------------------------------------------------===//
// Tests for the deterministic fault-injection hook
// (CANVAS_FAULT=<site>:<n>[:<kind>]): every probe site must be
// reachable, every injected fault must degrade gracefully inside the
// supervisor, and must propagate as CertifyError when degradation is
// off.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

using namespace canvas;
using namespace canvas::core;
using namespace canvas::support;

namespace {

const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      Iterator i2 = v.iterator();
      Iterator i3 = i1;
      i1.next();
      i1.remove();
      if (*) { i2.next(); }
      if (*) { i3.next(); }
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

/// Disarms any leftover plan before and after each test.
class RobustnessFaultTest : public ::testing::Test {
protected:
  void SetUp() override { clearFaultPlan(); }
  void TearDown() override { clearFaultPlan(); }
};

CertificationReport certifyWith(EngineKind K,
                                const CertifierOptions &Opts = {}) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags, {}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return C.certifySource(Fig3Client, Diags);
}

TEST_F(RobustnessFaultTest, ParsePlanForms) {
  FaultPlan P;
  ASSERT_TRUE(parseFaultPlan("ifds.solve:3", P));
  EXPECT_EQ(P.Site, "ifds.solve");
  EXPECT_EQ(P.AtProbe, 3u);
  EXPECT_EQ(P.Kind, FaultKind::Throw);

  ASSERT_TRUE(parseFaultPlan("tvla.fixpoint:1:timeout", P));
  EXPECT_EQ(P.Kind, FaultKind::Timeout);
  ASSERT_TRUE(parseFaultPlan("boolprog.intra:2:alloc", P));
  EXPECT_EQ(P.Kind, FaultKind::AllocFail);
  ASSERT_TRUE(parseFaultPlan("dataflow.solve:7:throw", P));
  EXPECT_EQ(P.Kind, FaultKind::Throw);
  ASSERT_TRUE(parseFaultPlan("store-commit:2:short", P));
  EXPECT_EQ(P.Site, "store-commit");
  EXPECT_EQ(P.Kind, FaultKind::ShortWrite);

  EXPECT_FALSE(parseFaultPlan("", P));
  EXPECT_FALSE(parseFaultPlan("nosite", P));
  EXPECT_FALSE(parseFaultPlan(":1", P));
  EXPECT_FALSE(parseFaultPlan("site:", P));
  EXPECT_FALSE(parseFaultPlan("site:0", P));
  EXPECT_FALSE(parseFaultPlan("site:x", P));
  EXPECT_FALSE(parseFaultPlan("site:1:bogus", P));
}

TEST_F(RobustnessFaultTest, SiteListIsCanonical) {
  const std::vector<std::string> &Sites = faultSites();
  ASSERT_EQ(Sites.size(), 12u);
  for (const char *S :
       {"dataflow.solve", "boolprog.intra", "boolprog.interproc",
        "ifds.solve", "tvla.fixpoint", "generic.allocsite", "cert-check",
        "points-to", "store-open", "store-read", "store-commit",
        "store-recover"})
    EXPECT_NE(std::find(Sites.begin(), Sites.end(), S), Sites.end()) << S;
}

/// The engine whose ladder run exercises each probe site first.
EngineKind engineForSite(const std::string &Site) {
  if (Site == "boolprog.interproc" || Site == "ifds.solve")
    return EngineKind::SCMPInterproc;
  if (Site == "tvla.fixpoint" || Site == "cert-check")
    return EngineKind::TVLARelational;
  if (Site == "generic.allocsite")
    return EngineKind::GenericAllocSite;
  return EngineKind::SCMPIntra; // dataflow.solve, boolprog.intra.
}

TEST_F(RobustnessFaultTest, EveryProbeSiteFiresAndDegrades) {
  for (const std::string &Site : faultSites()) {
    setFaultPlan({Site, 1, FaultKind::Throw});
    // The cert-check probe sits inside cert::Checker::check(); it is
    // only reached when the run emits and re-validates certificates.
    // The points-to probe requires the opt-in pre-analysis; the store
    // probes require an active persistent store.
    CertifierOptions Opts;
    if (Site == "cert-check")
      Opts.EmitCertificates = Opts.CheckCertificates = true;
    if (Site == "points-to")
      Opts.PointsTo = true;
    if (Site.rfind("store-", 0) == 0) {
      // A store fault is absorbed as a structured StoreIO incident (the
      // run continues storeless or uncached) — the engine rung itself
      // must complete undegraded with the storeless verdicts.
      const std::string Dir =
          ::testing::TempDir() + "/fault-site-store-" + Site;
      std::filesystem::remove_all(Dir);
      Opts.StorePath = Dir;
      CertificationReport R = certifyWith(engineForSite(Site), Opts);
      EXPECT_FALSE(R.Degraded) << Site << "\n" << R.str();
      EXPECT_GT(R.numChecks(), 0u) << Site << "\n" << R.str();
      EXPECT_TRUE(R.Store.Enabled) << Site;
      bool SawIncident = false;
      for (const store::StoreIncident &I : R.Store.Incidents)
        SawIncident |= I.Kind == "StoreIO";
      EXPECT_TRUE(SawIncident)
          << Site << ": injected store fault left no StoreIO incident";
      clearFaultPlan();
      std::filesystem::remove_all(Dir);
      continue;
    }
    CertificationReport R = certifyWith(engineForSite(Site), Opts);
    if (Site == "points-to") {
      // The points-to pre-analysis is a refinement, not a rung: an
      // injected fault there degrades precision (unrefined slicing
      // gates, no report statistics), never the engine.
      EXPECT_FALSE(R.Degraded) << Site << "\n" << R.str();
      ASSERT_FALSE(R.Stages.empty()) << Site;
      EXPECT_TRUE(R.Stages[0].Completed) << Site;
      EXPECT_FALSE(R.PointsTo.Enabled) << Site;
      EXPECT_GT(R.numChecks(), 0u) << Site << "\n" << R.str();
      clearFaultPlan();
      continue;
    }
    EXPECT_TRUE(R.Degraded) << Site;
    ASSERT_FALSE(R.Stages.empty()) << Site;
    EXPECT_FALSE(R.Stages[0].Completed) << Site;
    EXPECT_NE(R.Stages[0].FailReason.find("injected-fault"),
              std::string::npos)
        << Site << ": " << R.Stages[0].FailReason;
    // The report is never empty-handed: either a cheaper engine
    // completed or the lint-only floor enumerated the obligations.
    EXPECT_GT(R.numChecks(), 0u) << Site << "\n" << R.str();
    clearFaultPlan();
  }
}

TEST_F(RobustnessFaultTest, GenericFaultReachesLintOnlyFloor) {
  // generic-allocsite is the bottom rung: a fault there exhausts the
  // ladder entirely.
  setFaultPlan({"generic.allocsite", 1, FaultKind::Throw});
  CertificationReport R = certifyWith(EngineKind::GenericAllocSite);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.EffectiveEngine, "lint-only") << R.str();
  EXPECT_EQ(R.numChecks(), 5u);
  for (const CheckVerdict &C : R.Checks)
    EXPECT_EQ(C.Outcome, CheckOutcome::Potential);
}

TEST_F(RobustnessFaultTest, TimeoutKindReportsDeadline) {
  setFaultPlan({"tvla.fixpoint", 1, FaultKind::Timeout});
  CertificationReport R = certifyWith(EngineKind::TVLARelational);
  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Stages.empty());
  EXPECT_NE(R.Stages[0].FailReason.find("budget-deadline"),
            std::string::npos)
      << R.Stages[0].FailReason;
}

TEST_F(RobustnessFaultTest, AllocKindReportsAllocation) {
  setFaultPlan({"ifds.solve", 1, FaultKind::AllocFail});
  CertificationReport R = certifyWith(EngineKind::SCMPInterproc);
  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Stages.empty());
  EXPECT_NE(R.Stages[0].FailReason.find("budget-allocation"),
            std::string::npos)
      << R.Stages[0].FailReason;
}

TEST_F(RobustnessFaultTest, NthProbeFiresLater) {
  // Probe 1 fires on the first worklist pop; a large N on the same site
  // never fires within this small client.
  setFaultPlan({"boolprog.intra", 1000000, FaultKind::Throw});
  CertificationReport R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_FALSE(R.Degraded) << R.str();

  setFaultPlan({"boolprog.intra", 2, FaultKind::Throw});
  R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_TRUE(R.Degraded);
}

TEST_F(RobustnessFaultTest, PlanFiresAtMostOnce) {
  setFaultPlan({"dataflow.solve", 1, FaultKind::Throw});
  CertificationReport R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_TRUE(R.Degraded);
  // The fired plan stays disarmed: the next run is clean.
  R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_FALSE(R.Degraded);
}

TEST_F(RobustnessFaultTest, DegradeOffPropagatesInjectedFault) {
  setFaultPlan({"boolprog.intra", 1, FaultKind::Throw});
  CertifierOptions Opts;
  Opts.Degrade = false;
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {}, Opts);
  ASSERT_FALSE(Diags.hasErrors());
  try {
    C.certifySource(Fig3Client, Diags);
    FAIL() << "expected CertifyError";
  } catch (const CertifyError &E) {
    EXPECT_EQ(E.kind(), CertifyErrorKind::InjectedFault);
    EXPECT_EQ(E.stage(), "boolprog.intra");
  }
}

TEST_F(RobustnessFaultTest, EnvironmentPlanIsHonored) {
  // The ci.sh fault pass drives this path with a real environment
  // variable; here we set it in-process and force a re-consult.
  ASSERT_EQ(setenv("CANVAS_FAULT", "boolprog.intra:1", 1), 0);
  reloadFaultPlanFromEnvironment();
  CertificationReport R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_TRUE(R.Degraded) << R.str();
  unsetenv("CANVAS_FAULT");
  clearFaultPlan();
}

// Driven by tools/ci.sh with CANVAS_FAULT=<site>:1[:<kind>] for every
// probe site: certification must survive whatever fault the
// environment armed — no crash, no empty-handed report. The scenario
// list is derived from the shared support::faultSites() registry (not
// a hard-coded copy), so a new probe site automatically gets coverage
// here: every site's enabling scenario (engine, opt-in pre-analysis,
// certificate checking, persistent store) runs on every invocation,
// and whichever one the environment targeted absorbs the fault. The
// assertions also hold with no fault set, so the test is valid in the
// plain suite run. Deliberately not a RobustnessFaultTest fixture
// member: clearFaultPlan() would shadow the environment plan.
TEST(RobustnessEnvFaultTest, SurvivesAnyEnvironmentFault) {
  for (EngineKind K :
       {EngineKind::TVLARelational, EngineKind::TVLAIndependent,
        EngineKind::SCMPInterproc, EngineKind::SCMPIntra,
        EngineKind::GenericAllocSite}) {
    CertificationReport R = certifyWith(K);
    EXPECT_GT(R.numChecks(), 0u)
        << engineName(K) << " left the report empty-handed:\n"
        << R.str();
    if (R.Degraded) {
      ASSERT_FALSE(R.Stages.empty()) << engineName(K);
      EXPECT_FALSE(R.Stages[0].Completed) << engineName(K);
    }
  }

  for (const std::string &Site : faultSites()) {
    if (Site == "cert-check") {
      // Arms only inside the certificate checker: run with emission +
      // independent checking; a fault there must degrade the rung,
      // never crash or empty the report.
      CertifierOptions Opts;
      Opts.EmitCertificates = Opts.CheckCertificates = true;
      CertificationReport R = certifyWith(EngineKind::TVLARelational, Opts);
      EXPECT_GT(R.numChecks(), 0u)
          << "certificate-checked run left the report empty-handed:\n"
          << R.str();
    } else if (Site == "points-to") {
      // Arms only inside the opt-in pre-analysis; a fault there
      // degrades the refinement gracefully — the SCMPIntra rung itself
      // completes unrefined.
      CertifierOptions Opts;
      Opts.PointsTo = true;
      CertificationReport R = certifyWith(EngineKind::SCMPIntra, Opts);
      EXPECT_GT(R.numChecks(), 0u)
          << "points-to run left the report empty-handed:\n"
          << R.str();
      EXPECT_FALSE(R.Degraded) << R.str();
    } else if (Site.rfind("store-", 0) == 0) {
      // Arms only with an active persistent store: run cold then warm
      // so open/recover/read/commit are all reached. A store fault is
      // absorbed as a StoreIO incident; the rung never degrades and
      // the verdicts never change.
      const std::string Dir =
          ::testing::TempDir() + "/env-fault-store-" + Site;
      std::filesystem::remove_all(Dir);
      CertifierOptions Opts;
      Opts.StorePath = Dir;
      CertificationReport Cold = certifyWith(EngineKind::SCMPIntra, Opts);
      EXPECT_GT(Cold.numChecks(), 0u)
          << Site << " cold store run left the report empty-handed:\n"
          << Cold.str();
      EXPECT_FALSE(Cold.Degraded) << Site << "\n" << Cold.str();
      CertificationReport Warm = certifyWith(EngineKind::SCMPIntra, Opts);
      EXPECT_FALSE(Warm.Degraded) << Site << "\n" << Warm.str();
      EXPECT_EQ(Warm.str(), Cold.str())
          << Site << ": store fault changed the report";
      std::filesystem::remove_all(Dir);
    }
    // The engine sites are covered by the ladder loop above.
  }
}

TEST_F(RobustnessFaultTest, MalformedEnvironmentPlanIsIgnored) {
  ASSERT_EQ(setenv("CANVAS_FAULT", "not-a-plan", 1), 0);
  reloadFaultPlanFromEnvironment();
  CertificationReport R = certifyWith(EngineKind::SCMPIntra);
  EXPECT_FALSE(R.Degraded);
  unsetenv("CANVAS_FAULT");
  clearFaultPlan();
}

} // namespace
