//===----------------------------------------------------------------------===//
// Malformed-input corpus: truncated, garbled, and partially-broken
// specs and clients must produce diagnostics and partial ASTs — never
// a crash, never an abort, and never a diagnostic-per-token cascade.
//===----------------------------------------------------------------------===//

#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "easl/Parser.h"

#include <gtest/gtest.h>

#include <string>

using namespace canvas;
using namespace canvas::core;

namespace {

const char *GoodClient = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      i1.next();
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

TEST(RobustnessMalformedTest, TruncatedClientCorpusNeverCrashes) {
  std::string Src = GoodClient;
  // Every prefix of a valid client must parse without crashing; most
  // are malformed and must produce at least one diagnostic.
  for (size_t Len = 0; Len <= Src.size(); Len += 7) {
    DiagnosticEngine Diags;
    cj::Program P = cj::parseProgram(Src.substr(0, Len), Diags);
    (void)P;
  }
  SUCCEED();
}

TEST(RobustnessMalformedTest, TruncatedSpecCorpusNeverCrashes) {
  std::string Src = easl::cmpSpecSource();
  for (size_t Len = 0; Len <= Src.size(); Len += 13) {
    DiagnosticEngine Diags;
    easl::Spec S = easl::parseSpec(Src.substr(0, Len), Diags);
    (void)S;
  }
  SUCCEED();
}

TEST(RobustnessMalformedTest, GarbledTokensProduceBoundedDiagnostics) {
  DiagnosticEngine Diags;
  // 200 junk tokens before the class: recovery must skip to the class
  // keyword with a single diagnostic, not one per token.
  std::string Junk;
  for (int I = 0; I != 200; ++I)
    Junk += "junk ";
  cj::Program P = cj::parseProgram(Junk + GoodClient, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_LE(Diags.errorCount(), 5u) << Diags.str();
  ASSERT_EQ(P.Classes.size(), 1u); // The class still parsed.
}

TEST(RobustnessMalformedTest, ClientCollectsMultipleDiagnostics) {
  const char *TwoBroken = R"(
    class A {
      void main() {
        Set s = new Set()    // missing ';'
        s.add(;              // garbled call
      }
    }
    junk junk junk
    class B {
      void helper() {
        Iterator i = ;       // missing initializer expression
        i.next();
      }
    }
  )";
  DiagnosticEngine Diags;
  cj::Program P = cj::parseProgram(TwoBroken, Diags);
  // Errors from both classes and the junk between them are collected in
  // one pass, and both classes survive in the partial AST.
  EXPECT_GE(Diags.errorCount(), 3u) << Diags.str();
  EXPECT_EQ(P.Classes.size(), 2u);
  EXPECT_EQ(P.Classes[0].Name, "A");
  EXPECT_EQ(P.Classes[1].Name, "B");
}

TEST(RobustnessMalformedTest, SpecCollectsMultipleDiagnostics) {
  const char *BrokenSpec = R"(
    class Version { }
    stray tokens here
    class Set {
      Version ver;
      void add() {
        this.ver = new Version()   // missing ';'
      }
    }
  )";
  DiagnosticEngine Diags;
  easl::Spec S = easl::parseSpec(BrokenSpec, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(S.Classes.size(), 2u) << Diags.str();
  EXPECT_EQ(S.Classes[0].Name, "Version");
  EXPECT_EQ(S.Classes[1].Name, "Set");
}

TEST(RobustnessMalformedTest, UnterminatedCommentAndString) {
  DiagnosticEngine D1, D2;
  cj::parseProgram("class C { /* never closed", D1);
  EXPECT_TRUE(D1.hasErrors());
  easl::parseSpec("class C { \"never closed", D2);
  EXPECT_TRUE(D2.hasErrors());
}

TEST(RobustnessMalformedTest, MalformedSpecFailsCertifierConstruction) {
  DiagnosticEngine Diags;
  Certifier C("class {{{ not a spec", EngineKind::SCMPIntra, Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(RobustnessMalformedTest, MalformedClientYieldsEmptyReportNotCrash) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  CertificationReport R =
      C.certifySource("void main() { this is not CJ }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(R.numChecks(), 0u);
}

TEST(RobustnessMalformedTest, DeepNestingParsesWithoutOverflow) {
  // 200 nested blocks: recursion depth must stay manageable and the
  // parser must not crash on the matching truncated variant either.
  std::string Src = "class C { void main() { ";
  for (int I = 0; I != 200; ++I)
    Src += "if (*) { ";
  Src += "Set s = new Set(); ";
  for (int I = 0; I != 200; ++I)
    Src += "} ";
  Src += "} }";
  DiagnosticEngine Diags;
  cj::Program P = cj::parseProgram(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  DiagnosticEngine Diags2;
  cj::parseProgram(Src.substr(0, Src.size() / 2), Diags2);
  SUCCEED();
}

} // namespace
