//===----------------------------------------------------------------------===//
// Tests for the parallel certification fan-out: per-method analyses run
// concurrently on a bounded task pool, and the merged report must be
// byte-identical to the serial run for every worker count. Also
// differential soundness of the relational TVLA cap/smoothing paths
// against the concrete reference executor.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"

#include "client/Parser.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;

namespace {

/// Several independent methods with different verdict mixes, so the
/// merge order is observable: safe loops, a definite violation, a
/// potential one, and an uninitialized-use lint.
const char *MultiMethodClient = R"(
  class Multi {
    void safeLoop() {
      Set s = new Set();
      while (*) {
        s.add();
        Iterator i = s.iterator();
        while (*) { i.next(); }
      }
    }
    void buggy() {
      Set s = new Set();
      Iterator i = s.iterator();
      s.add();
      i.next();
    }
    void branchy() {
      Set s = new Set();
      Iterator i = s.iterator();
      if (*) { s.add(); }
      i.next();
    }
    void twoIters() {
      Set s = new Set();
      Iterator i = s.iterator();
      Iterator j = s.iterator();
      i.next();
      j.next();
      i.remove();
      if (*) { j.next(); }
    }
    void main() {
      Set v = new Set();
      Iterator i = v.iterator();
      i.next();
    }
  }
)";

/// Heavy use of iterator refresh under branches: the relational engine
/// hits both the points-to smoothing path and (under a small cap) the
/// overflow-join path.
const char *SmoothingClient = R"(
  class Smoothy {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      Iterator j = s.iterator();
      while (*) {
        if (*) { i = s.iterator(); }
        if (*) { j = s.iterator(); }
        i.next();
        if (*) { s.add(); }
        j.next();
      }
    }
  }
)";

struct RunOutput {
  CertificationReport Report;
  std::string Diags;
};

RunOutput certifyWithWorkers(EngineKind K, const char *Client,
                             unsigned Workers,
                             unsigned TVLACap = 256) {
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.Workers = Workers;
  Opts.TVLAMaxStructuresPerPoint = TVLACap;
  Certifier C(easl::cmpSpecSource(), K, Diags, {}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  RunOutput Out;
  Out.Report = C.certifySource(Client, Diags);
  Out.Diags = Diags.str();
  return Out;
}

class ParallelEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ParallelEngineTest, ReportIsByteIdenticalForAnyWorkerCount) {
  RunOutput Serial = certifyWithWorkers(GetParam(), MultiMethodClient, 1);
  for (unsigned Workers : {2u, 3u, 8u}) {
    RunOutput Par = certifyWithWorkers(GetParam(), MultiMethodClient, Workers);
    EXPECT_EQ(Serial.Report.str(), Par.Report.str())
        << "workers=" << Workers;
    EXPECT_EQ(Serial.Diags, Par.Diags) << "workers=" << Workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ParallelEngineTest,
    ::testing::Values(EngineKind::SCMPIntra, EngineKind::GenericAllocSite,
                      EngineKind::TVLAIndependent,
                      EngineKind::TVLARelational, EngineKind::SCMPInterproc),
    [](const ::testing::TestParamInfo<EngineKind> &Info) {
      std::string Name = engineName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(ParallelCertifierTest, PlainIntraPathAlsoDeterministic) {
  // PreAnalysis=false exercises the other SCMPIntra fan-out (per method
  // instead of per plan).
  auto Run = [](unsigned Workers) {
    DiagnosticEngine Diags;
    CertifierOptions Opts;
    Opts.Workers = Workers;
    Opts.PreAnalysis = false;
    Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {},
                Opts);
    return C.certifySource(MultiMethodClient, Diags).str();
  };
  std::string Serial = Run(1);
  EXPECT_EQ(Serial, Run(3));
  EXPECT_EQ(Serial, Run(8));
}

TEST(ParallelCertifierTest, BudgetExhaustionUnderParallelDegrades) {
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.Workers = 4;
  // Too few iterations for any TVLA/interproc rung on this client; the
  // ladder must degrade without crashing or deadlocking, and the shared
  // token's spend must reflect the concurrent ticks.
  Opts.EngineBudgets[EngineKind::TVLARelational] = {0, 5, 0, 0};
  Certifier C(easl::cmpSpecSource(), EngineKind::TVLARelational, Diags, {},
              Opts);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  CertificationReport R = C.certifySource(MultiMethodClient, Diags);
  EXPECT_TRUE(R.Degraded) << R.str();
  ASSERT_FALSE(R.Stages.empty());
  EXPECT_FALSE(R.Stages.front().Completed);
  EXPECT_GT(R.Stages.front().Spend.Iterations, 0u);
  EXPECT_GT(R.numChecks(), 0u);
}

TEST(ParallelCertifierTest, TinyTVLACapHasNoMissedViolations) {
  // Differential validation against the concrete executor: however much
  // precision the cap path gives up, it must never un-flag a real
  // violation (Missed > 0 would be a soundness bug — exactly what the
  // stale-canonical-key bug caused).
  easl::Spec Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  for (const char *Client : {SmoothingClient, MultiMethodClient}) {
    DiagnosticEngine Diags;
    cj::Program P = cj::parseProgram(Client, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    for (unsigned Cap : {1u, 2u, 256u}) {
      CertifierOptions Opts;
      Opts.Workers = 2;
      Opts.TVLAMaxStructuresPerPoint = Cap;
      DiagnosticEngine CDiags;
      Certifier C(easl::cmpSpecSource(), EngineKind::TVLARelational, CDiags,
                  {}, Opts);
      ASSERT_FALSE(CDiags.hasErrors()) << CDiags.str();
      CertificationReport R = C.certify(P, CDiags);
      SiteComparison Cmp = compareWithGroundTruth(R, Spec, P);
      EXPECT_EQ(Cmp.Missed, 0u)
          << "cap=" << Cap << "\n" << Cmp.str() << R.str();
    }
  }
}

} // namespace
