//===----------------------------------------------------------------------===//
// Differential tests for the Stage-0 pre-analysis: with pre-analysis
// enabled, every CheckVerdict (method, location, text, outcome) must be
// identical to the pre-analysis-disabled run on every benchmark client,
// while the boolean programs get smaller. Also covers the definite-
// violation fallback, the lint on a purpose-built bad client, and the
// report plumbing.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"

#include "../../bench/Suite.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace canvas;
using namespace canvas::core;

namespace {

const EngineKind AllEngines[] = {
    EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
    EngineKind::GenericAllocSite, EngineKind::TVLAIndependent,
    EngineKind::TVLARelational};

CertificationReport certifyWith(const char *Source, EngineKind K,
                                bool PreAnalysis,
                                const char *SpecSrc = nullptr) {
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.PreAnalysis = PreAnalysis;
  Certifier C(SpecSrc ? SpecSrc : easl::cmpSpecSource(), K, Diags, {}, Opts);
  CertificationReport R = C.certifySource(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

void expectIdenticalChecks(const CertificationReport &On,
                           const CertificationReport &Off,
                           const std::string &Label) {
  ASSERT_EQ(On.Checks.size(), Off.Checks.size()) << Label;
  for (size_t I = 0; I != On.Checks.size(); ++I) {
    const CheckVerdict &A = On.Checks[I];
    const CheckVerdict &B = Off.Checks[I];
    EXPECT_EQ(A.Method, B.Method) << Label << " check " << I;
    EXPECT_EQ(A.Loc.Line, B.Loc.Line) << Label << " check " << I;
    EXPECT_EQ(A.Loc.Col, B.Loc.Col) << Label << " check " << I;
    EXPECT_EQ(A.What, B.What) << Label << " check " << I;
    EXPECT_EQ(A.Outcome, B.Outcome) << Label << " check " << I;
  }
}

// Every CMP benchmark client gets the same verdicts from SCMPIntra with
// the verdict-preserving transformations on as with them off.
TEST(PreAnalysisDifferentialTest, SCMPIntraVerdictsUnchangedOnSuite) {
  for (const bench::BenchClient &BC : bench::cmpSuite()) {
    CertificationReport On = certifyWith(BC.Source, EngineKind::SCMPIntra, true);
    CertificationReport Off =
        certifyWith(BC.Source, EngineKind::SCMPIntra, false);
    EXPECT_TRUE(On.Pre.Enabled) << BC.Name;
    EXPECT_FALSE(Off.Pre.Enabled) << BC.Name;
    expectIdenticalChecks(On, Off, BC.Name);
  }
}

// The other engines only gain the lint stage; their verdicts must be
// byte-identical too.
TEST(PreAnalysisDifferentialTest, AllEnginesVerdictsUnchanged) {
  const char *Representatives[] = {"fig3", "two-collections", "four-pipelines"};
  for (const bench::BenchClient &BC : bench::cmpSuite()) {
    bool Selected = false;
    for (const char *Name : Representatives)
      Selected |= std::strcmp(BC.Name, Name) == 0;
    if (!Selected)
      continue;
    for (EngineKind K : AllEngines) {
      CertificationReport On = certifyWith(BC.Source, K, true);
      CertificationReport Off = certifyWith(BC.Source, K, false);
      expectIdenticalChecks(On, Off,
                            std::string(BC.Name) + "/" + engineName(K));
    }
  }
}

// The multi-slice client really gets sliced, and slicing shrinks the
// boolean programs.
TEST(PreAnalysisDifferentialTest, FourPipelinesSlicesAndShrinks) {
  const bench::BenchClient *Four = nullptr;
  for (const bench::BenchClient &BC : bench::cmpSuite())
    if (std::strcmp(BC.Name, "four-pipelines") == 0)
      Four = &BC;
  ASSERT_NE(Four, nullptr);

  CertificationReport On = certifyWith(Four->Source, EngineKind::SCMPIntra, true);
  CertificationReport Off =
      certifyWith(Four->Source, EngineKind::SCMPIntra, false);
  EXPECT_GE(On.Pre.MultiSliceMethods, 1u);
  EXPECT_GE(On.Pre.SliceRuns, 4u);
  EXPECT_EQ(On.Pre.FallbackMethods, 0u);
  // The largest per-run boolean program is strictly smaller than the
  // whole-method program, and so is the summed size.
  EXPECT_LT(On.MaxBoolVars, Off.MaxBoolVars);
  EXPECT_LT(On.BoolVars, Off.BoolVars);
  expectIdenticalChecks(On, Off, "four-pipelines");
}

// A definite violation inside one slice triggers the unsliced rerun and
// still reports identical verdicts (including the Definite outcome).
TEST(PreAnalysisDifferentialTest, DefiniteViolationFallsBackUnsliced) {
  const char *Source = R"(
    class Bad {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i.next();
        Set t = new Set();
        Iterator j = t.iterator();
        j.next();
      }
    }
  )";
  CertificationReport On = certifyWith(Source, EngineKind::SCMPIntra, true);
  CertificationReport Off = certifyWith(Source, EngineKind::SCMPIntra, false);
  EXPECT_EQ(On.Pre.FallbackMethods, 1u);
  bool SawDefinite = false;
  for (const CheckVerdict &V : On.Checks)
    SawDefinite |= V.Outcome == bp::CheckOutcome::Definite;
  EXPECT_TRUE(SawDefinite);
  expectIdenticalChecks(On, Off, "definite-fallback");
}

// Checks on pruned (statically unreachable) edges keep their slots in
// the report with an Unreachable outcome.
TEST(PreAnalysisDifferentialTest, PrunedChecksStayInReport) {
  const char *Source = R"(
    class Dead {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
        return;
        s.add();
        i.next();
      }
    }
  )";
  CertificationReport On = certifyWith(Source, EngineKind::SCMPIntra, true);
  CertificationReport Off = certifyWith(Source, EngineKind::SCMPIntra, false);
  EXPECT_GT(On.Pre.EdgesPruned, 0u);
  expectIdenticalChecks(On, Off, "pruned-tail");
  bool SawUnreachable = false;
  for (const CheckVerdict &V : On.Checks)
    SawUnreachable |= V.Outcome == bp::CheckOutcome::Unreachable;
  EXPECT_TRUE(SawUnreachable);
}

// The Stage-0 lint fires on a purpose-built bad client with the exact
// use location, for every engine.
TEST(PreAnalysisDifferentialTest, LintFlagsUninitializedReceiver) {
  const char *Source = R"(
    class Bad {
      void main() {
        Set s = new Set();
        Iterator i;
        if (*) { i = s.iterator(); }
        i.next();
      }
    }
  )";
  // i.next() is on source line 7 of the raw string above.
  unsigned UseLine = 7;
  for (EngineKind K : AllEngines) {
    CertificationReport R = certifyWith(Source, K, true);
    ASSERT_EQ(R.Lints.size(), 1u) << engineName(K);
    EXPECT_EQ(R.Lints[0].Var, "i") << engineName(K);
    EXPECT_EQ(R.Lints[0].Loc.Line, UseLine) << engineName(K);
    EXPECT_TRUE(R.Lints[0].RequiresBearing) << engineName(K);
    EXPECT_NE(R.Lints[0].What.find("may be used before initialization"),
              std::string::npos)
        << engineName(K);
    EXPECT_NE(R.str().find("warning"), std::string::npos) << engineName(K);

    CertificationReport Off = certifyWith(Source, K, false);
    EXPECT_TRUE(Off.Lints.empty()) << engineName(K);
  }
}

// Clean clients produce no lints and the report string has no warnings.
TEST(PreAnalysisDifferentialTest, CleanClientHasNoLints) {
  for (const bench::BenchClient &BC : bench::cmpSuite()) {
    CertificationReport R = certifyWith(BC.Source, EngineKind::SCMPIntra, true);
    EXPECT_TRUE(R.Lints.empty()) << BC.Name;
    EXPECT_EQ(R.str().find("warning"), std::string::npos) << BC.Name;
  }
}

// Dead component stores are removed and the dropped variables shrink B,
// without changing any verdict.
TEST(PreAnalysisDifferentialTest, DeadStoreEliminationShrinksB) {
  const char *Source = R"(
    class Dse {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        Iterator unused = i;
        i.next();
      }
    }
  )";
  CertificationReport On = certifyWith(Source, EngineKind::SCMPIntra, true);
  CertificationReport Off = certifyWith(Source, EngineKind::SCMPIntra, false);
  EXPECT_GE(On.Pre.DeadStoresRemoved, 1u);
  EXPECT_GE(On.Pre.VarsDropped, 1u);
  EXPECT_LT(On.BoolVars, Off.BoolVars);
  expectIdenticalChecks(On, Off, "dse");
}

} // namespace
