#include "core/Evaluation.h"

#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;

namespace {

SiteComparison compare(EngineKind K, const char *ClientSrc) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  cj::Program P = cj::parseProgram(ClientSrc, Diags);
  CertificationReport R = C.certify(P, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return compareWithGroundTruth(R, C.spec(), P);
}

TEST(EvaluationTest, ExactCertifierHasNoFalseAlarms) {
  SiteComparison Cmp = compare(EngineKind::SCMPIntra, R"(
    class M {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i.next();
        i.next();
      }
    }
  )");
  // Only next()/remove() carry requires clauses; the first next()
  // violates and the path aborts, so the second next() site is never
  // concretely reached and only one site enters the comparison.
  EXPECT_EQ(Cmp.Sites, 1u) << Cmp.str();
  EXPECT_EQ(Cmp.ViolatingSites, 1u);
  EXPECT_EQ(Cmp.FlaggedSites, 1u);
  EXPECT_EQ(Cmp.FalseAlarms, 0u);
  EXPECT_EQ(Cmp.Missed, 0u);
  EXPECT_TRUE(Cmp.Exhaustive);
}

TEST(EvaluationTest, CountsBaselineFalseAlarm) {
  SiteComparison Cmp = compare(EngineKind::GenericAllocSite, R"(
    class M {
      void main() {
        Set s = new Set();
        while (*) {
          s.add();
          Iterator i = s.iterator();
          while (*) { i.next(); }
        }
      }
    }
  )");
  EXPECT_EQ(Cmp.FalseAlarms, 1u) << Cmp.str();
  EXPECT_EQ(Cmp.Missed, 0u);
  EXPECT_FALSE(Cmp.Exhaustive); // Loops bound the exploration.
}

TEST(EvaluationTest, StrRendersCounts) {
  SiteComparison Cmp;
  Cmp.Sites = 3;
  Cmp.FlaggedSites = 2;
  Cmp.ViolatingSites = 1;
  Cmp.FalseAlarms = 1;
  std::string S = Cmp.str();
  EXPECT_NE(S.find("3 site(s)"), std::string::npos);
  EXPECT_NE(S.find("1 false alarm(s)"), std::string::npos);
}

TEST(EvaluationTest, InterproceduralSitesAttributedToMethods) {
  SiteComparison Cmp = compare(EngineKind::SCMPInterproc, R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        use(i);
      }
      void use(Iterator it) { it.next(); }
    }
  )");
  EXPECT_EQ(Cmp.Sites, 1u) << Cmp.str(); // it.next() inside use().
  EXPECT_EQ(Cmp.FalseAlarms, 0u);
  EXPECT_EQ(Cmp.Missed, 0u);
}

} // namespace
