//===----------------------------------------------------------------------===//
// Tests for the public Certifier API, the concrete reference
// interpreter, and the Section 3 generic allocation-site baseline.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"

#include "client/CFG.h"
#include "core/GenericBaseline.h"
#include "core/Interpreter.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;

namespace {

const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();
      Iterator i1 = v.iterator();
      Iterator i2 = v.iterator();
      Iterator i3 = i1;
      i1.next();
      i1.remove();
      if (*) { i2.next(); }
      if (*) { i3.next(); }
      v.add();
      if (*) { i1.next(); }
    }
  }
)";

const char *VersionedLoopClient = R"(
  class Loop {
    void main() {
      Set s = new Set();
      while (*) {
        s.add();
        Iterator i = s.iterator();
        while (*) { i.next(); }
      }
    }
  }
)";

CertificationReport runEngine(EngineKind K, const char *Client) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  CertificationReport R = C.certifySource(Client, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

TEST(CertifierTest, SCMPIntraOnFig3) {
  CertificationReport R = runEngine(EngineKind::SCMPIntra, Fig3Client);
  EXPECT_EQ(R.numChecks(), 5u);
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
  EXPECT_EQ(R.numVerified(), 3u);
}

TEST(CertifierTest, InterprocOnFig3MatchesIntra) {
  CertificationReport R = runEngine(EngineKind::SCMPInterproc, Fig3Client);
  EXPECT_EQ(R.numChecks(), 5u);
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
}

TEST(CertifierTest, BaselineFalseAlarmsOnVersionedLoop) {
  // Section 3: the allocation-site analysis cannot distinguish versions
  // allocated inside the loop, so it flags the (actually safe) loop;
  // the staged certifier verifies it.
  CertificationReport Generic =
      runEngine(EngineKind::GenericAllocSite, VersionedLoopClient);
  CertificationReport Staged =
      runEngine(EngineKind::SCMPIntra, VersionedLoopClient);
  EXPECT_GT(Generic.numFlagged(), 0u) << Generic.str();
  EXPECT_EQ(Staged.numFlagged(), 0u) << Staged.str();
}

TEST(CertifierTest, BaselineAgreesOnStraightLineErrors) {
  const char *Bad = R"(
    class Bad {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i.next();
      }
    }
  )";
  CertificationReport Generic = runEngine(EngineKind::GenericAllocSite, Bad);
  EXPECT_EQ(Generic.numFlagged(), 1u) << Generic.str();
}

TEST(CertifierTest, EngineNamesAreStable) {
  EXPECT_STREQ(engineName(EngineKind::SCMPIntra), "scmp-intra");
  EXPECT_STREQ(engineName(EngineKind::TVLARelational), "tvla-relational");
}

TEST(CertifierTest, ReportRenders) {
  CertificationReport R = runEngine(EngineKind::SCMPIntra, Fig3Client);
  std::string S = R.str();
  EXPECT_NE(S.find("verified"), std::string::npos);
  EXPECT_NE(S.find("VIOLATION"), std::string::npos);
  EXPECT_NE(S.find("5 check(s)"), std::string::npos) << S;
}

//===----------------------------------------------------------------------===//
// Concrete reference interpreter (ground truth)
//===----------------------------------------------------------------------===//

struct GT {
  easl::Spec Spec;
  cj::Program Prog;
  cj::ClientCFG CFG;
  GroundTruth Truth;
};

std::unique_ptr<GT> ground(const char *ClientSrc) {
  auto G = std::make_unique<GT>();
  G->Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  G->Prog = cj::parseProgram(ClientSrc, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  G->CFG = cj::buildCFG(G->Prog, G->Spec, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  G->Truth = executeConcretely(G->Spec, G->CFG, *G->CFG.mainCFG());
  return G;
}

unsigned violations(const GroundTruth &T) {
  unsigned N = 0;
  for (const auto &[Site, V] : T.MayViolate)
    N += V;
  return N;
}

TEST(InterpreterTest, Fig3GroundTruth) {
  auto G = ground(Fig3Client);
  EXPECT_TRUE(G->Truth.Exhaustive);
  // Exactly the two real CMEs of Fig. 3 (i2.next and the final i1.next).
  EXPECT_EQ(G->Truth.MayViolate.size(), 5u);
  EXPECT_EQ(violations(G->Truth), 2u);
}

TEST(InterpreterTest, SafeProgramHasNoViolations) {
  auto G = ground(R"(
    class OK {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
        i.remove();
        i.next();
      }
    }
  )");
  EXPECT_TRUE(G->Truth.Exhaustive);
  EXPECT_EQ(violations(G->Truth), 0u);
}

TEST(InterpreterTest, LoopsBoundedExploration) {
  auto G = ground(VersionedLoopClient);
  // The loop makes exhaustive exploration impossible within bounds, but
  // no explored path violates.
  EXPECT_EQ(violations(G->Truth), 0u);
  EXPECT_GT(G->Truth.PathsExplored, 1u);
}

TEST(InterpreterTest, InterproceduralGroundTruth) {
  auto G = ground(R"(
    class M {
      void main() {
        Set v = new Set();
        Iterator i = v.iterator();
        mutate(v);
        i.next();
      }
      void mutate(Set s) { s.add(); }
    }
  )");
  EXPECT_TRUE(G->Truth.Exhaustive);
  EXPECT_EQ(violations(G->Truth), 1u);
}

TEST(InterpreterTest, StaticCertifierIsSoundOnFig3) {
  // Every ground-truth violation must be flagged by the certifier
  // (soundness), and on Fig. 3 the certifier is also exact.
  auto G = ground(Fig3Client);
  CertificationReport R = runEngine(EngineKind::SCMPIntra, Fig3Client);
  EXPECT_EQ(R.numFlagged(), violations(G->Truth));
}

//===----------------------------------------------------------------------===//
// TVLA engines through the Certifier API
//===----------------------------------------------------------------------===//

TEST(CertifierTest, TVLAIndependentOnFig3) {
  CertificationReport R = runEngine(EngineKind::TVLAIndependent, Fig3Client);
  EXPECT_EQ(R.numChecks(), 5u) << R.str();
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
}

TEST(CertifierTest, TVLARelationalOnFig3) {
  CertificationReport R = runEngine(EngineKind::TVLARelational, Fig3Client);
  EXPECT_EQ(R.numChecks(), 5u) << R.str();
  EXPECT_EQ(R.numFlagged(), 2u) << R.str();
}

TEST(CertifierTest, TVLACertifiesVersionedLoop) {
  for (EngineKind K :
       {EngineKind::TVLAIndependent, EngineKind::TVLARelational}) {
    CertificationReport R = runEngine(K, VersionedLoopClient);
    EXPECT_EQ(R.numFlagged(), 0u) << engineName(K) << "\n" << R.str();
  }
}

TEST(CertifierTest, RelationalHasNoPrecisionAdvantageOnBenchmarks) {
  // The Section 7 empirical finding: the relational TVLA configuration
  // had no precision advantage over the independent-attribute one.
  for (const char *Client : {Fig3Client, VersionedLoopClient}) {
    CertificationReport Ind = runEngine(EngineKind::TVLAIndependent, Client);
    CertificationReport Rel = runEngine(EngineKind::TVLARelational, Client);
    EXPECT_EQ(Ind.numFlagged(), Rel.numFlagged());
  }
}

//===----------------------------------------------------------------------===//
// Points-to pre-analysis through the Certifier API
//===----------------------------------------------------------------------===//

const char *StashClient = R"(
  class Stash {
    Set s;
  }
  class C {
    void main() {
      Stash h = new Stash();
      Set a = new Set();
      h.s = a;
      Iterator i = a.iterator();
      i.next();
      Set b = new Set();
      Iterator j = b.iterator();
      j.next();
    }
  }
)";

CertificationReport runWithOptions(const char *Client,
                                   const CertifierOptions &Opts) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags,
              wp::DerivationOptions{}, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  CertificationReport R = C.certifySource(Client, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

TEST(CertifierTest, ForcedSingleReasonSurfacesInReport) {
  // Without points-to, the heap store forces main() into one slice and
  // the report says why.
  CertificationReport R = runWithOptions(StashClient, CertifierOptions{});
  ASSERT_FALSE(R.SliceSummaries.empty());
  EXPECT_EQ(R.SliceSummaries[0].Method, "C::main");
  EXPECT_EQ(R.SliceSummaries[0].Slices, 1u);
  EXPECT_NE(R.SliceSummaries[0].ForcedSingleReason.find("heap"),
            std::string::npos);
  EXPECT_NE(R.str().find("single slice (heap component references)"),
            std::string::npos)
      << R.str();
}

TEST(CertifierTest, PointsToStatsSurfaceInReport) {
  CertifierOptions Opts;
  Opts.PointsTo = true;
  CertificationReport R = runWithOptions(StashClient, Opts);
  EXPECT_TRUE(R.PointsTo.Enabled);
  EXPECT_TRUE(R.PointsTo.HasMain);
  EXPECT_GT(R.PointsTo.Objects, 0u);
  EXPECT_GT(R.PointsTo.Constraints, 0u);
  EXPECT_GE(R.PointsTo.HeapSites, 1u);
  EXPECT_EQ(R.PointsTo.ReachableMethods, 1u);
  EXPECT_NE(R.str().find("points-to:"), std::string::npos) << R.str();

  // The alias refinement splits the two pipelines despite the heap
  // store, so no forced-single reason remains.
  ASSERT_FALSE(R.SliceSummaries.empty());
  EXPECT_EQ(R.SliceSummaries[0].Slices, 2u) << R.str();
  EXPECT_TRUE(R.SliceSummaries[0].ForcedSingleReason.empty());
}

TEST(CertifierTest, PointsToPrunesUnreachableMethods) {
  const char *OrphanClient = R"(
    class C {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        i.next();
      }
      void orphan() {
        Set t = new Set();
        Iterator j = t.iterator();
        t.add();
        j.next();
      }
    }
  )";
  CertifierOptions Opts;
  Opts.PointsTo = true;
  CertificationReport R = runWithOptions(OrphanClient, Opts);
  EXPECT_GE(R.PointsTo.PrunedMethods, 1u) << R.str();
  bool SawOrphanCheck = false;
  for (const CheckVerdict &C : R.Checks)
    if (C.Method == "C::orphan") {
      SawOrphanCheck = true;
      EXPECT_EQ(C.Outcome, CheckOutcome::Unreachable) << C.What;
    }
  EXPECT_TRUE(SawOrphanCheck);

  // Without the closed-world evidence the orphan's stale-iterator use
  // is flagged.
  CertificationReport Plain = runWithOptions(OrphanClient, CertifierOptions{});
  EXPECT_GT(Plain.numFlagged(), 0u) << Plain.str();
  EXPECT_EQ(Plain.PointsTo.PrunedMethods, 0u);
}

} // namespace
