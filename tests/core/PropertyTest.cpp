//===----------------------------------------------------------------------===//
// Property-based tests: pseudo-random CMP clients are generated from
// seeds and every engine's verdicts are compared against the concrete
// reference executor.
//
//  - Soundness (all engines): no explored violation goes unflagged.
//  - Exactness (SCMP on straight-line clients): membership of 1 in the
//    possible-value sets is exact w.r.t. MOP, so flagged == violating
//    and there are no false alarms.
//===----------------------------------------------------------------------===//

#include "client/CFG.h"
#include "core/Certifier.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;

namespace {

/// Deterministic linear congruential generator (we avoid global RNG so
/// failures reproduce from the seed).
class LCG {
public:
  explicit LCG(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  unsigned next(unsigned Bound) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<unsigned>((State >> 33) % Bound);
  }

private:
  uint64_t State;
};

/// Generates a CMP client: 2 sets and 3 iterators, all initialized,
/// followed by random component operations. \p WithBranches adds
/// single-level nondeterministic branching.
std::string randomClient(uint64_t Seed, bool WithBranches) {
  LCG R(Seed);
  std::string Body;
  auto Set = [&] { return "s" + std::to_string(R.next(2)); };
  auto Iter = [&] { return "i" + std::to_string(R.next(3)); };
  auto Stmt = [&]() -> std::string {
    switch (R.next(5)) {
    case 0:
      return Set() + ".add();";
    case 1:
      return Iter() + " = " + Set() + ".iterator();";
    case 2:
      return Iter() + ".next();";
    case 3:
      return Iter() + ".remove();";
    default:
      return Iter() + " = " + Iter() + ";";
    }
  };
  unsigned Len = 8 + R.next(8);
  for (unsigned K = 0; K != Len; ++K) {
    if (WithBranches && R.next(4) == 0) {
      Body += "      if (*) { " + Stmt() + " } else { " + Stmt() + " }\n";
      continue;
    }
    Body += "      " + Stmt() + "\n";
  }
  return R"(
    class Rand {
      void main() {
        Set s0 = new Set();
        Set s1 = new Set();
        Iterator i0 = s0.iterator();
        Iterator i1 = s0.iterator();
        Iterator i2 = s1.iterator();
)" + Body + R"(
      }
    }
  )";
}

SiteComparison evaluate(EngineKind K, const std::string &ClientSrc) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  cj::Program P = cj::parseProgram(ClientSrc, Diags);
  CertificationReport R = C.certify(P, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str() << ClientSrc;
  return compareWithGroundTruth(R, C.spec(), P);
}

class SoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessTest, AllEnginesSoundOnBranchyClients) {
  std::string Client = randomClient(GetParam(), /*WithBranches=*/true);
  for (EngineKind K :
       {EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
        EngineKind::TVLAIndependent, EngineKind::TVLARelational,
        EngineKind::GenericAllocSite}) {
    SiteComparison Cmp = evaluate(K, Client);
    EXPECT_TRUE(Cmp.Exhaustive);
    EXPECT_EQ(Cmp.Missed, 0u)
        << engineName(K) << " missed a real violation on:\n"
        << Client;
  }
}

TEST_P(SoundnessTest, SCMPExactOnStraightLineClients) {
  std::string Client = randomClient(GetParam(), /*WithBranches=*/false);
  SiteComparison Cmp = evaluate(EngineKind::SCMPIntra, Client);
  EXPECT_TRUE(Cmp.Exhaustive);
  EXPECT_EQ(Cmp.Missed, 0u) << Client;
  EXPECT_EQ(Cmp.FalseAlarms, 0u)
      << "SCMP must be exact on straight-line clients:\n"
      << Client;
}

//===----------------------------------------------------------------------===//
// MOP exactness of the boolean-program analysis itself (Section 4.3):
// the possible-value analysis computes exactly the values realizable
// over paths of the *transformed* program. This is the paper's precision
// claim — "any imprecision in the certifier arises solely from the
// imprecision in the abstraction used for the client's state". We verify
// the 1-membership direction at every check site by enumerating the
// (acyclic) boolean program's paths concretely.
//===----------------------------------------------------------------------===//

namespace mop {

struct PathRun {
  const bp::BooleanProgram &BP;
  /// may1[check] from concrete path enumeration.
  std::vector<bool> May1;

  explicit PathRun(const bp::BooleanProgram &B)
      : BP(B), May1(B.Checks.size(), false) {}

  void explore(int Node, std::vector<uint8_t> Vals, unsigned Steps) {
    if (Steps > 4096)
      return; // Generated clients are acyclic; this is a safety net.
    for (size_t E = 0; E != BP.CFG->Edges.size(); ++E) {
      if (BP.CFG->Edges[E].From != Node)
        continue;
      std::vector<uint8_t> Next = Vals;
      // Checks against the pre-state; the transformed program of
      // Section 4.3 does not halt at a failed requires clause.
      for (size_t C = 0; C != BP.Checks.size(); ++C) {
        const bp::Check &Chk = BP.Checks[C];
        if (Chk.Edge != static_cast<int>(E))
          continue;
        bool Violated = Chk.Var >= 0 ? Vals[Chk.Var] != 0
                                     : Chk.ConstantViolated;
        May1[C] = May1[C] || Violated;
      }
      for (const auto &[Tgt, Rhs] : BP.EdgeAssignments[E]) {
        uint8_t V = 0;
        switch (Rhs.K) {
        case bp::BoolRhs::Kind::Const:
          V = Rhs.PlusOne;
          break;
        case bp::BoolRhs::Kind::Unknown:
          V = 0; // Sampled below via the 1-valuation run.
          break;
        case bp::BoolRhs::Kind::Or:
          V = Rhs.PlusOne;
          for (int S : Rhs.Sources)
            V |= Vals[S];
          break;
        }
        Next[Tgt] = V;
      }
      explore(BP.CFG->Edges[E].To, std::move(Next), Steps + 1);
    }
  }
};

} // namespace mop

TEST_P(SoundnessTest, PossibleValueAnalysisMatchesBooleanMOP) {
  // Straight-line + branches, acyclic; entry valuation all-zero so the
  // concrete path semantics is fully determined.
  std::string Client = randomClient(GetParam(), /*WithBranches=*/true);
  easl::Spec Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program P = cj::parseProgram(Client, Diags);
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  bp::BooleanProgram BP =
      bp::buildBooleanProgram(Abs, *CFG.mainCFG(), Diags);

  std::vector<bp::ValueSet> Entry(BP.Vars.size(), bp::ValueSet::Zero);
  bp::IntraResult R =
      bp::analyzeIntraproc(BP, Entry, /*AssumeChecksPass=*/false);

  mop::PathRun Paths(BP);
  Paths.explore(CFG.mainCFG()->Entry,
                std::vector<uint8_t>(BP.Vars.size(), 0), 0);

  for (size_t C = 0; C != BP.Checks.size(); ++C) {
    bool AnalysisFlags = R.CheckResults[C] == bp::CheckOutcome::Potential ||
                         R.CheckResults[C] == bp::CheckOutcome::Definite;
    EXPECT_EQ(AnalysisFlags, Paths.May1[C])
        << "check " << C << " (" << BP.Checks[C].What << ") on:\n"
        << Client;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest, ::testing::Range(1, 26));

} // namespace
