//===----------------------------------------------------------------------===//
// Behavior at the SCMP boundary: clients that move component references
// through the heap (object fields) are outside Section 4's restriction.
// Every engine must stay *sound* there — conservative flagging is
// expected, silent verification is not.
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"

#include "client/CFG.h"
#include "easl/Builtins.h"

#include <gtest/gtest.h>

using namespace canvas;
using namespace canvas::core;

namespace {

// Fig. 1's real shape: the worklist Set lives in a field of a client
// object.
const char *HeapWorklist = R"(
  class Worklist {
    Set s;
  }
  class Make {
    void main() {
      Worklist w = new Worklist();
      w.s = new Set();
      Set snapshot = w.s;
      Iterator i = snapshot.iterator();
      w.s.add();
      i.next();
    }
  }
)";

CertificationReport run(EngineKind K, const char *Src) {
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  CertificationReport R = C.certifySource(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return R;
}

TEST(HeapClientTest, CFGFlagsHeapComponentRefs) {
  DiagnosticEngine Diags;
  easl::Spec Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  cj::Program P = cj::parseProgram(HeapWorklist, Diags);
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(CFG.mainCFG()->HasHeapComponentRefs);
}

TEST(HeapClientTest, AllEnginesFlagTheRealHeapBug) {
  // The add() through the heap alias really invalidates i (the snapshot
  // aliases w.s). Every engine must flag i.next() — heap loads havoc
  // the snapshot variable and the heap-receiver call clobbers facts, so
  // the flag is conservative but required for soundness.
  for (EngineKind K :
       {EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
        EngineKind::TVLAIndependent, EngineKind::TVLARelational}) {
    CertificationReport R = run(K, HeapWorklist);
    bool NextFlagged = false;
    for (const CheckVerdict &C : R.Checks)
      if (C.What.find("i.next()") != std::string::npos)
        NextFlagged |= C.Outcome != bp::CheckOutcome::Safe &&
                       C.Outcome != bp::CheckOutcome::Unreachable;
    EXPECT_TRUE(NextFlagged) << engineName(K) << "\n" << R.str();
  }
}

TEST(HeapClientTest, LocalsOnlyRewriteIsPrecise) {
  // The same program with the worklist kept in locals (the SCMP
  // rewrite) is analyzed precisely: the bug is still found, and a
  // fixed variant verifies.
  const char *LocalBuggy = R"(
    class Make {
      void main() {
        Set s = new Set();
        Iterator i = s.iterator();
        s.add();
        i.next();
      }
    }
  )";
  const char *LocalFixed = R"(
    class Make {
      void main() {
        Set s = new Set();
        s.add();
        Iterator i = s.iterator();
        i.next();
      }
    }
  )";
  CertificationReport Buggy = run(EngineKind::SCMPIntra, LocalBuggy);
  EXPECT_EQ(Buggy.numFlagged(), 1u);
  CertificationReport Fixed = run(EngineKind::SCMPIntra, LocalFixed);
  EXPECT_EQ(Fixed.numFlagged(), 0u);
}

TEST(HeapClientTest, OpaqueReceiverMethodsDoNotCrash) {
  // Calls on opaque (non-spec, non-client) types are ignored safely.
  CertificationReport R = run(EngineKind::SCMPIntra, R"(
    class M {
      void main() {
        Object o = null;
        Set s = new Set();
        Iterator i = s.iterator();
        o.toString();
        i.next();
      }
    }
  )");
  EXPECT_EQ(R.numFlagged(), 0u) << R.str();
}

} // namespace
