file(REMOVE_RECURSE
  "CMakeFiles/canvas_tvla.dir/Certify.cpp.o"
  "CMakeFiles/canvas_tvla.dir/Certify.cpp.o.d"
  "CMakeFiles/canvas_tvla.dir/Structure.cpp.o"
  "CMakeFiles/canvas_tvla.dir/Structure.cpp.o.d"
  "libcanvas_tvla.a"
  "libcanvas_tvla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_tvla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
