file(REMOVE_RECURSE
  "libcanvas_tvla.a"
)
