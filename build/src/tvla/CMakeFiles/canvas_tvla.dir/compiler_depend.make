# Empty compiler generated dependencies file for canvas_tvla.
# This may be replaced when dependencies are built.
