file(REMOVE_RECURSE
  "CMakeFiles/canvas_easl.dir/AST.cpp.o"
  "CMakeFiles/canvas_easl.dir/AST.cpp.o.d"
  "CMakeFiles/canvas_easl.dir/Builtins.cpp.o"
  "CMakeFiles/canvas_easl.dir/Builtins.cpp.o.d"
  "CMakeFiles/canvas_easl.dir/Parser.cpp.o"
  "CMakeFiles/canvas_easl.dir/Parser.cpp.o.d"
  "libcanvas_easl.a"
  "libcanvas_easl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_easl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
