# Empty dependencies file for canvas_easl.
# This may be replaced when dependencies are built.
