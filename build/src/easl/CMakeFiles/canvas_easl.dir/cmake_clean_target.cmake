file(REMOVE_RECURSE
  "libcanvas_easl.a"
)
