
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wp/Abstraction.cpp" "src/wp/CMakeFiles/canvas_wp.dir/Abstraction.cpp.o" "gcc" "src/wp/CMakeFiles/canvas_wp.dir/Abstraction.cpp.o.d"
  "/root/repo/src/wp/Derivation.cpp" "src/wp/CMakeFiles/canvas_wp.dir/Derivation.cpp.o" "gcc" "src/wp/CMakeFiles/canvas_wp.dir/Derivation.cpp.o.d"
  "/root/repo/src/wp/MutationRestricted.cpp" "src/wp/CMakeFiles/canvas_wp.dir/MutationRestricted.cpp.o" "gcc" "src/wp/CMakeFiles/canvas_wp.dir/MutationRestricted.cpp.o.d"
  "/root/repo/src/wp/WPEngine.cpp" "src/wp/CMakeFiles/canvas_wp.dir/WPEngine.cpp.o" "gcc" "src/wp/CMakeFiles/canvas_wp.dir/WPEngine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/easl/CMakeFiles/canvas_easl.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/canvas_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/canvas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
