file(REMOVE_RECURSE
  "libcanvas_wp.a"
)
