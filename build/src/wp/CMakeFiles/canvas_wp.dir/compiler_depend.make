# Empty compiler generated dependencies file for canvas_wp.
# This may be replaced when dependencies are built.
