file(REMOVE_RECURSE
  "CMakeFiles/canvas_wp.dir/Abstraction.cpp.o"
  "CMakeFiles/canvas_wp.dir/Abstraction.cpp.o.d"
  "CMakeFiles/canvas_wp.dir/Derivation.cpp.o"
  "CMakeFiles/canvas_wp.dir/Derivation.cpp.o.d"
  "CMakeFiles/canvas_wp.dir/MutationRestricted.cpp.o"
  "CMakeFiles/canvas_wp.dir/MutationRestricted.cpp.o.d"
  "CMakeFiles/canvas_wp.dir/WPEngine.cpp.o"
  "CMakeFiles/canvas_wp.dir/WPEngine.cpp.o.d"
  "libcanvas_wp.a"
  "libcanvas_wp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_wp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
