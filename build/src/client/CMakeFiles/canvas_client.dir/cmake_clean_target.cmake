file(REMOVE_RECURSE
  "libcanvas_client.a"
)
