# Empty compiler generated dependencies file for canvas_client.
# This may be replaced when dependencies are built.
