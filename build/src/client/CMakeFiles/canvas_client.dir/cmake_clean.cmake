file(REMOVE_RECURSE
  "CMakeFiles/canvas_client.dir/CFG.cpp.o"
  "CMakeFiles/canvas_client.dir/CFG.cpp.o.d"
  "CMakeFiles/canvas_client.dir/Parser.cpp.o"
  "CMakeFiles/canvas_client.dir/Parser.cpp.o.d"
  "libcanvas_client.a"
  "libcanvas_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
