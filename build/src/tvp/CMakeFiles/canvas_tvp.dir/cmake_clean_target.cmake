file(REMOVE_RECURSE
  "libcanvas_tvp.a"
)
