# Empty dependencies file for canvas_tvp.
# This may be replaced when dependencies are built.
