file(REMOVE_RECURSE
  "CMakeFiles/canvas_tvp.dir/Program.cpp.o"
  "CMakeFiles/canvas_tvp.dir/Program.cpp.o.d"
  "libcanvas_tvp.a"
  "libcanvas_tvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_tvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
