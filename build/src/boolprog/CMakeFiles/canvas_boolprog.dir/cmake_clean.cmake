file(REMOVE_RECURSE
  "CMakeFiles/canvas_boolprog.dir/Analysis.cpp.o"
  "CMakeFiles/canvas_boolprog.dir/Analysis.cpp.o.d"
  "CMakeFiles/canvas_boolprog.dir/BooleanProgram.cpp.o"
  "CMakeFiles/canvas_boolprog.dir/BooleanProgram.cpp.o.d"
  "CMakeFiles/canvas_boolprog.dir/Interprocedural.cpp.o"
  "CMakeFiles/canvas_boolprog.dir/Interprocedural.cpp.o.d"
  "libcanvas_boolprog.a"
  "libcanvas_boolprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_boolprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
