file(REMOVE_RECURSE
  "libcanvas_boolprog.a"
)
