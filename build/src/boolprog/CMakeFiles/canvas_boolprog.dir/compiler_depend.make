# Empty compiler generated dependencies file for canvas_boolprog.
# This may be replaced when dependencies are built.
