
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/CongruenceClosure.cpp" "src/logic/CMakeFiles/canvas_logic.dir/CongruenceClosure.cpp.o" "gcc" "src/logic/CMakeFiles/canvas_logic.dir/CongruenceClosure.cpp.o.d"
  "/root/repo/src/logic/Formula.cpp" "src/logic/CMakeFiles/canvas_logic.dir/Formula.cpp.o" "gcc" "src/logic/CMakeFiles/canvas_logic.dir/Formula.cpp.o.d"
  "/root/repo/src/logic/Path.cpp" "src/logic/CMakeFiles/canvas_logic.dir/Path.cpp.o" "gcc" "src/logic/CMakeFiles/canvas_logic.dir/Path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/canvas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
