file(REMOVE_RECURSE
  "libcanvas_logic.a"
)
