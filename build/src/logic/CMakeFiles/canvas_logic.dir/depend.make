# Empty dependencies file for canvas_logic.
# This may be replaced when dependencies are built.
