file(REMOVE_RECURSE
  "CMakeFiles/canvas_logic.dir/CongruenceClosure.cpp.o"
  "CMakeFiles/canvas_logic.dir/CongruenceClosure.cpp.o.d"
  "CMakeFiles/canvas_logic.dir/Formula.cpp.o"
  "CMakeFiles/canvas_logic.dir/Formula.cpp.o.d"
  "CMakeFiles/canvas_logic.dir/Path.cpp.o"
  "CMakeFiles/canvas_logic.dir/Path.cpp.o.d"
  "libcanvas_logic.a"
  "libcanvas_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
