# Empty dependencies file for canvas_core.
# This may be replaced when dependencies are built.
