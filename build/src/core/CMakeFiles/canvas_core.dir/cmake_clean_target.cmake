file(REMOVE_RECURSE
  "libcanvas_core.a"
)
