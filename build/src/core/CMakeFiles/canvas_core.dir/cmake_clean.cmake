file(REMOVE_RECURSE
  "CMakeFiles/canvas_core.dir/Certifier.cpp.o"
  "CMakeFiles/canvas_core.dir/Certifier.cpp.o.d"
  "CMakeFiles/canvas_core.dir/Evaluation.cpp.o"
  "CMakeFiles/canvas_core.dir/Evaluation.cpp.o.d"
  "CMakeFiles/canvas_core.dir/GenericBaseline.cpp.o"
  "CMakeFiles/canvas_core.dir/GenericBaseline.cpp.o.d"
  "CMakeFiles/canvas_core.dir/Interpreter.cpp.o"
  "CMakeFiles/canvas_core.dir/Interpreter.cpp.o.d"
  "libcanvas_core.a"
  "libcanvas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
