file(REMOVE_RECURSE
  "CMakeFiles/canvas_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/canvas_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/canvas_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/canvas_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/canvas_support.dir/Lexer.cpp.o"
  "CMakeFiles/canvas_support.dir/Lexer.cpp.o.d"
  "libcanvas_support.a"
  "libcanvas_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
