file(REMOVE_RECURSE
  "libcanvas_support.a"
)
