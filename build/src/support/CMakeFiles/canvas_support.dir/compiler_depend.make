# Empty compiler generated dependencies file for canvas_support.
# This may be replaced when dependencies are built.
