# Empty dependencies file for bench_generic_vs_staged.
# This may be replaced when dependencies are built.
