file(REMOVE_RECURSE
  "CMakeFiles/bench_generic_vs_staged.dir/bench_generic_vs_staged.cpp.o"
  "CMakeFiles/bench_generic_vs_staged.dir/bench_generic_vs_staged.cpp.o.d"
  "bench_generic_vs_staged"
  "bench_generic_vs_staged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generic_vs_staged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
