file(REMOVE_RECURSE
  "CMakeFiles/bench_certification.dir/bench_certification.cpp.o"
  "CMakeFiles/bench_certification.dir/bench_certification.cpp.o.d"
  "bench_certification"
  "bench_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
