file(REMOVE_RECURSE
  "CMakeFiles/bench_derivation.dir/bench_derivation.cpp.o"
  "CMakeFiles/bench_derivation.dir/bench_derivation.cpp.o.d"
  "bench_derivation"
  "bench_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
