file(REMOVE_RECURSE
  "CMakeFiles/engine_tour.dir/engine_tour.cpp.o"
  "CMakeFiles/engine_tour.dir/engine_tour.cpp.o.d"
  "engine_tour"
  "engine_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
