# Empty dependencies file for canvas_certify.
# This may be replaced when dependencies are built.
