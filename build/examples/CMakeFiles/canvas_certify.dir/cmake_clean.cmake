file(REMOVE_RECURSE
  "CMakeFiles/canvas_certify.dir/canvas_certify.cpp.o"
  "CMakeFiles/canvas_certify.dir/canvas_certify.cpp.o.d"
  "canvas_certify"
  "canvas_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
