# Empty compiler generated dependencies file for conformance_zoo.
# This may be replaced when dependencies are built.
