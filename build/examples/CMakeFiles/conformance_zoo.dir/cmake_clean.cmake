file(REMOVE_RECURSE
  "CMakeFiles/conformance_zoo.dir/conformance_zoo.cpp.o"
  "CMakeFiles/conformance_zoo.dir/conformance_zoo.cpp.o.d"
  "conformance_zoo"
  "conformance_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
