file(REMOVE_RECURSE
  "CMakeFiles/worklist.dir/worklist.cpp.o"
  "CMakeFiles/worklist.dir/worklist.cpp.o.d"
  "worklist"
  "worklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
