# Empty compiler generated dependencies file for worklist.
# This may be replaced when dependencies are built.
