# Empty dependencies file for wp_test.
# This may be replaced when dependencies are built.
