file(REMOVE_RECURSE
  "CMakeFiles/wp_test.dir/wp/DerivationTest.cpp.o"
  "CMakeFiles/wp_test.dir/wp/DerivationTest.cpp.o.d"
  "CMakeFiles/wp_test.dir/wp/MutationRestrictedTest.cpp.o"
  "CMakeFiles/wp_test.dir/wp/MutationRestrictedTest.cpp.o.d"
  "CMakeFiles/wp_test.dir/wp/WPEngineTest.cpp.o"
  "CMakeFiles/wp_test.dir/wp/WPEngineTest.cpp.o.d"
  "wp_test"
  "wp_test.pdb"
  "wp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
