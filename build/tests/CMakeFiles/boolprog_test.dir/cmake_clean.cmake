file(REMOVE_RECURSE
  "CMakeFiles/boolprog_test.dir/boolprog/InterproceduralTest.cpp.o"
  "CMakeFiles/boolprog_test.dir/boolprog/InterproceduralTest.cpp.o.d"
  "CMakeFiles/boolprog_test.dir/boolprog/IntraproceduralTest.cpp.o"
  "CMakeFiles/boolprog_test.dir/boolprog/IntraproceduralTest.cpp.o.d"
  "boolprog_test"
  "boolprog_test.pdb"
  "boolprog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolprog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
