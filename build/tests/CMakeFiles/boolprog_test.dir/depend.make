# Empty dependencies file for boolprog_test.
# This may be replaced when dependencies are built.
