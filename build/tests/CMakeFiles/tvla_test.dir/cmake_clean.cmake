file(REMOVE_RECURSE
  "CMakeFiles/tvla_test.dir/tvla/StructureTest.cpp.o"
  "CMakeFiles/tvla_test.dir/tvla/StructureTest.cpp.o.d"
  "CMakeFiles/tvla_test.dir/tvla/TVLAEngineTest.cpp.o"
  "CMakeFiles/tvla_test.dir/tvla/TVLAEngineTest.cpp.o.d"
  "tvla_test"
  "tvla_test.pdb"
  "tvla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
