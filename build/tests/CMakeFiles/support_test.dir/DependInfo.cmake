
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/LexerTest.cpp" "tests/CMakeFiles/support_test.dir/support/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/LexerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wp/CMakeFiles/canvas_wp.dir/DependInfo.cmake"
  "/root/repo/build/src/easl/CMakeFiles/canvas_easl.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/canvas_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/canvas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
