file(REMOVE_RECURSE
  "CMakeFiles/easl_test.dir/easl/ParserTest.cpp.o"
  "CMakeFiles/easl_test.dir/easl/ParserTest.cpp.o.d"
  "easl_test"
  "easl_test.pdb"
  "easl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
