# Empty dependencies file for easl_test.
# This may be replaced when dependencies are built.
