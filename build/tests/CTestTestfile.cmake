# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/easl_test[1]_include.cmake")
include("/root/repo/build/tests/wp_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/boolprog_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tvla_test[1]_include.cmake")
