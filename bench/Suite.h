//===----------------------------------------------------------------------===//
///
/// \file
/// The CMP benchmark suite used by the Section 7 reproduction: CJ
/// clients modeled on the paper's figures plus contrived "difficult"
/// instances, each annotated with the number of call sites that really
/// can violate (established independently by the concrete reference
/// executor).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BENCH_SUITE_H
#define CANVAS_BENCH_SUITE_H

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

namespace canvas {
namespace bench {

/// Warm-up + min-of-N timing for the BENCH_JSON emitters: runs \p Body
/// \p Warmup times untimed (first-touch page faults, lazily built
/// statics, cold i-cache), then \p Reps timed repetitions, returning
/// the minimum in microseconds. Every line that lands in a BENCH_*.json
/// capture must go through this — a single cold run can read 3-4× the
/// steady-state cost, which makes cross-capture comparisons (and the
/// CI regression gate in tools/ci.sh) meaningless.
template <typename Fn>
inline double minOfN(Fn &&Body, int Warmup = 1, int Reps = 5) {
  for (int I = 0; I != Warmup; ++I)
    Body();
  double Best = 1e30;
  for (int I = 0; I != Reps; ++I) {
    const auto T0 = std::chrono::steady_clock::now();
    Body();
    const auto T1 = std::chrono::steady_clock::now();
    Best = std::min(
        Best, std::chrono::duration<double, std::micro>(T1 - T0).count());
  }
  return Best;
}

struct BenchClient {
  const char *Name;
  const char *Source;
  /// True when the client stores component references only in locals
  /// and parameters (SCMP scope).
  bool SCMPScope;
};

inline const std::vector<BenchClient> &cmpSuite() {
  static const std::vector<BenchClient> Suite = {
      {"fig3", R"(
        class Fig3 {
          void main() {
            Set v = new Set();
            Iterator i1 = v.iterator();
            Iterator i2 = v.iterator();
            Iterator i3 = i1;
            i1.next();
            i1.remove();
            if (*) { i2.next(); }
            if (*) { i3.next(); }
            v.add();
            if (*) { i1.next(); }
          }
        }
      )", true},

      {"versioned-loop", R"(
        class Loop {
          void main() {
            Set s = new Set();
            while (*) {
              s.add();
              Iterator i = s.iterator();
              while (*) { i.next(); }
            }
          }
        }
      )", true},

      {"make-buggy", R"(
        class Make {
          void main() {
            Set worklist = new Set();
            initializeWorklist(worklist);
            Iterator i = worklist.iterator();
            while (*) {
              i.next();
              if (*) { processItem(worklist); }
            }
          }
          void initializeWorklist(Set w) { w.add(); }
          void processItem(Set w) { doSubproblem(w); }
          void doSubproblem(Set w) { if (*) { w.add(); } }
        }
      )", true},

      {"make-fixed", R"(
        class Make {
          void main() {
            Set worklist = new Set();
            initializeWorklist(worklist);
            while (*) {
              Iterator i = worklist.iterator();
              while (*) { i.next(); }
              grow(worklist);
            }
          }
          void initializeWorklist(Set w) { w.add(); }
          void grow(Set w) { if (*) { w.add(); } }
        }
      )", true},

      {"copy-chains", R"(
        class Copies {
          void main() {
            Set s = new Set();
            Iterator a = s.iterator();
            Iterator b = a;
            Iterator c = b;
            c.remove();
            a.next();
            b.next();
            Iterator d = s.iterator();
            c.remove();
            d.next();
          }
        }
      )", true},

      {"two-collections", R"(
        class Two {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            Iterator j = t.iterator();
            while (*) {
              t.add();
              j = t.iterator();
              j.next();
            }
            i.next();
          }
        }
      )", true},

      {"remove-heavy", R"(
        class Removes {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            Iterator j = s.iterator();
            while (*) { i.remove(); i.next(); }
            j.next();
          }
        }
      )", true},

      {"nested-fresh", R"(
        class Nested {
          void main() {
            Set s = new Set();
            while (*) {
              Iterator i = s.iterator();
              while (*) {
                i.next();
                if (*) { i.remove(); }
              }
              s.add();
            }
          }
        }
      )", true},

      {"branchy", R"(
        class Branchy {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            if (*) { s.add(); } else { i.next(); }
            i.next();
          }
        }
      )", true},

      {"interleaved", R"(
        class Interleaved {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            t.add();
            i.next();
            Iterator j = t.iterator();
            s.add();
            j.next();
            i.next();
          }
        }
      )", true},

      {"reuse-after-refresh", R"(
        class Refresh {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            while (*) {
              s.add();
              i = s.iterator();
              i.next();
            }
            i.next();
          }
        }
      )", true},

      // The relational-engine stress client: two collections, three
      // iterators, nested loops and branches. The relational TVLA
      // configuration accumulates many structures per point and
      // revisits loop heads often, which is exactly the workload the
      // structure interner and the (StructId, edge) transfer cache are
      // built for.
      {"grinder", R"(
        class Grinder {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            Iterator j = t.iterator();
            Iterator k = s.iterator();
            while (*) {
              i.next();
              if (*) { s.add(); i = s.iterator(); }
              if (*) { j.next(); } else { t.add(); j = t.iterator(); }
              while (*) { k.next(); if (*) { k.remove(); } }
              if (*) { k = s.iterator(); }
            }
            i.next();
            j.next();
            k.next();
          }
        }
      )", true},

      // Four independent Set/Iterator pipelines: the Stage-0 slicer
      // splits main() into four slices, so SCMPIntra runs on four small
      // boolean programs instead of one large one.
      {"four-pipelines", R"(
        class Pipelines {
          void main() {
            Set a = new Set();
            Iterator ia = a.iterator();
            Set b = new Set();
            Iterator ib = b.iterator();
            Set c = new Set();
            Iterator ic = c.iterator();
            Set d = new Set();
            Iterator id = d.iterator();
            while (*) { ia.next(); }
            ib.next();
            if (*) { b.add(); }
            ib.next();
            ic.next();
            ic.remove();
            ic.next();
            id.next();
            if (*) { d.add(); }
            if (*) { id.next(); }
          }
        }
      )", true},
  };
  return Suite;
}

/// Aliasing-heavy clients for the points-to slicing benchmark: every
/// client moves a component reference through the heap (a client-object
/// field), so the syntactic Stage-0 slicer is forced to a single slice
/// — only the whole-program points-to relatedness groups prove the
/// pipelines independent and let SCMPIntra certify per-slice.
inline const std::vector<BenchClient> &aliasSuite() {
  static const std::vector<BenchClient> Suite = {
      // Six independent Set/Iterator pipelines; one of them parks its
      // Set in a heap field. Syntactically that one store poisons the
      // whole method (HasHeapComponentRefs); the points-to solution
      // keeps the six instance groups apart.
      {"heap-pipelines", R"(
        class Stash {
          Set s;
        }
        class HeapPipes {
          void main() {
            Stash st = new Stash();
            Set s1 = new Set();
            st.s = s1;
            Iterator i1 = s1.iterator();
            Set s2 = new Set();
            Iterator i2 = s2.iterator();
            Set s3 = new Set();
            Iterator i3 = s3.iterator();
            Set s4 = new Set();
            Iterator i4 = s4.iterator();
            Set s5 = new Set();
            Iterator i5 = s5.iterator();
            Set s6 = new Set();
            Iterator i6 = s6.iterator();
            while (*) { i1.next(); if (*) { i1.remove(); } }
            while (*) { i2.next(); if (*) { s2.add(); i2 = s2.iterator(); } }
            i3.next();
            i3.remove();
            i3.next();
            i4.next();
            if (*) { s4.add(); }
            if (*) { i4.next(); }
            while (*) { i5.next(); }
            i6.next();
            if (*) { s6.add(); }
            i6.next();
          }
        }
      )", false},

      // Two stashes, each holding its own Set: both allocation sites
      // are heap-escaping, yet the two pipelines never interfere — the
      // relatedness groups stay {s1,i1} and {s2,i2}.
      {"stashed-pairs", R"(
        class Stash {
          Set s;
        }
        class Pairs {
          void main() {
            Stash u = new Stash();
            Stash v = new Stash();
            Set s1 = new Set();
            Set s2 = new Set();
            u.s = s1;
            v.s = s2;
            Iterator i1 = s1.iterator();
            Iterator i2 = s2.iterator();
            while (*) { i1.next(); if (*) { i1.remove(); } }
            i2.next();
            if (*) { s2.add(); }
            if (*) { i2.next(); }
          }
        }
      )", false},
  };
  return Suite;
}

} // namespace bench
} // namespace canvas

#endif // CANVAS_BENCH_SUITE_H
