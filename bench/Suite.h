//===----------------------------------------------------------------------===//
///
/// \file
/// The CMP benchmark suite used by the Section 7 reproduction: CJ
/// clients modeled on the paper's figures plus contrived "difficult"
/// instances, each annotated with the number of call sites that really
/// can violate (established independently by the concrete reference
/// executor).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BENCH_SUITE_H
#define CANVAS_BENCH_SUITE_H

#include <string>
#include <vector>

namespace canvas {
namespace bench {

struct BenchClient {
  const char *Name;
  const char *Source;
  /// True when the client stores component references only in locals
  /// and parameters (SCMP scope).
  bool SCMPScope;
};

inline const std::vector<BenchClient> &cmpSuite() {
  static const std::vector<BenchClient> Suite = {
      {"fig3", R"(
        class Fig3 {
          void main() {
            Set v = new Set();
            Iterator i1 = v.iterator();
            Iterator i2 = v.iterator();
            Iterator i3 = i1;
            i1.next();
            i1.remove();
            if (*) { i2.next(); }
            if (*) { i3.next(); }
            v.add();
            if (*) { i1.next(); }
          }
        }
      )", true},

      {"versioned-loop", R"(
        class Loop {
          void main() {
            Set s = new Set();
            while (*) {
              s.add();
              Iterator i = s.iterator();
              while (*) { i.next(); }
            }
          }
        }
      )", true},

      {"make-buggy", R"(
        class Make {
          void main() {
            Set worklist = new Set();
            initializeWorklist(worklist);
            Iterator i = worklist.iterator();
            while (*) {
              i.next();
              if (*) { processItem(worklist); }
            }
          }
          void initializeWorklist(Set w) { w.add(); }
          void processItem(Set w) { doSubproblem(w); }
          void doSubproblem(Set w) { if (*) { w.add(); } }
        }
      )", true},

      {"make-fixed", R"(
        class Make {
          void main() {
            Set worklist = new Set();
            initializeWorklist(worklist);
            while (*) {
              Iterator i = worklist.iterator();
              while (*) { i.next(); }
              grow(worklist);
            }
          }
          void initializeWorklist(Set w) { w.add(); }
          void grow(Set w) { if (*) { w.add(); } }
        }
      )", true},

      {"copy-chains", R"(
        class Copies {
          void main() {
            Set s = new Set();
            Iterator a = s.iterator();
            Iterator b = a;
            Iterator c = b;
            c.remove();
            a.next();
            b.next();
            Iterator d = s.iterator();
            c.remove();
            d.next();
          }
        }
      )", true},

      {"two-collections", R"(
        class Two {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            Iterator j = t.iterator();
            while (*) {
              t.add();
              j = t.iterator();
              j.next();
            }
            i.next();
          }
        }
      )", true},

      {"remove-heavy", R"(
        class Removes {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            Iterator j = s.iterator();
            while (*) { i.remove(); i.next(); }
            j.next();
          }
        }
      )", true},

      {"nested-fresh", R"(
        class Nested {
          void main() {
            Set s = new Set();
            while (*) {
              Iterator i = s.iterator();
              while (*) {
                i.next();
                if (*) { i.remove(); }
              }
              s.add();
            }
          }
        }
      )", true},

      {"branchy", R"(
        class Branchy {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            if (*) { s.add(); } else { i.next(); }
            i.next();
          }
        }
      )", true},

      {"interleaved", R"(
        class Interleaved {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            t.add();
            i.next();
            Iterator j = t.iterator();
            s.add();
            j.next();
            i.next();
          }
        }
      )", true},

      {"reuse-after-refresh", R"(
        class Refresh {
          void main() {
            Set s = new Set();
            Iterator i = s.iterator();
            while (*) {
              s.add();
              i = s.iterator();
              i.next();
            }
            i.next();
          }
        }
      )", true},

      // The relational-engine stress client: two collections, three
      // iterators, nested loops and branches. The relational TVLA
      // configuration accumulates many structures per point and
      // revisits loop heads often, which is exactly the workload the
      // structure interner and the (StructId, edge) transfer cache are
      // built for.
      {"grinder", R"(
        class Grinder {
          void main() {
            Set s = new Set();
            Set t = new Set();
            Iterator i = s.iterator();
            Iterator j = t.iterator();
            Iterator k = s.iterator();
            while (*) {
              i.next();
              if (*) { s.add(); i = s.iterator(); }
              if (*) { j.next(); } else { t.add(); j = t.iterator(); }
              while (*) { k.next(); if (*) { k.remove(); } }
              if (*) { k = s.iterator(); }
            }
            i.next();
            j.next();
            k.next();
          }
        }
      )", true},

      // Four independent Set/Iterator pipelines: the Stage-0 slicer
      // splits main() into four slices, so SCMPIntra runs on four small
      // boolean programs instead of one large one.
      {"four-pipelines", R"(
        class Pipelines {
          void main() {
            Set a = new Set();
            Iterator ia = a.iterator();
            Set b = new Set();
            Iterator ib = b.iterator();
            Set c = new Set();
            Iterator ic = c.iterator();
            Set d = new Set();
            Iterator id = d.iterator();
            while (*) { ia.next(); }
            ib.next();
            if (*) { b.add(); }
            ib.next();
            ic.next();
            ic.remove();
            ic.next();
            id.next();
            if (*) { d.add(); }
            if (*) { id.next(); }
          }
        }
      )", true},
  };
  return Suite;
}

} // namespace bench
} // namespace canvas

#endif // CANVAS_BENCH_SUITE_H
