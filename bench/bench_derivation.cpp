//===----------------------------------------------------------------------===//
//
// Abstraction-derivation tables and timings:
//   - Fig. 4 / Fig. 5: the derived CMP instrumentation predicates and
//     method abstractions;
//   - Figs. 10 / 11: the first-order (TVP) rendering of the derived
//     abstraction;
//   - Section 6: mutation-restricted classification and derivation
//     convergence for CMP, GRP, IMP, AOP;
//   - timing of the derivation itself (the "certifier generation time"
//     cost that the staged design keeps out of client analysis).
//
//===----------------------------------------------------------------------===//

#include "easl/Builtins.h"
#include "tvp/Program.h"
#include "wp/Abstraction.h"
#include "wp/MutationRestricted.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace canvas;

namespace {

struct Problem {
  const char *Name;
  const char *Source;
};

const Problem Problems[] = {
    {"CMP", easl::cmpSpecSource()},
    {"GRP", easl::grpSpecSource()},
    {"IMP", easl::impSpecSource()},
    {"AOP", easl::aopSpecSource()},
};

void printTables() {
  std::printf("=== Derivation summary (Figs. 4/5, Section 6) ===\n");
  std::printf("%-5s %9s %8s %10s %11s %s\n", "spec", "families", "WPs",
              "converged", "mut-restr", "mutation-free");
  for (const Problem &P : Problems) {
    easl::Spec S = easl::parseBuiltinSpec(P.Source);
    DiagnosticEngine Diags;
    wp::DerivedAbstraction A = wp::deriveAbstraction(S, Diags);
    wp::SpecClassification C = wp::classifySpec(S);
    std::printf("%-5s %9zu %8u %10s %11s %s\n", P.Name, A.Families.size(),
                A.NumWPComputations, A.Converged ? "yes" : "NO",
                C.mutationRestricted() ? "yes" : "no",
                C.MutationFree ? "yes" : "no");
  }

  easl::Spec CMP = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  wp::DerivedAbstraction A = wp::deriveAbstraction(CMP, Diags);
  std::printf("\n=== CMP derived abstraction (Figs. 4 & 5) ===\n%s",
              A.str().c_str());
  std::printf("\n=== CMP first-order rendering (Figs. 9/10/11) ===\n%s\n%s\n",
              tvp::renderStandardTranslation().c_str(),
              tvp::renderSpecializedTranslation(A).c_str());
}

void BM_DeriveAbstraction(benchmark::State &State) {
  const Problem &P = Problems[State.range(0)];
  easl::Spec S = easl::parseBuiltinSpec(P.Source);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    wp::DerivedAbstraction A = wp::deriveAbstraction(S, Diags);
    benchmark::DoNotOptimize(A.Families.size());
  }
  State.SetLabel(P.Name);
}

} // namespace

BENCHMARK(BM_DeriveAbstraction)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
