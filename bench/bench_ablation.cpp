//===----------------------------------------------------------------------===//
//
// Ablation of DESIGN.md decision 1: abstraction derivation with and
// without the congruence-closure simplifier (the redundant-literal
// eliminator that makes machine-derived predicates coincide with the
// paper's Fig. 4). Without it the candidate predicate set blows up or
// fails to converge.
//
//===----------------------------------------------------------------------===//

#include "easl/Builtins.h"
#include "wp/Abstraction.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace canvas;

namespace {

struct Problem {
  const char *Name;
  const char *Source;
};

const Problem Problems[] = {
    {"CMP", easl::cmpSpecSource()},
    {"GRP", easl::grpSpecSource()},
    {"IMP", easl::impSpecSource()},
    {"AOP", easl::aopSpecSource()},
};

void printTable() {
  std::printf("=== Ablation: congruence-closure simplification in the "
              "derivation ===\n");
  std::printf("%-5s | %18s | %22s\n", "spec", "with CC (families)",
              "without CC (families)");
  for (const Problem &P : Problems) {
    easl::Spec S = easl::parseBuiltinSpec(P.Source);
    DiagnosticEngine D1, D2;
    wp::DerivationOptions With;
    wp::DerivationOptions Without;
    Without.SimplifyWithCC = false;
    wp::DerivedAbstraction AWith = wp::deriveAbstraction(S, With, D1);
    wp::DerivedAbstraction AWithout = wp::deriveAbstraction(S, Without, D2);
    std::printf("%-5s | %12zu (%s) | %16zu (%s)\n", P.Name,
                AWith.Families.size(),
                AWith.Converged ? "converged" : "CAPPED",
                AWithout.Families.size(),
                AWithout.Converged ? "converged" : "CAPPED");
  }
  std::printf("\n");
}

void BM_DeriveWithCC(benchmark::State &State) {
  easl::Spec S = easl::parseBuiltinSpec(Problems[State.range(0)].Source);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    wp::DerivedAbstraction A = wp::deriveAbstraction(S, Diags);
    benchmark::DoNotOptimize(A.Families.size());
  }
  State.SetLabel(std::string(Problems[State.range(0)].Name) + "/with-cc");
}

void BM_DeriveWithoutCC(benchmark::State &State) {
  easl::Spec S = easl::parseBuiltinSpec(Problems[State.range(0)].Source);
  wp::DerivationOptions Opts;
  Opts.SimplifyWithCC = false;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    wp::DerivedAbstraction A = wp::deriveAbstraction(S, Opts, Diags);
    benchmark::DoNotOptimize(A.Families.size());
  }
  State.SetLabel(std::string(Problems[State.range(0)].Name) + "/no-cc");
}

} // namespace

BENCHMARK(BM_DeriveWithCC)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeriveWithoutCC)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
