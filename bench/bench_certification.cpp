//===----------------------------------------------------------------------===//
//
// The Section 7 evaluation table: for every benchmark client and every
// engine configuration, the number of requires checks, flagged checks,
// false alarms (relative to the concrete reference executor), and the
// analysis time. Reproduces the paper's headline findings:
//
//   - the staged certifiers produce (nearly) zero false alarms,
//   - the relational TVLA configuration has no precision advantage over
//     the independent-attribute configuration on these clients,
//   - the specialized certifiers dominate the generic baseline.
//
//===----------------------------------------------------------------------===//

#include "Suite.h"

#include "core/Certifier.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <algorithm>
#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>

using namespace canvas;
using namespace canvas::core;

namespace {

/// Renders Report.Stages as a JSON array: the per-rung resource spend
/// (time, fixpoint iterations, peak resident structures) the budgeted
/// supervisor accounted for this run.
std::string stagesJson(const CertificationReport &R) {
  std::string Out = "[";
  for (size_t I = 0; I != R.Stages.size(); ++I) {
    const StageAttempt &A = R.Stages[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"engine\":\"%s\",\"completed\":%s,\"us\":%.1f,"
                  "\"iterations\":%llu,\"peak_structures\":%llu}",
                  I ? "," : "", A.Engine.c_str(),
                  A.Completed ? "true" : "false", A.Spend.Micros,
                  static_cast<unsigned long long>(A.Spend.Iterations),
                  static_cast<unsigned long long>(A.Spend.PeakStructures));
    Out += Buf;
  }
  return Out + "]";
}

const EngineKind AllEngines[] = {
    EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
    EngineKind::TVLAIndependent, EngineKind::TVLARelational,
    EngineKind::GenericAllocSite};

struct Cell {
  size_t Checks = 0;
  unsigned Flagged = 0;
  unsigned FalseAlarms = 0;
  unsigned Missed = 0;
  double Micros = 0;
};

Cell runOne(const Certifier &C, const bench::BenchClient &Client) {
  Cell Out;
  DiagnosticEngine Diags;
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  CertificationReport R;
  Out.Micros = bench::minOfN(
      [&] {
        DiagnosticEngine D2;
        R = C.certify(P, D2);
      },
      /*Warmup=*/1, /*Reps=*/3);
  Out.Checks = R.numChecks();
  Out.Flagged = R.numFlagged();
  SiteComparison Cmp = compareWithGroundTruth(R, C.spec(), P);
  Out.FalseAlarms = Cmp.FalseAlarms;
  Out.Missed = Cmp.Missed;
  return Out;
}

void printTable() {
  std::printf("=== Section 7 reproduction: precision and time per engine "
              "===\n");
  std::printf("%-20s", "client");
  for (EngineKind K : AllEngines)
    std::printf(" | %-24s", engineName(K));
  std::printf("\n%-20s", "");
  for (size_t I = 0; I != std::size(AllEngines); ++I)
    std::printf(" | %-24s", "chk flag FA miss  us");
  std::printf("\n");

  unsigned TotalFA[std::size(AllEngines)] = {};
  unsigned TotalMissed[std::size(AllEngines)] = {};
  for (const bench::BenchClient &Client : bench::cmpSuite()) {
    std::printf("%-20s", Client.Name);
    size_t EIdx = 0;
    for (EngineKind K : AllEngines) {
      DiagnosticEngine Diags;
      Certifier C(easl::cmpSpecSource(), K, Diags);
      Cell Cl = runOne(C, Client);
      TotalFA[EIdx] += Cl.FalseAlarms;
      TotalMissed[EIdx] += Cl.Missed;
      std::printf(" | %3zu %4u %2u %4u %5.0f", Cl.Checks, Cl.Flagged,
                  Cl.FalseAlarms, Cl.Missed, Cl.Micros);
      ++EIdx;
    }
    std::printf("\n");
  }
  std::printf("%-20s", "TOTAL false alarms");
  for (size_t I = 0; I != std::size(AllEngines); ++I)
    std::printf(" | %8u (missed %u)     ", TotalFA[I], TotalMissed[I]);
  std::printf("\n\n");
}

//===----------------------------------------------------------------------===//
// Stage-0 pre-analysis ablation: SCMPIntra with the pre-analysis on
// versus off, reporting certification time, total and peak boolean
// program size B, and the Stage-0 statistics. Emitted both as a table
// and as one machine-readable JSON object on stdout.
//===----------------------------------------------------------------------===//

struct StageZeroSide {
  double Micros = 0; ///< Best-of-5 certification time.
  size_t BoolVars = 0;
  size_t MaxBoolVars = 0;
  PreAnalysisSummary Pre;
  CertificationReport Report;
};

StageZeroSide runStageZeroSide(const bench::BenchClient &Client,
                               bool PreAnalysis) {
  StageZeroSide Side;
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.PreAnalysis = PreAnalysis;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {}, Opts);
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  Side.Micros = bench::minOfN([&] {
    DiagnosticEngine D2;
    Side.Report = C.certify(P, D2);
  });
  Side.BoolVars = Side.Report.BoolVars;
  Side.MaxBoolVars = Side.Report.MaxBoolVars;
  Side.Pre = Side.Report.Pre;
  return Side;
}

bool sameVerdicts(const CertificationReport &A, const CertificationReport &B) {
  if (A.Checks.size() != B.Checks.size())
    return false;
  for (size_t I = 0; I != A.Checks.size(); ++I)
    if (A.Checks[I].Method != B.Checks[I].Method ||
        A.Checks[I].Loc.Line != B.Checks[I].Loc.Line ||
        A.Checks[I].Loc.Col != B.Checks[I].Loc.Col ||
        A.Checks[I].Outcome != B.Checks[I].Outcome)
      return false;
  return true;
}

void printStageZero() {
  std::printf("=== Stage-0 pre-analysis ablation (scmp-intra) ===\n");
  std::printf("%-20s | %21s | %35s | %s\n", "client", "off:   B maxB    us",
              "on:   B maxB    us slices dse prune", "same");
  std::string Json = "{\"bench\":\"stage0-preanalysis\",\"engine\":"
                     "\"scmp-intra\",\"clients\":[";
  bool First = true;
  for (const bench::BenchClient &Client : bench::cmpSuite()) {
    StageZeroSide Off = runStageZeroSide(Client, false);
    StageZeroSide On = runStageZeroSide(Client, true);
    bool Same = sameVerdicts(On.Report, Off.Report);
    std::printf("%-20s | %9zu %4zu %5.0f | %9zu %4zu %5.0f %6u %3u %5u | %s\n",
                Client.Name, Off.BoolVars, Off.MaxBoolVars, Off.Micros,
                On.BoolVars, On.MaxBoolVars, On.Micros, On.Pre.SliceRuns,
                On.Pre.DeadStoresRemoved, On.Pre.EdgesPruned,
                Same ? "yes" : "NO");
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s{\"name\":\"%s\","
        "\"off\":{\"us\":%.1f,\"boolvars\":%zu,\"max_boolvars\":%zu},"
        "\"on\":{\"us\":%.1f,\"boolvars\":%zu,\"max_boolvars\":%zu,"
        "\"slice_runs\":%u,\"multi_slice_methods\":%u,\"fallbacks\":%u,"
        "\"dead_stores\":%u,\"vars_dropped\":%u,\"edges_pruned\":%u},"
        "\"verdicts_identical\":%s,\"stages\":",
        First ? "" : ",", Client.Name, Off.Micros, Off.BoolVars,
        Off.MaxBoolVars, On.Micros, On.BoolVars, On.MaxBoolVars,
        On.Pre.SliceRuns, On.Pre.MultiSliceMethods, On.Pre.FallbackMethods,
        On.Pre.DeadStoresRemoved, On.Pre.VarsDropped, On.Pre.EdgesPruned,
        Same ? "true" : "false");
    Json += Buf;
    Json += stagesJson(On.Report) + "}";
    First = false;
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

//===----------------------------------------------------------------------===//
// Relational-TVLA hot-path benchmark: per-client wall time of the
// relational configuration (the most expensive rung of the ladder),
// with the structure-interner and transfer-cache statistics once the
// engine reports them. The BENCH_JSON line is what
// tools/bench_capture.sh snapshots into BENCH_tvla.json.
//===----------------------------------------------------------------------===//

void printTVLAPerf() {
  std::printf("=== Relational TVLA hot path ===\n");
  std::printf("%-20s %10s %8s %6s %12s %10s %10s\n", "client", "us", "checks",
              "flag", "structs", "hits", "misses");
  std::string Json = "{\"bench\":\"tvla-relational-perf\",\"clients\":[";
  bool First = true;
  for (const bench::BenchClient &Client : bench::cmpSuite()) {
    DiagnosticEngine Diags;
    Certifier C(easl::cmpSpecSource(), EngineKind::TVLARelational, Diags);
    cj::Program P = cj::parseProgram(Client.Source, Diags);
    CertificationReport R;
    double Best = bench::minOfN(
        [&] {
          DiagnosticEngine D2;
          R = C.certify(P, D2);
        },
        /*Warmup=*/1, /*Reps=*/3);
    std::printf("%-20s %10.0f %8zu %6u %12llu %10llu %10llu\n", Client.Name,
                Best, R.numChecks(), R.numFlagged(),
                static_cast<unsigned long long>(R.Tvla.InternedStructures),
                static_cast<unsigned long long>(R.Tvla.TransferCacheHits),
                static_cast<unsigned long long>(R.Tvla.TransferCacheMisses));
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s{\"name\":\"%s\",\"us\":%.1f,\"checks\":%zu,\"flagged\":%u,"
        "\"interned_structures\":%llu,\"cache_hits\":%llu,"
        "\"cache_misses\":%llu,\"max_structures_per_point\":%u}",
        First ? "" : ",", Client.Name, Best, R.numChecks(), R.numFlagged(),
        static_cast<unsigned long long>(R.Tvla.InternedStructures),
        static_cast<unsigned long long>(R.Tvla.TransferCacheHits),
        static_cast<unsigned long long>(R.Tvla.TransferCacheMisses),
        R.Tvla.MaxStructuresPerPoint);
    Json += Buf;
    First = false;
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

//===----------------------------------------------------------------------===//
// Proof-carrying certificate overhead: per client and per proving
// engine, the plain analysis time, the analysis time with certificate
// emission, the serialized size with the raw-vs-pruned entry counts
// (the ACC size-reduction trick), and the independent checker's time —
// which the design requires to be well below a full re-analysis.
//===----------------------------------------------------------------------===//

struct CertPerfCell {
  double PlainUs = 0; ///< Warm min-of-3, no certificates.
  double EmitUs = 0;  ///< Warm min-of-3, EmitCertificates on.
  CertificateStats Stats; ///< From the last (warm) Emit+Check run.
};

CertPerfCell runCertPerf(EngineKind K, const bench::BenchClient &Client) {
  CertPerfCell Cell;
  DiagnosticEngine Diags;
  cj::Program P = cj::parseProgram(Client.Source, Diags);

  Certifier Plain(easl::cmpSpecSource(), K, Diags);
  Cell.PlainUs = bench::minOfN(
      [&] {
        DiagnosticEngine D2;
        CertificationReport R = Plain.certify(P, D2);
        benchmark::DoNotOptimize(R.numFlagged());
      },
      /*Warmup=*/1, /*Reps=*/3);

  CertifierOptions Opts;
  Opts.EmitCertificates = true;
  Opts.CheckCertificates = true;
  Certifier WithCerts(easl::cmpSpecSource(), K, Diags, {}, Opts);
  Cell.EmitUs = bench::minOfN(
      [&] {
        DiagnosticEngine D2;
        CertificationReport R = WithCerts.certify(P, D2);
        Cell.Stats = R.CertStats;
      },
      /*Warmup=*/1, /*Reps=*/3);
  return Cell;
}

void printCertificatePerf() {
  const EngineKind Proving[] = {EngineKind::SCMPIntra,
                                EngineKind::TVLARelational};
  std::printf("=== Proof-carrying certificate overhead ===\n");
  std::printf("%-20s %-16s %8s %8s %8s %6s %9s %8s %8s\n", "client", "engine",
              "plain us", "emit us", "check us", "certs", "bytes", "raw",
              "stored");
  std::string Json = "{\"bench\":\"tvla-certificates\",\"clients\":[";
  bool First = true;
  for (const bench::BenchClient &Client : bench::cmpSuite()) {
    for (EngineKind K : Proving) {
      CertPerfCell Cell = runCertPerf(K, Client);
      std::printf("%-20s %-16s %8.0f %8.0f %8.0f %6u %9zu %8llu %8llu\n",
                  Client.Name, engineName(K), Cell.PlainUs, Cell.EmitUs,
                  Cell.Stats.CheckMicros, Cell.Stats.Count, Cell.Stats.Bytes,
                  static_cast<unsigned long long>(Cell.Stats.RawEntries),
                  static_cast<unsigned long long>(Cell.Stats.StoredEntries));
      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s{\"name\":\"%s\",\"engine\":\"%s\",\"plain_us\":%.1f,"
          "\"emit_us\":%.1f,\"emit_overhead_us\":%.1f,\"check_us\":%.1f,"
          "\"certs\":%u,\"bytes\":%zu,\"raw_entries\":%llu,"
          "\"stored_entries\":%llu}",
          First ? "" : ",", Client.Name, engineName(K), Cell.PlainUs,
          Cell.EmitUs, Cell.Stats.EmitMicros, Cell.Stats.CheckMicros,
          Cell.Stats.Count, Cell.Stats.Bytes,
          static_cast<unsigned long long>(Cell.Stats.RawEntries),
          static_cast<unsigned long long>(Cell.Stats.StoredEntries));
      Json += Buf;
      First = false;
    }
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

//===----------------------------------------------------------------------===//
// Points-to-refined slicing on aliasing-heavy clients: every client in
// the alias suite moves a component reference through the heap, so the
// syntactic slicing gates force a single slice. With the whole-program
// points-to pre-analysis on, the may-interfere groups prove the
// pipelines independent and SCMPIntra certifies per-slice, emitting a
// SlicePartition certificate the independent checker re-validates. The
// BENCH_JSON line (name prefixed "tvla" so tools/bench_capture.sh
// snapshots it) records the before/after time, slice counts, and the
// certificate mix.
//===----------------------------------------------------------------------===//

struct PointsToSide {
  double Micros = 0; ///< Warm min-of-5, emission + checking on.
  CertificationReport Report;
};

/// Measures the points-to-off and points-to-on configurations with
/// INTERLEAVED reps (off, on, off, on, ...): the two sides' deltas are
/// small relative to scheduler noise on a shared core, and interleaving
/// makes a transient slowdown hit both mins alike instead of skewing
/// whichever side owned that time window.
void runPointsToPair(const bench::BenchClient &Client, PointsToSide &Off,
                     PointsToSide &On) {
  DiagnosticEngine Diags;
  CertifierOptions Opts;
  Opts.EmitCertificates = true;
  Opts.CheckCertificates = true;
  Opts.PointsTo = false;
  Certifier COff(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {},
                 Opts);
  Opts.PointsTo = true;
  Certifier COn(easl::cmpSpecSource(), EngineKind::SCMPIntra, Diags, {}, Opts);
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  // The warmup doubles as the report capture (and primes the on-side's
  // program-keyed points-to cache, as a warm client run would).
  {
    DiagnosticEngine D2;
    Off.Report = COff.certify(P, D2);
  }
  {
    DiagnosticEngine D2;
    On.Report = COn.certify(P, D2);
  }
  Off.Micros = On.Micros = 1e30;
  auto TimeOne = [&](const Certifier &C) {
    const auto T0 = std::chrono::steady_clock::now();
    DiagnosticEngine D2;
    C.certify(P, D2);
    const auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(T1 - T0).count();
  };
  for (int Rep = 0; Rep != 9; ++Rep) {
    Off.Micros = std::min(Off.Micros, TimeOne(COff));
    On.Micros = std::min(On.Micros, TimeOne(COn));
  }
}

/// Slices of the largest sliced method in the report (an aliasing
/// client has one interesting method: main).
unsigned maxSlices(const CertificationReport &R) {
  unsigned Max = 0;
  for (const MethodSliceSummary &S : R.SliceSummaries)
    Max = std::max(Max, S.Slices);
  return Max;
}

unsigned slicePartitionCerts(const CertificationReport &R) {
  unsigned N = 0;
  for (const cert::Certificate &C : R.Certificates)
    N += C.Kind == cert::CertKind::SlicePartition;
  return N;
}

void printPointsToSlicing() {
  std::printf("=== Points-to-refined slicing (scmp-intra, certificates "
              "checked) ===\n");
  std::printf("%-20s | %19s | %31s | %s\n", "client",
              "off:    us slices", "on:    us slices parts maxB", "same");
  std::string Json = "{\"bench\":\"tvla-pointsto-slicing\",\"engine\":"
                     "\"scmp-intra\",\"clients\":[";
  bool First = true;
  for (const bench::BenchClient &Client : bench::aliasSuite()) {
    PointsToSide Off, On;
    runPointsToPair(Client, Off, On);
    bool Same = sameVerdicts(On.Report, Off.Report);
    const char *Reason = "";
    for (const MethodSliceSummary &S : Off.Report.SliceSummaries)
      if (!S.ForcedSingleReason.empty())
        Reason = S.ForcedSingleReason.c_str();
    std::printf("%-20s | %9.0f %6u | %9.0f %6u %5u %4zu | %s  (off: %s)\n",
                Client.Name, Off.Micros, maxSlices(Off.Report), On.Micros,
                maxSlices(On.Report), slicePartitionCerts(On.Report),
                On.Report.MaxBoolVars, Same ? "yes" : "NO", Reason);
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s{\"name\":\"%s\","
        "\"off\":{\"us\":%.1f,\"slices\":%u,\"max_boolvars\":%zu,"
        "\"forced_single\":\"%s\"},"
        "\"on\":{\"us\":%.1f,\"slices\":%u,\"max_boolvars\":%zu,"
        "\"slice_partition_certs\":%u,\"certs\":%u,"
        "\"pt_objects\":%u,\"pt_constraints\":%u,\"heap_sites\":%u},"
        "\"speedup\":%.2f,\"verdicts_identical\":%s}",
        First ? "" : ",", Client.Name, Off.Micros, maxSlices(Off.Report),
        Off.Report.MaxBoolVars, Reason, On.Micros, maxSlices(On.Report),
        On.Report.MaxBoolVars, slicePartitionCerts(On.Report),
        On.Report.CertStats.Count, On.Report.PointsTo.Objects,
        On.Report.PointsTo.Constraints, On.Report.PointsTo.HeapSites,
        On.Micros > 0 ? Off.Micros / On.Micros : 0.0,
        Same ? "true" : "false");
    Json += Buf;
    First = false;
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

/// Timing benchmark: client analysis per engine (certifier generation is
/// hoisted out, reflecting the staged design — abstraction derivation
/// happens once at certifier-generation time).
void BM_CertifyClient(benchmark::State &State) {
  EngineKind K = AllEngines[State.range(0)];
  const bench::BenchClient &Client = bench::cmpSuite()[State.range(1)];
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  for (auto _ : State) {
    DiagnosticEngine D2;
    CertificationReport R = C.certify(P, D2);
    benchmark::DoNotOptimize(R.numFlagged());
  }
  State.SetLabel(std::string(engineName(K)) + "/" + Client.Name);
}

} // namespace

BENCHMARK(BM_CertifyClient)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable();
  printStageZero();
  printTVLAPerf();
  printCertificatePerf();
  printPointsToSlicing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
