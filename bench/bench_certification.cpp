//===----------------------------------------------------------------------===//
//
// The Section 7 evaluation table: for every benchmark client and every
// engine configuration, the number of requires checks, flagged checks,
// false alarms (relative to the concrete reference executor), and the
// analysis time. Reproduces the paper's headline findings:
//
//   - the staged certifiers produce (nearly) zero false alarms,
//   - the relational TVLA configuration has no precision advantage over
//     the independent-attribute configuration on these clients,
//   - the specialized certifiers dominate the generic baseline.
//
//===----------------------------------------------------------------------===//

#include "Suite.h"

#include "core/Certifier.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>

using namespace canvas;
using namespace canvas::core;

namespace {

const EngineKind AllEngines[] = {
    EngineKind::SCMPIntra, EngineKind::SCMPInterproc,
    EngineKind::TVLAIndependent, EngineKind::TVLARelational,
    EngineKind::GenericAllocSite};

struct Cell {
  unsigned Checks = 0;
  unsigned Flagged = 0;
  unsigned FalseAlarms = 0;
  unsigned Missed = 0;
  double Micros = 0;
};

Cell runOne(const Certifier &C, const bench::BenchClient &Client) {
  Cell Out;
  DiagnosticEngine Diags;
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  auto T0 = std::chrono::steady_clock::now();
  CertificationReport R = C.certify(P, Diags);
  auto T1 = std::chrono::steady_clock::now();
  Out.Micros =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count();
  Out.Checks = R.numChecks();
  Out.Flagged = R.numFlagged();
  SiteComparison Cmp = compareWithGroundTruth(R, C.spec(), P);
  Out.FalseAlarms = Cmp.FalseAlarms;
  Out.Missed = Cmp.Missed;
  return Out;
}

void printTable() {
  std::printf("=== Section 7 reproduction: precision and time per engine "
              "===\n");
  std::printf("%-20s", "client");
  for (EngineKind K : AllEngines)
    std::printf(" | %-24s", engineName(K));
  std::printf("\n%-20s", "");
  for (size_t I = 0; I != std::size(AllEngines); ++I)
    std::printf(" | %-24s", "chk flag FA miss  us");
  std::printf("\n");

  unsigned TotalFA[std::size(AllEngines)] = {};
  unsigned TotalMissed[std::size(AllEngines)] = {};
  for (const bench::BenchClient &Client : bench::cmpSuite()) {
    std::printf("%-20s", Client.Name);
    size_t EIdx = 0;
    for (EngineKind K : AllEngines) {
      DiagnosticEngine Diags;
      Certifier C(easl::cmpSpecSource(), K, Diags);
      Cell Cl = runOne(C, Client);
      TotalFA[EIdx] += Cl.FalseAlarms;
      TotalMissed[EIdx] += Cl.Missed;
      std::printf(" | %3u %4u %2u %4u %5.0f", Cl.Checks, Cl.Flagged,
                  Cl.FalseAlarms, Cl.Missed, Cl.Micros);
      ++EIdx;
    }
    std::printf("\n");
  }
  std::printf("%-20s", "TOTAL false alarms");
  for (size_t I = 0; I != std::size(AllEngines); ++I)
    std::printf(" | %8u (missed %u)     ", TotalFA[I], TotalMissed[I]);
  std::printf("\n\n");
}

/// Timing benchmark: client analysis per engine (certifier generation is
/// hoisted out, reflecting the staged design — abstraction derivation
/// happens once at certifier-generation time).
void BM_CertifyClient(benchmark::State &State) {
  EngineKind K = AllEngines[State.range(0)];
  const bench::BenchClient &Client = bench::cmpSuite()[State.range(1)];
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), K, Diags);
  cj::Program P = cj::parseProgram(Client.Source, Diags);
  for (auto _ : State) {
    DiagnosticEngine D2;
    CertificationReport R = C.certify(P, D2);
    benchmark::DoNotOptimize(R.numFlagged());
  }
  State.SetLabel(std::string(engineName(K)) + "/" + Client.Name);
}

} // namespace

BENCHMARK(BM_CertifyClient)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
