//===----------------------------------------------------------------------===//
//
// The Section 3 / Section 4.4 comparison: generic certification via a
// generic heap abstraction (allocation sites) versus the staged,
// specialized certifier. The generic analysis cannot certify the
// versioned-loop fragment (it merges the version objects allocated in
// the loop), while the specialized abstraction is exact.
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace canvas;
using namespace canvas::core;

namespace {

struct Prog {
  const char *Name;
  const char *Source;
};

const Prog Programs[] = {
    {"versioned-loop (Sec. 3)", R"(
      class Loop {
        void main() {
          Set s = new Set();
          while (*) {
            s.add();
            Iterator i = s.iterator();
            while (*) { i.next(); }
          }
        }
      }
    )"},
    {"fig3 (Sec. 4.4)", R"(
      class Fig3 {
        void main() {
          Set v = new Set();
          Iterator i1 = v.iterator();
          Iterator i2 = v.iterator();
          Iterator i3 = i1;
          i1.next();
          i1.remove();
          if (*) { i2.next(); }
          if (*) { i3.next(); }
          v.add();
          if (*) { i1.next(); }
        }
      }
    )"},
    {"fresh-per-round", R"(
      class Fresh {
        void main() {
          Set s = new Set();
          while (*) {
            Iterator i = s.iterator();
            i.next();
            s.add();
          }
        }
      }
    )"},
};

void printTable() {
  std::printf("=== Generic (allocation-site) vs staged specialized "
              "certification ===\n");
  std::printf("%-26s | %22s | %22s\n", "program",
              "generic   flag  FA", "staged    flag  FA");
  for (const Prog &P : Programs) {
    std::printf("%-26s", P.Name);
    for (EngineKind K :
         {EngineKind::GenericAllocSite, EngineKind::SCMPIntra}) {
      DiagnosticEngine Diags;
      Certifier C(easl::cmpSpecSource(), K, Diags);
      cj::Program Client = cj::parseProgram(P.Source, Diags);
      CertificationReport R = C.certify(Client, Diags);
      SiteComparison Cmp = compareWithGroundTruth(R, C.spec(), Client);
      std::printf(" | %14u %6u", R.numFlagged(), Cmp.FalseAlarms);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_Generic(benchmark::State &State) {
  const Prog &P = Programs[State.range(0)];
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::GenericAllocSite, Diags);
  cj::Program Client = cj::parseProgram(P.Source, Diags);
  for (auto _ : State) {
    DiagnosticEngine D2;
    CertificationReport R = C.certify(Client, D2);
    benchmark::DoNotOptimize(R.numFlagged());
  }
  State.SetLabel(P.Name);
}

} // namespace

BENCHMARK(BM_Generic)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
