//===----------------------------------------------------------------------===//
//
// The Section 8 table: intraprocedural (conservative at client calls)
// versus context-sensitive interprocedural SCMP certification on
// multi-procedure clients. The interprocedural engine removes the
// false alarms the intraprocedural engine produces at call boundaries
// while still catching the real cross-procedure bugs.
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "core/Evaluation.h"
#include "easl/Builtins.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>

using namespace canvas;
using namespace canvas::core;

namespace {

/// Renders Report.Stages as a JSON array: the per-rung resource spend
/// (time, fixpoint iterations, peak resident structures) the budgeted
/// supervisor accounted for this run.
std::string stagesJson(const CertificationReport &R) {
  std::string Out = "[";
  for (size_t I = 0; I != R.Stages.size(); ++I) {
    const StageAttempt &A = R.Stages[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"engine\":\"%s\",\"completed\":%s,\"us\":%.1f,"
                  "\"iterations\":%llu,\"peak_structures\":%llu}",
                  I ? "," : "", A.Engine.c_str(),
                  A.Completed ? "true" : "false", A.Spend.Micros,
                  static_cast<unsigned long long>(A.Spend.Iterations),
                  static_cast<unsigned long long>(A.Spend.PeakStructures));
    Out += Buf;
  }
  return Out + "]";
}

struct Prog {
  const char *Name;
  const char *Source;
};

const Prog Programs[] = {
    {"pure-callee", R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          log(v);
          i.next();
        }
        void log(Set s) { }
      }
    )"},
    {"mutating-callee", R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          mutate(v);
          i.next();
        }
        void mutate(Set s) { s.add(); }
      }
    )"},
    {"context-split", R"(
      class M {
        void main() {
          Set v = new Set();
          Set w = new Set();
          Iterator i = v.iterator();
          mutate(w);
          i.next();
          mutate(v);
          if (*) { i.next(); }
        }
        void mutate(Set s) { s.add(); }
      }
    )"},
    {"factory-callee", R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = fresh(v);
          i.next();
        }
        Iterator fresh(Set s) { return s.iterator(); }
      }
    )"},
    {"deep-chain", R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          a(v);
          i.next();
        }
        void a(Set s) { b(s); }
        void b(Set s) { c(s); }
        void c(Set s) { }
      }
    )"},
    {"recursive-grower", R"(
      class M {
        void main() {
          Set v = new Set();
          Iterator i = v.iterator();
          grow(v);
          i.next();
        }
        void grow(Set s) { if (*) { s.add(); grow(s); } }
      }
    )"},
};

void printTable() {
  std::printf("=== Section 8: intraprocedural vs interprocedural SCMP "
              "===\n");
  std::printf("%-18s | %28s | %28s\n", "program",
              "scmp-intra  chk flag FA  us", "scmp-inter  chk flag FA  us");
  std::string Json = "{\"bench\":\"interproc-ifds\",\"clients\":[";
  bool First = true;
  for (const Prog &P : Programs) {
    std::printf("%-18s", P.Name);
    for (EngineKind K : {EngineKind::SCMPIntra, EngineKind::SCMPInterproc}) {
      DiagnosticEngine Diags;
      Certifier C(easl::cmpSpecSource(), K, Diags);
      cj::Program Client = cj::parseProgram(P.Source, Diags);
      auto T0 = std::chrono::steady_clock::now();
      CertificationReport R = C.certify(Client, Diags);
      auto T1 = std::chrono::steady_clock::now();
      SiteComparison Cmp = compareWithGroundTruth(R, C.spec(), Client);
      double Us =
          std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
              .count();
      std::printf(" | %11zu %4u %2u %5.0f", R.numChecks(), R.numFlagged(),
                  Cmp.FalseAlarms, Us);
      if (K == EngineKind::SCMPInterproc) {
        char Buf[512];
        std::snprintf(
            Buf, sizeof(Buf),
            "%s{\"name\":\"%s\",\"us\":%.1f,\"checks\":%zu,"
            "\"flagged\":%u,\"false_alarms\":%u,"
            "\"summary_iterations\":%u,\"exploded_nodes\":%zu,"
            "\"path_edges\":%zu,\"summaries\":%zu,\"witness_us\":%.1f,"
            "\"stages\":",
            First ? "" : ",", P.Name, Us, R.numChecks(), R.numFlagged(),
            Cmp.FalseAlarms, R.Inter.SummaryIterations, R.Inter.ExplodedNodes,
            R.Inter.PathEdges, R.Inter.Summaries, R.Inter.WitnessMicros);
        Json += Buf;
        Json += stagesJson(R) + "}";
        First = false;
      }
    }
    std::printf("\n");
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

void BM_Interproc(benchmark::State &State) {
  const Prog &P = Programs[State.range(0)];
  DiagnosticEngine Diags;
  Certifier C(easl::cmpSpecSource(), EngineKind::SCMPInterproc, Diags);
  cj::Program Client = cj::parseProgram(P.Source, Diags);
  for (auto _ : State) {
    DiagnosticEngine D2;
    CertificationReport R = C.certify(Client, D2);
    benchmark::DoNotOptimize(R.numFlagged());
  }
  State.SetLabel(P.Name);
}

} // namespace

BENCHMARK(BM_Interproc)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
