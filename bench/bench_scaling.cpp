//===----------------------------------------------------------------------===//
//
// The complexity figure: intraprocedural SCMP certification is
// O(E * B^2) (Section 4.3), where E is the number of CFG edges and B
// the number of iterator/collection variables. Synthetic clients sweep
// B (iterator count) and E (statement count) independently; the series
// should grow quadratically in B and linearly in E.
//
//===----------------------------------------------------------------------===//

#include "Suite.h"

#include "boolprog/Analysis.h"
#include "client/CFG.h"
#include "client/Parser.h"
#include "easl/Builtins.h"
#include "tvla/Certify.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>
#include <string>

using namespace canvas;

namespace {

/// B iterators over one set, each created and used once, followed by a
/// mutation/refresh loop.
std::string clientWithIterators(unsigned B) {
  std::string Src = "class Scale { void main() {\n  Set s = new Set();\n";
  for (unsigned I = 0; I != B; ++I) {
    std::string V = "i" + std::to_string(I);
    Src += "  Iterator " + V + " = s.iterator();\n  " + V + ".next();\n";
  }
  Src += "  while (*) { s.add(); Iterator t = s.iterator(); t.next(); }\n";
  Src += "} }\n";
  return Src;
}

/// Fixed variable count, E repetitions of a use block (linear factor).
std::string clientWithStatements(unsigned E) {
  std::string Src = "class Scale { void main() {\n  Set s = new Set();\n"
                    "  Iterator i = s.iterator();\n";
  for (unsigned K = 0; K != E; ++K)
    Src += "  i.next();\n  if (*) { i.remove(); }\n";
  Src += "} }\n";
  return Src;
}

struct Prepared {
  easl::Spec Spec;
  wp::DerivedAbstraction Abs;
  cj::Program Prog;
  cj::ClientCFG CFG;
  bp::BooleanProgram BP;
};

Prepared prepare(const std::string &Source) {
  Prepared P;
  P.Spec = easl::parseBuiltinSpec(easl::cmpSpecSource());
  DiagnosticEngine Diags;
  P.Abs = wp::deriveAbstraction(P.Spec, Diags);
  P.Prog = cj::parseProgram(Source, Diags);
  P.CFG = cj::buildCFG(P.Prog, P.Spec, Diags);
  P.BP = bp::buildBooleanProgram(P.Abs, *P.CFG.mainCFG(), Diags);
  return P;
}

void printSeries() {
  std::printf("=== Scaling in B (iterator variables); boolean variables "
              "grow as B^2 ===\n");
  std::printf("%6s %10s %10s %12s %10s\n", "B", "CFG edges", "bool vars",
              "fixpt iters", "time (us)");
  for (unsigned B : {2, 4, 8, 16, 32, 64}) {
    Prepared P = prepare(clientWithIterators(B));
    bp::IntraResult R;
    double Us = bench::minOfN([&] { R = bp::analyzeIntraproc(P.BP); });
    std::printf("%6u %10zu %10zu %12u %10.0f\n", B,
                P.CFG.mainCFG()->Edges.size(), P.BP.Vars.size(),
                R.Iterations, Us);
  }

  std::printf("\n=== Scaling in E (statements); fixed variable set ===\n");
  std::printf("%6s %10s %10s %12s %10s\n", "E", "CFG edges", "bool vars",
              "fixpt iters", "time (us)");
  for (unsigned E : {8, 16, 32, 64, 128, 256}) {
    Prepared P = prepare(clientWithStatements(E));
    bp::IntraResult R;
    double Us = bench::minOfN([&] { R = bp::analyzeIntraproc(P.BP); });
    std::printf("%6u %10zu %10zu %12u %10.0f\n", E,
                P.CFG.mainCFG()->Edges.size(), P.BP.Vars.size(),
                R.Iterations, Us);
  }
  std::printf("\n");
}

/// B iterators over one set, each refreshed and consumed inside a
/// shared loop: the relational TVLA engine's structure sets grow with
/// B, and every loop revisit re-transfers every resident structure —
/// the workload the interner's (StructId, edge) memo table targets.
std::string tvlaClient(unsigned B) {
  std::string Src = "class Scale { void main() {\n  Set s = new Set();\n";
  for (unsigned I = 0; I != B; ++I)
    Src += "  Iterator i" + std::to_string(I) + " = s.iterator();\n";
  Src += "  while (*) {\n";
  for (unsigned I = 0; I != B; ++I) {
    std::string V = "i" + std::to_string(I);
    Src += "    " + V + ".next();\n    if (*) { " + V +
           " = s.iterator(); }\n";
  }
  Src += "  }\n";
  for (unsigned I = 0; I != B; ++I)
    Src += "  i" + std::to_string(I) + ".next();\n";
  Src += "} }\n";
  return Src;
}

void printTVLASeries() {
  std::printf("=== Relational TVLA scaling in B (iterator variables) ===\n");
  std::printf("%6s %12s %12s %10s %10s %10s\n", "B", "fixpt iters",
              "structs", "hits", "misses", "time (us)");
  std::string Json = "{\"bench\":\"tvla-relational-scaling\",\"series\":[";
  for (unsigned B : {1, 2, 3, 4}) {
    Prepared P = prepare(tvlaClient(B));
    DiagnosticEngine Diags;
    tvla::TVLAOptions Opts;
    Opts.Relational = true;
    tvla::TVLAResult R;
    double Us = bench::minOfN([&] {
      R = tvla::certifyWithTVLA(P.Spec, P.Abs, *P.CFG.mainCFG(), Opts, Diags);
    });
    std::printf("%6u %12u %12llu %10llu %10llu %10.0f\n", B, R.Iterations,
                static_cast<unsigned long long>(R.InternedStructures),
                static_cast<unsigned long long>(R.TransferCacheHits),
                static_cast<unsigned long long>(R.TransferCacheMisses), Us);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"b\":%u,\"us\":%.0f,\"iterations\":%u,"
                  "\"interned_structures\":%llu,\"cache_hits\":%llu,"
                  "\"cache_misses\":%llu}",
                  B == 1 ? "" : ",", B, Us, R.Iterations,
                  static_cast<unsigned long long>(R.InternedStructures),
                  static_cast<unsigned long long>(R.TransferCacheHits),
                  static_cast<unsigned long long>(R.TransferCacheMisses));
    Json += Buf;
  }
  Json += "]}";
  std::printf("\nBENCH_JSON %s\n\n", Json.c_str());
}

void BM_AnalyzeByIterators(benchmark::State &State) {
  Prepared P = prepare(clientWithIterators(State.range(0)));
  for (auto _ : State) {
    bp::IntraResult R = bp::analyzeIntraproc(P.BP);
    benchmark::DoNotOptimize(R.Iterations);
  }
  State.counters["boolvars"] = P.BP.Vars.size();
  State.SetComplexityN(State.range(0));
}

void BM_AnalyzeByStatements(benchmark::State &State) {
  Prepared P = prepare(clientWithStatements(State.range(0)));
  for (auto _ : State) {
    bp::IntraResult R = bp::analyzeIntraproc(P.BP);
    benchmark::DoNotOptimize(R.Iterations);
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_AnalyzeByIterators)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();
BENCHMARK(BM_AnalyzeByStatements)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

int main(int argc, char **argv) {
  printSeries();
  printTVLASeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
