//===----------------------------------------------------------------------===//
///
/// \file
/// Access paths: a root (a typed variable or a fresh-allocation handle)
/// followed by a sequence of field selections, e.g. "i.set.ver".
///
/// Paths are the terms of the quantifier-free alias logic in which the
/// staged derivation of Section 4 computes weakest preconditions. A field
/// selection is treated as a unary function application, which is what the
/// congruence-closure procedure exploits.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_LOGIC_PATH_H
#define CANVAS_LOGIC_PATH_H

#include <cstddef>
#include <string>
#include <vector>

namespace canvas {

/// An access path rooted at a variable or at a fresh-allocation handle.
///
/// Fresh handles name the objects created by \c new expressions inside a
/// component method body during backward weakest-precondition computation.
/// A fresh object is distinct from every object reachable from a pre-state
/// path; the WP engine uses that fact to resolve atoms mentioning fresh
/// handles to constants.
class Path {
public:
  enum class RootKind { Var, Fresh };

  Path() = default;

  /// Creates a path consisting of just the variable \p Name of class type
  /// \p Type.
  static Path var(std::string Name, std::string Type) {
    Path P;
    P.Kind = RootKind::Var;
    P.Name = std::move(Name);
    P.Type = std::move(Type);
    return P;
  }

  /// Creates a path rooted at the \p Id'th fresh allocation of class type
  /// \p Type.
  static Path fresh(unsigned Id, std::string Type) {
    Path P;
    P.Kind = RootKind::Fresh;
    P.Name = "%new" + std::to_string(Id);
    P.Type = std::move(Type);
    P.FreshId = Id;
    return P;
  }

  RootKind rootKind() const { return Kind; }
  bool isFreshRooted() const { return Kind == RootKind::Fresh; }
  const std::string &rootName() const { return Name; }
  const std::string &rootType() const { return Type; }
  unsigned freshId() const { return FreshId; }
  const std::vector<std::string> &fields() const { return Fields; }
  size_t length() const { return Fields.size(); }

  /// Returns this path extended by one field selection.
  Path withField(const std::string &Field) const {
    Path P = *this;
    P.Fields.push_back(Field);
    return P;
  }

  /// Returns the path without its last field selection. Must not be called
  /// on a root-only path.
  Path parent() const;

  /// Returns the last field selection. Must not be called on a root-only
  /// path.
  const std::string &lastField() const;

  /// True if the roots are identical and \p Prefix's field sequence is a
  /// prefix of this path's.
  bool startsWith(const Path &Prefix) const;

  /// Requires startsWith(\p Prefix); returns \p Replacement followed by
  /// this path's fields beyond the prefix.
  Path replacePrefix(const Path &Prefix, const Path &Replacement) const;

  /// Renames the root variable; no effect on fresh-rooted paths with a
  /// different name.
  Path withRoot(const std::string &NewName, const std::string &NewType) const;

  /// Renders the path in source syntax, e.g. "i.set.ver" or "%new0.ver".
  std::string str() const;

  friend bool operator==(const Path &A, const Path &B) {
    return A.Kind == B.Kind && A.Name == B.Name && A.FreshId == B.FreshId &&
           A.Fields == B.Fields;
  }
  friend bool operator!=(const Path &A, const Path &B) { return !(A == B); }

  /// Lexicographic ordering on the rendered form; used to canonicalize
  /// literals and predicate bodies.
  friend bool operator<(const Path &A, const Path &B) {
    return A.compare(B) < 0;
  }

  int compare(const Path &Other) const;

private:
  RootKind Kind = RootKind::Var;
  std::string Name;
  std::string Type;
  unsigned FreshId = 0;
  std::vector<std::string> Fields;
};

} // namespace canvas

#endif // CANVAS_LOGIC_PATH_H
