#include "logic/Path.h"

#include <cassert>

using namespace canvas;

Path Path::parent() const {
  assert(!Fields.empty() && "parent() of a root-only path");
  Path P = *this;
  P.Fields.pop_back();
  return P;
}

const std::string &Path::lastField() const {
  assert(!Fields.empty() && "lastField() of a root-only path");
  return Fields.back();
}

bool Path::startsWith(const Path &Prefix) const {
  if (Kind != Prefix.Kind || Name != Prefix.Name || FreshId != Prefix.FreshId)
    return false;
  if (Prefix.Fields.size() > Fields.size())
    return false;
  for (size_t I = 0, E = Prefix.Fields.size(); I != E; ++I)
    if (Fields[I] != Prefix.Fields[I])
      return false;
  return true;
}

Path Path::replacePrefix(const Path &Prefix, const Path &Replacement) const {
  assert(startsWith(Prefix) && "replacePrefix without startsWith");
  Path P = Replacement;
  for (size_t I = Prefix.Fields.size(), E = Fields.size(); I != E; ++I)
    P.Fields.push_back(Fields[I]);
  return P;
}

Path Path::withRoot(const std::string &NewName,
                    const std::string &NewType) const {
  Path P = *this;
  P.Name = NewName;
  P.Type = NewType;
  return P;
}

std::string Path::str() const {
  std::string Out = Name;
  for (const std::string &F : Fields) {
    Out += '.';
    Out += F;
  }
  return Out;
}

int Path::compare(const Path &Other) const {
  if (Kind != Other.Kind)
    return Kind < Other.Kind ? -1 : 1;
  if (int C = Name.compare(Other.Name))
    return C;
  if (FreshId != Other.FreshId)
    return FreshId < Other.FreshId ? -1 : 1;
  size_t N = std::min(Fields.size(), Other.Fields.size());
  for (size_t I = 0; I != N; ++I)
    if (int C = Fields[I].compare(Other.Fields[I]))
      return C;
  if (Fields.size() != Other.Fields.size())
    return Fields.size() < Other.Fields.size() ? -1 : 1;
  return 0;
}
