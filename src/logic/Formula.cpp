#include "logic/Formula.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace canvas;

const Path &Formula::lhs() const {
  assert(TheKind == Kind::Eq && "lhs() on non-Eq formula");
  return EqLhs;
}

const Path &Formula::rhs() const {
  assert(TheKind == Kind::Eq && "rhs() on non-Eq formula");
  return EqRhs;
}

const FormulaRef &Formula::operand() const {
  assert(TheKind == Kind::Not && "operand() on non-Not formula");
  return NotOperand;
}

const std::vector<FormulaRef> &Formula::operands() const {
  assert((TheKind == Kind::And || TheKind == Kind::Or) &&
         "operands() on non-And/Or formula");
  return Children;
}

FormulaRef Formula::getTrue() {
  static FormulaRef T(new Formula(Kind::True));
  return T;
}

FormulaRef Formula::getFalse() {
  static FormulaRef F(new Formula(Kind::False));
  return F;
}

FormulaRef Formula::eq(Path Lhs, Path Rhs) {
  if (Lhs == Rhs)
    return getTrue();
  // Canonicalize operand order so "a == b" and "b == a" are one node.
  if (Rhs < Lhs)
    std::swap(Lhs, Rhs);
  auto *F = new Formula(Kind::Eq);
  F->EqLhs = std::move(Lhs);
  F->EqRhs = std::move(Rhs);
  return FormulaRef(F);
}

FormulaRef Formula::ne(Path Lhs, Path Rhs) {
  return notOf(eq(std::move(Lhs), std::move(Rhs)));
}

FormulaRef Formula::notOf(FormulaRef F) {
  switch (F->getKind()) {
  case Kind::True:
    return getFalse();
  case Kind::False:
    return getTrue();
  case Kind::Not:
    return F->operand();
  default:
    break;
  }
  auto *N = new Formula(Kind::Not);
  N->NotOperand = std::move(F);
  return FormulaRef(N);
}

FormulaRef Formula::andOf(std::vector<FormulaRef> Fs) {
  std::vector<FormulaRef> Flat;
  for (FormulaRef &F : Fs) {
    if (F->isFalse())
      return getFalse();
    if (F->isTrue())
      continue;
    if (F->getKind() == Kind::And) {
      for (const FormulaRef &C : F->operands())
        Flat.push_back(C);
      continue;
    }
    Flat.push_back(std::move(F));
  }
  std::vector<FormulaRef> Uniq;
  std::vector<std::string> Seen;
  for (FormulaRef &F : Flat) {
    std::string S = F->str();
    if (std::find(Seen.begin(), Seen.end(), S) != Seen.end())
      continue;
    Seen.push_back(std::move(S));
    Uniq.push_back(std::move(F));
  }
  if (Uniq.empty())
    return getTrue();
  if (Uniq.size() == 1)
    return Uniq.front();
  auto *N = new Formula(Kind::And);
  N->Children = std::move(Uniq);
  return FormulaRef(N);
}

FormulaRef Formula::orOf(std::vector<FormulaRef> Fs) {
  std::vector<FormulaRef> Flat;
  for (FormulaRef &F : Fs) {
    if (F->isTrue())
      return getTrue();
    if (F->isFalse())
      continue;
    if (F->getKind() == Kind::Or) {
      for (const FormulaRef &C : F->operands())
        Flat.push_back(C);
      continue;
    }
    Flat.push_back(std::move(F));
  }
  std::vector<FormulaRef> Uniq;
  std::vector<std::string> Seen;
  for (FormulaRef &F : Flat) {
    std::string S = F->str();
    if (std::find(Seen.begin(), Seen.end(), S) != Seen.end())
      continue;
    Seen.push_back(std::move(S));
    Uniq.push_back(std::move(F));
  }
  if (Uniq.empty())
    return getFalse();
  if (Uniq.size() == 1)
    return Uniq.front();
  auto *N = new Formula(Kind::Or);
  N->Children = std::move(Uniq);
  return FormulaRef(N);
}

FormulaRef Formula::andOf(FormulaRef A, FormulaRef B) {
  std::vector<FormulaRef> Fs;
  Fs.push_back(std::move(A));
  Fs.push_back(std::move(B));
  return andOf(std::move(Fs));
}

FormulaRef Formula::orOf(FormulaRef A, FormulaRef B) {
  std::vector<FormulaRef> Fs;
  Fs.push_back(std::move(A));
  Fs.push_back(std::move(B));
  return orOf(std::move(Fs));
}

std::string Formula::str() const {
  switch (TheKind) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Eq:
    return EqLhs.str() + " == " + EqRhs.str();
  case Kind::Not:
    if (NotOperand->getKind() == Kind::Eq)
      return NotOperand->lhs().str() + " != " + NotOperand->rhs().str();
    return "!(" + NotOperand->str() + ")";
  case Kind::And:
  case Kind::Or: {
    std::string Sep = TheKind == Kind::And ? " && " : " || ";
    std::string Out = "(";
    bool First = true;
    for (const FormulaRef &C : Children) {
      if (!First)
        Out += Sep;
      Out += C->str();
      First = false;
    }
    Out += ")";
    return Out;
  }
  }
  canvas_unreachable("covered switch");
}

Literal::Literal(bool Negated, Path L, Path R) : Negated(Negated) {
  if (R < L)
    std::swap(L, R);
  Lhs = std::move(L);
  Rhs = std::move(R);
}

std::string Literal::str() const {
  return Lhs.str() + (Negated ? " != " : " == ") + Rhs.str();
}

std::string canvas::conjunctionStr(const Conjunction &C) {
  if (C.empty())
    return "true";
  std::string Out;
  bool First = true;
  for (const Literal &L : C) {
    if (!First)
      Out += " && ";
    Out += L.str();
    First = false;
  }
  return Out;
}

namespace {

/// Converts a formula in negation normal form into DNF disjuncts.
class DNFBuilder {
public:
  std::vector<Conjunction> build(const FormulaRef &F, bool Negate) {
    switch (F->getKind()) {
    case Formula::Kind::True:
      return Negate ? falseDNF() : trueDNF();
    case Formula::Kind::False:
      return Negate ? trueDNF() : falseDNF();
    case Formula::Kind::Eq:
      return {{Literal(Negate, F->lhs(), F->rhs())}};
    case Formula::Kind::Not:
      return build(F->operand(), !Negate);
    case Formula::Kind::And:
    case Formula::Kind::Or: {
      bool IsOr = (F->getKind() == Formula::Kind::Or) != Negate;
      std::vector<std::vector<Conjunction>> Parts;
      for (const FormulaRef &C : F->operands())
        Parts.push_back(build(C, Negate));
      if (IsOr) {
        std::vector<Conjunction> Out;
        for (auto &P : Parts)
          for (Conjunction &C : P)
            Out.push_back(std::move(C));
        return Out;
      }
      // Conjunction of DNFs: distribute.
      std::vector<Conjunction> Acc = trueDNF();
      for (auto &P : Parts) {
        std::vector<Conjunction> Next;
        for (const Conjunction &A : Acc)
          for (const Conjunction &B : P) {
            Conjunction Merged = A;
            Merged.insert(Merged.end(), B.begin(), B.end());
            Next.push_back(std::move(Merged));
          }
        Acc = std::move(Next);
      }
      return Acc;
    }
    }
    canvas_unreachable("covered switch");
  }

private:
  static std::vector<Conjunction> trueDNF() { return {Conjunction{}}; }
  static std::vector<Conjunction> falseDNF() { return {}; }
};

} // namespace

bool canvas::normalizeConjunction(Conjunction &C) {
  std::sort(C.begin(), C.end());
  C.erase(std::unique(C.begin(), C.end()), C.end());
  for (size_t I = 0; I + 1 < C.size(); ++I) {
    const Literal &A = C[I];
    const Literal &B = C[I + 1];
    if (A.Lhs == B.Lhs && A.Rhs == B.Rhs && A.Negated != B.Negated)
      return false;
  }
  // An x != x literal is inconsistent by itself (x == x never appears:
  // Formula::eq folds it away, but literals may be built directly).
  for (const Literal &L : C)
    if (L.Negated && L.Lhs == L.Rhs)
      return false;
  // Drop trivially-true x == x literals.
  C.erase(std::remove_if(C.begin(), C.end(),
                         [](const Literal &L) {
                           return !L.Negated && L.Lhs == L.Rhs;
                         }),
          C.end());
  return true;
}

std::vector<Conjunction> canvas::toDNF(const FormulaRef &F) {
  DNFBuilder B;
  std::vector<Conjunction> Raw = B.build(F, /*Negate=*/false);
  std::vector<Conjunction> Out;
  std::vector<std::string> Seen;
  for (Conjunction &C : Raw) {
    if (!normalizeConjunction(C))
      continue;
    std::string S = conjunctionStr(C);
    if (std::find(Seen.begin(), Seen.end(), S) != Seen.end())
      continue;
    Seen.push_back(std::move(S));
    Out.push_back(std::move(C));
  }
  return Out;
}

FormulaRef canvas::fromDNF(const std::vector<Conjunction> &Disjuncts) {
  std::vector<FormulaRef> Ors;
  for (const Conjunction &C : Disjuncts) {
    std::vector<FormulaRef> Ands;
    for (const Literal &L : C) {
      FormulaRef E = Formula::eq(L.Lhs, L.Rhs);
      Ands.push_back(L.Negated ? Formula::notOf(E) : E);
    }
    Ors.push_back(Formula::andOf(std::move(Ands)));
  }
  return Formula::orOf(std::move(Ors));
}
