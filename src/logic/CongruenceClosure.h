//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure (EUF) over access paths, treating each field
/// selection as a unary function application.
///
/// Section 4.5 of the paper notes that the abstraction-derivation process
/// must check candidate instrumentation predicates for equivalence and
/// may use "more powerful decision procedures ... to reduce the number of
/// generated instrumentation predicates". This module is that decision
/// procedure: complete for conjunctions of path equalities and
/// disequalities. It is what lets the derivation discover, e.g., that the
/// literal i != j inside (i != j && i.defVer != i.set.ver) is redundant
/// under the precondition j.defVer == j.set.ver, so that the derived
/// predicate coincides with the paper's "stale".
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_LOGIC_CONGRUENCECLOSURE_H
#define CANVAS_LOGIC_CONGRUENCECLOSURE_H

#include "logic/Formula.h"
#include "logic/Path.h"

#include <map>
#include <string>
#include <vector>

namespace canvas {

/// Incremental congruence closure over path terms.
///
/// Usage: add assumptions with assume(); then query consistency and
/// implied equalities. Adding an equality merges classes and propagates
/// congruences (a == b implies a.f == b.f for every field f present in
/// the term DAG). Disequalities do not drive merging (EUF), they only
/// participate in the consistency check.
class CongruenceClosure {
public:
  /// Asserts \p L (an equality or disequality of two paths).
  void assume(const Literal &L);

  /// Asserts every literal of \p C.
  void assume(const Conjunction &C);

  /// True if no asserted disequality has congruent sides. (Fresh-handle
  /// distinctness is resolved before formulas reach this class, so plain
  /// EUF consistency is complete here.)
  bool isConsistent();

  /// True if the asserted equalities entail Lhs == Rhs.
  bool provesEqual(const Path &Lhs, const Path &Rhs);

private:
  struct Node {
    int Parent;            ///< Union-find parent (self if root).
    int Size;              ///< Class size for union by size.
    /// Field label -> node for (this term).field, per class
    /// representative. Used for congruence propagation.
    std::map<std::string, int> FieldUses;
  };

  int getNode(const Path &P);
  int getRootNode(const Path &P);
  int find(int N);
  void merge(int A, int B);

  std::vector<Node> Nodes;
  /// Root-variable key ("kind:name") -> node id.
  std::map<std::string, int> RootNodes;
  /// Pending disequalities as node pairs.
  std::vector<std::pair<int, int>> Disequalities;
};

/// True if the conjunction \p C is satisfiable in EUF.
bool conjunctionConsistent(const Conjunction &C);

/// True if \p Assumptions entails \p L in EUF. Complete: equality
/// entailment is congruence membership; disequality entailment is
/// inconsistency of Assumptions plus the corresponding equality.
bool conjunctionImplies(const Conjunction &Assumptions, const Literal &L);

/// Simplifies the disjunct \p C under the extra hypotheses \p Context
/// (typically the method precondition during derivation):
///  - returns std::nullopt-like empty optional when C && Context is
///    inconsistent (the disjunct denotes false and should be dropped);
///  - otherwise removes every literal entailed by the remaining literals
///    together with Context, to a fixpoint.
/// The result is sorted and duplicate-free.
bool simplifyDisjunct(Conjunction &C, const Conjunction &Context);

/// Removes DNF disjuncts subsumed by another disjunct under the extra
/// hypotheses \p Context: D1 is dropped when some other disjunct D2 is
/// entailed by D1 && Context (then D1 || D2 == D2). Equivalent disjuncts
/// keep their first representative. This is what keeps the derivation's
/// predicate set small: e.g. the disjunct (stale(q) && q.set != this.set)
/// of WP(remove, stale) is subsumed by the disjunct stale(q).
void removeSubsumedDisjuncts(std::vector<Conjunction> &Disjuncts,
                             const Conjunction &Context);

} // namespace canvas

#endif // CANVAS_LOGIC_CONGRUENCECLOSURE_H
