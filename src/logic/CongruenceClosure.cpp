#include "logic/CongruenceClosure.h"

#include <algorithm>
#include <cassert>

using namespace canvas;

int CongruenceClosure::find(int N) {
  while (Nodes[N].Parent != N) {
    Nodes[N].Parent = Nodes[Nodes[N].Parent].Parent;
    N = Nodes[N].Parent;
  }
  return N;
}

int CongruenceClosure::getRootNode(const Path &P) {
  std::string Key =
      (P.rootKind() == Path::RootKind::Fresh ? "f:" : "v:") + P.rootName();
  auto It = RootNodes.find(Key);
  if (It != RootNodes.end())
    return It->second;
  int Id = static_cast<int>(Nodes.size());
  Nodes.push_back(Node{Id, 1, {}});
  RootNodes.emplace(std::move(Key), Id);
  return Id;
}

int CongruenceClosure::getNode(const Path &P) {
  int Cur = getRootNode(P);
  for (const std::string &Field : P.fields()) {
    int Rep = find(Cur);
    auto It = Nodes[Rep].FieldUses.find(Field);
    if (It != Nodes[Rep].FieldUses.end()) {
      Cur = It->second;
      continue;
    }
    int Id = static_cast<int>(Nodes.size());
    Nodes.push_back(Node{Id, 1, {}});
    Nodes[Rep].FieldUses.emplace(Field, Id);
    Cur = Id;
  }
  return Cur;
}

void CongruenceClosure::merge(int A, int B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  if (Nodes[A].Size < Nodes[B].Size)
    std::swap(A, B);
  // A absorbs B. Move B's field uses into A, merging congruent parents.
  Nodes[B].Parent = A;
  Nodes[A].Size += Nodes[B].Size;
  std::map<std::string, int> BUses = std::move(Nodes[B].FieldUses);
  Nodes[B].FieldUses.clear();
  for (auto &[Field, UseNode] : BUses) {
    auto It = Nodes[A].FieldUses.find(Field);
    if (It == Nodes[A].FieldUses.end()) {
      Nodes[A].FieldUses.emplace(Field, UseNode);
      continue;
    }
    // Congruence: x == y implies x.Field == y.Field.
    merge(It->second, UseNode);
  }
}

void CongruenceClosure::assume(const Literal &L) {
  int A = getNode(L.Lhs);
  int B = getNode(L.Rhs);
  if (L.Negated) {
    Disequalities.emplace_back(A, B);
    return;
  }
  merge(A, B);
}

void CongruenceClosure::assume(const Conjunction &C) {
  for (const Literal &L : C)
    assume(L);
}

bool CongruenceClosure::isConsistent() {
  for (auto [A, B] : Disequalities)
    if (find(A) == find(B))
      return false;
  return true;
}

bool CongruenceClosure::provesEqual(const Path &Lhs, const Path &Rhs) {
  return find(getNode(Lhs)) == find(getNode(Rhs));
}

bool canvas::conjunctionConsistent(const Conjunction &C) {
  CongruenceClosure CC;
  CC.assume(C);
  return CC.isConsistent();
}

bool canvas::conjunctionImplies(const Conjunction &Assumptions,
                                const Literal &L) {
  CongruenceClosure CC;
  CC.assume(Assumptions);
  if (!CC.isConsistent())
    return true;
  if (!L.Negated)
    // EUF is convex: a consistent conjunction entails an equality iff its
    // equalities alone prove it.
    return CC.provesEqual(L.Lhs, L.Rhs);
  // Assumptions entail a != b iff Assumptions && a == b is inconsistent.
  CC.assume(Literal(/*Negated=*/false, L.Lhs, L.Rhs));
  return !CC.isConsistent();
}

bool canvas::simplifyDisjunct(Conjunction &C, const Conjunction &Context) {
  Conjunction All = C;
  All.insert(All.end(), Context.begin(), Context.end());
  if (!conjunctionConsistent(All))
    return false;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I != C.size(); ++I) {
      Conjunction Rest = Context;
      for (size_t J = 0; J != C.size(); ++J)
        if (J != I)
          Rest.push_back(C[J]);
      if (conjunctionImplies(Rest, C[I])) {
        C.erase(C.begin() + I);
        Changed = true;
        break;
      }
    }
  }
  std::sort(C.begin(), C.end());
  C.erase(std::unique(C.begin(), C.end()), C.end());
  return true;
}

/// True when \p Weaker is entailed by \p Stronger && \p Context.
static bool disjunctEntails(const Conjunction &Stronger,
                            const Conjunction &Weaker,
                            const Conjunction &Context) {
  Conjunction Assumptions = Stronger;
  Assumptions.insert(Assumptions.end(), Context.begin(), Context.end());
  for (const Literal &L : Weaker)
    if (!conjunctionImplies(Assumptions, L))
      return false;
  return true;
}

void canvas::removeSubsumedDisjuncts(std::vector<Conjunction> &Disjuncts,
                                     const Conjunction &Context) {
  std::vector<bool> Dropped(Disjuncts.size(), false);
  for (size_t I = 0; I != Disjuncts.size(); ++I) {
    if (Dropped[I])
      continue;
    for (size_t J = 0; J != Disjuncts.size(); ++J) {
      if (I == J || Dropped[J])
        continue;
      if (!disjunctEntails(Disjuncts[I], Disjuncts[J], Context))
        continue;
      // D_I entails D_J, so D_I is redundant — unless they are
      // equivalent, in which case the earlier one survives.
      if (disjunctEntails(Disjuncts[J], Disjuncts[I], Context) && J > I)
        continue;
      Dropped[I] = true;
      break;
    }
  }
  std::vector<Conjunction> Kept;
  for (size_t I = 0; I != Disjuncts.size(); ++I)
    if (!Dropped[I])
      Kept.push_back(std::move(Disjuncts[I]));
  Disjuncts = std::move(Kept);
}
