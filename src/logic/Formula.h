//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier-free formulas over access-path equalities, with constant
/// folding, negation-normal-form and disjunctive-normal-form conversion.
///
/// These are the candidate instrumentation formulas of Section 4.1: the
/// derivation procedure computes weakest preconditions in this language,
/// converts them to DNF, and promotes each disjunct (a conjunction of
/// equality/disequality literals) to a candidate instrumentation predicate.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_LOGIC_FORMULA_H
#define CANVAS_LOGIC_FORMULA_H

#include "logic/Path.h"

#include <memory>
#include <string>
#include <vector>

namespace canvas {

class Formula;
using FormulaRef = std::shared_ptr<const Formula>;

/// An immutable formula node. Construction goes through the static
/// factories, which perform local simplification (constant folding,
/// flattening of nested conjunctions/disjunctions, double-negation
/// elimination, and folding of syntactically identical equalities).
class Formula {
public:
  enum class Kind { True, False, Eq, Not, And, Or };

  Kind getKind() const { return TheKind; }

  bool isTrue() const { return TheKind == Kind::True; }
  bool isFalse() const { return TheKind == Kind::False; }

  /// The two sides of an Eq node.
  const Path &lhs() const;
  const Path &rhs() const;

  /// The operand of a Not node.
  const FormulaRef &operand() const;

  /// The operands of an And/Or node (always >= 2 after simplification).
  const std::vector<FormulaRef> &operands() const;

  static FormulaRef getTrue();
  static FormulaRef getFalse();
  /// Path equality; identical paths fold to True.
  static FormulaRef eq(Path Lhs, Path Rhs);
  /// Path disequality, i.e. Not(Eq).
  static FormulaRef ne(Path Lhs, Path Rhs);
  static FormulaRef notOf(FormulaRef F);
  static FormulaRef andOf(std::vector<FormulaRef> Fs);
  static FormulaRef orOf(std::vector<FormulaRef> Fs);
  static FormulaRef andOf(FormulaRef A, FormulaRef B);
  static FormulaRef orOf(FormulaRef A, FormulaRef B);

  /// Renders the formula with !, &&, || and == / != atoms.
  std::string str() const;

private:
  explicit Formula(Kind K) : TheKind(K) {}

  Kind TheKind;
  Path EqLhs, EqRhs;
  FormulaRef NotOperand;
  std::vector<FormulaRef> Children;
};

/// One literal of a DNF disjunct: an equality or disequality of two paths.
/// Literals are stored with lhs <= rhs in path order so that syntactic
/// comparison is canonical.
struct Literal {
  bool Negated = false;
  Path Lhs, Rhs;

  Literal() = default;
  Literal(bool Negated, Path L, Path R);

  /// Renders "a == b" or "a != b".
  std::string str() const;

  friend bool operator==(const Literal &A, const Literal &B) {
    return A.Negated == B.Negated && A.Lhs == B.Lhs && A.Rhs == B.Rhs;
  }
  friend bool operator<(const Literal &A, const Literal &B) {
    if (int C = A.Lhs.compare(B.Lhs))
      return C < 0;
    if (int C = A.Rhs.compare(B.Rhs))
      return C < 0;
    return A.Negated < B.Negated;
  }
};

/// A conjunction of literals; one disjunct of a DNF.
using Conjunction = std::vector<Literal>;

/// Renders "a == b && c != d"; "true" for the empty conjunction.
std::string conjunctionStr(const Conjunction &C);

/// Sorts and dedupes \p C, drops trivially-true x == x literals, and
/// returns false when \p C is trivially inconsistent (contains x != x or
/// a complementary literal pair).
bool normalizeConjunction(Conjunction &C);

/// Converts \p F to disjunctive normal form. The result is a list of
/// conjunctions whose disjunction is equivalent to \p F. An empty list
/// denotes False; a list containing an empty conjunction denotes True.
/// Duplicate literals inside a disjunct and duplicate disjuncts are
/// removed; trivially inconsistent disjuncts (containing both l and !l)
/// are dropped.
std::vector<Conjunction> toDNF(const FormulaRef &F);

/// Rebuilds a formula from DNF form.
FormulaRef fromDNF(const std::vector<Conjunction> &Disjuncts);

} // namespace canvas

#endif // CANVAS_LOGIC_FORMULA_H
