//===----------------------------------------------------------------------===//
///
/// \file
/// Kleene's 3-valued truth values and connectives (Section 5.5).
///
/// The value Half ("1/2") denotes "may be 0 or 1". The information order
/// places 0 and 1 below Half; join in that order is used when blurring
/// structures during canonical abstraction and when the independent-
/// attribute engine merges structures.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_LOGIC_KLEENE_H
#define CANVAS_LOGIC_KLEENE_H

#include <cstdint>

namespace canvas {

enum class Kleene : uint8_t { False = 0, True = 1, Half = 2 };

inline Kleene kleeneOf(bool B) { return B ? Kleene::True : Kleene::False; }

/// Kleene conjunction: min in the truth order 0 < 1/2 < 1.
inline Kleene kAnd(Kleene A, Kleene B) {
  if (A == Kleene::False || B == Kleene::False)
    return Kleene::False;
  if (A == Kleene::True && B == Kleene::True)
    return Kleene::True;
  return Kleene::Half;
}

/// Kleene disjunction: max in the truth order.
inline Kleene kOr(Kleene A, Kleene B) {
  if (A == Kleene::True || B == Kleene::True)
    return Kleene::True;
  if (A == Kleene::False && B == Kleene::False)
    return Kleene::False;
  return Kleene::Half;
}

/// Kleene negation: swaps 0 and 1, fixes 1/2.
inline Kleene kNot(Kleene A) {
  if (A == Kleene::True)
    return Kleene::False;
  if (A == Kleene::False)
    return Kleene::True;
  return Kleene::Half;
}

/// Join in the information order: x |_| x = x, otherwise 1/2.
inline Kleene kJoin(Kleene A, Kleene B) { return A == B ? A : Kleene::Half; }

/// True if \p A is at most \p B in the information order (B is 1/2 or
/// A == B). Used by the structure-embedding check.
inline Kleene kleeneFromInt(int V) {
  return V == 0 ? Kleene::False : V == 1 ? Kleene::True : Kleene::Half;
}

inline bool kLeq(Kleene A, Kleene B) { return A == B || B == Kleene::Half; }

inline char kleeneChar(Kleene A) {
  switch (A) {
  case Kleene::False:
    return '0';
  case Kleene::True:
    return '1';
  case Kleene::Half:
    return '?';
  }
  return '?';
}

} // namespace canvas

#endif // CANVAS_LOGIC_KLEENE_H
