#include "shard/Corpus.h"

#include "client/CFG.h"
#include "client/Parser.h"
#include "easl/Parser.h"
#include "wp/Abstraction.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace canvas;
using namespace canvas::shard;

namespace fs = std::filesystem;

bool shard::loadCorpus(const std::string &Dir, std::vector<CorpusClient> &Out,
                       std::string &Error) {
  std::error_code EC;
  if (!fs::is_directory(Dir, EC) || EC) {
    Error = "corpus directory '" + Dir + "' does not exist";
    return false;
  }
  std::vector<fs::path> Files;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC)) {
    const std::string Name = DE.path().filename().string();
    if (Name.size() > 3 && Name.substr(Name.size() - 3) == ".cj")
      Files.push_back(DE.path());
  }
  if (EC) {
    Error = "cannot list corpus directory '" + Dir + "': " + EC.message();
    return false;
  }
  std::sort(Files.begin(), Files.end());
  for (const fs::path &P : Files) {
    CorpusClient C;
    C.Name = P.filename().string();
    C.Name = C.Name.substr(0, C.Name.size() - 3);
    C.Path = P.string();
    std::ifstream In(P, std::ios::binary);
    if (!In) {
      Error = "cannot read corpus client '" + C.Path + "'";
      return false;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    C.Source = SS.str();
    Out.push_back(std::move(C));
  }
  if (Out.empty()) {
    Error = "corpus directory '" + Dir + "' holds no .cj clients";
    return false;
  }
  return true;
}

uint64_t shard::estimateCost(const std::string &Source, const easl::Spec &Spec,
                             const wp::DerivedAbstraction &Abs) {
  DiagnosticEngine Quiet;
  cj::Program P = cj::parseProgram(Source, Quiet);
  if (Quiet.hasErrors())
    return 1;
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Quiet);
  if (Quiet.hasErrors())
    return 1;
  uint64_t Total = 0;
  for (const cj::CFGMethod &M : CFG.Methods) {
    // Predicate instantiations over the method's component variables:
    // for each family, the number of typed slot assignments — the
    // boolean-variable count the boolean-program build would produce.
    std::map<std::string, uint64_t> VarsByType;
    for (const auto &NameAndType : M.CompVars)
      ++VarsByType[NameAndType.second];
    uint64_t B = 0;
    for (const wp::PredicateFamily &Fam : Abs.Families) {
      uint64_t Assignments = 1;
      for (const std::string &SlotType : Fam.VarTypes) {
        auto It = VarsByType.find(SlotType);
        Assignments *= It == VarsByType.end() ? 0 : It->second;
      }
      B += Assignments;
    }
    const uint64_t Edges = std::max<uint64_t>(1, M.Edges.size());
    Total += Edges * (1 + B) * (1 + B);
  }
  return std::max<uint64_t>(1, Total);
}

void shard::estimateCosts(std::vector<CorpusClient> &Corpus,
                          const easl::Spec &Spec,
                          const wp::DerivedAbstraction &Abs) {
  for (CorpusClient &C : Corpus)
    C.Cost = estimateCost(C.Source, Spec, Abs);
}

namespace {

/// splitmix64: deterministic, platform-independent, and good enough to
/// decorrelate the per-client streams derived from one corpus seed.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
  /// Uniform in [0, Bound).
  uint64_t below(uint64_t Bound) { return Bound ? next() % Bound : 0; }
  bool chance(unsigned Percent) { return below(100) < Percent; }
};

/// Emits the op sequence of one set variable: iterator loops, adds,
/// branches — occasionally the classic add-then-next violation or a
/// remove-then-next misuse, so the corpus exercises flagged verdicts
/// and witness extraction, not just the happy path.
void emitSetUsage(std::string &Out, Rng &R, const std::string &Set,
                  unsigned Depth) {
  const unsigned Blocks = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned B = 0; B != Blocks; ++B) {
    switch (R.below(6)) {
    case 0: // plain iterate-to-end loop
      Out += "      Iterator i" + Set + std::to_string(B) + " = " + Set +
             ".iterator();\n";
      Out += "      while (*) { i" + Set + std::to_string(B) + ".next(); }\n";
      break;
    case 1: // grow then fresh iterator (conformant)
      Out += "      " + Set + ".add();\n";
      Out += "      Iterator j" + Set + std::to_string(B) + " = " + Set +
             ".iterator();\n";
      Out += "      if (*) { j" + Set + std::to_string(B) + ".next(); }\n";
      break;
    case 2: { // two concurrent iterators, one removal
      const std::string A = "a" + Set + std::to_string(B);
      const std::string C = "b" + Set + std::to_string(B);
      Out += "      Iterator " + A + " = " + Set + ".iterator();\n";
      Out += "      Iterator " + C + " = " + Set + ".iterator();\n";
      Out += "      " + A + ".next();\n";
      if (R.chance(40))
        Out += "      " + A + ".remove();\n";
      Out += "      if (*) { " + C + ".next(); }\n";
      break;
    }
    case 3: // the add-then-next violation
      Out += "      Iterator v" + Set + std::to_string(B) + " = " + Set +
             ".iterator();\n";
      Out += "      " + Set + ".add();\n";
      Out += "      if (*) { v" + Set + std::to_string(B) + ".next(); }\n";
      break;
    case 4: // nested loop growth with per-round iterator
      Out += "      while (*) {\n";
      Out += "        " + Set + ".add();\n";
      Out += "        Iterator n" + Set + std::to_string(B) + " = " + Set +
             ".iterator();\n";
      Out += "        while (*) { n" + Set + std::to_string(B) +
             ".next(); }\n";
      Out += "      }\n";
      break;
    default: // branchy adds
      Out += "      if (*) { " + Set + ".add(); } else { " + Set +
             ".add(); }\n";
      break;
    }
  }
  if (Depth == 0 && R.chance(25)) {
    Out += "      if (*) {\n";
    emitSetUsage(Out, R, Set, Depth + 1);
    Out += "      }\n";
  }
}

std::string generateClient(unsigned Index, Rng &R) {
  std::string Out = "class Gen" + std::to_string(Index) + " {\n";
  const unsigned Sets = 1 + static_cast<unsigned>(R.below(3));
  const bool Helpers = R.chance(35);
  Out += "  void main() {\n";
  for (unsigned S = 0; S != Sets; ++S) {
    const std::string Set = "s" + std::to_string(S);
    Out += "    Set " + Set + " = new Set();\n";
    Out += "    if (*) {\n";
    emitSetUsage(Out, R, Set, 0);
    Out += "    }\n";
    if (Helpers)
      Out += "    grow" + std::to_string(S % 2) + "(" + Set + ");\n";
  }
  Out += "  }\n";
  if (Helpers) {
    Out += "  void grow0(Set w) { if (*) { w.add(); } }\n";
    Out += "  void grow1(Set w) {\n"
           "    Iterator i = w.iterator();\n"
           "    while (*) { i.next(); }\n"
           "  }\n";
  }
  Out += "}\n";
  return Out;
}

} // namespace

bool shard::generateCorpus(const std::string &Dir, unsigned Count,
                           uint64_t Seed, std::string &Error) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create corpus directory '" + Dir + "': " + EC.message();
    return false;
  }
  for (unsigned I = 0; I != Count; ++I) {
    // Each client draws from its own stream so inserting or dropping a
    // client never shifts its neighbors' content.
    Rng R(Seed * 0x2545F4914F6CDD1Dull + I);
    const std::string Source = generateClient(I, R);
    char Name[32];
    std::snprintf(Name, sizeof(Name), "gen-%04u.cj", I);
    const std::string Path = Dir + "/" + Name;
    std::ofstream OutF(Path, std::ios::binary | std::ios::trunc);
    if (!OutF) {
      Error = "cannot write corpus client '" + Path + "'";
      return false;
    }
    OutF << Source;
    if (!OutF) {
      Error = "short write on corpus client '" + Path + "'";
      return false;
    }
  }
  return true;
}
