#include "shard/Driver.h"

#include "support/Subprocess.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <deque>

#include <poll.h>
#include <unistd.h>

using namespace canvas;
using namespace canvas::shard;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string shard::jsonlRows(const ResultMsg &R) {
  std::string Out;
  for (const MethodVerdict &M : R.Methods)
    Out += "SHARD_JSONL {\"client\":\"" + jsonEscape(R.Name) +
           "\",\"method\":\"" + jsonEscape(M.Method) +
           "\",\"checks\":" + std::to_string(M.Checks) +
           ",\"flagged\":" + std::to_string(M.Flagged) +
           ",\"worker\":" + std::to_string(R.WorkerPid) + "}\n";
  Out += "SHARD_JSONL {\"client\":\"" + jsonEscape(R.Name) +
         "\",\"methods\":" + std::to_string(R.Methods.size()) +
         ",\"checks\":" + std::to_string(R.Checks) +
         ",\"flagged\":" + std::to_string(R.Flagged) +
         ",\"degraded\":" + (R.Degraded ? "true" : "false") +
         ",\"parse_failed\":" + (R.ParseFailed ? "true" : "false") +
         ",\"worker\":" + std::to_string(R.WorkerPid) +
         ",\"micros\":" + std::to_string(R.Micros) +
         ",\"store_hits\":" + std::to_string(R.StoreHits) +
         ",\"store_writes\":" + std::to_string(R.StoreWrites) + "}\n";
  return Out;
}

std::string shard::mergedSection(const std::string &Name, const ResultMsg &R) {
  return "=== " + Name + " ===\n" + R.DiagText + R.ReportText;
}

std::string shard::crashedSection(const std::string &Name) {
  return "=== " + Name +
         " ===\nerror: worker crashed twice on this client; verdict "
         "unavailable (degraded)\n";
}

namespace {

/// Accumulates one landed result into the run stats.
void accumulate(ShardRunStats &Stats, const ResultMsg &R) {
  Stats.Flagged += R.Flagged > 0;
  Stats.ParseFailed += R.ParseFailed != 0;
  Stats.DegradedClients += R.Degraded != 0;
  Stats.StoreHits += R.StoreHits;
  Stats.StoreMisses += R.StoreMisses;
  Stats.StoreRejected += R.StoreRejected;
  Stats.StoreQuarantined += R.StoreQuarantined;
  Stats.StoreWrites += R.StoreWrites;
  if (R.StoreHits)
    Stats.HitsByPid[R.WorkerPid] += R.StoreHits;
  Stats.WorkerMicros += R.Micros;
}

/// One worker process slot in the scheduler.
struct WorkerSlot {
  support::ChildProcess Proc;
  bool HasTask = false;
  TaskMsg Task;
};

void closeWorker(WorkerSlot &W) {
  if (W.Proc.InFd >= 0)
    ::close(W.Proc.InFd);
  if (W.Proc.OutFd >= 0)
    ::close(W.Proc.OutFd);
  W.Proc.InFd = W.Proc.OutFd = -1;
  if (W.Proc.Pid > 0)
    support::waitProcess(W.Proc.Pid);
  W.Proc.Pid = -1;
}

} // namespace

bool shard::runSharded(const std::vector<CorpusClient> &Corpus,
                       const DriverOptions &Opts, std::ostream &MergedOut,
                       std::ostream &StreamOut, ShardRunStats &Stats,
                       std::string &Error) {
  Stats = ShardRunStats();
  Stats.Shards = std::max(1u, Opts.Shards);
  Stats.Clients = static_cast<unsigned>(Corpus.size());

  // A write to a crashed worker's pipe must surface as EPIPE on the
  // writeFrame (which requeues the task), not kill the driver.
  ::signal(SIGPIPE, SIG_IGN);

  // The scheduler queue: largest estimated cost first, corpus index as
  // the stable tie-break. Pull-based: each idle worker takes the front,
  // so big clients start early and the tail is one client long.
  std::deque<TaskMsg> Queue;
  {
    std::vector<uint32_t> Order(Corpus.size());
    for (uint32_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&Corpus](uint32_t A, uint32_t B) {
      if (Corpus[A].Cost != Corpus[B].Cost)
        return Corpus[A].Cost > Corpus[B].Cost;
      return A < B;
    });
    for (uint32_t I : Order) {
      TaskMsg T;
      T.Index = I;
      T.Name = Corpus[I].Name;
      T.Source = Corpus[I].Source;
      T.Retry = 0;
      Queue.push_back(std::move(T));
    }
  }

  std::vector<std::string> Argv;
  Argv.push_back(Opts.WorkerExe);
  Argv.push_back("--worker");
  for (std::string &A : workerArgs(Opts.Worker))
    Argv.push_back(std::move(A));

  const unsigned NumWorkers =
      static_cast<unsigned>(std::min<size_t>(Stats.Shards, Corpus.size()));
  // Each client completes after at most two attempts, so worker deaths
  // are bounded; the cap is a backstop against a driver bug, not the
  // termination argument.
  const unsigned MaxRespawns = 2 * Stats.Clients + NumWorkers;

  std::vector<WorkerSlot> Workers(NumWorkers);
  auto SpawnInto = [&](WorkerSlot &W) {
    return support::spawnProcess(Argv, Opts.WorkerEnv, W.Proc, Error);
  };
  for (WorkerSlot &W : Workers)
    if (!SpawnInto(W)) {
      for (WorkerSlot &Prev : Workers)
        if (Prev.Proc.Pid > 0)
          closeWorker(Prev);
      return false;
    }

  std::vector<std::string> Sections(Corpus.size());
  std::vector<bool> Done(Corpus.size(), false);
  size_t Completed = 0;
  bool Failed = false;

  // A worker died. Reap it, settle its in-flight task (requeue once,
  // then degrade — never drop), and respawn a replacement while work
  // remains.
  auto OnWorkerDeath = [&](WorkerSlot &W) {
    closeWorker(W);
    if (W.HasTask) {
      TaskMsg T = std::move(W.Task);
      W.HasTask = false;
      if (T.Retry == 0) {
        ++Stats.Requeues;
        T.Retry = 1;
        Queue.push_front(std::move(T));
      } else {
        ++Stats.CrashedClients;
        ++Stats.DegradedClients;
        Sections[T.Index] = crashedSection(T.Name);
        Done[T.Index] = true;
        ++Completed;
        if (Opts.Stream)
          StreamOut << "SHARD_JSONL {\"client\":\"" + jsonEscape(T.Name) +
                           "\",\"status\":\"crashed\",\"attempts\":2}\n"
                    << std::flush;
      }
    }
    if (Completed < Corpus.size()) {
      if (Stats.WorkerRespawns >= MaxRespawns) {
        Error = "shard driver: worker respawn budget exhausted";
        Failed = true;
        return;
      }
      ++Stats.WorkerRespawns;
      if (!SpawnInto(W))
        Failed = true;
    }
  };

  while (Completed < Corpus.size() && !Failed) {
    // Hand a task to every idle live worker.
    for (WorkerSlot &W : Workers) {
      if (Failed || Queue.empty())
        break;
      if (W.Proc.Pid <= 0 || W.HasTask)
        continue;
      TaskMsg T = std::move(Queue.front());
      Queue.pop_front();
      if (!writeFrame(W.Proc.InFd, MsgType::Task, encodeTask(T))) {
        // The worker died before accepting the task: requeue this task
        // untouched (an unsent task is not an attempt) and handle the
        // death.
        Queue.push_front(std::move(T));
        OnWorkerDeath(W);
        continue;
      }
      W.Task = std::move(T);
      W.HasTask = true;
    }
    if (Failed || Completed >= Corpus.size())
      break;

    std::vector<pollfd> Fds;
    std::vector<size_t> FdSlot;
    for (size_t I = 0; I != Workers.size(); ++I)
      if (Workers[I].Proc.Pid > 0 && Workers[I].HasTask) {
        Fds.push_back({Workers[I].Proc.OutFd, POLLIN, 0});
        FdSlot.push_back(I);
      }
    if (Fds.empty()) {
      // No task in flight yet work remains: every live worker is idle
      // and the queue is empty, which cannot happen unless accounting
      // broke.
      Error = "shard driver: scheduler stalled with work outstanding";
      Failed = true;
      break;
    }
    const int N = ::poll(Fds.data(), Fds.size(), -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = "shard driver: poll failed";
      Failed = true;
      break;
    }
    for (size_t F = 0; F != Fds.size() && !Failed; ++F) {
      if (!(Fds[F].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      WorkerSlot &W = Workers[FdSlot[F]];
      if (W.Proc.Pid <= 0)
        continue; // Settled earlier in this poll round.
      MsgType Type;
      std::vector<uint8_t> Payload;
      bool AtEof = false;
      std::string FrameError;
      if (!readFrame(W.Proc.OutFd, Type, Payload, AtEof, FrameError) ||
          Type != MsgType::Result) {
        // EOF or a torn frame: the worker died mid-task.
        OnWorkerDeath(W);
        continue;
      }
      ResultMsg R;
      if (!decodeResult(Payload, R, FrameError)) {
        OnWorkerDeath(W);
        continue;
      }
      if (!W.HasTask || R.Index != W.Task.Index ||
          R.Index >= Corpus.size() || Done[R.Index]) {
        Error = "shard driver: protocol violation (unexpected result index)";
        Failed = true;
        break;
      }
      W.HasTask = false;
      Sections[R.Index] = mergedSection(R.Name, R);
      Done[R.Index] = true;
      ++Completed;
      accumulate(Stats, R);
      if (Opts.Stream)
        StreamOut << jsonlRows(R) << std::flush;
    }
  }

  for (WorkerSlot &W : Workers) {
    if (W.Proc.Pid <= 0)
      continue;
    writeFrame(W.Proc.InFd, MsgType::Shutdown, {});
    closeWorker(W);
  }
  if (Failed)
    return false;

  for (size_t I = 0; I != Sections.size(); ++I)
    MergedOut << Sections[I];
  MergedOut << std::flush;
  return true;
}

bool shard::runSerial(const std::vector<CorpusClient> &Corpus,
                      const DriverOptions &Opts, std::ostream &MergedOut,
                      std::ostream &StreamOut, ShardRunStats &Stats,
                      std::string &Error) {
  Stats = ShardRunStats();
  Stats.Shards = 0;
  Stats.Clients = static_cast<unsigned>(Corpus.size());

  std::string SpecSource;
  if (!resolveSpec(Opts.Worker.SpecArg, SpecSource, Error))
    return false;
  core::CertifierOptions COpts;
  COpts.PointsTo = Opts.Worker.PointsTo;
  COpts.StorePath = Opts.Worker.StorePath;
  COpts.StoreMode = Opts.Worker.StoreMode;
  COpts.Budget = Opts.Worker.Budget;
  COpts.Workers = 1;
  DiagnosticEngine Diags;
  core::Certifier C(SpecSource, Opts.Worker.Engine, Diags, {}, COpts);
  if (Diags.hasErrors()) {
    Error = "bad spec:\n" + Diags.str();
    return false;
  }
  for (uint32_t I = 0; I != Corpus.size(); ++I) {
    ResultMsg R;
    certifyClient(C, I, Corpus[I].Name, Corpus[I].Source, R);
    MergedOut << mergedSection(R.Name, R);
    accumulate(Stats, R);
    if (Opts.Stream)
      StreamOut << jsonlRows(R) << std::flush;
  }
  MergedOut << std::flush;
  return true;
}
