#include "shard/Protocol.h"

#include "cert/Certificate.h"
#include "store/CertStore.h"
#include "support/Subprocess.h"

using namespace canvas;
using namespace canvas::shard;

namespace {

/// Frames cap at 64 MiB: a corpus client source or a rendered report
/// beyond that is not a plausible message, it is a desynchronized or
/// hostile stream, and a bounded reject beats an unbounded allocation.
constexpr uint32_t MaxFrameBytes = 64u << 20;

constexpr size_t HeaderBytes = 4 + 4 + 1 + 4 + 4;

} // namespace

bool shard::writeFrame(int Fd, MsgType Type,
                       const std::vector<uint8_t> &Payload) {
  cert::Writer W;
  W.u32(ProtocolMagic);
  W.u32(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u32(store::crc32(Payload.data(), Payload.size()));
  std::vector<uint8_t> Frame = W.take();
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return support::writeAll(Fd, Frame.data(), Frame.size());
}

bool shard::readFrame(int Fd, MsgType &Type, std::vector<uint8_t> &Payload,
                      bool &AtEof, std::string &Error) {
  AtEof = false;
  Error.clear();
  uint8_t Header[HeaderBytes];
  // Distinguish clean EOF (zero header bytes) from a torn header: read
  // the first byte separately.
  if (!support::readAll(Fd, Header, 1)) {
    AtEof = true;
    return false;
  }
  if (!support::readAll(Fd, Header + 1, HeaderBytes - 1)) {
    Error = "torn frame header";
    return false;
  }
  cert::Reader R(Header, HeaderBytes);
  if (R.u32() != ProtocolMagic) {
    Error = "bad frame magic";
    return false;
  }
  if (R.u32() != ProtocolVersion) {
    Error = "unsupported protocol version";
    return false;
  }
  const uint8_t RawType = R.u8();
  const uint32_t Len = R.u32();
  const uint32_t Crc = R.u32();
  if (RawType < static_cast<uint8_t>(MsgType::Task) ||
      RawType > static_cast<uint8_t>(MsgType::Result)) {
    Error = "unknown message type";
    return false;
  }
  if (Len > MaxFrameBytes) {
    Error = "frame length exceeds the protocol cap";
    return false;
  }
  Payload.assign(Len, 0);
  if (Len && !support::readAll(Fd, Payload.data(), Len)) {
    Error = "torn frame payload";
    return false;
  }
  if (store::crc32(Payload.data(), Payload.size()) != Crc) {
    Error = "frame CRC mismatch";
    return false;
  }
  Type = static_cast<MsgType>(RawType);
  return true;
}

std::vector<uint8_t> shard::encodeTask(const TaskMsg &T) {
  cert::Writer W;
  W.u32(T.Index);
  W.str(T.Name);
  W.str(T.Source);
  W.u8(T.Retry);
  return W.take();
}

bool shard::decodeTask(const std::vector<uint8_t> &Payload, TaskMsg &Out,
                       std::string &Error) {
  cert::Reader R(Payload);
  Out.Index = R.u32();
  Out.Name = R.str();
  Out.Source = R.str();
  Out.Retry = R.u8();
  if (!R.done()) {
    Error = "malformed task payload";
    return false;
  }
  return true;
}

std::vector<uint8_t> shard::encodeResult(const ResultMsg &M) {
  cert::Writer W;
  W.u32(M.Index);
  W.str(M.Name);
  W.str(M.ReportText);
  W.str(M.DiagText);
  W.u8(M.ParseFailed);
  W.u8(M.Degraded);
  W.u32(M.Checks);
  W.u32(M.Flagged);
  W.u32(M.WorkerPid);
  W.u64(M.Micros);
  W.u32(M.StoreHits);
  W.u32(M.StoreMisses);
  W.u32(M.StoreRejected);
  W.u32(M.StoreQuarantined);
  W.u32(M.StoreWrites);
  W.u32(static_cast<uint32_t>(M.Methods.size()));
  for (const MethodVerdict &V : M.Methods) {
    W.str(V.Method);
    W.u32(V.Checks);
    W.u32(V.Flagged);
  }
  return W.take();
}

bool shard::decodeResult(const std::vector<uint8_t> &Payload, ResultMsg &Out,
                         std::string &Error) {
  cert::Reader R(Payload);
  Out.Index = R.u32();
  Out.Name = R.str();
  Out.ReportText = R.str();
  Out.DiagText = R.str();
  Out.ParseFailed = R.u8();
  Out.Degraded = R.u8();
  Out.Checks = R.u32();
  Out.Flagged = R.u32();
  Out.WorkerPid = R.u32();
  Out.Micros = R.u64();
  Out.StoreHits = R.u32();
  Out.StoreMisses = R.u32();
  Out.StoreRejected = R.u32();
  Out.StoreQuarantined = R.u32();
  Out.StoreWrites = R.u32();
  const uint32_t NumMethods = R.u32();
  for (uint32_t I = 0; I != NumMethods && !R.failed(); ++I) {
    MethodVerdict V;
    V.Method = R.str();
    V.Checks = R.u32();
    V.Flagged = R.u32();
    Out.Methods.push_back(std::move(V));
  }
  if (!R.done()) {
    Error = "malformed result payload";
    return false;
  }
  return true;
}
