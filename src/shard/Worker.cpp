#include "shard/Worker.h"

#include "easl/Builtins.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace canvas;
using namespace canvas::shard;

bool shard::resolveSpec(const std::string &SpecArg, std::string &Out,
                        std::string &Error) {
  if (SpecArg == "cmp") {
    Out = easl::cmpSpecSource();
    return true;
  }
  if (SpecArg == "grp") {
    Out = easl::grpSpecSource();
    return true;
  }
  if (SpecArg == "imp") {
    Out = easl::impSpecSource();
    return true;
  }
  if (SpecArg == "aop") {
    Out = easl::aopSpecSource();
    return true;
  }
  std::ifstream In(SpecArg);
  if (!In) {
    Error = "cannot read spec '" + SpecArg + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

std::vector<std::string> shard::workerArgs(const WorkerOptions &O) {
  std::vector<std::string> Args;
  Args.push_back("--spec=" + O.SpecArg);
  Args.push_back("--engine=" + std::string(core::engineName(O.Engine)));
  if (O.PointsTo)
    Args.push_back("--points-to");
  if (!O.StorePath.empty()) {
    Args.push_back("--store=" + O.StorePath);
    Args.push_back(std::string("--store-mode=") +
                   (O.StoreMode == store::StoreMode::ReadOnly ? "ro" : "rw"));
  }
  if (O.Budget.DeadlineMicros > 0)
    Args.push_back("--budget-deadline-us=" +
                   std::to_string(static_cast<uint64_t>(O.Budget.DeadlineMicros)));
  if (O.Budget.MaxIterations)
    Args.push_back("--budget-iterations=" +
                   std::to_string(O.Budget.MaxIterations));
  if (O.Budget.MaxStructures)
    Args.push_back("--budget-structures=" +
                   std::to_string(O.Budget.MaxStructures));
  if (O.Budget.MaxAllocBytes)
    Args.push_back("--budget-alloc-bytes=" +
                   std::to_string(O.Budget.MaxAllocBytes));
  return Args;
}

bool shard::parseWorkerFlag(const std::string &Arg, WorkerOptions &O) {
  auto Value = [&Arg](const char *Prefix, std::string &Out) {
    const size_t N = std::strlen(Prefix);
    if (Arg.compare(0, N, Prefix) != 0)
      return false;
    Out = Arg.substr(N);
    return true;
  };
  std::string V;
  if (Value("--spec=", V)) {
    O.SpecArg = V;
    return true;
  }
  if (Value("--engine=", V)) {
    for (core::EngineKind K :
         {core::EngineKind::SCMPIntra, core::EngineKind::SCMPInterproc,
          core::EngineKind::TVLAIndependent, core::EngineKind::TVLARelational,
          core::EngineKind::GenericAllocSite})
      if (V == core::engineName(K)) {
        O.Engine = K;
        return true;
      }
    return false;
  }
  if (Arg == "--points-to") {
    O.PointsTo = true;
    return true;
  }
  if (Value("--store=", V)) {
    O.StorePath = V;
    return true;
  }
  if (Value("--store-mode=", V)) {
    if (V != "rw" && V != "ro")
      return false;
    O.StoreMode =
        V == "ro" ? store::StoreMode::ReadOnly : store::StoreMode::ReadWrite;
    return true;
  }
  if (Value("--budget-deadline-us=", V)) {
    O.Budget.DeadlineMicros = std::strtod(V.c_str(), nullptr);
    return true;
  }
  if (Value("--budget-iterations=", V)) {
    O.Budget.MaxIterations = std::strtoull(V.c_str(), nullptr, 10);
    return true;
  }
  if (Value("--budget-structures=", V)) {
    O.Budget.MaxStructures = std::strtoull(V.c_str(), nullptr, 10);
    return true;
  }
  if (Value("--budget-alloc-bytes=", V)) {
    O.Budget.MaxAllocBytes = std::strtoull(V.c_str(), nullptr, 10);
    return true;
  }
  return false;
}

void shard::certifyClient(const core::Certifier &C, uint32_t Index,
                          const std::string &Name, const std::string &Source,
                          ResultMsg &Out) {
  Out = ResultMsg();
  Out.Index = Index;
  Out.Name = Name;
  Out.WorkerPid = static_cast<uint32_t>(::getpid());
  const auto T0 = std::chrono::steady_clock::now();
  DiagnosticEngine Diags;
  try {
    core::CertificationReport Rep = C.certifySource(Source, Diags);
    Out.DiagText = Diags.str();
    if (Diags.hasErrors()) {
      Out.ParseFailed = 1;
    } else {
      Out.ReportText = Rep.str();
      Out.Checks = static_cast<uint32_t>(Rep.numChecks());
      Out.Flagged = Rep.numFlagged();
      Out.Degraded = Rep.Degraded ? 1 : 0;
      if (Rep.Store.Enabled) {
        Out.StoreHits = Rep.Store.Hits;
        Out.StoreMisses = Rep.Store.Misses;
        Out.StoreRejected = Rep.Store.Rejected;
        Out.StoreQuarantined = Rep.Store.Quarantined;
        Out.StoreWrites = Rep.Store.Writes;
        for (const store::StoreIncident &I : Rep.Store.Incidents)
          std::fprintf(stderr, "shard[%u] store: %s: %s: %s\n", Out.WorkerPid,
                       I.Kind.c_str(),
                       I.Unit.empty() ? "<store>" : I.Unit.c_str(),
                       I.Detail.c_str());
      }
      // Per-method rows in first-seen check order (deterministic: the
      // report's check order is the merge-by-method-index order).
      for (const core::CheckVerdict &V : Rep.Checks) {
        MethodVerdict *Row = nullptr;
        for (MethodVerdict &M : Out.Methods)
          if (M.Method == V.Method)
            Row = &M;
        if (!Row) {
          Out.Methods.push_back({});
          Row = &Out.Methods.back();
          Row->Method = V.Method;
        }
        ++Row->Checks;
        Row->Flagged += V.Outcome == core::CheckOutcome::Potential ||
                        V.Outcome == core::CheckOutcome::Definite;
      }
    }
  } catch (const CertifyError &E) {
    // With degradation on this is unreachable (the ladder floors at
    // lint-only); belt-and-braces so a client can never vanish.
    Out.ParseFailed = 1;
    Out.DiagText += "error: certification failed: " + E.message() + "\n";
  }
  Out.Micros = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

namespace {

/// True when CANVAS_SHARD_CRASH_AT demands a crash for this task.
bool crashRequested(const TaskMsg &T) {
  const char *Env = std::getenv("CANVAS_SHARD_CRASH_AT");
  if (!Env || !*Env)
    return false;
  std::string Spec(Env);
  bool Always = false;
  const std::string Suffix = ":always";
  if (Spec.size() > Suffix.size() &&
      Spec.compare(Spec.size() - Suffix.size(), Suffix.size(), Suffix) == 0) {
    Always = true;
    Spec.resize(Spec.size() - Suffix.size());
  }
  return Spec == T.Name && (Always || T.Retry == 0);
}

} // namespace

int shard::workerMain(const WorkerOptions &O) {
  std::string SpecSource, Error;
  if (!resolveSpec(O.SpecArg, SpecSource, Error)) {
    std::fprintf(stderr, "shard worker: %s\n", Error.c_str());
    return 2;
  }
  core::CertifierOptions Opts;
  Opts.PointsTo = O.PointsTo;
  Opts.StorePath = O.StorePath;
  Opts.StoreMode = O.StoreMode;
  Opts.Budget = O.Budget;
  // Processes are the unit of parallelism here; a thread fan-out inside
  // each worker would oversubscribe the host once N shards run.
  Opts.Workers = 1;
  DiagnosticEngine Diags;
  core::Certifier C(SpecSource, O.Engine, Diags, {}, Opts);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "shard worker: bad spec:\n%s", Diags.str().c_str());
    return 2;
  }

  for (;;) {
    MsgType Type;
    std::vector<uint8_t> Payload;
    bool AtEof = false;
    if (!readFrame(STDIN_FILENO, Type, Payload, AtEof, Error)) {
      if (AtEof)
        return 0; // The driver closed our stdin: orderly drain.
      std::fprintf(stderr, "shard worker: %s\n", Error.c_str());
      return 3;
    }
    if (Type == MsgType::Shutdown)
      return 0;
    if (Type != MsgType::Task) {
      std::fprintf(stderr, "shard worker: unexpected message type\n");
      return 3;
    }
    TaskMsg T;
    if (!decodeTask(Payload, T, Error)) {
      std::fprintf(stderr, "shard worker: %s\n", Error.c_str());
      return 3;
    }
    if (crashRequested(T))
      ::_exit(42); // The injected mid-shard crash: no result, no unwind.
    ResultMsg R;
    certifyClient(C, T.Index, T.Name, T.Source, R);
    if (!writeFrame(STDOUT_FILENO, MsgType::Result, encodeResult(R)))
      return 3; // The driver died; nothing useful left to do.
  }
}
