//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded certification driver: partitions a corpus across N
/// worker processes, streams per-method verdict JSONL rows as results
/// land, and merges the streamed records back into a report that is
/// byte-identical to the serial run at ANY shard count.
///
/// Scheduling is dynamic largest-first (work stealing by pull): tasks
/// sit in one queue ordered by descending cost estimate, every idle
/// worker pulls the next task the moment it finishes its previous one,
/// so the expensive stragglers start first and no worker idles while
/// work remains — the tail is bounded by the single largest client, not
/// by a static partition's worst bin.
///
/// Determinism argument: a worker's Result carries the exact report
/// text a serial run would print for that client (the worker and the
/// serial path share shard::certifyClient). The merger buffers results
/// keyed by corpus index and concatenates them in corpus order, so the
/// merged report is a pure function of (corpus, options) — scheduling
/// order, shard count, and arrival order cancel out. The streaming
/// JSONL rows deliberately keep completion order (that is their point);
/// only the merged report is order-canonical.
///
/// Crash discipline: a worker that dies mid-task (EOF or torn frame on
/// its pipe) has its in-flight task requeued ONCE at the front of the
/// queue with Retry = 1 and a replacement worker spawned; a second
/// death marks the client Degraded in the merged report — never
/// silently dropped. Respawns are capped so a crash-looping
/// configuration terminates.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SHARD_DRIVER_H
#define CANVAS_SHARD_DRIVER_H

#include "shard/Corpus.h"
#include "shard/Protocol.h"
#include "shard/Worker.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace canvas {
namespace shard {

struct DriverOptions {
  unsigned Shards = 1;
  /// The worker executable (usually selfExecutablePath()); the driver
  /// spawns: WorkerExe --worker <workerArgs(Worker)...>.
  std::string WorkerExe;
  WorkerOptions Worker;
  /// Extra environment for workers ("KEY=VALUE"; tests inject
  /// CANVAS_SHARD_CRASH_AT / CANVAS_FAULT here).
  std::vector<std::string> WorkerEnv;
  /// Emit SHARD_JSONL rows to the stream sink as results arrive.
  bool Stream = true;
};

/// Aggregated run accounting (the BENCH_JSON shard lines' source).
struct ShardRunStats {
  unsigned Shards = 0;
  unsigned Clients = 0;
  unsigned Flagged = 0;       ///< Clients with any flagged check.
  unsigned ParseFailed = 0;   ///< Clients whose source did not build.
  unsigned DegradedClients = 0;
  unsigned Requeues = 0;        ///< Crash-requeued tasks (first deaths).
  unsigned CrashedClients = 0;  ///< Clients degraded by a second death.
  unsigned WorkerRespawns = 0;
  uint64_t StoreHits = 0;
  uint64_t StoreMisses = 0;
  uint64_t StoreRejected = 0;
  uint64_t StoreQuarantined = 0;
  uint64_t StoreWrites = 0;
  /// Store hits per worker pid: the cross-shard reuse evidence (warm
  /// runs must show hits from >= 2 distinct pids at >= 2 shards).
  std::map<uint32_t, uint64_t> HitsByPid;
  /// Sum of worker-side per-client wall clocks (not the driver's).
  uint64_t WorkerMicros = 0;
};

/// Runs \p Corpus across Opts.Shards workers. The merged report goes to
/// \p MergedOut; SHARD_JSONL rows go to \p StreamOut as they land.
/// False with \p Error on an unrecoverable driver failure (cannot
/// spawn, respawn budget exhausted, protocol violation).
bool runSharded(const std::vector<CorpusClient> &Corpus,
                const DriverOptions &Opts, std::ostream &MergedOut,
                std::ostream &StreamOut, ShardRunStats &Stats,
                std::string &Error);

/// The in-process serial reference: certifies the corpus in index order
/// with one certifier, emitting the identical merged report and JSONL
/// vocabulary. runSharded at any shard count must be byte-identical to
/// this (the determinism suite enforces it).
bool runSerial(const std::vector<CorpusClient> &Corpus,
               const DriverOptions &Opts, std::ostream &MergedOut,
               std::ostream &StreamOut, ShardRunStats &Stats,
               std::string &Error);

/// The SHARD_JSONL rows of one result: one row per method verdict
/// record plus a client summary row (exposed for tests).
std::string jsonlRows(const ResultMsg &R);

/// The merged-report section of one client (exposed for tests).
std::string mergedSection(const std::string &Name, const ResultMsg &R);

/// The deterministic section text of a client whose worker crashed
/// twice.
std::string crashedSection(const std::string &Name);

} // namespace shard
} // namespace canvas

#endif // CANVAS_SHARD_DRIVER_H
