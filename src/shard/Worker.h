//===----------------------------------------------------------------------===//
///
/// \file
/// The shard worker: one process certifying corpus clients streamed to
/// it over the Protocol.h pipe framing. The worker builds its certifier
/// ONCE from the argv configuration, then loops read-Task /
/// certify / write-Result until Shutdown or EOF — so spec parsing and
/// abstraction derivation are paid per process, not per client, and the
/// per-client result is exactly what a serial canvas_certify run would
/// print (the merger's byte-identity contract).
///
/// certifyClient() is the single definition of "one client's result":
/// the worker loop, the driver's in-process serial mode, and the tests
/// all call it, so the sharded and serial paths cannot drift apart.
///
/// Crash hook for the requeue tests: when the environment variable
/// CANVAS_SHARD_CRASH_AT names the task's client, the worker _exit(42)s
/// before certifying — only on the first attempt (Retry == 0) unless
/// the value carries an ":always" suffix, which kills every attempt so
/// the requeue path's Degraded outcome is reachable deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SHARD_WORKER_H
#define CANVAS_SHARD_WORKER_H

#include "core/Certifier.h"
#include "shard/Protocol.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace canvas {
namespace shard {

/// The worker-side configuration, carried on the worker's argv so a
/// worker is fully described by its command line (no config frames, no
/// shared memory).
struct WorkerOptions {
  /// Spec argument exactly as the driver received it: a builtin name
  /// (cmp/grp/imp/aop) or a file path, resolved by resolveSpec().
  std::string SpecArg = "cmp";
  core::EngineKind Engine = core::EngineKind::SCMPIntra;
  bool PointsTo = false;
  std::string StorePath;
  store::StoreMode StoreMode = store::StoreMode::ReadWrite;
  /// The per-shard admission controller: each engine rung of each
  /// client runs under this budget, degrading down the ladder on
  /// exhaustion exactly as in-process certification does.
  support::StageBudget Budget;
};

/// Resolves a --spec argument (builtin name or file path) to spec
/// source text. False with \p Error when the file cannot be read.
bool resolveSpec(const std::string &SpecArg, std::string &Out,
                 std::string &Error);

/// Renders \p O as worker argv flags (the inverse of
/// parseWorkerFlag()); the driver appends these after "--worker".
std::vector<std::string> workerArgs(const WorkerOptions &O);

/// Parses one worker flag into \p O. Returns false when \p Arg is not
/// recognized (the caller decides whether that is fatal).
bool parseWorkerFlag(const std::string &Arg, WorkerOptions &O);

/// Certifies one client with \p C and fills \p Out completely (report
/// text, verdict counts, per-method records, store accounting, wall
/// clock, worker pid). Never throws: a failed parse or a certifier
/// error becomes a ParseFailed result whose DiagText explains it — a
/// client is never silently dropped.
void certifyClient(const core::Certifier &C, uint32_t Index,
                   const std::string &Name, const std::string &Source,
                   ResultMsg &Out);

/// The worker protocol loop on stdin/stdout. Returns the process exit
/// code: 0 on orderly Shutdown/EOF, 2 when the configuration is
/// invalid (bad spec), 3 on a protocol violation from the driver.
int workerMain(const WorkerOptions &O);

} // namespace shard
} // namespace canvas

#endif // CANVAS_SHARD_WORKER_H
