//===----------------------------------------------------------------------===//
///
/// \file
/// Corpus handling for the sharded driver: loading a directory of CJ
/// clients, estimating per-client certification cost for the
/// work-stealing scheduler's bins, and generating synthetic corpora
/// (deterministic in the seed) for the scaling bench and the
/// determinism tests.
///
/// The cost estimate refines the issue's "method count x max boolvars"
/// bin: per method it is |edges| x (1 + B)^2 where B approximates the
/// boolean-variable count from the abstraction's predicate families
/// instantiated over the method's component variables — the same
/// product that drives the intraprocedural fixpoint's state space. The
/// estimate orders work, nothing else; a bad estimate costs tail
/// latency, never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SHARD_CORPUS_H
#define CANVAS_SHARD_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace canvas {

namespace easl {
struct Spec;
}
namespace wp {
struct DerivedAbstraction;
}

namespace shard {

/// One corpus client. Index order (the load order: sorted by name) is
/// the canonical report order at every shard count.
struct CorpusClient {
  std::string Name;   ///< File name without the .cj suffix.
  std::string Path;   ///< Full path (diagnostics only).
  std::string Source; ///< CJ source text, shipped to workers verbatim.
  uint64_t Cost = 1;  ///< Scheduler cost estimate (see file comment).
};

/// Loads every *.cj file under \p Dir (non-recursive), sorted by file
/// name. False with \p Error on I/O failure or an empty corpus.
bool loadCorpus(const std::string &Dir, std::vector<CorpusClient> &Out,
                std::string &Error);

/// Cost-estimates one client against \p Spec / \p Abs. Unparseable
/// clients estimate to 1 (they fail fast in the worker and the merged
/// report carries their diagnostics).
uint64_t estimateCost(const std::string &Source, const easl::Spec &Spec,
                      const wp::DerivedAbstraction &Abs);

/// Fills Cost for every client.
void estimateCosts(std::vector<CorpusClient> &Corpus, const easl::Spec &Spec,
                   const wp::DerivedAbstraction &Abs);

/// Writes \p Count generated CJ clients (gen-0000.cj ...) into \p Dir,
/// creating it if needed. Deterministic in \p Seed: the same (Count,
/// Seed) always produces byte-identical files, so tests and benches can
/// regenerate rather than commit corpora. Clients target the built-in
/// CMP (Set/Iterator) spec and span a deliberate size spread — single
/// tiny methods up to multi-method, multi-set, nested-loop clients —
/// with a fraction containing real conformance violations.
bool generateCorpus(const std::string &Dir, unsigned Count, uint64_t Seed,
                    std::string &Error);

} // namespace shard
} // namespace canvas

#endif // CANVAS_SHARD_CORPUS_H
