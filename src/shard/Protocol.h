//===----------------------------------------------------------------------===//
///
/// \file
/// The driver <-> worker wire protocol of the sharded certification
/// system: length-prefixed, CRC-framed messages over the worker's
/// stdin/stdout pipes, reusing the store's framing vocabulary
/// (cert::Writer / cert::Reader bounds-checked codecs + store::crc32).
///
/// Frame layout (all integers little-endian, as in the store codecs):
///
///   u32 magic   0x50564E43 ("CNVP")
///   u32 version ProtocolVersion
///   u8  type    MsgType
///   u32 length  payload byte count
///   u32 crc     CRC-32 (IEEE) of the payload bytes
///   ...         payload (type-specific, cert::Writer-encoded)
///
/// The CRC is not decorative: a worker that dies mid-write leaves a
/// torn frame on the pipe, and the driver must distinguish "worker
/// crashed, requeue its shard" from "worker answered garbage, abort".
/// Both readFrame failure modes surface as false + Error; EOF with zero
/// bytes read is reported separately so an orderly shutdown is not an
/// error.
///
/// Messages:
///   Task     driver -> worker   one corpus client to certify
///   Shutdown driver -> worker   drain and exit 0
///   Result   worker -> driver   full verdict record for one client
///
/// A Result carries the worker's rendered report text verbatim: the
/// merger's byte-identity guarantee reduces to "concatenate the same
/// texts in corpus order", independent of which worker produced which
/// client and in which order they arrived.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SHARD_PROTOCOL_H
#define CANVAS_SHARD_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace canvas {
namespace shard {

constexpr uint32_t ProtocolMagic = 0x50564E43; // "CNVP" little-endian.
constexpr uint32_t ProtocolVersion = 1;

enum class MsgType : uint8_t {
  Task = 1,
  Shutdown = 2,
  Result = 3,
};

/// One unit of shard work: a corpus client, shipped by value (name +
/// source text) so workers need no shared filesystem view of the
/// corpus.
struct TaskMsg {
  uint32_t Index = 0;  ///< Corpus position; the merge key.
  std::string Name;    ///< Corpus-relative client name.
  std::string Source;  ///< CJ source text.
  uint8_t Retry = 0;   ///< 1 when requeued after a worker crash.
};

/// One streamed per-method verdict record (the JSONL row's payload).
struct MethodVerdict {
  std::string Method;
  uint32_t Checks = 0;
  uint32_t Flagged = 0;
};

/// The complete certification result of one client.
struct ResultMsg {
  uint32_t Index = 0;
  std::string Name;
  /// The report exactly as a serial canvas_certify run would print it
  /// (CertificationReport::str()); the merger concatenates these.
  std::string ReportText;
  /// Parse/build diagnostics (worker stderr is reserved for incidents).
  std::string DiagText;
  uint8_t ParseFailed = 0; ///< Client did not parse/build: no verdicts.
  uint8_t Degraded = 0;    ///< Any check carries a degradation note.
  uint32_t Checks = 0;
  uint32_t Flagged = 0;
  uint32_t WorkerPid = 0;
  uint64_t Micros = 0; ///< Worker-side wall clock for this client.
  // Store accounting for the cross-shard reuse report.
  uint32_t StoreHits = 0;
  uint32_t StoreMisses = 0;
  uint32_t StoreRejected = 0;
  uint32_t StoreQuarantined = 0;
  uint32_t StoreWrites = 0;
  std::vector<MethodVerdict> Methods;
};

/// Serializes one frame (header + payload) onto \p Fd. False on a pipe
/// error (dead peer).
bool writeFrame(int Fd, MsgType Type, const std::vector<uint8_t> &Payload);

/// Reads one complete frame. Returns false with \p AtEof = true on a
/// clean EOF before any header byte (orderly close), and false with
/// \p Error set on torn frames, CRC mismatches, or malformed headers.
bool readFrame(int Fd, MsgType &Type, std::vector<uint8_t> &Payload,
               bool &AtEof, std::string &Error);

std::vector<uint8_t> encodeTask(const TaskMsg &T);
bool decodeTask(const std::vector<uint8_t> &Payload, TaskMsg &Out,
                std::string &Error);

std::vector<uint8_t> encodeResult(const ResultMsg &R);
bool decodeResult(const std::vector<uint8_t> &Payload, ResultMsg &Out,
                  std::string &Error);

} // namespace shard
} // namespace canvas

#endif // CANVAS_SHARD_PROTOCOL_H
