//===----------------------------------------------------------------------===//
///
/// \file
/// The one-edge transfer function of the TVLA engines (Section 5.5):
/// application of a CFG action to a 3-valued structure, including
/// requires-clause evaluation, derived-rule instrumentation updates,
/// result modeling, and canonical abstraction (blur). Shared by both
/// fixpoint configurations (relational and independent-attribute) and
/// by the proof-carrying-certificate checker (cert::Checker), which
/// re-applies edges against a claimed fixpoint annotation without
/// running any worklist — so this class must be the single definition
/// of edge semantics, independent of any driver, memo cache, or
/// structure cap.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVLA_TRANSFER_H
#define CANVAS_TVLA_TRANSFER_H

#include "client/CFG.h"
#include "tvla/Structure.h"
#include "tvp/Program.h"
#include "wp/Abstraction.h"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace canvas {
namespace tvla {

/// One requires obligation discovered on a CFG edge: the \p Req -th
/// RequiresFalse clause of the component method called on edge \p Edge.
struct TransferCheck {
  int Edge = -1;
  int Req = -1;
  SourceLoc Loc;
  std::string What;
};

/// Kleene accumulation cells, indexed like Transfer::checks(). The
/// fixpoint joins every evaluation of a check over all structures that
/// reach it; the final cell decides the verdict (False = Safe, True =
/// Definite, Half = Potential, unseen = Unreachable).
struct CheckAccum {
  struct Cell {
    bool Seen = false;
    Kleene Acc = Kleene::False;
  };
  std::vector<Cell> Cells;

  void note(size_t Check, Kleene V) {
    Cell &C = Cells[Check];
    C.Acc = C.Seen ? kJoin(C.Acc, V) : V;
    C.Seen = true;
  }
};

class Transfer {
public:
  /// Builds the vocabulary for \p M (types, variables, instrumentation
  /// families) and enumerates the requires obligations of its edges.
  Transfer(const wp::DerivedAbstraction &Abs, const cj::CFGMethod &M,
           DiagnosticEngine &Diags);

  const tvp::Vocabulary &vocabulary() const { return Vocab; }

  /// The requires obligations of the method, in (edge, clause) order.
  const std::vector<TransferCheck> &checks() const { return Checks; }

  CheckAccum makeAccum() const {
    CheckAccum A;
    A.Cells.resize(Checks.size());
    return A;
  }

  /// Applies CFG edge \p EdgeIdx to \p In; returns the successor
  /// structure (always exactly one — variable predicates stay definite,
  /// so no focus is required). Requires evaluations are joined into
  /// \p Acc when non-null. Sets \p Dead when no execution continues
  /// past the edge (every path violates a requires clause and throws);
  /// the returned structure is meaningless then.
  Structure apply(const Structure &In, int EdgeIdx, bool &Dead,
                  CheckAccum *Acc) const;

  /// Optional bump arena for apply()'s temporaries *and* its returned
  /// structure. The owner must copy out any result it keeps (interning
  /// and copy-assignment into heap structures both detach) and reset
  /// the arena between fixpoint visits; see support/Arena.h.
  void setScratchArena(support::Arena *A) { Scratch = A; }

private:
  /// Maximum predicate-application arity the compiled evaluator
  /// supports (vocabulary building already treats wider families
  /// conservatively) and maximum binder count per call edge.
  static constexpr size_t kMaxArity = 4;
  static constexpr size_t kMaxBinders = 16;

  /// One argument of a compiled predicate application: either a
  /// quantified target-tuple slot or a binder whose candidates are
  /// weighted by a points-to predicate. All names are resolved to
  /// integers when the edge plan is built, so evaluation never touches
  /// a string or a string-keyed map.
  struct CompiledArg {
    int QSlot = -1;    ///< >= 0: index into the target tuple.
    int BinderId = -1; ///< >= 0: binder choice, weighted by PtPred.
    int PtPred = -1;
  };

  /// A compiled predicate application. !Valid marks the conservative
  /// cases the string evaluator answered with 1/2 (unsupported arity,
  /// unknown binder, a source naming a ret-bound slot).
  struct CompiledApp {
    int Pred = -1;
    bool Valid = false;
    std::vector<CompiledArg> Args;
  };

  /// A non-identity update rule applicable on an edge, with the target
  /// family's per-slot type predicates resolved.
  struct CompiledRule {
    const wp::UpdateRule *Rule = nullptr;
    int Pred = -1;
    unsigned Arity = 0;
    std::vector<int> SlotTypePred; ///< -1 when the slot type is untracked.
    std::vector<CompiledApp> Sources;
  };

  /// Everything Transfer::apply needs for one CFG edge, resolved to
  /// integers at construction time (the transfer function is applied
  /// thousands of times per fixpoint; the plan is built once).
  struct EdgePlan {
    const wp::MethodAbstraction *MA = nullptr; ///< Component-call edges.
    unsigned NumBinders = 0;
    std::vector<int> BinderPt;            ///< Binder id -> pt var pred.
    std::vector<CompiledApp> Requires;    ///< Aligned with RequiresFalse.
    std::vector<int> CheckIdx;            ///< Aligned with RequiresFalse.
    std::vector<CompiledRule> Rules;
    bool NewNode = false;
    bool HavocLhsAfter = false;
    int LhsVarPred = -1;
    int RetTypePred = -1;
    /// Copy edges: lhs/rhs variable predicates.
    int CopyL = -1, CopyR = -1;
    /// Havoc'd variable (Havoc edges, opaque lhs, non-fresh results).
    int HavocVarPred = -1, HavocTypePred = -1;
  };

  const wp::MethodAbstraction *abstractionFor(const cj::Action &A) const;
  void enumerateChecks();
  void buildPlans();
  CompiledApp compileApp(const wp::PredApp &App,
                         const std::vector<std::string> &BinderNames,
                         const std::vector<int> &BinderPt,
                         const wp::UpdateRule *Rule) const;

  Kleene evalApp(const Structure &S, const CompiledApp &App,
                 const unsigned *QTuple, int *Bound,
                 unsigned NumBinders) const;
  Kleene evalChoices(const Structure &S, const CompiledApp &App,
                     const unsigned *QTuple, int *Bound, size_t I,
                     unsigned *Tuple, Kleene Weight) const;

  bool nodeHasType(const Structure &S, unsigned Node, int TypePred) const {
    return TypePred >= 0 && S.unary(TypePred, Node) == Kleene::True;
  }
  void havocVar(Structure &S, int VarPred, int TypePred) const;
  void setInstrHalfAround(Structure &S, unsigned U) const;
  void clobberInstr(Structure &S) const;

  Structure transferComponentCall(Structure S, const EdgePlan &Plan,
                                  const cj::Action &A, bool &Dead,
                                  CheckAccum *Acc) const;
  void assumeAppFalse(Structure &S, const CompiledApp &App) const;
  void enumerateTargets(Structure &S, const Structure &Snapshot,
                        const CompiledRule &CR, const EdgePlan &Plan,
                        unsigned N, unsigned Slot, unsigned *Tuple,
                        int *Bound) const;
  void applyConstantDiagonals(Structure &S, unsigned N) const;

  const wp::DerivedAbstraction &Abs;
  const cj::CFGMethod &M;
  DiagnosticEngine &Diags;
  tvp::Vocabulary Vocab;
  std::vector<int> FamPred; ///< Family index -> instrumentation pred.
  /// Family index -> resolved type predicate per slot (-1 untracked).
  std::vector<std::array<int, 2>> FamTypePred;
  /// Arity-2 families with equal slot types whose (ret, ret) diagonal
  /// folds to a constant: (pred, value), precomputed once.
  std::vector<std::pair<int, Kleene>> Diagonals;
  std::vector<TransferCheck> Checks;
  std::vector<EdgePlan> Plans; ///< One per CFG edge.
  support::Arena *Scratch = nullptr; ///< See setScratchArena().
};

} // namespace tvla
} // namespace canvas

#endif // CANVAS_TVLA_TRANSFER_H
