//===----------------------------------------------------------------------===//
///
/// \file
/// The one-edge transfer function of the TVLA engines (Section 5.5):
/// application of a CFG action to a 3-valued structure, including
/// requires-clause evaluation, derived-rule instrumentation updates,
/// result modeling, and canonical abstraction (blur). Shared by both
/// fixpoint configurations (relational and independent-attribute) and
/// by the proof-carrying-certificate checker (cert::Checker), which
/// re-applies edges against a claimed fixpoint annotation without
/// running any worklist — so this class must be the single definition
/// of edge semantics, independent of any driver, memo cache, or
/// structure cap.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVLA_TRANSFER_H
#define CANVAS_TVLA_TRANSFER_H

#include "client/CFG.h"
#include "tvla/Structure.h"
#include "tvp/Program.h"
#include "wp/Abstraction.h"

#include <map>
#include <string>
#include <vector>

namespace canvas {
namespace tvla {

/// One requires obligation discovered on a CFG edge: the \p Req -th
/// RequiresFalse clause of the component method called on edge \p Edge.
struct TransferCheck {
  int Edge = -1;
  int Req = -1;
  SourceLoc Loc;
  std::string What;
};

/// Kleene accumulation cells, indexed like Transfer::checks(). The
/// fixpoint joins every evaluation of a check over all structures that
/// reach it; the final cell decides the verdict (False = Safe, True =
/// Definite, Half = Potential, unseen = Unreachable).
struct CheckAccum {
  struct Cell {
    bool Seen = false;
    Kleene Acc = Kleene::False;
  };
  std::vector<Cell> Cells;

  void note(size_t Check, Kleene V) {
    Cell &C = Cells[Check];
    C.Acc = C.Seen ? kJoin(C.Acc, V) : V;
    C.Seen = true;
  }
};

class Transfer {
public:
  /// Builds the vocabulary for \p M (types, variables, instrumentation
  /// families) and enumerates the requires obligations of its edges.
  Transfer(const wp::DerivedAbstraction &Abs, const cj::CFGMethod &M,
           DiagnosticEngine &Diags);

  const tvp::Vocabulary &vocabulary() const { return Vocab; }

  /// The requires obligations of the method, in (edge, clause) order.
  const std::vector<TransferCheck> &checks() const { return Checks; }

  CheckAccum makeAccum() const {
    CheckAccum A;
    A.Cells.resize(Checks.size());
    return A;
  }

  /// Applies CFG edge \p EdgeIdx to \p In; returns the successor
  /// structure (always exactly one — variable predicates stay definite,
  /// so no focus is required). Requires evaluations are joined into
  /// \p Acc when non-null. Sets \p Dead when no execution continues
  /// past the edge (every path violates a requires clause and throws);
  /// the returned structure is meaningless then.
  Structure apply(const Structure &In, int EdgeIdx, bool &Dead,
                  CheckAccum *Acc) const;

private:
  struct ArgChoice;
  using Binding = std::map<std::string, int>; ///< Binder -> pt pred.

  const wp::MethodAbstraction *abstractionFor(const cj::Action &A) const;
  void enumerateChecks();

  Kleene evalApp(const Structure &S, const Structure &Snapshot,
                 const wp::PredApp &App,
                 const std::map<std::string, unsigned> &QNodes,
                 const Binding &Binders) const;
  Kleene evalChoices(const Structure &S, const Structure &Snapshot, int P,
                     std::vector<ArgChoice> &Choices, size_t I,
                     std::vector<unsigned> Tuple,
                     std::map<std::string, unsigned> Bound,
                     Kleene Weight) const;

  std::string typeOfVar(const std::string &V) const;
  bool nodeHasType(const Structure &S, unsigned Node,
                   const std::string &Type) const;
  void havocVar(Structure &S, const std::string &Var) const;
  void setInstrHalfAround(Structure &S, unsigned U) const;
  void clobberInstr(Structure &S) const;

  Structure transferComponentCall(Structure S, int EdgeIdx,
                                  const cj::Action &A, bool &Dead,
                                  CheckAccum *Acc) const;
  void assumeAppFalse(Structure &S, const wp::PredApp &App,
                      const Binding &Binders) const;
  void applyRule(Structure &S, const Structure &Snapshot,
                 const wp::UpdateRule &R, const Binding &Binders,
                 bool NewNode, unsigned N) const;
  void enumerateTargets(Structure &S, const Structure &Snapshot,
                        const wp::UpdateRule &R,
                        const wp::PredicateFamily &Fam, int P,
                        const Binding &Binders, bool NewNode, unsigned N,
                        unsigned Slot, std::vector<unsigned> &Tuple) const;
  void applyConstantDiagonals(Structure &S, unsigned N) const;

  const wp::DerivedAbstraction &Abs;
  const cj::CFGMethod &M;
  DiagnosticEngine &Diags;
  tvp::Vocabulary Vocab;
  std::vector<int> FamPred; ///< Family index -> instrumentation pred.
  std::vector<TransferCheck> Checks;
  std::map<std::pair<int, int>, int> ChkIndex; ///< (edge, clause) -> check.
};

} // namespace tvla
} // namespace canvas

#endif // CANVAS_TVLA_TRANSFER_H
