#include "tvla/Transfer.h"

using namespace canvas;
using namespace canvas::tvla;
using namespace canvas::wp;

/// Candidate bindings for one argument of a predicate application: a
/// fixed individual (quantified slot) or a points-to weighted choice
/// (binder).
struct Transfer::ArgChoice {
  bool Fixed = false;
  unsigned Node = 0;
  int PtPred = -1; ///< Valid when !Fixed.
  std::string Binder;
};

Transfer::Transfer(const DerivedAbstraction &Abs, const cj::CFGMethod &M,
                   DiagnosticEngine &Diags)
    : Abs(Abs), M(M), Diags(Diags),
      Vocab(tvp::buildVocabulary(Abs, M, Diags)) {
  FamPred.assign(Abs.Families.size(), -1);
  for (size_t F = 0; F != Abs.Families.size(); ++F)
    FamPred[F] = Vocab.findInstrPred(static_cast<int>(F));
  enumerateChecks();
}

const MethodAbstraction *Transfer::abstractionFor(const cj::Action &A) const {
  if (A.K == cj::Action::Kind::AllocComp)
    return Abs.findMethod(A.Callee, "new");
  if (A.K != cj::Action::Kind::CompCall)
    return nullptr;
  for (const auto &[V, T] : M.CompVars)
    if (V == A.Recv)
      return Abs.findMethod(T, A.Callee);
  return nullptr;
}

void Transfer::enumerateChecks() {
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const MethodAbstraction *MA = abstractionFor(M.Edges[E].Act);
    if (!MA)
      continue;
    for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
      TransferCheck C;
      C.Edge = static_cast<int>(E);
      C.Req = static_cast<int>(R);
      C.Loc = M.Edges[E].Act.Loc;
      C.What = M.Edges[E].Act.str() + " requires !" +
               MA->RequiresFalse[R].first.str(Abs.Families);
      ChkIndex[{static_cast<int>(E), static_cast<int>(R)}] =
          static_cast<int>(Checks.size());
      Checks.push_back(std::move(C));
    }
  }
}

//===----------------------------------------------------------------------===//
// Predicate application evaluation
//===----------------------------------------------------------------------===//

/// Evaluates OR over binder assignments of
/// AND(points-to weights, instrumentation value), reading
/// instrumentation values from \p Snapshot.
Kleene Transfer::evalApp(const Structure &S, const Structure &Snapshot,
                         const PredApp &App,
                         const std::map<std::string, unsigned> &QNodes,
                         const Binding &Binders) const {
  int P = FamPred[App.Family];
  if (P < 0)
    return Kleene::Half; // Unsupported arity: conservative.
  std::vector<ArgChoice> Choices(App.Args.size());
  for (size_t I = 0; I != App.Args.size(); ++I) {
    const std::string &A = App.Args[I];
    auto QIt = QNodes.find(A);
    if (QIt != QNodes.end()) {
      Choices[I].Fixed = true;
      Choices[I].Node = QIt->second;
      continue;
    }
    auto BIt = Binders.find(A);
    if (BIt == Binders.end())
      return Kleene::Half; // Unknown binder: conservative.
    Choices[I].PtPred = BIt->second;
    Choices[I].Binder = A;
  }
  return evalChoices(S, Snapshot, P, Choices, 0, {}, {}, Kleene::True);
}

Kleene Transfer::evalChoices(const Structure &S, const Structure &Snapshot,
                             int P, std::vector<ArgChoice> &Choices, size_t I,
                             std::vector<unsigned> Tuple,
                             std::map<std::string, unsigned> Bound,
                             Kleene Weight) const {
  if (Weight == Kleene::False)
    return Kleene::False;
  if (I == Choices.size())
    return kAnd(Weight, Snapshot.at(P, Tuple));
  const ArgChoice &C = Choices[I];
  if (C.Fixed) {
    Tuple.push_back(C.Node);
    return evalChoices(S, Snapshot, P, Choices, I + 1, std::move(Tuple),
                       std::move(Bound), Weight);
  }
  auto BIt = Bound.find(C.Binder);
  if (BIt != Bound.end()) {
    Tuple.push_back(BIt->second);
    return evalChoices(S, Snapshot, P, Choices, I + 1, std::move(Tuple),
                       std::move(Bound), Weight);
  }
  Kleene Acc = Kleene::False;
  for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
    Kleene Pt = S.unary(C.PtPred, Node);
    if (Pt == Kleene::False)
      continue;
    std::vector<unsigned> T2 = Tuple;
    T2.push_back(Node);
    std::map<std::string, unsigned> B2 = Bound;
    B2[C.Binder] = Node;
    Acc = kOr(Acc, evalChoices(S, Snapshot, P, Choices, I + 1, std::move(T2),
                               std::move(B2), kAnd(Weight, Pt)));
    if (Acc == Kleene::True)
      return Acc;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Transfer
//===----------------------------------------------------------------------===//

std::string Transfer::typeOfVar(const std::string &V) const {
  for (const auto &[Name, T] : M.CompVars)
    if (Name == V)
      return T;
  return "";
}

bool Transfer::nodeHasType(const Structure &S, unsigned Node,
                           const std::string &Type) const {
  int P = Vocab.findTypePred(Type);
  return P >= 0 && S.unary(P, Node) == Kleene::True;
}

void Transfer::havocVar(Structure &S, const std::string &Var) const {
  std::string T = typeOfVar(Var);
  // A fresh, unconstrained, possibly-aliasing object of the right
  // type.
  unsigned U = S.addNode();
  S.setSummary(U, true);
  if (int TP = Vocab.findTypePred(T); TP >= 0)
    S.setUnary(TP, U, Kleene::True);
  setInstrHalfAround(S, U);
  int VP = Vocab.findVarPred(Var);
  for (unsigned Node = 0; Node != S.numNodes(); ++Node)
    S.setUnary(VP, Node,
               nodeHasType(S, Node, T) ? Kleene::Half : Kleene::False);
}

/// Sets every instrumentation tuple involving \p U (with matching slot
/// types) to 1/2.
void Transfer::setInstrHalfAround(Structure &S, unsigned U) const {
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    if (P < 0)
      continue;
    const PredicateFamily &Fam = Abs.Families[F];
    if (Fam.arity() == 1) {
      if (nodeHasType(S, U, Fam.VarTypes[0]))
        S.setUnary(P, U, Kleene::Half);
      continue;
    }
    for (unsigned O = 0; O != S.numNodes(); ++O) {
      if (nodeHasType(S, U, Fam.VarTypes[0]) &&
          nodeHasType(S, O, Fam.VarTypes[1]))
        S.setBinary(P, U, O, Kleene::Half);
      if (nodeHasType(S, O, Fam.VarTypes[0]) &&
          nodeHasType(S, U, Fam.VarTypes[1]))
        S.setBinary(P, O, U, Kleene::Half);
    }
  }
}

void Transfer::clobberInstr(Structure &S) const {
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    if (P < 0)
      continue;
    const PredicateFamily &Fam = Abs.Families[F];
    for (unsigned A = 0; A != S.numNodes(); ++A) {
      if (!nodeHasType(S, A, Fam.VarTypes[0]))
        continue;
      if (Fam.arity() == 1) {
        S.setUnary(P, A, Kleene::Half);
        continue;
      }
      for (unsigned B = 0; B != S.numNodes(); ++B)
        if (nodeHasType(S, B, Fam.VarTypes[1]))
          S.setBinary(P, A, B, Kleene::Half);
    }
  }
}

Structure Transfer::apply(const Structure &In, int EdgeIdx, bool &Dead,
                          CheckAccum *Acc) const {
  const cj::Action &A = M.Edges[EdgeIdx].Act;
  Structure S = In;
  switch (A.K) {
  case cj::Action::Kind::Nop:
    return S;
  case cj::Action::Kind::Copy: {
    int L = Vocab.findVarPred(A.Lhs);
    int R = Vocab.findVarPred(A.Args[0]);
    for (unsigned Node = 0; Node != S.numNodes(); ++Node)
      S.setUnary(L, Node, S.unary(R, Node));
    S.blur(Vocab);
    return S;
  }
  case cj::Action::Kind::Havoc:
    havocVar(S, A.Lhs);
    S.blur(Vocab);
    return S;
  case cj::Action::Kind::ClientCall:
  case cj::Action::Kind::OpaqueEffect:
    clobberInstr(S);
    if (!A.Lhs.empty())
      havocVar(S, A.Lhs);
    S.blur(Vocab);
    return S;
  case cj::Action::Kind::AllocComp:
  case cj::Action::Kind::CompCall:
    return transferComponentCall(std::move(S), EdgeIdx, A, Dead, Acc);
  }
  return S;
}

Structure Transfer::transferComponentCall(Structure S, int EdgeIdx,
                                          const cj::Action &A, bool &Dead,
                                          CheckAccum *Acc) const {
  const MethodAbstraction *MA = abstractionFor(A);
  if (!MA) {
    clobberInstr(S);
    S.blur(Vocab);
    return S;
  }

  // Binder environment: binder name -> pt predicate.
  Binding Binders;
  if (MA->HasThis)
    Binders["this"] = Vocab.findVarPred(A.Recv);
  for (size_t I = 0; I != MA->Params.size() && I != A.Args.size(); ++I)
    Binders[MA->Params[I].first] = Vocab.findVarPred(A.Args[I]);

  // 1. Requires obligations against the pre-state; a failed clause
  // throws, so continuing executions satisfied it (assume-refinement).
  for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
    const PredApp &App = MA->RequiresFalse[R].first;
    Kleene V = evalApp(S, S, App, {}, Binders);
    if (Acc)
      Acc->note(ChkIndex.at({EdgeIdx, static_cast<int>(R)}), V);
    if (V == Kleene::True) {
      Dead = true; // Every execution throws here.
      return S;
    }
    if (V == Kleene::Half)
      assumeAppFalse(S, App, Binders);
  }

  // 2. Result modeling.
  bool NewNode = A.K == cj::Action::Kind::AllocComp ||
                 (!A.Lhs.empty() && MA->ReturnsFresh);
  bool HavocLhsAfter = !A.Lhs.empty() && !NewNode;
  unsigned N = 0;
  if (NewNode) {
    N = S.addNode();
    if (int TP = Vocab.findTypePred(MA->ReturnType); TP >= 0)
      S.setUnary(TP, N, Kleene::True);
    int VP = Vocab.findVarPred(A.Lhs);
    for (unsigned Node = 0; Node != S.numNodes(); ++Node)
      S.setUnary(VP, Node, kleeneOf(Node == N));
  }

  // 3. Instrumentation updates from the derived rules (parallel:
  // sources read the snapshot).
  Structure Snapshot = S;
  for (const UpdateRule &R : MA->Rules) {
    if (R.IsIdentity)
      continue;
    int P = FamPred[R.Family];
    if (P < 0)
      continue;
    bool UsesRet = false;
    for (bool B : R.RetSlots)
      UsesRet |= B;
    if (UsesRet && !NewNode)
      continue;
    applyRule(S, Snapshot, R, Binders, NewNode, N);
  }
  // Tuples of the new node for masks the derivation folded away as
  // constants (e.g. same(ret, ret) == 1).
  if (NewNode)
    applyConstantDiagonals(S, N);

  if (HavocLhsAfter) {
    Diags.warning(A.Loc, "result of '" + A.str() +
                             "' is not provably fresh; treating "
                             "conservatively");
    havocVar(S, A.Lhs);
  }
  S.blur(Vocab);
  return S;
}

/// Assume-refinement: on executions continuing past the check, the
/// requires predicate was false. When every binder resolves to one
/// definite individual, the instrumentation value at that tuple is
/// forced to 0.
void Transfer::assumeAppFalse(Structure &S, const PredApp &App,
                              const Binding &Binders) const {
  int P = FamPred[App.Family];
  if (P < 0)
    return;
  std::vector<unsigned> Tuple;
  std::map<std::string, unsigned> Bound;
  for (const std::string &Arg : App.Args) {
    auto BIt = Binders.find(Arg);
    if (BIt == Binders.end())
      return;
    auto Prev = Bound.find(Arg);
    if (Prev != Bound.end()) {
      Tuple.push_back(Prev->second);
      continue;
    }
    int Definite = -1;
    for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
      Kleene Pt = S.unary(BIt->second, Node);
      if (Pt == Kleene::Half)
        return; // Indefinite pointer: cannot refine strongly.
      if (Pt == Kleene::True) {
        if (Definite >= 0)
          return;
        Definite = static_cast<int>(Node);
      }
    }
    if (Definite < 0 || S.isSummary(Definite))
      return;
    Bound[Arg] = static_cast<unsigned>(Definite);
    Tuple.push_back(static_cast<unsigned>(Definite));
  }
  S.setAt(P, Tuple, Kleene::False);
}

void Transfer::applyRule(Structure &S, const Structure &Snapshot,
                         const UpdateRule &R, const Binding &Binders,
                         bool NewNode, unsigned N) const {
  const PredicateFamily &Fam = Abs.Families[R.Family];
  int P = FamPred[R.Family];
  std::vector<unsigned> Tuple(Fam.arity());
  enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N, 0, Tuple);
}

void Transfer::enumerateTargets(Structure &S, const Structure &Snapshot,
                                const UpdateRule &R,
                                const PredicateFamily &Fam, int P,
                                const Binding &Binders, bool NewNode,
                                unsigned N, unsigned Slot,
                                std::vector<unsigned> &Tuple) const {
  if (Slot == Fam.arity()) {
    std::map<std::string, unsigned> QNodes;
    for (unsigned I = 0; I != Fam.arity(); ++I)
      if (!R.RetSlots[I])
        QNodes["$q" + std::to_string(I)] = Tuple[I];
    Kleene V = R.ConstantTrue ? Kleene::True : Kleene::False;
    for (const PredApp &Src : R.Sources) {
      if (V == Kleene::True)
        break;
      V = kOr(V, evalApp(Snapshot, Snapshot, Src, QNodes, Binders));
    }
    S.setAt(P, Tuple, V);
    return;
  }
  if (R.RetSlots[Slot]) {
    Tuple[Slot] = N;
    enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N, Slot + 1,
                     Tuple);
    return;
  }
  for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
    if (NewNode && Node == N)
      continue; // The fresh node's tuples come from ret rules.
    if (!nodeHasType(S, Node, Fam.VarTypes[Slot]))
      continue;
    Tuple[Slot] = Node;
    enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N, Slot + 1,
                     Tuple);
  }
}

void Transfer::applyConstantDiagonals(Structure &S, unsigned N) const {
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    if (P < 0 || Abs.Families[F].arity() != 2)
      continue;
    const PredicateFamily &Fam = Abs.Families[F];
    if (Fam.VarTypes[0] != Fam.VarTypes[1])
      continue;
    Conjunction Body;
    InstResult IR = instantiateFamily(Fam, {"$d", "$d"}, Fam.VarTypes, Body);
    if (IR == InstResult::True)
      S.setBinary(P, N, N, Kleene::True);
    else if (IR == InstResult::False)
      S.setBinary(P, N, N, Kleene::False);
    // Non-constant diagonals were handled by a (ret, ret) rule.
  }
}
