#include "tvla/Transfer.h"

#include <cstdlib>

using namespace canvas;
using namespace canvas::tvla;
using namespace canvas::wp;

Transfer::Transfer(const DerivedAbstraction &Abs, const cj::CFGMethod &M,
                   DiagnosticEngine &Diags)
    : Abs(Abs), M(M), Diags(Diags),
      Vocab(tvp::buildVocabulary(Abs, M, Diags)) {
  FamPred.assign(Abs.Families.size(), -1);
  FamTypePred.assign(Abs.Families.size(), {-1, -1});
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    FamPred[F] = Vocab.findInstrPred(static_cast<int>(F));
    const PredicateFamily &Fam = Abs.Families[F];
    FamTypePred[F][0] = Vocab.findTypePred(Fam.VarTypes[0]);
    if (Fam.arity() >= 2)
      FamTypePred[F][1] = Vocab.findTypePred(Fam.VarTypes[1]);
  }
  // Constant (ret, ret) diagonals, shared by every allocating edge.
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    const PredicateFamily &Fam = Abs.Families[F];
    if (P < 0 || Fam.arity() != 2 || Fam.VarTypes[0] != Fam.VarTypes[1])
      continue;
    Conjunction Body;
    InstResult IR = instantiateFamily(Fam, {"$d", "$d"}, Fam.VarTypes, Body);
    if (IR == InstResult::True)
      Diagonals.emplace_back(P, Kleene::True);
    else if (IR == InstResult::False)
      Diagonals.emplace_back(P, Kleene::False);
    // Non-constant diagonals are handled by a (ret, ret) rule.
  }
  enumerateChecks();
  buildPlans();
}

const MethodAbstraction *Transfer::abstractionFor(const cj::Action &A) const {
  if (A.K == cj::Action::Kind::AllocComp)
    return Abs.findMethod(A.Callee, "new");
  if (A.K != cj::Action::Kind::CompCall)
    return nullptr;
  for (const auto &[V, T] : M.CompVars)
    if (V == A.Recv)
      return Abs.findMethod(T, A.Callee);
  return nullptr;
}

void Transfer::enumerateChecks() {
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const MethodAbstraction *MA = abstractionFor(M.Edges[E].Act);
    if (!MA)
      continue;
    for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
      TransferCheck C;
      C.Edge = static_cast<int>(E);
      C.Req = static_cast<int>(R);
      C.Loc = M.Edges[E].Act.Loc;
      C.What = M.Edges[E].Act.str() + " requires !" +
               MA->RequiresFalse[R].first.str(Abs.Families);
      Checks.push_back(std::move(C));
    }
  }
}

//===----------------------------------------------------------------------===//
// Edge-plan compilation
//===----------------------------------------------------------------------===//

/// Resolves one predicate application's names to integers. Arguments
/// are either quantified target slots ("$qI"), binders of the called
/// method (weighted by their points-to predicate), or unresolvable —
/// in which case the application is marked !Valid and evaluates to 1/2,
/// exactly as the name-by-name evaluation answered for an unknown name.
Transfer::CompiledApp
Transfer::compileApp(const PredApp &App,
                     const std::vector<std::string> &BinderNames,
                     const std::vector<int> &BinderPt,
                     const UpdateRule *Rule) const {
  CompiledApp C;
  C.Pred = App.Family >= 0 && static_cast<size_t>(App.Family) < FamPred.size()
               ? FamPred[App.Family]
               : -1;
  if (C.Pred < 0 || App.Args.empty() || App.Args.size() > kMaxArity ||
      App.Args.size() > 2 || BinderNames.size() > kMaxBinders)
    return C; // Conservative: evaluates to 1/2.
  C.Args.resize(App.Args.size());
  for (size_t I = 0; I != App.Args.size(); ++I) {
    const std::string &A = App.Args[I];
    if (Rule && A.size() > 2 && A[0] == '$' && A[1] == 'q') {
      int Slot = std::atoi(A.c_str() + 2);
      // Ret-bound slots are not quantified; the string evaluator had
      // no binding for them and answered 1/2.
      if (Slot < 0 || static_cast<size_t>(Slot) >= Rule->RetSlots.size() ||
          Rule->RetSlots[Slot]) {
        C.Args.clear();
        return C;
      }
      C.Args[I].QSlot = Slot;
      continue;
    }
    bool Found = false;
    for (size_t B = 0; B != BinderNames.size(); ++B)
      if (BinderNames[B] == A) {
        C.Args[I].BinderId = static_cast<int>(B);
        C.Args[I].PtPred = BinderPt[B];
        Found = true;
        break;
      }
    if (!Found || C.Args[I].PtPred < 0) {
      C.Args.clear();
      return C; // Unknown binder / untracked pointer: conservative.
    }
  }
  C.Valid = true;
  return C;
}

void Transfer::buildPlans() {
  Plans.resize(M.Edges.size());
  // Check indices in (edge, clause) order, mirroring enumerateChecks.
  size_t NextCheck = 0;
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const cj::Action &A = M.Edges[E].Act;
    EdgePlan &P = Plans[E];
    switch (A.K) {
    case cj::Action::Kind::Nop:
      break;
    case cj::Action::Kind::Copy:
      P.CopyL = Vocab.findVarPred(A.Lhs);
      P.CopyR = Vocab.findVarPred(A.Args[0]);
      break;
    case cj::Action::Kind::Havoc:
    case cj::Action::Kind::ClientCall:
    case cj::Action::Kind::OpaqueEffect:
      if (!A.Lhs.empty()) {
        P.HavocVarPred = Vocab.findVarPred(A.Lhs);
        std::string T;
        for (const auto &[Name, Ty] : M.CompVars)
          if (Name == A.Lhs)
            T = Ty;
        P.HavocTypePred = T.empty() ? -1 : Vocab.findTypePred(T);
      }
      break;
    case cj::Action::Kind::AllocComp:
    case cj::Action::Kind::CompCall: {
      const MethodAbstraction *MA = abstractionFor(A);
      P.MA = MA;
      if (!MA)
        break;
      std::vector<std::string> BinderNames;
      if (MA->HasThis) {
        BinderNames.push_back("this");
        P.BinderPt.push_back(Vocab.findVarPred(A.Recv));
      }
      for (size_t I = 0; I != MA->Params.size() && I != A.Args.size(); ++I) {
        BinderNames.push_back(MA->Params[I].first);
        P.BinderPt.push_back(Vocab.findVarPred(A.Args[I]));
      }
      P.NumBinders = static_cast<unsigned>(BinderNames.size());
      for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
        P.Requires.push_back(
            compileApp(MA->RequiresFalse[R].first, BinderNames, P.BinderPt, nullptr));
        P.CheckIdx.push_back(static_cast<int>(NextCheck++));
      }
      P.NewNode = A.K == cj::Action::Kind::AllocComp ||
                  (!A.Lhs.empty() && MA->ReturnsFresh);
      P.HavocLhsAfter = !A.Lhs.empty() && !P.NewNode;
      if (!A.Lhs.empty()) {
        P.LhsVarPred = Vocab.findVarPred(A.Lhs);
        P.HavocVarPred = P.LhsVarPred;
        std::string T;
        for (const auto &[Name, Ty] : M.CompVars)
          if (Name == A.Lhs)
            T = Ty;
        P.HavocTypePred = T.empty() ? -1 : Vocab.findTypePred(T);
      }
      if (P.NewNode)
        P.RetTypePred = Vocab.findTypePred(MA->ReturnType);
      for (const UpdateRule &R : MA->Rules) {
        if (R.IsIdentity)
          continue;
        int Pred = FamPred[R.Family];
        if (Pred < 0)
          continue;
        bool UsesRet = false;
        for (bool B : R.RetSlots)
          UsesRet |= B;
        if (UsesRet && !P.NewNode)
          continue;
        CompiledRule CR;
        CR.Rule = &R;
        CR.Pred = Pred;
        const PredicateFamily &Fam = Abs.Families[R.Family];
        CR.Arity = Fam.arity();
        CR.SlotTypePred.resize(CR.Arity, -1);
        for (unsigned S = 0; S != CR.Arity && S != 2; ++S)
          CR.SlotTypePred[S] = FamTypePred[R.Family][S];
        for (const PredApp &Src : R.Sources)
          CR.Sources.push_back(compileApp(Src, BinderNames, P.BinderPt, &R));
        P.Rules.push_back(std::move(CR));
      }
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Predicate application evaluation
//===----------------------------------------------------------------------===//

/// Evaluates OR over binder assignments of
/// AND(points-to weights, instrumentation value).
Kleene Transfer::evalApp(const Structure &S, const CompiledApp &App,
                         const unsigned *QTuple, int *Bound,
                         unsigned NumBinders) const {
  if (!App.Valid)
    return Kleene::Half; // Unsupported shape: conservative.
  for (unsigned B = 0; B != NumBinders; ++B)
    Bound[B] = -1;
  unsigned Tuple[kMaxArity];
  return evalChoices(S, App, QTuple, Bound, 0, Tuple, Kleene::True);
}

Kleene Transfer::evalChoices(const Structure &S, const CompiledApp &App,
                             const unsigned *QTuple, int *Bound, size_t I,
                             unsigned *Tuple, Kleene Weight) const {
  if (Weight == Kleene::False)
    return Kleene::False;
  if (I == App.Args.size()) {
    Kleene V = App.Args.size() == 1 ? S.unary(App.Pred, Tuple[0])
                                    : S.binary(App.Pred, Tuple[0], Tuple[1]);
    return kAnd(Weight, V);
  }
  const CompiledArg &C = App.Args[I];
  if (C.QSlot >= 0) {
    Tuple[I] = QTuple[C.QSlot];
    return evalChoices(S, App, QTuple, Bound, I + 1, Tuple, Weight);
  }
  if (Bound[C.BinderId] >= 0) {
    Tuple[I] = static_cast<unsigned>(Bound[C.BinderId]);
    return evalChoices(S, App, QTuple, Bound, I + 1, Tuple, Weight);
  }
  Kleene Acc = Kleene::False;
  for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
    Kleene Pt = S.unary(C.PtPred, Node);
    if (Pt == Kleene::False)
      continue;
    Tuple[I] = Node;
    Bound[C.BinderId] = static_cast<int>(Node);
    Acc = kOr(Acc, evalChoices(S, App, QTuple, Bound, I + 1, Tuple,
                               kAnd(Weight, Pt)));
    Bound[C.BinderId] = -1;
    if (Acc == Kleene::True)
      return Acc;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Transfer
//===----------------------------------------------------------------------===//

void Transfer::havocVar(Structure &S, int VarPred, int TypePred) const {
  // A fresh, unconstrained, possibly-aliasing object of the right
  // type.
  unsigned U = S.addNode();
  S.setSummary(U, true);
  if (TypePred >= 0)
    S.setUnary(TypePred, U, Kleene::True);
  setInstrHalfAround(S, U);
  for (unsigned Node = 0; Node != S.numNodes(); ++Node)
    S.setUnary(VarPred, Node,
               nodeHasType(S, Node, TypePred) ? Kleene::Half : Kleene::False);
}

/// Sets every instrumentation tuple involving \p U (with matching slot
/// types) to 1/2.
void Transfer::setInstrHalfAround(Structure &S, unsigned U) const {
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    if (P < 0)
      continue;
    if (Abs.Families[F].arity() == 1) {
      if (nodeHasType(S, U, FamTypePred[F][0]))
        S.setUnary(P, U, Kleene::Half);
      continue;
    }
    for (unsigned O = 0; O != S.numNodes(); ++O) {
      if (nodeHasType(S, U, FamTypePred[F][0]) &&
          nodeHasType(S, O, FamTypePred[F][1]))
        S.setBinary(P, U, O, Kleene::Half);
      if (nodeHasType(S, O, FamTypePred[F][0]) &&
          nodeHasType(S, U, FamTypePred[F][1]))
        S.setBinary(P, O, U, Kleene::Half);
    }
  }
}

void Transfer::clobberInstr(Structure &S) const {
  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    int P = FamPred[F];
    if (P < 0)
      continue;
    for (unsigned A = 0; A != S.numNodes(); ++A) {
      if (!nodeHasType(S, A, FamTypePred[F][0]))
        continue;
      if (Abs.Families[F].arity() == 1) {
        S.setUnary(P, A, Kleene::Half);
        continue;
      }
      for (unsigned B = 0; B != S.numNodes(); ++B)
        if (nodeHasType(S, B, FamTypePred[F][1]))
          S.setBinary(P, A, B, Kleene::Half);
    }
  }
}

Structure Transfer::apply(const Structure &In, int EdgeIdx, bool &Dead,
                          CheckAccum *Acc) const {
  const cj::Action &A = M.Edges[EdgeIdx].Act;
  const EdgePlan &Plan = Plans[EdgeIdx];
  Structure S = Scratch ? Structure(In, *Scratch) : In;
  switch (A.K) {
  case cj::Action::Kind::Nop:
    return S;
  case cj::Action::Kind::Copy: {
    for (unsigned Node = 0; Node != S.numNodes(); ++Node)
      S.setUnary(Plan.CopyL, Node, S.unary(Plan.CopyR, Node));
    S.blur(Vocab);
    return S;
  }
  case cj::Action::Kind::Havoc:
    havocVar(S, Plan.HavocVarPred, Plan.HavocTypePred);
    S.blur(Vocab);
    return S;
  case cj::Action::Kind::ClientCall:
  case cj::Action::Kind::OpaqueEffect:
    clobberInstr(S);
    if (!A.Lhs.empty())
      havocVar(S, Plan.HavocVarPred, Plan.HavocTypePred);
    S.blur(Vocab);
    return S;
  case cj::Action::Kind::AllocComp:
  case cj::Action::Kind::CompCall:
    return transferComponentCall(std::move(S), Plan, A, Dead, Acc);
  }
  return S;
}

Structure Transfer::transferComponentCall(Structure S, const EdgePlan &Plan,
                                          const cj::Action &A, bool &Dead,
                                          CheckAccum *Acc) const {
  if (!Plan.MA) {
    clobberInstr(S);
    S.blur(Vocab);
    return S;
  }

  int Bound[kMaxBinders];

  // 1. Requires obligations against the pre-state; a failed clause
  // throws, so continuing executions satisfied it (assume-refinement).
  for (size_t R = 0; R != Plan.Requires.size(); ++R) {
    const CompiledApp &App = Plan.Requires[R];
    Kleene V = evalApp(S, App, nullptr, Bound, Plan.NumBinders);
    if (Acc)
      Acc->note(static_cast<size_t>(Plan.CheckIdx[R]), V);
    if (V == Kleene::True) {
      Dead = true; // Every execution throws here.
      return S;
    }
    if (V == Kleene::Half)
      assumeAppFalse(S, App);
  }

  // 2. Result modeling.
  unsigned N = 0;
  if (Plan.NewNode) {
    N = S.addNode();
    if (Plan.RetTypePred >= 0)
      S.setUnary(Plan.RetTypePred, N, Kleene::True);
    for (unsigned Node = 0; Node != S.numNodes(); ++Node)
      S.setUnary(Plan.LhsVarPred, Node, kleeneOf(Node == N));
  }

  // 3. Instrumentation updates from the derived rules (parallel:
  // sources read the snapshot).
  Structure Snapshot = Scratch ? Structure(S, *Scratch) : S;
  for (const CompiledRule &CR : Plan.Rules) {
    unsigned Tuple[kMaxArity];
    enumerateTargets(S, Snapshot, CR, Plan, N, 0, Tuple, Bound);
  }
  // Tuples of the new node for masks the derivation folded away as
  // constants (e.g. same(ret, ret) == 1).
  if (Plan.NewNode)
    applyConstantDiagonals(S, N);

  if (Plan.HavocLhsAfter) {
    Diags.warning(A.Loc, "result of '" + A.str() +
                             "' is not provably fresh; treating "
                             "conservatively");
    havocVar(S, Plan.HavocVarPred, Plan.HavocTypePred);
  }
  S.blur(Vocab);
  return S;
}

/// Assume-refinement: on executions continuing past the check, the
/// requires predicate was false. When every binder resolves to one
/// definite individual, the instrumentation value at that tuple is
/// forced to 0.
void Transfer::assumeAppFalse(Structure &S, const CompiledApp &App) const {
  if (!App.Valid)
    return;
  unsigned Tuple[kMaxArity];
  int Bound[kMaxBinders];
  for (unsigned B = 0; B != kMaxBinders; ++B)
    Bound[B] = -1;
  for (size_t I = 0; I != App.Args.size(); ++I) {
    const CompiledArg &C = App.Args[I];
    if (C.BinderId < 0)
      return; // Quantified slot in a requires clause: cannot refine.
    if (Bound[C.BinderId] >= 0) {
      Tuple[I] = static_cast<unsigned>(Bound[C.BinderId]);
      continue;
    }
    int Definite = -1;
    for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
      Kleene Pt = S.unary(C.PtPred, Node);
      if (Pt == Kleene::Half)
        return; // Indefinite pointer: cannot refine strongly.
      if (Pt == Kleene::True) {
        if (Definite >= 0)
          return;
        Definite = static_cast<int>(Node);
      }
    }
    if (Definite < 0 || S.isSummary(Definite))
      return;
    Bound[C.BinderId] = Definite;
    Tuple[I] = static_cast<unsigned>(Definite);
  }
  if (App.Args.size() == 1)
    S.setUnary(App.Pred, Tuple[0], Kleene::False);
  else
    S.setBinary(App.Pred, Tuple[0], Tuple[1], Kleene::False);
}

void Transfer::enumerateTargets(Structure &S, const Structure &Snapshot,
                                const CompiledRule &CR, const EdgePlan &Plan,
                                unsigned N, unsigned Slot, unsigned *Tuple,
                                int *Bound) const {
  if (Slot == CR.Arity) {
    const UpdateRule &R = *CR.Rule;
    Kleene V = R.ConstantTrue ? Kleene::True : Kleene::False;
    for (const CompiledApp &Src : CR.Sources) {
      if (V == Kleene::True)
        break;
      V = kOr(V, evalApp(Snapshot, Src, Tuple, Bound, Plan.NumBinders));
    }
    if (CR.Arity == 1)
      S.setUnary(CR.Pred, Tuple[0], V);
    else
      S.setBinary(CR.Pred, Tuple[0], Tuple[1], V);
    return;
  }
  if (CR.Rule->RetSlots[Slot]) {
    Tuple[Slot] = N;
    enumerateTargets(S, Snapshot, CR, Plan, N, Slot + 1, Tuple, Bound);
    return;
  }
  for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
    if (Plan.NewNode && Node == N)
      continue; // The fresh node's tuples come from ret rules.
    if (!nodeHasType(S, Node, CR.SlotTypePred[Slot]))
      continue;
    Tuple[Slot] = Node;
    enumerateTargets(S, Snapshot, CR, Plan, N, Slot + 1, Tuple, Bound);
  }
}

void Transfer::applyConstantDiagonals(Structure &S, unsigned N) const {
  for (const auto &[P, V] : Diagonals)
    S.setBinary(P, N, N, V);
}
