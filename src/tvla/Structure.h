//===----------------------------------------------------------------------===//
///
/// \file
/// 3-valued logical structures (Section 5.5): a universe of individuals
/// with Kleene-valued unary and binary predicates, a summary bit per
/// individual, canonical abstraction ("blur") driven by the unary
/// abstraction predicates of a TVP vocabulary, and the single-structure
/// join used by the independent-attribute engine.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVLA_STRUCTURE_H
#define CANVAS_TVLA_STRUCTURE_H

#include "logic/Kleene.h"
#include "tvp/Program.h"

#include <string>
#include <vector>

namespace canvas {
namespace tvla {

/// One 3-valued structure over a fixed vocabulary. Predicate storage is
/// indexed by the vocabulary's predicate index; unary predicates store
/// one value per individual, binary predicates a row-major matrix.
class Structure {
public:
  explicit Structure(const tvp::Vocabulary &V);

  unsigned numNodes() const { return N; }
  bool isSummary(unsigned Node) const { return Summary[Node] != 0; }
  void setSummary(unsigned Node, bool S) { Summary[Node] = S; }

  Kleene unary(int Pred, unsigned Node) const;
  void setUnary(int Pred, unsigned Node, Kleene V);
  Kleene binary(int Pred, unsigned A, unsigned B) const;
  void setBinary(int Pred, unsigned A, unsigned B, Kleene V);

  /// Value of predicate \p Pred at \p Tuple (arity 1 or 2).
  Kleene at(int Pred, const std::vector<unsigned> &Tuple) const;
  void setAt(int Pred, const std::vector<unsigned> &Tuple, Kleene V);

  /// Adds a fresh non-summary individual with all predicate values 0;
  /// returns its index.
  unsigned addNode();

  /// The equality predicate of 3-valued structures: distinct individuals
  /// are unequal; an individual equals itself definitely unless it is a
  /// summary node.
  Kleene nodeEq(unsigned A, unsigned B) const {
    if (A != B)
      return Kleene::False;
    return isSummary(A) ? Kleene::Half : Kleene::True;
  }

  /// Canonical abstraction: merges individuals that agree on every
  /// unary abstraction predicate; merged individuals become summary
  /// nodes and binary values are joined.
  void blur(const tvp::Vocabulary &V);

  /// Deterministic rendering of a blurred structure (node order is the
  /// canonical-key order); used for display and as the reference
  /// identity in tests. The relational engine's hot path identifies
  /// structures by structuralHash()/operator== instead.
  std::string canonicalStr(const tvp::Vocabulary &V) const;

  /// 64-bit structural hash over the node count, summary bits, and
  /// every predicate matrix. For canonical structures (blur() leaves
  /// nodes in canonical-key order), equal hashes + operator== equality
  /// coincide with canonicalStr equality, without re-serializing
  /// O(preds * N^2) bytes into a string per lookup.
  uint64_t structuralHash() const;

  /// Structural equality on the raw representation. Meaningful for
  /// canonical structures over the same vocabulary (see
  /// structuralHash()).
  bool operator==(const Structure &O) const;

  /// True when the structure is in canonical form: node canonical keys
  /// are unique and stored in ascending key order (the form blur()
  /// establishes). The relational engine's interning and the
  /// independent engine's join both rely on this invariant.
  bool isCanonical(const tvp::Vocabulary &V) const;

  /// Debug-mode invariant check: asserts isCanonical(). Called after
  /// every join; compiled out in NDEBUG builds.
  void assertCanonical(const tvp::Vocabulary &V) const;

  /// Approximate heap footprint in bytes, for allocation budgets.
  size_t approxBytes() const;

  /// Independent-attribute join: embeds both structures into the union
  /// of their canonical keys and joins predicate values. Inputs that
  /// are not canonically blurred (duplicate canonical keys) are blurred
  /// first rather than silently dropping bindings; the result is always
  /// canonical (points-to smoothing and universe unions re-blur when
  /// they disturb canonical keys). Returns true when *this changed
  /// semantically.
  bool joinWith(const Structure &O, const tvp::Vocabulary &V);

private:
  /// Per-node canonical key: the vector of unary abstraction predicate
  /// values.
  std::string keyOf(const tvp::Vocabulary &V, unsigned Node) const;

  /// True when two nodes share a canonical key (the structure needs a
  /// blur() before keys can identify nodes).
  bool hasDuplicateKeys(const tvp::Vocabulary &V) const;

  const tvp::Vocabulary *Vocab;
  unsigned N = 0;
  std::vector<uint8_t> Summary;
  /// Values[p]: size N for unary, N*N for binary.
  std::vector<std::vector<uint8_t>> Values;
};

} // namespace tvla
} // namespace canvas

#endif // CANVAS_TVLA_STRUCTURE_H
