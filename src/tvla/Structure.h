//===----------------------------------------------------------------------===//
///
/// \file
/// 3-valued logical structures (Section 5.5): a universe of individuals
/// with Kleene-valued unary and binary predicates, a summary bit per
/// individual, canonical abstraction ("blur") driven by the unary
/// abstraction predicates of a TVP vocabulary, and the single-structure
/// join used by the independent-attribute engine.
///
/// Representation: one contiguous word buffer of 2-bit entries (the
/// flat struct-of-arrays layout of DESIGN.md "Arena / flat-structure
/// memory architecture"). Kleene values are stored join-encoded —
/// False=01, True=10, Half=11 (bit0 = "may be false", bit1 = "may be
/// true") — so kJoin is bitwise OR, whole-structure joins and blur
/// group-folds are word-parallel OR over the buffer, and the numeric
/// entry order 01<10<11 matches the canonical-key character order
/// '0'<'1'<'?' of the previous string-keyed representation (canonical
/// node order is unchanged). The summary bit uses 01/11 so it joins by
/// OR too. Layout, by ascending entry index: summary bits (N entries),
/// unary predicates in vocabulary slot order (N entries each), binary
/// predicates in slot order (N*N row-major entries each); slots come
/// from tvp::Vocabulary's flat-layout cache.
///
/// Buffers live on the heap or in a support::Arena: scratch structures
/// inside one fixpoint visit are arena-backed (tvla::Transfer), while
/// copy construction/assignment into a non-arena structure always
/// detaches to the heap, so anything stored in an InternPool or
/// annotation owns its words.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVLA_STRUCTURE_H
#define CANVAS_TVLA_STRUCTURE_H

#include "logic/Kleene.h"
#include "support/Arena.h"
#include "tvp/Program.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace canvas {
namespace tvla {

/// One 3-valued structure over a fixed vocabulary. Predicate storage is
/// indexed by the vocabulary's predicate index; unary predicates store
/// one value per individual, binary predicates a row-major matrix.
class Structure {
public:
  explicit Structure(const tvp::Vocabulary &V);
  /// An empty structure whose buffer grows inside \p Scratch; use for
  /// fixpoint-visit temporaries only (see file comment).
  Structure(const tvp::Vocabulary &V, support::Arena &Scratch);

  /// Copies always detach to the heap, so the copy may outlive any
  /// arena the source lived in.
  Structure(const Structure &O);
  /// Arena copy: a scratch duplicate of \p O inside \p Scratch.
  Structure(const Structure &O, support::Arena &Scratch);
  Structure(Structure &&O) noexcept;
  Structure &operator=(const Structure &O);
  Structure &operator=(Structure &&O) noexcept;
  ~Structure() {
    if (!A)
      delete[] W;
  }

  unsigned numNodes() const { return N; }
  bool isSummary(unsigned Node) const {
    assert(Node < N);
    return (entry(Node) & 2) != 0;
  }
  void setSummary(unsigned Node, bool S) {
    assert(Node < N);
    setEntry(Node, S ? 3u : 1u);
  }

  Kleene unary(int Pred, unsigned Node) const {
    assert(L->Arity[Pred] == 1 && Node < N);
    return decodeKleene(entry(unaryEntry(Pred, Node)));
  }
  void setUnary(int Pred, unsigned Node, Kleene V) {
    assert(L->Arity[Pred] == 1 && Node < N);
    setEntry(unaryEntry(Pred, Node), encodeKleene(V));
  }
  Kleene binary(int Pred, unsigned A, unsigned B) const {
    assert(L->Arity[Pred] == 2 && A < N && B < N);
    return decodeKleene(entry(binaryEntry(Pred, A, B)));
  }
  void setBinary(int Pred, unsigned A, unsigned B, Kleene V) {
    assert(L->Arity[Pred] == 2 && A < N && B < N);
    setEntry(binaryEntry(Pred, A, B), encodeKleene(V));
  }

  /// Value of predicate \p Pred at \p Tuple (arity 1 or 2).
  Kleene at(int Pred, const std::vector<unsigned> &Tuple) const;
  void setAt(int Pred, const std::vector<unsigned> &Tuple, Kleene V);

  /// Adds a fresh non-summary individual with all predicate values 0;
  /// returns its index.
  unsigned addNode();

  /// Grows the universe to \p NewN individuals in one buffer rebuild
  /// (fresh individuals are non-summary with all predicate values 0);
  /// N calls to addNode() cost N rebuilds, this costs one.
  void resizeNodes(unsigned NewN);

  /// The equality predicate of 3-valued structures: distinct individuals
  /// are unequal; an individual equals itself definitely unless it is a
  /// summary node.
  Kleene nodeEq(unsigned A, unsigned B) const {
    if (A != B)
      return Kleene::False;
    return isSummary(A) ? Kleene::Half : Kleene::True;
  }

  /// Canonical abstraction: merges individuals that agree on every
  /// unary abstraction predicate; merged individuals become summary
  /// nodes and binary values are joined. A no-op (no rebuild) when the
  /// structure is already canonical.
  void blur(const tvp::Vocabulary &V);

  /// Deterministic rendering of a blurred structure (node order is the
  /// canonical-key order); used for display and as the reference
  /// identity in tests. The relational engine's hot path identifies
  /// structures by structuralHash()/operator== instead.
  std::string canonicalStr(const tvp::Vocabulary &V) const;

  /// 64-bit structural hash over the node count and the packed entry
  /// words (word-parallel; see support::hashWords). For canonical
  /// structures (blur() leaves nodes in canonical-key order), equal
  /// hashes + operator== equality coincide with canonicalStr equality.
  uint64_t structuralHash() const;

  /// Structural equality on the raw representation. Meaningful for
  /// canonical structures over the same vocabulary (see
  /// structuralHash()).
  bool operator==(const Structure &O) const;

  /// True when the structure is in canonical form: node canonical keys
  /// are unique and stored in ascending key order (the form blur()
  /// establishes). The relational engine's interning and the
  /// independent engine's join both rely on this invariant.
  bool isCanonical(const tvp::Vocabulary &V) const;

  /// Debug-mode invariant check: asserts isCanonical(). Called after
  /// every join; compiled out in NDEBUG builds.
  void assertCanonical(const tvp::Vocabulary &V) const;

  /// Approximate heap footprint in bytes, for allocation budgets.
  size_t approxBytes() const;

  /// Independent-attribute join: embeds both structures into the union
  /// of their canonical keys and joins predicate values. Inputs that
  /// are not canonically blurred (duplicate canonical keys) are blurred
  /// first rather than silently dropping bindings; the result is always
  /// canonical (points-to smoothing and universe unions re-blur when
  /// they disturb canonical keys). Returns true when *this changed
  /// semantically. When both sides carry the same canonical key set in
  /// the same order, the join is one word-parallel OR over the buffers.
  bool joinWith(const Structure &O, const tvp::Vocabulary &V);

private:
  // Join-encoded 2-bit entries: False=01, True=10, Half=11 (0 unused).
  static uint32_t encodeKleene(Kleene K) {
    return static_cast<uint32_t>(K) + 1;
  }
  static Kleene decodeKleene(uint32_t E) {
    assert(E >= 1 && E <= 3);
    return static_cast<Kleene>(E - 1);
  }
  /// Every entry of an all-zero structure, packed: 0b01 repeated.
  static constexpr uint64_t kFalsePattern = 0x5555555555555555ull;

  uint32_t entry(size_t E) const {
    return static_cast<uint32_t>(W[E >> 5] >> ((E & 31) * 2)) & 3u;
  }
  void setEntry(size_t E, uint32_t V) {
    uint64_t &Word = W[E >> 5];
    unsigned Shift = (E & 31) * 2;
    Word = (Word & ~(3ull << Shift)) | (static_cast<uint64_t>(V) << Shift);
  }

  size_t unaryEntry(int Pred, unsigned Node) const {
    return static_cast<size_t>(N) + static_cast<size_t>(L->Slot[Pred]) * N +
           Node;
  }
  size_t binaryEntry(int Pred, unsigned A, unsigned B) const {
    return static_cast<size_t>(N) * (1 + L->NumUnary) +
           (static_cast<size_t>(L->Slot[Pred]) * N + A) * N + B;
  }
  static size_t totalEntries(const tvp::PredLayout &L, unsigned Nodes) {
    return static_cast<size_t>(Nodes) * (1 + L.NumUnary) +
           static_cast<size_t>(Nodes) * Nodes * L.NumBinary;
  }

  uint64_t *allocWords(uint32_t Count) const;
  void freeWords(uint64_t *Ptr) const {
    if (!A)
      delete[] Ptr;
  }

  /// Packs node \p Node's canonical key (unary abstraction predicate
  /// values, MSB-first so word comparison is lexicographic) into
  /// \p Out[0..keyWords).
  void packKey(unsigned Node, uint64_t *Out) const;
  unsigned keyWords() const {
    return (static_cast<unsigned>(L->AbsUnary.size()) + 31) / 32;
  }
  /// Per-node canonical key as the legacy character string (display /
  /// canonicalStr only).
  std::string keyOf(const tvp::Vocabulary &V, unsigned Node) const;

  /// True when two nodes share a canonical key (the structure needs a
  /// blur() before keys can identify nodes).
  bool hasDuplicateKeys(const tvp::Vocabulary &V) const;

  /// Process-lifetime interned layout (tvp::internLayout): safe to
  /// dereference even after the source Vocabulary is destroyed, which
  /// annotation and certificate structures rely on.
  const tvp::PredLayout *L;
  support::Arena *A = nullptr; ///< Null: W is heap-owned.
  uint64_t *W = nullptr;
  uint32_t Words = 0;
  unsigned N = 0;
};

} // namespace tvla
} // namespace canvas

#endif // CANVAS_TVLA_STRUCTURE_H
