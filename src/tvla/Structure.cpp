#include "tvla/Structure.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace canvas;
using namespace canvas::tvla;

Structure::Structure(const tvp::Vocabulary &V) : Vocab(&V) {
  Values.resize(V.Preds.size());
}

Kleene Structure::unary(int Pred, unsigned Node) const {
  assert(Vocab->Preds[Pred].Arity == 1 && Node < N);
  return static_cast<Kleene>(Values[Pred][Node]);
}

void Structure::setUnary(int Pred, unsigned Node, Kleene V) {
  assert(Vocab->Preds[Pred].Arity == 1 && Node < N);
  Values[Pred][Node] = static_cast<uint8_t>(V);
}

Kleene Structure::binary(int Pred, unsigned A, unsigned B) const {
  assert(Vocab->Preds[Pred].Arity == 2 && A < N && B < N);
  return static_cast<Kleene>(Values[Pred][A * N + B]);
}

void Structure::setBinary(int Pred, unsigned A, unsigned B, Kleene V) {
  assert(Vocab->Preds[Pred].Arity == 2 && A < N && B < N);
  Values[Pred][A * N + B] = static_cast<uint8_t>(V);
}

Kleene Structure::at(int Pred, const std::vector<unsigned> &Tuple) const {
  if (Tuple.size() == 1)
    return unary(Pred, Tuple[0]);
  return binary(Pred, Tuple[0], Tuple[1]);
}

void Structure::setAt(int Pred, const std::vector<unsigned> &Tuple,
                      Kleene V) {
  if (Tuple.size() == 1)
    setUnary(Pred, Tuple[0], V);
  else
    setBinary(Pred, Tuple[0], Tuple[1], V);
}

unsigned Structure::addNode() {
  unsigned NewN = N + 1;
  Summary.push_back(0);
  for (size_t P = 0; P != Values.size(); ++P) {
    unsigned Arity = Vocab->Preds[P].Arity;
    if (Arity == 1) {
      Values[P].push_back(0);
      continue;
    }
    // Rebuild the binary matrix with one extra row and column.
    std::vector<uint8_t> NewM(NewN * NewN, 0);
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B)
        NewM[A * NewN + B] = Values[P][A * N + B];
    Values[P] = std::move(NewM);
  }
  return N++;
}

std::string Structure::keyOf(const tvp::Vocabulary &V, unsigned Node) const {
  std::string Key;
  for (size_t P = 0; P != V.Preds.size(); ++P) {
    if (V.Preds[P].Arity != 1 || !V.Preds[P].Abstraction)
      continue;
    Key += kleeneChar(static_cast<Kleene>(Values[P][Node]));
  }
  return Key;
}

void Structure::blur(const tvp::Vocabulary &V) {
  // Group nodes by canonical key, ordered deterministically.
  std::map<std::string, std::vector<unsigned>> Groups;
  for (unsigned Node = 0; Node != N; ++Node)
    Groups[keyOf(V, Node)].push_back(Node);

  unsigned NewN = Groups.size();
  std::vector<uint8_t> NewSummary(NewN, 0);
  std::vector<std::vector<unsigned>> GroupList;
  GroupList.reserve(NewN);
  for (auto &[K, G] : Groups)
    GroupList.push_back(G);

  for (unsigned I = 0; I != NewN; ++I) {
    bool Sum = GroupList[I].size() > 1;
    for (unsigned Old : GroupList[I])
      Sum |= isSummary(Old);
    NewSummary[I] = Sum;
  }

  std::vector<std::vector<uint8_t>> NewValues(Values.size());
  for (size_t P = 0; P != Values.size(); ++P) {
    unsigned Arity = Vocab->Preds[P].Arity;
    if (Arity == 1) {
      NewValues[P].assign(NewN, 0);
      for (unsigned I = 0; I != NewN; ++I) {
        Kleene Acc = static_cast<Kleene>(Values[P][GroupList[I][0]]);
        for (unsigned Old : GroupList[I])
          Acc = kJoin(Acc, static_cast<Kleene>(Values[P][Old]));
        NewValues[P][I] = static_cast<uint8_t>(Acc);
      }
      continue;
    }
    NewValues[P].assign(NewN * NewN, 0);
    for (unsigned I = 0; I != NewN; ++I)
      for (unsigned J = 0; J != NewN; ++J) {
        bool First = true;
        Kleene Acc = Kleene::False;
        for (unsigned A : GroupList[I])
          for (unsigned B : GroupList[J]) {
            Kleene Val = static_cast<Kleene>(Values[P][A * N + B]);
            Acc = First ? Val : kJoin(Acc, Val);
            First = false;
          }
        NewValues[P][I * NewN + J] = static_cast<uint8_t>(Acc);
      }
  }

  N = NewN;
  Summary = std::move(NewSummary);
  Values = std::move(NewValues);
}

std::string Structure::canonicalStr(const tvp::Vocabulary &V) const {
  // Assumes blurred: keys are unique; order nodes by key.
  std::vector<std::pair<std::string, unsigned>> Order;
  for (unsigned Node = 0; Node != N; ++Node)
    Order.emplace_back(keyOf(V, Node), Node);
  std::sort(Order.begin(), Order.end());

  std::string Out;
  for (const auto &[Key, Node] : Order) {
    Out += Key;
    Out += isSummary(Node) ? "S" : ".";
    Out += "|";
  }
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 2)
      continue;
    for (const auto &[KA, A] : Order)
      for (const auto &[KB, B] : Order)
        Out += kleeneChar(binary(static_cast<int>(P), A, B));
    Out += "|";
  }
  // Unary non-abstraction values (none in the current vocabulary, but
  // keep the rendering complete).
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 1 || Vocab->Preds[P].Abstraction)
      continue;
    for (const auto &[K, Node] : Order)
      Out += kleeneChar(unary(static_cast<int>(P), Node));
    Out += "|";
  }
  return Out;
}

bool Structure::joinWith(const Structure &O, const tvp::Vocabulary &V) {
  // Map canonical keys to node ids on both sides.
  std::map<std::string, unsigned> Mine, Theirs;
  for (unsigned Node = 0; Node != N; ++Node)
    Mine[keyOf(V, Node)] = Node;
  for (unsigned Node = 0; Node != O.N; ++Node)
    Theirs[O.keyOf(V, Node)] = Node;

  bool Changed = false;
  // Import nodes present only in O.
  std::map<unsigned, unsigned> TheirToMine;
  for (const auto &[Key, Their] : Theirs) {
    auto It = Mine.find(Key);
    if (It != Mine.end()) {
      TheirToMine[Their] = It->second;
      continue;
    }
    unsigned Fresh = addNode();
    Changed = true;
    for (size_t P = 0; P != Values.size(); ++P)
      if (Vocab->Preds[P].Arity == 1)
        setUnary(static_cast<int>(P), Fresh,
                 O.unary(static_cast<int>(P), Their));
    setSummary(Fresh, O.isSummary(Their));
    Mine[Key] = Fresh;
    TheirToMine[Their] = Fresh;
  }

  // Join summary bits and binary values over matched nodes.
  for (const auto &[Their, MineIdx] : TheirToMine) {
    if (O.isSummary(Their) && !isSummary(MineIdx)) {
      setSummary(MineIdx, true);
      Changed = true;
    }
  }
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 2)
      continue;
    for (const auto &[TA, MA] : TheirToMine)
      for (const auto &[TB, MB] : TheirToMine) {
        Kleene Old = binary(static_cast<int>(P), MA, MB);
        Kleene J = kJoin(Old, O.binary(static_cast<int>(P), TA, TB));
        if (J != Old) {
          setBinary(static_cast<int>(P), MA, MB, J);
          Changed = true;
        }
      }
  }

  // A variable references exactly one object per execution; after a
  // universe union a points-to predicate definite at two individuals
  // means "one or the other", i.e. 1/2 at each.
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].K != tvp::Pred::Kind::VarPointsTo)
      continue;
    unsigned Definite = 0;
    for (unsigned Node = 0; Node != N; ++Node)
      Definite += unary(static_cast<int>(P), Node) == Kleene::True;
    if (Definite < 2)
      continue;
    for (unsigned Node = 0; Node != N; ++Node)
      if (unary(static_cast<int>(P), Node) == Kleene::True) {
        setUnary(static_cast<int>(P), Node, Kleene::Half);
        Changed = true;
      }
  }
  return Changed;
}
