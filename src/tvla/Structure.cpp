#include "tvla/Structure.h"

#include "support/Interner.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace canvas;
using namespace canvas::tvla;

Structure::Structure(const tvp::Vocabulary &V) : Vocab(&V) {
  Values.resize(V.Preds.size());
}

Kleene Structure::unary(int Pred, unsigned Node) const {
  assert(Vocab->Preds[Pred].Arity == 1 && Node < N);
  return static_cast<Kleene>(Values[Pred][Node]);
}

void Structure::setUnary(int Pred, unsigned Node, Kleene V) {
  assert(Vocab->Preds[Pred].Arity == 1 && Node < N);
  Values[Pred][Node] = static_cast<uint8_t>(V);
}

Kleene Structure::binary(int Pred, unsigned A, unsigned B) const {
  assert(Vocab->Preds[Pred].Arity == 2 && A < N && B < N);
  return static_cast<Kleene>(Values[Pred][A * N + B]);
}

void Structure::setBinary(int Pred, unsigned A, unsigned B, Kleene V) {
  assert(Vocab->Preds[Pred].Arity == 2 && A < N && B < N);
  Values[Pred][A * N + B] = static_cast<uint8_t>(V);
}

Kleene Structure::at(int Pred, const std::vector<unsigned> &Tuple) const {
  if (Tuple.size() == 1)
    return unary(Pred, Tuple[0]);
  return binary(Pred, Tuple[0], Tuple[1]);
}

void Structure::setAt(int Pred, const std::vector<unsigned> &Tuple,
                      Kleene V) {
  if (Tuple.size() == 1)
    setUnary(Pred, Tuple[0], V);
  else
    setBinary(Pred, Tuple[0], Tuple[1], V);
}

unsigned Structure::addNode() {
  unsigned NewN = N + 1;
  Summary.push_back(0);
  for (size_t P = 0; P != Values.size(); ++P) {
    unsigned Arity = Vocab->Preds[P].Arity;
    if (Arity == 1) {
      Values[P].push_back(0);
      continue;
    }
    // Rebuild the binary matrix with one extra row and column.
    std::vector<uint8_t> NewM(NewN * NewN, 0);
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B)
        NewM[A * NewN + B] = Values[P][A * N + B];
    Values[P] = std::move(NewM);
  }
  return N++;
}

std::string Structure::keyOf(const tvp::Vocabulary &V, unsigned Node) const {
  std::string Key;
  for (size_t P = 0; P != V.Preds.size(); ++P) {
    if (V.Preds[P].Arity != 1 || !V.Preds[P].Abstraction)
      continue;
    Key += kleeneChar(static_cast<Kleene>(Values[P][Node]));
  }
  return Key;
}

void Structure::blur(const tvp::Vocabulary &V) {
  // Group nodes by canonical key, ordered deterministically.
  std::map<std::string, std::vector<unsigned>> Groups;
  for (unsigned Node = 0; Node != N; ++Node)
    Groups[keyOf(V, Node)].push_back(Node);

  unsigned NewN = Groups.size();
  std::vector<uint8_t> NewSummary(NewN, 0);
  std::vector<std::vector<unsigned>> GroupList;
  GroupList.reserve(NewN);
  for (auto &[K, G] : Groups)
    GroupList.push_back(G);

  for (unsigned I = 0; I != NewN; ++I) {
    bool Sum = GroupList[I].size() > 1;
    for (unsigned Old : GroupList[I])
      Sum |= isSummary(Old);
    NewSummary[I] = Sum;
  }

  std::vector<std::vector<uint8_t>> NewValues(Values.size());
  for (size_t P = 0; P != Values.size(); ++P) {
    unsigned Arity = Vocab->Preds[P].Arity;
    if (Arity == 1) {
      NewValues[P].assign(NewN, 0);
      for (unsigned I = 0; I != NewN; ++I) {
        Kleene Acc = static_cast<Kleene>(Values[P][GroupList[I][0]]);
        for (unsigned Old : GroupList[I])
          Acc = kJoin(Acc, static_cast<Kleene>(Values[P][Old]));
        NewValues[P][I] = static_cast<uint8_t>(Acc);
      }
      continue;
    }
    NewValues[P].assign(NewN * NewN, 0);
    for (unsigned I = 0; I != NewN; ++I)
      for (unsigned J = 0; J != NewN; ++J) {
        bool First = true;
        Kleene Acc = Kleene::False;
        for (unsigned A : GroupList[I])
          for (unsigned B : GroupList[J]) {
            Kleene Val = static_cast<Kleene>(Values[P][A * N + B]);
            Acc = First ? Val : kJoin(Acc, Val);
            First = false;
          }
        NewValues[P][I * NewN + J] = static_cast<uint8_t>(Acc);
      }
  }

  N = NewN;
  Summary = std::move(NewSummary);
  Values = std::move(NewValues);
}

std::string Structure::canonicalStr(const tvp::Vocabulary &V) const {
  // Assumes blurred: keys are unique; order nodes by key.
  std::vector<std::pair<std::string, unsigned>> Order;
  for (unsigned Node = 0; Node != N; ++Node)
    Order.emplace_back(keyOf(V, Node), Node);
  std::sort(Order.begin(), Order.end());

  std::string Out;
  for (const auto &[Key, Node] : Order) {
    Out += Key;
    Out += isSummary(Node) ? "S" : ".";
    Out += "|";
  }
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 2)
      continue;
    for (const auto &[KA, A] : Order)
      for (const auto &[KB, B] : Order)
        Out += kleeneChar(binary(static_cast<int>(P), A, B));
    Out += "|";
  }
  // Unary non-abstraction values (none in the current vocabulary, but
  // keep the rendering complete).
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 1 || Vocab->Preds[P].Abstraction)
      continue;
    for (const auto &[K, Node] : Order)
      Out += kleeneChar(unary(static_cast<int>(P), Node));
    Out += "|";
  }
  return Out;
}

uint64_t Structure::structuralHash() const {
  uint64_t H = support::hashMix(N);
  if (!Summary.empty())
    H = support::hashCombine(H, support::hashBytes(Summary.data(),
                                                   Summary.size()));
  for (const std::vector<uint8_t> &M : Values)
    H = support::hashCombine(
        H, M.empty() ? 0x9ae16a3b2f90404full
                     : support::hashBytes(M.data(), M.size()));
  return H;
}

bool Structure::operator==(const Structure &O) const {
  return N == O.N && Summary == O.Summary && Values == O.Values;
}

bool Structure::isCanonical(const tvp::Vocabulary &V) const {
  for (unsigned Node = 1; Node < N; ++Node)
    if (keyOf(V, Node - 1) >= keyOf(V, Node))
      return false;
  return true;
}

void Structure::assertCanonical(const tvp::Vocabulary &V) const {
#ifndef NDEBUG
  assert(isCanonical(V) &&
         "structure must be in canonical form (blurred, key-ordered)");
#endif
  (void)V;
}

size_t Structure::approxBytes() const {
  size_t Bytes = sizeof(Structure) + Summary.size();
  for (const std::vector<uint8_t> &M : Values)
    Bytes += M.size();
  return Bytes;
}

bool Structure::hasDuplicateKeys(const tvp::Vocabulary &V) const {
  std::vector<std::string> Keys;
  Keys.reserve(N);
  for (unsigned Node = 0; Node != N; ++Node)
    Keys.push_back(keyOf(V, Node));
  std::sort(Keys.begin(), Keys.end());
  return std::adjacent_find(Keys.begin(), Keys.end()) != Keys.end();
}

bool Structure::joinWith(const Structure &O, const tvp::Vocabulary &V) {
  bool Changed = false;

  // An input that is not canonically blurred has nodes sharing a key; a
  // key-to-node map would silently drop all but one of them, losing
  // bindings. Blur first instead (merging indistinguishable nodes is
  // the canonical abstraction, never a precision loss beyond it).
  if (hasDuplicateKeys(V)) {
    blur(V);
    Changed = true;
  }
  Structure OBlurred(V);
  const Structure *Other = &O;
  if (O.hasDuplicateKeys(V)) {
    OBlurred = O;
    OBlurred.blur(V);
    Other = &OBlurred;
  }
  const Structure &OC = *Other;

  // Map canonical keys to node ids on both sides.
  std::map<std::string, unsigned> Mine, Theirs;
  for (unsigned Node = 0; Node != N; ++Node)
    Mine[keyOf(V, Node)] = Node;
  for (unsigned Node = 0; Node != OC.N; ++Node)
    Theirs[OC.keyOf(V, Node)] = Node;
  // Import nodes present only in OC.
  std::map<unsigned, unsigned> TheirToMine;
  bool Imported = false;
  for (const auto &[Key, Their] : Theirs) {
    auto It = Mine.find(Key);
    if (It != Mine.end()) {
      TheirToMine[Their] = It->second;
      continue;
    }
    unsigned Fresh = addNode();
    Changed = true;
    Imported = true;
    for (size_t P = 0; P != Values.size(); ++P)
      if (Vocab->Preds[P].Arity == 1)
        setUnary(static_cast<int>(P), Fresh,
                 OC.unary(static_cast<int>(P), Their));
    setSummary(Fresh, OC.isSummary(Their));
    Mine[Key] = Fresh;
    TheirToMine[Their] = Fresh;
  }

  // Join summary bits and binary values over matched nodes.
  for (const auto &[Their, MineIdx] : TheirToMine) {
    if (OC.isSummary(Their) && !isSummary(MineIdx)) {
      setSummary(MineIdx, true);
      Changed = true;
    }
  }
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].Arity != 2)
      continue;
    for (const auto &[TA, MA] : TheirToMine)
      for (const auto &[TB, MB] : TheirToMine) {
        Kleene Old = binary(static_cast<int>(P), MA, MB);
        Kleene J = kJoin(Old, OC.binary(static_cast<int>(P), TA, TB));
        if (J != Old) {
          setBinary(static_cast<int>(P), MA, MB, J);
          Changed = true;
        }
      }
  }

  // A variable references exactly one object per execution; after a
  // universe union a points-to predicate definite at two individuals
  // means "one or the other", i.e. 1/2 at each.
  bool Smoothed = false;
  for (size_t P = 0; P != Values.size(); ++P) {
    if (Vocab->Preds[P].K != tvp::Pred::Kind::VarPointsTo)
      continue;
    unsigned Definite = 0;
    for (unsigned Node = 0; Node != N; ++Node)
      Definite += unary(static_cast<int>(P), Node) == Kleene::True;
    if (Definite < 2)
      continue;
    for (unsigned Node = 0; Node != N; ++Node)
      if (unary(static_cast<int>(P), Node) == Kleene::True) {
        setUnary(static_cast<int>(P), Node, Kleene::Half);
        Changed = true;
        Smoothed = true;
      }
  }

  // Restore the canonical invariant: smoothing flips abstraction
  // predicate values (node keys change, and previously distinguished
  // nodes may now coincide), and imported nodes were appended out of
  // key order. Either way the canonical keys no longer identify nodes
  // until we re-blur.
  if ((Smoothed || Imported) && !isCanonical(V))
    blur(V);
  assertCanonical(V);
  return Changed;
}
