#include "tvla/Structure.h"

#include "support/Interner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace canvas;
using namespace canvas::tvla;

namespace {

/// Lexicographic comparison of two packed canonical keys (MSB-first
/// packing makes word order the pred order).
inline bool keyLess(const uint64_t *A, const uint64_t *B, unsigned KW) {
  for (unsigned I = 0; I != KW; ++I)
    if (A[I] != B[I])
      return A[I] < B[I];
  return false;
}

inline bool keyEq(const uint64_t *A, const uint64_t *B, unsigned KW) {
  for (unsigned I = 0; I != KW; ++I)
    if (A[I] != B[I])
      return false;
  return true;
}

} // namespace

Structure::Structure(const tvp::Vocabulary &V) {
  // buildVocabulary always finalizes the layout; hand-built
  // vocabularies (tests) are finalized lazily here.
  if (!V.layoutReady())
    const_cast<tvp::Vocabulary &>(V).finalizeLayout();
  L = V.Layout;
}

Structure::Structure(const tvp::Vocabulary &V, support::Arena &Scratch)
    : Structure(V) {
  A = &Scratch;
}

Structure::Structure(const Structure &O)
    : L(O.L), A(nullptr), Words(O.Words), N(O.N) {
  if (Words) {
    W = new uint64_t[Words];
    std::memcpy(W, O.W, Words * sizeof(uint64_t));
  }
}

Structure::Structure(const Structure &O, support::Arena &Scratch)
    : L(O.L), A(&Scratch), Words(O.Words), N(O.N) {
  if (Words) {
    W = A->allocateArray<uint64_t>(Words);
    std::memcpy(W, O.W, Words * sizeof(uint64_t));
  }
}

Structure::Structure(Structure &&O) noexcept
    : L(O.L), A(O.A), W(O.W), Words(O.Words), N(O.N) {
  O.W = nullptr;
  O.Words = 0;
  O.N = 0;
}

Structure &Structure::operator=(const Structure &O) {
  if (this == &O)
    return *this;
  L = O.L;
  if (Words != O.Words) {
    uint64_t *NW = nullptr;
    if (O.Words)
      NW = A ? A->allocateArray<uint64_t>(O.Words) : new uint64_t[O.Words];
    freeWords(W);
    W = NW;
    Words = O.Words;
  }
  if (Words)
    std::memcpy(W, O.W, Words * sizeof(uint64_t));
  N = O.N;
  return *this;
}

Structure &Structure::operator=(Structure &&O) noexcept {
  if (this == &O)
    return *this;
  if (A == O.A) {
    freeWords(W);
    L = O.L;
    W = O.W;
    Words = O.Words;
    N = O.N;
    O.W = nullptr;
    O.Words = 0;
    O.N = 0;
    return *this;
  }
  // Allocator kinds differ (e.g. a heap-owned destination receiving an
  // arena scratch value): copy, preserving the destination's ownership
  // guarantee — non-arena structures always own heap words.
  return *this = static_cast<const Structure &>(O);
}

uint64_t *Structure::allocWords(uint32_t Count) const {
  if (!Count)
    return nullptr;
  uint64_t *P = A ? A->allocateArray<uint64_t>(Count) : new uint64_t[Count];
  std::fill_n(P, Count, kFalsePattern);
  return P;
}

Kleene Structure::at(int Pred, const std::vector<unsigned> &Tuple) const {
  if (Tuple.size() == 1)
    return unary(Pred, Tuple[0]);
  return binary(Pred, Tuple[0], Tuple[1]);
}

void Structure::setAt(int Pred, const std::vector<unsigned> &Tuple,
                      Kleene V) {
  if (Tuple.size() == 1)
    setUnary(Pred, Tuple[0], V);
  else
    setBinary(Pred, Tuple[0], Tuple[1], V);
}

void Structure::resizeNodes(unsigned NewN) {
  assert(NewN >= N && "resizeNodes only grows the universe");
  if (NewN == N)
    return;
  const tvp::PredLayout &Lay = *L;
  const unsigned OldN = N;
  size_t TE = totalEntries(Lay, NewN);
  uint32_t NewWords = static_cast<uint32_t>((TE + 31) / 32);
  uint64_t *NW = allocWords(NewWords);

  auto Get = [&](size_t E) {
    return static_cast<uint32_t>(W[E >> 5] >> ((E & 31) * 2)) & 3u;
  };
  auto Put = [&](size_t E, uint32_t Val) {
    unsigned Shift = (E & 31) * 2;
    NW[E >> 5] =
        (NW[E >> 5] & ~(3ull << Shift)) | (static_cast<uint64_t>(Val) << Shift);
  };

  // Summary bits, then unary columns, then binary matrices: each section
  // re-based from the old node count to the new one.
  for (unsigned Node = 0; Node != OldN; ++Node)
    Put(Node, Get(Node));
  for (unsigned U = 0; U != Lay.NumUnary; ++U) {
    size_t OldBase = static_cast<size_t>(OldN) + static_cast<size_t>(U) * OldN;
    size_t NewBase = static_cast<size_t>(NewN) + static_cast<size_t>(U) * NewN;
    for (unsigned Node = 0; Node != OldN; ++Node)
      Put(NewBase + Node, Get(OldBase + Node));
  }
  size_t OldBin = static_cast<size_t>(OldN) * (1 + Lay.NumUnary);
  size_t NewBin = static_cast<size_t>(NewN) * (1 + Lay.NumUnary);
  for (unsigned B = 0; B != Lay.NumBinary; ++B)
    for (unsigned R = 0; R != OldN; ++R)
      for (unsigned C = 0; C != OldN; ++C)
        Put(NewBin + (static_cast<size_t>(B) * NewN + R) * NewN + C,
            Get(OldBin + (static_cast<size_t>(B) * OldN + R) * OldN + C));

  freeWords(W);
  W = NW;
  Words = NewWords;
  N = NewN;
}

unsigned Structure::addNode() {
  unsigned Old = N;
  resizeNodes(N + 1);
  return Old;
}

void Structure::packKey(unsigned Node, uint64_t *Out) const {
  const std::vector<int> &Abs = L->AbsUnary;
  const unsigned KW = keyWords();
  for (unsigned I = 0; I != KW; ++I)
    Out[I] = 0;
  for (size_t I = 0; I != Abs.size(); ++I) {
    uint32_t E = entry(unaryEntry(Abs[I], Node));
    Out[I >> 5] |= static_cast<uint64_t>(E) << (62 - 2 * (I & 31));
  }
}

std::string Structure::keyOf(const tvp::Vocabulary &V, unsigned Node) const {
  std::string Key;
  for (size_t P = 0; P != V.Preds.size(); ++P) {
    if (V.Preds[P].Arity != 1 || !V.Preds[P].Abstraction)
      continue;
    Key += kleeneChar(unary(static_cast<int>(P), Node));
  }
  return Key;
}

void Structure::blur(const tvp::Vocabulary &V) {
  (void)V;
  if (N < 2)
    return;
  const tvp::PredLayout &Lay = *L;
  const unsigned KW = keyWords();
  std::vector<uint64_t> Keys(static_cast<size_t>(N) * KW);
  for (unsigned Node = 0; Node != N; ++Node)
    packKey(Node, Keys.data() + static_cast<size_t>(Node) * KW);

  // Already canonical (keys strictly ascending): blurring is the
  // identity, skip the rebuild.
  bool Sorted = KW > 0;
  for (unsigned Node = 1; Node < N && Sorted; ++Node)
    Sorted = keyLess(Keys.data() + static_cast<size_t>(Node - 1) * KW,
                     Keys.data() + static_cast<size_t>(Node) * KW, KW);
  if (Sorted)
    return;

  // Group nodes by canonical key, ascending (stable: original node
  // order within a group).
  std::vector<unsigned> Ord(N);
  std::iota(Ord.begin(), Ord.end(), 0u);
  std::stable_sort(Ord.begin(), Ord.end(), [&](unsigned L, unsigned R) {
    return keyLess(Keys.data() + static_cast<size_t>(L) * KW,
                   Keys.data() + static_cast<size_t>(R) * KW, KW);
  });
  std::vector<std::pair<unsigned, unsigned>> Groups; // [From, To) into Ord.
  for (unsigned I = 0; I != N;) {
    unsigned J = I + 1;
    while (J != N && keyEq(Keys.data() + static_cast<size_t>(Ord[I]) * KW,
                           Keys.data() + static_cast<size_t>(Ord[J]) * KW, KW))
      ++J;
    Groups.emplace_back(I, J);
    I = J;
  }

  const unsigned OldN = N;
  const unsigned NewN = static_cast<unsigned>(Groups.size());
  size_t TE = totalEntries(Lay, NewN);
  uint32_t NewWords = static_cast<uint32_t>((TE + 31) / 32);
  uint64_t *NW = allocWords(NewWords);
  auto Put = [&](size_t E, uint32_t Val) {
    unsigned Shift = (E & 31) * 2;
    NW[E >> 5] =
        (NW[E >> 5] & ~(3ull << Shift)) | (static_cast<uint64_t>(Val) << Shift);
  };

  for (unsigned G = 0; G != NewN; ++G) {
    auto [From, To] = Groups[G];
    bool Sum = To - From > 1;
    for (unsigned I = From; I != To && !Sum; ++I)
      Sum = isSummary(Ord[I]);
    Put(G, Sum ? 3u : 1u);
  }
  for (unsigned U = 0; U != Lay.NumUnary; ++U) {
    size_t OldBase = static_cast<size_t>(OldN) + static_cast<size_t>(U) * OldN;
    size_t NewBase = static_cast<size_t>(NewN) + static_cast<size_t>(U) * NewN;
    for (unsigned G = 0; G != NewN; ++G) {
      auto [From, To] = Groups[G];
      uint32_t Acc = 0; // Join-encoded: kJoin folds are bitwise OR.
      for (unsigned I = From; I != To; ++I)
        Acc |= entry(OldBase + Ord[I]);
      Put(NewBase + G, Acc);
    }
  }
  size_t OldBin = static_cast<size_t>(OldN) * (1 + Lay.NumUnary);
  size_t NewBin = static_cast<size_t>(NewN) * (1 + Lay.NumUnary);
  for (unsigned B = 0; B != Lay.NumBinary; ++B)
    for (unsigned GI = 0; GI != NewN; ++GI)
      for (unsigned GJ = 0; GJ != NewN; ++GJ) {
        auto [FI, TI] = Groups[GI];
        auto [FJ, TJ] = Groups[GJ];
        uint32_t Acc = 0;
        for (unsigned I = FI; I != TI; ++I)
          for (unsigned J = FJ; J != TJ; ++J)
            Acc |= entry(OldBin + (static_cast<size_t>(B) * OldN + Ord[I]) *
                                      OldN +
                         Ord[J]);
        Put(NewBin + (static_cast<size_t>(B) * NewN + GI) * NewN + GJ, Acc);
      }

  freeWords(W);
  W = NW;
  Words = NewWords;
  N = NewN;
}

std::string Structure::canonicalStr(const tvp::Vocabulary &V) const {
  // Assumes blurred: keys are unique; order nodes by key.
  std::vector<std::pair<std::string, unsigned>> Order;
  for (unsigned Node = 0; Node != N; ++Node)
    Order.emplace_back(keyOf(V, Node), Node);
  std::sort(Order.begin(), Order.end());

  std::string Out;
  for (const auto &[Key, Node] : Order) {
    Out += Key;
    Out += isSummary(Node) ? "S" : ".";
    Out += "|";
  }
  for (size_t P = 0; P != L->Arity.size(); ++P) {
    if (L->Arity[P] != 2)
      continue;
    for (const auto &[KA, A2] : Order)
      for (const auto &[KB, B2] : Order)
        Out += kleeneChar(binary(static_cast<int>(P), A2, B2));
    Out += "|";
  }
  // Unary non-abstraction values (none in the current vocabulary, but
  // keep the rendering complete).
  for (size_t P = 0; P != L->Arity.size(); ++P) {
    if (L->Arity[P] != 1 || L->IsAbs[P])
      continue;
    for (const auto &[K, Node] : Order)
      Out += kleeneChar(unary(static_cast<int>(P), Node));
    Out += "|";
  }
  return Out;
}

uint64_t Structure::structuralHash() const {
  uint64_t H = support::hashMix(N);
  return support::hashCombine(H, support::hashWords(W, Words));
}

bool Structure::operator==(const Structure &O) const {
  return N == O.N && Words == O.Words &&
         (Words == 0 ||
          std::memcmp(W, O.W, Words * sizeof(uint64_t)) == 0);
}

bool Structure::isCanonical(const tvp::Vocabulary &V) const {
  (void)V;
  if (N < 2)
    return true;
  const unsigned KW = keyWords();
  if (KW == 0)
    return false; // No abstraction preds: every key collides.
  std::vector<uint64_t> Prev(KW), Curr(KW);
  packKey(0, Prev.data());
  for (unsigned Node = 1; Node != N; ++Node) {
    packKey(Node, Curr.data());
    if (!keyLess(Prev.data(), Curr.data(), KW))
      return false;
    std::swap(Prev, Curr);
  }
  return true;
}

void Structure::assertCanonical(const tvp::Vocabulary &V) const {
#ifndef NDEBUG
  assert(isCanonical(V) &&
         "structure must be in canonical form (blurred, key-ordered)");
#endif
  (void)V;
}

size_t Structure::approxBytes() const {
  return sizeof(Structure) + static_cast<size_t>(Words) * sizeof(uint64_t);
}

bool Structure::hasDuplicateKeys(const tvp::Vocabulary &V) const {
  (void)V;
  if (N < 2)
    return false;
  const unsigned KW = keyWords();
  if (KW == 0)
    return true;
  std::vector<uint64_t> Keys(static_cast<size_t>(N) * KW);
  for (unsigned Node = 0; Node != N; ++Node)
    packKey(Node, Keys.data() + static_cast<size_t>(Node) * KW);
  std::vector<unsigned> Ord(N);
  std::iota(Ord.begin(), Ord.end(), 0u);
  std::sort(Ord.begin(), Ord.end(), [&](unsigned L, unsigned R) {
    return keyLess(Keys.data() + static_cast<size_t>(L) * KW,
                   Keys.data() + static_cast<size_t>(R) * KW, KW);
  });
  for (unsigned I = 1; I != N; ++I)
    if (keyEq(Keys.data() + static_cast<size_t>(Ord[I - 1]) * KW,
              Keys.data() + static_cast<size_t>(Ord[I]) * KW, KW))
      return true;
  return false;
}

bool Structure::joinWith(const Structure &O, const tvp::Vocabulary &V) {
  bool Changed = false;

  // An input that is not canonically blurred has nodes sharing a key; a
  // key-to-node map would silently drop all but one of them, losing
  // bindings. Blur first instead (merging indistinguishable nodes is
  // the canonical abstraction, never a precision loss beyond it).
  if (hasDuplicateKeys(V)) {
    blur(V);
    Changed = true;
  }
  Structure OBlurred(V);
  const Structure *Other = &O;
  if (O.hasDuplicateKeys(V)) {
    OBlurred = O;
    OBlurred.blur(V);
    Other = &OBlurred;
  }
  const Structure &OC = *Other;
  const unsigned KW = keyWords();

  std::vector<uint64_t> MK(static_cast<size_t>(N) * KW),
      TK(static_cast<size_t>(OC.N) * KW);
  for (unsigned Node = 0; Node != N; ++Node)
    packKey(Node, MK.data() + static_cast<size_t>(Node) * KW);
  for (unsigned Node = 0; Node != OC.N; ++Node)
    OC.packKey(Node, TK.data() + static_cast<size_t>(Node) * KW);

  bool Imported = false;
  bool Smoothed = false;

  if (N == OC.N && MK == TK) {
    // Same canonical key set in the same node order: the matched-node
    // join (summary OR, binary kJoin, unary values already equal) is
    // one word-parallel OR over the packed buffers.
    for (uint32_t I = 0; I != Words; ++I) {
      uint64_t J = W[I] | OC.W[I];
      if (J != W[I]) {
        W[I] = J;
        Changed = true;
      }
    }
  } else {
    // Map canonical keys to node ids on both sides (keys are unique
    // after the blurs above), merging the two sorted orders.
    std::vector<unsigned> OM(N), OT(OC.N);
    std::iota(OM.begin(), OM.end(), 0u);
    std::iota(OT.begin(), OT.end(), 0u);
    auto ByKey = [&](const std::vector<uint64_t> &Keys) {
      return [&Keys, KW](unsigned L, unsigned R) {
        return keyLess(Keys.data() + static_cast<size_t>(L) * KW,
                       Keys.data() + static_cast<size_t>(R) * KW, KW);
      };
    };
    std::sort(OM.begin(), OM.end(), ByKey(MK));
    std::sort(OT.begin(), OT.end(), ByKey(TK));

    std::vector<int> Map(OC.N, -1);
    std::vector<unsigned> Missing; // Their nodes, ascending key order.
    size_t I = 0;
    for (unsigned T : OT) {
      const uint64_t *TKey = TK.data() + static_cast<size_t>(T) * KW;
      while (I != OM.size() &&
             keyLess(MK.data() + static_cast<size_t>(OM[I]) * KW, TKey, KW))
        ++I;
      if (I != OM.size() &&
          keyEq(MK.data() + static_cast<size_t>(OM[I]) * KW, TKey, KW))
        Map[T] = static_cast<int>(OM[I]);
      else
        Missing.push_back(T);
    }

    // Import nodes present only in OC, in ascending key order (one
    // buffer rebuild for the whole batch).
    if (!Missing.empty()) {
      unsigned Fresh = N;
      resizeNodes(N + static_cast<unsigned>(Missing.size()));
      Changed = true;
      Imported = true;
      for (unsigned T : Missing) {
        for (size_t P = 0; P != L->Arity.size(); ++P)
          if (L->Arity[P] == 1)
            setUnary(static_cast<int>(P), Fresh,
                     OC.unary(static_cast<int>(P), T));
        setSummary(Fresh, OC.isSummary(T));
        Map[T] = static_cast<int>(Fresh++);
      }
    }

    // Join summary bits and binary values over matched nodes.
    for (unsigned T = 0; T != OC.N; ++T) {
      unsigned M = static_cast<unsigned>(Map[T]);
      if (OC.isSummary(T) && !isSummary(M)) {
        setSummary(M, true);
        Changed = true;
      }
    }
    for (size_t P = 0; P != L->Arity.size(); ++P) {
      if (L->Arity[P] != 2)
        continue;
      for (unsigned TA = 0; TA != OC.N; ++TA)
        for (unsigned TB = 0; TB != OC.N; ++TB) {
          size_t E = binaryEntry(static_cast<int>(P),
                                 static_cast<unsigned>(Map[TA]),
                                 static_cast<unsigned>(Map[TB]));
          uint32_t Old = entry(E);
          uint32_t J =
              Old | OC.entry(OC.binaryEntry(static_cast<int>(P), TA, TB));
          if (J != Old) {
            setEntry(E, J);
            Changed = true;
          }
        }
    }
  }

  // A variable references exactly one object per execution; after a
  // universe union a points-to predicate definite at two individuals
  // means "one or the other", i.e. 1/2 at each.
  for (size_t P = 0; P != L->Arity.size(); ++P) {
    if (!L->IsVarPT[P])
      continue;
    unsigned Definite = 0;
    for (unsigned Node = 0; Node != N; ++Node)
      Definite += entry(unaryEntry(static_cast<int>(P), Node)) == 2u;
    if (Definite < 2)
      continue;
    for (unsigned Node = 0; Node != N; ++Node) {
      size_t E = unaryEntry(static_cast<int>(P), Node);
      if (entry(E) == 2u) {
        setEntry(E, 3u);
        Changed = true;
        Smoothed = true;
      }
    }
  }

  // Restore the canonical invariant: smoothing flips abstraction
  // predicate values (node keys change, and previously distinguished
  // nodes may now coincide), and imported nodes were appended out of
  // key order. Either way the canonical keys no longer identify nodes
  // until we re-blur.
  if ((Smoothed || Imported) && !isCanonical(V))
    blur(V);
  assertCanonical(V);
  return Changed;
}
