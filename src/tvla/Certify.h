//===----------------------------------------------------------------------===//
///
/// \file
/// The first-order certification engine of Section 5: abstract
/// interpretation of the client over 3-valued structures whose
/// vocabulary combines client points-to predicates with the derived
/// first-order instrumentation predicates (Figs. 10/11), in two
/// configurations (Section 5.5):
///
///  - relational: a set of 3-valued structures per program point;
///  - independent-attribute: a single joined structure per point.
///
/// Component-method calls update the instrumentation predicates via the
/// derived update rules quantified over individuals; value-returning
/// methods proved fresh-returning are modeled as allocations.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVLA_CERTIFY_H
#define CANVAS_TVLA_CERTIFY_H

#include "boolprog/Analysis.h"
#include "client/CFG.h"
#include "easl/AST.h"
#include "tvla/Structure.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace tvla {

struct TVLAResult {
  struct Chk {
    SourceLoc Loc;
    std::string What;
    bp::CheckOutcome Outcome;
  };
  std::vector<Chk> Checks;
  unsigned Iterations = 0;
  /// Peak number of structures kept at one program point (1 for the
  /// independent-attribute engine).
  unsigned MaxStructuresPerPoint = 0;
  /// Relational engine only: distinct structures admitted to the
  /// hash-consing pool over the whole fixpoint.
  uint64_t InternedStructures = 0;
  /// Relational engine only: (StructId, edge) transfer evaluations
  /// served from the memo table / computed fresh.
  uint64_t TransferCacheHits = 0;
  uint64_t TransferCacheMisses = 0;
};

/// The engine's fixpoint annotation: the structures resident at each
/// program point when the worklist drained (empty inner vector =
/// unreachable point). Relational configuration: the per-point set in
/// deterministic insertion order; independent-attribute: exactly one
/// structure per reached point. This is the evidence a proof-carrying
/// certificate serializes for cert::Checker.
struct PointAnnotation {
  std::vector<std::vector<Structure>> PerNode;
};

struct TVLAOptions {
  bool Relational = false;
  /// Relational engine: structures kept per point before the engine
  /// joins overflow structures together (precision, not soundness, is
  /// lost at the cap).
  unsigned MaxStructuresPerPoint = 256;
  /// Optional budget handle bounding the fixpoint (not owned); ticked
  /// once per worklist pop and informed of the resident structure
  /// population. See support/Budget.h.
  support::CancelToken *Cancel = nullptr;
  /// When non-null, receives the final per-point structure sets (not
  /// owned; overwritten).
  PointAnnotation *AnnotationOut = nullptr;
};

/// Certifies one client method.
TVLAResult certifyWithTVLA(const easl::Spec &Spec,
                           const wp::DerivedAbstraction &Abs,
                           const cj::CFGMethod &M, bool Relational,
                           DiagnosticEngine &Diags);

TVLAResult certifyWithTVLA(const easl::Spec &Spec,
                           const wp::DerivedAbstraction &Abs,
                           const cj::CFGMethod &M, const TVLAOptions &Opts,
                           DiagnosticEngine &Diags);

} // namespace tvla
} // namespace canvas

#endif // CANVAS_TVLA_CERTIFY_H
