#include "tvla/Certify.h"

#include "support/Interner.h"
#include "tvla/Structure.h"

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace canvas;
using namespace canvas::tvla;
using namespace canvas::wp;

namespace {

/// Candidate bindings for one argument of a predicate application: a
/// fixed individual (quantified slot) or a points-to weighted choice
/// (binder).
struct ArgChoice {
  bool Fixed = false;
  unsigned Node = 0;
  int PtPred = -1; ///< Valid when !Fixed.
  std::string Binder;
};

class TVLAEngine {
public:
  TVLAEngine(const easl::Spec &Spec, const DerivedAbstraction &Abs,
             const cj::CFGMethod &M, const TVLAOptions &Opts,
             DiagnosticEngine &Diags)
      : Spec(Spec), Abs(Abs), M(M), Opts(Opts), Diags(Diags),
        Vocab(tvp::buildVocabulary(Abs, M, Diags)) {
    (void)this->Spec;
    FamPred.assign(Abs.Families.size(), -1);
    for (size_t F = 0; F != Abs.Families.size(); ++F)
      FamPred[F] = Vocab.findInstrPred(static_cast<int>(F));
  }

  TVLAResult run() {
    enumerateChecks();
    fixpoint();
    return finish();
  }

private:
  //===------------------------------------------------------------------===//
  // Check bookkeeping
  //===------------------------------------------------------------------===//

  struct ChkAcc {
    SourceLoc Loc;
    std::string What;
    bool Seen = false;
    Kleene Acc = Kleene::False;
  };

  const MethodAbstraction *abstractionFor(const cj::Action &A) const {
    if (A.K == cj::Action::Kind::AllocComp)
      return Abs.findMethod(A.Callee, "new");
    if (A.K != cj::Action::Kind::CompCall)
      return nullptr;
    for (const auto &[V, T] : M.CompVars)
      if (V == A.Recv)
        return Abs.findMethod(T, A.Callee);
    return nullptr;
  }

  void enumerateChecks() {
    for (size_t E = 0; E != M.Edges.size(); ++E) {
      const MethodAbstraction *MA = abstractionFor(M.Edges[E].Act);
      if (!MA)
        continue;
      for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
        ChkAcc C;
        C.Loc = M.Edges[E].Act.Loc;
        C.What = M.Edges[E].Act.str() + " requires !" +
                 MA->RequiresFalse[R].first.str(Abs.Families);
        ChkIndex[{static_cast<int>(E), static_cast<int>(R)}] =
            static_cast<int>(Checks.size());
        Checks.push_back(std::move(C));
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Predicate application evaluation
  //===------------------------------------------------------------------===//

  using Binding = std::map<std::string, int>; ///< Binder -> pt pred.

  /// Evaluates OR over binder assignments of
  /// AND(points-to weights, instrumentation value), reading
  /// instrumentation values from \p Snapshot.
  Kleene evalApp(const Structure &S, const Structure &Snapshot,
                 const PredApp &App,
                 const std::map<std::string, unsigned> &QNodes,
                 const Binding &Binders) {
    int P = FamPred[App.Family];
    if (P < 0)
      return Kleene::Half; // Unsupported arity: conservative.
    std::vector<ArgChoice> Choices(App.Args.size());
    for (size_t I = 0; I != App.Args.size(); ++I) {
      const std::string &A = App.Args[I];
      auto QIt = QNodes.find(A);
      if (QIt != QNodes.end()) {
        Choices[I].Fixed = true;
        Choices[I].Node = QIt->second;
        continue;
      }
      auto BIt = Binders.find(A);
      if (BIt == Binders.end())
        return Kleene::Half; // Unknown binder: conservative.
      Choices[I].PtPred = BIt->second;
      Choices[I].Binder = A;
    }
    return evalChoices(S, Snapshot, P, Choices, 0, {}, {}, Kleene::True);
  }

  Kleene evalChoices(const Structure &S, const Structure &Snapshot, int P,
                     std::vector<ArgChoice> &Choices, size_t I,
                     std::vector<unsigned> Tuple,
                     std::map<std::string, unsigned> Bound, Kleene Weight) {
    if (Weight == Kleene::False)
      return Kleene::False;
    if (I == Choices.size())
      return kAnd(Weight, Snapshot.at(P, Tuple));
    const ArgChoice &C = Choices[I];
    if (C.Fixed) {
      Tuple.push_back(C.Node);
      return evalChoices(S, Snapshot, P, Choices, I + 1, std::move(Tuple),
                         std::move(Bound), Weight);
    }
    auto BIt = Bound.find(C.Binder);
    if (BIt != Bound.end()) {
      Tuple.push_back(BIt->second);
      return evalChoices(S, Snapshot, P, Choices, I + 1, std::move(Tuple),
                         std::move(Bound), Weight);
    }
    Kleene Acc = Kleene::False;
    for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
      Kleene Pt = S.unary(C.PtPred, Node);
      if (Pt == Kleene::False)
        continue;
      std::vector<unsigned> T2 = Tuple;
      T2.push_back(Node);
      std::map<std::string, unsigned> B2 = Bound;
      B2[C.Binder] = Node;
      Acc = kOr(Acc, evalChoices(S, Snapshot, P, Choices, I + 1,
                                 std::move(T2), std::move(B2),
                                 kAnd(Weight, Pt)));
      if (Acc == Kleene::True)
        return Acc;
    }
    return Acc;
  }

  //===------------------------------------------------------------------===//
  // Transfer
  //===------------------------------------------------------------------===//

  std::string typeOfVar(const std::string &V) const {
    for (const auto &[Name, T] : M.CompVars)
      if (Name == V)
        return T;
    return "";
  }

  bool nodeHasType(const Structure &S, unsigned Node,
                   const std::string &Type) const {
    int P = Vocab.findTypePred(Type);
    return P >= 0 && S.unary(P, Node) == Kleene::True;
  }

  void havocVar(Structure &S, const std::string &Var) {
    std::string T = typeOfVar(Var);
    // A fresh, unconstrained, possibly-aliasing object of the right
    // type.
    unsigned U = S.addNode();
    S.setSummary(U, true);
    if (int TP = Vocab.findTypePred(T); TP >= 0)
      S.setUnary(TP, U, Kleene::True);
    setInstrHalfAround(S, U);
    int VP = Vocab.findVarPred(Var);
    for (unsigned Node = 0; Node != S.numNodes(); ++Node)
      S.setUnary(VP, Node,
                 nodeHasType(S, Node, T) ? Kleene::Half : Kleene::False);
  }

  /// Sets every instrumentation tuple involving \p U (with matching slot
  /// types) to 1/2.
  void setInstrHalfAround(Structure &S, unsigned U) {
    for (size_t F = 0; F != Abs.Families.size(); ++F) {
      int P = FamPred[F];
      if (P < 0)
        continue;
      const PredicateFamily &Fam = Abs.Families[F];
      if (Fam.arity() == 1) {
        if (nodeHasType(S, U, Fam.VarTypes[0]))
          S.setUnary(P, U, Kleene::Half);
        continue;
      }
      for (unsigned O = 0; O != S.numNodes(); ++O) {
        if (nodeHasType(S, U, Fam.VarTypes[0]) &&
            nodeHasType(S, O, Fam.VarTypes[1]))
          S.setBinary(P, U, O, Kleene::Half);
        if (nodeHasType(S, O, Fam.VarTypes[0]) &&
            nodeHasType(S, U, Fam.VarTypes[1]))
          S.setBinary(P, O, U, Kleene::Half);
      }
    }
  }

  void clobberInstr(Structure &S) {
    for (size_t F = 0; F != Abs.Families.size(); ++F) {
      int P = FamPred[F];
      if (P < 0)
        continue;
      const PredicateFamily &Fam = Abs.Families[F];
      for (unsigned A = 0; A != S.numNodes(); ++A) {
        if (!nodeHasType(S, A, Fam.VarTypes[0]))
          continue;
        if (Fam.arity() == 1) {
          S.setUnary(P, A, Kleene::Half);
          continue;
        }
        for (unsigned B = 0; B != S.numNodes(); ++B)
          if (nodeHasType(S, B, Fam.VarTypes[1]))
            S.setBinary(P, A, B, Kleene::Half);
      }
    }
  }

  /// Applies one CFG action to a structure; returns the successor
  /// structure (always exactly one — variable predicates stay definite,
  /// so no focus is required) and records requires evaluations. Sets
  /// \p Dead when no execution continues past the edge (every path
  /// violates a requires clause and throws).
  Structure transfer(const Structure &In, int EdgeIdx, bool &Dead) {
    const cj::Action &A = M.Edges[EdgeIdx].Act;
    Structure S = In;
    switch (A.K) {
    case cj::Action::Kind::Nop:
      return S;
    case cj::Action::Kind::Copy: {
      int L = Vocab.findVarPred(A.Lhs);
      int R = Vocab.findVarPred(A.Args[0]);
      for (unsigned Node = 0; Node != S.numNodes(); ++Node)
        S.setUnary(L, Node, S.unary(R, Node));
      S.blur(Vocab);
      return S;
    }
    case cj::Action::Kind::Havoc:
      havocVar(S, A.Lhs);
      S.blur(Vocab);
      return S;
    case cj::Action::Kind::ClientCall:
    case cj::Action::Kind::OpaqueEffect:
      clobberInstr(S);
      if (!A.Lhs.empty())
        havocVar(S, A.Lhs);
      S.blur(Vocab);
      return S;
    case cj::Action::Kind::AllocComp:
    case cj::Action::Kind::CompCall:
      return transferComponentCall(S, EdgeIdx, A, Dead);
    }
    return S;
  }

  Structure transferComponentCall(Structure S, int EdgeIdx,
                                  const cj::Action &A, bool &Dead) {
    const MethodAbstraction *MA = abstractionFor(A);
    if (!MA) {
      clobberInstr(S);
      S.blur(Vocab);
      return S;
    }

    // Binder environment: binder name -> pt predicate.
    Binding Binders;
    if (MA->HasThis)
      Binders["this"] = Vocab.findVarPred(A.Recv);
    for (size_t I = 0; I != MA->Params.size() && I != A.Args.size(); ++I)
      Binders[MA->Params[I].first] = Vocab.findVarPred(A.Args[I]);

    // 1. Requires obligations against the pre-state; a failed clause
    // throws, so continuing executions satisfied it (assume-refinement).
    for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
      const PredApp &App = MA->RequiresFalse[R].first;
      Kleene V = evalApp(S, S, App, {}, Binders);
      ChkAcc &C = Checks[ChkIndex[{EdgeIdx, static_cast<int>(R)}]];
      C.Acc = C.Seen ? kJoin(C.Acc, V) : V;
      C.Seen = true;
      if (V == Kleene::True) {
        Dead = true; // Every execution throws here.
        return S;
      }
      if (V == Kleene::Half)
        assumeAppFalse(S, App, Binders);
    }

    // 2. Result modeling.
    bool NewNode = A.K == cj::Action::Kind::AllocComp ||
                   (!A.Lhs.empty() && MA->ReturnsFresh);
    bool HavocLhsAfter = !A.Lhs.empty() && !NewNode;
    unsigned N = 0;
    if (NewNode) {
      N = S.addNode();
      if (int TP = Vocab.findTypePred(MA->ReturnType); TP >= 0)
        S.setUnary(TP, N, Kleene::True);
      int VP = Vocab.findVarPred(A.Lhs);
      for (unsigned Node = 0; Node != S.numNodes(); ++Node)
        S.setUnary(VP, Node, kleeneOf(Node == N));
    }

    // 3. Instrumentation updates from the derived rules (parallel:
    // sources read the snapshot).
    Structure Snapshot = S;
    for (const UpdateRule &R : MA->Rules) {
      if (R.IsIdentity)
        continue;
      int P = FamPred[R.Family];
      if (P < 0)
        continue;
      bool UsesRet = false;
      for (bool B : R.RetSlots)
        UsesRet |= B;
      if (UsesRet && !NewNode)
        continue;
      applyRule(S, Snapshot, R, Binders, NewNode, N);
    }
    // Tuples of the new node for masks the derivation folded away as
    // constants (e.g. same(ret, ret) == 1).
    if (NewNode)
      applyConstantDiagonals(S, N);

    if (HavocLhsAfter) {
      Diags.warning(A.Loc, "result of '" + A.str() +
                               "' is not provably fresh; treating "
                               "conservatively");
      havocVar(S, A.Lhs);
    }
    S.blur(Vocab);
    return S;
  }

  /// Assume-refinement: on executions continuing past the check, the
  /// requires predicate was false. When every binder resolves to one
  /// definite individual, the instrumentation value at that tuple is
  /// forced to 0.
  void assumeAppFalse(Structure &S, const PredApp &App,
                      const Binding &Binders) {
    int P = FamPred[App.Family];
    if (P < 0)
      return;
    std::vector<unsigned> Tuple;
    std::map<std::string, unsigned> Bound;
    for (const std::string &Arg : App.Args) {
      auto BIt = Binders.find(Arg);
      if (BIt == Binders.end())
        return;
      auto Prev = Bound.find(Arg);
      if (Prev != Bound.end()) {
        Tuple.push_back(Prev->second);
        continue;
      }
      int Definite = -1;
      for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
        Kleene Pt = S.unary(BIt->second, Node);
        if (Pt == Kleene::Half)
          return; // Indefinite pointer: cannot refine strongly.
        if (Pt == Kleene::True) {
          if (Definite >= 0)
            return;
          Definite = static_cast<int>(Node);
        }
      }
      if (Definite < 0 || S.isSummary(Definite))
        return;
      Bound[Arg] = static_cast<unsigned>(Definite);
      Tuple.push_back(static_cast<unsigned>(Definite));
    }
    S.setAt(P, Tuple, Kleene::False);
  }

  void applyRule(Structure &S, const Structure &Snapshot,
                 const UpdateRule &R, const Binding &Binders, bool NewNode,
                 unsigned N) {
    const PredicateFamily &Fam = Abs.Families[R.Family];
    int P = FamPred[R.Family];
    std::vector<unsigned> Tuple(Fam.arity());
    enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N, 0, Tuple);
  }

  void enumerateTargets(Structure &S, const Structure &Snapshot,
                        const UpdateRule &R, const PredicateFamily &Fam,
                        int P, const Binding &Binders, bool NewNode,
                        unsigned N, unsigned Slot,
                        std::vector<unsigned> &Tuple) {
    if (Slot == Fam.arity()) {
      std::map<std::string, unsigned> QNodes;
      for (unsigned I = 0; I != Fam.arity(); ++I)
        if (!R.RetSlots[I])
          QNodes["$q" + std::to_string(I)] = Tuple[I];
      Kleene V = R.ConstantTrue ? Kleene::True : Kleene::False;
      for (const PredApp &Src : R.Sources) {
        if (V == Kleene::True)
          break;
        V = kOr(V, evalApp(Snapshot, Snapshot, Src, QNodes, Binders));
      }
      S.setAt(P, Tuple, V);
      return;
    }
    if (R.RetSlots[Slot]) {
      Tuple[Slot] = N;
      enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N,
                       Slot + 1, Tuple);
      return;
    }
    for (unsigned Node = 0; Node != S.numNodes(); ++Node) {
      if (NewNode && Node == N)
        continue; // The fresh node's tuples come from ret rules.
      if (!nodeHasType(S, Node, Fam.VarTypes[Slot]))
        continue;
      Tuple[Slot] = Node;
      enumerateTargets(S, Snapshot, R, Fam, P, Binders, NewNode, N,
                       Slot + 1, Tuple);
    }
  }

  void applyConstantDiagonals(Structure &S, unsigned N) {
    for (size_t F = 0; F != Abs.Families.size(); ++F) {
      int P = FamPred[F];
      if (P < 0 || Abs.Families[F].arity() != 2)
        continue;
      const PredicateFamily &Fam = Abs.Families[F];
      if (Fam.VarTypes[0] != Fam.VarTypes[1])
        continue;
      Conjunction Body;
      InstResult IR = instantiateFamily(Fam, {"$d", "$d"},
                                        Fam.VarTypes, Body);
      if (IR == InstResult::True)
        S.setBinary(P, N, N, Kleene::True);
      else if (IR == InstResult::False)
        S.setBinary(P, N, N, Kleene::False);
      // Non-constant diagonals were handled by a (ret, ret) rule.
    }
  }

  //===------------------------------------------------------------------===//
  // Fixpoint
  //===------------------------------------------------------------------===//

  /// Hash-consing functor for the structure pool.
  struct StructureHasher {
    uint64_t operator()(const Structure &S) const {
      return S.structuralHash();
    }
  };
  using StructPool = support::InternPool<Structure, StructureHasher>;

  /// Interns \p S, charging the allocation budget when the pool admits
  /// a genuinely new structure.
  support::InternId internStructure(StructPool &Pool, Structure S) {
    size_t Before = Pool.size();
    support::InternId Id = Pool.intern(std::move(S));
    if (Pool.size() != Before && Opts.Cancel)
      Opts.Cancel->addAllocation(Pool.get(Id).approxBytes());
    return Id;
  }

  void fixpoint() {
    if (Opts.Relational)
      fixpointRelational();
    else
      fixpointIndependent();
  }

  /// Relational configuration: per-point sets of interned StructIds
  /// over one hash-consed pool, with transfer results memoized per
  /// (StructId, edge). Structure identity is an integer comparison;
  /// the O(preds * N^2) canonical string is never built on this path.
  void fixpointRelational() {
    StructPool Pool;
    /// Resident ids per point, in deterministic insertion order (the
    /// order transfers visit them), plus a hash-set mirror for O(1)
    /// dedup lookups.
    std::vector<std::vector<support::InternId>> Order(M.NumNodes);
    std::vector<std::unordered_set<support::InternId>> Set(M.NumNodes);
    /// (StructId << 32 | edge) -> (dead, result id). A hit replays the
    /// cached result; the check accumulations the original run
    /// performed are Kleene joins of identical values, so skipping the
    /// re-evaluation is observationally identical.
    std::unordered_map<uint64_t, std::pair<bool, support::InternId>> Memo;

    support::InternId InitId = internStructure(Pool, Structure(Vocab));
    Order[M.Entry].push_back(InitId);
    Set[M.Entry].insert(InitId);

    std::vector<std::vector<int>> OutEdges(M.NumNodes);
    for (size_t E = 0; E != M.Edges.size(); ++E)
      OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

    // Resident structures across all program points, for the budget's
    // structure ceiling.
    uint64_t TotalStructs = 1;

    std::deque<int> Worklist{M.Entry};
    std::vector<bool> Queued(M.NumNodes, false);
    Queued[M.Entry] = true;
    while (!Worklist.empty()) {
      support::faultProbe("tvla.fixpoint");
      if (Opts.Cancel) {
        Opts.Cancel->tick();
        Opts.Cancel->noteStructures(TotalStructs);
      }
      int Node = Worklist.front();
      Worklist.pop_front();
      Queued[Node] = false;
      ++Result.Iterations;

      // Snapshot the resident ids: insertions at To == Node must not
      // be transferred in this same visit (they requeue the node).
      std::vector<support::InternId> InIds = Order[Node];
      Result.MaxStructuresPerPoint =
          std::max(Result.MaxStructuresPerPoint,
                   static_cast<unsigned>(InIds.size()));

      for (int EIdx : OutEdges[Node]) {
        int To = M.Edges[EIdx].To;
        for (support::InternId InId : InIds) {
          uint64_t Key = (static_cast<uint64_t>(InId) << 32) |
                         static_cast<uint32_t>(EIdx);
          bool Dead = false;
          support::InternId OutId = 0;
          auto MIt = Memo.find(Key);
          if (MIt != Memo.end()) {
            ++Result.TransferCacheHits;
            Dead = MIt->second.first;
            OutId = MIt->second.second;
          } else {
            ++Result.TransferCacheMisses;
            Structure Out = transfer(Pool.get(InId), EIdx, Dead);
            if (!Dead)
              OutId = internStructure(Pool, std::move(Out));
            Memo.emplace(Key, std::make_pair(Dead, OutId));
          }
          if (Dead)
            continue;

          bool Changed = false;
          if (!Set[To].count(OutId)) {
            if (Order[To].size() < Opts.MaxStructuresPerPoint) {
              Set[To].insert(OutId);
              Order[To].push_back(OutId);
              Changed = true;
              ++TotalStructs;
            } else {
              // Cap: fold the overflow structure into the oldest
              // resident. The join changes the victim's canonical
              // identity, so it must be RE-KEYED — interned under its
              // fresh identity and replaced in the resident set — or
              // later dedup lookups would miss it (and a semantically
              // identical state could be admitted twice).
              support::InternId VictimId = Order[To].front();
              Structure Joined = Pool.get(VictimId);
              Changed = Joined.joinWith(Pool.get(OutId), Vocab);
              if (Changed) {
                support::InternId NewId =
                    internStructure(Pool, std::move(Joined));
                Set[To].erase(VictimId);
                if (Set[To].insert(NewId).second) {
                  Order[To].front() = NewId;
                } else {
                  // The joined state already resides at this point:
                  // the victim's slot collapses into it.
                  Order[To].erase(Order[To].begin());
                  --TotalStructs;
                }
              }
            }
          }
          if (Changed && !Queued[To]) {
            Queued[To] = true;
            Worklist.push_back(To);
          }
        }
      }
    }

    Result.InternedStructures = Pool.size();
  }

  /// Independent-attribute configuration: a single joined structure per
  /// program point.
  void fixpointIndependent() {
    std::vector<Structure> Ind(M.NumNodes, Structure(Vocab));
    std::vector<bool> Reached(M.NumNodes, false);
    Ind[M.Entry] = Structure(Vocab);
    Reached[M.Entry] = true;

    std::vector<std::vector<int>> OutEdges(M.NumNodes);
    for (size_t E = 0; E != M.Edges.size(); ++E)
      OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

    uint64_t TotalStructs = 1;

    std::deque<int> Worklist{M.Entry};
    std::vector<bool> Queued(M.NumNodes, false);
    Queued[M.Entry] = true;
    while (!Worklist.empty()) {
      support::faultProbe("tvla.fixpoint");
      if (Opts.Cancel) {
        Opts.Cancel->tick();
        Opts.Cancel->noteStructures(TotalStructs);
      }
      int Node = Worklist.front();
      Worklist.pop_front();
      Queued[Node] = false;
      ++Result.Iterations;
      Result.MaxStructuresPerPoint =
          std::max(Result.MaxStructuresPerPoint, 1u);

      for (int EIdx : OutEdges[Node]) {
        int To = M.Edges[EIdx].To;
        bool Dead = false;
        Structure Out = transfer(Ind[Node], EIdx, Dead);
        if (Dead)
          continue;
        bool Changed = false;
        if (!Reached[To]) {
          Ind[To] = std::move(Out);
          Changed = true;
          ++TotalStructs;
          if (Opts.Cancel)
            Opts.Cancel->addAllocation(Ind[To].approxBytes());
        } else {
          Changed = Ind[To].joinWith(Out, Vocab);
        }
        Reached[To] = true;
        if (Changed && !Queued[To]) {
          Queued[To] = true;
          Worklist.push_back(To);
        }
      }
    }
  }

  TVLAResult finish() {
    for (ChkAcc &C : Checks) {
      TVLAResult::Chk Out;
      Out.Loc = C.Loc;
      Out.What = C.What;
      if (!C.Seen)
        Out.Outcome = bp::CheckOutcome::Unreachable;
      else if (C.Acc == Kleene::False)
        Out.Outcome = bp::CheckOutcome::Safe;
      else if (C.Acc == Kleene::True)
        Out.Outcome = bp::CheckOutcome::Definite;
      else
        Out.Outcome = bp::CheckOutcome::Potential;
      Result.Checks.push_back(std::move(Out));
    }
    return std::move(Result);
  }

  const easl::Spec &Spec;
  const DerivedAbstraction &Abs;
  const cj::CFGMethod &M;
  TVLAOptions Opts;
  DiagnosticEngine &Diags;
  tvp::Vocabulary Vocab;
  std::vector<int> FamPred;
  std::vector<ChkAcc> Checks;
  std::map<std::pair<int, int>, int> ChkIndex;
  TVLAResult Result;
};

} // namespace

TVLAResult tvla::certifyWithTVLA(const easl::Spec &Spec,
                                 const DerivedAbstraction &Abs,
                                 const cj::CFGMethod &M, bool Relational,
                                 DiagnosticEngine &Diags) {
  TVLAOptions Opts;
  Opts.Relational = Relational;
  return certifyWithTVLA(Spec, Abs, M, Opts, Diags);
}

TVLAResult tvla::certifyWithTVLA(const easl::Spec &Spec,
                                 const DerivedAbstraction &Abs,
                                 const cj::CFGMethod &M,
                                 const TVLAOptions &Opts,
                                 DiagnosticEngine &Diags) {
  return TVLAEngine(Spec, Abs, M, Opts, Diags).run();
}
