#include "tvla/Certify.h"

#include "support/Interner.h"
#include "tvla/Structure.h"
#include "tvla/Transfer.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace canvas;
using namespace canvas::tvla;
using namespace canvas::wp;

namespace {

/// The fixpoint driver over the shared tvla::Transfer evaluator: two
/// worklist configurations (relational / independent-attribute) plus
/// verdict synthesis from the accumulated check evaluations. Everything
/// semantic about edges lives in Transfer; everything here is driver
/// machinery (worklists, interning, memoization, caps, budgets) that
/// the certificate checker must not depend on.
class TVLAEngine {
public:
  TVLAEngine(const easl::Spec &Spec, const DerivedAbstraction &Abs,
             const cj::CFGMethod &M, const TVLAOptions &Opts,
             DiagnosticEngine &Diags)
      : Spec(Spec), M(M), Opts(Opts), T(Abs, M, Diags), Acc(T.makeAccum()),
        Scratch(Opts.Cancel) {
    (void)this->Spec;
    // Per-visit temporaries (edge images, snapshots, blur rebuilds) bump
    // out of the engine-owned arena; everything that survives a visit is
    // detached to the heap by interning / copy-assignment.
    T.setScratchArena(&Scratch);
  }

  TVLAResult run() {
    fixpoint();
    return finish();
  }

private:
  /// Hash-consing functor for the structure pool.
  struct StructureHasher {
    uint64_t operator()(const Structure &S) const {
      return S.structuralHash();
    }
  };
  using StructPool = support::InternPool<Structure, StructureHasher>;

  /// Interns \p S (copying — and detaching any arena-backed value to
  /// the heap — only on a genuine miss), charging the allocation budget
  /// when the pool admits a new structure.
  support::InternId internStructure(StructPool &Pool, const Structure &S) {
    size_t Before = Pool.size();
    support::InternId Id = Pool.internRef(S);
    if (Pool.size() != Before && Opts.Cancel)
      Opts.Cancel->addAllocation(Pool.get(Id).approxBytes());
    return Id;
  }

  void fixpoint() {
    if (Opts.Relational)
      fixpointRelational();
    else
      fixpointIndependent();
  }

  /// Relational configuration: per-point sets of interned StructIds
  /// over one hash-consed pool, with transfer results memoized per
  /// (StructId, edge). Structure identity is an integer comparison;
  /// the O(preds * N^2) canonical string is never built on this path.
  void fixpointRelational() {
    StructPool Pool;
    /// Resident ids per point, in deterministic insertion order (the
    /// order transfers visit them), plus a hash-set mirror for O(1)
    /// dedup lookups.
    std::vector<std::vector<support::InternId>> Order(M.NumNodes);
    std::vector<std::unordered_set<support::InternId>> Set(M.NumNodes);
    /// (StructId << 32 | edge) -> (dead, result id). A hit replays the
    /// cached result; the check accumulations the original run
    /// performed are Kleene joins of identical values, so skipping the
    /// re-evaluation is observationally identical.
    std::unordered_map<uint64_t, std::pair<bool, support::InternId>> Memo;

    support::InternId InitId =
        internStructure(Pool, Structure(T.vocabulary()));
    Order[M.Entry].push_back(InitId);
    Set[M.Entry].insert(InitId);

    std::vector<std::vector<int>> OutEdges(M.NumNodes);
    for (size_t E = 0; E != M.Edges.size(); ++E)
      OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

    // Resident structures across all program points, for the budget's
    // structure ceiling.
    uint64_t TotalStructs = 1;

    std::deque<int> Worklist{M.Entry};
    std::vector<bool> Queued(M.NumNodes, false);
    Queued[M.Entry] = true;
    while (!Worklist.empty()) {
      support::faultProbe("tvla.fixpoint");
      if (Opts.Cancel) {
        Opts.Cancel->tick();
        Opts.Cancel->noteStructures(TotalStructs);
      }
      int Node = Worklist.front();
      Worklist.pop_front();
      Queued[Node] = false;
      ++Result.Iterations;
      Scratch.reset(); // Nothing arena-backed survives a visit.

      // Snapshot the resident ids: insertions at To == Node must not
      // be transferred in this same visit (they requeue the node).
      std::vector<support::InternId> InIds = Order[Node];
      Result.MaxStructuresPerPoint =
          std::max(Result.MaxStructuresPerPoint,
                   static_cast<unsigned>(InIds.size()));

      for (int EIdx : OutEdges[Node]) {
        int To = M.Edges[EIdx].To;
        for (support::InternId InId : InIds) {
          uint64_t Key = (static_cast<uint64_t>(InId) << 32) |
                         static_cast<uint32_t>(EIdx);
          bool Dead = false;
          support::InternId OutId = 0;
          auto MIt = Memo.find(Key);
          if (MIt != Memo.end()) {
            ++Result.TransferCacheHits;
            Dead = MIt->second.first;
            OutId = MIt->second.second;
          } else {
            ++Result.TransferCacheMisses;
            Structure Out = T.apply(Pool.get(InId), EIdx, Dead, &Acc);
            if (!Dead)
              OutId = internStructure(Pool, Out);
            Memo.emplace(Key, std::make_pair(Dead, OutId));
          }
          if (Dead)
            continue;

          bool Changed = false;
          if (!Set[To].count(OutId)) {
            if (Order[To].size() < Opts.MaxStructuresPerPoint) {
              Set[To].insert(OutId);
              Order[To].push_back(OutId);
              Changed = true;
              ++TotalStructs;
            } else {
              // Cap: fold the overflow structure into the oldest
              // resident. The join changes the victim's canonical
              // identity, so it must be RE-KEYED — interned under its
              // fresh identity and replaced in the resident set — or
              // later dedup lookups would miss it (and a semantically
              // identical state could be admitted twice).
              support::InternId VictimId = Order[To].front();
              Structure Joined(Pool.get(VictimId), Scratch);
              Changed = Joined.joinWith(Pool.get(OutId), T.vocabulary());
              if (Changed) {
                support::InternId NewId = internStructure(Pool, Joined);
                Set[To].erase(VictimId);
                if (Set[To].insert(NewId).second) {
                  Order[To].front() = NewId;
                } else {
                  // The joined state already resides at this point:
                  // the victim's slot collapses into it.
                  Order[To].erase(Order[To].begin());
                  --TotalStructs;
                }
              }
            }
          }
          if (Changed && !Queued[To]) {
            Queued[To] = true;
            Worklist.push_back(To);
          }
        }
      }
    }

    Result.InternedStructures = Pool.size();
    if (Opts.AnnotationOut) {
      Opts.AnnotationOut->PerNode.assign(M.NumNodes, {});
      for (int N = 0; N != M.NumNodes; ++N)
        for (support::InternId Id : Order[N])
          Opts.AnnotationOut->PerNode[N].push_back(Pool.get(Id));
    }
  }

  /// Independent-attribute configuration: a single joined structure per
  /// program point.
  void fixpointIndependent() {
    std::vector<Structure> Ind(M.NumNodes, Structure(T.vocabulary()));
    std::vector<bool> Reached(M.NumNodes, false);
    Ind[M.Entry] = Structure(T.vocabulary());
    Reached[M.Entry] = true;

    std::vector<std::vector<int>> OutEdges(M.NumNodes);
    for (size_t E = 0; E != M.Edges.size(); ++E)
      OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

    uint64_t TotalStructs = 1;

    std::deque<int> Worklist{M.Entry};
    std::vector<bool> Queued(M.NumNodes, false);
    Queued[M.Entry] = true;
    while (!Worklist.empty()) {
      support::faultProbe("tvla.fixpoint");
      if (Opts.Cancel) {
        Opts.Cancel->tick();
        Opts.Cancel->noteStructures(TotalStructs);
      }
      int Node = Worklist.front();
      Worklist.pop_front();
      Queued[Node] = false;
      ++Result.Iterations;
      Scratch.reset();
      Result.MaxStructuresPerPoint =
          std::max(Result.MaxStructuresPerPoint, 1u);

      for (int EIdx : OutEdges[Node]) {
        int To = M.Edges[EIdx].To;
        bool Dead = false;
        Structure Out = T.apply(Ind[Node], EIdx, Dead, &Acc);
        if (Dead)
          continue;
        bool Changed = false;
        if (!Reached[To]) {
          Ind[To] = std::move(Out);
          Changed = true;
          ++TotalStructs;
          if (Opts.Cancel)
            Opts.Cancel->addAllocation(Ind[To].approxBytes());
        } else {
          Changed = Ind[To].joinWith(Out, T.vocabulary());
        }
        Reached[To] = true;
        if (Changed && !Queued[To]) {
          Queued[To] = true;
          Worklist.push_back(To);
        }
      }
    }

    if (Opts.AnnotationOut) {
      Opts.AnnotationOut->PerNode.assign(M.NumNodes, {});
      for (int N = 0; N != M.NumNodes; ++N)
        if (Reached[N])
          Opts.AnnotationOut->PerNode[N].push_back(Ind[N]);
    }
  }

  TVLAResult finish() {
    const std::vector<TransferCheck> &Checks = T.checks();
    for (size_t I = 0; I != Checks.size(); ++I) {
      const CheckAccum::Cell &C = Acc.Cells[I];
      TVLAResult::Chk Out;
      Out.Loc = Checks[I].Loc;
      Out.What = Checks[I].What;
      if (!C.Seen)
        Out.Outcome = bp::CheckOutcome::Unreachable;
      else if (C.Acc == Kleene::False)
        Out.Outcome = bp::CheckOutcome::Safe;
      else if (C.Acc == Kleene::True)
        Out.Outcome = bp::CheckOutcome::Definite;
      else
        Out.Outcome = bp::CheckOutcome::Potential;
      Result.Checks.push_back(std::move(Out));
    }
    return std::move(Result);
  }

  const easl::Spec &Spec;
  const cj::CFGMethod &M;
  TVLAOptions Opts;
  Transfer T;
  CheckAccum Acc;
  TVLAResult Result;
  /// Per-visit scratch arena (reset at each worklist pop); new block
  /// mappings are charged to the allocation budget.
  support::Arena Scratch;
};

} // namespace

TVLAResult tvla::certifyWithTVLA(const easl::Spec &Spec,
                                 const DerivedAbstraction &Abs,
                                 const cj::CFGMethod &M, bool Relational,
                                 DiagnosticEngine &Diags) {
  TVLAOptions Opts;
  Opts.Relational = Relational;
  return certifyWithTVLA(Spec, Abs, M, Opts, Diags);
}

TVLAResult tvla::certifyWithTVLA(const easl::Spec &Spec,
                                 const DerivedAbstraction &Abs,
                                 const cj::CFGMethod &M,
                                 const TVLAOptions &Opts,
                                 DiagnosticEngine &Diags) {
  return TVLAEngine(Spec, Abs, M, Opts, Diags).run();
}
