//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for CJ, the small Java-like client language analyzed
/// by the certifiers. CJ replaces the paper's Java frontend: it exposes
/// exactly the surface the analyses consume — reference assignment,
/// allocation, component/client method calls, and nondeterministic
/// branching ("if (*)", "while (*)"). Branch conditions are abstracted
/// away, as in the paper's translation to TVP.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CLIENT_AST_H
#define CANVAS_CLIENT_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace canvas {
namespace cj {

/// A dotted access path as written in client source, e.g. "this.w.s".
struct PathE {
  std::vector<std::string> Components;
  SourceLoc Loc;

  bool isSingleVar() const { return Components.size() == 1; }
  std::string str() const {
    std::string Out;
    for (const std::string &C : Components) {
      if (!Out.empty())
        Out += '.';
      Out += C;
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class CExpr {
public:
  enum class Kind { New, Call, Path, Null };

  virtual ~CExpr() = default;
  Kind getKind() const { return TheKind; }
  SourceLoc Loc;

protected:
  CExpr(Kind K, SourceLoc Loc) : Loc(Loc), TheKind(K) {}

private:
  Kind TheKind;
};

using CExprPtr = std::unique_ptr<CExpr>;

/// "new C(args)" — arguments are restricted to paths or null.
class NewExpr : public CExpr {
public:
  NewExpr(std::string Type, std::vector<CExprPtr> Args, SourceLoc Loc)
      : CExpr(Kind::New, Loc), Type(std::move(Type)), Args(std::move(Args)) {}

  std::string Type;
  std::vector<CExprPtr> Args;

  static bool classof(const CExpr *E) { return E->getKind() == Kind::New; }
};

/// "recv.m(args)" or "m(args)"; the callee path's last component is the
/// method name, its prefix (possibly empty) the receiver.
class CallExpr : public CExpr {
public:
  CallExpr(PathE Callee, std::vector<CExprPtr> Args, SourceLoc Loc)
      : CExpr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  PathE Callee;
  std::vector<CExprPtr> Args;

  std::string methodName() const { return Callee.Components.back(); }
  /// The receiver path (empty for an unqualified intra-class call).
  PathE receiver() const {
    PathE R = Callee;
    R.Components.pop_back();
    return R;
  }

  static bool classof(const CExpr *E) { return E->getKind() == Kind::Call; }
};

class PathRefExpr : public CExpr {
public:
  PathRefExpr(PathE P, SourceLoc Loc)
      : CExpr(Kind::Path, Loc), P(std::move(P)) {}

  PathE P;

  static bool classof(const CExpr *E) { return E->getKind() == Kind::Path; }
};

class NullExpr : public CExpr {
public:
  explicit NullExpr(SourceLoc Loc) : CExpr(Kind::Null, Loc) {}

  static bool classof(const CExpr *E) { return E->getKind() == Kind::Null; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class CStmt {
public:
  enum class Kind { Decl, Assign, Expr, If, While, Return, Block };

  virtual ~CStmt() = default;
  Kind getKind() const { return TheKind; }
  SourceLoc Loc;

protected:
  CStmt(Kind K, SourceLoc Loc) : Loc(Loc), TheKind(K) {}

private:
  Kind TheKind;
};

using CStmtPtr = std::unique_ptr<CStmt>;

/// "T x;" or "T x = init;"
class DeclStmt : public CStmt {
public:
  DeclStmt(std::string Type, std::string Name, CExprPtr Init, SourceLoc Loc)
      : CStmt(Kind::Decl, Loc), Type(std::move(Type)), Name(std::move(Name)),
        Init(std::move(Init)) {}

  std::string Type;
  std::string Name;
  CExprPtr Init; ///< May be null.

  static bool classof(const CStmt *S) { return S->getKind() == Kind::Decl; }
};

/// "path = expr;"
class AssignStmt : public CStmt {
public:
  AssignStmt(PathE Lhs, CExprPtr Rhs, SourceLoc Loc)
      : CStmt(Kind::Assign, Loc), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  PathE Lhs;
  CExprPtr Rhs;

  static bool classof(const CStmt *S) { return S->getKind() == Kind::Assign; }
};

/// A call in statement position.
class ExprStmt : public CStmt {
public:
  ExprStmt(CExprPtr E, SourceLoc Loc)
      : CStmt(Kind::Expr, Loc), E(std::move(E)) {}

  CExprPtr E;

  static bool classof(const CStmt *S) { return S->getKind() == Kind::Expr; }
};

/// "if (*) { ... } else { ... }" — the condition is nondeterministic.
class IfStmt : public CStmt {
public:
  IfStmt(std::vector<CStmtPtr> Then, std::vector<CStmtPtr> Else,
         SourceLoc Loc)
      : CStmt(Kind::If, Loc), Then(std::move(Then)), Else(std::move(Else)) {}

  std::vector<CStmtPtr> Then;
  std::vector<CStmtPtr> Else;

  static bool classof(const CStmt *S) { return S->getKind() == Kind::If; }
};

/// "while (*) { ... }" — nondeterministic loop.
class WhileStmt : public CStmt {
public:
  WhileStmt(std::vector<CStmtPtr> Body, SourceLoc Loc)
      : CStmt(Kind::While, Loc), Body(std::move(Body)) {}

  std::vector<CStmtPtr> Body;

  static bool classof(const CStmt *S) { return S->getKind() == Kind::While; }
};

/// "return;" or "return expr;"
class ReturnStmt : public CStmt {
public:
  ReturnStmt(CExprPtr Value, SourceLoc Loc)
      : CStmt(Kind::Return, Loc), Value(std::move(Value)) {}

  CExprPtr Value; ///< May be null.

  static bool classof(const CStmt *S) { return S->getKind() == Kind::Return; }
};

/// "{ ... }" in statement position.
class BlockStmt : public CStmt {
public:
  BlockStmt(std::vector<CStmtPtr> Body, SourceLoc Loc)
      : CStmt(Kind::Block, Loc), Body(std::move(Body)) {}

  std::vector<CStmtPtr> Body;

  static bool classof(const CStmt *S) { return S->getKind() == Kind::Block; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct CParam {
  std::string Type;
  std::string Name;
  SourceLoc Loc;
};

struct CMethod {
  std::string ReturnType; ///< "void" or a type name.
  std::string Name;
  std::vector<CParam> Params;
  std::vector<CStmtPtr> Body;
  SourceLoc Loc;
};

struct CField {
  std::string Type;
  std::string Name;
  SourceLoc Loc;
};

struct CClass {
  std::string Name;
  std::vector<CField> Fields;
  std::vector<CMethod> Methods;
  SourceLoc Loc;

  const CMethod *findMethod(const std::string &Name) const;
  const CField *findField(const std::string &Name) const;
};

/// A parsed CJ client program.
struct Program {
  std::vector<CClass> Classes;

  const CClass *findClass(const std::string &Name) const;
  /// The conventional analysis root: the first method named "main".
  const CMethod *mainMethod() const;
  const CClass *classOfMethod(const CMethod *M) const;
};

} // namespace cj
} // namespace canvas

#endif // CANVAS_CLIENT_AST_H
