#include "client/Parser.h"

#include "support/Lexer.h"

#include <algorithm>

using namespace canvas;
using namespace canvas::cj;

const CMethod *CClass::findMethod(const std::string &MethodName) const {
  for (const CMethod &M : Methods)
    if (M.Name == MethodName)
      return &M;
  return nullptr;
}

const CField *CClass::findField(const std::string &FieldName) const {
  for (const CField &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const CClass *Program::findClass(const std::string &Name) const {
  for (const CClass &C : Classes)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

const CMethod *Program::mainMethod() const {
  for (const CClass &C : Classes)
    if (const CMethod *M = C.findMethod("main"))
      return M;
  return nullptr;
}

const CClass *Program::classOfMethod(const CMethod *M) const {
  for (const CClass &C : Classes)
    for (const CMethod &Cand : C.Methods)
      if (&Cand == M)
        return &C;
  return nullptr;
}

namespace {

class ClientParser {
public:
  ClientParser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Program run() {
    Program P;
    while (!atEnd()) {
      // Tolerate modifiers before 'class'.
      while (peek().isKeyword("public") || peek().isKeyword("final"))
        advance();
      if (peek().isKeyword("class")) {
        P.Classes.push_back(parseClass());
        continue;
      }
      // One diagnostic per junk region, then resume at the next class
      // so later declarations still parse (partial AST with errors).
      error("expected 'class'");
      synchronizeTopLevel();
    }
    return P;
  }

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  bool atEnd() const { return peek().is(TokenKind::End); }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  void error(const std::string &Msg) { Diags.error(peek().Loc, Msg); }

  bool expectPunct(const char *P) {
    if (peek().isPunct(P)) {
      advance();
      return true;
    }
    error(std::string("expected '") + P + "'");
    return false;
  }

  std::string expectIdentifier(const char *What) {
    if (peek().is(TokenKind::Identifier))
      return advance().Text;
    error(std::string("expected ") + What);
    return "";
  }

  void synchronize() {
    while (!atEnd()) {
      if (peek().isPunct(";")) {
        advance();
        return;
      }
      if (peek().isPunct("}"))
        return;
      advance();
    }
  }

  /// Skips forward to the next top-level 'class' keyword (or the end)
  /// after junk between declarations.
  void synchronizeTopLevel() {
    advance();
    while (!atEnd() && !peek().isKeyword("class"))
      advance();
  }

  void skipModifiers() {
    while (peek().isKeyword("public") || peek().isKeyword("private") ||
           peek().isKeyword("protected") || peek().isKeyword("static") ||
           peek().isKeyword("final"))
      advance();
  }

  CClass parseClass() {
    CClass C;
    C.Loc = peek().Loc;
    advance(); // 'class'
    C.Name = expectIdentifier("class name");
    expectPunct("{");
    while (!atEnd() && !peek().isPunct("}"))
      parseMember(C);
    expectPunct("}");
    return C;
  }

  void parseMember(CClass &C) {
    skipModifiers();
    SourceLoc Loc = peek().Loc;
    std::string Type;
    if (peek().isKeyword("void"))
      Type = advance().Text;
    else
      Type = expectIdentifier("member type");
    std::string Name = expectIdentifier("member name");
    if (peek().isPunct(";")) {
      advance();
      C.Fields.push_back({std::move(Type), std::move(Name), Loc});
      return;
    }
    if (peek().isPunct("(")) {
      CMethod M;
      M.Loc = Loc;
      M.ReturnType = std::move(Type);
      M.Name = std::move(Name);
      advance();
      if (!peek().isPunct(")")) {
        while (true) {
          CParam P;
          P.Loc = peek().Loc;
          P.Type = expectIdentifier("parameter type");
          P.Name = expectIdentifier("parameter name");
          M.Params.push_back(std::move(P));
          if (!peek().isPunct(","))
            break;
          advance();
        }
      }
      expectPunct(")");
      M.Body = parseBlock();
      C.Methods.push_back(std::move(M));
      return;
    }
    error("expected ';' or '(' after member name");
    synchronize();
  }

  std::vector<CStmtPtr> parseBlock() {
    std::vector<CStmtPtr> Stmts;
    expectPunct("{");
    while (!atEnd() && !peek().isPunct("}")) {
      if (CStmtPtr S = parseStmt())
        Stmts.push_back(std::move(S));
      else
        synchronize();
    }
    expectPunct("}");
    return Stmts;
  }

  CStmtPtr parseStmt() {
    SourceLoc Loc = peek().Loc;
    if (peek().isPunct("{"))
      return std::make_unique<BlockStmt>(parseBlock(), Loc);
    if (peek().isKeyword("if")) {
      advance();
      parseNondetCond();
      std::vector<CStmtPtr> Then = parseBlock();
      std::vector<CStmtPtr> Else;
      if (peek().isKeyword("else")) {
        advance();
        if (peek().isKeyword("if")) {
          // else-if chains nest as a single-statement else block.
          Else.push_back(parseStmt());
        } else {
          Else = parseBlock();
        }
      }
      return std::make_unique<IfStmt>(std::move(Then), std::move(Else), Loc);
    }
    if (peek().isKeyword("while")) {
      advance();
      parseNondetCond();
      return std::make_unique<WhileStmt>(parseBlock(), Loc);
    }
    if (peek().isKeyword("return")) {
      advance();
      CExprPtr Value;
      if (!peek().isPunct(";"))
        Value = parseExpr();
      expectPunct(";");
      return std::make_unique<ReturnStmt>(std::move(Value), Loc);
    }
    // Declaration ("T x ..." — two identifiers in a row) vs assignment /
    // call.
    if (peek().is(TokenKind::Identifier) &&
        peek(1).is(TokenKind::Identifier)) {
      std::string Type = advance().Text;
      std::string Name = advance().Text;
      CExprPtr Init;
      if (peek().isPunct("=")) {
        advance();
        Init = parseExpr();
      }
      expectPunct(";");
      return std::make_unique<DeclStmt>(std::move(Type), std::move(Name),
                                        std::move(Init), Loc);
    }
    PathE P = parsePath();
    if (P.Components.empty())
      return nullptr;
    if (peek().isPunct("(")) {
      auto Call = std::make_unique<CallExpr>(std::move(P), parseArgs(), Loc);
      expectPunct(";");
      return std::make_unique<ExprStmt>(std::move(Call), Loc);
    }
    if (peek().isPunct("=")) {
      advance();
      CExprPtr Rhs = parseExpr();
      expectPunct(";");
      return std::make_unique<AssignStmt>(std::move(P), std::move(Rhs), Loc);
    }
    error("expected '(', '=' or declaration");
    return nullptr;
  }

  /// "( * )" — CJ conditions are always nondeterministic.
  void parseNondetCond() {
    expectPunct("(");
    if (peek().isPunct("*"))
      advance();
    else
      error("CJ branch conditions must be '*' (nondeterministic)");
    expectPunct(")");
  }

  std::vector<CExprPtr> parseArgs() {
    std::vector<CExprPtr> Args;
    expectPunct("(");
    if (!peek().isPunct(")")) {
      while (true) {
        Args.push_back(parseExpr());
        if (!peek().isPunct(","))
          break;
        advance();
      }
    }
    expectPunct(")");
    return Args;
  }

  CExprPtr parseExpr() {
    SourceLoc Loc = peek().Loc;
    if (peek().isKeyword("null")) {
      advance();
      return std::make_unique<NullExpr>(Loc);
    }
    if (peek().isKeyword("new")) {
      advance();
      std::string Type = expectIdentifier("class name after 'new'");
      return std::make_unique<NewExpr>(std::move(Type), parseArgs(), Loc);
    }
    if (peek().is(TokenKind::String)) {
      // String literals appear as opaque arguments (e.g. v.add("..."));
      // model them as null references of opaque type.
      advance();
      return std::make_unique<NullExpr>(Loc);
    }
    PathE P = parsePath();
    if (peek().isPunct("("))
      return std::make_unique<CallExpr>(std::move(P), parseArgs(), Loc);
    return std::make_unique<PathRefExpr>(std::move(P), Loc);
  }

  PathE parsePath() {
    PathE P;
    P.Loc = peek().Loc;
    if (!peek().is(TokenKind::Identifier)) {
      error("expected identifier");
      return P;
    }
    P.Components.push_back(advance().Text);
    while (peek().isPunct(".")) {
      advance();
      P.Components.push_back(expectIdentifier("member name"));
    }
    return P;
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

Program cj::parseProgram(std::string_view Source, DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lexSource(Source, Diags);
  return ClientParser(std::move(Tokens), Diags).run();
}
