#include "client/CFG.h"

#include "support/Casting.h"

#include <map>

using namespace canvas;
using namespace canvas::cj;

std::string Action::str() const {
  auto ArgList = [&] {
    std::string Out = "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I].empty() ? "?" : Args[I];
    }
    return Out + ")";
  };
  switch (K) {
  case Kind::Nop:
    return "nop";
  case Kind::AllocComp:
    return Lhs + " = new " + Callee + ArgList();
  case Kind::CompCall:
    return (Lhs.empty() ? "" : Lhs + " = ") + Recv + "." + Callee + ArgList();
  case Kind::Copy:
    return Lhs + " = " + (Args.empty() ? "?" : Args[0]);
  case Kind::Havoc:
    return Lhs + " = <unknown>";
  case Kind::ClientCall:
    return (Lhs.empty() ? "" : Lhs + " = ") + "call " + Callee + ArgList();
  case Kind::OpaqueEffect:
    return "<opaque effect>";
  }
  return "?";
}

std::string CFGMethod::str() const {
  std::string Out = name() + " (entry " + std::to_string(Entry) + ", exit " +
                    std::to_string(Exit) + ")\n";
  for (const CFGEdge &E : Edges)
    Out += "  " + std::to_string(E.From) + " -> " + std::to_string(E.To) +
           ": " + E.Act.str() + "\n";
  return Out;
}

const CFGMethod *ClientCFG::findMethod(const std::string &ClassName,
                                       const std::string &MethodName) const {
  for (const CFGMethod &M : Methods)
    if (M.Class->Name == ClassName && M.Method->Name == MethodName)
      return &M;
  return nullptr;
}

const CFGMethod *ClientCFG::findMethod(const CMethod *M) const {
  for (const CFGMethod &C : Methods)
    if (C.Method == M)
      return &C;
  return nullptr;
}

const CFGMethod *ClientCFG::mainCFG() const {
  return Prog ? findMethod(Prog->mainMethod()) : nullptr;
}

namespace {

class MethodLowering {
public:
  MethodLowering(const Program &P, const easl::Spec &Spec, const CClass &C,
                 const CMethod &M, DiagnosticEngine &Diags)
      : Prog(P), Spec(Spec), Class(C), Method(M), Diags(Diags) {}

  CFGMethod run() {
    Out.Class = &Class;
    Out.Method = &Method;
    collectVarTypes();
    Out.Entry = newNode();
    Out.Exit = newNode();
    int End = lowerStmts(Method.Body, Out.Entry);
    edge(End, Out.Exit, Action{});
    Out.NumNodes = NextNode;
    return std::move(Out);
  }

private:
  bool isComponentType(const std::string &T) const {
    return Spec.findClass(T) != nullptr;
  }
  bool isClientType(const std::string &T) const {
    return Prog.findClass(T) != nullptr;
  }

  void collectVarTypes() {
    for (const CParam &P : Method.Params)
      declareVar(P.Name, P.Type, P.Loc);
    collectDecls(Method.Body);
    if (isComponentType(Method.ReturnType))
      declareVar("$ret", Method.ReturnType, Method.Loc);
  }

  void collectDecls(const std::vector<CStmtPtr> &Stmts) {
    for (const CStmtPtr &St : Stmts) {
      switch (St->getKind()) {
      case CStmt::Kind::Decl: {
        const auto *D = cast<DeclStmt>(St.get());
        declareVar(D->Name, D->Type, D->Loc);
        break;
      }
      case CStmt::Kind::If: {
        const auto *I = cast<IfStmt>(St.get());
        collectDecls(I->Then);
        collectDecls(I->Else);
        break;
      }
      case CStmt::Kind::While:
        collectDecls(cast<WhileStmt>(St.get())->Body);
        break;
      case CStmt::Kind::Block:
        collectDecls(cast<BlockStmt>(St.get())->Body);
        break;
      default:
        break;
      }
    }
  }

  void declareVar(const std::string &Name, const std::string &Type,
                  SourceLoc Loc) {
    auto It = VarTypes.find(Name);
    if (It != VarTypes.end()) {
      if (It->second != Type)
        Diags.error(Loc, "variable '" + Name +
                             "' redeclared with a different type");
      return;
    }
    VarTypes.emplace(Name, Type);
    if (isComponentType(Type))
      Out.CompVars.emplace_back(Name, Type);
  }

  int newNode() { return NextNode++; }

  void edge(int From, int To, Action A) {
    Out.Edges.push_back({From, To, std::move(A)});
  }

  /// Appends an action edge after \p Cur; returns the new frontier node.
  int emit(int Cur, Action A) {
    int Next = newNode();
    edge(Cur, Next, std::move(A));
    return Next;
  }

  int lowerStmts(const std::vector<CStmtPtr> &Stmts, int Cur) {
    for (const CStmtPtr &St : Stmts)
      Cur = lowerStmt(*St, Cur);
    return Cur;
  }

  int lowerStmt(const CStmt &St, int Cur) {
    switch (St.getKind()) {
    case CStmt::Kind::Block:
      return lowerStmts(cast<BlockStmt>(&St)->Body, Cur);
    case CStmt::Kind::Decl: {
      const auto *D = cast<DeclStmt>(&St);
      if (!D->Init)
        return Cur;
      return lowerAssignment(D->Name, D->Loc, *D->Init, Cur);
    }
    case CStmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&St);
      if (A->Lhs.isSingleVar())
        return lowerAssignment(A->Lhs.Components[0], A->Loc, *A->Rhs, Cur);
      // Field store: a component reference escaping to the heap.
      if (isComponentType(typeOfPath(A->Lhs)))
        Out.HasHeapComponentRefs = true;
      // Evaluate the RHS for its side effects (a call may still occur).
      return lowerExprEffects(*A->Rhs, Cur);
    }
    case CStmt::Kind::Expr:
      return lowerExprEffects(*cast<ExprStmt>(&St)->E, Cur);
    case CStmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(&St);
      if (R->Value && isComponentType(Method.ReturnType))
        Cur = lowerAssignment("$ret", R->Loc, *R->Value, Cur);
      else if (R->Value)
        Cur = lowerExprEffects(*R->Value, Cur);
      edge(Cur, Out.Exit, Action{});
      // Code after return is unreachable; give it a fresh island.
      return newNode();
    }
    case CStmt::Kind::If: {
      const auto *I = cast<IfStmt>(&St);
      int ThenEntry = newNode();
      int ElseEntry = newNode();
      edge(Cur, ThenEntry, Action{});
      edge(Cur, ElseEntry, Action{});
      int ThenEnd = lowerStmts(I->Then, ThenEntry);
      int ElseEnd = lowerStmts(I->Else, ElseEntry);
      int Join = newNode();
      edge(ThenEnd, Join, Action{});
      edge(ElseEnd, Join, Action{});
      return Join;
    }
    case CStmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&St);
      int Head = newNode();
      edge(Cur, Head, Action{});
      int BodyEntry = newNode();
      int After = newNode();
      edge(Head, BodyEntry, Action{});
      edge(Head, After, Action{});
      int BodyEnd = lowerStmts(W->Body, BodyEntry);
      edge(BodyEnd, Head, Action{});
      return After;
    }
    }
    return Cur;
  }

  /// Declared type of a variable, or "" when unknown.
  std::string typeOfVar(const std::string &Name) const {
    auto It = VarTypes.find(Name);
    return It == VarTypes.end() ? "" : It->second;
  }

  /// Resolves the static type of a dotted path through client-class
  /// fields; "" when it cannot be resolved.
  std::string typeOfPath(const PathE &P) const {
    if (P.Components.empty())
      return "";
    std::string T = P.Components.front() == "this" ? Class.Name
                                                   : typeOfVar(
                                                         P.Components.front());
    for (size_t I = 1, E = P.Components.size(); I != E; ++I) {
      const CClass *C = Prog.findClass(T);
      if (!C)
        return "";
      const CField *F = C->findField(P.Components[I]);
      if (!F)
        return "";
      T = F->Type;
    }
    return T;
  }

  /// Lowers "LhsVar = Expr".
  int lowerAssignment(const std::string &LhsVar, SourceLoc Loc,
                      const CExpr &E, int Cur) {
    std::string LhsType = typeOfVar(LhsVar);
    bool LhsComp = isComponentType(LhsType);
    switch (E.getKind()) {
    case CExpr::Kind::Null:
      if (LhsComp)
        return emit(Cur, havoc(LhsVar, Loc));
      return Cur;
    case CExpr::Kind::New: {
      const auto *N = cast<NewExpr>(&E);
      if (!isComponentType(N->Type)) {
        // Client or opaque allocation: irrelevant to component state.
        return Cur;
      }
      if (!LhsComp || LhsType != N->Type) {
        Diags.error(Loc, "component allocation assigned to '" + LhsVar +
                             "' of type '" + LhsType + "'");
        return Cur;
      }
      Action A;
      A.K = Action::Kind::AllocComp;
      A.Lhs = LhsVar;
      A.Callee = N->Type;
      A.Loc = Loc;
      if (!lowerCompArgs(N->Type, "new", N->Args, Loc, A.Args))
        return Cur;
      return emit(Cur, std::move(A));
    }
    case CExpr::Kind::Call:
      return lowerCall(*cast<CallExpr>(&E), LhsComp ? LhsVar : "", Loc, Cur);
    case CExpr::Kind::Path: {
      const auto *P = cast<PathRefExpr>(&E);
      if (!LhsComp) {
        // Opaque copy.
        return Cur;
      }
      if (P->P.isSingleVar()) {
        const std::string &Rhs = P->P.Components[0];
        if (typeOfVar(Rhs) == LhsType) {
          Action A;
          A.K = Action::Kind::Copy;
          A.Lhs = LhsVar;
          A.Args = {Rhs};
          A.Loc = Loc;
          return emit(Cur, std::move(A));
        }
        Diags.error(Loc, "copy of '" + P->P.str() + "' to '" + LhsVar +
                             "' with mismatched component types");
        return Cur;
      }
      // Heap load of a component reference.
      Out.HasHeapComponentRefs = true;
      return emit(Cur, havoc(LhsVar, Loc));
    }
    }
    return Cur;
  }

  /// Lowers an expression evaluated only for effect.
  int lowerExprEffects(const CExpr &E, int Cur) {
    if (const auto *Call = dyn_cast<CallExpr>(&E))
      return lowerCall(*Call, "", Call->Loc, Cur);
    return Cur;
  }

  /// Checks and extracts component-typed argument variables for a
  /// component method/constructor call. Returns false on arity/type
  /// error.
  bool lowerCompArgs(const std::string &ClassName,
                     const std::string &MethodName,
                     const std::vector<CExprPtr> &Args, SourceLoc Loc,
                     std::vector<std::string> &Out) {
    const easl::ClassDecl *C = Spec.findClass(ClassName);
    std::vector<std::pair<std::string, std::string>> Params;
    if (MethodName == "new") {
      if (const easl::MethodDecl *Ctor = C->constructor())
        for (const easl::Param &P : Ctor->Params)
          Params.emplace_back(P.Name, P.Type);
    } else {
      const easl::MethodDecl *M = C->findMethod(MethodName);
      if (!M) {
        Diags.error(Loc, "component class '" + ClassName + "' has no method '" +
                             MethodName + "'");
        return false;
      }
      for (const easl::Param &P : M->Params)
        Params.emplace_back(P.Name, P.Type);
    }
    if (Args.size() != Params.size()) {
      Diags.error(Loc, "call to " + ClassName + "::" + MethodName + " takes " +
                           std::to_string(Params.size()) + " argument(s)");
      return false;
    }
    for (size_t I = 0; I != Args.size(); ++I) {
      const auto *P = dyn_cast<PathRefExpr>(Args[I].get());
      if (P && P->P.isSingleVar() &&
          typeOfVar(P->P.Components[0]) == Params[I].second) {
        Out.push_back(P->P.Components[0]);
        continue;
      }
      Diags.error(Loc, "argument " + std::to_string(I + 1) + " of " +
                           ClassName + "::" + MethodName +
                           " must be a local of type " + Params[I].second);
      return false;
    }
    return true;
  }

  int lowerCall(const CallExpr &Call, const std::string &LhsVar,
                SourceLoc Loc, int Cur) {
    PathE Recv = Call.receiver();
    // Intra-class client call: m(args) or this.m(args).
    if (Recv.Components.empty() ||
        (Recv.isSingleVar() && Recv.Components[0] == "this"))
      return lowerClientCall(Class, Call, LhsVar, Loc, Cur);

    if (Recv.isSingleVar()) {
      std::string RecvType = typeOfVar(Recv.Components[0]);
      if (isComponentType(RecvType))
        return lowerComponentCall(RecvType, Recv.Components[0], Call, LhsVar,
                                  Loc, Cur);
      if (isClientType(RecvType)) {
        const CClass *C = Prog.findClass(RecvType);
        return lowerClientCall(*C, Call, LhsVar, Loc, Cur);
      }
      // Opaque receiver: the call cannot touch component state unless it
      // holds component references, which only heap traffic could give
      // it; heap traffic is already flagged.
      if (!LhsVar.empty())
        return emit(Cur, havoc(LhsVar, Loc));
      return Cur;
    }

    // Receiver reached through the heap.
    std::string RecvType = typeOfPath(Recv);
    if (isComponentType(RecvType)) {
      // A component method on a heap-resident receiver may affect any
      // component object (e.g. invalidate iterators of an aliased
      // local). Clobber everything.
      Out.HasHeapComponentRefs = true;
      Action A;
      A.K = Action::Kind::OpaqueEffect;
      A.Lhs = LhsVar;
      A.Loc = Loc;
      return emit(Cur, std::move(A));
    }
    if (isClientType(RecvType)) {
      const CClass *C = Prog.findClass(RecvType);
      return lowerClientCall(*C, Call, LhsVar, Loc, Cur);
    }
    if (!LhsVar.empty())
      return emit(Cur, havoc(LhsVar, Loc));
    return Cur;
  }

  int lowerComponentCall(const std::string &RecvType,
                         const std::string &RecvVar, const CallExpr &Call,
                         const std::string &LhsVar, SourceLoc Loc, int Cur) {
    const easl::ClassDecl *C = Spec.findClass(RecvType);
    const easl::MethodDecl *M = C->findMethod(Call.methodName());
    if (!M) {
      Diags.error(Loc, "component class '" + RecvType + "' has no method '" +
                           Call.methodName() + "'");
      return Cur;
    }
    if (!LhsVar.empty() && typeOfVar(LhsVar) != M->ReturnType) {
      Diags.error(Loc, "result of " + RecvType + "::" + Call.methodName() +
                           " assigned to mismatched type");
      return Cur;
    }
    Action A;
    A.K = Action::Kind::CompCall;
    A.Lhs = LhsVar;
    A.Recv = RecvVar;
    A.Callee = Call.methodName();
    A.Loc = Loc;
    if (!lowerCompArgs(RecvType, Call.methodName(), Call.Args, Loc, A.Args))
      return Cur;
    return emit(Cur, std::move(A));
  }

  int lowerClientCall(const CClass &Target, const CallExpr &Call,
                      const std::string &LhsVar, SourceLoc Loc, int Cur) {
    const CMethod *M = Target.findMethod(Call.methodName());
    if (!M) {
      Diags.error(Loc, "client class '" + Target.Name + "' has no method '" +
                           Call.methodName() + "'");
      return Cur;
    }
    if (M->Params.size() != Call.Args.size()) {
      Diags.error(Loc, "call to " + Target.Name + "::" + Call.methodName() +
                           " has wrong arity");
      return Cur;
    }
    Action A;
    A.K = Action::Kind::ClientCall;
    A.Lhs = LhsVar;
    A.Callee = Target.Name + "::" + Call.methodName();
    A.CalleeClass = &Target;
    A.CalleeMethod = M;
    A.Loc = Loc;
    for (size_t I = 0; I != Call.Args.size(); ++I) {
      const auto *P = dyn_cast<PathRefExpr>(Call.Args[I].get());
      bool ParamComp = isComponentType(M->Params[I].Type);
      if (ParamComp && P && P->P.isSingleVar() &&
          typeOfVar(P->P.Components[0]) == M->Params[I].Type) {
        A.Args.push_back(P->P.Components[0]);
      } else {
        if (ParamComp)
          // An unknown component-typed argument: callee param is havocked.
          Out.HasHeapComponentRefs |= P && !P->P.isSingleVar();
        A.Args.push_back("");
      }
    }
    return emit(Cur, std::move(A));
  }

  Action havoc(const std::string &Var, SourceLoc Loc) {
    Action A;
    A.K = Action::Kind::Havoc;
    A.Lhs = Var;
    A.Loc = Loc;
    return A;
  }

  const Program &Prog;
  const easl::Spec &Spec;
  const CClass &Class;
  const CMethod &Method;
  DiagnosticEngine &Diags;
  CFGMethod Out;
  std::map<std::string, std::string> VarTypes;
  int NextNode = 0;
};

} // namespace

ClientCFG cj::buildCFG(const Program &P, const easl::Spec &Spec,
                       DiagnosticEngine &Diags) {
  ClientCFG CFG;
  CFG.Prog = &P;
  CFG.Spec = &Spec;
  for (const CClass &C : P.Classes)
    for (const CMethod &M : C.Methods)
      CFG.Methods.push_back(MethodLowering(P, Spec, C, M, Diags).run());
  return CFG;
}
