//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs for CJ client methods, with statement actions
/// already classified against a component specification: component
/// allocations and calls, reference copies, havoc (unknown values), and
/// client-method calls for the interprocedural analysis of Section 8.
///
/// Component references that pass through the heap (object fields) are
/// outside SCMP's scope (Section 4's restriction); the builder lowers
/// them conservatively (Havoc / OpaqueEffect) and records the fact in
/// CFGMethod::HasHeapComponentRefs so certifiers can report reduced
/// precision or switch to the first-order analysis of Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CLIENT_CFG_H
#define CANVAS_CLIENT_CFG_H

#include "client/AST.h"
#include "easl/AST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace canvas {
namespace cj {

/// One primitive CFG action. All variables are method-local names; the
/// pseudo-variable "$ret" holds a component-typed return value.
struct Action {
  enum class Kind {
    /// No state change (branch/join edges).
    Nop,
    /// Lhs = new Callee(Args) where Callee is a component class.
    AllocComp,
    /// [Lhs =] Recv.Callee(Args) where Recv is a component-typed local.
    CompCall,
    /// Lhs = Args[0], both component-typed locals.
    Copy,
    /// Lhs becomes an unknown component reference (null, heap load,
    /// opaque call result, ...).
    Havoc,
    /// [Lhs =] call to a client method (interprocedural edge).
    ClientCall,
    /// A call whose effect on component state is unknown (e.g. a
    /// component method invoked on a heap-resident receiver): clobbers
    /// every component fact.
    OpaqueEffect,
  };

  Kind K = Kind::Nop;
  std::string Lhs;                ///< Empty when no component-typed result.
  std::string Recv;               ///< CompCall receiver variable.
  std::string Callee;             ///< Method or class name.
  /// Component-typed argument variables; "" marks an unknown argument.
  std::vector<std::string> Args;
  /// Resolved target for ClientCall.
  const CClass *CalleeClass = nullptr;
  const CMethod *CalleeMethod = nullptr;
  SourceLoc Loc;

  std::string str() const;
};

struct CFGEdge {
  int From = 0;
  int To = 0;
  Action Act;
};

/// The CFG of one client method plus its component-typed variable set
/// (the paper's I and V sets, per type).
struct CFGMethod {
  const CClass *Class = nullptr;
  const CMethod *Method = nullptr;
  int Entry = 0;
  int Exit = 0;
  int NumNodes = 0;
  std::vector<CFGEdge> Edges;
  /// (name, component type) for every component-typed local, parameter,
  /// and "$ret" when the method returns a component reference.
  std::vector<std::pair<std::string, std::string>> CompVars;
  bool HasHeapComponentRefs = false;

  std::string name() const {
    return (Class ? Class->Name : "?") + "::" +
           (Method ? Method->Name : "?");
  }
  std::string str() const;
};

/// All client-method CFGs of a program against one component spec.
struct ClientCFG {
  const Program *Prog = nullptr;
  const easl::Spec *Spec = nullptr;
  std::vector<CFGMethod> Methods;

  const CFGMethod *findMethod(const std::string &ClassName,
                              const std::string &MethodName) const;
  const CFGMethod *findMethod(const CMethod *M) const;
  /// The CFG of the program's main method, or null.
  const CFGMethod *mainCFG() const;
};

/// Builds CFGs for every method of \p P, classifying statements against
/// \p Spec. Errors (unknown methods, arity/type mismatches on component
/// calls) go to \p Diags.
ClientCFG buildCFG(const Program &P, const easl::Spec &Spec,
                   DiagnosticEngine &Diags);

} // namespace cj
} // namespace canvas

#endif // CANVAS_CLIENT_CFG_H
