//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the CJ client language.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CLIENT_PARSER_H
#define CANVAS_CLIENT_PARSER_H

#include "client/AST.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace canvas {
namespace cj {

/// Parses a CJ client program. Syntax errors go to \p Diags; the result
/// is meaningful only when !Diags.hasErrors().
Program parseProgram(std::string_view Source, DiagnosticEngine &Diags);

} // namespace cj
} // namespace canvas

#endif // CANVAS_CLIENT_PARSER_H
