//===----------------------------------------------------------------------===//
///
/// \file
/// Witness replay: drives a static witness trace through the concrete
/// Easl interpreter (EaslMachine). A Potential verdict is only a *may*
/// claim, so a replayed trace is accepted when it either concretely
/// violates the requires clause, or crosses a nondeterministic choice
/// (a multi-way branch, a havoc, an opaque effect, a summarized client
/// call, an assumed entry fact, ...) that the static analysis
/// conservatively over-approximated — that choice is exactly where a
/// real execution could diverge into the violating one. A trace that is
/// structurally unsound (edge discontinuity, unmatched call/return) is
/// reported Malformed: that would be a bug in witness reconstruction.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_REPLAY_H
#define CANVAS_CORE_REPLAY_H

#include "client/CFG.h"
#include "core/Verdict.h"
#include "easl/AST.h"

#include <string>

namespace canvas {
namespace core {

struct ReplayResult {
  /// Some requires clause concretely failed while replaying (for the
  /// final Check step: the flagged clause itself).
  bool Violated = false;
  /// The trace crossed at least one nondeterministic choice.
  bool CrossedNondet = false;
  /// The trace is not structurally replayable (broken edge continuity
  /// or call/return discipline) — a witness-reconstruction bug.
  bool Malformed = false;
  unsigned Steps = 0;
  /// Human-readable account of the decisive observation.
  std::string Detail;

  /// The replay certifies the witness: structurally sound, and either
  /// concretely violating or explained by a nondeterministic choice.
  bool validated() const { return !Malformed && (Violated || CrossedNondet); }
};

/// Replays \p Rec's witness trace against \p Spec over the methods of
/// \p CFG (step edge indices must refer to those methods' edge lists).
ReplayResult replayWitness(const easl::Spec &Spec, const cj::ClientCFG &CFG,
                           const CheckRecord &Rec);

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_REPLAY_H
