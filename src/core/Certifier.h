//===----------------------------------------------------------------------===//
///
/// \file
/// The public staged-certification API (Section 1.3):
///
///   1. parse an Easl component specification,
///   2. derive its component-specific abstraction (certifier-generation
///      time — this is where the expensive symbolic work happens),
///   3. combine it with an analysis engine to obtain a Certifier,
///   4. apply the certifier to any number of client programs.
///
/// Engines with different time/space/precision tradeoffs can be chosen
/// per certification run (Section 1.3, step 3).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_CERTIFIER_H
#define CANVAS_CORE_CERTIFIER_H

#include "boolprog/Analysis.h"
#include "cert/Certificate.h"
#include "client/Parser.h"
#include "core/Verdict.h"
#include "dataflow/PreAnalysis.h"
#include "easl/Parser.h"
#include "store/CertStore.h"
#include "support/Budget.h"
#include "wp/Abstraction.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace canvas {
namespace core {

/// The client-analysis engine combined with the derived abstraction.
enum class EngineKind {
  /// Specialized intraprocedural possible-value analysis (Section 4.3):
  /// precise MOP, O(E * B^2). Client calls are treated conservatively.
  SCMPIntra,
  /// Context-sensitive summary-based whole-program analysis (Section 8).
  SCMPInterproc,
  /// Generic allocation-site must-alias baseline (Section 3).
  GenericAllocSite,
  /// Mini-TVLA first-order engine, one 3-valued structure per program
  /// point (independent-attribute, Section 5.5).
  TVLAIndependent,
  /// Mini-TVLA, set of 3-valued structures per point (relational).
  TVLARelational,
};

const char *engineName(EngineKind K);

/// One requires obligation with its verdict (see core/Verdict.h): every
/// engine reports through the same record, and the witness-bearing
/// engines attach their evidence traces to it.
using CheckVerdict = CheckRecord;

/// A Stage-0 conformance lint: a component variable possibly used
/// before initialization, reported with its client location before any
/// engine runs.
struct LintFinding {
  std::string Method; ///< "Class::method" containing the use.
  std::string Var;
  SourceLoc Loc;
  std::string What;
  /// True when the use is a component call whose abstraction carries
  /// requires clauses — the engine cannot certify those obligations
  /// against an uninitialized receiver/operand.
  bool RequiresBearing = false;
};

/// Aggregate statistics of the Stage-0 pre-analysis (see
/// dataflow::preAnalyze).
struct PreAnalysisSummary {
  bool Enabled = false;
  unsigned EdgesPruned = 0;
  unsigned DeadStoresRemoved = 0;
  unsigned VarsDropped = 0;
  unsigned MultiSliceMethods = 0;
  /// Boolean programs built and analyzed across all methods.
  unsigned SliceRuns = 0;
  /// Methods whose sliced run hit a Definite verdict and reran unsliced.
  unsigned FallbackMethods = 0;
};

/// Statistics of the whole-program points-to & escape pre-analysis
/// (zero unless CertifierOptions::PointsTo was set and the analysis
/// completed).
struct PointsToReport {
  bool Enabled = false;
  /// The client had a main() method, so the closed-world reachability
  /// and alias refinement applied.
  bool HasMain = false;
  unsigned Objects = 0;
  unsigned Constraints = 0;
  unsigned Iterations = 0;
  unsigned ReachableMethods = 0;
  unsigned TotalMethods = 0;
  /// Methods whose obligations were discharged as Unreachable without
  /// running the engine (never under EmitCertificates).
  unsigned PrunedMethods = 0;
  /// Escape classification of component allocation sites.
  unsigned LocalSites = 0;
  unsigned ArgSites = 0;
  unsigned HeapSites = 0;
};

/// Per-method slicing outcome of the SCMPIntra engine, surfaced so
/// clients can see *why* a method did or did not certify per-slice.
struct MethodSliceSummary {
  std::string Method;
  unsigned Slices = 0;
  /// When slicing was forced off, the slicer's reason; empty otherwise.
  std::string ForcedSingleReason;
};

/// Tabulation statistics of the interprocedural engine's IFDS solve
/// (zero for other engines).
struct InterprocStats {
  unsigned SummaryIterations = 0;
  size_t ExplodedNodes = 0;
  size_t PathEdges = 0;
  size_t Summaries = 0;
  /// Wall-clock time spent reconstructing witness traces, microseconds.
  double WitnessMicros = 0;
};

/// Structure-interner and transfer-cache statistics of the TVLA
/// engines, aggregated across methods (zero for other engines).
struct TVLAStats {
  uint64_t InternedStructures = 0;
  uint64_t TransferCacheHits = 0;
  uint64_t TransferCacheMisses = 0;
  /// Peak structures resident at one program point, across methods.
  unsigned MaxStructuresPerPoint = 0;
};

/// One rung of the degradation ladder as the supervisor attempted it:
/// which engine ran, whether it completed, why it failed (budget
/// exhaustion, injected fault, missing prerequisite), and what it
/// consumed.
struct StageAttempt {
  std::string Engine;
  bool Completed = false;
  std::string FailReason; ///< Empty when Completed.
  support::ResourceSpend Spend;
};

/// Aggregate statistics of proof-carrying-certificate emission and
/// checking for one report (zero unless CertifierOptions::
/// EmitCertificates was set).
struct CertificateStats {
  unsigned Count = 0;
  /// Serialized bytes across all certificates.
  size_t Bytes = 0;
  /// Fixpoint annotation entries computed / actually stored after the
  /// size-reduction pruning.
  uint64_t RawEntries = 0;
  uint64_t StoredEntries = 0;
  double EmitMicros = 0;
  /// Independent-checker time (CheckCertificates only).
  double CheckMicros = 0;
  /// True when every certificate was re-validated by cert::Checker.
  bool Checked = false;
};

struct CertificationReport {
  std::vector<CheckVerdict> Checks;
  std::vector<LintFinding> Lints;
  PreAnalysisSummary Pre;
  PointsToReport PointsTo;
  /// Per-method slicing outcomes of the SCMPIntra engine, method order;
  /// only methods with retained component variables appear.
  std::vector<MethodSliceSummary> SliceSummaries;
  InterprocStats Inter;
  TVLAStats Tvla;
  /// Total and largest boolean-program size B across the per-method
  /// (or per-slice) programs the SCMPIntra engine analyzed; zero for
  /// other engines.
  size_t BoolVars = 0;
  size_t MaxBoolVars = 0;

  /// The engine the certifier was built with.
  EngineKind Requested = EngineKind::SCMPIntra;
  /// The engine whose verdicts this report carries — engineName of a
  /// ladder rung, or "lint-only" at the floor.
  std::string EffectiveEngine;
  /// True when EffectiveEngine is not the requested engine: some rung
  /// exhausted its budget or failed, and the supervisor fell back.
  bool Degraded = false;
  /// Every rung attempted, in ladder order, with its resource spend.
  std::vector<StageAttempt> Stages;
  /// Proof-carrying certificates backing this report's Safe/Unreachable
  /// verdicts, one per analyzed unit (empty unless EmitCertificates).
  std::vector<cert::Certificate> Certificates;
  CertificateStats CertStats;
  /// Persistent-store usage of this run: hits, misses, rejections,
  /// quarantines, and structured incidents (empty unless
  /// CertifierOptions::StorePath was set). Deliberately NOT rendered by
  /// str() — a warm run's report must be byte-identical to the cold
  /// run's.
  store::StoreReport Store;

  size_t numChecks() const { return Checks.size(); }
  unsigned numFlagged() const;
  unsigned numVerified() const;
  std::string str() const;
};

/// Per-certifier knobs. Stage-0 pre-analysis is on by default: the lint
/// runs for every engine, and the verdict-preserving program
/// transformations (pruning, dead-store elimination, slicing) apply to
/// the SCMPIntra engine.
struct CertifierOptions {
  bool PreAnalysis = true;
  dataflow::PreAnalysisOptions Pre;
  /// When true (the default) the supervisor catches recoverable engine
  /// errors (CertifyError: budget exhaustion, injected faults, checked
  /// invariants) and retries down the engine ladder
  ///   TVLARelational -> TVLAIndependent -> SCMPInterproc -> SCMPIntra
  ///   -> GenericAllocSite -> Stage-0 lint only,
  /// conservatively marking unproven obligations Degraded instead of
  /// aborting. When false, the requested engine runs alone and
  /// CertifyError propagates to the caller.
  bool Degrade = true;
  /// Default per-rung resource budget (unlimited by default).
  support::StageBudget Budget;
  /// Per-engine overrides of Budget.
  std::map<EngineKind, support::StageBudget> EngineBudgets;
  /// Worker bound for the per-method certification fan-out (engines that
  /// analyze each client method independently run them concurrently on a
  /// support::TaskPool). 0 means hardware_concurrency(). Reports are
  /// merged in method-index order, so the report and diagnostic stream
  /// are byte-identical for every worker count.
  unsigned Workers = 0;
  /// Structures the relational TVLA engine keeps per program point
  /// before joining overflow structures (tvla::TVLAOptions::
  /// MaxStructuresPerPoint); lowering it trades precision for space.
  unsigned TVLAMaxStructuresPerPoint = 256;
  /// Run the whole-program points-to & escape pre-analysis before the
  /// SCMPIntra engine: its per-method may-interfere groups replace the
  /// syntactic heap/havoc slicing gates, obligations of methods
  /// unreachable from main() are discharged as Unreachable (unless
  /// certificates are being emitted), and the report carries the
  /// PointsToReport statistics. Requires a main() method for the
  /// refinement to apply; a client without one still gets the
  /// statistics. On budget exhaustion or an injected "points-to" fault
  /// the certifier degrades gracefully to the unrefined gates instead
  /// of failing the rung.
  bool PointsTo = false;
  /// Emit a proof-carrying certificate per analyzed unit, carrying the
  /// engine's fixpoint evidence for every Safe/Unreachable verdict
  /// (CertificationReport::Certificates). The SCMPIntra engine analyzes
  /// each method unsliced unless Stage-0 slicing (and PreAnalysis) is
  /// on and the method splits into multiple slices, in which case it
  /// runs per-slice and emits a SlicePartition certificate whose
  /// checker re-validates the partition itself — so --check-only covers
  /// sliced runs too. Dead-store elimination and edge pruning stay off
  /// under emission (every obligation must appear in a checkable
  /// enumeration).
  bool EmitCertificates = false;
  /// Re-validate every emitted certificate with the independent
  /// cert::Checker before the rung's verdicts are accepted. A rejected
  /// certificate raises CertifyError(CertificateInvalid) — with
  /// degradation on, the supervisor falls to the next rung rather than
  /// reporting unproven verdicts as Proven.
  bool CheckCertificates = false;
  /// Root directory of the persistent certificate store; empty disables
  /// it. With a store, units whose input hash is unchanged answer from
  /// disk *after* their stored certificate passes the independent
  /// cert::Checker (plus claim/verdict cross-checks and witness
  /// replay): a hit costs a check, not a re-analysis; a rejected entry
  /// is evicted, reported as a StoreEntryInvalid incident, and
  /// re-analyzed. Setting a store forces certificate emission (the
  /// evidence is what makes entries re-validatable), and every store
  /// I/O failure degrades to re-analysis — never to a wrong or missing
  /// verdict. The store serves and fills only the *requested* engine's
  /// rung; degraded fallback runs are never persisted.
  std::string StorePath;
  /// ReadOnly serves checker-gated hits without any disk mutation
  /// (useful for replicas serving from a shared snapshot).
  store::StoreMode StoreMode = store::StoreMode::ReadWrite;
};

namespace detail {
/// Memo of the last whole-program points-to & escape solution (defined
/// in Certifier.cpp). The solve is program-global, so certifying N
/// methods — or re-certifying the same program, as a warm store pass
/// and the bench harness both do — must not re-run it N times; the
/// cache is keyed by the structural program hash and shared across
/// certify() calls on one Certifier.
struct PointsToCache;
} // namespace detail

/// A generated certifier: a derived abstraction bound to a component
/// spec, applicable to arbitrary clients.
class Certifier {
public:
  /// Generates a certifier from Easl source. Errors go to \p Diags.
  Certifier(std::string_view SpecSource, EngineKind Engine,
            DiagnosticEngine &Diags,
            const wp::DerivationOptions &DOpts = {},
            const CertifierOptions &Opts = {});

  const easl::Spec &spec() const { return S; }
  const wp::DerivedAbstraction &abstraction() const { return Abs; }
  EngineKind engine() const { return Engine; }
  const CertifierOptions &options() const { return Opts; }

  /// Certifies \p ClientSource. For intraprocedural engines every client
  /// method is analyzed independently; the interprocedural engine
  /// analyzes the program rooted at main().
  CertificationReport certifySource(std::string_view ClientSource,
                                    DiagnosticEngine &Diags) const;

  /// Same, for an already-parsed program.
  CertificationReport certify(const cj::Program &P,
                              DiagnosticEngine &Diags) const;

private:
  easl::Spec S;
  wp::DerivedAbstraction Abs;
  EngineKind Engine;
  CertifierOptions Opts;
  /// FNV-1a of the spec source text, the spec half of the store's
  /// context fingerprint (easl::Spec has no canonical rendering).
  uint64_t SpecHash = 0;
  /// Mutex-guarded; shared_ptr so the incomplete type needs no
  /// out-of-line destructor and copies of the certifier share the memo.
  std::shared_ptr<detail::PointsToCache> PTCache;
};

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_CERTIFIER_H
