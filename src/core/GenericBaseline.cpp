#include "core/GenericBaseline.h"

#include "support/Casting.h"

#include <deque>

using namespace canvas;
using namespace canvas::core;
using namespace canvas::core::baseline;
using namespace canvas::easl;

bool AbsState::join(const AbsState &O) {
  bool Changed = false;
  for (const auto &[V, S] : O.Vars) {
    LocSet &Mine = Vars[V];
    for (Loc L : S)
      Changed |= Mine.insert(L).second;
  }
  for (const auto &[K, S] : O.Heap) {
    LocSet &Mine = Heap[K];
    for (Loc L : S)
      Changed |= Mine.insert(L).second;
  }
  for (Loc L : O.Allocated)
    Changed |= Allocated.insert(L).second;
  return Changed;
}

AbsState AllocSiteTransfer::entryState(const cj::CFGMethod &M) {
  AbsState St;
  for (const auto &[V, T] : M.CompVars)
    St.Vars[V] = {UnknownLoc};
  return St;
}

Loc AllocSiteTransfer::freshSite(int Edge, AbsState &St, Ctx &C) const {
  Loc L = Edge * 64 + (C.AllocOrdinal++);
  if (!St.Allocated.insert(L).second)
    C.Multi.insert(L);
  return L;
}

void AllocSiteTransfer::apply(int Edge, AbsState &St, std::set<Loc> &Multi,
                              std::map<CheckSite, bool> *Flagged) const {
  Ctx C{Multi, Flagged};
  const cj::Action &A = M.Edges[Edge].Act;
  switch (A.K) {
  case cj::Action::Kind::Nop:
    return;
  case cj::Action::Kind::Copy:
    St.Vars[A.Lhs] = St.Vars[A.Args[0]];
    return;
  case cj::Action::Kind::Havoc:
    St.Vars[A.Lhs] = {UnknownLoc};
    return;
  case cj::Action::Kind::ClientCall:
  case cj::Action::Kind::OpaqueEffect: {
    // The generic intraprocedural baseline clobbers everything.
    for (auto &[V, Set] : St.Vars)
      Set = {UnknownLoc};
    for (auto &[K, Set] : St.Heap)
      Set = {UnknownLoc};
    return;
  }
  case cj::Action::Kind::AllocComp: {
    std::vector<LocSet> Args;
    for (const std::string &V : A.Args)
      Args.push_back(V.empty() ? LocSet{UnknownLoc} : St.Vars[V]);
    LocSet Obj = construct(Edge, A.Callee, Args, St, C);
    if (!A.Lhs.empty())
      St.Vars[A.Lhs] = Obj;
    return;
  }
  case cj::Action::Kind::CompCall: {
    const ClassDecl *Cls = nullptr;
    // The receiver's static type determines the spec method.
    for (const auto &[V, T] : M.CompVars)
      if (V == A.Recv)
        Cls = S.findClass(T);
    const MethodDecl *Method = Cls ? Cls->findMethod(A.Callee) : nullptr;
    if (!Method)
      return;
    Frame F;
    F.Class = Cls;
    F.Vars["this"] = St.Vars[A.Recv];
    for (size_t I = 0; I != Method->Params.size() && I != A.Args.size(); ++I)
      F.Vars[Method->Params[I].Name] =
          A.Args[I].empty() ? LocSet{UnknownLoc} : St.Vars[A.Args[I]];
    CheckSite Site;
    Site.Method = M.name();
    Site.Edge = Edge;
    LocSet Ret = execBody(Edge, Method->Body, F, St, &Site, C);
    if (!A.Lhs.empty())
      St.Vars[A.Lhs] = Ret;
    return;
  }
  }
}

LocSet AllocSiteTransfer::evalPath(const Frame &F, const PathExpr &P,
                                   const AbsState &St) const {
  if (P.Components.empty())
    return {UnknownLoc};
  LocSet Cur;
  size_t First = 1;
  auto It = F.Vars.find(P.Components.front());
  if (It != F.Vars.end()) {
    Cur = It->second;
  } else if (F.Class && F.Class->findField(P.Components.front())) {
    auto ThisIt = F.Vars.find("this");
    LocSet This = ThisIt == F.Vars.end() ? LocSet{} : ThisIt->second;
    Cur = loadField(This, P.Components.front(), St);
  } else {
    return {UnknownLoc};
  }
  for (size_t I = First; I < P.Components.size(); ++I)
    Cur = loadField(Cur, P.Components[I], St);
  return Cur;
}

LocSet AllocSiteTransfer::loadField(const LocSet &Objs,
                                    const std::string &Field,
                                    const AbsState &St) const {
  LocSet Out;
  for (Loc L : Objs) {
    if (L == UnknownLoc) {
      Out.insert(UnknownLoc);
      continue;
    }
    auto It = St.Heap.find({L, Field});
    if (It != St.Heap.end())
      Out.insert(It->second.begin(), It->second.end());
  }
  return Out;
}

void AllocSiteTransfer::storeField(const LocSet &Objs,
                                   const std::string &Field, LocSet Val,
                                   AbsState &St, const Ctx &C) const {
  bool Strong = Objs.size() == 1 && !Objs.count(UnknownLoc) &&
                !C.Multi.count(*Objs.begin());
  for (Loc L : Objs) {
    if (L == UnknownLoc)
      continue;
    LocSet &Slot = St.Heap[{L, Field}];
    if (Strong)
      Slot = Val;
    else
      Slot.insert(Val.begin(), Val.end());
  }
}

/// True when the analysis can prove the two points-to sets denote the
/// same concrete object.
bool AllocSiteTransfer::mustEqual(const LocSet &A, const LocSet &B,
                                  const Ctx &C) const {
  if (A.empty() && B.empty())
    return true; // Both definitely null.
  if (A.size() != 1 || B.size() != 1)
    return false;
  Loc L = *A.begin();
  return L == *B.begin() && L != UnknownLoc && !C.Multi.count(L);
}

/// Conservative 3-valued evaluation of a requires/if condition: returns
/// true only when the condition definitely holds.
bool AllocSiteTransfer::definitelyHolds(const Frame &F, const Expr &E,
                                        const AbsState &St,
                                        const Ctx &C) const {
  switch (E.getKind()) {
  case Expr::Kind::Compare: {
    const auto *Cmp = cast<CompareExpr>(&E);
    LocSet L = evalPath(F, Cmp->Lhs, St);
    LocSet R = evalPath(F, Cmp->Rhs, St);
    if (Cmp->Negated) {
      // Definitely different: disjoint known singletons.
      if (L.count(UnknownLoc) || R.count(UnknownLoc))
        return false;
      for (Loc X : L)
        if (R.count(X))
          return false;
      return true;
    }
    return mustEqual(L, R, C);
  }
  case Expr::Kind::And: {
    for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
      if (!definitelyHolds(F, *Op, St, C))
        return false;
    return true;
  }
  case Expr::Kind::Or: {
    for (const ExprPtr &Op : cast<OrExpr>(&E)->Operands)
      if (definitelyHolds(F, *Op, St, C))
        return true;
    return false;
  }
  case Expr::Kind::Not:
    // Would need "definitely does not hold"; stay conservative.
    return false;
  case Expr::Kind::BoolConst:
    return cast<BoolConstExpr>(&E)->Value;
  }
  return false;
}

LocSet AllocSiteTransfer::construct(int Edge, const std::string &ClassName,
                                    const std::vector<LocSet> &Args,
                                    AbsState &St, Ctx &C) const {
  const ClassDecl *Cls = S.findClass(ClassName);
  if (!Cls)
    return {UnknownLoc};
  Loc Obj = freshSite(Edge, St, C);
  const MethodDecl *Ctor = Cls->constructor();
  if (!Ctor)
    return {Obj};
  Frame F;
  F.Class = Cls;
  F.Vars["this"] = {Obj};
  for (size_t I = 0; I != Ctor->Params.size() && I != Args.size(); ++I)
    F.Vars[Ctor->Params[I].Name] = Args[I];
  execBody(Edge, Ctor->Body, F, St, nullptr, C);
  return {Obj};
}

LocSet AllocSiteTransfer::execBody(int Edge, const std::vector<StmtPtr> &Body,
                                   Frame &F, AbsState &St,
                                   const CheckSite *BaseSite, Ctx &C) const {
  for (const StmtPtr &StPtr : Body) {
    const Stmt &Stmt = *StPtr;
    switch (Stmt.getKind()) {
    case Stmt::Kind::Requires: {
      const auto *Req = cast<RequiresStmt>(&Stmt);
      if (BaseSite && C.Flagged) {
        CheckSite Site = *BaseSite;
        Site.ReqLoc = Req->Loc;
        bool &Flag = (*C.Flagged)[Site];
        Flag = Flag || !definitelyHolds(F, *Req->Cond, St, C);
      }
      break;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&Stmt);
      LocSet Val = evalRhs(Edge, A->Rhs, F, St, C);
      storePathAbs(A->Lhs, Val, F, St, C);
      break;
    }
    case Stmt::Kind::Return:
      return evalRhs(Edge, cast<ReturnStmt>(&Stmt)->Value, F, St, C);
    case Stmt::Kind::If: {
      // Nondeterministic join of both branches (conditions are not
      // tracked precisely by the baseline).
      const auto *I = cast<IfStmt>(&Stmt);
      AbsState Copy = St;
      execBody(Edge, I->Then, F, St, BaseSite, C);
      Frame F2 = F;
      execBody(Edge, I->Else, F2, Copy, BaseSite, C);
      St.join(Copy);
      break;
    }
    }
  }
  return {};
}

LocSet AllocSiteTransfer::evalRhs(int Edge, const RhsExpr &R, Frame &F,
                                  AbsState &St, Ctx &C) const {
  if (!R.isNew())
    return evalPath(F, R.P, St);
  std::vector<LocSet> Args;
  for (const PathExpr &A : R.Args)
    Args.push_back(evalPath(F, A, St));
  return construct(Edge, R.NewType, Args, St, C);
}

void AllocSiteTransfer::storePathAbs(const PathExpr &P, LocSet Val, Frame &F,
                                     AbsState &St, const Ctx &C) const {
  if (P.Components.empty())
    return;
  if (P.Components.size() == 1 && F.Vars.count(P.Components[0]) &&
      !(F.Class && F.Class->findField(P.Components[0]))) {
    F.Vars[P.Components[0]] = std::move(Val);
    return;
  }
  PathExpr Prefix = P;
  Prefix.Components.pop_back();
  LocSet Objs;
  if (Prefix.Components.empty()) {
    auto It = F.Vars.find("this");
    if (It != F.Vars.end())
      Objs = It->second;
  } else {
    Objs = evalPath(F, Prefix, St);
  }
  storeField(Objs, P.Components.back(), std::move(Val), St, C);
}

BaselineResult core::analyzeAllocSite(const Spec &Spec,
                                      const cj::CFGMethod &Entry,
                                      support::CancelToken *Cancel,
                                      BaselineAnnotation *AnnotationOut) {
  const cj::CFGMethod &M = Entry;
  const AllocSiteTransfer T(Spec, M);
  BaselineResult Result;

  std::vector<AbsState> In(M.NumNodes);
  std::vector<bool> Reached(M.NumNodes, false);
  In[M.Entry] = AllocSiteTransfer::entryState(M);
  Reached[M.Entry] = true;

  std::vector<std::vector<int>> OutEdges(M.NumNodes);
  for (size_t E = 0; E != M.Edges.size(); ++E)
    OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

  // Sites allocated more than once per execution (summarized). The
  // Multi set is discovered during propagation but is not part of the
  // per-node states, so the fixpoint is re-seeded until it stabilizes;
  // check verdicts from the final pass then see the complete Multi set.
  std::set<Loc> Multi;
  size_t MultiBefore;
  do {
    MultiBefore = Multi.size();
    std::deque<int> Worklist;
    std::vector<bool> Queued(M.NumNodes, false);
    for (int N = 0; N != M.NumNodes; ++N)
      if (Reached[N]) {
        Worklist.push_back(N);
        Queued[N] = true;
      }
    while (!Worklist.empty()) {
      support::faultProbe("generic.allocsite");
      if (Cancel)
        Cancel->tick();
      int N = Worklist.front();
      Worklist.pop_front();
      Queued[N] = false;
      ++Result.Iterations;
      for (int EIdx : OutEdges[N]) {
        const cj::CFGEdge &E = M.Edges[EIdx];
        AbsState Out = In[N];
        T.apply(EIdx, Out, Multi, &Result.Flagged);
        bool Changed = !Reached[E.To] || In[E.To].join(Out);
        if (!Reached[E.To]) {
          In[E.To] = std::move(Out);
          Reached[E.To] = true;
        }
        if (Changed && !Queued[E.To]) {
          Queued[E.To] = true;
          Worklist.push_back(E.To);
        }
      }
    }
  } while (Multi.size() != MultiBefore);

  if (AnnotationOut) {
    AnnotationOut->In = std::move(In);
    AnnotationOut->Reached = std::move(Reached);
    AnnotationOut->Multi = std::move(Multi);
  }
  return Result;
}
