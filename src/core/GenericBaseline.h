//===----------------------------------------------------------------------===//
///
/// \file
/// The generic certification baseline of Section 3: analyze the
/// composite program (client + inlined Easl component behavior) with a
/// generic allocation-site-based heap analysis, and discharge each
/// requires clause by must-alias reasoning.
///
/// An allocation site abstracts all objects it creates; a site that may
/// allocate more than once per execution is summarized, and references
/// into a summarized site can never be proved must-equal. This is
/// exactly why the analysis false-alarms on the paper's versioned-loop
/// example ("An allocation-site based alias analysis will be unable to
/// certify that this fragment is free of CMP errors"), while the staged
/// certifier of Section 4 is precise.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_GENERICBASELINE_H
#define CANVAS_CORE_GENERICBASELINE_H

#include "client/CFG.h"
#include "core/Interpreter.h"
#include "easl/AST.h"
#include "support/Budget.h"

#include <map>

namespace canvas {
namespace core {

struct BaselineResult {
  /// Per requires obligation: true when the analysis could not prove it
  /// (a potential violation).
  std::map<CheckSite, bool> Flagged;
  unsigned Iterations = 0;

  unsigned numFlagged() const {
    unsigned N = 0;
    for (const auto &[Site, F] : Flagged)
      N += F;
    return N;
  }
};

/// Runs the intraprocedural allocation-site analysis on \p Entry.
/// \p Cancel, when given, bounds the fixpoint (see support/Budget.h).
BaselineResult analyzeAllocSite(const easl::Spec &Spec,
                                const cj::CFGMethod &Entry,
                                support::CancelToken *Cancel = nullptr);

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_GENERICBASELINE_H
