//===----------------------------------------------------------------------===//
///
/// \file
/// The generic certification baseline of Section 3: analyze the
/// composite program (client + inlined Easl component behavior) with a
/// generic allocation-site-based heap analysis, and discharge each
/// requires clause by must-alias reasoning.
///
/// An allocation site abstracts all objects it creates; a site that may
/// allocate more than once per execution is summarized, and references
/// into a summarized site can never be proved must-equal. This is
/// exactly why the analysis false-alarms on the paper's versioned-loop
/// example ("An allocation-site based alias analysis will be unable to
/// certify that this fragment is free of CMP errors"), while the staged
/// certifier of Section 4 is precise.
///
/// The one-edge transfer function (baseline::AllocSiteTransfer) is
/// exposed separately from the fixpoint driver so the proof-carrying-
/// certificate checker (cert::Checker) can re-apply edges against a
/// claimed fixpoint annotation without running the reseeded worklist.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_GENERICBASELINE_H
#define CANVAS_CORE_GENERICBASELINE_H

#include "client/CFG.h"
#include "core/Interpreter.h"
#include "easl/AST.h"
#include "support/Budget.h"

#include <map>
#include <set>

namespace canvas {
namespace core {
namespace baseline {

/// An allocation site: client CFG edge plus the ordinal of the `new`
/// inside that edge's (inlined) component behavior. -1 encodes the
/// unknown object.
using Loc = int;
constexpr Loc UnknownLoc = -1;

/// A may-point-to set. Contains UnknownLoc when the value is arbitrary.
using LocSet = std::set<Loc>;

struct AbsState {
  std::map<std::string, LocSet> Vars;
  std::map<std::pair<Loc, std::string>, LocSet> Heap;
  /// Sites already allocated along some path to this point; used to
  /// detect re-allocation (summarization).
  std::set<Loc> Allocated;

  bool join(const AbsState &O);
  bool operator==(const AbsState &O) const = default;
};

/// The one-edge transfer function of the allocation-site analysis:
/// applies a CFG action (inlining the component behavior of AllocComp /
/// CompCall edges) to an abstract state. Shared by the fixpoint driver
/// (analyzeAllocSite) and by cert::Checker; it carries no worklist,
/// reseed loop, or verdict state of its own.
class AllocSiteTransfer {
public:
  AllocSiteTransfer(const easl::Spec &Spec, const cj::CFGMethod &M)
      : S(Spec), M(M) {}

  /// The analysis' entry state for \p M: every component variable
  /// unknown.
  static AbsState entryState(const cj::CFGMethod &M);

  /// Applies edge \p Edge to \p St in place. \p Multi is the set of
  /// summarized (re-allocated) sites — read for must-alias reasoning
  /// and extended when the transfer discovers a re-allocation. When
  /// \p Flagged is non-null, each requires obligation's entry is OR-ed
  /// with "could not prove it" (sticky across calls).
  void apply(int Edge, AbsState &St, std::set<Loc> &Multi,
             std::map<CheckSite, bool> *Flagged) const;

private:
  struct Frame {
    const easl::ClassDecl *Class = nullptr;
    std::map<std::string, LocSet> Vars;
  };

  /// Per-application mutable context threaded through the recursive
  /// body execution (the transfer object itself stays const).
  struct Ctx {
    std::set<Loc> &Multi;
    std::map<CheckSite, bool> *Flagged;
    int AllocOrdinal = 0;
  };

  Loc freshSite(int Edge, AbsState &St, Ctx &C) const;
  LocSet evalPath(const Frame &F, const easl::PathExpr &P,
                  const AbsState &St) const;
  LocSet loadField(const LocSet &Objs, const std::string &Field,
                   const AbsState &St) const;
  void storeField(const LocSet &Objs, const std::string &Field, LocSet Val,
                  AbsState &St, const Ctx &C) const;
  bool mustEqual(const LocSet &A, const LocSet &B, const Ctx &C) const;
  bool definitelyHolds(const Frame &F, const easl::Expr &E,
                       const AbsState &St, const Ctx &C) const;
  LocSet construct(int Edge, const std::string &ClassName,
                   const std::vector<LocSet> &Args, AbsState &St,
                   Ctx &C) const;
  LocSet execBody(int Edge, const std::vector<easl::StmtPtr> &Body, Frame &F,
                  AbsState &St, const CheckSite *BaseSite, Ctx &C) const;
  LocSet evalRhs(int Edge, const easl::RhsExpr &R, Frame &F, AbsState &St,
                 Ctx &C) const;
  void storePathAbs(const easl::PathExpr &P, LocSet Val, Frame &F,
                    AbsState &St, const Ctx &C) const;

  const easl::Spec &S;
  const cj::CFGMethod &M;
};

} // namespace baseline

struct BaselineResult {
  /// Per requires obligation: true when the analysis could not prove it
  /// (a potential violation).
  std::map<CheckSite, bool> Flagged;
  unsigned Iterations = 0;

  unsigned numFlagged() const {
    unsigned N = 0;
    for (const auto &[Site, F] : Flagged)
      N += F;
    return N;
  }
};

/// The fixpoint annotation of the allocation-site analysis: the state
/// on entry to each reached node when the reseeded worklist drained,
/// plus the final summarized-site set. This is the evidence a
/// proof-carrying certificate serializes for cert::Checker.
struct BaselineAnnotation {
  std::vector<baseline::AbsState> In; ///< Indexed by node; valid iff Reached.
  std::vector<bool> Reached;
  std::set<baseline::Loc> Multi;
};

/// Runs the intraprocedural allocation-site analysis on \p Entry.
/// \p Cancel, when given, bounds the fixpoint (see support/Budget.h).
/// \p AnnotationOut, when given, receives the final per-node states.
BaselineResult analyzeAllocSite(const easl::Spec &Spec,
                                const cj::CFGMethod &Entry,
                                support::CancelToken *Cancel = nullptr,
                                BaselineAnnotation *AnnotationOut = nullptr);

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_GENERICBASELINE_H
