#include "core/EaslMachine.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace canvas;
using namespace canvas::core;
using namespace canvas::easl;

EaslMachine::ObjId EaslMachine::allocate(const ClassDecl *C) {
  Heap.push_back(Object{C, {}});
  return static_cast<ObjId>(Heap.size() - 1);
}

/// Resolves an Easl path to an object id (0 on null dereference).
EaslMachine::ObjId EaslMachine::evalPath(const Env &Frame,
                                         const ClassDecl *Class,
                                         const PathExpr &P) {
  if (P.Components.empty())
    return 0;
  ObjId Cur;
  size_t First = 1;
  auto It = Frame.find(P.Components.front());
  if (It != Frame.end()) {
    Cur = It->second;
  } else if (Class && Class->findField(P.Components.front())) {
    auto ThisIt = Frame.find("this");
    ObjId This = ThisIt == Frame.end() ? 0 : ThisIt->second;
    if (!This)
      return 0;
    Cur = Heap[This].Fields[P.Components.front()];
  } else {
    return 0;
  }
  for (size_t I = First; I < P.Components.size(); ++I) {
    if (!Cur)
      return 0;
    Cur = Heap[Cur].Fields[P.Components[I]];
  }
  return Cur;
}

bool EaslMachine::evalExpr(const Env &Frame, const ClassDecl *Class,
                           const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(&E);
    bool Eq =
        evalPath(Frame, Class, C->Lhs) == evalPath(Frame, Class, C->Rhs);
    return C->Negated ? !Eq : Eq;
  }
  case Expr::Kind::And: {
    for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
      if (!evalExpr(Frame, Class, *Op))
        return false;
    return true;
  }
  case Expr::Kind::Or: {
    for (const ExprPtr &Op : cast<OrExpr>(&E)->Operands)
      if (evalExpr(Frame, Class, *Op))
        return true;
    return false;
  }
  case Expr::Kind::Not:
    return !evalExpr(Frame, Class, *cast<NotExpr>(&E)->Operand);
  case Expr::Kind::BoolConst:
    return cast<BoolConstExpr>(&E)->Value;
  }
  canvas_unreachable("covered switch");
}

EaslMachine::ObjId EaslMachine::evalRhs(Env &Frame, const ClassDecl *Class,
                                        const RhsExpr &R) {
  if (!R.isNew())
    return evalPath(Frame, Class, R.P);
  std::vector<ObjId> Args;
  for (const PathExpr &A : R.Args)
    Args.push_back(evalPath(Frame, Class, A));
  return construct(R.NewType, Args);
}

EaslMachine::ObjId EaslMachine::construct(const std::string &ClassName,
                                          const std::vector<ObjId> &Args) {
  const ClassDecl *C = S->findClass(ClassName);
  if (!C)
    return 0; // Unknown component class: the reference stays null.
  ObjId Obj = allocate(C);
  const MethodDecl *Ctor = C->constructor();
  if (!Ctor)
    return Obj;
  Env Frame;
  Frame["this"] = Obj;
  for (size_t I = 0; I != Ctor->Params.size() && I != Args.size(); ++I)
    Frame[Ctor->Params[I].Name] = Args[I];
  execBody(Frame, C, Ctor->Body);
  return Obj;
}

EaslMachine::ObjId EaslMachine::callMethod(ObjId Recv,
                                           const std::string &Method,
                                           const std::vector<ObjId> &Args) {
  const ClassDecl *C = classOf(Recv);
  const MethodDecl *M = C ? C->findMethod(Method) : nullptr;
  if (!M)
    return 0;
  Env Frame;
  Frame["this"] = Recv;
  for (size_t I = 0; I != M->Params.size() && I != Args.size(); ++I)
    Frame[M->Params[I].Name] = Args[I];
  return execBody(Frame, C, M->Body);
}

/// Executes an Easl method body; returns the return value (0 if none).
/// Requires clauses are evaluated concretely and appended to Events.
EaslMachine::ObjId EaslMachine::execBody(Env &Frame, const ClassDecl *Class,
                                         const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &StPtr : Body) {
    if (Aborted)
      return 0;
    const Stmt &Stmt = *StPtr;
    switch (Stmt.getKind()) {
    case Stmt::Kind::Requires: {
      const auto *Req = cast<RequiresStmt>(&Stmt);
      bool Ok = evalExpr(Frame, Class, *Req->Cond);
      Events.push_back({Req->Loc, Ok});
      if (!Ok) {
        // The component throws; this execution ends here.
        Aborted = true;
        return 0;
      }
      break;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&Stmt);
      ObjId Val = evalRhs(Frame, Class, A->Rhs);
      storePath(Frame, Class, A->Lhs, Val);
      break;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(&Stmt);
      return evalRhs(Frame, Class, R->Value);
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&Stmt);
      const auto &Branch =
          evalExpr(Frame, Class, *I->Cond) ? I->Then : I->Else;
      if (ObjId Ret = execBody(Frame, Class, Branch))
        return Ret;
      break;
    }
    }
  }
  return 0;
}

void EaslMachine::storePath(Env &Frame, const ClassDecl *Class,
                            const PathExpr &P, ObjId Val) {
  if (P.Components.empty())
    return;
  // Variable target only for synthesized frames; Easl assigns fields.
  if (P.Components.size() == 1 && Frame.count(P.Components[0]) &&
      !(Class && Class->findField(P.Components[0]))) {
    Frame[P.Components[0]] = Val;
    return;
  }
  // Resolve to (object, last field).
  PathExpr Prefix = P;
  Prefix.Components.pop_back();
  ObjId Obj;
  if (Prefix.Components.empty()) {
    // Implicit this-field.
    auto It = Frame.find("this");
    Obj = It == Frame.end() ? 0 : It->second;
  } else {
    Obj = evalPath(Frame, Class, Prefix);
  }
  if (!Obj)
    return;
  Heap[Obj].Fields[P.Components.back()] = Val;
}
