//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation support for the Section 7 experiments: compares a static
/// certification report against the concrete reference executor's
/// ground truth, counting verified sites, flagged sites, false alarms
/// (flagged but unviolable) and missed violations (a soundness bug if
/// ever nonzero).
///
/// Comparison is at call-site granularity: one site per (method,
/// component-call location); a site is flagged when any of its requires
/// checks is flagged, and violating when some concretely explored
/// execution violates one of them.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_EVALUATION_H
#define CANVAS_CORE_EVALUATION_H

#include "core/Certifier.h"
#include "core/Interpreter.h"

namespace canvas {
namespace core {

struct SiteComparison {
  unsigned Sites = 0;          ///< Call sites explored by ground truth.
  unsigned ViolatingSites = 0; ///< Sites with a real (explored) violation.
  unsigned FlaggedSites = 0;   ///< Sites the certifier flagged.
  unsigned FalseAlarms = 0;    ///< Flagged but never violated.
  unsigned Missed = 0;         ///< Violated but not flagged (soundness!).
  bool Exhaustive = true;      ///< Ground truth explored every path.

  std::string str() const;
};

/// Runs the reference executor on \p P's main and compares with
/// \p Report.
SiteComparison compareWithGroundTruth(const CertificationReport &Report,
                                      const easl::Spec &Spec,
                                      const cj::Program &P,
                                      const InterpreterOptions &Opts = {});

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_EVALUATION_H
