#include "core/Certifier.h"

#include "boolprog/Interprocedural.h"
#include "boolprog/Witness.h"
#include "cert/Checker.h"
#include "cert/Emit.h"
#include "client/CFG.h"
#include "core/GenericBaseline.h"
#include "core/Replay.h"
#include "dataflow/Escape.h"
#include "dataflow/PointsTo.h"
#include "store/InputHash.h"
#include "support/TaskPool.h"
#include "tvla/Certify.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <new>

using namespace canvas;
using namespace canvas::core;

const char *core::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::SCMPIntra:
    return "scmp-intra";
  case EngineKind::SCMPInterproc:
    return "scmp-interproc";
  case EngineKind::GenericAllocSite:
    return "generic-allocsite";
  case EngineKind::TVLAIndependent:
    return "tvla-independent";
  case EngineKind::TVLARelational:
    return "tvla-relational";
  }
  return "?";
}

unsigned CertificationReport::numFlagged() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite;
  return N;
}

unsigned CertificationReport::numVerified() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Safe;
  return N;
}

std::string CertificationReport::str() const {
  std::string Out;
  for (const LintFinding &L : Lints)
    Out += L.Method + " " + L.Loc.str() + ": warning: " + L.What + "\n";
  for (const CheckVerdict &C : Checks) {
    Out += C.Method + " " + C.Loc.str() + ": " + C.What + ": " +
           outcomeStr(C.Outcome);
    if (C.Degraded)
      Out += " [degraded]";
    Out += "\n";
    if (!C.Witness.empty())
      Out += C.Witness.str();
  }
  Out += std::to_string(numChecks()) + " check(s), " +
         std::to_string(numVerified()) + " verified, " +
         std::to_string(numFlagged()) + " flagged";
  if (!Lints.empty())
    Out += ", " + std::to_string(Lints.size()) + " lint warning(s)";
  Out += "\n";
  if (PointsTo.Enabled) {
    Out += "points-to: " + std::to_string(PointsTo.Objects) + " object(s), " +
           std::to_string(PointsTo.Constraints) + " constraint(s), " +
           std::to_string(PointsTo.ReachableMethods) + "/" +
           std::to_string(PointsTo.TotalMethods) +
           " method(s) reachable, sites: " +
           std::to_string(PointsTo.LocalSites) + " local, " +
           std::to_string(PointsTo.ArgSites) + " arg-escaping, " +
           std::to_string(PointsTo.HeapSites) + " heap-escaping";
    if (PointsTo.PrunedMethods)
      Out += ", " + std::to_string(PointsTo.PrunedMethods) +
             " unreachable method(s) pruned";
    Out += "\n";
  }
  for (const MethodSliceSummary &MS : SliceSummaries) {
    if (MS.ForcedSingleReason.empty() && MS.Slices < 2)
      continue;
    Out += "slicing: " + MS.Method + ": ";
    if (!MS.ForcedSingleReason.empty())
      Out += "single slice (" + MS.ForcedSingleReason + ")";
    else
      Out += std::to_string(MS.Slices) + " slice(s)";
    Out += "\n";
  }
  if (Degraded) {
    Out += "engine degraded: requested " + std::string(engineName(Requested)) +
           ", ran " + EffectiveEngine + "\n";
    for (const StageAttempt &A : Stages)
      if (!A.Completed)
        Out += "  " + A.Engine + ": " +
               (A.FailReason.empty() ? "not attempted" : A.FailReason) + "\n";
  }
  return Out;
}

namespace canvas {
namespace core {
namespace detail {
/// See Certifier.h: the memo of the last whole-program points-to
/// solution. Valid distinguishes "no entry yet" from a cached solve; a
/// failed (budget-exhausted / fault-injected) solve is never cached, so
/// every certify() re-attempts it and degrades the same way.
struct PointsToCache {
  std::mutex Mu;
  bool Valid = false;
  uint64_t Key = 0;
  std::shared_ptr<const dataflow::PointsToResult> Result;
  PointsToReport Stats; ///< Solve-time statistics, replayed on a hit so
                        ///< the report's "points-to:" line is
                        ///< byte-identical to the cold run.
  /// Methods of the cached program whose alias-refined slice partition
  /// was REJECTED (forced single / no projected win): the gate decision
  /// is a pure function of (program, abstraction, points-to solution),
  /// all fixed under Key, so re-certifying the program replays the
  /// recorded summary instead of re-running definite assignment and the
  /// partition cost model per method. Cleared whenever Key changes.
  std::map<std::string, MethodSliceSummary> RejectedGates;
};
} // namespace detail
} // namespace core
} // namespace canvas

Certifier::Certifier(std::string_view SpecSource, EngineKind Engine,
                     DiagnosticEngine &Diags,
                     const wp::DerivationOptions &DOpts,
                     const CertifierOptions &Opts)
    : Engine(Engine), Opts(Opts),
      PTCache(std::make_shared<detail::PointsToCache>()) {
  // Hashed before parsing so the store key covers the spec exactly as
  // written: any textual edit invalidates every derived entry.
  SpecHash = cert::fnv1a(reinterpret_cast<const uint8_t *>(SpecSource.data()),
                         SpecSource.size());
  S = easl::parseSpec(SpecSource, Diags);
  if (Diags.hasErrors())
    return;
  if (!easl::checkSpec(S, Diags))
    return;
  Abs = wp::deriveAbstraction(S, DOpts, Diags);
}

CertificationReport
Certifier::certifySource(std::string_view ClientSource,
                         DiagnosticEngine &Diags) const {
  cj::Program P = cj::parseProgram(ClientSource, Diags);
  if (Diags.hasErrors())
    return {};
  return certify(P, Diags);
}

namespace {

/// Everything one engine rung produces. Kept separate from the report
/// and merged only when the rung completes, so a rung that throws
/// mid-run leaves no partial verdicts behind.
struct EngineRun {
  std::vector<CheckVerdict> Checks;
  std::vector<LintFinding> Lints;
  PreAnalysisSummary Pre;
  PointsToReport PointsTo;
  std::vector<MethodSliceSummary> SliceSummaries;
  InterprocStats Inter;
  TVLAStats Tvla;
  size_t BoolVars = 0;
  size_t MaxBoolVars = 0;
  std::vector<cert::Certificate> Certs;
  double EmitMicros = 0;
};

/// Runs \p Fn and adds its wall-clock time to \p Micros.
template <typename Fn> auto timed(double &Micros, Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  auto Result = F();
  auto T1 = std::chrono::steady_clock::now();
  Micros += std::chrono::duration<double, std::micro>(T1 - T0).count();
  return Result;
}

/// The option knobs folded into every store key: anything that can
/// change a verdict or a printed analysis artifact. Worker counts and
/// stage budgets are deliberately excluded — merges are canonical in
/// method-index order, so they affect wall-clock, never results.
std::string storeOptionsFingerprint(const CertifierOptions &O) {
  std::string F = "v1";
  F += O.PreAnalysis ? ":pre1" : ":pre0";
  F += O.Pre.Slice ? ":slice1" : ":slice0";
  F += O.PointsTo ? ":pt1" : ":pt0";
  F += ":tvla" + std::to_string(O.TVLAMaxStructuresPerPoint);
  return F;
}

/// Gates a store hit before it may answer: the store is untrusted bytes
/// on disk. The entry's certificate must pass the independent checker,
/// the stored verdict vector must be exactly as long as the canonical
/// check enumeration (a deleted check would silently shrink the
/// report), every proven verdict must be backed by a validated claim
/// and vice versa (for IFDS certificates the checker's full recomputed
/// verdict vector is compared instead — their claims index anchors, not
/// report positions), and every flagged verdict carrying a witness must
/// replay. Residual trust: the What/Loc strings of an entry are not
/// re-derived, so tampering there garbles report text — but can never
/// flip a verdict to proven without a claim the checker validates.
bool validateStoreEntry(const store::StoreEntry &E, EngineKind Engine,
                        const easl::Spec &S, const cj::ClientCFG &CFG,
                        cert::Checker &Ck, std::string &Why) {
  if (E.Engine != engineName(Engine)) {
    Why = "entry produced by engine '" + E.Engine + "', requested '" +
          engineName(Engine) + "'";
    return false;
  }
  if (!E.HasCert) {
    Why = "entry carries no certificate";
    return false;
  }
  if (E.CertHash != E.Cert.ContentHash) {
    Why = "certificate content hash does not match the committed hash";
    return false;
  }
  if (E.Cert.Unit != E.Unit) {
    Why = "certificate unit '" + E.Cert.Unit + "' does not match entry unit";
    return false;
  }
  const bool Ifds = E.Cert.Kind == cert::CertKind::Ifds;
  for (const CheckVerdict &C : E.Checks) {
    if (C.Degraded) {
      Why = "entry contains a degraded verdict";
      return false;
    }
    if (!Ifds && C.Method != E.Unit) {
      Why = "entry verdict attributed to foreign method '" + C.Method + "'";
      return false;
    }
  }
  cert::CheckResult CR = Ck.check(E.Cert);
  if (!CR.Valid) {
    Why = "certificate rejected: " + CR.Reason;
    return false;
  }
  if (E.Checks.size() != CR.NumChecks) {
    Why = "entry stores " + std::to_string(E.Checks.size()) +
          " verdict(s) but the canonical enumeration has " +
          std::to_string(CR.NumChecks);
    return false;
  }
  if (Ifds) {
    for (size_t I = 0; I != E.Checks.size(); ++I)
      if (E.Checks[I].Outcome != CR.Canonical[I]) {
        Why = "stored verdict #" + std::to_string(I) +
              " disagrees with the checker's recomputation";
        return false;
      }
  } else {
    std::map<uint32_t, CheckOutcome> ClaimAt;
    for (const cert::Claim &Cl : E.Cert.Claims)
      if (!ClaimAt.emplace(Cl.Check, Cl.Outcome).second) {
        Why = "duplicate claim for check #" + std::to_string(Cl.Check);
        return false;
      }
    for (size_t I = 0; I != E.Checks.size(); ++I) {
      const CheckOutcome O = E.Checks[I].Outcome;
      auto It = ClaimAt.find(static_cast<uint32_t>(I));
      const bool Proven =
          O == CheckOutcome::Safe || O == CheckOutcome::Unreachable;
      if (Proven && (It == ClaimAt.end() || It->second != O)) {
        Why = "proven verdict #" + std::to_string(I) +
              " is not backed by a certificate claim";
        return false;
      }
      if (!Proven && It != ClaimAt.end()) {
        Why = "certificate claims check #" + std::to_string(I) +
              " proven but the entry stores a flagged verdict";
        return false;
      }
    }
  }
  for (const CheckVerdict &C : E.Checks)
    if ((C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite) &&
        !C.Witness.empty()) {
      ReplayResult RR = replayWitness(S, CFG, C);
      if (!RR.validated()) {
        Why = "stored witness fails replay" +
              (RR.Detail.empty() ? std::string() : ": " + RR.Detail);
        return false;
      }
    }
  return true;
}

/// Assembles the store entries for the units the requested rung
/// actually analyzed (hits are skipped — they are already on disk).
/// Checks, certificates, and slice summaries are regrouped from the
/// merged report by unit name; a unit that somehow lacks a certificate
/// is not persisted rather than committing an entry the hit gate would
/// reject forever.
std::vector<store::StoreEntry>
buildStoreEntries(EngineKind Engine,
                  const std::map<std::string, uint64_t> &UnitHashes,
                  const std::map<std::string, store::StoreEntry> &Hits,
                  const CertificationReport &Report) {
  std::map<std::string, store::StoreEntry> ByUnit;
  for (const auto &[Unit, Hash] : UnitHashes) {
    if (Hits.count(Unit))
      continue;
    store::StoreEntry E;
    E.InputHash = Hash;
    E.Unit = Unit;
    E.Engine = engineName(Engine);
    ByUnit.emplace(Unit, std::move(E));
  }
  // The interprocedural engine's checks span methods but belong to the
  // single whole-program unit "".
  const bool Interproc = Engine == EngineKind::SCMPInterproc;
  for (const CheckVerdict &C : Report.Checks) {
    auto It = ByUnit.find(Interproc ? std::string() : C.Method);
    if (It != ByUnit.end())
      It->second.Checks.push_back(C);
  }
  for (const cert::Certificate &C : Report.Certificates) {
    auto It = ByUnit.find(C.Unit);
    if (It == ByUnit.end())
      continue;
    It->second.HasCert = true;
    It->second.Cert = C;
    It->second.CertHash = C.ContentHash;
  }
  for (const MethodSliceSummary &MS : Report.SliceSummaries) {
    auto It = ByUnit.find(MS.Method);
    if (It == ByUnit.end())
      continue;
    It->second.HasSummary = true;
    It->second.Slices = MS.Slices;
    It->second.ForcedSingleReason = MS.ForcedSingleReason;
  }
  std::vector<store::StoreEntry> Out;
  for (auto &UnitAndEntry : ByUnit)
    if (UnitAndEntry.second.HasCert)
      Out.push_back(std::move(UnitAndEntry.second));
  return Out;
}

void attachLints(std::vector<LintFinding> &Lints,
                 const dataflow::PreAnalysisResult &PA) {
  for (size_t I = 0; I != PA.Findings.size(); ++I) {
    const dataflow::UninitUse &U = PA.Findings[I];
    Lints.push_back(
        {PA.FindingMethods[I], U.Var, U.Loc,
         "component variable '" + U.Var +
             "' may be used before initialization in '" + U.ActionText + "'",
         U.RequiresBearing});
  }
}

/// The method abstraction governing \p A's requires obligations, or
/// null when the action carries none (mirrors the enumeration every
/// engine performs).
const wp::MethodAbstraction *
obligationAbstraction(const wp::DerivedAbstraction &Abs,
                      const cj::CFGMethod &M, const cj::Action &A) {
  if (A.K == cj::Action::Kind::AllocComp)
    return Abs.findMethod(A.Callee, "new");
  if (A.K != cj::Action::Kind::CompCall)
    return nullptr;
  for (const auto &[V, T] : M.CompVars)
    if (V == A.Recv)
      return Abs.findMethod(T, A.Callee);
  return nullptr;
}

/// Reports every requires obligation of \p M with a fixed \p Outcome:
/// the lint-only floor of the ladder (conservative Potential, marked
/// Degraded with \p Note), and closed-world pruning (Unreachable, not
/// degraded — the method provably never runs).
void enumerateObligations(const wp::DerivedAbstraction &Abs,
                          const cj::CFGMethod &M, const std::string &Note,
                          std::vector<CheckVerdict> &Out,
                          CheckOutcome Outcome = CheckOutcome::Potential,
                          bool Degraded = true) {
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const wp::MethodAbstraction *MA =
        obligationAbstraction(Abs, M, M.Edges[E].Act);
    if (!MA)
      continue;
    for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
      CheckVerdict V;
      V.Method = M.name();
      V.Loc = M.Edges[E].Act.Loc;
      V.What = M.Edges[E].Act.str() + " requires !" +
               MA->RequiresFalse[R].first.str(Abs.Families);
      V.ReqLoc = MA->RequiresFalse[R].second;
      V.Outcome = Outcome;
      V.Degraded = Degraded;
      if (Degraded)
        V.DegradeNote = Note;
      Out.push_back(std::move(V));
    }
  }
}

/// The per-slice certificate-mode result for one method: verdicts in
/// canonical check order plus the SlicePartition certificate.
struct SlicedCertAttempt {
  std::vector<CheckVerdict> Checks;
  cert::Certificate Cert;
  size_t BoolVars = 0;
  size_t MaxSliceBoolVars = 0;
  unsigned SliceRuns = 0;
  MethodSliceSummary Summary;
  double EmitMicros = 0;
};

/// Attempts per-slice certification of \p M under certificate emission:
/// the slicing gates and partition are recomputed on the untransformed
/// method, each slice's restricted boolean program is analyzed
/// independently, and the verdicts are merged in the canonical
/// (unrestricted) check order the SlicePartition certificate claims
/// against. Returns false — the caller then runs the plain unsliced
/// path — when the method does not split, a slicing gate fires, a
/// Definite verdict requires the unsliced confirmation run, or the
/// canonical check mapping cannot be established. \p Summary is filled
/// whenever the method has component variables, success or not.
bool certifyMethodSliced(const wp::DerivedAbstraction &Abs,
                         const cj::CFGMethod &M,
                         const dataflow::PointsToResult *PT,
                         detail::PointsToCache *GateMemo,
                         support::CancelToken *Tok, SlicedCertAttempt &Out) {
  if (M.CompVars.empty())
    return false;
  Out.Summary.Method = M.name();
  Out.Summary.Slices = 1;

  // \p GateMemo is only handed in when PT is the memo's own cached
  // solution (same program key), so a recorded rejection replays
  // exactly: same slice count, same forced-single reason, no verdicts
  // involved (the caller's unsliced fallback recomputes those).
  if (GateMemo) {
    std::lock_guard<std::mutex> L(GateMemo->Mu);
    auto It = GateMemo->RejectedGates.find(M.name());
    if (It != GateMemo->RejectedGates.end()) {
      Out.Summary = It->second;
      return false;
    }
  }

  const dataflow::CFGInfo Info(M);
  std::vector<dataflow::BitVector> MayUninit;
  dataflow::DefiniteAssignmentResult DA =
      dataflow::analyzeDefiniteAssignment(M, Info, &Abs, Tok, &MayUninit);
  std::vector<std::string> Universe;
  Universe.reserve(M.CompVars.size());
  for (const auto &NameAndType : M.CompVars)
    Universe.push_back(NameAndType.first);
  const dataflow::MethodAliasInfo *Alias =
      PT ? PT->aliasFor(M.name()) : nullptr;
  // In certificate mode every slice pays for a restricted build, an
  // annotation section, and the checker's mirror of both, so
  // alias-refined partitions go through the projected-win gate.
  dataflow::SliceCostModel Cost;
  for (const wp::PredicateFamily &Fam : Abs.Families)
    Cost.FamilySlotTypes.push_back(Fam.VarTypes);
  dataflow::SliceResult SR = dataflow::computeSlices(
      M, Universe, !DA.clean(), dataflow::abstractionReadsRetSources(Abs),
      Alias, &Cost);
  Out.Summary.Slices = static_cast<unsigned>(SR.Slices.size());
  if (SR.ForcedSingleReason)
    Out.Summary.ForcedSingleReason = SR.ForcedSingleReason;
  if (SR.Slices.size() < 2) {
    if (GateMemo) {
      std::lock_guard<std::mutex> L(GateMemo->Mu);
      GateMemo->RejectedGates.emplace(M.name(), Out.Summary);
    }
    return false;
  }

  // Per-slice restricted programs and fixpoints. Their construction
  // re-diagnoses what the canonical build below already reports, so
  // they run against a throwaway engine.
  DiagnosticEngine Quiet;
  std::vector<bp::BooleanProgram> BPs;
  BPs.reserve(SR.Slices.size());
  for (const std::vector<std::string> &Sl : SR.Slices) {
    bp::BuildRestriction Restrict;
    Restrict.Vars = Sl;
    BPs.push_back(bp::buildBooleanProgram(Abs, M, Quiet, Restrict));
  }
  std::vector<bp::IntraResult> Rs;
  Rs.reserve(BPs.size());
  for (const bp::BooleanProgram &BP : BPs)
    Rs.push_back(bp::analyzeIntraproc(BP, Tok));
  for (const bp::IntraResult &R : Rs)
    for (CheckOutcome O : R.CheckResults)
      if (O == CheckOutcome::Definite)
        return false; // Only the unsliced run may confirm a definite
                      // violation (it can truncate sibling paths).

  // Canonical (unrestricted) check enumeration; map each check to the
  // owning slice positionally per edge — the same mapping the
  // certificate checker validates. Only the checks are needed, not the
  // full unrestricted program (whose instantiation would dominate the
  // sliced path's fixed overhead).
  const std::vector<bp::Check> CanonChecks = bp::enumerateChecks(Abs, M, Quiet);
  std::map<int, std::vector<size_t>> CanonByEdge;
  for (size_t I = 0; I != CanonChecks.size(); ++I)
    CanonByEdge[CanonChecks[I].Edge].push_back(I);
  std::vector<std::pair<int, int>> Owner(CanonChecks.size(),
                                         std::make_pair(-1, -1));
  for (size_t SI = 0; SI != BPs.size(); ++SI) {
    std::map<int, std::vector<size_t>> ByEdge;
    for (size_t J = 0; J != BPs[SI].Checks.size(); ++J)
      ByEdge[BPs[SI].Checks[J].Edge].push_back(J);
    for (const auto &EdgeAndChecks : ByEdge) {
      auto CIt = CanonByEdge.find(EdgeAndChecks.first);
      const std::vector<size_t> &Js = EdgeAndChecks.second;
      if (CIt == CanonByEdge.end() || CIt->second.size() != Js.size())
        return false;
      for (size_t K = 0; K != Js.size(); ++K) {
        size_t CI = CIt->second[K];
        const bp::Check &A = CanonChecks[CI];
        const bp::Check &B = BPs[SI].Checks[Js[K]];
        if (A.What != B.What || !(A.Loc == B.Loc) || Owner[CI].first >= 0)
          return false;
        Owner[CI] = {static_cast<int>(SI), static_cast<int>(Js[K])};
      }
    }
  }
  for (const std::pair<int, int> &O : Owner)
    if (O.first < 0)
      return false; // A check no slice owns cannot be claimed.

  // Merged verdicts in canonical order; witnesses come from the owning
  // slice's engine (the restricted program runs on the original CFG, so
  // no edge remapping is needed).
  std::vector<CheckOutcome> Outcomes(CanonChecks.size());
  std::vector<std::unique_ptr<bp::IntraWitnessEngine>> WEs(BPs.size());
  for (size_t I = 0; I != CanonChecks.size(); ++I) {
    const int SI = Owner[I].first, J = Owner[I].second;
    Outcomes[I] = Rs[SI].CheckResults[J];
    CheckVerdict V;
    V.Method = M.name();
    V.Loc = CanonChecks[I].Loc;
    V.What = CanonChecks[I].What;
    V.ReqLoc = CanonChecks[I].ReqLoc;
    V.Outcome = Outcomes[I];
    if (V.Outcome == CheckOutcome::Potential) {
      if (!WEs[SI])
        WEs[SI] = std::make_unique<bp::IntraWitnessEngine>(BPs[SI]);
      V.Witness = WEs[SI]->witnessFor(J);
    }
    Out.Checks.push_back(std::move(V));
  }

  std::vector<cert::SliceEvidence> Ev;
  Ev.reserve(BPs.size());
  for (size_t SI = 0; SI != BPs.size(); ++SI)
    Ev.push_back({SR.Slices[SI], &BPs[SI], &Rs[SI]});
  Out.Cert = timed(Out.EmitMicros, [&] {
    // Mode-1 (points-to) evidence only when the partition actually used
    // the alias groups; a legacy partition is checkable by the local
    // gates alone.
    return cert::emitSlicePartition(M, Ev, Outcomes, MayUninit,
                                    Alias ? PT : nullptr);
  });
  Out.SliceRuns = static_cast<unsigned>(BPs.size());
  for (const bp::BooleanProgram &BP : BPs) {
    Out.BoolVars += BP.Vars.size();
    Out.MaxSliceBoolVars = std::max(Out.MaxSliceBoolVars, BP.Vars.size());
  }
  return true;
}

/// Runs one ladder rung to completion under \p Tok's budget; throws
/// CertifyError on exhaustion, injected faults, or checked invariants.
///
/// Per-method engines (SCMPIntra, GenericAllocSite, both TVLA modes)
/// fan their methods out on \p Pool: each task analyzes one method into
/// a private slot with a private DiagnosticEngine (the shared engine is
/// not thread-safe), and slots are merged in method-index order after
/// the pool drains. A rung that throws merges nothing — no partial
/// verdicts and no partial diagnostics. SCMPInterproc is a
/// whole-program analysis and stays serial.
///
/// \p StoreHits, when non-null, maps unit names to pre-validated store
/// entries (checker-gated by the supervisor before the fan-out): a task
/// whose unit has a hit reproduces the stored verdicts, certificate,
/// and slice summary instead of running the engine. The map is only
/// read concurrently.
void runEngine(EngineKind K, const easl::Spec &S,
               const wp::DerivedAbstraction &Abs,
               const CertifierOptions &Opts, const cj::ClientCFG &CFG,
               const std::map<std::string, store::StoreEntry> *StoreHits,
               detail::PointsToCache *PTC, DiagnosticEngine &Diags,
               support::CancelToken &Tok, support::TaskPool &Pool,
               EngineRun &Run) {
  // The Stage-0 lint runs for every engine; SCMPIntra folds it into its
  // own pre-analysis below — except in certificate-emission mode, where
  // SCMPIntra skips the verdict-preserving transformations (a sliced
  // annotation is not independently checkable) and takes the lint here
  // like everyone else.
  if (Opts.PreAnalysis &&
      (K != EngineKind::SCMPIntra || Opts.EmitCertificates)) {
    dataflow::PreAnalysisOptions LintOnly = Opts.Pre;
    LintOnly.EliminateDeadStores = false;
    LintOnly.Slice = false;
    LintOnly.Cancel = &Tok;
    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, LintOnly);
    attachLints(Run.Lints, PA);
    Run.Pre.Enabled = true;
  }

  switch (K) {
  case EngineKind::SCMPIntra: {
    // Optional whole-program points-to & escape pre-analysis. A failure
    // here (budget exhaustion, the injected "points-to" fault) degrades
    // precision — the engine continues with the unrefined slicing gates
    // — rather than failing the rung.
    std::shared_ptr<const dataflow::PointsToResult> PT;
    if (Opts.PointsTo && CFG.Prog) {
      // The solve is whole-program and the spec/abstraction are fixed
      // per certifier, so the structural program hash alone keys the
      // memo; hashing is linear in the CFG, the solve is not.
      const uint64_t Key =
          store::programInputHash(CFG, /*Context=*/0x70742D6361636865ULL);
      if (PTC) {
        std::lock_guard<std::mutex> L(PTC->Mu);
        if (PTC->Valid && PTC->Key == Key) {
          PT = PTC->Result;
          Run.PointsTo = PTC->Stats;
        }
      }
      if (!PT)
        try {
          auto Result = std::make_shared<dataflow::PointsToResult>(
              dataflow::analyzePointsTo(*CFG.Prog, S, &Tok));
          dataflow::EscapeResult Esc =
              dataflow::classifyEscapes(Result->Sys, Result->Sol);
          Run.PointsTo.Enabled = true;
          Run.PointsTo.HasMain = Result->Sys.HasMain;
          Run.PointsTo.Objects = Result->Stats.Objects;
          Run.PointsTo.Constraints = Result->Stats.Constraints;
          Run.PointsTo.Iterations = Result->Stats.Iterations;
          Run.PointsTo.ReachableMethods = Result->Stats.ReachableMethods;
          Run.PointsTo.TotalMethods = Result->Stats.TotalMethods;
          Run.PointsTo.LocalSites = Esc.NumLocal;
          Run.PointsTo.ArgSites = Esc.NumArg;
          Run.PointsTo.HeapSites = Esc.NumHeap;
          PT = std::move(Result);
          if (PTC) {
            std::lock_guard<std::mutex> L(PTC->Mu);
            if (PTC->Key != Key)
              PTC->RejectedGates.clear();
            PTC->Valid = true;
            PTC->Key = Key;
            PTC->Result = PT;
            PTC->Stats = Run.PointsTo;
          }
        } catch (const CertifyError &) {
          // Unrefined gates stay sound without the points-to result. If
          // the budget is exhausted the engine's own next tick fails
          // the rung as usual. Failed solves are never memoized.
        }
    }

    // The gate memo is only valid alongside its own points-to solution.
    detail::PointsToCache *GateMemo = PT && PTC ? PTC : nullptr;

    if (!Opts.PreAnalysis || Opts.EmitCertificates) {
      const bool TrySliced =
          Opts.EmitCertificates && Opts.PreAnalysis && Opts.Pre.Slice;
      struct Slot {
        std::vector<CheckVerdict> Checks;
        std::vector<cert::Certificate> Certs;
        DiagnosticEngine Diags;
        MethodSliceSummary Summary;
        unsigned SliceRuns = 0;
        bool FellBack = false;
        size_t BoolVars = 0;
        size_t MaxBoolVars = 0;
        double EmitMicros = 0;
      };
      std::vector<Slot> Slots(CFG.Methods.size());
      std::vector<std::function<void()>> Tasks;
      Tasks.reserve(CFG.Methods.size());
      for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
        Tasks.push_back([&, MI] {
          const cj::CFGMethod &M = CFG.Methods[MI];
          Slot &Out = Slots[MI];
          if (StoreHits) {
            auto HitIt = StoreHits->find(M.name());
            if (HitIt != StoreHits->end()) {
              const store::StoreEntry &SE = HitIt->second;
              Out.Checks = SE.Checks;
              Out.Certs.push_back(SE.Cert);
              if (SE.HasSummary) {
                Out.Summary.Method = M.name();
                Out.Summary.Slices = SE.Slices;
                Out.Summary.ForcedSingleReason = SE.ForcedSingleReason;
              }
              return;
            }
          }
          if (TrySliced) {
            SlicedCertAttempt A;
            if (certifyMethodSliced(Abs, M, PT.get(), GateMemo, &Tok, A)) {
              Out.Checks = std::move(A.Checks);
              Out.Certs.push_back(std::move(A.Cert));
              Out.BoolVars = A.BoolVars;
              Out.MaxBoolVars = A.MaxSliceBoolVars;
              Out.SliceRuns = A.SliceRuns;
              Out.Summary = std::move(A.Summary);
              Out.EmitMicros = A.EmitMicros;
              return;
            }
            // The method split but could not be certified per-slice
            // (definite violation or no canonical mapping): rerun
            // unsliced below, like the non-certificate fallback.
            Out.FellBack = A.Summary.Slices > 1;
            Out.Summary = std::move(A.Summary);
          }
          bp::BooleanProgram BP = bp::buildBooleanProgram(Abs, M, Out.Diags);
          bp::IntraResult R = bp::analyzeIntraproc(BP, &Tok);
          Out.BoolVars = BP.Vars.size();
          Out.MaxBoolVars = BP.Vars.size();
          if (Opts.EmitCertificates)
            Out.Certs.push_back(timed(
                Out.EmitMicros, [&] { return cert::emitBoolIntra(BP, R); }));
          std::unique_ptr<bp::IntraWitnessEngine> WE;
          for (size_t I = 0; I != BP.Checks.size(); ++I) {
            CheckVerdict V;
            V.Method = M.name();
            V.Loc = BP.Checks[I].Loc;
            V.What = BP.Checks[I].What;
            V.Outcome = R.CheckResults[I];
            V.ReqLoc = BP.Checks[I].ReqLoc;
            if (V.Outcome == CheckOutcome::Potential ||
                V.Outcome == CheckOutcome::Definite) {
              if (!WE)
                WE = std::make_unique<bp::IntraWitnessEngine>(BP);
              V.Witness = WE->witnessFor(I);
            }
            Out.Checks.push_back(std::move(V));
          }
        });
      Pool.runAll(Tasks);
      for (Slot &Out : Slots) {
        Diags.mergeFrom(Out.Diags);
        Run.BoolVars += Out.BoolVars;
        Run.MaxBoolVars = std::max(Run.MaxBoolVars, Out.MaxBoolVars);
        Run.EmitMicros += Out.EmitMicros;
        Run.Pre.SliceRuns += Out.SliceRuns;
        Run.Pre.FallbackMethods += Out.FellBack;
        if (Out.Summary.Slices > 1)
          ++Run.Pre.MultiSliceMethods;
        if (!Out.Summary.Method.empty())
          Run.SliceSummaries.push_back(std::move(Out.Summary));
        for (CheckVerdict &V : Out.Checks)
          Run.Checks.push_back(std::move(V));
        for (cert::Certificate &Cert : Out.Certs)
          Run.Certs.push_back(std::move(Cert));
      }
      return;
    }

    dataflow::PreAnalysisOptions PreOpts = Opts.Pre;
    PreOpts.Cancel = &Tok;
    PreOpts.PointsTo = PT.get();
    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, PreOpts);
    attachLints(Run.Lints, PA);
    Run.Pre.Enabled = true;
    Run.Pre.EdgesPruned = PA.totalEdgesPruned();
    Run.Pre.DeadStoresRemoved = PA.totalDeadStores();
    Run.Pre.VarsDropped = PA.totalVarsDropped();
    Run.Pre.MultiSliceMethods = PA.multiSliceMethods();
    for (const dataflow::MethodPlan &Plan : PA.Plans)
      if (!Plan.Retained.empty()) {
        MethodSliceSummary MS;
        MS.Method = Plan.Source->name();
        MS.Slices = static_cast<unsigned>(Plan.Slices.size());
        if (Plan.ForcedSingleReason)
          MS.ForcedSingleReason = Plan.ForcedSingleReason;
        Run.SliceSummaries.push_back(std::move(MS));
      }

    // Closed-world pruning: under a solved points-to system with a
    // main() method, a method unreachable along the resolved call graph
    // never executes, so its obligations are discharged as Unreachable
    // without running the engine.
    const bool Prune = PT && PT->Sys.HasMain;

    struct Slot {
      std::vector<CheckVerdict> Checks;
      DiagnosticEngine Diags;
      unsigned SliceRuns = 0;
      unsigned FellBack = 0;
      bool Pruned = false;
      size_t BoolVars = 0;
      size_t MaxSliceBoolVars = 0;
    };
    std::vector<Slot> Slots(PA.Plans.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(PA.Plans.size());
    for (size_t PI = 0; PI != PA.Plans.size(); ++PI)
      Tasks.push_back([&, PI] {
        const dataflow::MethodPlan &Plan = PA.Plans[PI];
        Slot &Out = Slots[PI];
        if (Prune && !PT->Reachable.count(Plan.Source->name())) {
          Out.Pruned = true;
          enumerateObligations(Abs, *Plan.Source, "", Out.Checks,
                               CheckOutcome::Unreachable, false);
          return;
        }
        bp::SlicedIntraResult SR = bp::analyzeIntraprocSliced(
            Abs, Plan.CFG, Plan.Slices, Out.Diags, &Tok);
        Out.SliceRuns = SR.SliceRuns;
        Out.FellBack = SR.FellBack;
        Out.BoolVars = SR.BoolVars;
        Out.MaxSliceBoolVars = SR.MaxSliceBoolVars;

        // Interleave the engine's verdicts with the obligations of
        // pruned (entry-unreachable) edges, restoring original edge
        // order.
        const std::string Name = Plan.Source->name();
        size_t I = 0, D = 0;
        while (I != SR.Items.size() || D != Plan.DroppedChecks.size()) {
          bool TakeDropped =
              I == SR.Items.size() ||
              (D != Plan.DroppedChecks.size() &&
               Plan.DroppedChecks[D].OrigEdge <
                   Plan.OrigEdgeIndex[SR.Items[I].Edge]);
          if (TakeDropped) {
            const dataflow::DroppedCheck &DC = Plan.DroppedChecks[D++];
            CheckRecord Rec;
            Rec.Method = Name;
            Rec.Loc = DC.Loc;
            Rec.What = DC.What;
            Rec.Outcome = CheckOutcome::Unreachable;
            Out.Checks.push_back(std::move(Rec));
          } else {
            bp::SlicedCheckItem It = SR.Items[I++];
            It.Rec.Method = Name;
            // Witness steps refer to the transformed working copy;
            // remap them onto the original method so the story (and the
            // replay checker) sees the untransformed source edges.
            for (WitnessStep &WS : It.Rec.Witness.Steps) {
              if (WS.Edge < 0 ||
                  static_cast<size_t>(WS.Edge) >= Plan.OrigEdgeIndex.size())
                continue;
              WS.Edge = Plan.OrigEdgeIndex[WS.Edge];
              const cj::Action &A = Plan.Source->Edges[WS.Edge].Act;
              WS.Loc = A.Loc;
              if (WS.K != WitnessStep::Kind::Check)
                WS.ActionText = A.str();
            }
            Out.Checks.push_back(std::move(It.Rec));
          }
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Diags.mergeFrom(Out.Diags);
      Run.Pre.SliceRuns += Out.SliceRuns;
      Run.Pre.FallbackMethods += Out.FellBack;
      Run.PointsTo.PrunedMethods += Out.Pruned;
      Run.BoolVars += Out.BoolVars;
      Run.MaxBoolVars = std::max(Run.MaxBoolVars, Out.MaxSliceBoolVars);
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
    }
    return;
  }
  case EngineKind::SCMPInterproc: {
    if (StoreHits) {
      auto HitIt = StoreHits->find(std::string());
      if (HitIt != StoreHits->end()) {
        Run.Checks = HitIt->second.Checks;
        Run.Certs.push_back(HitIt->second.Cert);
        return;
      }
    }
    // The supervisor skips this rung when main() is absent.
    const cj::CFGMethod *Main = CFG.mainCFG();
    bp::InterprocModel Model(Abs, CFG, *Main, Diags);
    bp::IfdsTabulation Tab;
    bp::InterResult R = bp::analyzeInterproc(
        Model, &Tok, Opts.EmitCertificates ? &Tab : nullptr);
    if (Opts.EmitCertificates)
      Run.Certs.push_back(
          timed(Run.EmitMicros, [&] { return cert::emitIfds(Model, Tab); }));
    Run.Inter.SummaryIterations = R.SummaryIterations;
    Run.Inter.ExplodedNodes = R.ExplodedNodes;
    Run.Inter.PathEdges = R.PathEdges;
    Run.Inter.Summaries = R.Summaries;
    Run.Inter.WitnessMicros = R.WitnessMicros;
    Run.Checks = std::move(R.Checks);
    return;
  }
  case EngineKind::GenericAllocSite: {
    struct Slot {
      std::vector<CheckVerdict> Checks;
      std::vector<cert::Certificate> Certs;
      double EmitMicros = 0;
    };
    std::vector<Slot> Slots(CFG.Methods.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(CFG.Methods.size());
    for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
      Tasks.push_back([&, MI] {
        const cj::CFGMethod &M = CFG.Methods[MI];
        Slot &Out = Slots[MI];
        if (StoreHits) {
          auto HitIt = StoreHits->find(M.name());
          if (HitIt != StoreHits->end()) {
            Out.Checks = HitIt->second.Checks;
            Out.Certs.push_back(HitIt->second.Cert);
            return;
          }
        }
        BaselineAnnotation Ann;
        BaselineResult R = analyzeAllocSite(
            S, M, &Tok, Opts.EmitCertificates ? &Ann : nullptr);
        if (Opts.EmitCertificates)
          Out.Certs.push_back(timed(Out.EmitMicros, [&] {
            return cert::emitAllocSite(M, Ann, R);
          }));
        for (const auto &[Site, Flagged] : R.Flagged) {
          CheckRecord Rec;
          Rec.Method = Site.Method;
          Rec.Loc = M.Edges[Site.Edge].Act.Loc;
          Rec.What = M.Edges[Site.Edge].Act.str() + " requires (spec " +
                     Site.ReqLoc.str() + ")";
          Rec.Outcome = Flagged ? CheckOutcome::Potential : CheckOutcome::Safe;
          Rec.ReqLoc = Site.ReqLoc;
          Out.Checks.push_back(std::move(Rec));
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Run.EmitMicros += Out.EmitMicros;
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
      for (cert::Certificate &Cert : Out.Certs)
        Run.Certs.push_back(std::move(Cert));
    }
    return;
  }
  case EngineKind::TVLAIndependent:
  case EngineKind::TVLARelational: {
    struct Slot {
      std::vector<CheckVerdict> Checks;
      std::vector<cert::Certificate> Certs;
      DiagnosticEngine Diags;
      TVLAStats Tvla;
      double EmitMicros = 0;
    };
    std::vector<Slot> Slots(CFG.Methods.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(CFG.Methods.size());
    for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
      Tasks.push_back([&, MI, K] {
        const cj::CFGMethod &M = CFG.Methods[MI];
        Slot &Out = Slots[MI];
        if (StoreHits) {
          auto HitIt = StoreHits->find(M.name());
          if (HitIt != StoreHits->end()) {
            Out.Checks = HitIt->second.Checks;
            Out.Certs.push_back(HitIt->second.Cert);
            return;
          }
        }
        tvla::TVLAOptions TO;
        TO.Relational = K == EngineKind::TVLARelational;
        TO.MaxStructuresPerPoint = Opts.TVLAMaxStructuresPerPoint;
        TO.Cancel = &Tok;
        tvla::PointAnnotation Ann;
        if (Opts.EmitCertificates)
          TO.AnnotationOut = &Ann;
        tvla::TVLAResult R = tvla::certifyWithTVLA(S, Abs, M, TO, Out.Diags);
        if (Opts.EmitCertificates)
          Out.Certs.push_back(timed(Out.EmitMicros, [&] {
            return cert::emitTvla(Abs, M, Ann, R, TO.Relational);
          }));
        Out.Tvla.InternedStructures = R.InternedStructures;
        Out.Tvla.TransferCacheHits = R.TransferCacheHits;
        Out.Tvla.TransferCacheMisses = R.TransferCacheMisses;
        Out.Tvla.MaxStructuresPerPoint = R.MaxStructuresPerPoint;
        for (const auto &C : R.Checks) {
          CheckRecord Rec;
          Rec.Method = M.name();
          Rec.Loc = C.Loc;
          Rec.What = C.What;
          Rec.Outcome = C.Outcome;
          Out.Checks.push_back(std::move(Rec));
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Diags.mergeFrom(Out.Diags);
      Run.Tvla.InternedStructures += Out.Tvla.InternedStructures;
      Run.Tvla.TransferCacheHits += Out.Tvla.TransferCacheHits;
      Run.Tvla.TransferCacheMisses += Out.Tvla.TransferCacheMisses;
      Run.Tvla.MaxStructuresPerPoint = std::max(
          Run.Tvla.MaxStructuresPerPoint, Out.Tvla.MaxStructuresPerPoint);
      Run.EmitMicros += Out.EmitMicros;
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
      for (cert::Certificate &Cert : Out.Certs)
        Run.Certs.push_back(std::move(Cert));
    }
    return;
  }
  }
}

} // namespace

CertificationReport Certifier::certify(const cj::Program &P,
                                       DiagnosticEngine &Diags) const {
  CertificationReport Report;
  Report.Requested = Engine;
  Report.EffectiveEngine = engineName(Engine);
  cj::ClientCFG CFG = cj::buildCFG(P, S, Diags);
  if (Diags.hasErrors())
    return Report;

  // Persistent certificate store. Every analyzed unit must carry a
  // certificate (an entry without one is unusable — the hit gate would
  // reject it), so an active store forces emission on locally. The
  // store serves and fills only the requested engine's rung: degraded
  // fallback results are never persisted.
  CertifierOptions EOpts = Opts;
  if (!EOpts.StorePath.empty())
    EOpts.EmitCertificates = true;

  std::unique_ptr<store::CertStore> Store;
  std::map<std::string, store::StoreEntry> StoreHits;
  std::map<std::string, uint64_t> UnitHashes;
  if (!EOpts.StorePath.empty()) {
    Report.Store.Enabled = true;
    Report.Store.Path = EOpts.StorePath;
    Report.Store.ReadOnly = EOpts.StoreMode == store::StoreMode::ReadOnly;
    try {
      Store =
          std::make_unique<store::CertStore>(EOpts.StorePath, EOpts.StoreMode);
    } catch (const CertifyError &E) {
      // A store that cannot open (or recover) is a robustness event,
      // not a certification failure: record it and run storeless.
      Report.Store.Incidents.push_back({"", "StoreIO", E.message()});
    }
  }
  if (Store) {
    const uint64_t Ctx =
        store::contextFingerprint(SpecHash, Abs.str(), engineName(Engine),
                                  storeOptionsFingerprint(EOpts));
    const uint64_t ProgHash = store::programInputHash(CFG, Ctx);
    if (Engine == EngineKind::SCMPInterproc) {
      UnitHashes[std::string()] = ProgHash;
    } else {
      UnitHashes = store::methodInputHashes(CFG, Ctx);
      if (EOpts.PointsTo)
        // The whole-program points-to pre-analysis couples every method
        // to the full program (alias groups and closed-world
        // reachability can shift under any edit), so fold the program
        // hash into each per-method key.
        for (auto &UnitAndHash : UnitHashes) {
          cert::Writer W;
          W.u64(UnitAndHash.second);
          W.u64(ProgHash);
          UnitAndHash.second =
              cert::fnv1a(W.buffer().data(), W.buffer().size());
        }
    }
    cert::Checker Ck(S, Abs, CFG);
    for (const auto &[Unit, Hash] : UnitHashes) {
      std::unique_ptr<store::StoreEntry> E;
      try {
        E = Store->get(Hash, Unit);
      } catch (const CertifyError &Err) {
        Report.Store.Incidents.push_back({Unit, "StoreIO", Err.message()});
        ++Report.Store.Misses;
        continue;
      }
      if (!E) {
        ++Report.Store.Misses;
        continue;
      }
      std::string Why;
      bool Accept = false;
      try {
        Accept = validateStoreEntry(*E, Engine, S, CFG, Ck, Why);
      } catch (const CertifyError &Err) {
        // An injected cert-check fault (or checker budget exhaustion)
        // while gating: the entry is unproven, treat it as rejected.
        Why = std::string(certifyErrorKindName(Err.kind())) + ": " +
              Err.message();
      }
      if (!Accept) {
        ++Report.Store.Rejected;
        ++Report.Store.Misses;
        Store->evict(Hash, Unit, Why);
        Report.Store.Incidents.push_back({Unit, "StoreEntryInvalid", Why});
        continue;
      }
      ++Report.Store.Hits;
      StoreHits.emplace(Unit, std::move(*E));
    }
  }
  auto FinalizeStore = [&] {
    if (!Store)
      return;
    const store::StoreStats &SS = Store->stats();
    Report.Store.Quarantined = SS.Quarantined + SS.SkippedInvalid;
    Report.Store.Writes = SS.Writes;
    std::vector<store::StoreIncident> Inc = Store->takeIncidents();
    for (store::StoreIncident &I : Inc)
      Report.Store.Incidents.push_back(std::move(I));
  };

  // The degradation ladder, most precise/expensive first. The requested
  // engine is the first rung; with degradation on, every cheaper engine
  // below it is a fallback.
  static const EngineKind Ladder[] = {
      EngineKind::TVLARelational, EngineKind::TVLAIndependent,
      EngineKind::SCMPInterproc, EngineKind::SCMPIntra,
      EngineKind::GenericAllocSite};
  std::vector<EngineKind> Rungs;
  if (!Opts.Degrade) {
    Rungs.push_back(Engine);
  } else {
    bool Found = false;
    for (EngineKind K : Ladder) {
      Found |= K == Engine;
      if (Found)
        Rungs.push_back(K);
    }
  }

  support::TaskPool Pool(Opts.Workers);
  std::string FirstFailure;
  for (EngineKind K : Rungs) {
    if (K == EngineKind::SCMPInterproc && !CFG.mainCFG()) {
      if (!Opts.Degrade) {
        Diags.error(SourceLoc(), "interprocedural certification requires a "
                                 "main() method");
        FinalizeStore();
        return Report;
      }
      StageAttempt At;
      At.Engine = engineName(K);
      At.FailReason = "no main() method in client";
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      continue;
    }

    support::StageBudget B = Opts.Budget;
    auto It = Opts.EngineBudgets.find(K);
    if (It != Opts.EngineBudgets.end())
      B = It->second;
    support::CancelToken Tok(B, engineName(K));
    StageAttempt At;
    At.Engine = engineName(K);
    try {
      EngineRun Run;
      runEngine(K, S, Abs, EOpts, CFG,
                Store && K == Engine ? &StoreHits : nullptr, PTCache.get(),
                Diags, Tok, Pool, Run);

      CertificateStats CS;
      CS.EmitMicros = Run.EmitMicros;
      for (const cert::Certificate &Cert : Run.Certs) {
        ++CS.Count;
        CS.Bytes += Cert.bytes();
        CS.RawEntries += Cert.RawEntries;
        CS.StoredEntries += Cert.StoredEntries;
      }
      if (EOpts.EmitCertificates && EOpts.CheckCertificates) {
        // Re-validate before accepting the rung: a rejected certificate
        // means the rung's Proven verdicts are not independently
        // justified, which is a structured failure (never a silent
        // downgrade) and, with degradation on, falls down the ladder.
        cert::Checker Ck(S, Abs, CFG);
        for (const cert::Certificate &Cert : Run.Certs) {
          cert::CheckResult CR = Ck.check(Cert);
          CS.CheckMicros += CR.Micros;
          if (!CR.Valid)
            throw CertifyError(CertifyErrorKind::CertificateInvalid,
                               "certificate rejected: " + CR.Reason,
                               engineName(K));
        }
        CS.Checked = true;
      }
      Report.Certificates = std::move(Run.Certs);
      Report.CertStats = CS;

      At.Completed = true;
      At.Spend = Tok.spend();
      Report.Stages.push_back(std::move(At));
      Report.Checks = std::move(Run.Checks);
      Report.Lints = std::move(Run.Lints);
      Report.Pre = Run.Pre;
      Report.PointsTo = Run.PointsTo;
      Report.SliceSummaries = std::move(Run.SliceSummaries);
      Report.Inter = Run.Inter;
      Report.Tvla = Run.Tvla;
      Report.BoolVars = Run.BoolVars;
      Report.MaxBoolVars = Run.MaxBoolVars;
      Report.EffectiveEngine = engineName(K);
      Report.Degraded = K != Engine;
      if (Report.Degraded) {
        // The cheaper engine's Safe/Unreachable verdicts are sound as
        // reported; its unproven verdicts may be conservatism the
        // requested engine would have discharged, so mark those.
        std::string Note = "engine degraded from " +
                           std::string(engineName(Engine)) + " to " +
                           engineName(K) + " (" + FirstFailure + ")";
        for (CheckVerdict &C : Report.Checks)
          if (C.Outcome == CheckOutcome::Potential ||
              C.Outcome == CheckOutcome::Definite) {
            C.Degraded = true;
            C.DegradeNote = Note;
          }
      }
      if (Store && K == Engine &&
          EOpts.StoreMode == store::StoreMode::ReadWrite)
        for (const store::StoreEntry &E :
             buildStoreEntries(Engine, UnitHashes, StoreHits, Report)) {
          try {
            Store->put(E);
          } catch (const CertifyError &Err) {
            // A failed commit never fails certification: the verdicts
            // stand, the entry simply is not cached.
            Report.Store.Incidents.push_back(
                {E.Unit, "StoreIO", Err.message()});
          }
        }
      FinalizeStore();
      return Report;
    } catch (const CertifyError &E) {
      At.Spend = Tok.spend();
      At.FailReason =
          std::string(certifyErrorKindName(E.kind())) + ": " + E.message();
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      if (!Opts.Degrade)
        throw;
    } catch (const std::bad_alloc &) {
      At.Spend = Tok.spend();
      At.FailReason = "allocation failure";
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      if (!Opts.Degrade)
        throw;
    }
  }

  // The floor: no engine ran to completion. Still return a report —
  // Stage-0 lints plus every obligation as a conservative Potential.
  Report.Degraded = true;
  Report.EffectiveEngine = "lint-only";
  std::string Note =
      "all engines failed (" + FirstFailure + "); Stage-0 lint only";
  if (Opts.PreAnalysis) {
    try {
      support::CancelToken Unlimited;
      dataflow::PreAnalysisOptions LintOnly = Opts.Pre;
      LintOnly.EliminateDeadStores = false;
      LintOnly.Slice = false;
      LintOnly.Cancel = &Unlimited;
      dataflow::PreAnalysisResult PA =
          dataflow::preAnalyze(CFG, Abs, LintOnly);
      attachLints(Report.Lints, PA);
      Report.Pre.Enabled = true;
    } catch (const CertifyError &) {
      // Even the lint failed (a second armed fault): obligations alone.
    }
  }
  for (const cj::CFGMethod &M : CFG.Methods)
    enumerateObligations(Abs, M, Note, Report.Checks);
  FinalizeStore();
  return Report;
}
