#include "core/Certifier.h"

#include "boolprog/Interprocedural.h"
#include "boolprog/Witness.h"
#include "client/CFG.h"
#include "core/GenericBaseline.h"
#include "tvla/Certify.h"

#include <algorithm>
#include <memory>

using namespace canvas;
using namespace canvas::core;

const char *core::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::SCMPIntra:
    return "scmp-intra";
  case EngineKind::SCMPInterproc:
    return "scmp-interproc";
  case EngineKind::GenericAllocSite:
    return "generic-allocsite";
  case EngineKind::TVLAIndependent:
    return "tvla-independent";
  case EngineKind::TVLARelational:
    return "tvla-relational";
  }
  return "?";
}

unsigned CertificationReport::numFlagged() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite;
  return N;
}

unsigned CertificationReport::numVerified() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Safe;
  return N;
}

std::string CertificationReport::str() const {
  std::string Out;
  for (const LintFinding &L : Lints)
    Out += L.Method + " " + L.Loc.str() + ": warning: " + L.What + "\n";
  for (const CheckVerdict &C : Checks) {
    Out += C.Method + " " + C.Loc.str() + ": " + C.What + ": " +
           outcomeStr(C.Outcome) + "\n";
    if (!C.Witness.empty())
      Out += C.Witness.str();
  }
  Out += std::to_string(numChecks()) + " check(s), " +
         std::to_string(numVerified()) + " verified, " +
         std::to_string(numFlagged()) + " flagged";
  if (!Lints.empty())
    Out += ", " + std::to_string(Lints.size()) + " lint warning(s)";
  Out += "\n";
  return Out;
}

Certifier::Certifier(std::string_view SpecSource, EngineKind Engine,
                     DiagnosticEngine &Diags,
                     const wp::DerivationOptions &DOpts,
                     const CertifierOptions &Opts)
    : Engine(Engine), Opts(Opts) {
  S = easl::parseSpec(SpecSource, Diags);
  if (Diags.hasErrors())
    return;
  if (!easl::checkSpec(S, Diags))
    return;
  Abs = wp::deriveAbstraction(S, DOpts, Diags);
}

CertificationReport
Certifier::certifySource(std::string_view ClientSource,
                         DiagnosticEngine &Diags) const {
  cj::Program P = cj::parseProgram(ClientSource, Diags);
  if (Diags.hasErrors())
    return {};
  return certify(P, Diags);
}

namespace {

void attachLints(CertificationReport &Report,
                 const dataflow::PreAnalysisResult &PA) {
  for (size_t I = 0; I != PA.Findings.size(); ++I) {
    const dataflow::UninitUse &U = PA.Findings[I];
    Report.Lints.push_back(
        {PA.FindingMethods[I], U.Var, U.Loc,
         "component variable '" + U.Var +
             "' may be used before initialization in '" + U.ActionText + "'",
         U.RequiresBearing});
  }
}

} // namespace

CertificationReport Certifier::certify(const cj::Program &P,
                                       DiagnosticEngine &Diags) const {
  CertificationReport Report;
  cj::ClientCFG CFG = cj::buildCFG(P, S, Diags);
  if (Diags.hasErrors())
    return Report;

  // The Stage-0 lint runs for every engine; the program transformations
  // feed the SCMPIntra path below only.
  if (Opts.PreAnalysis && Engine != EngineKind::SCMPIntra) {
    dataflow::PreAnalysisOptions LintOnly = Opts.Pre;
    LintOnly.EliminateDeadStores = false;
    LintOnly.Slice = false;
    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, LintOnly);
    attachLints(Report, PA);
    Report.Pre.Enabled = true;
  }

  switch (Engine) {
  case EngineKind::SCMPIntra: {
    if (!Opts.PreAnalysis) {
      for (const cj::CFGMethod &M : CFG.Methods) {
        bp::BooleanProgram BP = bp::buildBooleanProgram(Abs, M, Diags);
        bp::IntraResult R = bp::analyzeIntraproc(BP);
        Report.BoolVars += BP.Vars.size();
        Report.MaxBoolVars = std::max(Report.MaxBoolVars, BP.Vars.size());
        std::unique_ptr<bp::IntraWitnessEngine> WE;
        for (size_t I = 0; I != BP.Checks.size(); ++I) {
          CheckVerdict V;
          V.Method = M.name();
          V.Loc = BP.Checks[I].Loc;
          V.What = BP.Checks[I].What;
          V.Outcome = R.CheckResults[I];
          V.ReqLoc = BP.Checks[I].ReqLoc;
          if (V.Outcome == CheckOutcome::Potential ||
              V.Outcome == CheckOutcome::Definite) {
            if (!WE)
              WE = std::make_unique<bp::IntraWitnessEngine>(BP);
            V.Witness = WE->witnessFor(I);
          }
          Report.Checks.push_back(std::move(V));
        }
      }
      return Report;
    }

    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, Opts.Pre);
    attachLints(Report, PA);
    Report.Pre.Enabled = true;
    Report.Pre.EdgesPruned = PA.totalEdgesPruned();
    Report.Pre.DeadStoresRemoved = PA.totalDeadStores();
    Report.Pre.VarsDropped = PA.totalVarsDropped();
    Report.Pre.MultiSliceMethods = PA.multiSliceMethods();

    for (const dataflow::MethodPlan &Plan : PA.Plans) {
      bp::SlicedIntraResult SR =
          bp::analyzeIntraprocSliced(Abs, Plan.CFG, Plan.Slices, Diags);
      Report.Pre.SliceRuns += SR.SliceRuns;
      Report.Pre.FallbackMethods += SR.FellBack;
      Report.BoolVars += SR.BoolVars;
      Report.MaxBoolVars = std::max(Report.MaxBoolVars, SR.MaxSliceBoolVars);

      // Interleave the engine's verdicts with the obligations of pruned
      // (entry-unreachable) edges, restoring original edge order.
      const std::string Name = Plan.Source->name();
      size_t I = 0, D = 0;
      while (I != SR.Items.size() || D != Plan.DroppedChecks.size()) {
        bool TakeDropped =
            I == SR.Items.size() ||
            (D != Plan.DroppedChecks.size() &&
             Plan.DroppedChecks[D].OrigEdge <
                 Plan.OrigEdgeIndex[SR.Items[I].Edge]);
        if (TakeDropped) {
          const dataflow::DroppedCheck &DC = Plan.DroppedChecks[D++];
          CheckRecord Rec;
          Rec.Method = Name;
          Rec.Loc = DC.Loc;
          Rec.What = DC.What;
          Rec.Outcome = CheckOutcome::Unreachable;
          Report.Checks.push_back(std::move(Rec));
        } else {
          bp::SlicedCheckItem It = SR.Items[I++];
          It.Rec.Method = Name;
          // Witness steps refer to the transformed working copy; remap
          // them onto the original method so the story (and the replay
          // checker) sees the untransformed source edges.
          for (WitnessStep &S : It.Rec.Witness.Steps) {
            if (S.Edge < 0 ||
                static_cast<size_t>(S.Edge) >= Plan.OrigEdgeIndex.size())
              continue;
            S.Edge = Plan.OrigEdgeIndex[S.Edge];
            const cj::Action &A = Plan.Source->Edges[S.Edge].Act;
            S.Loc = A.Loc;
            if (S.K != WitnessStep::Kind::Check)
              S.ActionText = A.str();
          }
          Report.Checks.push_back(std::move(It.Rec));
        }
      }
    }
    return Report;
  }
  case EngineKind::SCMPInterproc: {
    const cj::CFGMethod *Main = CFG.mainCFG();
    if (!Main) {
      Diags.error(SourceLoc(), "interprocedural certification requires a "
                               "main() method");
      return Report;
    }
    bp::InterResult R = bp::analyzeInterproc(Abs, CFG, *Main, Diags);
    Report.Inter.SummaryIterations = R.SummaryIterations;
    Report.Inter.ExplodedNodes = R.ExplodedNodes;
    Report.Inter.PathEdges = R.PathEdges;
    Report.Inter.Summaries = R.Summaries;
    Report.Inter.WitnessMicros = R.WitnessMicros;
    Report.Checks = std::move(R.Checks);
    return Report;
  }
  case EngineKind::GenericAllocSite: {
    for (const cj::CFGMethod &M : CFG.Methods) {
      BaselineResult R = analyzeAllocSite(S, M);
      for (const auto &[Site, Flagged] : R.Flagged) {
        CheckRecord Rec;
        Rec.Method = Site.Method;
        Rec.Loc = M.Edges[Site.Edge].Act.Loc;
        Rec.What = M.Edges[Site.Edge].Act.str() + " requires (spec " +
                   Site.ReqLoc.str() + ")";
        Rec.Outcome = Flagged ? CheckOutcome::Potential : CheckOutcome::Safe;
        Rec.ReqLoc = Site.ReqLoc;
        Report.Checks.push_back(std::move(Rec));
      }
    }
    return Report;
  }
  case EngineKind::TVLAIndependent:
  case EngineKind::TVLARelational: {
    for (const cj::CFGMethod &M : CFG.Methods) {
      tvla::TVLAResult R = tvla::certifyWithTVLA(
          S, Abs, M, Engine == EngineKind::TVLARelational, Diags);
      for (const auto &C : R.Checks) {
        CheckRecord Rec;
        Rec.Method = M.name();
        Rec.Loc = C.Loc;
        Rec.What = C.What;
        Rec.Outcome = C.Outcome;
        Report.Checks.push_back(std::move(Rec));
      }
    }
    return Report;
  }
  }
  return Report;
}
