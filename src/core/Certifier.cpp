#include "core/Certifier.h"

#include "boolprog/Interprocedural.h"
#include "boolprog/Witness.h"
#include "cert/Checker.h"
#include "cert/Emit.h"
#include "client/CFG.h"
#include "core/GenericBaseline.h"
#include "support/TaskPool.h"
#include "tvla/Certify.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <new>

using namespace canvas;
using namespace canvas::core;

const char *core::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::SCMPIntra:
    return "scmp-intra";
  case EngineKind::SCMPInterproc:
    return "scmp-interproc";
  case EngineKind::GenericAllocSite:
    return "generic-allocsite";
  case EngineKind::TVLAIndependent:
    return "tvla-independent";
  case EngineKind::TVLARelational:
    return "tvla-relational";
  }
  return "?";
}

unsigned CertificationReport::numFlagged() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite;
  return N;
}

unsigned CertificationReport::numVerified() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Safe;
  return N;
}

std::string CertificationReport::str() const {
  std::string Out;
  for (const LintFinding &L : Lints)
    Out += L.Method + " " + L.Loc.str() + ": warning: " + L.What + "\n";
  for (const CheckVerdict &C : Checks) {
    Out += C.Method + " " + C.Loc.str() + ": " + C.What + ": " +
           outcomeStr(C.Outcome);
    if (C.Degraded)
      Out += " [degraded]";
    Out += "\n";
    if (!C.Witness.empty())
      Out += C.Witness.str();
  }
  Out += std::to_string(numChecks()) + " check(s), " +
         std::to_string(numVerified()) + " verified, " +
         std::to_string(numFlagged()) + " flagged";
  if (!Lints.empty())
    Out += ", " + std::to_string(Lints.size()) + " lint warning(s)";
  Out += "\n";
  if (Degraded) {
    Out += "engine degraded: requested " + std::string(engineName(Requested)) +
           ", ran " + EffectiveEngine + "\n";
    for (const StageAttempt &A : Stages)
      if (!A.Completed)
        Out += "  " + A.Engine + ": " +
               (A.FailReason.empty() ? "not attempted" : A.FailReason) + "\n";
  }
  return Out;
}

Certifier::Certifier(std::string_view SpecSource, EngineKind Engine,
                     DiagnosticEngine &Diags,
                     const wp::DerivationOptions &DOpts,
                     const CertifierOptions &Opts)
    : Engine(Engine), Opts(Opts) {
  S = easl::parseSpec(SpecSource, Diags);
  if (Diags.hasErrors())
    return;
  if (!easl::checkSpec(S, Diags))
    return;
  Abs = wp::deriveAbstraction(S, DOpts, Diags);
}

CertificationReport
Certifier::certifySource(std::string_view ClientSource,
                         DiagnosticEngine &Diags) const {
  cj::Program P = cj::parseProgram(ClientSource, Diags);
  if (Diags.hasErrors())
    return {};
  return certify(P, Diags);
}

namespace {

/// Everything one engine rung produces. Kept separate from the report
/// and merged only when the rung completes, so a rung that throws
/// mid-run leaves no partial verdicts behind.
struct EngineRun {
  std::vector<CheckVerdict> Checks;
  std::vector<LintFinding> Lints;
  PreAnalysisSummary Pre;
  InterprocStats Inter;
  TVLAStats Tvla;
  size_t BoolVars = 0;
  size_t MaxBoolVars = 0;
  std::vector<cert::Certificate> Certs;
  double EmitMicros = 0;
};

/// Runs \p Fn and adds its wall-clock time to \p Micros.
template <typename Fn> auto timed(double &Micros, Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  auto Result = F();
  auto T1 = std::chrono::steady_clock::now();
  Micros += std::chrono::duration<double, std::micro>(T1 - T0).count();
  return Result;
}

void attachLints(std::vector<LintFinding> &Lints,
                 const dataflow::PreAnalysisResult &PA) {
  for (size_t I = 0; I != PA.Findings.size(); ++I) {
    const dataflow::UninitUse &U = PA.Findings[I];
    Lints.push_back(
        {PA.FindingMethods[I], U.Var, U.Loc,
         "component variable '" + U.Var +
             "' may be used before initialization in '" + U.ActionText + "'",
         U.RequiresBearing});
  }
}

/// The method abstraction governing \p A's requires obligations, or
/// null when the action carries none (mirrors the enumeration every
/// engine performs).
const wp::MethodAbstraction *
obligationAbstraction(const wp::DerivedAbstraction &Abs,
                      const cj::CFGMethod &M, const cj::Action &A) {
  if (A.K == cj::Action::Kind::AllocComp)
    return Abs.findMethod(A.Callee, "new");
  if (A.K != cj::Action::Kind::CompCall)
    return nullptr;
  for (const auto &[V, T] : M.CompVars)
    if (V == A.Recv)
      return Abs.findMethod(T, A.Callee);
  return nullptr;
}

/// The lint-only floor of the ladder: no engine ran to completion, so
/// every requires obligation is reported as a conservative Potential,
/// marked Degraded with \p Note.
void enumerateObligations(const wp::DerivedAbstraction &Abs,
                          const cj::CFGMethod &M, const std::string &Note,
                          std::vector<CheckVerdict> &Out) {
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const wp::MethodAbstraction *MA =
        obligationAbstraction(Abs, M, M.Edges[E].Act);
    if (!MA)
      continue;
    for (size_t R = 0; R != MA->RequiresFalse.size(); ++R) {
      CheckVerdict V;
      V.Method = M.name();
      V.Loc = M.Edges[E].Act.Loc;
      V.What = M.Edges[E].Act.str() + " requires !" +
               MA->RequiresFalse[R].first.str(Abs.Families);
      V.ReqLoc = MA->RequiresFalse[R].second;
      V.Outcome = CheckOutcome::Potential;
      V.Degraded = true;
      V.DegradeNote = Note;
      Out.push_back(std::move(V));
    }
  }
}

/// Runs one ladder rung to completion under \p Tok's budget; throws
/// CertifyError on exhaustion, injected faults, or checked invariants.
///
/// Per-method engines (SCMPIntra, GenericAllocSite, both TVLA modes)
/// fan their methods out on \p Pool: each task analyzes one method into
/// a private slot with a private DiagnosticEngine (the shared engine is
/// not thread-safe), and slots are merged in method-index order after
/// the pool drains. A rung that throws merges nothing — no partial
/// verdicts and no partial diagnostics. SCMPInterproc is a
/// whole-program analysis and stays serial.
void runEngine(EngineKind K, const easl::Spec &S,
               const wp::DerivedAbstraction &Abs,
               const CertifierOptions &Opts, const cj::ClientCFG &CFG,
               DiagnosticEngine &Diags, support::CancelToken &Tok,
               support::TaskPool &Pool, EngineRun &Run) {
  // The Stage-0 lint runs for every engine; SCMPIntra folds it into its
  // own pre-analysis below — except in certificate-emission mode, where
  // SCMPIntra skips the verdict-preserving transformations (a sliced
  // annotation is not independently checkable) and takes the lint here
  // like everyone else.
  if (Opts.PreAnalysis &&
      (K != EngineKind::SCMPIntra || Opts.EmitCertificates)) {
    dataflow::PreAnalysisOptions LintOnly = Opts.Pre;
    LintOnly.EliminateDeadStores = false;
    LintOnly.Slice = false;
    LintOnly.Cancel = &Tok;
    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, LintOnly);
    attachLints(Run.Lints, PA);
    Run.Pre.Enabled = true;
  }

  switch (K) {
  case EngineKind::SCMPIntra: {
    if (!Opts.PreAnalysis || Opts.EmitCertificates) {
      struct Slot {
        std::vector<CheckVerdict> Checks;
        std::vector<cert::Certificate> Certs;
        DiagnosticEngine Diags;
        size_t BoolVars = 0;
        double EmitMicros = 0;
      };
      std::vector<Slot> Slots(CFG.Methods.size());
      std::vector<std::function<void()>> Tasks;
      Tasks.reserve(CFG.Methods.size());
      for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
        Tasks.push_back([&, MI] {
          const cj::CFGMethod &M = CFG.Methods[MI];
          Slot &Out = Slots[MI];
          bp::BooleanProgram BP = bp::buildBooleanProgram(Abs, M, Out.Diags);
          bp::IntraResult R = bp::analyzeIntraproc(BP, &Tok);
          Out.BoolVars = BP.Vars.size();
          if (Opts.EmitCertificates)
            Out.Certs.push_back(timed(
                Out.EmitMicros, [&] { return cert::emitBoolIntra(BP, R); }));
          std::unique_ptr<bp::IntraWitnessEngine> WE;
          for (size_t I = 0; I != BP.Checks.size(); ++I) {
            CheckVerdict V;
            V.Method = M.name();
            V.Loc = BP.Checks[I].Loc;
            V.What = BP.Checks[I].What;
            V.Outcome = R.CheckResults[I];
            V.ReqLoc = BP.Checks[I].ReqLoc;
            if (V.Outcome == CheckOutcome::Potential ||
                V.Outcome == CheckOutcome::Definite) {
              if (!WE)
                WE = std::make_unique<bp::IntraWitnessEngine>(BP);
              V.Witness = WE->witnessFor(I);
            }
            Out.Checks.push_back(std::move(V));
          }
        });
      Pool.runAll(Tasks);
      for (Slot &Out : Slots) {
        Diags.mergeFrom(Out.Diags);
        Run.BoolVars += Out.BoolVars;
        Run.MaxBoolVars = std::max(Run.MaxBoolVars, Out.BoolVars);
        Run.EmitMicros += Out.EmitMicros;
        for (CheckVerdict &V : Out.Checks)
          Run.Checks.push_back(std::move(V));
        for (cert::Certificate &Cert : Out.Certs)
          Run.Certs.push_back(std::move(Cert));
      }
      return;
    }

    dataflow::PreAnalysisOptions PreOpts = Opts.Pre;
    PreOpts.Cancel = &Tok;
    dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs, PreOpts);
    attachLints(Run.Lints, PA);
    Run.Pre.Enabled = true;
    Run.Pre.EdgesPruned = PA.totalEdgesPruned();
    Run.Pre.DeadStoresRemoved = PA.totalDeadStores();
    Run.Pre.VarsDropped = PA.totalVarsDropped();
    Run.Pre.MultiSliceMethods = PA.multiSliceMethods();

    struct Slot {
      std::vector<CheckVerdict> Checks;
      DiagnosticEngine Diags;
      unsigned SliceRuns = 0;
      unsigned FellBack = 0;
      size_t BoolVars = 0;
      size_t MaxSliceBoolVars = 0;
    };
    std::vector<Slot> Slots(PA.Plans.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(PA.Plans.size());
    for (size_t PI = 0; PI != PA.Plans.size(); ++PI)
      Tasks.push_back([&, PI] {
        const dataflow::MethodPlan &Plan = PA.Plans[PI];
        Slot &Out = Slots[PI];
        bp::SlicedIntraResult SR = bp::analyzeIntraprocSliced(
            Abs, Plan.CFG, Plan.Slices, Out.Diags, &Tok);
        Out.SliceRuns = SR.SliceRuns;
        Out.FellBack = SR.FellBack;
        Out.BoolVars = SR.BoolVars;
        Out.MaxSliceBoolVars = SR.MaxSliceBoolVars;

        // Interleave the engine's verdicts with the obligations of
        // pruned (entry-unreachable) edges, restoring original edge
        // order.
        const std::string Name = Plan.Source->name();
        size_t I = 0, D = 0;
        while (I != SR.Items.size() || D != Plan.DroppedChecks.size()) {
          bool TakeDropped =
              I == SR.Items.size() ||
              (D != Plan.DroppedChecks.size() &&
               Plan.DroppedChecks[D].OrigEdge <
                   Plan.OrigEdgeIndex[SR.Items[I].Edge]);
          if (TakeDropped) {
            const dataflow::DroppedCheck &DC = Plan.DroppedChecks[D++];
            CheckRecord Rec;
            Rec.Method = Name;
            Rec.Loc = DC.Loc;
            Rec.What = DC.What;
            Rec.Outcome = CheckOutcome::Unreachable;
            Out.Checks.push_back(std::move(Rec));
          } else {
            bp::SlicedCheckItem It = SR.Items[I++];
            It.Rec.Method = Name;
            // Witness steps refer to the transformed working copy;
            // remap them onto the original method so the story (and the
            // replay checker) sees the untransformed source edges.
            for (WitnessStep &WS : It.Rec.Witness.Steps) {
              if (WS.Edge < 0 ||
                  static_cast<size_t>(WS.Edge) >= Plan.OrigEdgeIndex.size())
                continue;
              WS.Edge = Plan.OrigEdgeIndex[WS.Edge];
              const cj::Action &A = Plan.Source->Edges[WS.Edge].Act;
              WS.Loc = A.Loc;
              if (WS.K != WitnessStep::Kind::Check)
                WS.ActionText = A.str();
            }
            Out.Checks.push_back(std::move(It.Rec));
          }
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Diags.mergeFrom(Out.Diags);
      Run.Pre.SliceRuns += Out.SliceRuns;
      Run.Pre.FallbackMethods += Out.FellBack;
      Run.BoolVars += Out.BoolVars;
      Run.MaxBoolVars = std::max(Run.MaxBoolVars, Out.MaxSliceBoolVars);
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
    }
    return;
  }
  case EngineKind::SCMPInterproc: {
    // The supervisor skips this rung when main() is absent.
    const cj::CFGMethod *Main = CFG.mainCFG();
    bp::InterprocModel Model(Abs, CFG, *Main, Diags);
    bp::IfdsTabulation Tab;
    bp::InterResult R = bp::analyzeInterproc(
        Model, &Tok, Opts.EmitCertificates ? &Tab : nullptr);
    if (Opts.EmitCertificates)
      Run.Certs.push_back(
          timed(Run.EmitMicros, [&] { return cert::emitIfds(Model, Tab); }));
    Run.Inter.SummaryIterations = R.SummaryIterations;
    Run.Inter.ExplodedNodes = R.ExplodedNodes;
    Run.Inter.PathEdges = R.PathEdges;
    Run.Inter.Summaries = R.Summaries;
    Run.Inter.WitnessMicros = R.WitnessMicros;
    Run.Checks = std::move(R.Checks);
    return;
  }
  case EngineKind::GenericAllocSite: {
    struct Slot {
      std::vector<CheckVerdict> Checks;
      std::vector<cert::Certificate> Certs;
      double EmitMicros = 0;
    };
    std::vector<Slot> Slots(CFG.Methods.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(CFG.Methods.size());
    for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
      Tasks.push_back([&, MI] {
        const cj::CFGMethod &M = CFG.Methods[MI];
        Slot &Out = Slots[MI];
        BaselineAnnotation Ann;
        BaselineResult R = analyzeAllocSite(
            S, M, &Tok, Opts.EmitCertificates ? &Ann : nullptr);
        if (Opts.EmitCertificates)
          Out.Certs.push_back(timed(Out.EmitMicros, [&] {
            return cert::emitAllocSite(M, Ann, R);
          }));
        for (const auto &[Site, Flagged] : R.Flagged) {
          CheckRecord Rec;
          Rec.Method = Site.Method;
          Rec.Loc = M.Edges[Site.Edge].Act.Loc;
          Rec.What = M.Edges[Site.Edge].Act.str() + " requires (spec " +
                     Site.ReqLoc.str() + ")";
          Rec.Outcome = Flagged ? CheckOutcome::Potential : CheckOutcome::Safe;
          Rec.ReqLoc = Site.ReqLoc;
          Out.Checks.push_back(std::move(Rec));
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Run.EmitMicros += Out.EmitMicros;
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
      for (cert::Certificate &Cert : Out.Certs)
        Run.Certs.push_back(std::move(Cert));
    }
    return;
  }
  case EngineKind::TVLAIndependent:
  case EngineKind::TVLARelational: {
    struct Slot {
      std::vector<CheckVerdict> Checks;
      std::vector<cert::Certificate> Certs;
      DiagnosticEngine Diags;
      TVLAStats Tvla;
      double EmitMicros = 0;
    };
    std::vector<Slot> Slots(CFG.Methods.size());
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(CFG.Methods.size());
    for (size_t MI = 0; MI != CFG.Methods.size(); ++MI)
      Tasks.push_back([&, MI, K] {
        const cj::CFGMethod &M = CFG.Methods[MI];
        Slot &Out = Slots[MI];
        tvla::TVLAOptions TO;
        TO.Relational = K == EngineKind::TVLARelational;
        TO.MaxStructuresPerPoint = Opts.TVLAMaxStructuresPerPoint;
        TO.Cancel = &Tok;
        tvla::PointAnnotation Ann;
        if (Opts.EmitCertificates)
          TO.AnnotationOut = &Ann;
        tvla::TVLAResult R = tvla::certifyWithTVLA(S, Abs, M, TO, Out.Diags);
        if (Opts.EmitCertificates)
          Out.Certs.push_back(timed(Out.EmitMicros, [&] {
            return cert::emitTvla(Abs, M, Ann, R, TO.Relational);
          }));
        Out.Tvla.InternedStructures = R.InternedStructures;
        Out.Tvla.TransferCacheHits = R.TransferCacheHits;
        Out.Tvla.TransferCacheMisses = R.TransferCacheMisses;
        Out.Tvla.MaxStructuresPerPoint = R.MaxStructuresPerPoint;
        for (const auto &C : R.Checks) {
          CheckRecord Rec;
          Rec.Method = M.name();
          Rec.Loc = C.Loc;
          Rec.What = C.What;
          Rec.Outcome = C.Outcome;
          Out.Checks.push_back(std::move(Rec));
        }
      });
    Pool.runAll(Tasks);
    for (Slot &Out : Slots) {
      Diags.mergeFrom(Out.Diags);
      Run.Tvla.InternedStructures += Out.Tvla.InternedStructures;
      Run.Tvla.TransferCacheHits += Out.Tvla.TransferCacheHits;
      Run.Tvla.TransferCacheMisses += Out.Tvla.TransferCacheMisses;
      Run.Tvla.MaxStructuresPerPoint = std::max(
          Run.Tvla.MaxStructuresPerPoint, Out.Tvla.MaxStructuresPerPoint);
      Run.EmitMicros += Out.EmitMicros;
      for (CheckVerdict &V : Out.Checks)
        Run.Checks.push_back(std::move(V));
      for (cert::Certificate &Cert : Out.Certs)
        Run.Certs.push_back(std::move(Cert));
    }
    return;
  }
  }
}

} // namespace

CertificationReport Certifier::certify(const cj::Program &P,
                                       DiagnosticEngine &Diags) const {
  CertificationReport Report;
  Report.Requested = Engine;
  Report.EffectiveEngine = engineName(Engine);
  cj::ClientCFG CFG = cj::buildCFG(P, S, Diags);
  if (Diags.hasErrors())
    return Report;

  // The degradation ladder, most precise/expensive first. The requested
  // engine is the first rung; with degradation on, every cheaper engine
  // below it is a fallback.
  static const EngineKind Ladder[] = {
      EngineKind::TVLARelational, EngineKind::TVLAIndependent,
      EngineKind::SCMPInterproc, EngineKind::SCMPIntra,
      EngineKind::GenericAllocSite};
  std::vector<EngineKind> Rungs;
  if (!Opts.Degrade) {
    Rungs.push_back(Engine);
  } else {
    bool Found = false;
    for (EngineKind K : Ladder) {
      Found |= K == Engine;
      if (Found)
        Rungs.push_back(K);
    }
  }

  support::TaskPool Pool(Opts.Workers);
  std::string FirstFailure;
  for (EngineKind K : Rungs) {
    if (K == EngineKind::SCMPInterproc && !CFG.mainCFG()) {
      if (!Opts.Degrade) {
        Diags.error(SourceLoc(), "interprocedural certification requires a "
                                 "main() method");
        return Report;
      }
      StageAttempt At;
      At.Engine = engineName(K);
      At.FailReason = "no main() method in client";
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      continue;
    }

    support::StageBudget B = Opts.Budget;
    auto It = Opts.EngineBudgets.find(K);
    if (It != Opts.EngineBudgets.end())
      B = It->second;
    support::CancelToken Tok(B, engineName(K));
    StageAttempt At;
    At.Engine = engineName(K);
    try {
      EngineRun Run;
      runEngine(K, S, Abs, Opts, CFG, Diags, Tok, Pool, Run);

      CertificateStats CS;
      CS.EmitMicros = Run.EmitMicros;
      for (const cert::Certificate &Cert : Run.Certs) {
        ++CS.Count;
        CS.Bytes += Cert.bytes();
        CS.RawEntries += Cert.RawEntries;
        CS.StoredEntries += Cert.StoredEntries;
      }
      if (Opts.EmitCertificates && Opts.CheckCertificates) {
        // Re-validate before accepting the rung: a rejected certificate
        // means the rung's Proven verdicts are not independently
        // justified, which is a structured failure (never a silent
        // downgrade) and, with degradation on, falls down the ladder.
        cert::Checker Ck(S, Abs, CFG);
        for (const cert::Certificate &Cert : Run.Certs) {
          cert::CheckResult CR = Ck.check(Cert);
          CS.CheckMicros += CR.Micros;
          if (!CR.Valid)
            throw CertifyError(CertifyErrorKind::CertificateInvalid,
                               "certificate rejected: " + CR.Reason,
                               engineName(K));
        }
        CS.Checked = true;
      }
      Report.Certificates = std::move(Run.Certs);
      Report.CertStats = CS;

      At.Completed = true;
      At.Spend = Tok.spend();
      Report.Stages.push_back(std::move(At));
      Report.Checks = std::move(Run.Checks);
      Report.Lints = std::move(Run.Lints);
      Report.Pre = Run.Pre;
      Report.Inter = Run.Inter;
      Report.Tvla = Run.Tvla;
      Report.BoolVars = Run.BoolVars;
      Report.MaxBoolVars = Run.MaxBoolVars;
      Report.EffectiveEngine = engineName(K);
      Report.Degraded = K != Engine;
      if (Report.Degraded) {
        // The cheaper engine's Safe/Unreachable verdicts are sound as
        // reported; its unproven verdicts may be conservatism the
        // requested engine would have discharged, so mark those.
        std::string Note = "engine degraded from " +
                           std::string(engineName(Engine)) + " to " +
                           engineName(K) + " (" + FirstFailure + ")";
        for (CheckVerdict &C : Report.Checks)
          if (C.Outcome == CheckOutcome::Potential ||
              C.Outcome == CheckOutcome::Definite) {
            C.Degraded = true;
            C.DegradeNote = Note;
          }
      }
      return Report;
    } catch (const CertifyError &E) {
      At.Spend = Tok.spend();
      At.FailReason =
          std::string(certifyErrorKindName(E.kind())) + ": " + E.message();
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      if (!Opts.Degrade)
        throw;
    } catch (const std::bad_alloc &) {
      At.Spend = Tok.spend();
      At.FailReason = "allocation failure";
      if (FirstFailure.empty())
        FirstFailure = At.FailReason;
      Report.Stages.push_back(std::move(At));
      if (!Opts.Degrade)
        throw;
    }
  }

  // The floor: no engine ran to completion. Still return a report —
  // Stage-0 lints plus every obligation as a conservative Potential.
  Report.Degraded = true;
  Report.EffectiveEngine = "lint-only";
  std::string Note =
      "all engines failed (" + FirstFailure + "); Stage-0 lint only";
  if (Opts.PreAnalysis) {
    try {
      support::CancelToken Unlimited;
      dataflow::PreAnalysisOptions LintOnly = Opts.Pre;
      LintOnly.EliminateDeadStores = false;
      LintOnly.Slice = false;
      LintOnly.Cancel = &Unlimited;
      dataflow::PreAnalysisResult PA =
          dataflow::preAnalyze(CFG, Abs, LintOnly);
      attachLints(Report.Lints, PA);
      Report.Pre.Enabled = true;
    } catch (const CertifyError &) {
      // Even the lint failed (a second armed fault): obligations alone.
    }
  }
  for (const cj::CFGMethod &M : CFG.Methods)
    enumerateObligations(Abs, M, Note, Report.Checks);
  return Report;
}
