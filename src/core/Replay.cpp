#include "core/Replay.h"

#include "core/EaslMachine.h"

#include <map>
#include <vector>

using namespace canvas;
using namespace canvas::core;

namespace {

using ObjId = EaslMachine::ObjId;
using Env = std::map<std::string, ObjId>;

struct Frame {
  const cj::CFGMethod *M = nullptr;
  Env E;
  int Node = -1;
  /// How to resume the caller after this frame returns.
  int CallEdge = -1; ///< Call edge index in the *caller*.
  std::string RetLhs;
  int RetTo = -1;
};

class Replayer {
public:
  Replayer(const easl::Spec &Spec, const cj::ClientCFG &CFG)
      : Mach(Spec), CFG(CFG) {}

  ReplayResult run(const CheckRecord &Rec) {
    const WitnessTrace &T = Rec.Witness;
    if (T.empty())
      return malformed("empty trace");
    if (!T.callReturnMatched())
      return malformed("call/return discipline broken");

    const cj::CFGMethod *Entry = findMethod(T.Steps.front().Method);
    if (!Entry)
      return malformed("unknown entry method " + T.Steps.front().Method);
    Stack.push_back(openFrame(Entry));
    if (!T.SeedFact.empty())
      nondet("assumed entry fact [" + T.SeedFact + "]");

    for (size_t I = 0; I != T.Steps.size(); ++I) {
      const WitnessStep &S = T.Steps[I];
      bool Last = I + 1 == T.Steps.size();
      if ((S.K == WitnessStep::Kind::Check) != Last)
        return malformed("check step not at trace end");
      if (!step(S, Rec))
        return std::move(R);
      ++R.Steps;
      if (R.Violated)
        break; // The component threw: the concrete path ends here.
    }
    if (!R.Violated && !R.CrossedNondet)
      R.Detail = "trace is concretely executable but the requires clause "
                 "held; no nondeterministic choice explains the alarm";
    return std::move(R);
  }

private:
  ReplayResult malformed(const std::string &Why) {
    R.Malformed = true;
    R.Detail = Why;
    return std::move(R);
  }

  void nondet(const std::string &Why) {
    if (!R.CrossedNondet)
      R.Detail = "crossed nondeterministic choice: " + Why;
    R.CrossedNondet = true;
  }

  const cj::CFGMethod *findMethod(const std::string &Name) const {
    for (const cj::CFGMethod &M : CFG.Methods)
      if (M.name() == Name)
        return &M;
    return nullptr;
  }

  Frame openFrame(const cj::CFGMethod *M) {
    Frame F;
    F.M = M;
    F.Node = M->Entry;
    for (const auto &[V, T] : M->CompVars)
      F.E[V] = 0;
    return F;
  }

  /// Validates that \p S crosses an edge out of the current node of the
  /// current frame; returns it, or null after flagging Malformed.
  const cj::CFGEdge *takeEdge(const WitnessStep &S) {
    Frame &F = Stack.back();
    if (S.Method != F.M->name()) {
      malformed("step in " + S.Method + " while in frame " + F.M->name());
      return nullptr;
    }
    if (S.Edge < 0 || static_cast<size_t>(S.Edge) >= F.M->Edges.size()) {
      malformed("edge index out of range in " + S.Method);
      return nullptr;
    }
    const cj::CFGEdge &E = F.M->Edges[S.Edge];
    if (E.From != F.Node) {
      malformed("edge discontinuity in " + S.Method + " at " + S.Loc.str());
      return nullptr;
    }
    // Crossing one of several out-edges is itself a choice the static
    // analysis resolved nondeterministically.
    unsigned OutDegree = 0;
    for (const cj::CFGEdge &O : F.M->Edges)
      OutDegree += O.From == F.Node;
    if (OutDegree > 1)
      nondet("branch at " + E.Act.Loc.str());
    return &E;
  }

  /// Executes a component operation's events; records a concrete
  /// requires failure. \p WantLoc restricts to the flagged clause (the
  /// final Check step); an unset location accepts any failure.
  void drain(const SourceLoc &WantLoc) {
    for (const EaslMachine::RequiresEvent &Ev : Mach.takeEvents()) {
      if (Ev.Ok)
        continue;
      if (WantLoc.Line == 0 || (Ev.ReqLoc.Line == WantLoc.Line &&
                                Ev.ReqLoc.Col == WantLoc.Col)) {
        R.Violated = true;
        R.Detail = "requires clause at " + Ev.ReqLoc.str() +
                   " concretely fails on replay";
      }
    }
    if (Mach.aborted() && !R.Violated) {
      // Some earlier obligation threw before the flagged one was even
      // reached: still a concrete conformance violation on this path.
      R.Violated = true;
      R.Detail = "an earlier requires clause concretely fails on replay";
    }
  }

  /// Executes the concrete effect of crossing \p E in the current frame.
  void execAction(const cj::CFGEdge &E) {
    const cj::Action &A = E.Act;
    Env &Env = Stack.back().E;
    switch (A.K) {
    case cj::Action::Kind::Nop:
      break;
    case cj::Action::Kind::Havoc:
      Env[A.Lhs] = 0;
      nondet("havoc of " + A.Lhs + " at " + A.Loc.str());
      break;
    case cj::Action::Kind::Copy:
      Env[A.Lhs] = Env[A.Args[0]];
      break;
    case cj::Action::Kind::OpaqueEffect:
      nondet("opaque effect at " + A.Loc.str());
      break;
    case cj::Action::Kind::AllocComp: {
      std::vector<ObjId> Args;
      for (const std::string &V : A.Args)
        Args.push_back(V.empty() ? 0 : Env[V]);
      Env[A.Lhs] = Mach.construct(A.Callee, Args);
      drain(SourceLoc());
      break;
    }
    case cj::Action::Kind::CompCall: {
      ObjId Recv = Env[A.Recv];
      if (!Recv) {
        // The receiver is concretely null on this replay; the static
        // analysis does not track nullness, so treat the call as an
        // unexplored choice rather than executing it.
        nondet("null receiver " + A.Recv + " at " + A.Loc.str());
        break;
      }
      std::vector<ObjId> Args;
      for (const std::string &V : A.Args)
        Args.push_back(V.empty() ? 0 : Env[V]);
      ObjId Ret = Mach.callMethod(Recv, A.Callee, Args);
      if (!A.Lhs.empty())
        Env[A.Lhs] = Ret;
      drain(SourceLoc());
      break;
    }
    case cj::Action::Kind::ClientCall:
      // Crossed as a plain step: the trace summarizes the callee (an
      // unknown callee, or an intraprocedural trace), so its effect on
      // component state is unexplored here.
      if (!A.Lhs.empty())
        Env[A.Lhs] = 0;
      nondet("summarized client call at " + A.Loc.str());
      break;
    }
  }

  bool step(const WitnessStep &S, const CheckRecord &Rec) {
    switch (S.K) {
    case WitnessStep::Kind::Step: {
      const cj::CFGEdge *E = takeEdge(S);
      if (!E)
        return false;
      execAction(*E);
      Stack.back().Node = E->To;
      return true;
    }
    case WitnessStep::Kind::Call: {
      const cj::CFGEdge *E = takeEdge(S);
      if (!E)
        return false;
      if (E->Act.K != cj::Action::Kind::ClientCall || !E->Act.CalleeMethod) {
        malformed("call step over a non-call edge at " + S.Loc.str());
        return false;
      }
      const cj::CFGMethod *Callee = nullptr;
      for (const cj::CFGMethod &M : CFG.Methods)
        if (M.Method == E->Act.CalleeMethod)
          Callee = &M;
      if (!Callee) {
        malformed("call to a method without a CFG at " + S.Loc.str());
        return false;
      }
      Frame F = openFrame(Callee);
      F.CallEdge = S.Edge;
      F.RetLhs = E->Act.Lhs;
      F.RetTo = E->To;
      for (size_t I = 0; I != E->Act.Args.size() &&
                         I != E->Act.CalleeMethod->Params.size();
           ++I)
        if (!E->Act.Args[I].empty())
          F.E[E->Act.CalleeMethod->Params[I].Name] =
              Stack.back().E[E->Act.Args[I]];
      Stack.push_back(std::move(F));
      return true;
    }
    case WitnessStep::Kind::Return: {
      if (Stack.size() < 2) {
        malformed("return with no pending call at " + S.Loc.str());
        return false;
      }
      Frame Callee = std::move(Stack.back());
      Stack.pop_back();
      Frame &Caller = Stack.back();
      if (S.Method != Caller.M->name() || S.Edge != Callee.CallEdge) {
        malformed("return does not match the pending call at " +
                  S.Loc.str());
        return false;
      }
      if (Callee.Node != Callee.M->Exit) {
        malformed("return from a non-exit node of " + Callee.M->name());
        return false;
      }
      if (!Callee.RetLhs.empty()) {
        auto It = Callee.E.find("$ret");
        Caller.E[Callee.RetLhs] = It == Callee.E.end() ? 0 : It->second;
      }
      Caller.Node = Callee.RetTo;
      return true;
    }
    case WitnessStep::Kind::Check: {
      const cj::CFGEdge *E = takeEdge(S);
      if (!E)
        return false;
      // The flagged obligation sits on a component operation edge; run
      // it and look for the flagged clause among its requires events.
      if (E->Act.K != cj::Action::Kind::CompCall &&
          E->Act.K != cj::Action::Kind::AllocComp) {
        // A constant or structural check (no component call to run).
        nondet("check without a concrete component operation at " +
               S.Loc.str());
        return true;
      }
      Env &Env = Stack.back().E;
      if (E->Act.K == cj::Action::Kind::CompCall && !Env[E->Act.Recv]) {
        nondet("null receiver " + E->Act.Recv + " at the checked call " +
               S.Loc.str());
        return true;
      }
      std::vector<ObjId> Args;
      for (const std::string &V : E->Act.Args)
        Args.push_back(V.empty() ? 0 : Env[V]);
      if (E->Act.K == cj::Action::Kind::CompCall)
        Mach.callMethod(Env[E->Act.Recv], E->Act.Callee, Args);
      else
        Mach.construct(E->Act.Callee, Args);
      drain(Rec.ReqLoc);
      return true;
    }
    }
    return false;
  }

  EaslMachine Mach;
  const cj::ClientCFG &CFG;
  std::vector<Frame> Stack;
  ReplayResult R;
};

} // namespace

ReplayResult core::replayWitness(const easl::Spec &Spec,
                                 const cj::ClientCFG &CFG,
                                 const CheckRecord &Rec) {
  return Replayer(Spec, CFG).run(Rec);
}
