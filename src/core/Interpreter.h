//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete reference executor: runs a CJ client against the *actual*
/// executable semantics of its Easl specification (Easl is executable —
/// that is the point of the language), exploring all nondeterministic
/// branch decisions up to configurable bounds.
///
/// This plays the role of the JCF dynamic check in the paper's
/// evaluation: it provides ground truth for which requires clauses can
/// actually fail, so the benchmarks can count false alarms of the static
/// certifiers.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_INTERPRETER_H
#define CANVAS_CORE_INTERPRETER_H

#include "client/CFG.h"
#include "easl/AST.h"
#include "support/SourceLoc.h"

#include <map>
#include <string>
#include <vector>

namespace canvas {
namespace core {

/// Identifies one requires obligation: the CFG edge of the component
/// call and the source location of the requires clause in the spec.
struct CheckSite {
  std::string Method; ///< "Class::method" containing the call edge.
  int Edge = -1;      ///< Edge index within that method's CFG.
  SourceLoc ReqLoc;   ///< Location of the requires clause in the spec.

  friend bool operator<(const CheckSite &A, const CheckSite &B) {
    if (A.Method != B.Method)
      return A.Method < B.Method;
    if (A.Edge != B.Edge)
      return A.Edge < B.Edge;
    if (A.ReqLoc.Line != B.ReqLoc.Line)
      return A.ReqLoc.Line < B.ReqLoc.Line;
    return A.ReqLoc.Col < B.ReqLoc.Col;
  }
};

/// Result of concrete exploration.
struct GroundTruth {
  /// Every requires obligation encountered on some explored path, and
  /// whether some explored execution violates it.
  std::map<CheckSite, bool> MayViolate;
  /// True when exploration completed without hitting a bound — then
  /// MayViolate is exact (for the explored entry method).
  bool Exhaustive = true;
  unsigned PathsExplored = 0;
};

/// Exploration bounds.
struct InterpreterOptions {
  unsigned MaxStepsPerPath = 300; ///< Edge traversals per path.
  unsigned MaxPaths = 20000;
  unsigned MaxCallDepth = 16;
};

/// Explores every execution of \p Entry (following ClientCall edges into
/// other methods of \p CFG) under the concrete semantics of \p Spec.
GroundTruth executeConcretely(const easl::Spec &Spec,
                              const cj::ClientCFG &CFG,
                              const cj::CFGMethod &Entry,
                              const InterpreterOptions &Opts = {});

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_INTERPRETER_H
