//===----------------------------------------------------------------------===//
///
/// \file
/// A copyable concrete Easl evaluator: one component heap plus the
/// executable semantics of the specification's method bodies (Easl is
/// executable — that is the point of the language). Forking an
/// execution is copying the machine; this is what both the exhaustive
/// ground-truth explorer (Interpreter.cpp) and the witness replay
/// checker (Replay.cpp) are built on.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_EASLMACHINE_H
#define CANVAS_CORE_EASLMACHINE_H

#include "easl/AST.h"
#include "support/SourceLoc.h"

#include <map>
#include <string>
#include <vector>

namespace canvas {
namespace core {

class EaslMachine {
public:
  using ObjId = int; ///< 0 is the null reference.

  /// One requires clause crossed during an operation, in execution
  /// order.
  struct RequiresEvent {
    SourceLoc ReqLoc; ///< Location of the requires clause in the spec.
    bool Ok = true;   ///< False when the clause concretely failed.
  };

  explicit EaslMachine(const easl::Spec &S) : S(&S) { Heap.resize(1); }

  /// Runs the constructor of \p ClassName on fresh storage; returns the
  /// new object (null when the spec lacks the class).
  ObjId construct(const std::string &ClassName,
                  const std::vector<ObjId> &Args);

  /// Runs \p Method on \p Recv. A null receiver or unknown method is a
  /// no-op returning 0 (the concrete client would NPE; callers decide
  /// how to treat that).
  ObjId callMethod(ObjId Recv, const std::string &Method,
                   const std::vector<ObjId> &Args);

  const easl::ClassDecl *classOf(ObjId O) const {
    return O > 0 && static_cast<size_t>(O) < Heap.size() ? Heap[O].Class
                                                         : nullptr;
  }

  /// Requires clauses crossed by operations since the last take.
  std::vector<RequiresEvent> takeEvents() { return std::move(Events); }

  /// True once some requires clause failed: the component threw, the
  /// rest of that operation was skipped, and the machine should be
  /// discarded (the path it modeled has ended).
  bool aborted() const { return Aborted; }

private:
  struct Object {
    const easl::ClassDecl *Class = nullptr;
    std::map<std::string, ObjId> Fields;
  };
  using Env = std::map<std::string, ObjId>;

  ObjId allocate(const easl::ClassDecl *C);
  ObjId evalPath(const Env &Frame, const easl::ClassDecl *Class,
                 const easl::PathExpr &P);
  bool evalExpr(const Env &Frame, const easl::ClassDecl *Class,
                const easl::Expr &E);
  ObjId evalRhs(Env &Frame, const easl::ClassDecl *Class,
                const easl::RhsExpr &R);
  ObjId execBody(Env &Frame, const easl::ClassDecl *Class,
                 const std::vector<easl::StmtPtr> &Body);
  void storePath(Env &Frame, const easl::ClassDecl *Class,
                 const easl::PathExpr &P, ObjId Val);

  const easl::Spec *S;
  std::vector<Object> Heap;
  std::vector<RequiresEvent> Events;
  bool Aborted = false;
};

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_EASLMACHINE_H
