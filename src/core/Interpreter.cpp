#include "core/Interpreter.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <functional>

using namespace canvas;
using namespace canvas::core;
using namespace canvas::easl;

namespace {

using ObjId = int; ///< 0 is the null reference.

struct Object {
  const ClassDecl *Class = nullptr;
  std::map<std::string, ObjId> Fields;
};

/// The mutable execution state of one explored path.
struct State {
  std::vector<Object> Heap; ///< Heap[0] unused (null).
};

using Env = std::map<std::string, ObjId>;
using Cont = std::function<void(State, ObjId)>;

class Explorer {
public:
  Explorer(const Spec &S, const cj::ClientCFG &CFG,
           const InterpreterOptions &Opts)
      : S(S), CFG(CFG), Opts(Opts) {}

  GroundTruth run(const cj::CFGMethod &Entry) {
    State St;
    St.Heap.resize(1);
    Env E;
    for (const auto &[V, T] : Entry.CompVars)
      E[V] = 0;
    explore(Entry, std::move(St), std::move(E), Entry.Entry, 0, 0,
            [&](State, ObjId) { ++GT.PathsExplored; });
    return std::move(GT);
  }

private:
  bool budgetExceeded() {
    if (GT.PathsExplored >= Opts.MaxPaths) {
      GT.Exhaustive = false;
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Concrete Easl semantics
  //===--------------------------------------------------------------------===//

  ObjId allocate(State &St, const ClassDecl *C) {
    St.Heap.push_back(Object{C, {}});
    return static_cast<ObjId>(St.Heap.size() - 1);
  }

  /// Resolves an Easl path to an object id (0 on null dereference).
  ObjId evalPath(State &St, const Env &Frame, const ClassDecl *Class,
                 const PathExpr &P) {
    if (P.Components.empty())
      return 0;
    ObjId Cur;
    size_t First = 1;
    auto It = Frame.find(P.Components.front());
    if (It != Frame.end()) {
      Cur = It->second;
    } else if (Class && Class->findField(P.Components.front())) {
      auto ThisIt = Frame.find("this");
      ObjId This = ThisIt == Frame.end() ? 0 : ThisIt->second;
      if (!This)
        return 0;
      Cur = St.Heap[This].Fields[P.Components.front()];
    } else {
      return 0;
    }
    for (size_t I = First; I < P.Components.size(); ++I) {
      if (!Cur)
        return 0;
      Cur = St.Heap[Cur].Fields[P.Components[I]];
    }
    return Cur;
  }

  bool evalExpr(State &St, const Env &Frame, const ClassDecl *Class,
                const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::Compare: {
      const auto *C = cast<CompareExpr>(&E);
      bool Eq = evalPath(St, Frame, Class, C->Lhs) ==
                evalPath(St, Frame, Class, C->Rhs);
      return C->Negated ? !Eq : Eq;
    }
    case Expr::Kind::And: {
      for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
        if (!evalExpr(St, Frame, Class, *Op))
          return false;
      return true;
    }
    case Expr::Kind::Or: {
      for (const ExprPtr &Op : cast<OrExpr>(&E)->Operands)
        if (evalExpr(St, Frame, Class, *Op))
          return true;
      return false;
    }
    case Expr::Kind::Not:
      return !evalExpr(St, Frame, Class, *cast<NotExpr>(&E)->Operand);
    case Expr::Kind::BoolConst:
      return cast<BoolConstExpr>(&E)->Value;
    }
    canvas_unreachable("covered switch");
  }

  /// Set when a requires clause failed: the component throws (the CME
  /// semantics of JCF) and the current path aborts.
  bool PathAborted = false;

  ObjId evalRhs(State &St, Env &Frame, const ClassDecl *Class,
                const RhsExpr &R, const CheckSite &Site) {
    if (!R.isNew())
      return evalPath(St, Frame, Class, R.P);
    std::vector<ObjId> Args;
    for (const PathExpr &A : R.Args)
      Args.push_back(evalPath(St, Frame, Class, A));
    return construct(St, R.NewType, Args, Site);
  }

  /// Runs the constructor of \p ClassName on fresh storage.
  ObjId construct(State &St, const std::string &ClassName,
                  const std::vector<ObjId> &Args, const CheckSite &Site) {
    const ClassDecl *C = S.findClass(ClassName);
    if (!C)
      return 0;
    ObjId Obj = allocate(St, C);
    const MethodDecl *Ctor = C->constructor();
    if (!Ctor)
      return Obj;
    Env Frame;
    Frame["this"] = Obj;
    for (size_t I = 0; I != Ctor->Params.size() && I != Args.size(); ++I)
      Frame[Ctor->Params[I].Name] = Args[I];
    execBody(St, Frame, C, Ctor->Body, Site);
    return Obj;
  }

  /// Executes an Easl method body; returns the return value (0 if none).
  /// Requires clauses are evaluated concretely and recorded against
  /// \p Site.
  ObjId execBody(State &St, Env &Frame, const ClassDecl *Class,
                 const std::vector<StmtPtr> &Body, const CheckSite &Site) {
    for (const StmtPtr &StPtr : Body) {
      if (PathAborted)
        return 0;
      const Stmt &Stmt = *StPtr;
      switch (Stmt.getKind()) {
      case Stmt::Kind::Requires: {
        const auto *Req = cast<RequiresStmt>(&Stmt);
        CheckSite Full = Site;
        Full.ReqLoc = Req->Loc;
        bool &Flag = GT.MayViolate[Full];
        if (!evalExpr(St, Frame, Class, *Req->Cond)) {
          Flag = true;
          // The component throws; this execution path ends here.
          PathAborted = true;
          return 0;
        }
        break;
      }
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(&Stmt);
        ObjId Val = evalRhs(St, Frame, Class, A->Rhs, Site);
        storePath(St, Frame, Class, A->Lhs, Val);
        break;
      }
      case Stmt::Kind::Return: {
        const auto *R = cast<ReturnStmt>(&Stmt);
        return evalRhs(St, Frame, Class, R->Value, Site);
      }
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(&Stmt);
        const auto &Branch =
            evalExpr(St, Frame, Class, *I->Cond) ? I->Then : I->Else;
        if (ObjId Ret = execBody(St, Frame, Class, Branch, Site))
          return Ret;
        break;
      }
      }
    }
    return 0;
  }

  void storePath(State &St, Env &Frame, const ClassDecl *Class,
                 const PathExpr &P, ObjId Val) {
    if (P.Components.empty())
      return;
    // Variable target only for synthesized frames; Easl assigns fields.
    if (P.Components.size() == 1 && Frame.count(P.Components[0]) &&
        !(Class && Class->findField(P.Components[0]))) {
      Frame[P.Components[0]] = Val;
      return;
    }
    // Resolve to (object, last field).
    PathExpr Prefix = P;
    Prefix.Components.pop_back();
    ObjId Obj;
    if (Prefix.Components.empty()) {
      // Implicit this-field.
      auto It = Frame.find("this");
      Obj = It == Frame.end() ? 0 : It->second;
    } else {
      Obj = evalPath(St, Frame, Class, Prefix);
    }
    if (!Obj)
      return;
    St.Heap[Obj].Fields[P.Components.back()] = Val;
  }

  //===--------------------------------------------------------------------===//
  // Client CFG exploration
  //===--------------------------------------------------------------------===//

  void explore(const cj::CFGMethod &M, State St, Env E, int Node,
               unsigned Steps, unsigned Depth, const Cont &K) {
    if (budgetExceeded())
      return;
    if (Steps > Opts.MaxStepsPerPath) {
      GT.Exhaustive = false;
      return;
    }
    if (Node == M.Exit) {
      auto It = E.find("$ret");
      K(std::move(St), It == E.end() ? 0 : It->second);
      return;
    }
    bool AnyEdge = false;
    for (const cj::CFGEdge &Edge : M.Edges) {
      if (Edge.From != Node)
        continue;
      AnyEdge = true;
      // Fork: each out-edge gets its own copy of the state.
      applyEdge(M, Edge, St, E, Steps, Depth, K);
    }
    if (!AnyEdge) {
      // Dangling node (e.g. code after return): path ends silently.
      return;
    }
  }

  void applyEdge(const cj::CFGMethod &M, const cj::CFGEdge &Edge, State St,
                 Env E, unsigned Steps, unsigned Depth, const Cont &K) {
    const cj::Action &A = Edge.Act;
    CheckSite Site;
    Site.Method = M.name();
    Site.Edge = edgeIndex(M, Edge);
    switch (A.K) {
    case cj::Action::Kind::Nop:
      break;
    case cj::Action::Kind::Havoc:
      E[A.Lhs] = 0;
      break;
    case cj::Action::Kind::Copy:
      E[A.Lhs] = E[A.Args[0]];
      break;
    case cj::Action::Kind::AllocComp: {
      std::vector<ObjId> Args;
      for (const std::string &V : A.Args)
        Args.push_back(V.empty() ? 0 : E[V]);
      E[A.Lhs] = construct(St, A.Callee, Args, Site);
      break;
    }
    case cj::Action::Kind::CompCall: {
      ObjId Recv = E[A.Recv];
      if (!Recv)
        break; // Null receiver: the concrete program would NPE.
      const ClassDecl *C = St.Heap[Recv].Class;
      const MethodDecl *Method = C ? C->findMethod(A.Callee) : nullptr;
      if (!Method)
        break;
      Env Frame;
      Frame["this"] = Recv;
      for (size_t I = 0; I != Method->Params.size() && I != A.Args.size();
           ++I)
        Frame[Method->Params[I].Name] =
            A.Args[I].empty() ? 0 : E[A.Args[I]];
      ObjId Ret = execBody(St, Frame, C, Method->Body, Site);
      if (!A.Lhs.empty())
        E[A.Lhs] = Ret;
      break;
    }
    case cj::Action::Kind::OpaqueEffect:
      break; // Not meaningful for ground truth; clients avoid it.
    case cj::Action::Kind::ClientCall: {
      if (Depth >= Opts.MaxCallDepth) {
        GT.Exhaustive = false;
        return;
      }
      const cj::CFGMethod *Callee = CFG.findMethod(A.CalleeMethod);
      if (!Callee)
        break;
      Env CalleeEnv;
      for (const auto &[V, T] : Callee->CompVars)
        CalleeEnv[V] = 0;
      for (size_t I = 0;
           I != A.Args.size() && I != A.CalleeMethod->Params.size(); ++I)
        if (!A.Args[I].empty())
          CalleeEnv[A.CalleeMethod->Params[I].Name] = E[A.Args[I]];
      std::string LhsVar = A.Lhs;
      int To = Edge.To;
      // Continue this path after each callee exit state.
      explore(*Callee, std::move(St), std::move(CalleeEnv), Callee->Entry,
              Steps + 1, Depth + 1,
              [this, &M, LhsVar, To, E, Steps, Depth, &K](State OutSt,
                                                          ObjId Ret) {
                Env E2 = E;
                if (!LhsVar.empty())
                  E2[LhsVar] = Ret;
                explore(M, std::move(OutSt), std::move(E2), To, Steps + 1,
                        Depth, K);
              });
      return;
    }
    }
    if (PathAborted) {
      // The component threw: the path ends, and is counted as explored.
      PathAborted = false;
      ++GT.PathsExplored;
      return;
    }
    explore(M, std::move(St), std::move(E), Edge.To, Steps + 1, Depth, K);
  }

  int edgeIndex(const cj::CFGMethod &M, const cj::CFGEdge &Edge) const {
    return static_cast<int>(&Edge - M.Edges.data());
  }

  const Spec &S;
  const cj::ClientCFG &CFG;
  InterpreterOptions Opts;
  GroundTruth GT;
};

} // namespace

GroundTruth core::executeConcretely(const Spec &Spec,
                                    const cj::ClientCFG &CFG,
                                    const cj::CFGMethod &Entry,
                                    const InterpreterOptions &Opts) {
  return Explorer(Spec, CFG, Opts).run(Entry);
}
