#include "core/Interpreter.h"

#include "core/EaslMachine.h"

#include <functional>

using namespace canvas;
using namespace canvas::core;

namespace {

using ObjId = EaslMachine::ObjId;
using Env = std::map<std::string, ObjId>;
using Cont = std::function<void(EaslMachine, ObjId)>;

/// Exhaustive path exploration of a client CFG over copyable concrete
/// machines: each nondeterministic branch forks the machine.
class Explorer {
public:
  Explorer(const easl::Spec &S, const cj::ClientCFG &CFG,
           const InterpreterOptions &Opts)
      : S(S), CFG(CFG), Opts(Opts) {}

  GroundTruth run(const cj::CFGMethod &Entry) {
    EaslMachine M(S);
    Env E;
    for (const auto &[V, T] : Entry.CompVars)
      E[V] = 0;
    explore(Entry, std::move(M), std::move(E), Entry.Entry, 0, 0,
            [&](EaslMachine, ObjId) { ++GT.PathsExplored; });
    return std::move(GT);
  }

private:
  bool budgetExceeded() {
    if (GT.PathsExplored >= Opts.MaxPaths) {
      GT.Exhaustive = false;
      return true;
    }
    return false;
  }

  /// Merges the machine's requires events for one component operation
  /// into the ground truth; returns true when the operation aborted
  /// (the component threw) so the path must end.
  bool drainEvents(EaslMachine &M, const CheckSite &Site) {
    for (const EaslMachine::RequiresEvent &Ev : M.takeEvents()) {
      CheckSite Full = Site;
      Full.ReqLoc = Ev.ReqLoc;
      bool &Flag = GT.MayViolate[Full];
      Flag |= !Ev.Ok;
    }
    return M.aborted();
  }

  void explore(const cj::CFGMethod &M, EaslMachine Mach, Env E, int Node,
               unsigned Steps, unsigned Depth, const Cont &K) {
    if (budgetExceeded())
      return;
    if (Steps > Opts.MaxStepsPerPath) {
      GT.Exhaustive = false;
      return;
    }
    if (Node == M.Exit) {
      auto It = E.find("$ret");
      K(std::move(Mach), It == E.end() ? 0 : It->second);
      return;
    }
    bool AnyEdge = false;
    for (const cj::CFGEdge &Edge : M.Edges) {
      if (Edge.From != Node)
        continue;
      AnyEdge = true;
      // Fork: each out-edge gets its own copy of the machine.
      applyEdge(M, Edge, Mach, E, Steps, Depth, K);
    }
    if (!AnyEdge) {
      // Dangling node (e.g. code after return): path ends silently.
      return;
    }
  }

  void applyEdge(const cj::CFGMethod &M, const cj::CFGEdge &Edge,
                 EaslMachine Mach, Env E, unsigned Steps, unsigned Depth,
                 const Cont &K) {
    const cj::Action &A = Edge.Act;
    CheckSite Site;
    Site.Method = M.name();
    Site.Edge = edgeIndex(M, Edge);
    switch (A.K) {
    case cj::Action::Kind::Nop:
      break;
    case cj::Action::Kind::Havoc:
      E[A.Lhs] = 0;
      break;
    case cj::Action::Kind::Copy:
      E[A.Lhs] = E[A.Args[0]];
      break;
    case cj::Action::Kind::AllocComp: {
      std::vector<ObjId> Args;
      for (const std::string &V : A.Args)
        Args.push_back(V.empty() ? 0 : E[V]);
      E[A.Lhs] = Mach.construct(A.Callee, Args);
      break;
    }
    case cj::Action::Kind::CompCall: {
      ObjId Recv = E[A.Recv];
      if (!Recv)
        break; // Null receiver: the concrete program would NPE.
      std::vector<ObjId> Args;
      for (const std::string &V : A.Args)
        Args.push_back(V.empty() ? 0 : E[V]);
      ObjId Ret = Mach.callMethod(Recv, A.Callee, Args);
      if (!A.Lhs.empty())
        E[A.Lhs] = Ret;
      break;
    }
    case cj::Action::Kind::OpaqueEffect:
      break; // Not meaningful for ground truth; clients avoid it.
    case cj::Action::Kind::ClientCall: {
      if (Depth >= Opts.MaxCallDepth) {
        GT.Exhaustive = false;
        return;
      }
      const cj::CFGMethod *Callee = CFG.findMethod(A.CalleeMethod);
      if (!Callee)
        break;
      Env CalleeEnv;
      for (const auto &[V, T] : Callee->CompVars)
        CalleeEnv[V] = 0;
      for (size_t I = 0;
           I != A.Args.size() && I != A.CalleeMethod->Params.size(); ++I)
        if (!A.Args[I].empty())
          CalleeEnv[A.CalleeMethod->Params[I].Name] = E[A.Args[I]];
      std::string LhsVar = A.Lhs;
      int To = Edge.To;
      // Continue this path after each callee exit state.
      explore(*Callee, std::move(Mach), std::move(CalleeEnv),
              Callee->Entry, Steps + 1, Depth + 1,
              [this, &M, LhsVar, To, E, Steps, Depth, &K](EaslMachine OutM,
                                                          ObjId Ret) {
                Env E2 = E;
                if (!LhsVar.empty())
                  E2[LhsVar] = Ret;
                explore(M, std::move(OutM), std::move(E2), To, Steps + 1,
                        Depth, K);
              });
      return;
    }
    }
    if (drainEvents(Mach, Site)) {
      // The component threw: the path ends, and is counted as explored.
      ++GT.PathsExplored;
      return;
    }
    explore(M, std::move(Mach), std::move(E), Edge.To, Steps + 1, Depth, K);
  }

  int edgeIndex(const cj::CFGMethod &M, const cj::CFGEdge &Edge) const {
    return static_cast<int>(&Edge - M.Edges.data());
  }

  const easl::Spec &S;
  const cj::ClientCFG &CFG;
  InterpreterOptions Opts;
  GroundTruth GT;
};

} // namespace

GroundTruth core::executeConcretely(const easl::Spec &Spec,
                                    const cj::ClientCFG &CFG,
                                    const cj::CFGMethod &Entry,
                                    const InterpreterOptions &Opts) {
  return Explorer(Spec, CFG, Opts).run(Entry);
}
