#include "core/Evaluation.h"

#include "client/CFG.h"

#include <map>

using namespace canvas;
using namespace canvas::core;

std::string SiteComparison::str() const {
  return std::to_string(Sites) + " site(s), " +
         std::to_string(ViolatingSites) + " violating, " +
         std::to_string(FlaggedSites) + " flagged, " +
         std::to_string(FalseAlarms) + " false alarm(s), " +
         std::to_string(Missed) + " missed" +
         (Exhaustive ? "" : " (exploration bounded)");
}

SiteComparison core::compareWithGroundTruth(const CertificationReport &Report,
                                            const easl::Spec &Spec,
                                            const cj::Program &P,
                                            const InterpreterOptions &Opts) {
  SiteComparison Out;
  DiagnosticEngine Diags;
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Diags);
  const cj::CFGMethod *Main = CFG.mainCFG();
  if (!Main)
    return Out;
  GroundTruth GT = executeConcretely(Spec, CFG, *Main, Opts);
  Out.Exhaustive = GT.Exhaustive;

  // Aggregate ground truth per (method, client location of the call).
  std::map<std::pair<std::string, std::string>, bool> TruthBySite;
  for (const auto &[Site, Violates] : GT.MayViolate) {
    const cj::CFGMethod *M = nullptr;
    for (const cj::CFGMethod &Cand : CFG.Methods)
      if (Cand.name() == Site.Method)
        M = &Cand;
    if (!M || Site.Edge < 0 ||
        Site.Edge >= static_cast<int>(M->Edges.size()))
      continue;
    std::string Loc = M->Edges[Site.Edge].Act.Loc.str();
    bool &T = TruthBySite[{Site.Method, Loc}];
    T = T || Violates;
  }

  // Aggregate the report the same way.
  std::map<std::pair<std::string, std::string>, bool> FlaggedBySite;
  for (const CheckVerdict &C : Report.Checks) {
    bool Flagged = C.Outcome == bp::CheckOutcome::Potential ||
                   C.Outcome == bp::CheckOutcome::Definite;
    bool &F = FlaggedBySite[{C.Method, C.Loc.str()}];
    F = F || Flagged;
  }

  for (const auto &[Key, Violates] : TruthBySite) {
    ++Out.Sites;
    Out.ViolatingSites += Violates;
    auto It = FlaggedBySite.find(Key);
    bool Flagged = It != FlaggedBySite.end() && It->second;
    Out.FlaggedSites += Flagged;
    Out.FalseAlarms += Flagged && !Violates;
    Out.Missed += !Flagged && Violates;
  }
  return Out;
}
