//===----------------------------------------------------------------------===//
///
/// \file
/// The shared per-check verdict vocabulary of every certification
/// engine: the four-way CheckOutcome, the evidence-bearing WitnessTrace
/// (a call/return-matched path through the exploded supergraph, one
/// step per CFG edge with the component-operation history at each
/// step), and CheckRecord, the one record type carried by
/// bp::InterResult, bp::SlicedIntraResult and core::CertificationReport
/// alike — so witness attachment lands in a single place.
///
/// Header-only on purpose: boolprog and tvla sit below canvas_core in
/// the link order but share this vocabulary.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CORE_VERDICT_H
#define CANVAS_CORE_VERDICT_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace canvas {
namespace core {

/// Verdict for one requires check.
enum class CheckOutcome {
  Safe,        ///< 1 is not a possible value: verified.
  Potential,   ///< 1 is possible but not the only value: may violate.
  Definite,    ///< The only possible value is 1: violates on every path
               ///< reaching the call.
  Unreachable, ///< The call site is unreachable.
};

/// One step of a witness trace: a CFG edge traversed by the path, with
/// enough identity (method name + edge index) for the replay checker to
/// drive the concrete interpreter along it, plus rendered location,
/// action text, and the abstract fact established after the step.
struct WitnessStep {
  enum class Kind {
    Step,   ///< An intraprocedural edge (or a call the engine skipped).
    Call,   ///< Descend into a client callee (edge is the call edge).
    Return, ///< Ascend back to the caller (edge is the same call edge).
    Check,  ///< The final, violated-obligation edge (not executed).
  };

  Kind K = Kind::Step;
  std::string Method; ///< "Class::method" owning Edge.
  int Edge = -1;      ///< Edge index within that method's CFG.
  SourceLoc Loc;
  std::string ActionText;
  /// The tracked fact that may be 1 after this step (boolean-variable
  /// display name, possibly mentioning callee ghost variables); empty
  /// when only plain reachability is carried (the Lambda fact).
  std::string Fact;

  std::string str() const {
    std::string Out;
    switch (K) {
    case Kind::Step:
      Out = "step  ";
      break;
    case Kind::Call:
      Out = "call  ";
      break;
    case Kind::Return:
      Out = "return";
      break;
    case Kind::Check:
      Out = "check ";
      break;
    }
    Out += " " + Method + " " + Loc.str() + ": " + ActionText;
    if (!Fact.empty())
      Out += "   [may be 1: " + Fact + "]";
    return Out;
  }
};

/// A shortest interprocedurally-valid (call/return-matched) path from
/// the analyzed entry to a flagged check, ending in a Kind::Check step.
struct WitnessTrace {
  std::vector<WitnessStep> Steps;
  /// Nonempty when the path relies on a non-Lambda fact assumed 1 at
  /// the entry of the analyzed method (component variables are
  /// unconstrained at entry); the replay checker treats this as a
  /// nondeterministic assumption.
  std::string SeedFact;

  bool empty() const { return Steps.empty(); }
  size_t size() const { return Steps.size(); }

  /// True when Call and Return steps nest properly (every Return
  /// matches the innermost pending Call's edge and method) — the
  /// structural half of witness validity; the replay checker is the
  /// semantic half.
  bool callReturnMatched() const {
    std::vector<const WitnessStep *> Pending;
    for (const WitnessStep &S : Steps) {
      if (S.K == WitnessStep::Kind::Call) {
        Pending.push_back(&S);
      } else if (S.K == WitnessStep::Kind::Return) {
        if (Pending.empty() || Pending.back()->Edge != S.Edge ||
            Pending.back()->Method != S.Method)
          return false;
        Pending.pop_back();
      }
    }
    return Pending.empty();
  }

  /// Indented multi-line rendering ("the alarm as a story").
  std::string str() const {
    std::string Out;
    if (!SeedFact.empty())
      Out += "    assume at entry: [" + SeedFact + "] may be 1\n";
    unsigned Depth = 0;
    for (const WitnessStep &S : Steps) {
      if (S.K == WitnessStep::Kind::Return && Depth)
        --Depth;
      Out += "    ";
      for (unsigned I = 0; I != Depth; ++I)
        Out += "  ";
      Out += S.str() + "\n";
      if (S.K == WitnessStep::Kind::Call)
        ++Depth;
    }
    return Out;
  }
};

/// One requires obligation with its verdict — the unified record shared
/// by the intraprocedural, sliced, and interprocedural engines.
struct CheckRecord {
  std::string Method; ///< "Class::method" containing the call.
  SourceLoc Loc;      ///< Client call location.
  std::string What;   ///< "i.next() requires !stale(i)" style text.
  CheckOutcome Outcome = CheckOutcome::Safe;
  SourceLoc ReqLoc;   ///< The requires clause in the component spec.
  /// Non-empty for Potential verdicts produced by a witness-recording
  /// engine: the evidence path.
  WitnessTrace Witness;
  /// True when the verdict came from a cheaper engine than requested
  /// (the supervisor degraded down the ladder after a budget or engine
  /// failure) and so may be more conservative than the requested engine
  /// would have reported. Only unproven outcomes are marked: a Safe
  /// verdict from any engine is sound and stays unmarked.
  bool Degraded = false;
  /// Why the supervisor degraded (empty unless Degraded).
  std::string DegradeNote;
};

inline const char *outcomeStr(CheckOutcome O) {
  switch (O) {
  case CheckOutcome::Safe:
    return "verified";
  case CheckOutcome::Potential:
    return "POTENTIAL VIOLATION";
  case CheckOutcome::Definite:
    return "DEFINITE VIOLATION";
  case CheckOutcome::Unreachable:
    return "unreachable";
  }
  return "?";
}

} // namespace core
} // namespace canvas

#endif // CANVAS_CORE_VERDICT_H
