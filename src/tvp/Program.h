//===----------------------------------------------------------------------===//
///
/// \file
/// The TVP intermediate form (Section 5.1) used by the first-order
/// certification engine: a predicate vocabulary over a 2-/3-valued
/// logical structure plus, for documentation and the derivation
/// benchmarks, textual renderings of the standard translation (Fig. 9)
/// and of the specialized first-order instrumentation predicates and
/// update formulae (Figs. 10 and 11).
///
/// Program state is modeled as in Section 5.2:
///  - every component object is an individual of the universe;
///  - every component-typed client variable x is a unary predicate
///    pt$x(o) ("x points to o");
///  - every instrumentation-predicate family P of the derived
///    abstraction becomes a k-ary predicate over individuals — the
///    first-order predicate abstraction of Section 5.3;
///  - unary type predicates is$T(o) track each object's component class.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_TVP_PROGRAM_H
#define CANVAS_TVP_PROGRAM_H

#include "client/CFG.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace tvp {

/// One predicate of the TVP vocabulary.
struct Pred {
  enum class Kind {
    Type,        ///< is$T(o): o is an instance of component class T.
    VarPointsTo, ///< pt$x(o): client variable x references o.
    Instr,       ///< A derived instrumentation family over individuals.
  };

  Kind K = Kind::Type;
  unsigned Arity = 1;
  std::string Name;
  std::string TypeName; ///< Type: the class; VarPointsTo: the var's type.
  std::string VarName;  ///< VarPointsTo only.
  int Family = -1;      ///< Instr only: index into the abstraction.
  /// Unary abstraction predicates drive canonical abstraction.
  bool Abstraction = false;
};

/// The shape of a vocabulary, reduced to what the packed
/// tvla::Structure representation needs for entry arithmetic: per-pred
/// arity/abstraction/points-to flags, each predicate's dense slot among
/// same-arity predicates, and the unary abstraction predicates in pred
/// order (the canonical-key alphabet).
///
/// Layouts are interned with process lifetime (internLayout) so a
/// Structure can hold one by plain pointer and outlive the Vocabulary
/// it was built against — fixpoint annotations and decoded certificate
/// structures routinely outlive their engine's vocabulary instance.
struct PredLayout {
  unsigned NumUnary = 0;
  unsigned NumBinary = 0;
  std::vector<int> Slot;          ///< Per pred: index among same-arity preds.
  std::vector<int> AbsUnary;      ///< Unary abstraction preds, in pred order.
  std::vector<uint8_t> Arity;     ///< Per pred.
  std::vector<uint8_t> IsAbs;     ///< Per pred: drives canonical keys.
  std::vector<uint8_t> IsVarPT;   ///< Per pred: Kind::VarPointsTo.

  bool operator==(const PredLayout &O) const {
    return NumUnary == O.NumUnary && NumBinary == O.NumBinary &&
           Slot == O.Slot && AbsUnary == O.AbsUnary && Arity == O.Arity &&
           IsAbs == O.IsAbs && IsVarPT == O.IsVarPT;
  }
};

/// Interns \p L with process lifetime (deliberately never freed — the
/// number of distinct layouts is bounded by distinct vocabulary shapes,
/// a few dozen). Thread-safe.
const PredLayout *internLayout(PredLayout L);

/// The TVP vocabulary for one client method against one derived
/// abstraction. Carries its interned PredLayout (see above);
/// finalizeLayout() derives it and buildVocabulary() always leaves it
/// fresh.
struct Vocabulary {
  std::vector<Pred> Preds;
  const PredLayout *Layout = nullptr; ///< Process-lifetime; see PredLayout.

  int findTypePred(const std::string &Type) const;
  int findVarPred(const std::string &Var) const;
  int findInstrPred(int Family) const;
  std::string str() const;

  /// Re-derives and interns the layout from Preds. Idempotent; must be
  /// called after any mutation of Preds (buildVocabulary does).
  void finalizeLayout();
  bool layoutReady() const {
    return Layout && Layout->Arity.size() == Preds.size();
  }
};

/// Builds the vocabulary; families of arity > 2 are reported to
/// \p Diags and handled conservatively by the engine.
Vocabulary buildVocabulary(const wp::DerivedAbstraction &Abs,
                           const cj::CFGMethod &M, DiagnosticEngine &Diags);

/// Renders the standard translation table of Fig. 9 (client pointer
/// statements to TVP actions).
std::string renderStandardTranslation();

/// Renders the Figs. 10/11 analogue for \p Abs: each instrumentation
/// family's defining TVP formula and each method's update formulae in
/// TVP notation (quantified over individuals, with binders resolved
/// through points-to predicates).
std::string renderSpecializedTranslation(const wp::DerivedAbstraction &Abs);

} // namespace tvp
} // namespace canvas

#endif // CANVAS_TVP_PROGRAM_H
