#include "tvp/Program.h"

#include <memory>
#include <mutex>

using namespace canvas;
using namespace canvas::tvp;
using namespace canvas::wp;

int Vocabulary::findTypePred(const std::string &Type) const {
  for (size_t I = 0; I != Preds.size(); ++I)
    if (Preds[I].K == Pred::Kind::Type && Preds[I].TypeName == Type)
      return static_cast<int>(I);
  return -1;
}

int Vocabulary::findVarPred(const std::string &Var) const {
  for (size_t I = 0; I != Preds.size(); ++I)
    if (Preds[I].K == Pred::Kind::VarPointsTo && Preds[I].VarName == Var)
      return static_cast<int>(I);
  return -1;
}

int Vocabulary::findInstrPred(int Family) const {
  for (size_t I = 0; I != Preds.size(); ++I)
    if (Preds[I].K == Pred::Kind::Instr && Preds[I].Family == Family)
      return static_cast<int>(I);
  return -1;
}

const PredLayout *tvp::internLayout(PredLayout L) {
  static std::mutex Mu;
  static std::vector<std::unique_ptr<PredLayout>> Pool;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::unique_ptr<PredLayout> &P : Pool)
    if (*P == L)
      return P.get();
  Pool.push_back(std::make_unique<PredLayout>(std::move(L)));
  return Pool.back().get();
}

void Vocabulary::finalizeLayout() {
  PredLayout L;
  L.Slot.assign(Preds.size(), -1);
  L.Arity.resize(Preds.size());
  L.IsAbs.resize(Preds.size());
  L.IsVarPT.resize(Preds.size());
  for (size_t P = 0; P != Preds.size(); ++P) {
    L.Arity[P] = static_cast<uint8_t>(Preds[P].Arity);
    L.IsAbs[P] = Preds[P].Abstraction;
    L.IsVarPT[P] = Preds[P].K == Pred::Kind::VarPointsTo;
    if (Preds[P].Arity == 1) {
      L.Slot[P] = static_cast<int>(L.NumUnary++);
      if (Preds[P].Abstraction)
        L.AbsUnary.push_back(static_cast<int>(P));
    } else {
      L.Slot[P] = static_cast<int>(L.NumBinary++);
    }
  }
  Layout = internLayout(std::move(L));
}

std::string Vocabulary::str() const {
  std::string Out;
  for (const Pred &P : Preds) {
    Out += P.Name + "/" + std::to_string(P.Arity);
    if (P.Abstraction)
      Out += " [abs]";
    Out += "\n";
  }
  return Out;
}

Vocabulary tvp::buildVocabulary(const DerivedAbstraction &Abs,
                                const cj::CFGMethod &M,
                                DiagnosticEngine &Diags) {
  Vocabulary V;
  // Type predicates for every component type used by a variable or
  // family.
  auto AddType = [&](const std::string &T) {
    if (V.findTypePred(T) >= 0)
      return;
    Pred P;
    P.K = Pred::Kind::Type;
    P.Arity = 1;
    P.Name = "is$" + T;
    P.TypeName = T;
    P.Abstraction = true;
    V.Preds.push_back(std::move(P));
  };
  for (const auto &[Var, T] : M.CompVars)
    AddType(T);
  for (const PredicateFamily &F : Abs.Families)
    for (const std::string &T : F.VarTypes)
      AddType(T);

  for (const auto &[Var, T] : M.CompVars) {
    Pred P;
    P.K = Pred::Kind::VarPointsTo;
    P.Arity = 1;
    P.Name = "pt$" + Var;
    P.TypeName = T;
    P.VarName = Var;
    P.Abstraction = true;
    V.Preds.push_back(std::move(P));
  }

  for (size_t F = 0; F != Abs.Families.size(); ++F) {
    const PredicateFamily &Fam = Abs.Families[F];
    if (Fam.arity() > 2) {
      Diags.warning(SourceLoc(),
                    "instrumentation family " + Fam.DisplayName +
                        " has arity > 2; the first-order engine treats it "
                        "conservatively");
      continue;
    }
    Pred P;
    P.K = Pred::Kind::Instr;
    P.Arity = Fam.arity();
    P.Name = Fam.DisplayName;
    P.Family = static_cast<int>(F);
    P.Abstraction = Fam.arity() == 1;
    V.Preds.push_back(std::move(P));
  }
  V.finalizeLayout();
  return V;
}

std::string tvp::renderStandardTranslation() {
  return R"(Standard translation of client pointer statements (Fig. 9):
  x = new C()   |  let n = new() in pt$x(o) := (o = n)
  x = y         |  pt$x(o) := pt$y(o)
  x = y.fld     |  pt$x(o) := exists o1: pt$y(o1) && rv$fld(o1, o)
  x.fld = y     |  pt$x(o1) -> rv$fld(o1, o2) := pt$y(o2)
)";
}

/// Renders one predicate application with binder arguments routed
/// through points-to predicates, e.g. "P1(o0, r) [pt$this(r)]".
static std::string renderApp(const DerivedAbstraction &Abs,
                             const PredApp &App,
                             std::vector<std::string> &SideConds) {
  std::string Out = Abs.Families[App.Family].DisplayName + "(";
  for (size_t I = 0; I != App.Args.size(); ++I) {
    if (I)
      Out += ", ";
    const std::string &A = App.Args[I];
    if (A.size() > 2 && A[0] == '$' && A[1] == 'q') {
      Out += "o" + A.substr(2);
    } else {
      // A binder: introduce a node variable bound by its points-to
      // predicate.
      std::string NodeVar = "n_" + A;
      Out += NodeVar;
      std::string Cond = "pt$" + A + "(" + NodeVar + ")";
      bool Seen = false;
      for (const std::string &S : SideConds)
        Seen |= S == Cond;
      if (!Seen)
        SideConds.push_back(Cond);
    }
  }
  Out += ")";
  return Out;
}

std::string
tvp::renderSpecializedTranslation(const DerivedAbstraction &Abs) {
  std::string Out =
      "First-order instrumentation predicates (Fig. 10 analogue):\n";
  for (const PredicateFamily &F : Abs.Families) {
    Out += "  " + F.DisplayName + "(";
    for (unsigned I = 0; I != F.arity(); ++I) {
      if (I)
        Out += ", ";
      Out += "o" + std::to_string(I) + ":" + F.VarTypes[I];
    }
    Out += ") := " + conjunctionStr(F.Body) + "\n";
  }
  Out += "\nUpdate formulae (Fig. 11 analogue):\n";
  for (const MethodAbstraction &M : Abs.Methods) {
    bool Printed = false;
    for (const UpdateRule &R : M.Rules) {
      if (R.IsIdentity)
        continue;
      if (!Printed) {
        Out += "  " + M.ClassName + "::" + M.MethodName + ":\n";
        Printed = true;
      }
      std::vector<std::string> SideConds;
      std::string Target = renderApp(Abs, R.target(), SideConds);
      std::string Rhs;
      if (R.ConstantTrue)
        Rhs = "1";
      for (const PredApp &S : R.Sources) {
        if (!Rhs.empty())
          Rhs += " || ";
        Rhs += renderApp(Abs, S, SideConds);
      }
      if (Rhs.empty())
        Rhs = "0";
      std::string Guard;
      for (const std::string &S : SideConds) {
        if (!Guard.empty())
          Guard += " && ";
        Guard += S;
      }
      Out += "    ";
      if (!Guard.empty())
        Out += "(" + Guard + ") -> ";
      Out += Target + " := " + Rhs + "\n";
    }
  }
  return Out;
}
