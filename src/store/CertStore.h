//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe persistent certificate store: on-disk certification
/// results keyed by (input hash, analyzed unit), with write-ahead
/// journaling, atomic temp-file+rename commits, CRC-guarded record
/// framing, and a recovery pass that quarantines torn/truncated/corrupt
/// entries on open and continues — a crash mid-write can never poison
/// future runs.
///
/// Trust boundary: the store is UNTRUSTED. Nothing read from disk is
/// believed on faith — record frames are CRC-checked, payloads are
/// decoded by bounds-checked readers, embedded certificates re-verify
/// their content hash on parse, and above all core::Certifier serves a
/// hit only after the entry's certificate passes the independent
/// cert::Checker (plus claim/verdict cross-checks and witness replay).
/// The CRC and the journal defend durability against crashes; the
/// checker defends soundness against everything, including a hostile
/// store.
///
/// Failure model: every I/O failure path throws
/// CertifyError(StoreIO) — always recoverable; the certifier degrades
/// to re-analysis, never to a wrong or missing verdict. The fault
/// probe sites store-open / store-read / store-commit / store-recover
/// make each path deterministically testable, including short (torn)
/// writes via support::faultProbeAction.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_STORE_CERTSTORE_H
#define CANVAS_STORE_CERTSTORE_H

#include "cert/Certificate.h"
#include "core/Verdict.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace canvas {
namespace store {

enum class StoreMode {
  ReadWrite, ///< Normal operation: recovery mutates, puts commit.
  ReadOnly,  ///< No disk mutation at all: invalid entries are skipped
             ///< (not quarantined), put/evict are rejected.
};

/// One persisted certification result for one analyzed unit: the full
/// verdict vector (with witnesses), the SCMPIntra slicing summary when
/// present, and the proof-carrying certificate that gates every hit.
struct StoreEntry {
  uint64_t InputHash = 0;
  /// "Class::method" for per-method engines, "" for the whole-program
  /// interprocedural engine (matching cert::Certificate::Unit).
  std::string Unit;
  /// engineName() of the producing rung; a hit requires an exact match.
  std::string Engine;
  /// SCMPIntra slicing summary, reproduced on a hit so the report's
  /// "slicing:" lines stay byte-identical to a cold run.
  bool HasSummary = false;
  uint32_t Slices = 0;
  std::string ForcedSingleReason;
  std::vector<core::CheckRecord> Checks;
  bool HasCert = false;
  /// Certificate::ContentHash at commit time; re-checked against the
  /// parsed certificate on load.
  uint64_t CertHash = 0;
  cert::Certificate Cert;
};

/// Counters of the store's own disk-side activity (the hit/miss
/// accounting lives in StoreReport, filled by the certifier).
struct StoreStats {
  unsigned Quarantined = 0;      ///< Entries moved to quarantine/.
  unsigned SkippedInvalid = 0;   ///< Invalid entries skipped (ReadOnly).
  unsigned JournalRecovered = 0; ///< Uncommitted journal records found
                                 ///< on open (crash evidence).
  unsigned TempsRemoved = 0;     ///< Stray temp files removed on open.
  unsigned Writes = 0;           ///< Entries committed.
  unsigned LockWaits = 0;        ///< Backoff sleeps taken while another
                                 ///< process held the store lock.
};

/// One structured store anomaly, surfaced on the certification report
/// so a quarantined or rejected entry is never silent.
struct StoreIncident {
  std::string Unit;
  std::string Kind; ///< "StoreEntryInvalid", "StoreIO", "StoreQuarantine".
  std::string Detail;
};

/// Store usage statistics of one certification run. Defined here (not
/// in core/Certifier.h) so the store layer owns its reporting
/// vocabulary; core::CertificationReport embeds it.
struct StoreReport {
  bool Enabled = false;
  bool ReadOnly = false;
  std::string Path;
  unsigned Hits = 0;     ///< Units answered from the store (checker-gated).
  unsigned Misses = 0;   ///< Units with no usable entry: engine ran.
  unsigned Rejected = 0; ///< Entries the checker gate refused (evicted).
  unsigned Quarantined = 0;
  unsigned Writes = 0;
  std::vector<StoreIncident> Incidents;
};

/// The on-disk store. Layout under the root directory:
///   MANIFEST        identifying magic + version line
///   LOCK            the multi-process mutex (flock target; empty file)
///   journal.log     write-ahead journal ("B <file>" / "C <file>" lines)
///   entries/        one CRC-framed record per (input hash, unit) key
///   quarantine/     torn/corrupt/rejected records, moved aside
///
/// Concurrency model: one store directory may be shared by many
/// PROCESSES (the sharded driver's workers). Every mutation — the
/// recovery pass, each put() commit, each quarantine/evict — runs under
/// an exclusive flock(2) on the dedicated LOCK file, acquired
/// non-blocking with exponential backoff; exhausting the backoff throws
/// CertifyError(StoreIO), which the certifier treats like any other
/// store failure (degrade to re-analysis). The lock is on LOCK, not on
/// journal.log: flock follows the open file description's inode, and
/// recovery replaces the journal by rename — locking a file that gets
/// renamed lets two processes each hold "the" lock on different inodes.
/// LOCK is never renamed or removed, and the kernel drops the lock when
/// a holder dies, so a crashed worker cannot wedge the store. Readers
/// (get) take no lock: entries are only ever produced whole by rename,
/// so a read sees a complete old or complete new frame.
///
/// Within one process a CertStore instance is still not thread-safe:
/// core::Certifier gates hits and commits entries serially (the
/// parallel fan-out only reads the pre-validated hit map). Concurrent
/// threads must open their own instances, which then serialize through
/// the same file lock.
class CertStore {
public:
  /// Opens the store, creating the layout when absent (ReadWrite), and
  /// runs the recovery pass: discard a torn journal tail, remove stray
  /// temp files, quarantine entries whose frame fails validation, and
  /// compact the journal. Throws CertifyError(StoreIO) when the store
  /// cannot be brought to a sane state (or an open/recover fault is
  /// injected) — the caller continues without a store.
  CertStore(std::string RootPath, StoreMode Mode);

  /// Releases the process lock file descriptor (any held flock is
  /// already scoped; this only closes the fd).
  ~CertStore();

  CertStore(const CertStore &) = delete;
  CertStore &operator=(const CertStore &) = delete;

  StoreMode mode() const { return Mode; }
  const std::string &path() const { return Root; }
  const StoreStats &stats() const { return Stats; }
  /// Drains incidents recorded by recovery/get/evict.
  std::vector<StoreIncident> takeIncidents();

  /// Loads the entry keyed (InputHash, Unit), or null when absent. A
  /// present-but-undecodable entry is quarantined (ReadWrite) or
  /// skipped (ReadOnly) and reported null — never an error. Throws
  /// CertifyError(StoreIO) only on injected read faults or hard I/O
  /// failure.
  std::unique_ptr<StoreEntry> get(uint64_t InputHash,
                                  const std::string &Unit);

  /// Atomically commits \p E: journal intent, write a temp file, rename
  /// over the final name, journal completion. A crash (or injected
  /// store-commit fault, including short writes) at any step leaves the
  /// store in the pre- or post-state, never torn. Throws
  /// CertifyError(StoreIO) on failure; ReadWrite mode only.
  void put(const StoreEntry &E);

  /// Quarantines the entry keyed (InputHash, Unit) — the checker gate
  /// refused it. No-op when the entry is absent or the store is
  /// ReadOnly.
  void evict(uint64_t InputHash, const std::string &Unit,
             const std::string &Reason);

  /// Every decodable entry, sorted by (Unit, InputHash): the
  /// snapshot/diff tooling's view. Invalid entries are quarantined
  /// (ReadWrite) or skipped (ReadOnly).
  std::vector<StoreEntry> listEntries();

  /// The entry file name of a key: hex(InputHash)-hex(fnv1a(Unit)).cert
  /// (the unit is hashed — method names contain path-hostile
  /// characters).
  static std::string entryFileName(uint64_t InputHash,
                                   const std::string &Unit);

  /// Serializes \p E into a complete CRC-guarded frame (magic, version,
  /// length, CRC32, payload). Exposed for the framing fuzz tests.
  static std::vector<uint8_t> frameEntry(const StoreEntry &E);

  /// Parses a frame produced by frameEntry (or a hostile imitation).
  /// Never throws: returns false with \p Error on any malformation —
  /// bad magic/version/length, CRC mismatch, payload decode failure,
  /// or an embedded certificate whose content hash does not verify.
  static bool parseFrame(const std::vector<uint8_t> &Bytes, StoreEntry &Out,
                         std::string &Error);

private:
  /// RAII exclusive flock on the LOCK file. Recursion-guarded: a
  /// ScopedLock taken while this instance already holds the lock (e.g.
  /// quarantineFile under recover) is a no-op, so the outer scope's
  /// unlock is the only unlock.
  class ScopedLock;
  friend class ScopedLock;

  void recover();
  std::string entriesDir() const;
  std::string quarantineDir() const;
  std::string journalPath() const;
  std::string lockPath() const;
  void appendJournal(const std::string &Line);
  void quarantineFile(const std::string &File, const std::string &Unit,
                      const std::string &Reason);

  std::string Root;
  StoreMode Mode;
  StoreStats Stats;
  std::vector<StoreIncident> Incidents;
  int LockFd = -1;       ///< Open fd on LOCK (ReadWrite only).
  bool LockHeld = false; ///< This instance holds the exclusive flock.
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over \p Size bytes.
uint32_t crc32(const uint8_t *Data, size_t Size);

} // namespace store
} // namespace canvas

#endif // CANVAS_STORE_CERTSTORE_H
