//===----------------------------------------------------------------------===//
///
/// \file
/// Store implementation. Commit protocol (put):
///
///   1. append "B <file>" to the journal   (intent)
///   2. write entries/<file>.tmp<N>        (full frame, never in place)
///   3. rename(<file>.tmp<N>, <file>)      (the atomic commit point)
///   4. append "C <file>" to the journal   (completion)
///
/// A crash anywhere leaves either the old entry (steps 1-3 incomplete)
/// or the new one (rename done): the final file is only ever produced
/// by rename, so a torn *entry* cannot exist; a torn *journal* tail or
/// stray temp is discarded by the recovery pass, and any corruption
/// that slips past (bit rot, hostile edits) is caught by the CRC frame
/// on open and by the checker gate on use.
///
//===----------------------------------------------------------------------===//

#include "store/CertStore.h"

#include "store/InputHash.h"
#include "support/Budget.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace canvas;
using namespace canvas::store;

namespace fs = std::filesystem;

namespace {

constexpr uint32_t FrameMagic = 0x53564E43; // "CNVS" little-endian.
constexpr const char *ManifestLine = "canvas-cert-store v1\n";

[[noreturn]] void ioError(std::string What) {
  throw CertifyError(CertifyErrorKind::StoreIO, std::move(What), "store");
}

std::string hex16(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[I] = Digits[V & 0xF];
  return Out;
}

/// Reads a whole file; false on any I/O failure (caller decides whether
/// that is an error or a miss).
bool readFileBytes(const std::string &File, std::vector<uint8_t> &Out) {
  std::ifstream In(File, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return !In.bad();
}

void encodeLoc(cert::Writer &W, SourceLoc L) {
  W.u32(L.Line);
  W.u32(L.Col);
}

SourceLoc decodeLoc(cert::Reader &R) {
  SourceLoc L;
  L.Line = R.u32();
  L.Col = R.u32();
  return L;
}

std::vector<uint8_t> encodeEntry(const StoreEntry &E) {
  cert::Writer W;
  W.u64(E.InputHash);
  W.str(E.Unit);
  W.str(E.Engine);
  W.u8(E.HasSummary ? 1 : 0);
  if (E.HasSummary) {
    W.u32(E.Slices);
    W.str(E.ForcedSingleReason);
  }
  W.u32(static_cast<uint32_t>(E.Checks.size()));
  for (const core::CheckRecord &C : E.Checks) {
    W.str(C.Method);
    encodeLoc(W, C.Loc);
    W.str(C.What);
    W.u8(static_cast<uint8_t>(C.Outcome));
    encodeLoc(W, C.ReqLoc);
    W.u8(C.Degraded ? 1 : 0);
    W.str(C.DegradeNote);
    W.str(C.Witness.SeedFact);
    W.u32(static_cast<uint32_t>(C.Witness.Steps.size()));
    for (const core::WitnessStep &S : C.Witness.Steps) {
      W.u8(static_cast<uint8_t>(S.K));
      W.str(S.Method);
      W.i32(S.Edge);
      encodeLoc(W, S.Loc);
      W.str(S.ActionText);
      W.str(S.Fact);
    }
  }
  W.u8(E.HasCert ? 1 : 0);
  if (E.HasCert) {
    W.u64(E.CertHash);
    W.bytes(cert::serializeCertificates({E.Cert}));
  }
  return W.take();
}

bool decodeEntry(const std::vector<uint8_t> &Payload, StoreEntry &Out,
                 std::string &Error) {
  cert::Reader R(Payload);
  Out.InputHash = R.u64();
  Out.Unit = R.str();
  Out.Engine = R.str();
  Out.HasSummary = R.u8() != 0;
  if (Out.HasSummary) {
    Out.Slices = R.u32();
    Out.ForcedSingleReason = R.str();
  }
  const uint32_t NumChecks = R.u32();
  for (uint32_t I = 0; I != NumChecks && !R.failed(); ++I) {
    core::CheckRecord C;
    C.Method = R.str();
    C.Loc = decodeLoc(R);
    C.What = R.str();
    uint8_t O = R.u8();
    if (O > static_cast<uint8_t>(core::CheckOutcome::Unreachable)) {
      Error = "out-of-range check outcome";
      return false;
    }
    C.Outcome = static_cast<core::CheckOutcome>(O);
    C.ReqLoc = decodeLoc(R);
    C.Degraded = R.u8() != 0;
    C.DegradeNote = R.str();
    C.Witness.SeedFact = R.str();
    const uint32_t NumSteps = R.u32();
    for (uint32_t J = 0; J != NumSteps && !R.failed(); ++J) {
      core::WitnessStep S;
      uint8_t K = R.u8();
      if (K > static_cast<uint8_t>(core::WitnessStep::Kind::Check)) {
        Error = "out-of-range witness step kind";
        return false;
      }
      S.K = static_cast<core::WitnessStep::Kind>(K);
      S.Method = R.str();
      S.Edge = R.i32();
      S.Loc = decodeLoc(R);
      S.ActionText = R.str();
      S.Fact = R.str();
      C.Witness.Steps.push_back(std::move(S));
    }
    Out.Checks.push_back(std::move(C));
  }
  Out.HasCert = R.u8() != 0;
  if (Out.HasCert) {
    Out.CertHash = R.u64();
    std::vector<uint8_t> Container = R.bytes();
    if (R.failed()) {
      Error = "truncated payload";
      return false;
    }
    std::vector<cert::Certificate> Certs;
    // parseCertificates re-verifies each certificate's content hash, so
    // a tampered certificate body dies here, before the checker gate.
    if (!cert::parseCertificates(Container, Certs, Error))
      return false;
    if (Certs.size() != 1) {
      Error = "entry must embed exactly one certificate";
      return false;
    }
    Out.Cert = std::move(Certs[0]);
    if (Out.CertHash != Out.Cert.ContentHash) {
      Error = "stored certificate hash disagrees with the certificate";
      return false;
    }
  }
  if (!R.done()) {
    Error = "truncated or oversized payload";
    return false;
  }
  return true;
}

} // namespace

uint32_t store::crc32(const uint8_t *Data, size_t Size) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Size; ++I)
    C = Table[(C ^ Data[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string CertStore::entryFileName(uint64_t InputHash,
                                     const std::string &Unit) {
  const uint64_t UnitHash = cert::fnv1a(
      reinterpret_cast<const uint8_t *>(Unit.data()), Unit.size());
  return hex16(InputHash) + "-" + hex16(UnitHash) + ".cert";
}

std::vector<uint8_t> CertStore::frameEntry(const StoreEntry &E) {
  std::vector<uint8_t> Payload = encodeEntry(E);
  cert::Writer W;
  W.u32(FrameMagic);
  W.u32(EntryFormatVersion);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u32(crc32(Payload.data(), Payload.size()));
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool CertStore::parseFrame(const std::vector<uint8_t> &Bytes, StoreEntry &Out,
                           std::string &Error) {
  if (Bytes.size() < 16) {
    Error = "frame shorter than its header";
    return false;
  }
  cert::Reader R(Bytes.data(), 16);
  if (R.u32() != FrameMagic) {
    Error = "bad frame magic";
    return false;
  }
  if (R.u32() != EntryFormatVersion) {
    Error = "unsupported entry format version";
    return false;
  }
  const uint32_t Len = R.u32();
  const uint32_t Crc = R.u32();
  if (Bytes.size() - 16 != Len) {
    Error = "frame length disagrees with the file size";
    return false;
  }
  if (crc32(Bytes.data() + 16, Len) != Crc) {
    Error = "CRC mismatch (torn or corrupt record)";
    return false;
  }
  std::vector<uint8_t> Payload(Bytes.begin() + 16, Bytes.end());
  return decodeEntry(Payload, Out, Error);
}

std::string CertStore::entriesDir() const { return Root + "/entries"; }
std::string CertStore::quarantineDir() const { return Root + "/quarantine"; }
std::string CertStore::journalPath() const { return Root + "/journal.log"; }
std::string CertStore::lockPath() const { return Root + "/LOCK"; }

/// Acquires the exclusive multi-process lock: a short LOCK_NB spin
/// (counted in Stats.LockWaits so contention is observable) and then a
/// blocking flock. Blocking indefinitely is safe here — the kernel
/// releases a dead holder's flock automatically, and every critical
/// section is a bounded journal/commit operation, so a live holder
/// always hands the lock over; a bounded give-up only manufactured
/// spurious storeless runs when N workers oversubscribe one core.
/// ReadOnly stores and re-entrant scopes (LockHeld) take nothing.
class CertStore::ScopedLock {
public:
  explicit ScopedLock(CertStore &S) : S(S) {
    if (S.Mode == StoreMode::ReadOnly || S.LockFd < 0 || S.LockHeld)
      return;
    for (unsigned Attempt = 0; Attempt < 8; ++Attempt) {
      if (::flock(S.LockFd, LOCK_EX | LOCK_NB) == 0) {
        S.LockHeld = true;
        Owned = true;
        return;
      }
      if (errno != EWOULDBLOCK && errno != EINTR)
        ioError("cannot lock the store: " + std::string(strerror(errno)));
      ++S.Stats.LockWaits;
      std::this_thread::sleep_for(std::chrono::milliseconds(1u << Attempt));
    }
    while (::flock(S.LockFd, LOCK_EX) != 0) {
      if (errno != EINTR)
        ioError("cannot lock the store: " + std::string(strerror(errno)));
    }
    S.LockHeld = true;
    Owned = true;
  }

  ~ScopedLock() {
    if (Owned) {
      S.LockHeld = false;
      ::flock(S.LockFd, LOCK_UN);
    }
  }

  ScopedLock(const ScopedLock &) = delete;
  ScopedLock &operator=(const ScopedLock &) = delete;

private:
  CertStore &S;
  bool Owned = false;
};

CertStore::CertStore(std::string RootPath, StoreMode Mode)
    : Root(std::move(RootPath)), Mode(Mode) {
  support::faultProbe("store-open");
  std::error_code EC;
  if (Mode == StoreMode::ReadWrite) {
    fs::create_directories(entriesDir(), EC);
    if (EC)
      ioError("cannot create store at '" + Root + "': " + EC.message());
    fs::create_directories(quarantineDir(), EC);
    if (EC)
      ioError("cannot create quarantine at '" + Root + "': " + EC.message());
    // The lock file must exist before anything below can be guarded;
    // O_CREAT is itself atomic across racing openers.
    LockFd = ::open(lockPath().c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (LockFd < 0)
      ioError("cannot open the store lock '" + lockPath() + "'");
    try {
      ScopedLock L(*this);
      const std::string Manifest = Root + "/MANIFEST";
      if (!fs::exists(Manifest)) {
        std::ofstream Out(Manifest, std::ios::binary);
        Out << ManifestLine;
        if (!Out)
          ioError("cannot write the store manifest");
      }
      recover();
    } catch (...) {
      // The destructor will not run when the constructor throws; the
      // lock fd must not leak into the (store-less) continuation.
      ::close(LockFd);
      LockFd = -1;
      throw;
    }
  } else {
    if (!fs::is_directory(Root, EC) || !fs::is_directory(entriesDir(), EC))
      ioError("read-only open of a missing store '" + Root + "'");
    recover();
  }
}

CertStore::~CertStore() {
  if (LockFd >= 0)
    ::close(LockFd);
}

void CertStore::recover() {
  support::faultProbe("store-recover");
  std::error_code EC;

  // --- Journal scan: committed ("C") records cancel intents ("B"); a
  // trailing fragment without a newline is a torn append and is
  // discarded; unknown lines are ignored (forward compatibility).
  std::vector<std::string> Pending;
  {
    std::vector<uint8_t> Raw;
    if (readFileBytes(journalPath(), Raw)) {
      std::vector<std::string> Begun;
      size_t Start = 0;
      for (size_t I = 0; I != Raw.size(); ++I) {
        if (Raw[I] != '\n')
          continue;
        std::string Line(Raw.begin() + Start, Raw.begin() + I);
        Start = I + 1;
        if (Line.size() < 3 || Line[1] != ' ')
          continue;
        if (Line[0] == 'B')
          Begun.push_back(Line.substr(2));
        else if (Line[0] == 'C')
          Begun.erase(std::remove(Begun.begin(), Begun.end(), Line.substr(2)),
                      Begun.end());
      }
      Pending = std::move(Begun);
    }
  }
  Stats.JournalRecovered += static_cast<unsigned>(Pending.size());
  for (const std::string &File : Pending)
    Incidents.push_back({"", "StoreRecover",
                         "uncommitted journal intent for '" + File +
                             "' (crashed commit; entry is pre- or "
                             "post-state by construction)"});

  // --- Stray temp files: a crashed commit's half-written frame. The
  // final entry is only ever produced by rename, so temps are garbage.
  if (fs::is_directory(entriesDir(), EC) && !EC) {
    for (const fs::directory_entry &DE :
         fs::directory_iterator(entriesDir(), EC)) {
      const std::string Name = DE.path().filename().string();
      if (Name.find(".tmp") == std::string::npos)
        continue;
      if (Mode == StoreMode::ReadWrite) {
        fs::remove(DE.path(), EC);
        ++Stats.TempsRemoved;
      }
    }
  }
  fs::path JournalTmp = fs::path(Root) / "journal.tmp";
  if (Mode == StoreMode::ReadWrite && fs::exists(JournalTmp, EC))
    fs::remove(JournalTmp, EC);

  // --- Frame validation sweep: quarantine anything whose CRC frame or
  // payload no longer decodes (bit rot, truncation, hostile edits).
  std::vector<std::string> Files;
  if (fs::is_directory(entriesDir(), EC) && !EC)
    for (const fs::directory_entry &DE :
         fs::directory_iterator(entriesDir(), EC)) {
      const std::string Name = DE.path().filename().string();
      if (Name.size() > 5 && Name.substr(Name.size() - 5) == ".cert")
        Files.push_back(DE.path().string());
    }
  std::sort(Files.begin(), Files.end());
  for (const std::string &File : Files) {
    std::vector<uint8_t> Bytes;
    StoreEntry E;
    std::string Error;
    if (readFileBytes(File, Bytes) && parseFrame(Bytes, E, Error))
      continue;
    if (Error.empty())
      Error = "unreadable entry file";
    quarantineFile(File, E.Unit, Error);
  }

  // --- Journal compaction: every surviving entry is validated, so the
  // journal's history is dead weight; rewrite it empty via temp+rename
  // (a short write tears only the temp, which the next open removes).
  if (Mode == StoreMode::ReadWrite) {
    const support::FaultAction A = support::faultProbeAction("store-recover");
    std::ofstream Out(JournalTmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      ioError("cannot write the compacted journal");
    if (A == support::FaultAction::ShortWrite) {
      Out << "B torn-compaction-";
      Out.flush();
      ioError("injected short write compacting the journal");
    }
    Out.close();
    fs::rename(JournalTmp, journalPath(), EC);
    if (EC)
      ioError("cannot swap in the compacted journal: " + EC.message());
  }
}

void CertStore::quarantineFile(const std::string &File,
                               const std::string &Unit,
                               const std::string &Reason) {
  const std::string Name = fs::path(File).filename().string();
  if (Mode == StoreMode::ReadOnly) {
    ++Stats.SkippedInvalid;
    Incidents.push_back(
        {Unit, "StoreEntryInvalid", Name + ": " + Reason + " (read-only: skipped)"});
    return;
  }
  ScopedLock L(*this);
  std::error_code EC;
  fs::path Dest = fs::path(quarantineDir()) / Name;
  for (unsigned I = 1; fs::exists(Dest, EC); ++I)
    Dest = fs::path(quarantineDir()) / (Name + "." + std::to_string(I));
  fs::rename(File, Dest, EC);
  if (EC) {
    // Renaming within one directory tree should not fail; if it does,
    // fall back to removal so the poisoned entry cannot be served.
    fs::remove(File, EC);
  }
  ++Stats.Quarantined;
  Incidents.push_back({Unit, "StoreQuarantine", Name + ": " + Reason});
}

std::vector<StoreIncident> CertStore::takeIncidents() {
  std::vector<StoreIncident> Out = std::move(Incidents);
  Incidents.clear();
  return Out;
}

std::unique_ptr<StoreEntry> CertStore::get(uint64_t InputHash,
                                           const std::string &Unit) {
  support::faultProbe("store-read");
  const std::string File =
      entriesDir() + "/" + entryFileName(InputHash, Unit);
  std::error_code EC;
  if (!fs::exists(File, EC) || EC)
    return nullptr;
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(File, Bytes))
    ioError("cannot read store entry '" + File + "'");
  auto E = std::make_unique<StoreEntry>();
  std::string Error;
  if (!parseFrame(Bytes, *E, Error)) {
    quarantineFile(File, Unit, Error);
    return nullptr;
  }
  if (E->InputHash != InputHash || E->Unit != Unit) {
    quarantineFile(File, Unit, "entry key disagrees with its file name");
    return nullptr;
  }
  return E;
}

void CertStore::appendJournal(const std::string &Line) {
  const support::FaultAction A = support::faultProbeAction("store-commit");
  std::ofstream Out(journalPath(), std::ios::binary | std::ios::app);
  if (!Out)
    ioError("cannot append to the store journal");
  if (A == support::FaultAction::ShortWrite) {
    // A torn append: half the record, no newline — exactly what a
    // crash mid-write leaves. Recovery discards the fragment.
    Out << Line.substr(0, Line.size() / 2);
    Out.flush();
    ioError("injected short write appending '" + Line + "'");
  }
  Out << Line << '\n';
  Out.flush();
  if (!Out)
    ioError("store journal append failed");
}

void CertStore::put(const StoreEntry &E) {
  if (Mode == StoreMode::ReadOnly)
    ioError("put into a read-only store");
  // The lock spans the whole commit protocol, so concurrent processes
  // serialize journal appends and no live temp of one process can be
  // swept by another's recovery. A crash mid-commit drops the lock via
  // the kernel; the half-done commit is the next recovery's problem,
  // exactly as in the single-process story.
  ScopedLock L(*this);
  const std::string Name = entryFileName(E.InputHash, E.Unit);
  appendJournal("B " + Name);

  // Temps are pid-qualified so two processes committing the same key
  // can never collide on a temp name.
  static std::atomic<unsigned> TempCounter{0};
  const std::string Tmp = entriesDir() + "/" + Name + ".tmp" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(TempCounter.fetch_add(1));
  const std::vector<uint8_t> Frame = frameEntry(E);
  {
    const support::FaultAction A = support::faultProbeAction("store-commit");
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      ioError("cannot write store temp '" + Tmp + "'");
    const size_t N =
        A == support::FaultAction::ShortWrite ? Frame.size() / 2 : Frame.size();
    Out.write(reinterpret_cast<const char *>(Frame.data()),
              static_cast<std::streamsize>(N));
    Out.flush();
    if (A == support::FaultAction::ShortWrite)
      ioError("injected short write on store temp '" + Tmp + "'");
    if (!Out)
      ioError("short write on store temp '" + Tmp + "'");
  }

  if (support::faultProbeAction("store-commit") ==
      support::FaultAction::ShortWrite) {
    // Simulated crash between the temp write and the rename: the temp
    // survives for recovery to sweep, the entry is untouched.
    ioError("injected crash before committing '" + Name + "'");
  }
  std::error_code EC;
  fs::rename(Tmp, entriesDir() + "/" + Name, EC);
  if (EC)
    ioError("cannot commit store entry '" + Name + "': " + EC.message());

  appendJournal("C " + Name);
  ++Stats.Writes;
}

void CertStore::evict(uint64_t InputHash, const std::string &Unit,
                      const std::string &Reason) {
  if (Mode == StoreMode::ReadOnly)
    return;
  const std::string File =
      entriesDir() + "/" + entryFileName(InputHash, Unit);
  std::error_code EC;
  if (!fs::exists(File, EC) || EC)
    return;
  quarantineFile(File, Unit, Reason);
}

std::vector<StoreEntry> CertStore::listEntries() {
  std::error_code EC;
  std::vector<std::string> Files;
  if (fs::is_directory(entriesDir(), EC) && !EC)
    for (const fs::directory_entry &DE :
         fs::directory_iterator(entriesDir(), EC)) {
      const std::string Name = DE.path().filename().string();
      if (Name.size() > 5 && Name.substr(Name.size() - 5) == ".cert")
        Files.push_back(DE.path().string());
    }
  std::sort(Files.begin(), Files.end());
  std::vector<StoreEntry> Out;
  for (const std::string &File : Files) {
    std::vector<uint8_t> Bytes;
    StoreEntry E;
    std::string Error;
    if (!readFileBytes(File, Bytes) || !parseFrame(Bytes, E, Error)) {
      quarantineFile(File, E.Unit,
                     Error.empty() ? "unreadable entry file" : Error);
      continue;
    }
    Out.push_back(std::move(E));
  }
  std::sort(Out.begin(), Out.end(), [](const StoreEntry &A, const StoreEntry &B) {
    return A.Unit != B.Unit ? A.Unit < B.Unit : A.InputHash < B.InputHash;
  });
  return Out;
}
