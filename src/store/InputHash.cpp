#include "store/InputHash.h"

#include "cert/Certificate.h"

using namespace canvas;
using namespace canvas::store;

namespace {

uint64_t hashBuffer(const cert::Writer &W, uint64_t Seed) {
  return cert::fnv1a(W.buffer().data(), W.buffer().size(), Seed);
}

/// The method's own certification-relevant shape, independent of any
/// callee body. Everything an intraprocedural engine (or the
/// interprocedural model builder) reads from the CFG is folded:
/// topology, classified actions with their source locations, component
/// variables, parameters, and the heap-escape flag that drives the
/// slicing gates.
uint64_t localMethodHash(const cj::CFGMethod &M) {
  cert::Writer W;
  W.str(M.name());
  W.i32(M.Entry);
  W.i32(M.Exit);
  W.i32(M.NumNodes);
  W.u8(M.HasHeapComponentRefs ? 1 : 0);
  W.u32(static_cast<uint32_t>(M.CompVars.size()));
  for (const auto &[Name, Type] : M.CompVars) {
    W.str(Name);
    W.str(Type);
  }
  uint32_t NumParams =
      M.Method ? static_cast<uint32_t>(M.Method->Params.size()) : 0;
  W.u32(NumParams);
  if (M.Method)
    for (const cj::CParam &P : M.Method->Params)
      W.str(P.Name);
  W.u32(static_cast<uint32_t>(M.Edges.size()));
  for (const cj::CFGEdge &E : M.Edges) {
    W.i32(E.From);
    W.i32(E.To);
    W.u8(static_cast<uint8_t>(E.Act.K));
    W.str(E.Act.Lhs);
    W.str(E.Act.Recv);
    W.str(E.Act.Callee);
    W.u32(static_cast<uint32_t>(E.Act.Args.size()));
    for (const std::string &A : E.Act.Args)
      W.str(A);
    // ClientCall targets by name: the callee *body* is folded by the
    // closure walk, the resolved identity belongs to the local shape.
    W.str(E.Act.CalleeClass ? E.Act.CalleeClass->Name : "");
    W.str(E.Act.CalleeMethod ? E.Act.CalleeMethod->Name : "");
    W.u32(E.Act.Loc.Line);
    W.u32(E.Act.Loc.Col);
  }
  return hashBuffer(W, 0xcbf29ce484222325ull);
}

struct ClosureWalk {
  const cj::ClientCFG &CFG;
  std::map<const cj::CFGMethod *, uint64_t> Local;
  std::map<const cj::CFGMethod *, uint64_t> Memo;
  std::map<const cj::CFGMethod *, bool> OnStack;

  explicit ClosureWalk(const cj::ClientCFG &CFG) : CFG(CFG) {
    for (const cj::CFGMethod &M : CFG.Methods)
      Local[&M] = localMethodHash(M);
  }

  uint64_t closure(const cj::CFGMethod &M) {
    auto It = Memo.find(&M);
    if (It != Memo.end())
      return It->second;
    OnStack[&M] = true;
    uint64_t H = Local[&M];
    for (const cj::CFGEdge &E : M.Edges) {
      if (E.Act.K != cj::Action::Kind::ClientCall || !E.Act.CalleeMethod)
        continue;
      const cj::CFGMethod *Callee = CFG.findMethod(E.Act.CalleeMethod);
      cert::Writer W;
      if (!Callee || OnStack[Callee]) {
        // Unresolvable or on-stack (cycle): fold the name only. Sound
        // for cycles — every member folds every other member's local
        // hash transitively, so any body edit re-keys the whole cycle.
        W.u8(1);
        W.str(Callee ? Callee->name()
                     : E.Act.Callee + "/" +
                           (E.Act.CalleeClass ? E.Act.CalleeClass->Name : ""));
      } else {
        W.u8(2);
        W.u64(closure(*Callee));
      }
      H = hashBuffer(W, H);
    }
    OnStack[&M] = false;
    Memo[&M] = H;
    return H;
  }
};

} // namespace

uint64_t store::contextFingerprint(uint64_t SpecHash,
                                   const std::string &AbsText,
                                   const std::string &EngineName,
                                   const std::string &OptionsFingerprint) {
  cert::Writer W;
  W.u32(EntryFormatVersion);
  W.u64(SpecHash);
  W.str(AbsText);
  W.str(EngineName);
  W.str(OptionsFingerprint);
  return hashBuffer(W, 0xcbf29ce484222325ull);
}

std::map<std::string, uint64_t>
store::methodInputHashes(const cj::ClientCFG &CFG, uint64_t Context) {
  ClosureWalk Walk(CFG);
  std::map<std::string, uint64_t> Out;
  for (const cj::CFGMethod &M : CFG.Methods) {
    cert::Writer W;
    W.u64(Context);
    W.u64(Walk.closure(M));
    Out[M.name()] = hashBuffer(W, 0xcbf29ce484222325ull);
  }
  return Out;
}

uint64_t store::programInputHash(const cj::ClientCFG &CFG, uint64_t Context) {
  ClosureWalk Walk(CFG);
  cert::Writer W;
  W.u64(Context);
  W.u32(static_cast<uint32_t>(CFG.Methods.size()));
  for (const cj::CFGMethod &M : CFG.Methods)
    W.u64(Walk.Local[&M]);
  return hashBuffer(W, 0xcbf29ce484222325ull);
}
