//===----------------------------------------------------------------------===//
///
/// \file
/// Content hashing of certification inputs for the persistent
/// certificate store: a context fingerprint folding everything that
/// invalidates the whole store at once (spec source, derived
/// abstraction, engine, option knobs, entry-format version), and
/// per-unit input hashes over the client CFGs. A method's hash covers
/// its own CFG shape plus the transitive closure of its client callees,
/// so editing a callee re-keys every caller whose analysis could
/// observe it; the whole-program hash (for the interprocedural engine)
/// covers every method.
///
/// The hashes are pure cache keys, not trust anchors: a colliding or
/// stale entry is still gated by the independent cert::Checker before
/// its verdicts are served (see store/CertStore.h).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_STORE_INPUTHASH_H
#define CANVAS_STORE_INPUTHASH_H

#include "client/CFG.h"

#include <cstdint>
#include <map>
#include <string>

namespace canvas {
namespace store {

/// The store entry format version, folded into every context
/// fingerprint so a layout change invalidates old entries wholesale
/// instead of misparsing them.
inline constexpr uint32_t EntryFormatVersion = 1;

/// Folds the run-wide certification context into one seed: the FNV-1a
/// hash of the spec source, the derived abstraction's rendering, the
/// engine name, and a fingerprint of the verdict-affecting certifier
/// options.
uint64_t contextFingerprint(uint64_t SpecHash, const std::string &AbsText,
                            const std::string &EngineName,
                            const std::string &OptionsFingerprint);

/// Per-method input hashes keyed by "Class::method". Each hash folds
/// \p Context, the method's local CFG (nodes, edges, actions with
/// locations, component variables, parameters), and the closure of its
/// resolved client callees; an on-stack cycle folds the callee's name
/// only, which is sound because every member of the cycle already
/// folds every other member's local hash transitively.
std::map<std::string, uint64_t> methodInputHashes(const cj::ClientCFG &CFG,
                                                  uint64_t Context);

/// Whole-program input hash: \p Context plus every method's local hash
/// in method order. Keys the interprocedural engine's single entry and
/// is folded into per-method keys when a whole-program refinement
/// (points-to) couples methods beyond the call graph.
uint64_t programInputHash(const cj::ClientCFG &CFG, uint64_t Context);

} // namespace store
} // namespace canvas

#endif // CANVAS_STORE_INPUTHASH_H
