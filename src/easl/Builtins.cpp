#include "easl/Builtins.h"

#include "easl/Parser.h"
#include "support/ErrorHandling.h"

#include <cstdio>

using namespace canvas;
using namespace canvas::easl;

const char *easl::cmpSpecSource() {
  return R"(
// Concurrent Modification Problem (Fig. 2). Versions are heap objects so
// that "the version changed" is an alias condition.
class Version { }

class Set {
  Version ver;
  Set() { ver = new Version(); }
  void add() { ver = new Version(); }
  Iterator iterator() { return new Iterator(this); }
}

class Iterator {
  Set set;
  Version defVer;
  Iterator(Set s) { defVer = s.ver; set = s; }
  void remove() {
    requires (defVer == set.ver);
    set.ver = new Version();
    defVer = set.ver;
  }
  void next() { requires (defVer == set.ver); }
}
)";
}

const char *easl::grpSpecSource() {
  return R"(
// Grabbed Resource Problem (Section 2.2). A graph stores traversal state
// in its vertices, so initiating a new traversal preemptively grabs the
// graph: the constructor re-issues the graph's ownership token, and every
// traversal step requires the traversal's grant to still be the token.
class Token { }

class Graph {
  Token owner;
  Graph() { owner = new Token(); }
  Traversal traverse() { return new Traversal(this); }
}

class Traversal {
  Graph graph;
  Token grant;
  Traversal(Graph g) {
    g.owner = new Token();
    grant = g.owner;
    graph = g;
  }
  void visitNext() { requires (grant == graph.owner); }
}
)";
}

const char *easl::impSpecSource() {
  return R"(
// Implementation Mismatch Problem (Section 2.2): the Factory pattern.
// Widgets may only be combined with widgets made by the same factory.
class Factory {
  Factory() { }
  Widget make() { return new Widget(this); }
}

class Widget {
  Factory owner;
  Widget(Factory f) { owner = f; }
  void combine(Widget w) { requires (owner == w.owner); }
}
)";
}

const char *easl::aopSpecSource() {
  return R"(
// Alien Object Problem (Section 2.2): vertices belong to the graph that
// created them, and addEdge may only connect the graph's own vertices.
class GraphA {
  GraphA() { }
  Vertex newVertex() { return new Vertex(this); }
  void addEdge(Vertex u, Vertex v) {
    requires (u.home == this);
    requires (v.home == this);
  }
}

class Vertex {
  GraphA home;
  Vertex(GraphA g) { home = g; }
}
)";
}

Spec easl::parseBuiltinSpec(const char *Source) {
  DiagnosticEngine Diags;
  Spec S = parseSpec(Source, Diags);
  if (!Diags.hasErrors())
    checkSpec(S, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    reportFatalError("built-in Easl specification failed to parse/check");
  }
  return S;
}
