#include "easl/Parser.h"

#include "support/Lexer.h"

#include <set>

using namespace canvas;
using namespace canvas::easl;

namespace {

class SpecParser {
public:
  SpecParser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Spec run() {
    Spec S;
    while (!atEnd()) {
      if (peek().isKeyword("class")) {
        S.Classes.push_back(parseClass());
        continue;
      }
      // One diagnostic per junk region, then resume at the next class
      // so later declarations still parse (partial AST with errors).
      error("expected 'class'");
      synchronizeTopLevel();
    }
    return S;
  }

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  bool atEnd() const { return peek().is(TokenKind::End); }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  void error(const std::string &Msg) { Diags.error(peek().Loc, Msg); }

  bool expectPunct(const char *P) {
    if (peek().isPunct(P)) {
      advance();
      return true;
    }
    error(std::string("expected '") + P + "'");
    return false;
  }

  std::string expectIdentifier(const char *What) {
    if (peek().is(TokenKind::Identifier))
      return advance().Text;
    error(std::string("expected ") + What);
    return "";
  }

  /// Skips forward to the next top-level 'class' keyword (or the end)
  /// after junk between declarations.
  void synchronizeTopLevel() {
    advance();
    while (!atEnd() && !peek().isKeyword("class"))
      advance();
  }

  /// Skips forward to (and past) the next ';' or to a '}' for error
  /// recovery.
  void synchronize() {
    while (!atEnd()) {
      if (peek().isPunct(";")) {
        advance();
        return;
      }
      if (peek().isPunct("}"))
        return;
      advance();
    }
  }

  ClassDecl parseClass() {
    ClassDecl C;
    C.Loc = peek().Loc;
    advance(); // 'class'
    C.Name = expectIdentifier("class name");
    expectPunct("{");
    while (!atEnd() && !peek().isPunct("}"))
      parseMember(C);
    expectPunct("}");
    return C;
  }

  void parseMember(ClassDecl &C) {
    // Constructor: ClassName '(' ...
    if (peek().isKeyword(C.Name) && peek(1).isPunct("(")) {
      MethodDecl M;
      M.Loc = peek().Loc;
      M.Name = advance().Text;
      M.IsConstructor = true;
      M.ReturnType = C.Name;
      parseParamsAndBody(M);
      C.Methods.push_back(std::move(M));
      return;
    }
    // Field or method: Type Name (';' | '(').
    if (!peek().is(TokenKind::Identifier)) {
      error("expected member declaration");
      synchronize();
      return;
    }
    SourceLoc Loc = peek().Loc;
    std::string Type = advance().Text;
    std::string Name = expectIdentifier("member name");
    if (peek().isPunct(";")) {
      advance();
      C.Fields.push_back({std::move(Type), std::move(Name), Loc});
      return;
    }
    if (peek().isPunct("(")) {
      MethodDecl M;
      M.Loc = Loc;
      M.ReturnType = std::move(Type);
      M.Name = std::move(Name);
      parseParamsAndBody(M);
      C.Methods.push_back(std::move(M));
      return;
    }
    error("expected ';' or '(' after member name");
    synchronize();
  }

  void parseParamsAndBody(MethodDecl &M) {
    expectPunct("(");
    if (!peek().isPunct(")")) {
      while (true) {
        Param P;
        P.Loc = peek().Loc;
        P.Type = expectIdentifier("parameter type");
        P.Name = expectIdentifier("parameter name");
        M.Params.push_back(std::move(P));
        if (!peek().isPunct(","))
          break;
        advance();
      }
    }
    expectPunct(")");
    M.Body = parseBlock();
  }

  std::vector<StmtPtr> parseBlock() {
    std::vector<StmtPtr> Stmts;
    expectPunct("{");
    while (!atEnd() && !peek().isPunct("}")) {
      if (StmtPtr S = parseStmt())
        Stmts.push_back(std::move(S));
      else
        synchronize();
    }
    expectPunct("}");
    return Stmts;
  }

  StmtPtr parseStmt() {
    SourceLoc Loc = peek().Loc;
    if (peek().isKeyword("requires")) {
      advance();
      expectPunct("(");
      ExprPtr Cond = parseExpr();
      expectPunct(")");
      expectPunct(";");
      return std::make_unique<RequiresStmt>(std::move(Cond), Loc);
    }
    if (peek().isKeyword("return")) {
      advance();
      RhsExpr Value = parseRhs();
      expectPunct(";");
      return std::make_unique<ReturnStmt>(std::move(Value), Loc);
    }
    if (peek().isKeyword("if")) {
      advance();
      expectPunct("(");
      ExprPtr Cond = parseExpr();
      expectPunct(")");
      std::vector<StmtPtr> Then = parseBlock();
      std::vector<StmtPtr> Else;
      if (peek().isKeyword("else")) {
        advance();
        Else = parseBlock();
      }
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else), Loc);
    }
    PathExpr Lhs = parsePath();
    if (Lhs.Components.empty())
      return nullptr;
    if (!expectPunct("="))
      return nullptr;
    RhsExpr Rhs = parseRhs();
    expectPunct(";");
    return std::make_unique<AssignStmt>(std::move(Lhs), std::move(Rhs), Loc);
  }

  RhsExpr parseRhs() {
    RhsExpr R;
    R.Loc = peek().Loc;
    if (peek().isKeyword("new")) {
      advance();
      R.TheKind = RhsExpr::Kind::New;
      R.NewType = expectIdentifier("class name after 'new'");
      expectPunct("(");
      if (!peek().isPunct(")")) {
        while (true) {
          R.Args.push_back(parsePath());
          if (!peek().isPunct(","))
            break;
          advance();
        }
      }
      expectPunct(")");
      return R;
    }
    R.TheKind = RhsExpr::Kind::Path;
    R.P = parsePath();
    return R;
  }

  PathExpr parsePath() {
    PathExpr P;
    P.Loc = peek().Loc;
    if (!peek().is(TokenKind::Identifier)) {
      error("expected access path");
      return P;
    }
    P.Components.push_back(advance().Text);
    while (peek().isPunct(".")) {
      advance();
      P.Components.push_back(expectIdentifier("field name"));
    }
    return P;
  }

  // expr := and ('||' and)* ; and := unary ('&&' unary)* ;
  // unary := '!' unary | primary ;
  // primary := 'true' | 'false' | comparison | '(' expr ')' (then maybe
  // '==' for a parenthesized-path comparison, which Easl does not need).
  ExprPtr parseExpr() {
    ExprPtr Lhs = parseAnd();
    if (!peek().isPunct("||"))
      return Lhs;
    std::vector<ExprPtr> Ops;
    SourceLoc Loc = Lhs->Loc;
    Ops.push_back(std::move(Lhs));
    while (peek().isPunct("||")) {
      advance();
      Ops.push_back(parseAnd());
    }
    return std::make_unique<OrExpr>(std::move(Ops), Loc);
  }

  ExprPtr parseAnd() {
    ExprPtr Lhs = parseUnary();
    if (!peek().isPunct("&&"))
      return Lhs;
    std::vector<ExprPtr> Ops;
    SourceLoc Loc = Lhs->Loc;
    Ops.push_back(std::move(Lhs));
    while (peek().isPunct("&&")) {
      advance();
      Ops.push_back(parseUnary());
    }
    return std::make_unique<AndExpr>(std::move(Ops), Loc);
  }

  ExprPtr parseUnary() {
    SourceLoc Loc = peek().Loc;
    if (peek().isPunct("!")) {
      advance();
      return std::make_unique<NotExpr>(parseUnary(), Loc);
    }
    if (peek().isKeyword("true") || peek().isKeyword("false")) {
      bool V = advance().Text == "true";
      return std::make_unique<BoolConstExpr>(V, Loc);
    }
    if (peek().isPunct("(")) {
      advance();
      ExprPtr Inner = parseExpr();
      expectPunct(")");
      return Inner;
    }
    PathExpr Lhs = parsePath();
    bool Negated;
    if (peek().isPunct("==")) {
      Negated = false;
    } else if (peek().isPunct("!=")) {
      Negated = true;
    } else {
      error("expected '==' or '!=' in comparison");
      return std::make_unique<BoolConstExpr>(true, Loc);
    }
    advance();
    PathExpr Rhs = parsePath();
    return std::make_unique<CompareExpr>(std::move(Lhs), std::move(Rhs),
                                         Negated, Loc);
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

Spec easl::parseSpec(std::string_view Source, DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lexSource(Source, Diags);
  return SpecParser(std::move(Tokens), Diags).run();
}

//===----------------------------------------------------------------------===//
// MethodScope
//===----------------------------------------------------------------------===//

MethodScope::RootKind MethodScope::classifyRoot(const std::string &Name,
                                                std::string &TypeOut) const {
  if (Name == "this") {
    TypeOut = Class.Name;
    return RootKind::This;
  }
  for (const Param &P : Method.Params)
    if (P.Name == Name) {
      TypeOut = P.Type;
      return RootKind::Param;
    }
  if (const FieldDecl *F = Class.findField(Name)) {
    TypeOut = F->Type;
    return RootKind::ImplicitThisField;
  }
  TypeOut.clear();
  return RootKind::Unknown;
}

std::string MethodScope::typeOfPath(const PathExpr &P,
                                    DiagnosticEngine *Diags) const {
  if (P.Components.empty())
    return "";
  std::string Type;
  RootKind RK = classifyRoot(P.Components.front(), Type);
  if (RK == RootKind::Unknown) {
    if (Diags)
      Diags->error(P.Loc, "unknown name '" + P.Components.front() + "' in '" +
                              P.str() + "'");
    return "";
  }
  for (size_t I = 1, E = P.Components.size(); I != E; ++I) {
    const ClassDecl *C = S.findClass(Type);
    if (!C) {
      if (Diags)
        Diags->error(P.Loc, "type '" + Type + "' of '" + P.str() +
                                "' prefix is not a spec class");
      return "";
    }
    const FieldDecl *F = C->findField(P.Components[I]);
    if (!F) {
      if (Diags)
        Diags->error(P.Loc, "class '" + C->Name + "' has no field '" +
                                P.Components[I] + "'");
      return "";
    }
    Type = F->Type;
  }
  return Type;
}

//===----------------------------------------------------------------------===//
// Semantic checker
//===----------------------------------------------------------------------===//

namespace {

class SpecChecker {
public:
  SpecChecker(const Spec &S, DiagnosticEngine &Diags) : S(S), Diags(Diags) {}

  bool run() {
    checkUniqueClassNames();
    for (const ClassDecl &C : S.Classes)
      checkClass(C);
    return !Diags.hasErrors();
  }

private:
  void checkUniqueClassNames() {
    std::set<std::string> Seen;
    for (const ClassDecl &C : S.Classes)
      if (!Seen.insert(C.Name).second)
        Diags.error(C.Loc, "duplicate class '" + C.Name + "'");
  }

  void checkClass(const ClassDecl &C) {
    std::set<std::string> FieldNames;
    for (const FieldDecl &F : C.Fields) {
      if (!FieldNames.insert(F.Name).second)
        Diags.error(F.Loc, "duplicate field '" + F.Name + "'");
      if (!S.findClass(F.Type))
        Diags.error(F.Loc, "unknown field type '" + F.Type + "'");
    }
    std::set<std::string> MethodNames;
    unsigned NumCtors = 0;
    for (const MethodDecl &M : C.Methods) {
      if (M.IsConstructor) {
        if (++NumCtors > 1)
          Diags.error(M.Loc, "class '" + C.Name +
                                 "' has more than one constructor");
      } else if (!MethodNames.insert(M.Name).second) {
        Diags.error(M.Loc, "duplicate method '" + M.Name + "'");
      }
      checkMethod(C, M);
    }
  }

  void checkMethod(const ClassDecl &C, const MethodDecl &M) {
    if (!M.IsConstructor && M.ReturnType != "void" &&
        !S.findClass(M.ReturnType))
      Diags.error(M.Loc, "unknown return type '" + M.ReturnType + "'");
    for (const Param &P : M.Params)
      if (!S.findClass(P.Type))
        Diags.error(P.Loc, "unknown parameter type '" + P.Type + "'");

    MethodScope Scope(S, C, M);
    bool SeenNonRequires = false;
    for (const StmtPtr &St : M.Body)
      checkStmt(Scope, *St, SeenNonRequires);
  }

  void checkStmt(const MethodScope &Scope, const Stmt &St,
                 bool &SeenNonRequires) {
    switch (St.getKind()) {
    case Stmt::Kind::Requires: {
      if (SeenNonRequires)
        Diags.warning(St.Loc,
                      "requires clause not at method entry; the staged "
                      "derivation assumes entry-only requires clauses");
      checkExpr(Scope, *cast<RequiresStmt>(&St)->Cond);
      return;
    }
    case Stmt::Kind::Assign: {
      SeenNonRequires = true;
      const auto *A = cast<AssignStmt>(&St);
      std::string LhsTy = Scope.typeOfPath(A->Lhs, &Diags);
      std::string RhsTy = checkRhs(Scope, A->Rhs);
      if (!LhsTy.empty() && !RhsTy.empty() && LhsTy != RhsTy)
        Diags.error(St.Loc, "assignment of '" + RhsTy + "' to '" + LhsTy +
                                "' reference");
      return;
    }
    case Stmt::Kind::Return: {
      SeenNonRequires = true;
      const auto *R = cast<ReturnStmt>(&St);
      std::string Ty = checkRhs(Scope, R->Value);
      const MethodDecl &M = Scope.method();
      if (!Ty.empty() && !M.IsConstructor && Ty != M.ReturnType)
        Diags.error(St.Loc, "returning '" + Ty + "' from method of type '" +
                                M.ReturnType + "'");
      return;
    }
    case Stmt::Kind::If: {
      SeenNonRequires = true;
      const auto *I = cast<IfStmt>(&St);
      checkExpr(Scope, *I->Cond);
      for (const StmtPtr &Sub : I->Then)
        checkStmt(Scope, *Sub, SeenNonRequires);
      for (const StmtPtr &Sub : I->Else)
        checkStmt(Scope, *Sub, SeenNonRequires);
      return;
    }
    }
  }

  std::string checkRhs(const MethodScope &Scope, const RhsExpr &R) {
    if (!R.isNew())
      return Scope.typeOfPath(R.P, &Diags);
    const ClassDecl *C = S.findClass(R.NewType);
    if (!C) {
      Diags.error(R.Loc, "unknown class '" + R.NewType + "' in new");
      return "";
    }
    const MethodDecl *Ctor = C->constructor();
    size_t Expected = Ctor ? Ctor->Params.size() : 0;
    if (R.Args.size() != Expected)
      Diags.error(R.Loc, "constructor of '" + R.NewType + "' takes " +
                             std::to_string(Expected) + " argument(s), got " +
                             std::to_string(R.Args.size()));
    for (const PathExpr &A : R.Args)
      Scope.typeOfPath(A, &Diags);
    return R.NewType;
  }

  void checkExpr(const MethodScope &Scope, const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::Compare: {
      const auto *C = cast<CompareExpr>(&E);
      Scope.typeOfPath(C->Lhs, &Diags);
      Scope.typeOfPath(C->Rhs, &Diags);
      return;
    }
    case Expr::Kind::And:
      for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
        checkExpr(Scope, *Op);
      return;
    case Expr::Kind::Or:
      for (const ExprPtr &Op : cast<OrExpr>(&E)->Operands)
        checkExpr(Scope, *Op);
      return;
    case Expr::Kind::Not:
      checkExpr(Scope, *cast<NotExpr>(&E)->Operand);
      return;
    case Expr::Kind::BoolConst:
      return;
    }
  }

  const Spec &S;
  DiagnosticEngine &Diags;
};

} // namespace

bool easl::checkSpec(const Spec &S, DiagnosticEngine &Diags) {
  return SpecChecker(S, Diags).run();
}
