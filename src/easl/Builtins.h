//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in Easl specifications from Section 2 of the paper: CMP (the
/// Concurrent Modification Problem, Fig. 2) and the three other FOS
/// conformance problems of Section 2.2 (GRP, IMP, AOP).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_EASL_BUILTINS_H
#define CANVAS_EASL_BUILTINS_H

#include "easl/AST.h"

namespace canvas {
namespace easl {

/// Easl source of the Concurrent Modification Problem spec (Fig. 2):
/// every Set modification allocates a fresh Version; iterators record the
/// version they were created against and require it to still be current.
const char *cmpSpecSource();

/// Grabbed Resource Problem: starting a new traversal of a graph
/// preemptively re-acquires the graph, invalidating earlier traversals.
const char *grpSpecSource();

/// Implementation Mismatch Problem (Factory pattern): objects combined by
/// a method must come from the same factory.
const char *impSpecSource();

/// Alien Object Problem: vertices passed to a graph method must belong to
/// that graph.
const char *aopSpecSource();

/// Parses and semantically checks a built-in specification. Aborts on
/// failure (a failure is a bug in the built-in source, not user error).
Spec parseBuiltinSpec(const char *Source);

} // namespace easl
} // namespace canvas

#endif // CANVAS_EASL_BUILTINS_H
