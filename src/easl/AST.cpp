#include "easl/AST.h"

using namespace canvas;
using namespace canvas::easl;

std::string RhsExpr::str() const {
  if (!isNew())
    return P.str();
  std::string Out = "new " + NewType + "(";
  bool First = true;
  for (const PathExpr &A : Args) {
    if (!First)
      Out += ", ";
    Out += A.str();
    First = false;
  }
  Out += ")";
  return Out;
}

const FieldDecl *ClassDecl::findField(const std::string &FieldName) const {
  for (const FieldDecl &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const MethodDecl *ClassDecl::findMethod(const std::string &MethodName) const {
  for (const MethodDecl &M : Methods)
    if (!M.IsConstructor && M.Name == MethodName)
      return &M;
  return nullptr;
}

const MethodDecl *ClassDecl::constructor() const {
  for (const MethodDecl &M : Methods)
    if (M.IsConstructor)
      return &M;
  return nullptr;
}

const ClassDecl *Spec::findClass(const std::string &ClassName) const {
  for (const ClassDecl &C : Classes)
    if (C.Name == ClassName)
      return &C;
  return nullptr;
}
