//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and semantic checker for Easl specifications.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_EASL_PARSER_H
#define CANVAS_EASL_PARSER_H

#include "easl/AST.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace canvas {
namespace easl {

/// Parses an Easl component specification. Syntax errors are reported to
/// \p Diags; the returned Spec is meaningful only when
/// !Diags.hasErrors().
Spec parseSpec(std::string_view Source, DiagnosticEngine &Diags);

/// Semantic validation: unique names, known types, resolvable access
/// paths, single constructor, requires clauses at method entry (warning
/// otherwise, as the derivation of Section 4 assumes entry-only requires).
/// Returns true when no errors were reported.
bool checkSpec(const Spec &S, DiagnosticEngine &Diags);

/// Name-resolution helper for access paths inside a method body. Shared
/// by the checker and the WP engine.
class MethodScope {
public:
  MethodScope(const Spec &S, const ClassDecl &Class, const MethodDecl &Method)
      : S(S), Class(Class), Method(Method) {}

  /// How the first component of a path resolves.
  enum class RootKind { This, Param, ImplicitThisField, Unknown };

  /// Classifies \p Name and yields its declared type (the enclosing class
  /// for This, the parameter type, or the field type).
  RootKind classifyRoot(const std::string &Name, std::string &TypeOut) const;

  /// Returns the declared type of the full path, or "" (with an optional
  /// diagnostic) if any component fails to resolve.
  std::string typeOfPath(const PathExpr &P, DiagnosticEngine *Diags) const;

  const Spec &spec() const { return S; }
  const ClassDecl &enclosingClass() const { return Class; }
  const MethodDecl &method() const { return Method; }

private:
  const Spec &S;
  const ClassDecl &Class;
  const MethodDecl &Method;
};

} // namespace easl
} // namespace canvas

#endif // CANVAS_EASL_PARSER_H
