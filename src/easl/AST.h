//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for Easl ("Executable Abstraction Specification
/// Language", Section 2): abstract Java-like component specifications
/// consisting of classes with reference-typed fields, constructors and
/// methods whose bodies are sequences of reference assignments, heap
/// allocations, requires clauses, conditionals and returns.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_EASL_AST_H
#define CANVAS_EASL_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace canvas {
namespace easl {

/// An unresolved access path as written in the source: a dotted component
/// list, e.g. {"set", "ver"} for "set.ver". The first component may be
/// "this", a parameter, or (implicitly this-qualified) a field.
struct PathExpr {
  std::vector<std::string> Components;
  SourceLoc Loc;

  std::string str() const {
    std::string Out;
    for (const std::string &C : Components) {
      if (!Out.empty())
        Out += '.';
      Out += C;
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Boolean expressions (requires clauses and if conditions)
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind { Compare, And, Or, Not, BoolConst };

  virtual ~Expr() = default;

  Kind getKind() const { return TheKind; }
  SourceLoc Loc;

protected:
  Expr(Kind K, SourceLoc Loc) : Loc(Loc), TheKind(K) {}

private:
  Kind TheKind;
};

using ExprPtr = std::unique_ptr<Expr>;

/// "a == b" or "a != b" over access paths.
class CompareExpr : public Expr {
public:
  CompareExpr(PathExpr Lhs, PathExpr Rhs, bool Negated, SourceLoc Loc)
      : Expr(Kind::Compare, Loc), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)),
        Negated(Negated) {}

  PathExpr Lhs, Rhs;
  bool Negated;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Compare; }
};

class AndExpr : public Expr {
public:
  AndExpr(std::vector<ExprPtr> Ops, SourceLoc Loc)
      : Expr(Kind::And, Loc), Operands(std::move(Ops)) {}

  std::vector<ExprPtr> Operands;

  static bool classof(const Expr *E) { return E->getKind() == Kind::And; }
};

class OrExpr : public Expr {
public:
  OrExpr(std::vector<ExprPtr> Ops, SourceLoc Loc)
      : Expr(Kind::Or, Loc), Operands(std::move(Ops)) {}

  std::vector<ExprPtr> Operands;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Or; }
};

class NotExpr : public Expr {
public:
  NotExpr(ExprPtr Op, SourceLoc Loc)
      : Expr(Kind::Not, Loc), Operand(std::move(Op)) {}

  ExprPtr Operand;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Not; }
};

class BoolConstExpr : public Expr {
public:
  BoolConstExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolConst, Loc), Value(Value) {}

  bool Value;

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::BoolConst;
  }
};

//===----------------------------------------------------------------------===//
// Right-hand sides and statements
//===----------------------------------------------------------------------===//

/// The right-hand side of an assignment or return: either an access path
/// or a "new C(args)" allocation whose constructor is inlined during WP
/// computation.
struct RhsExpr {
  enum class Kind { Path, New };

  Kind TheKind = Kind::Path;
  PathExpr P;                ///< Valid when TheKind == Path.
  std::string NewType;       ///< Valid when TheKind == New.
  std::vector<PathExpr> Args;
  SourceLoc Loc;

  bool isNew() const { return TheKind == Kind::New; }
  std::string str() const;
};

class Stmt {
public:
  enum class Kind { Requires, Assign, Return, If };

  virtual ~Stmt() = default;

  Kind getKind() const { return TheKind; }
  SourceLoc Loc;

protected:
  Stmt(Kind K, SourceLoc Loc) : Loc(Loc), TheKind(K) {}

private:
  Kind TheKind;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// "requires (phi);" — the conformance constraint the client must satisfy
/// at this point of the component's execution.
class RequiresStmt : public Stmt {
public:
  RequiresStmt(ExprPtr Cond, SourceLoc Loc)
      : Stmt(Kind::Requires, Loc), Cond(std::move(Cond)) {}

  ExprPtr Cond;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Requires; }
};

/// "path = rhs;"
class AssignStmt : public Stmt {
public:
  AssignStmt(PathExpr Lhs, RhsExpr Rhs, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  PathExpr Lhs;
  RhsExpr Rhs;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }
};

/// "return rhs;"
class ReturnStmt : public Stmt {
public:
  ReturnStmt(RhsExpr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  RhsExpr Value;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// "if (cond) { ... } else { ... }"
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, std::vector<StmtPtr> Then, std::vector<StmtPtr> Else,
         SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct Param {
  std::string Type;
  std::string Name;
  SourceLoc Loc;
};

struct MethodDecl {
  std::string ReturnType; ///< "void" or a class name.
  std::string Name;
  bool IsConstructor = false;
  std::vector<Param> Params;
  std::vector<StmtPtr> Body;
  SourceLoc Loc;

  bool returnsValue() const { return ReturnType != "void" || IsConstructor; }
};

struct FieldDecl {
  std::string Type;
  std::string Name;
  SourceLoc Loc;
};

struct ClassDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  std::vector<MethodDecl> Methods;
  SourceLoc Loc;

  const FieldDecl *findField(const std::string &Name) const;
  /// Finds a non-constructor method by name (Easl has no overloading).
  const MethodDecl *findMethod(const std::string &Name) const;
  /// Finds the class's constructor, or null for the implicit empty one.
  const MethodDecl *constructor() const;
};

/// A complete Easl component specification: a closed set of classes.
struct Spec {
  std::vector<ClassDecl> Classes;

  const ClassDecl *findClass(const std::string &Name) const;
};

} // namespace easl
} // namespace canvas

#endif // CANVAS_EASL_AST_H
