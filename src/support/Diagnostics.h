//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by both frontends. Library code reports
/// recoverable errors here instead of throwing; callers inspect the engine
/// after a parse/analysis step.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_DIAGNOSTICS_H
#define CANVAS_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace canvas {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic: severity, location, and message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders the diagnostic in the conventional "line:col: kind: msg" form.
  std::string str() const;
};

/// Collects diagnostics produced while parsing or analyzing one input.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Msg)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Msg)});
  }

  /// Appends every diagnostic of \p O, in \p O's emission order. The
  /// parallel certifier gives each worker task a private engine and
  /// merges them in task-index order, so the combined stream is
  /// identical for any worker count.
  void mergeFrom(const DiagnosticEngine &O) {
    Diags.insert(Diags.end(), O.Diags.begin(), O.Diags.end());
    NumErrors += O.NumErrors;
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line. Convenient for test failures
  /// and tool output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace canvas

#endif // CANVAS_SUPPORT_DIAGNOSTICS_H
