#include "support/Budget.h"

#include <cstdlib>
#include <mutex>
#include <optional>

using namespace canvas;
using namespace canvas::support;

const std::vector<std::string> &support::faultSites() {
  static const std::vector<std::string> Sites = {
      "dataflow.solve",     "boolprog.intra", "boolprog.interproc",
      "ifds.solve",         "tvla.fixpoint",  "generic.allocsite",
      "cert-check",         "points-to",      "store-open",
      "store-read",         "store-commit",   "store-recover",
  };
  return Sites;
}

namespace {

struct FaultState {
  /// Probe sites run on every certifier worker thread concurrently, so
  /// the whole state (lazy environment consult, probe counter,
  /// fired-once latch) is serialized under one mutex. Probes are cheap
  /// and rare relative to transfer work; the lock is not on any inner
  /// loop.
  std::mutex M;
  bool EnvConsulted = false;
  std::optional<FaultPlan> Plan;
  uint64_t Probes = 0; ///< Probe count for the armed site.
  bool Fired = false;  ///< Each plan fires at most once.
};

FaultState &faultState() {
  static FaultState S;
  return S;
}

void consultEnvironment(FaultState &S) {
  S.EnvConsulted = true;
  const char *Env = std::getenv("CANVAS_FAULT");
  if (!Env || !*Env)
    return;
  FaultPlan Plan;
  if (parseFaultPlan(Env, Plan))
    S.Plan = std::move(Plan);
}

} // namespace

bool support::parseFaultPlan(const std::string &Text, FaultPlan &Out) {
  size_t C1 = Text.find(':');
  if (C1 == std::string::npos || C1 == 0)
    return false;
  Out.Site = Text.substr(0, C1);
  size_t C2 = Text.find(':', C1 + 1);
  std::string N = Text.substr(C1 + 1, C2 == std::string::npos
                                          ? std::string::npos
                                          : C2 - C1 - 1);
  if (N.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(N.c_str(), &End, 10);
  if (!End || *End || V == 0)
    return false;
  Out.AtProbe = V;
  Out.Kind = FaultKind::Throw;
  if (C2 != std::string::npos) {
    std::string Kind = Text.substr(C2 + 1);
    if (Kind == "throw")
      Out.Kind = FaultKind::Throw;
    else if (Kind == "timeout")
      Out.Kind = FaultKind::Timeout;
    else if (Kind == "alloc")
      Out.Kind = FaultKind::AllocFail;
    else if (Kind == "short")
      Out.Kind = FaultKind::ShortWrite;
    else
      return false;
  }
  return true;
}

void support::setFaultPlan(const FaultPlan &Plan) {
  FaultState &S = faultState();
  std::lock_guard<std::mutex> Lock(S.M);
  S.EnvConsulted = true; // Programmatic plans shadow the environment.
  S.Plan = Plan;
  S.Probes = 0;
  S.Fired = false;
}

void support::clearFaultPlan() {
  FaultState &S = faultState();
  std::lock_guard<std::mutex> Lock(S.M);
  S.EnvConsulted = true;
  S.Plan.reset();
  S.Probes = 0;
  S.Fired = false;
}

void support::reloadFaultPlanFromEnvironment() {
  FaultState &S = faultState();
  std::lock_guard<std::mutex> Lock(S.M);
  S.EnvConsulted = false;
  S.Plan.reset();
  S.Probes = 0;
  S.Fired = false;
}

FaultAction support::faultProbeAction(const char *Site) {
  FaultState &S = faultState();
  std::lock_guard<std::mutex> Lock(S.M);
  if (!S.EnvConsulted)
    consultEnvironment(S);
  if (!S.Plan || S.Fired || S.Plan->Site != Site)
    return FaultAction::None;
  if (++S.Probes != S.Plan->AtProbe)
    return FaultAction::None;
  S.Fired = true;
  switch (S.Plan->Kind) {
  case FaultKind::Throw:
    throw CertifyError(CertifyErrorKind::InjectedFault,
                       "injected fault at probe " +
                           std::to_string(S.Plan->AtProbe),
                       Site);
  case FaultKind::Timeout:
    throw CertifyError(CertifyErrorKind::BudgetDeadline,
                       "injected timeout at probe " +
                           std::to_string(S.Plan->AtProbe),
                       Site);
  case FaultKind::AllocFail:
    throw CertifyError(CertifyErrorKind::BudgetAllocation,
                       "injected allocation failure at probe " +
                           std::to_string(S.Plan->AtProbe),
                       Site);
  case FaultKind::ShortWrite:
    return FaultAction::ShortWrite;
  }
  return FaultAction::None;
}

void support::faultProbe(const char *Site) {
  // Short-write plans are meaningful only at write-capable sites; a
  // plain probe swallows them (the plan still counts as fired, keeping
  // probe arithmetic identical across kinds).
  (void)faultProbeAction(Site);
}
