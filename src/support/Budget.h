//===----------------------------------------------------------------------===//
///
/// \file
/// Per-stage resource budgets for the staged certification pipeline
/// (the Section 1.3 ladder made operational): a StageBudget bounds one
/// engine run by wall-clock deadline, fixpoint-iteration count,
/// state/structure count, and approximate allocation volume; a
/// CancelToken carries the budget into the engine and is checked
/// cooperatively inside every fixpoint loop (dataflow worklist,
/// boolean-program intra/interproc engines, the IFDS tabulation solver,
/// and the TVLA engines). Exhaustion raises CertifyError, which the
/// supervisor in core::Certifier translates into a step down the
/// engine-degradation ladder — never an abort.
///
/// The same header hosts the deterministic fault-injection hook
/// (CANVAS_FAULT=<site>:<n>[:<kind>]): engines call faultProbe(site)
/// at their probe sites, and the Nth probe of the named site raises a
/// synthetic throw / timeout / allocation failure, making every
/// degradation path testable without real timeouts.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_BUDGET_H
#define CANVAS_SUPPORT_BUDGET_H

#include "support/CertifyError.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace canvas {
namespace support {

/// Ceilings for one certification stage; 0 means unlimited. The default
/// budget is fully unlimited, so un-budgeted callers see no behavior
/// change.
struct StageBudget {
  double DeadlineMicros = 0;    ///< Wall-clock ceiling for the stage.
  uint64_t MaxIterations = 0;   ///< Fixpoint worklist-pop ceiling.
  uint64_t MaxStructures = 0;   ///< Resident state/structure ceiling.
  uint64_t MaxAllocBytes = 0;   ///< Approximate allocation ceiling.

  bool unlimited() const {
    return DeadlineMicros <= 0 && MaxIterations == 0 && MaxStructures == 0 &&
           MaxAllocBytes == 0;
  }
};

/// What one stage actually consumed — reported per ladder rung in
/// core::CertificationReport and surfaced in the BENCH_JSON lines.
struct ResourceSpend {
  double Micros = 0;
  uint64_t Iterations = 0;
  uint64_t PeakStructures = 0;
  uint64_t AllocBytes = 0;
};

/// The cooperative cancellation handle threaded through every engine.
/// Engines call tick() once per fixpoint iteration, noteStructures()
/// with their current resident state count, and addAllocation() at
/// allocation-heavy points; any ceiling violation throws CertifyError
/// with the corresponding budget kind. A default-constructed token is
/// unlimited and doubles as a pure accounting device.
///
/// Thread-safety contract: one token is shared by every task of a
/// parallel certification fan-out (core::Certifier runs independent
/// per-method analyses concurrently), so the spend counters are atomic
/// and tick()/noteStructures()/addAllocation() are safe to call from
/// any number of engine threads concurrently. Ceiling checks are
/// performed against the atomically-updated totals; when a ceiling is
/// crossed, at least one racing caller throws (several may — each
/// worker's CertifyError reports the same exhausted budget). The token
/// is deliberately non-copyable: engines hold it by pointer.
class CancelToken {
public:
  CancelToken() : Start(std::chrono::steady_clock::now()) {}
  explicit CancelToken(const StageBudget &B, std::string StageName = "")
      : B(B), Stage(std::move(StageName)),
        Start(std::chrono::steady_clock::now()) {}

  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// One fixpoint iteration: bumps the counter and checks the iteration
  /// and deadline ceilings.
  void tick() {
    uint64_t I = Iterations.fetch_add(1, std::memory_order_relaxed) + 1;
    if (B.MaxIterations && I > B.MaxIterations)
      throw CertifyError(CertifyErrorKind::BudgetIterations,
                         "fixpoint exceeded " +
                             std::to_string(B.MaxIterations) + " iterations",
                         Stage);
    if (B.DeadlineMicros > 0 && elapsedMicros() > B.DeadlineMicros)
      throw CertifyError(CertifyErrorKind::BudgetDeadline,
                         "stage exceeded its deadline of " +
                             std::to_string(B.DeadlineMicros) + "us",
                         Stage);
  }

  /// Reports the engine's current resident structure/state count;
  /// tracks the peak and enforces the ceiling.
  void noteStructures(uint64_t Current) {
    uint64_t Prev = PeakStructures.load(std::memory_order_relaxed);
    while (Current > Prev &&
           !PeakStructures.compare_exchange_weak(Prev, Current,
                                                 std::memory_order_relaxed)) {
    }
    if (B.MaxStructures && Current > B.MaxStructures)
      throw CertifyError(CertifyErrorKind::BudgetStructures,
                         "stage exceeded its ceiling of " +
                             std::to_string(B.MaxStructures) + " structures",
                         Stage);
  }

  /// Approximate allocation accounting: engines report the rough byte
  /// cost of their allocations (states, path edges, structure copies).
  void addAllocation(uint64_t Bytes) {
    uint64_t Total =
        AllocBytes.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (B.MaxAllocBytes && Total > B.MaxAllocBytes)
      throw CertifyError(CertifyErrorKind::BudgetAllocation,
                         "stage exceeded its allocation budget of " +
                             std::to_string(B.MaxAllocBytes) + " bytes",
                         Stage);
  }

  double elapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

  /// Snapshot of the resources consumed so far.
  ResourceSpend spend() const {
    return {elapsedMicros(), Iterations.load(std::memory_order_relaxed),
            PeakStructures.load(std::memory_order_relaxed),
            AllocBytes.load(std::memory_order_relaxed)};
  }

  const StageBudget &budget() const { return B; }
  const std::string &stage() const { return Stage; }

private:
  StageBudget B;
  std::string Stage;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> Iterations{0};
  std::atomic<uint64_t> PeakStructures{0};
  std::atomic<uint64_t> AllocBytes{0};
};

//===----------------------------------------------------------------------===//
// Deterministic fault injection
//===----------------------------------------------------------------------===//

/// What the injected fault simulates at the probe site.
enum class FaultKind {
  Throw,     ///< A recoverable engine error (CertifyErrorKind::InjectedFault).
  Timeout,   ///< Budget-deadline exhaustion, without a real timeout.
  AllocFail, ///< Allocation-budget exhaustion.
  /// A torn write: the I/O operation the probe guards must write only a
  /// prefix of its bytes and then fail, simulating a crash (power loss,
  /// ENOSPC) mid-write. Only write-capable probe sites (the store's
  /// commit/journal paths) honor it via faultProbeAction(); at every
  /// other site a short-write plan fires as a no-op.
  ShortWrite,
};

/// One armed fault: fire once, at the AtProbe-th probe of Site.
struct FaultPlan {
  std::string Site;
  uint64_t AtProbe = 1;
  FaultKind Kind = FaultKind::Throw;
};

/// The canonical probe-site names, one per engine fixpoint. tools/ci.sh
/// runs its fault-injection pass once per entry; keep the two lists in
/// sync.
const std::vector<std::string> &faultSites();

/// Arms \p Plan programmatically (overrides any CANVAS_FAULT in the
/// environment) and resets the probe counters.
void setFaultPlan(const FaultPlan &Plan);

/// Disarms fault injection entirely, including the environment plan.
void clearFaultPlan();

/// Forgets any armed plan and re-reads CANVAS_FAULT at the next probe —
/// for tests that change the environment after probes already ran.
void reloadFaultPlanFromEnvironment();

/// Parses "<site>:<n>" or "<site>:<n>:<kind>" (kind: throw | timeout |
/// alloc | short). Returns false on malformed input.
bool parseFaultPlan(const std::string &Text, FaultPlan &Out);

/// What a fired probe asks the *caller* to simulate (everything the
/// probe can simulate by itself is thrown as CertifyError instead).
enum class FaultAction {
  None,       ///< No fault fired at this probe.
  ShortWrite, ///< Truncate the guarded write partway, then fail it.
};

/// The probe: a near-free no-op unless a plan is armed for \p Site, in
/// which case the AtProbe-th call throws the planned CertifyError. The
/// environment variable CANVAS_FAULT is consulted lazily on first use.
/// Short-write plans fire as a no-op here; write-capable sites use
/// faultProbeAction instead.
void faultProbe(const char *Site);

/// The probe for write-capable sites: identical to faultProbe for the
/// throwing kinds, but a short-write plan firing at this probe returns
/// FaultAction::ShortWrite — the caller must then write only a prefix
/// of the guarded bytes and fail the operation, as a crash would.
FaultAction faultProbeAction(const char *Site);

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_BUDGET_H
