//===----------------------------------------------------------------------===//
///
/// \file
/// The structured, recoverable error taxonomy of the certification
/// pipeline. Engines signal resource exhaustion, malformed input, and
/// broken internal invariants by throwing CertifyError; the supervisor
/// in core::Certifier catches it and degrades down the engine ladder
/// instead of aborting the process (see DESIGN.md "Budgets & degradation
/// ladder"). Unlike canvas_unreachable/assert, a CertifyError fires in
/// release builds too — user-input and budget paths must fail loudly,
/// never silently misbehave.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_CERTIFYERROR_H
#define CANVAS_SUPPORT_CERTIFYERROR_H

#include "support/SourceLoc.h"

#include <exception>
#include <string>
#include <utility>

namespace canvas {

/// What went wrong, at the granularity the degradation ladder cares
/// about: every kind is recoverable by falling back to a cheaper stage.
enum class CertifyErrorKind {
  BudgetDeadline,    ///< Wall-clock deadline exceeded.
  BudgetIterations,  ///< Fixpoint-iteration ceiling exceeded.
  BudgetStructures,  ///< State/structure-count ceiling exceeded.
  BudgetAllocation,  ///< Approximate allocation budget exceeded.
  InvalidInput,      ///< Malformed spec/client reached an engine.
  InternalInvariant, ///< A checked invariant failed (release-build
                     ///< replacement for assert on reachable paths).
  InjectedFault,     ///< Deterministic test fault (CANVAS_FAULT).
  CertificateInvalid, ///< cert::Checker rejected a proof-carrying
                      ///< certificate backing a Proven verdict.
  StoreIO,            ///< The persistent certificate store hit an I/O
                      ///< failure (open, read, commit, or recovery).
                      ///< Always recoverable: the certifier degrades to
                      ///< re-analysis, never to a missing verdict.
};

inline const char *certifyErrorKindName(CertifyErrorKind K) {
  switch (K) {
  case CertifyErrorKind::BudgetDeadline:
    return "budget-deadline";
  case CertifyErrorKind::BudgetIterations:
    return "budget-iterations";
  case CertifyErrorKind::BudgetStructures:
    return "budget-structures";
  case CertifyErrorKind::BudgetAllocation:
    return "budget-allocation";
  case CertifyErrorKind::InvalidInput:
    return "invalid-input";
  case CertifyErrorKind::InternalInvariant:
    return "internal-invariant";
  case CertifyErrorKind::InjectedFault:
    return "injected-fault";
  case CertifyErrorKind::CertificateInvalid:
    return "certificate-invalid";
  case CertifyErrorKind::StoreIO:
    return "store-io";
  }
  return "?";
}

/// True when the error reports resource-budget exhaustion (as opposed to
/// bad input, a broken invariant, or an injected hard fault).
inline bool isBudgetError(CertifyErrorKind K) {
  return K == CertifyErrorKind::BudgetDeadline ||
         K == CertifyErrorKind::BudgetIterations ||
         K == CertifyErrorKind::BudgetStructures ||
         K == CertifyErrorKind::BudgetAllocation;
}

/// A recoverable certification-pipeline error: kind, message, the stage
/// (engine / probe site) that raised it, and an optional source
/// location when the error is anchored in spec or client text.
class CertifyError : public std::exception {
public:
  CertifyError(CertifyErrorKind Kind, std::string Message,
               std::string Stage = "", SourceLoc Loc = {})
      : Kind(Kind), Message(std::move(Message)), Stage(std::move(Stage)),
        Loc(Loc) {
    Rendered = std::string(certifyErrorKindName(Kind)) +
               (this->Stage.empty() ? "" : " [" + this->Stage + "]") + ": " +
               this->Message;
  }

  CertifyErrorKind kind() const { return Kind; }
  const std::string &message() const { return Message; }
  const std::string &stage() const { return Stage; }
  SourceLoc loc() const { return Loc; }

  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  CertifyErrorKind Kind;
  std::string Message;
  std::string Stage;
  SourceLoc Loc;
  std::string Rendered;
};

} // namespace canvas

#endif // CANVAS_SUPPORT_CERTIFYERROR_H
