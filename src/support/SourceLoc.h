//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations shared by the Easl and CJ frontends.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_SOURCELOC_H
#define CANVAS_SUPPORT_SOURCELOC_H

#include <string>

namespace canvas {

/// A 1-based line/column position in a specification or client source file.
/// Line 0 denotes an unknown or synthesized location.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace canvas

#endif // CANVAS_SUPPORT_SOURCELOC_H
