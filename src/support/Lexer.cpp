#include "support/Lexer.h"

#include <cctype>

using namespace canvas;

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipTrivia();
      SourceLoc Loc{Line, Col};
      if (atEnd()) {
        Tokens.push_back({TokenKind::End, "", Loc});
        return Tokens;
      }
      char C = peek();
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
          C == '$') {
        Tokens.push_back({TokenKind::Identifier, lexWord(), Loc});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        Tokens.push_back({TokenKind::Number, lexNumber(), Loc});
        continue;
      }
      if (C == '"') {
        Tokens.push_back({TokenKind::String, lexString(), Loc});
        continue;
      }
      std::string Punct = lexPunct();
      if (Punct.empty()) {
        Diags.error(Loc, std::string("unexpected character '") + C + "'");
        advance();
        continue;
      }
      Tokens.push_back({TokenKind::Punct, std::move(Punct), Loc});
    }
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  void advance() {
    if (atEnd())
      return;
    if (Source[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start{Line, Col};
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  std::string lexWord() {
    std::string Word;
    while (!atEnd()) {
      char C = peek();
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '$')
        break;
      Word += C;
      advance();
    }
    return Word;
  }

  std::string lexNumber() {
    std::string Num;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      Num += peek();
      advance();
    }
    return Num;
  }

  std::string lexString() {
    SourceLoc Start{Line, Col};
    std::string Text;
    advance(); // opening quote
    while (!atEnd() && peek() != '"') {
      Text += peek();
      advance();
    }
    if (atEnd()) {
      Diags.error(Start, "unterminated string literal");
      return Text;
    }
    advance(); // closing quote
    return Text;
  }

  std::string lexPunct() {
    static const char *TwoChar[] = {"==", "!=", "&&", "||", "->"};
    for (const char *P : TwoChar) {
      if (peek() == P[0] && peek(1) == P[1]) {
        advance();
        advance();
        return P;
      }
    }
    static const char OneChar[] = "{}()[].,;=!<>*&|+-/%:?";
    char C = peek();
    for (char P : OneChar) {
      if (C == P) {
        advance();
        return std::string(1, C);
      }
    }
    return "";
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

std::vector<Token> canvas::lexSource(std::string_view Source,
                                     DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
