//===----------------------------------------------------------------------===//
///
/// \file
/// A per-fixpoint bump arena for analysis scratch values. Engines that
/// produce many short-lived intermediate values per worklist visit
/// (tvla::Transfer's edge images, snapshots, and rule temporaries)
/// allocate them here instead of the global heap; reset() at the top of
/// the next visit rewinds the arena to empty while keeping every block
/// mapped, so the steady state performs zero heap traffic.
///
/// Ownership rules (see DESIGN.md "Arena / flat-structure memory
/// architecture"):
///  - The arena never runs destructors; only trivially-destructible
///    payloads (packed word buffers) may live in it.
///  - Anything that outlives the current fixpoint visit must be copied
///    out to the heap before reset() — tvla::Structure's copy
///    constructor always detaches to the heap for exactly this reason.
///  - One arena belongs to one engine instance and is not thread-safe;
///    the certification fan-out gives each worker task its own engine
///    (and thus its own arena), never sharing one across threads.
///
/// Budget integration: each *new block* (not each bump) is charged to
/// the optional CancelToken via addAllocation(), so allocation-budget
/// ceilings still bound arena growth while the hot path stays
/// atomic-free.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_ARENA_H
#define CANVAS_SUPPORT_ARENA_H

#include "support/Budget.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace canvas {
namespace support {

class Arena {
public:
  /// \p Cancel, when given, is charged once per fresh block mapping.
  explicit Arena(CancelToken *Cancel = nullptr, size_t BlockBytes = 1 << 14)
      : Cancel(Cancel), BlockBytes(BlockBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Bump-allocates \p Bytes with \p Align alignment (power of two,
  /// at most alignof(std::max_align_t)).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    if (Cur < Blocks.size()) {
      Block &B = Blocks[Cur];
      size_t Off = (B.Used + Align - 1) & ~(Align - 1);
      if (Off + Bytes <= B.Size) {
        B.Used = Off + Bytes;
        ++Allocs;
        return B.Mem.get() + Off;
      }
    }
    return allocateSlow(Bytes, Align);
  }

  /// Typed convenience: an uninitialized array of \p Count Ts. T must be
  /// trivially destructible (the arena never runs destructors).
  template <typename T> T *allocateArray(size_t Count) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena payloads must not need destructors");
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena to empty, keeping every block mapped for reuse.
  /// Every pointer previously handed out becomes dangling; callers must
  /// have copied surviving values to the heap first.
  void reset() {
    for (size_t I = 0; I <= Cur && I < Blocks.size(); ++I)
      Blocks[I].Used = 0;
    Cur = 0;
  }

  /// Frees every block (used by tests to force fresh mappings).
  void release() {
    Blocks.clear();
    Cur = 0;
  }

  size_t bytesMapped() const {
    size_t S = 0;
    for (const Block &B : Blocks)
      S += B.Size;
    return S;
  }
  size_t bytesUsed() const {
    size_t S = 0;
    for (const Block &B : Blocks)
      S += B.Used;
    return S;
  }
  uint64_t numAllocations() const { return Allocs; }
  size_t numBlocks() const { return Blocks.size(); }

private:
  struct Block {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
    size_t Used = 0;
  };

  void *allocateSlow(size_t Bytes, size_t Align) {
    // Advance through already-mapped blocks first (post-reset reuse).
    while (Cur + 1 < Blocks.size()) {
      ++Cur;
      Block &B = Blocks[Cur];
      size_t Off = (B.Used + Align - 1) & ~(Align - 1);
      if (Off + Bytes <= B.Size) {
        B.Used = Off + Bytes;
        ++Allocs;
        return B.Mem.get() + Off;
      }
    }
    size_t Size = BlockBytes;
    if (Size < Bytes + Align)
      Size = Bytes + Align;
    if (Cancel)
      Cancel->addAllocation(Size);
    Block B;
    B.Mem = std::make_unique<char[]>(Size);
    B.Size = Size;
    Blocks.push_back(std::move(B));
    Cur = Blocks.size() - 1;
    Block &NB = Blocks[Cur];
    uintptr_t Raw = reinterpret_cast<uintptr_t>(NB.Mem.get());
    size_t Off = ((Raw + Align - 1) & ~(uintptr_t)(Align - 1)) - Raw;
    NB.Used = Off + Bytes;
    ++Allocs;
    return NB.Mem.get() + Off;
  }

  CancelToken *Cancel;
  size_t BlockBytes;
  std::vector<Block> Blocks;
  size_t Cur = 0;
  uint64_t Allocs = 0;
};

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_ARENA_H
