//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed interning pool: maps structurally-equal values to one
/// stable 32-bit id, so identity checks, set membership, and memo keys
/// on the analysis hot path become integer operations instead of
/// re-serialized canonical strings.
///
/// The pool buckets values by a caller-supplied 64-bit structural hash
/// and falls back to full equality within a bucket, so hash collisions
/// cost a comparison, never a wrong id. Values are stored by value and
/// must not be mutated after interning (the pool hands out const
/// references only; verifyIntegrity() re-hashes every entry and catches
/// out-of-band mutation in tests and debug builds).
///
/// The pool is deliberately not thread-safe: each analysis engine owns
/// a private pool, and the certification fan-out parallelizes across
/// engines (one method/slice per task), never within one.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_INTERNER_H
#define CANVAS_SUPPORT_INTERNER_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace canvas {
namespace support {

/// Stable identity of one interned value within its pool. Ids are dense
/// (0, 1, 2, ...) in first-intern order, so they double as indices into
/// side tables.
using InternId = uint32_t;

/// Mixes a 64-bit value (splitmix64 finalizer); used by hashers to
/// decorrelate field hashes before combining.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Combines a running hash with the next field hash.
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  return hashMix(Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) +
                         (Seed >> 2)));
}

/// FNV-1a over a byte range; the building block for hashing predicate
/// matrices.
inline uint64_t hashBytes(const uint8_t *Data, size_t Len,
                          uint64_t Seed = 0xcbf29ce484222325ull) {
  uint64_t H = Seed;
  for (size_t I = 0; I != Len; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Word-parallel hash over a uint64_t range (mix-and-combine per word);
/// the building block for hashing packed predicate bit matrices, ~8x
/// fewer steps than byte-wise FNV over the same payload.
inline uint64_t hashWords(const uint64_t *Data, size_t Len,
                          uint64_t Seed = 0xcbf29ce484222325ull) {
  uint64_t H = Seed;
  for (size_t I = 0; I != Len; ++I)
    H = hashCombine(H, hashMix(Data[I]));
  return H;
}

/// Running statistics of one pool, surfaced by the TVLA engine in
/// TVLAResult and the bench drivers' BENCH_JSON lines.
struct InternStats {
  uint64_t Hits = 0;       ///< intern() found an existing equal value.
  uint64_t Misses = 0;     ///< intern() admitted a new value.
  uint64_t Collisions = 0; ///< Equality comparisons that failed within a
                           ///< bucket (distinct values, same 64-bit hash).
};

/// The pool. \p Hasher is a callable `uint64_t(const T &)` producing the
/// structural hash; equality falls back to `operator==` on T.
template <typename T, typename Hasher> class InternPool {
public:
  explicit InternPool(Hasher H = Hasher()) : Hash(std::move(H)) {}

  /// Interns \p Value: returns the id of the existing structurally-equal
  /// entry, or admits the value and returns its fresh id.
  InternId intern(T Value) {
    uint64_t H = Hash(Value);
    std::vector<InternId> &Bucket = Buckets[H];
    for (InternId Id : Bucket) {
      if (Values[Id] == Value) {
        ++Stats.Hits;
        return Id;
      }
      ++Stats.Collisions;
    }
    ++Stats.Misses;
    InternId Id = static_cast<InternId>(Values.size());
    Values.push_back(std::move(Value));
    Hashes.push_back(H);
    Bucket.push_back(Id);
    return Id;
  }

  /// Interns by reference: identical to intern(), but the value is only
  /// copied when the pool admits it as new. The hot path for values
  /// whose copy is expensive or changes ownership (arena-backed
  /// tvla::Structure copies detach to the heap) — a hit costs zero
  /// allocations.
  InternId internRef(const T &Value) {
    uint64_t H = Hash(Value);
    std::vector<InternId> &Bucket = Buckets[H];
    for (InternId Id : Bucket) {
      if (Values[Id] == Value) {
        ++Stats.Hits;
        return Id;
      }
      ++Stats.Collisions;
    }
    ++Stats.Misses;
    InternId Id = static_cast<InternId>(Values.size());
    Values.push_back(Value);
    Hashes.push_back(H);
    Bucket.push_back(Id);
    return Id;
  }

  /// Id of the structurally-equal entry, or -1 when absent. Never
  /// admits the value; the read-only probe of emit-side verify-pruning.
  long find(const T &Value) const {
    auto It = Buckets.find(Hash(Value));
    if (It == Buckets.end())
      return -1;
    for (InternId Id : It->second)
      if (Values[Id] == Value)
        return static_cast<long>(Id);
    return -1;
  }

  /// The interned value; valid for the pool's lifetime. Callers must not
  /// mutate it (copy first) — see verifyIntegrity().
  const T &get(InternId Id) const { return Values[Id]; }

  /// Number of distinct values admitted.
  size_t size() const { return Values.size(); }

  const InternStats &stats() const { return Stats; }

  /// Re-hashes every entry and checks it still lands in its recorded
  /// bucket: false means some caller mutated an interned value in place
  /// (intern-then-mutate misuse), invalidating every id handed out.
  bool verifyIntegrity() const {
    for (size_t Id = 0; Id != Values.size(); ++Id)
      if (Hash(Values[Id]) != Hashes[Id])
        return false;
    return true;
  }

private:
  Hasher Hash;
  std::vector<T> Values;
  std::vector<uint64_t> Hashes; ///< Hash at intern time, for integrity.
  std::unordered_map<uint64_t, std::vector<InternId>> Buckets;
  InternStats Stats;
};

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_INTERNER_H
