#include "support/TaskPool.h"

#include <exception>

using namespace canvas;
using namespace canvas::support;

TaskPool::TaskPool(unsigned Workers) : NumWorkers(Workers) {
  if (NumWorkers == 0)
    NumWorkers = std::thread::hardware_concurrency();
  if (NumWorkers == 0) // hardware_concurrency() may be unknowable.
    NumWorkers = 1;
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> L(M);
    ShuttingDown = true;
  }
  BatchCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void TaskPool::workOn(const std::vector<std::function<void()>> &Tasks,
                      std::vector<std::exception_ptr> &Errors) {
  for (;;) {
    size_t I = Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= Tasks.size())
      return;
    try {
      Tasks[I]();
    } catch (...) {
      Errors[I] = std::current_exception();
    }
    // The last completion wakes the caller; notifying under the lock
    // pairs with the caller's predicated wait so the wake cannot be
    // lost between the predicate check and the sleep.
    if (Completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        Tasks.size()) {
      std::lock_guard<std::mutex> L(M);
      DoneCV.notify_all();
    }
  }
}

void TaskPool::workerLoop() {
  uint64_t Seen = 0;
  for (;;) {
    const std::vector<std::function<void()>> *B = nullptr;
    std::vector<std::exception_ptr> *Errs = nullptr;
    {
      std::unique_lock<std::mutex> L(M);
      BatchCV.wait(L, [&] { return ShuttingDown || Generation != Seen; });
      if (ShuttingDown)
        return;
      Seen = Generation;
      // Batch is nulled (under this lock) before runAll returns, so a
      // non-null pointer here is guaranteed to outlive our Busy window.
      B = Batch;
      Errs = BatchErrors;
      if (B)
        ++Busy;
    }
    if (!B)
      continue; // Batch fully drained before this worker woke.
    workOn(*B, *Errs);
    {
      std::lock_guard<std::mutex> L(M);
      --Busy;
      DoneCV.notify_all();
    }
  }
}

void TaskPool::runAll(const std::vector<std::function<void()>> &Tasks) {
  if (Tasks.empty())
    return;

  unsigned Threads2 =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));

  // The serial path: no threads, exceptions propagate from the first
  // failing task directly. The parallel path's failure contract below
  // matches this (lowest index wins), so both paths are observationally
  // identical for deterministic tasks.
  if (Threads2 == 1) {
    for (const auto &Task : Tasks)
      Task();
    return;
  }

  // Persistent workers: spawned once, on the first parallel batch.
  if (Threads.empty()) {
    Threads.reserve(NumWorkers - 1);
    for (unsigned I = 1; I != NumWorkers; ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  std::vector<std::exception_ptr> Errors(Tasks.size());
  {
    std::lock_guard<std::mutex> L(M);
    Batch = &Tasks;
    BatchErrors = &Errors;
    Next.store(0, std::memory_order_relaxed);
    Completed.store(0, std::memory_order_relaxed);
    ++Generation;
  }
  BatchCV.notify_all();

  workOn(Tasks, Errors); // The calling thread is worker 0.

  {
    // Wait for both conditions: every task completed AND no worker is
    // still inside workOn() holding references to this batch. The
    // second clause is what lets Tasks/Errors live on the caller's
    // stack: a worker that woke late sees Batch == nullptr and never
    // touches them.
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [&] {
      return Completed.load(std::memory_order_acquire) >= Tasks.size() &&
             Busy == 0;
    });
    Batch = nullptr;
    BatchErrors = nullptr;
  }

  for (std::exception_ptr &E : Errors)
    if (E)
      std::rethrow_exception(E);
}
