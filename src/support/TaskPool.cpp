#include "support/TaskPool.h"

#include <atomic>
#include <exception>
#include <thread>

using namespace canvas;
using namespace canvas::support;

TaskPool::TaskPool(unsigned Workers) : NumWorkers(Workers) {
  if (NumWorkers == 0)
    NumWorkers = std::thread::hardware_concurrency();
  if (NumWorkers == 0) // hardware_concurrency() may be unknowable.
    NumWorkers = 1;
}

void TaskPool::runAll(const std::vector<std::function<void()>> &Tasks) {
  if (Tasks.empty())
    return;

  unsigned Threads =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));

  // The serial path: no threads, exceptions propagate from the first
  // failing task directly. The parallel path's failure contract below
  // matches this (lowest index wins), so both paths are observationally
  // identical for deterministic tasks.
  if (Threads == 1) {
    for (const auto &Task : Tasks)
      Task();
    return;
  }

  std::vector<std::exception_ptr> Errors(Tasks.size());
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Tasks.size())
        return;
      try {
        Tasks[I]();
      } catch (...) {
        Errors[I] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned I = 1; I != Threads; ++I)
    Pool.emplace_back(Work);
  Work(); // The calling thread is worker 0.
  for (std::thread &T : Pool)
    T.join();

  for (std::exception_ptr &E : Errors)
    if (E)
      std::rethrow_exception(E);
}
