#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace canvas;

void canvas::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "canvas fatal error: %s\n", Msg);
  std::abort();
}

void canvas::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
