//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded worker pool for the certification fan-out: independent
/// per-method / per-slice analyses on one ladder rung run concurrently,
/// while the supervisor, report merging, and everything the tasks
/// observe stays deterministic:
///
///  - tasks are indexed; each task writes only its own result slot, and
///    the caller merges slots in index order, never completion order;
///  - when any tasks throw, the exception of the LOWEST-indexed failed
///    task is rethrown after every worker has drained — so "which error
///    wins" does not depend on thread scheduling;
///  - a pool with one worker (or one task) runs inline on the calling
///    thread, making the serial and parallel paths byte-identical by
///    construction.
///
/// Workers are spawned per runAll() call and joined before it returns;
/// the pool owns no long-lived threads, so engines below it never
/// observe concurrency outside an active fan-out.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_TASKPOOL_H
#define CANVAS_SUPPORT_TASKPOOL_H

#include <functional>
#include <vector>

namespace canvas {
namespace support {

class TaskPool {
public:
  /// \p Workers bounds concurrency; 0 means hardware_concurrency().
  explicit TaskPool(unsigned Workers = 0);

  /// The effective worker bound (never 0).
  unsigned workers() const { return NumWorkers; }

  /// Runs every task to completion and returns. Tasks run concurrently
  /// on up to workers() threads (inline when 1). If tasks threw, the
  /// lowest-indexed task's exception is rethrown once all workers have
  /// drained; the other exceptions are dropped.
  void runAll(const std::vector<std::function<void()>> &Tasks);

private:
  unsigned NumWorkers;
};

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_TASKPOOL_H
