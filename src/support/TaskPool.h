//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded worker pool for the certification fan-out: independent
/// per-method / per-slice analyses on one ladder rung run concurrently,
/// while the supervisor, report merging, and everything the tasks
/// observe stays deterministic:
///
///  - tasks are indexed; each task writes only its own result slot, and
///    the caller merges slots in index order, never completion order;
///  - when any tasks throw, the exception of the LOWEST-indexed failed
///    task is rethrown after every worker has drained — so "which error
///    wins" does not depend on thread scheduling;
///  - a pool with one worker (or one task) runs inline on the calling
///    thread, making the serial and parallel paths byte-identical by
///    construction.
///
/// Worker threads are spawned lazily on the first parallel runAll() and
/// PERSIST across runAll() calls until the pool is destroyed: a
/// certification run fans out once per ladder rung (and the supervisor
/// may walk several rungs), and re-spawning / re-joining a thread set
/// per rung was a measurable fixed cost on small methods. Between
/// batches the workers block on a condition variable, so engines below
/// the pool never observe concurrency outside an active fan-out.
///
/// runAll() is not reentrant and must be called from one thread at a
/// time (the certifier's supervisor is the only caller).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_TASKPOOL_H
#define CANVAS_SUPPORT_TASKPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace canvas {
namespace support {

class TaskPool {
public:
  /// \p Workers bounds concurrency; 0 means hardware_concurrency().
  explicit TaskPool(unsigned Workers = 0);

  /// Wakes and joins any persistent workers. Must not run concurrently
  /// with runAll().
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// The effective worker bound (never 0).
  unsigned workers() const { return NumWorkers; }

  /// Worker threads currently alive (0 until the first parallel batch;
  /// test observability).
  size_t spawnedWorkers() const { return Threads.size(); }

  /// Runs every task to completion and returns. Tasks run concurrently
  /// on up to workers() threads (inline when 1). If tasks threw, the
  /// lowest-indexed task's exception is rethrown once all workers have
  /// drained; the other exceptions are dropped.
  void runAll(const std::vector<std::function<void()>> &Tasks);

private:
  void workerLoop();
  /// Claims and runs batch tasks until the index counter is exhausted.
  void workOn(const std::vector<std::function<void()>> &Tasks,
              std::vector<std::exception_ptr> &Errors);

  unsigned NumWorkers;
  std::vector<std::thread> Threads;

  std::mutex M;
  std::condition_variable BatchCV; ///< Workers: a batch was published.
  std::condition_variable DoneCV;  ///< Caller: batch fully drained.

  // Batch state, guarded by M (the pointers) or atomic (the counters).
  const std::vector<std::function<void()>> *Batch = nullptr;
  std::vector<std::exception_ptr> *BatchErrors = nullptr;
  uint64_t Generation = 0; ///< Bumped per published batch.
  size_t Busy = 0;         ///< Workers currently inside workOn().
  bool ShuttingDown = false;
  std::atomic<size_t> Next{0};      ///< Next unclaimed task index.
  std::atomic<size_t> Completed{0}; ///< Tasks finished this batch.
};

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_TASKPOOL_H
