//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fork/exec + pipe plumbing for the sharded certification
/// driver: spawn a worker process with its stdin/stdout replaced by
/// pipes, write/read exact byte counts over those pipes, and reap the
/// child. POSIX-only, like the store's flock discipline; nothing here
/// knows about the framing protocol (src/shard/Protocol.h layers that
/// on top).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_SUBPROCESS_H
#define CANVAS_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace canvas {
namespace support {

/// A spawned child with pipe ends owned by the caller. InFd writes to
/// the child's stdin; OutFd reads from its stdout. stderr is inherited,
/// so worker diagnostics surface on the driver's stderr unmangled.
struct ChildProcess {
  pid_t Pid = -1;
  int InFd = -1;
  int OutFd = -1;

  bool valid() const { return Pid > 0; }
};

/// Forks and execs \p Argv (Argv[0] is the executable path; PATH is not
/// searched). \p ExtraEnv entries ("KEY=VALUE") are applied on top of
/// the inherited environment. Returns false with \p Error set on
/// failure; on success the caller owns Out's fds and must reap the pid
/// with waitProcess().
bool spawnProcess(const std::vector<std::string> &Argv,
                  const std::vector<std::string> &ExtraEnv, ChildProcess &Out,
                  std::string &Error);

/// Waits for \p Pid to exit. Returns the exit status (>= 0) or, for a
/// signal death, -signo. Returns -1000 on wait failure.
int waitProcess(pid_t Pid);

/// Sends SIGKILL; reaping is still the caller's job.
void killProcess(pid_t Pid);

/// Writes exactly \p Size bytes, retrying on EINTR / partial writes.
/// False on any hard error (EPIPE when the child died, etc.).
bool writeAll(int Fd, const uint8_t *Data, size_t Size);

/// Reads exactly \p Size bytes. False on EOF or a hard error.
bool readAll(int Fd, uint8_t *Data, size_t Size);

/// This executable's path (/proc/self/exe), for self-re-exec worker
/// spawning; empty on failure.
std::string selfExecutablePath();

} // namespace support
} // namespace canvas

#endif // CANVAS_SUPPORT_SUBPROCESS_H
