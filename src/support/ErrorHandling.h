//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the canvas_unreachable macro, modeled on
/// LLVM's ErrorHandling.h. These abort the process and are reserved for
/// genuinely unreachable code (covered switches, violated local
/// invariants that cannot be observed from user input). Anything
/// reachable from user input or resource pressure must instead raise
/// the recoverable canvas::CertifyError taxonomy (CertifyError.h),
/// which the certification supervisor turns into graceful engine
/// degradation.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_ERRORHANDLING_H
#define CANVAS_SUPPORT_ERRORHANDLING_H

namespace canvas {

/// Reports a fatal usage or internal error and aborts the process.
[[noreturn]] void reportFatalError(const char *Msg);

[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace canvas

/// Marks a point in code that should never be reached. Prints the message,
/// file, and line, then aborts.
#define canvas_unreachable(msg)                                                \
  ::canvas::unreachableInternal(msg, __FILE__, __LINE__)

#endif // CANVAS_SUPPORT_ERRORHANDLING_H
