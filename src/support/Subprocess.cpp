#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace canvas;
using namespace canvas::support;

bool support::spawnProcess(const std::vector<std::string> &Argv,
                           const std::vector<std::string> &ExtraEnv,
                           ChildProcess &Out, std::string &Error) {
  if (Argv.empty()) {
    Error = "empty argv";
    return false;
  }
  int ToChild[2] = {-1, -1};  // driver writes [1] -> child stdin [0]
  int FromChild[2] = {-1, -1}; // child stdout [1] -> driver reads [0]
  if (::pipe(ToChild) != 0) {
    Error = std::string("pipe: ") + strerror(errno);
    return false;
  }
  if (::pipe(FromChild) != 0) {
    Error = std::string("pipe: ") + strerror(errno);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return false;
  }

  const pid_t Pid = ::fork();
  if (Pid < 0) {
    Error = std::string("fork: ") + strerror(errno);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    return false;
  }

  if (Pid == 0) {
    // Child: wire the pipes onto stdin/stdout, drop the driver ends,
    // apply env overrides, exec. Only async-signal-safe calls plus
    // setenv (single-threaded here: fork happens before the driver
    // spawns any threads).
    ::dup2(ToChild[0], STDIN_FILENO);
    ::dup2(FromChild[1], STDOUT_FILENO);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    for (const std::string &KV : ExtraEnv) {
      const size_t Eq = KV.find('=');
      if (Eq != std::string::npos)
        ::setenv(KV.substr(0, Eq).c_str(), KV.substr(Eq + 1).c_str(), 1);
    }
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    ::execv(Args[0], Args.data());
    // exec failed: exit without running atexit handlers of the forked
    // image. 127 mirrors the shell's "command not found".
    ::_exit(127);
  }

  ::close(ToChild[0]);
  ::close(FromChild[1]);
  Out.Pid = Pid;
  Out.InFd = ToChild[1];
  Out.OutFd = FromChild[0];
  return true;
}

int support::waitProcess(pid_t Pid) {
  int Status = 0;
  for (;;) {
    const pid_t R = ::waitpid(Pid, &Status, 0);
    if (R == Pid)
      break;
    if (R < 0 && errno == EINTR)
      continue;
    return -1000;
  }
  if (WIFEXITED(Status))
    return WEXITSTATUS(Status);
  if (WIFSIGNALED(Status))
    return -WTERMSIG(Status);
  return -1000;
}

void support::killProcess(pid_t Pid) {
  if (Pid > 0)
    ::kill(Pid, SIGKILL);
}

bool support::writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done != Size) {
    const ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool support::readAll(int Fd, uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done != Size) {
    const ssize_t N = ::read(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-read: the peer died or closed early.
    Done += static_cast<size_t>(N);
  }
  return true;
}

std::string support::selfExecutablePath() {
  char Buf[4096];
  const ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  return Buf;
}
