//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style isa<>/cast<>/dyn_cast<> templates driven by a
/// static \c classof on the target class. Used by the Easl and CJ ASTs,
/// which carry an explicit Kind discriminator instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_CASTING_H
#define CANVAS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace canvas {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace canvas

#endif // CANVAS_SUPPORT_CASTING_H
