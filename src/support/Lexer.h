//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-written lexer shared by the Easl specification frontend
/// and the CJ client-language frontend. Produces identifier, number,
/// string, and punctuation tokens; keywords are recognized by the parsers
/// through token text.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_SUPPORT_LEXER_H
#define CANVAS_SUPPORT_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace canvas {

/// Lexical category of a token. Keyword recognition is the parser's job.
enum class TokenKind { Identifier, Number, String, Punct, End };

/// One lexed token: category, source text, and location.
struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
  /// True for a punctuation token with exactly this spelling.
  bool isPunct(std::string_view S) const {
    return Kind == TokenKind::Punct && Text == S;
  }
  /// True for an identifier token with exactly this spelling (keyword
  /// match).
  bool isKeyword(std::string_view S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
};

/// Lexes \p Source completely. Unknown characters are reported to
/// \p Diags and skipped. The returned vector always ends with an End
/// token. Supports //-line and /*-block comments.
std::vector<Token> lexSource(std::string_view Source, DiagnosticEngine &Diags);

} // namespace canvas

#endif // CANVAS_SUPPORT_LEXER_H
