#include "ifds/Solver.h"

#include <algorithm>
#include <cassert>

using namespace canvas;
using namespace canvas::ifds;

Problem::~Problem() = default;

namespace {

/// Reverse-postorder numbering from the entry (unreachable nodes get
/// trailing numbers so every node has a priority).
std::vector<int> rpoNumber(const ProcView &P) {
  std::vector<std::vector<int>> Succ(P.NumNodes);
  for (const ProcView::Edge &E : P.Edges)
    Succ[E.From].push_back(E.To);
  std::vector<int> Order;
  std::vector<char> Seen(P.NumNodes, 0);
  // Iterative postorder DFS.
  std::vector<std::pair<int, size_t>> Stack;
  auto Visit = [&](int Root) {
    if (Seen[Root])
      return;
    Seen[Root] = 1;
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[N, I] = Stack.back();
      if (I < Succ[N].size()) {
        int S = Succ[N][I++];
        if (!Seen[S]) {
          Seen[S] = 1;
          Stack.emplace_back(S, 0);
        }
      } else {
        Order.push_back(N);
        Stack.pop_back();
      }
    }
  };
  Visit(P.Entry);
  for (int N = 0; N != P.NumNodes; ++N)
    Visit(N);
  std::vector<int> Rpo(P.NumNodes, 0);
  for (size_t I = 0; I != Order.size(); ++I)
    Rpo[Order[Order.size() - 1 - I]] = static_cast<int>(I);
  return Rpo;
}

} // namespace

Solver::Solver(const Problem &Prob) : Prob(Prob) {
  int N = Prob.numProcs();
  Procs.resize(N);
  ReachedG.resize(N);
  for (int P = 0; P != N; ++P) {
    const ProcView &V = Prob.proc(P);
    ProcState &PS = Procs[P];
    PS.Rpo = rpoNumber(V);
    PS.OutEdges.resize(V.NumNodes);
    for (size_t E = 0; E != V.Edges.size(); ++E)
      PS.OutEdges[V.Edges[E].From].push_back(static_cast<int>(E));
    PS.Feeds.resize(Prob.numFacts(P));
    PS.FeedsSeen.resize(Prob.numFacts(P));
  }
}

void Solver::activate(int P) {
  ProcState &PS = Procs[P];
  if (PS.Activated)
    return;
  PS.Activated = true;
  // Tabulate every entry fact (see the file comment of Solver.h).
  const ProcView &V = Prob.proc(P);
  for (int D = 0; D != Prob.numFacts(P); ++D)
    propagate(P, D, V.Entry, D, 0, Via::Seed, -1, -1, -1);
}

int Solver::propagate(int P, int EntryFact, int Node, int Fact, long Dist,
                      Via How, int Prev, int CFGEdge, int CalleePathEdge) {
  std::array<int, 4> Key = {P, EntryFact, Node, Fact};
  auto [It, New] = Index.emplace(Key, static_cast<int>(Edges.size()));
  long Priority =
      static_cast<long>(P) * 1000000 + Procs[P].Rpo[Node];
  if (New) {
    Edges.push_back(
        {P, EntryFact, Node, Fact, Dist, How, Prev, CFGEdge, CalleePathEdge});
    Worklist.emplace(Priority, It->second);
    return It->second;
  }
  PathEdge &PE = Edges[It->second];
  if (Dist < PE.Dist) {
    // A strictly shorter realization: adopt the new justification and
    // reprocess so downstream distances relax too. Distances only
    // decrease, so this terminates.
    PE.Dist = Dist;
    PE.How = How;
    PE.Prev = Prev;
    PE.CFGEdge = CFGEdge;
    PE.CalleePathEdge = CalleePathEdge;
    Worklist.emplace(Priority, It->second);
  }
  return It->second;
}

void Solver::applySummary(int CallerPE, int CFGEdge, int SummaryPE) {
  const PathEdge Caller = Edges[CallerPE]; // Copy: Edges may reallocate.
  const PathEdge Sum = Edges[SummaryPE];
  std::vector<int> Out;
  Prob.flowSummary(Caller.Proc, CFGEdge, Caller.Fact, Sum.EntryFact, Sum.Fact,
                   Out);
  if (Out.empty())
    return;
  int To = Prob.proc(Caller.Proc).Edges[CFGEdge].To;
  long Dist = Caller.Dist + 2 + Sum.Dist;
  for (int F : Out)
    propagate(Caller.Proc, Caller.EntryFact, To, F, Dist, Via::Summary,
              CallerPE, CFGEdge, SummaryPE);
}

void Solver::process(int Id) {
  const PathEdge PE = Edges[Id]; // Copy: Edges may reallocate.
  const ProcView &V = Prob.proc(PE.Proc);
  ProcState &PS = Procs[PE.Proc];

  for (int EIdx : PS.OutEdges[PE.Node]) {
    const ProcView::Edge &E = V.Edges[EIdx];
    if (E.Callee >= 0) {
      activate(E.Callee);
      ProcState &CS = Procs[E.Callee];
      // Park this caller edge for future summaries.
      if (CS.CallersSeen.insert(packPair(Id, EIdx)).second)
        CS.Callers.emplace_back(Id, EIdx);
      // Record genuine feeds of callee entry facts.
      std::vector<int> Seeded;
      Prob.flowCall(PE.Proc, EIdx, PE.Fact, Seeded);
      for (int D : Seeded)
        if (CS.FeedsSeen[D].insert(packPair(Id, EIdx)).second)
          CS.Feeds[D].push_back({Id, EIdx});
      // Apply every summary already tabulated for the callee.
      for (const auto &[Key, SumId] : CS.Summaries) {
        (void)Key;
        applySummary(Id, EIdx, SumId);
      }
      // Facts bypassing the callee.
      std::vector<int> Out;
      Prob.flowCallToReturn(PE.Proc, EIdx, PE.Fact, Out);
      for (int F : Out)
        propagate(PE.Proc, PE.EntryFact, E.To, F, PE.Dist + 1,
                  Via::CallToReturn, Id, EIdx, -1);
    } else {
      std::vector<int> Out;
      Prob.flowNormal(PE.Proc, EIdx, PE.Fact, Out);
      for (int F : Out)
        propagate(PE.Proc, PE.EntryFact, E.To, F, PE.Dist + 1, Via::Normal,
                  Id, EIdx, -1);
    }
  }

  if (PE.Node == V.Exit) {
    // A summary edge ⟨(sp, d1) → (exit, d2)⟩: register and apply at
    // every known call site. Reprocessing after a distance improvement
    // re-applies with the better distance.
    PS.Summaries.emplace(std::make_pair(PE.EntryFact, PE.Fact), Id);
    // Callers may grow while iterating (applySummary -> propagate only
    // touches other procedures' states, but be safe with indexing).
    for (size_t I = 0; I != PS.Callers.size(); ++I) {
      auto [CallerPE, CFGEdge] = PS.Callers[I];
      applySummary(CallerPE, CFGEdge, Id);
    }
  }
}

void Solver::solve(support::CancelToken *Cancel) {
  if (Solved)
    return;
  Solved = true;

  int Entry = Prob.entryProc();
  Procs[Entry].Activated = true;
  const ProcView &V = Prob.proc(Entry);
  std::vector<int> Init;
  Prob.initialFacts(Init);
  for (int D : Init)
    propagate(Entry, D, V.Entry, D, 0, Via::Seed, -1, -1, -1);

  size_t AccountedEdges = 0;
  while (!Worklist.empty()) {
    support::faultProbe("ifds.solve");
    if (Cancel) {
      Cancel->tick();
      Cancel->noteStructures(Edges.size());
      if (Edges.size() > AccountedEdges) {
        Cancel->addAllocation((Edges.size() - AccountedEdges) *
                              sizeof(PathEdge));
        AccountedEdges = Edges.size();
      }
    }
    int Id = Worklist.begin()->second;
    Worklist.erase(Worklist.begin());
    ++St.Visits;
    process(Id);
  }

  computeGenuine();

  St.PathEdges = Edges.size();
  for (const ProcState &PS : Procs)
    St.Summaries += PS.Summaries.size();
  std::set<std::array<int, 3>> Nodes;
  for (const PathEdge &PE : Edges)
    Nodes.insert({PE.Proc, PE.Node, PE.Fact});
  St.ExplodedNodes = Nodes.size();
}

void Solver::computeGenuine() {
  // Genuine entry facts: the entry procedure's initial facts, plus
  // every callee entry fact fed (per flowCall) by a caller path edge
  // whose own entry fact is genuine. Fixpoint over the feed records.
  std::vector<int> Init;
  Prob.initialFacts(Init);
  for (int D : Init)
    Genuine.insert(packPair(Prob.entryProc(), D));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int P = 0; P != Prob.numProcs(); ++P)
      for (int D = 0; D != Prob.numFacts(P); ++D) {
        if (Genuine.count(packPair(P, D)))
          continue;
        for (const FactFeed &F : Procs[P].Feeds[D]) {
          const PathEdge &Caller = Edges[F.CallerPathEdge];
          if (Genuine.count(packPair(Caller.Proc, Caller.EntryFact))) {
            Genuine.insert(packPair(P, D));
            Changed = true;
            break;
          }
        }
      }
  }

  for (int P = 0; P != Prob.numProcs(); ++P) {
    const size_t Bits =
        static_cast<size_t>(Prob.proc(P).NumNodes) * Prob.numFacts(P);
    ReachedG[P].assign((Bits + 63) / 64, 0);
  }
  for (const PathEdge &PE : Edges)
    if (Genuine.count(packPair(PE.Proc, PE.EntryFact))) {
      const size_t Bit =
          static_cast<size_t>(PE.Node) * Prob.numFacts(PE.Proc) + PE.Fact;
      ReachedG[PE.Proc][Bit >> 6] |= 1ull << (Bit & 63);
    }
}

bool Solver::reached(int P, int Node, int Fact) const {
  if (!Solved)
    throw CertifyError(CertifyErrorKind::InternalInvariant,
                       "ifds solver queried before solve()", "ifds");
  const size_t Bit = static_cast<size_t>(Node) * Prob.numFacts(P) + Fact;
  return (ReachedG[P][Bit >> 6] >> (Bit & 63)) & 1;
}

bool Solver::genuineEntry(int P, int Fact) const {
  return Genuine.count(packPair(P, Fact)) != 0;
}

const std::vector<Solver::FactFeed> &Solver::feedsOf(int P, int Fact) const {
  return Procs[P].Feeds[Fact];
}

int Solver::findPathEdge(int P, int EntryFact, int Node, int Fact) const {
  auto It = Index.find({P, EntryFact, Node, Fact});
  return It == Index.end() ? -1 : It->second;
}
