#include "ifds/Witness.h"
#include "support/CertifyError.h"

#include <cassert>

using namespace canvas;
using namespace canvas::ifds;

WitnessBuilder::WitnessBuilder(const Solver &S) : S(S) {
  const Problem &Prob = S.problem();
  std::vector<int> Init;
  Prob.initialFacts(Init);
  for (int F : Init)
    D[{Prob.entryProc(), F}] = 0;

  // Bellman-Ford over the genuine feed records: the graphs are tiny
  // (procedures x entry facts), and distances only decrease.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int P = 0; P != Prob.numProcs(); ++P)
      for (int F = 0; F != Prob.numFacts(P); ++F) {
        if (!S.genuineEntry(P, F))
          continue;
        for (const Solver::FactFeed &Feed : S.feedsOf(P, F)) {
          const Solver::PathEdge &Caller = S.pathEdges()[Feed.CallerPathEdge];
          long Base = prefixDist(Caller.Proc, Caller.EntryFact);
          if (Base == Inf)
            continue;
          long Cand = Base + Caller.Dist + 1;
          auto It = D.find({P, F});
          if (It == D.end() || Cand < It->second) {
            D[{P, F}] = Cand;
            Pred[{P, F}] = Feed;
            Changed = true;
          }
        }
      }
  }
}

long WitnessBuilder::prefixDist(int P, int EntryFact) const {
  auto It = D.find({P, EntryFact});
  return It == D.end() ? Inf : It->second;
}

bool WitnessBuilder::reconstruct(int P, int Node, int Fact,
                                 std::vector<TraceStep> &Out,
                                 int &SeedFactOut) const {
  // Choose the entry fact minimizing prefix + same-level distance.
  long Best = Inf;
  int BestPE = -1, BestEntry = -1;
  for (int E = 0; E != S.problem().numFacts(P); ++E) {
    if (!S.genuineEntry(P, E))
      continue;
    long Prefix = prefixDist(P, E);
    if (Prefix == Inf)
      continue;
    int Id = S.findPathEdge(P, E, Node, Fact);
    if (Id < 0)
      continue;
    long Total = Prefix + S.pathEdges()[Id].Dist;
    if (Total < Best) {
      Best = Total;
      BestPE = Id;
      BestEntry = E;
    }
  }
  if (BestPE < 0)
    return false;
  Out.clear();
  SeedFactOut = LambdaFact;
  emitPrefix(P, BestEntry, Out, SeedFactOut);
  emitSameLevel(BestPE, Out);
  return true;
}

void WitnessBuilder::emitPrefix(int P, int EntryFact,
                                std::vector<TraceStep> &Out,
                                int &SeedFactOut) const {
  if (P == S.problem().entryProc()) {
    // Initial facts have distance 0; a feed chain can never beat that,
    // so the recursion bottoms out exactly at the program entry.
    auto It = D.find({P, EntryFact});
    if (It != D.end() && It->second == 0) {
      SeedFactOut = EntryFact;
      return;
    }
  }
  auto It = Pred.find({P, EntryFact});
  if (It == Pred.end())
    throw CertifyError(CertifyErrorKind::InternalInvariant,
                       "witness prefix requested for an unfed entry fact",
                       "ifds");
  const Solver::FactFeed &Feed = It->second;
  const Solver::PathEdge &Caller = S.pathEdges()[Feed.CallerPathEdge];
  emitPrefix(Caller.Proc, Caller.EntryFact, Out, SeedFactOut);
  emitSameLevel(Feed.CallerPathEdge, Out);
  TraceStep Call;
  Call.K = TraceStep::Kind::Call;
  Call.Proc = Caller.Proc;
  Call.CFGEdge = Feed.CFGEdge;
  Call.Callee = P;
  Call.Fact = EntryFact;
  Out.push_back(Call);
}

void WitnessBuilder::emitSameLevel(int PathEdgeId,
                                   std::vector<TraceStep> &Out) const {
  const Solver::PathEdge &PE = S.pathEdges()[PathEdgeId];
  switch (PE.How) {
  case Solver::Via::Seed:
    return;
  case Solver::Via::Normal:
  case Solver::Via::CallToReturn: {
    emitSameLevel(PE.Prev, Out);
    TraceStep Step;
    Step.K = TraceStep::Kind::Step;
    Step.Proc = PE.Proc;
    Step.CFGEdge = PE.CFGEdge;
    Step.Fact = PE.Fact;
    Out.push_back(Step);
    return;
  }
  case Solver::Via::Summary: {
    emitSameLevel(PE.Prev, Out);
    const Solver::PathEdge &Sum = S.pathEdges()[PE.CalleePathEdge];
    TraceStep Call;
    Call.K = TraceStep::Kind::Call;
    Call.Proc = PE.Proc;
    Call.CFGEdge = PE.CFGEdge;
    Call.Callee = Sum.Proc;
    Call.Fact = Sum.EntryFact;
    Out.push_back(Call);
    emitSameLevel(PE.CalleePathEdge, Out);
    TraceStep Ret;
    Ret.K = TraceStep::Kind::Return;
    Ret.Proc = PE.Proc;
    Ret.CFGEdge = PE.CFGEdge;
    Ret.Callee = Sum.Proc;
    Ret.Fact = PE.Fact;
    Out.push_back(Ret);
    return;
  }
  }
}
